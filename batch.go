package resinfer

import (
	"errors"
	"runtime"
	"sync"
)

// BatchResult holds the outcome for one query of a batch.
type BatchResult struct {
	Neighbors []Neighbor
	Stats     SearchStats
	Err       error
}

// SearchBatch runs Search for every query concurrently across up to
// workers goroutines (default GOMAXPROCS). Results are positionally
// aligned with queries; per-query failures are reported in the result
// rather than aborting the batch.
func (ix *Index) SearchBatch(queries [][]float32, k int, mode Mode, budget, workers int) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, errors.New("resinfer: empty query batch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([]BatchResult, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for qi := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			ns, st, err := ix.SearchWithStats(queries[qi], k, mode, budget)
			out[qi] = BatchResult{Neighbors: ns, Stats: st, Err: err}
		}(qi)
	}
	wg.Wait()
	return out, nil
}
