package resinfer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// BatchResult holds the outcome for one query of a batch.
type BatchResult struct {
	Neighbors []Neighbor
	Stats     SearchStats
	Err       error
}

// validateBatch checks the shared parameters of a batch once up front so a
// malformed batch fails fast with a single error instead of N goroutines
// each failing identically. userDim is the dimensionality callers present
// queries in.
func validateBatch(queries [][]float32, k, budget, userDim int) error {
	if len(queries) == 0 {
		return errors.New("resinfer: empty query batch")
	}
	if k <= 0 {
		return fmt.Errorf("resinfer: batch k must be positive, got %d", k)
	}
	if budget < 0 {
		return fmt.Errorf("resinfer: batch budget must be non-negative, got %d", budget)
	}
	for qi, q := range queries {
		if len(q) != userDim {
			return fmt.Errorf("resinfer: batch query %d has dim %d, index expects %d",
				qi, len(q), userDim)
		}
	}
	return nil
}

// clampWorkers resolves a worker-count request against the batch size:
// non-positive means GOMAXPROCS, and there is no point running more
// workers than queries.
func clampWorkers(workers, nQueries int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nQueries {
		workers = nQueries
	}
	return workers
}

// SearchBatch runs Search for every query concurrently across up to
// workers goroutines (default GOMAXPROCS). Each worker checks out ONE
// pooled evaluator session and reuses it (evaluator scratch, rotated-query
// and metric-transform buffers) for every query it processes — the batch
// costs workers evaluator activations, not len(queries). The batch
// parameters (k, budget, query dimensions) are validated once up front; a
// malformed batch returns an error before any search runs. Results are
// positionally aligned with queries; per-query failures are reported in
// the result rather than aborting the batch.
func (ix *Index) SearchBatch(queries [][]float32, k int, mode Mode, budget, workers int) ([]BatchResult, error) {
	if err := validateBatch(queries, k, budget, ix.userDim); err != nil {
		return nil, err
	}
	workers = clampWorkers(workers, len(queries))
	out := make([]BatchResult, len(queries))
	var wg sync.WaitGroup
	idxCh := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, pool, err := ix.acquire(mode)
			if err != nil {
				// Mode not enabled: report on every query this worker
				// would have handled.
				for qi := range idxCh {
					out[qi] = BatchResult{Err: err}
				}
				return
			}
			defer pool.Put(s)
			for qi := range idxCh {
				ns, st, err := ix.searchSession(s, nil, queries[qi], k, budget)
				out[qi] = BatchResult{Neighbors: ns, Stats: st, Err: err}
			}
		}()
	}
	for qi := range queries {
		idxCh <- qi
	}
	close(idxCh)
	wg.Wait()
	return out, nil
}
