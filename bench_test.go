// Package resinfer_test is deliberately an external test package: it pulls
// in internal/harness, which itself imports the root package (for the
// serving benchmark), so an in-package test file would create an import
// cycle.
package resinfer_test

// One testing.B benchmark per paper artifact (table/figure), each wrapping
// the corresponding harness experiment. The harness caches datasets,
// indexes and trained comparators process-wide, so the suite pays each
// construction once. Benchmarks run at a reduced dataset scale so the
// whole suite finishes in minutes; `cmd/bench` regenerates the artifacts
// at full profile scale and EXPERIMENTS.md records those results.
//
// Regenerate everything:
//
//	go test -bench=. -benchmem -timeout 60m .
//	go run ./cmd/bench -exp all          # full scale, with output tables

import (
	"io"
	"sync"
	"testing"

	"resinfer/internal/harness"
)

var benchScaleOnce sync.Once

func benchExperiment(b *testing.B, id string) {
	benchScaleOnce.Do(func() { harness.SetScale(0.25) })
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkFig1ErrorDistribution regenerates Fig. 1: the estimation-error
// distribution of PCA vs random projection.
func BenchmarkFig1ErrorDistribution(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2ErrorBound regenerates Fig. 2: the empirical analysis of
// the m·σ error bound against the 99.7th percentile.
func BenchmarkFig2ErrorBound(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkExp1Performance regenerates Fig. 5: QPS–recall curves for all
// method × index × dataset combinations.
func BenchmarkExp1Performance(b *testing.B) { benchExperiment(b, "exp1") }

// BenchmarkExp2TargetRecall regenerates Fig. 6: the target-recall sweep of
// the learned correction methods.
func BenchmarkExp2TargetRecall(b *testing.B) { benchExperiment(b, "exp2") }

// BenchmarkExp3Preprocessing regenerates Fig. 7: pre-processing time and
// space per method.
func BenchmarkExp3Preprocessing(b *testing.B) { benchExperiment(b, "exp3") }

// BenchmarkExp4Finger regenerates Fig. 8: the FINGER comparison.
func BenchmarkExp4Finger(b *testing.B) { benchExperiment(b, "exp4") }

// BenchmarkExp5Scalability regenerates Fig. 9: pre-processing time versus
// dataset size.
func BenchmarkExp5Scalability(b *testing.B) { benchExperiment(b, "exp5") }

// BenchmarkExp6ScanPruned regenerates Fig. 10: scan rate and pruned rate
// versus the search parameter.
func BenchmarkExp6ScanPruned(b *testing.B) { benchExperiment(b, "exp6") }

// BenchmarkExp7ApproxAccuracy regenerates Table III: linear-scan recall of
// the 32-dim approximations.
func BenchmarkExp7ApproxAccuracy(b *testing.B) { benchExperiment(b, "exp7") }

// BenchmarkExp8AntScenario regenerates Exp-8: the 512-dim image-search
// scenario.
func BenchmarkExp8AntScenario(b *testing.B) { benchExperiment(b, "exp8") }

// BenchmarkExpA2OOD regenerates technical-report Exp-A.2: OOD query
// sensitivity.
func BenchmarkExpA2OOD(b *testing.B) { benchExperiment(b, "expA2") }

// BenchmarkExpA3OODRetrain regenerates technical-report Exp-A.3: OOD
// mitigation by retraining.
func BenchmarkExpA3OODRetrain(b *testing.B) { benchExperiment(b, "expA3") }

// BenchmarkAblationDeltaD sweeps DDCres's incremental step Δd.
func BenchmarkAblationDeltaD(b *testing.B) { benchExperiment(b, "abl1") }

// BenchmarkAblationMultiplier sweeps DDCres's error-bound multiplier m.
func BenchmarkAblationMultiplier(b *testing.B) { benchExperiment(b, "abl2") }

// BenchmarkAblationOPQFeatures ablates DDCopq's residual-norm feature.
func BenchmarkAblationOPQFeatures(b *testing.B) { benchExperiment(b, "abl3") }
