package resinfer_test

// Process-level chaos test: SIGKILL annserve mid-ingest while an
// injected fsync delay models a slow disk, then restart and verify
// every acknowledged row survived WAL replay. The test builds and runs
// the real binary (not an in-process server) so the kill is a genuine
// process death — no deferred cleanup, no flushed buffers. It is
// expensive and environment-sensitive, so it only runs when
// RESINFER_CHAOS=1 (the CI chaos leg sets it).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const chaosDim = 16

// startAnnserve launches the annserve binary with the given extra flags
// and returns the process plus the address it bound (parsed from the
// startup log line, so -addr 127.0.0.1:0 works).
func startAnnserve(t *testing.T, bin, walDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := []string{
		"-mutable", "-wal-dir", walDir, "-wal-sync", "always",
		"-n", "500", "-dim", fmt.Sprint(chaosDim), "-shards", "2",
		"-kind", "flat", "-modes", "exact", "-no-auto-compact",
		"-seed", "7", "-addr", "127.0.0.1:0",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " on 127.0.0.1:"); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+4:])
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("annserve did not report a bound address within 30s")
		return nil, ""
	}
}

func healthzPoints(t *testing.T, addr string) int {
	t.Helper()
	var out struct {
		Points int `json:"points"`
	}
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return out.Points
	}
	t.Fatal("healthz never answered")
	return 0
}

func chaosUpsert(addr string, vec []float32) (int, error) {
	body, _ := json.Marshal(map[string]any{"vector": vec})
	resp, err := http.Post("http://"+addr+"/upsert", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("upsert: status %d", resp.StatusCode)
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

func chaosVec(fill float32) []float32 {
	v := make([]float32, chaosDim)
	for i := range v {
		v[i] = fill
	}
	return v
}

// TestChaosKillMidIngest: acknowledged rows must survive a SIGKILL
// delivered while ingestion is still in flight on a slow (fault-
// injected) disk. Unacknowledged rows may or may not have reached the
// disk — both outcomes are legal — so the row count is bounded, not
// pinned.
func TestChaosKillMidIngest(t *testing.T) {
	if os.Getenv("RESINFER_CHAOS") != "1" {
		t.Skip("chaos test: set RESINFER_CHAOS=1 to run")
	}
	bin := filepath.Join(t.TempDir(), "annserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/annserve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building annserve: %v", err)
	}
	walDir := t.TempDir()

	cmd, addr := startAnnserve(t, bin, walDir, "-faults", "wal.fsync:delay=2ms")
	defer func() { _ = cmd.Process.Kill() }()
	base := healthzPoints(t, addr)

	// Phase 1: synchronous acknowledged ingest. Every one of these rows
	// is a durability promise.
	const acked = 40
	marker := chaosVec(9.25) // distinctive: far outside the seeded base data
	var markerID int
	for i := 0; i < acked; i++ {
		fill := 2 + float32(i)*0.01
		if i == acked-1 {
			id, err := chaosUpsert(addr, marker)
			if err != nil {
				t.Fatalf("acked upsert %d: %v", i, err)
			}
			markerID = id
			continue
		}
		if _, err := chaosUpsert(addr, chaosVec(fill)); err != nil {
			t.Fatalf("acked upsert %d: %v", i, err)
		}
	}

	// Phase 2: fire-and-forget ingest pressure, then SIGKILL while
	// appends are mid-flight behind the injected 2ms fsync latency.
	const hammered = 50
	go func() {
		for i := 0; i < hammered; i++ {
			_, _ = chaosUpsert(addr, chaosVec(5+float32(i)*0.01))
		}
	}()
	time.Sleep(25 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Phase 3: restart on the same WAL dir (no faults) and audit.
	cmd2, addr2 := startAnnserve(t, bin, walDir)
	defer func() { _ = cmd2.Process.Kill() }()
	after := healthzPoints(t, addr2)
	if after < base+acked {
		t.Fatalf("acknowledged rows lost across SIGKILL: %d points, want >= %d", after, base+acked)
	}
	if after > base+acked+hammered {
		t.Fatalf("row count %d exceeds everything ever sent (%d)", after, base+acked+hammered)
	}

	// The marker row must come back verbatim: exact search for its
	// vector must return its acknowledged ID at distance ~0.
	body, _ := json.Marshal(map[string]any{"query": marker, "k": 1, "mode": "exact"})
	resp, err := http.Post("http://"+addr2+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		Neighbors []struct {
			ID int `json:"id"`
		} `json:"neighbors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Neighbors) != 1 || sr.Neighbors[0].ID != markerID {
		t.Fatalf("marker row did not survive: got %+v, want ID %d", sr.Neighbors, markerID)
	}

	// Graceful stop for the audit server.
	_ = cmd2.Process.Signal(syscall.SIGTERM)
	_ = cmd2.Wait()
}
