package resinfer_test

// Replica-kill chaos test: a primary hedging onto one replica, SIGKILL
// the replica while searches and acked ingest are in flight, and audit
// that (1) not a single query fails or degrades to partial, (2) the
// primary's results are bit-identical before and after the kill, and
// (3) the restarted replica catches back up over WAL shipping, flips
// /readyz, and converges to the primary's exact applied LSN and row
// count — so no acknowledged mutation is lost across the churn.
//
// Like TestChaosKillMidIngest this drives the real annserve binary so
// the kill is genuine process death, and only runs with RESINFER_CHAOS=1.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// reservePort grabs an ephemeral port and releases it so a process
// started moments later can bind it. The primary needs the replica's
// address in -replicas before the replica exists, so the port has to be
// chosen up front.
func reservePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// startReplica launches annserve in -join mode on a fixed port and
// waits for /readyz to flip to 200 — the catch-up-complete signal.
func startReplica(t *testing.T, bin, primaryURL string, port int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-join", primaryURL,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sawCatchingUp := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/readyz", port))
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				if sawCatchingUp {
					t.Log("replica: observed 503 catching-up before ready flip")
				}
				return cmd
			}
			if code == http.StatusServiceUnavailable {
				sawCatchingUp = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatal("replica never became ready within 30s")
	return nil
}

// chaosSearch runs one exact search and reports the IDs, whether the
// response was partial, and any transport or HTTP failure.
func chaosSearch(addr string, q []float32, k int) ([]int, bool, error) {
	body, _ := json.Marshal(map[string]any{"query": q, "k": k, "mode": "exact"})
	resp, err := http.Post("http://"+addr+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("search: status %d", resp.StatusCode)
	}
	var sr struct {
		Neighbors []struct {
			ID int `json:"id"`
		} `json:"neighbors"`
		Partial bool `json:"partial"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, false, err
	}
	ids := make([]int, len(sr.Neighbors))
	for i, n := range sr.Neighbors {
		ids[i] = n.ID
	}
	return ids, sr.Partial, nil
}

// replicaStatus reads applied_lsn and points from a node's replication
// status endpoint.
func replicaStatus(t *testing.T, addr string) (uint64, int) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/internal/replica/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		AppliedLSN uint64 `json:"applied_lsn"`
		Points     int    `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.AppliedLSN, st.Points
}

// metricValue scrapes one counter from /metrics.
func metricValue(t *testing.T, addr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != name {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("parsing %s value %q: %v", name, fields[1], err)
		}
		return v
	}
	t.Fatalf("/metrics has no %s", name)
	return 0
}

// TestChaosKillReplicaUnderLoad kills the hedge-target replica while
// the primary serves a mixed search+ingest load. Every query must keep
// returning full (non-partial) 200s, results must not change, and the
// restarted replica must converge back to the primary's state.
func TestChaosKillReplicaUnderLoad(t *testing.T) {
	if os.Getenv("RESINFER_CHAOS") != "1" {
		t.Skip("chaos test: set RESINFER_CHAOS=1 to run")
	}
	bin := filepath.Join(t.TempDir(), "annserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/annserve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building annserve: %v", err)
	}

	replicaPort := reservePort(t)
	replicaAddr := fmt.Sprintf("127.0.0.1:%d", replicaPort)

	// The primary hedges onto the replica after 5ms; half its local
	// shard probes are slowed 30ms so hedges genuinely fire and win.
	primary, addr := startAnnserve(t, bin, t.TempDir(),
		"-replicas", "http://"+replicaAddr,
		"-hedge-delay", "5ms",
		"-faults", "shard.search:delay=30ms,p=0.5",
	)
	defer func() { _ = primary.Process.Kill() }()

	// Acked ingest before the replica joins: it must arrive via the
	// bootstrap checkpoint (or early WAL tail).
	const preJoin = 30
	for i := 0; i < preJoin; i++ {
		if _, err := chaosUpsert(addr, chaosVec(2+float32(i)*0.01)); err != nil {
			t.Fatalf("pre-join upsert %d: %v", i, err)
		}
	}

	replica := startReplica(t, bin, "http://"+addr, replicaPort)
	defer func() { _ = replica.Process.Kill() }()

	// A read-only replica must bounce writers to the primary.
	if _, err := chaosUpsert(replicaAddr, chaosVec(1)); err == nil {
		t.Fatal("replica accepted an upsert; want 503 redirect to primary")
	}

	// Baseline: the exact answers the primary serves with the replica
	// healthy. Queries are deterministic so the post-kill comparison is
	// exact, not statistical.
	rng := rand.New(rand.NewSource(99))
	queries := make([][]float32, 20)
	for i := range queries {
		q := make([]float32, chaosDim)
		for j := range q {
			q[j] = float32(rng.NormFloat64()) * 3
		}
		queries[i] = q
	}
	baseline := make([][]int, len(queries))
	for i, q := range queries {
		ids, partial, err := chaosSearch(addr, q, 10)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		if partial {
			t.Fatalf("baseline query %d partial with all replicas healthy", i)
		}
		baseline[i] = ids
	}

	// Load phase: concurrent searches plus acked ingest, with the
	// replica SIGKILLed mid-flight. Zero tolerance: any non-200, any
	// transport error, any partial response fails the audit.
	var (
		failures  atomic.Int64
		searches  atomic.Int64
		ackedLoad atomic.Int64
		wg        sync.WaitGroup
	)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g*7+i)%len(queries)]
				_, partial, err := chaosSearch(addr, q, 10)
				searches.Add(1)
				if err != nil {
					t.Errorf("search during kill window: %v", err)
					failures.Add(1)
				} else if partial {
					t.Error("partial response during kill window")
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := chaosUpsert(addr, chaosVec(50+float32(i)*0.01)); err != nil {
				t.Errorf("acked upsert during kill window: %v", err)
				failures.Add(1)
				return
			}
			ackedLoad.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	if err := replica.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = replica.Wait()
	// Keep the load running past the health-checker's ejection window
	// (1s probes × 3 consecutive failures) so both the
	// hedge-into-dead-peer and the post-ejection regimes are covered.
	time.Sleep(4 * time.Second)
	close(stop)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d searches failed or degraded after replica kill", failures.Load(), searches.Load())
	}
	t.Logf("kill window: %d searches, %d acked upserts, 0 failures", searches.Load(), ackedLoad.Load())

	// Hedging must have actually exercised the replica path — otherwise
	// this test proves nothing about hedge failure handling.
	if hedged := metricValue(t, addr, "resinfer_hedged_total"); hedged == 0 {
		t.Fatal("no hedges fired during the load; the kill window never exercised the replica path")
	}

	// Recall audit: the primary's answers are unchanged by losing its
	// replica.
	for i, q := range queries {
		ids, partial, err := chaosSearch(addr, q, 10)
		if err != nil {
			t.Fatalf("post-kill query %d: %v", i, err)
		}
		if partial {
			t.Fatalf("post-kill query %d partial", i)
		}
		if len(ids) != len(baseline[i]) {
			t.Fatalf("post-kill query %d: %d results, baseline %d", i, len(ids), len(baseline[i]))
		}
		for j := range ids {
			if ids[j] != baseline[i][j] {
				t.Fatalf("post-kill query %d diverged: got %v, baseline %v", i, ids, baseline[i])
			}
		}
	}

	// Rejoin: a fresh replica on the same address catches up over the
	// checkpoint + WAL tail and flips ready again.
	replica2 := startReplica(t, bin, "http://"+addr, replicaPort)
	defer func() { _ = replica2.Process.Kill() }()
	pLSN, pPoints := replicaStatus(t, addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rLSN, rPoints := replicaStatus(t, replicaAddr)
		if rLSN >= pLSN && rPoints == pPoints {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined replica stuck at lsn=%d points=%d; primary lsn=%d points=%d",
				rLSN, rPoints, pLSN, pPoints)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The rejoined replica serves the same answers as the primary.
	for i, q := range queries[:5] {
		pIDs, _, err := chaosSearch(addr, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		rIDs, _, err := chaosSearch(replicaAddr, q, 10)
		if err != nil {
			t.Fatalf("rejoined replica query %d: %v", i, err)
		}
		for j := range pIDs {
			if pIDs[j] != rIDs[j] {
				t.Fatalf("replica diverges on query %d: %v vs %v", i, rIDs, pIDs)
			}
		}
	}

	_ = replica2.Process.Signal(syscall.SIGTERM)
	_ = replica2.Wait()
	_ = primary.Process.Signal(syscall.SIGTERM)
	_ = primary.Wait()
}
