// Command annsearch builds an index over a dataset analog (or fvecs files)
// and reports recall, QPS and distance-computation statistics for a chosen
// distance mode — a quick way to try the library end to end.
//
// Usage:
//
//	annsearch -profile deep -index hnsw -mode ddc-res -k 10 -budget 80
//	annsearch -base b.fvecs -queries q.fvecs -index ivf -mode exact -budget 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"resinfer"
	"resinfer/internal/dataset"
)

func main() {
	var (
		profile = flag.String("profile", "", "dataset profile name (alternative to -base/-queries)")
		base    = flag.String("base", "", "base vectors (fvecs)")
		queries = flag.String("queries", "", "query vectors (fvecs)")
		train   = flag.String("train", "", "training queries (fvecs; needed for learned modes)")
		kind    = flag.String("index", "hnsw", "index kind: hnsw | ivf")
		mode    = flag.String("mode", "exact", "distance mode: exact | adsampling | ddc-res | ddc-pca | ddc-opq")
		k       = flag.Int("k", 10, "neighbors to retrieve")
		budget  = flag.Int("budget", 80, "search budget: ef (hnsw) or nprobe (ivf)")
		seed    = flag.Int64("seed", 1, "construction seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "annsearch:", err)
		os.Exit(1)
	}

	var data, qs, tr [][]float32
	switch {
	case *profile != "":
		prof, err := dataset.ProfileByName(*profile)
		if err != nil {
			fail(err)
		}
		ds, err := dataset.Generate(prof.GenConfig)
		if err != nil {
			fail(err)
		}
		data, qs, tr = ds.Data, ds.Queries, ds.Train
	case *base != "" && *queries != "":
		var err error
		if data, err = dataset.LoadFvecsFile(*base); err != nil {
			fail(err)
		}
		if qs, err = dataset.LoadFvecsFile(*queries); err != nil {
			fail(err)
		}
		if *train != "" {
			if tr, err = dataset.LoadFvecsFile(*train); err != nil {
				fail(err)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: annsearch -profile <name> | -base <fvecs> -queries <fvecs> [-train <fvecs>]")
		os.Exit(2)
	}

	fmt.Printf("building %s index over %d x %d vectors (simd: %s)...\n",
		*kind, len(data), len(data[0]), resinfer.SIMDLevel())
	start := time.Now()
	ix, err := resinfer.New(data, resinfer.IndexKind(*kind), &resinfer.Options{Seed: *seed})
	if err != nil {
		fail(err)
	}
	fmt.Printf("  built in %.1fs\n", time.Since(start).Seconds())

	m := resinfer.Mode(*mode)
	if m != resinfer.Exact {
		fmt.Printf("training %s comparator...\n", m)
		start = time.Now()
		if err := ix.EnableWithTraining(m, tr, nil); err != nil {
			fail(err)
		}
		fmt.Printf("  trained in %.1fs\n", time.Since(start).Seconds())
	}

	fmt.Printf("computing exact ground truth for %d queries...\n", len(qs))
	gt, err := dataset.BruteForceKNN(data, qs, *k, 0)
	if err != nil {
		fail(err)
	}

	results := make([][]int, len(qs))
	var comparisons, pruned int64
	start = time.Now()
	for qi, q := range qs {
		ns, st, err := ix.SearchWithStats(q, *k, m, *budget)
		if err != nil {
			fail(err)
		}
		comparisons += st.Comparisons
		pruned += st.Pruned
		for _, n := range ns {
			results[qi] = append(results[qi], n.ID)
		}
	}
	elapsed := time.Since(start)

	recall := dataset.Recall(results, gt, *k)
	fmt.Printf("\nindex=%s mode=%s k=%d budget=%d\n", *kind, m, *k, *budget)
	fmt.Printf("recall@%d = %.4f\n", *k, recall)
	fmt.Printf("QPS      = %.0f (%d queries in %v)\n",
		float64(len(qs))/elapsed.Seconds(), len(qs), elapsed)
	if comparisons > 0 {
		fmt.Printf("pruned   = %d / %d comparisons (%.1f%%)\n",
			pruned, comparisons, 100*float64(pruned)/float64(comparisons))
	}
}
