// Command annserve builds (or loads) a resinfer index and serves it over
// the HTTP JSON API of internal/server.
//
// Build a sharded index over a synthetic dataset and serve it:
//
//	annserve -n 20000 -dim 64 -kind hnsw -shards 4 -modes exact,ddc-res -addr :8080
//
// Serve a mutable (streaming) index that accepts live upserts, deletes
// and background compaction:
//
//	annserve -mutable -n 20000 -dim 64 -shards 4 -compact-threshold 1024 -addr :8080
//
// Serve a previously saved index (single, sharded or mutable — the file
// format is auto-detected):
//
//	annserve -load index.bin -addr :8080
//
// Query and mutate it:
//
//	curl -s localhost:8080/search -d '{"query":[...],"k":10,"mode":"ddc-res","budget":100}'
//	curl -s localhost:8080/upsert -d '{"vector":[...]}'
//	curl -s localhost:8080/delete -d '{"id":123}'
//	curl -s localhost:8080/compact -d '{}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resinfer"
	"resinfer/internal/dataset"
	"resinfer/internal/fault"
	"resinfer/internal/replica"
	"resinfer/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		loadPath = flag.String("load", "", "load an index file (auto-detects single vs sharded) instead of building")
		savePath = flag.String("save", "", "after building, save the index here")

		kindFlag  = flag.String("kind", "hnsw", "index kind: hnsw | ivf | flat")
		metric    = flag.String("metric", "l2", "metric: l2 | cosine | ip")
		modesFlag = flag.String("modes", "exact,ddc-res", "comma-separated DCO modes to enable")
		shards    = flag.Int("shards", 4, "shard count (1 = unsharded)")

		mutable       = flag.Bool("mutable", false, "serve a mutable (streaming) index: enables POST /upsert, /delete and /compact")
		compactThresh = flag.Int("compact-threshold", resinfer.DefaultCompactThreshold, "per-shard memtable depth triggering background compaction (with -mutable)")
		noAutoCompact = flag.Bool("no-auto-compact", false, "disable background compaction; compact only via POST /compact (with -mutable)")
		walDir        = flag.String("wal-dir", "", "write-ahead log directory (with -mutable): mutations are crash-durable, and on start the directory's checkpoint + log are recovered")
		walSyncFlag   = flag.String("wal-sync", "always", "WAL fsync policy: always | none | interval[=duration] (with -wal-dir)")

		n     = flag.Int("n", 20000, "synthetic dataset size (ignored with -load)")
		dim   = flag.Int("dim", 64, "synthetic dataset dimensionality (ignored with -load)")
		train = flag.Int("train", 500, "training queries generated for learned modes (ignored with -load)")
		seed  = flag.Int64("seed", 42, "generation / construction seed")

		k           = flag.Int("k", 10, "default k when a request omits it")
		budget      = flag.Int("budget", 100, "default search budget when a request omits it")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "micro-batching window (negative disables)")
		batchMax    = flag.Int("batch-max", 64, "micro-batch size cap")
		maxConc     = flag.Int("max-concurrent", 0, "max concurrent batch executions (0 = GOMAXPROCS)")
		workers     = flag.Int("workers", 0, "SearchBatch worker count (0 = GOMAXPROCS)")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "end-to-end deadline per search request: past it the merged partial result is served (or 503 with require_full)")
		maxQueue    = flag.Int("max-queue", 0, "admission-queue shed watermark: queries past it get HTTP 429 (0 = 64×batch-max, negative disables)")
		drainGrace  = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown grace for in-flight requests and the final WAL sync + checkpoint")
		faultSpec   = flag.String("faults", "", "fault-injection spec for chaos testing, e.g. 'wal.fsync:delay=5ms;shard.search:err=stuck,arg=1' (also via RESINFER_FAULTS)")

		slowlogThresh = flag.Duration("slowlog-threshold", 250*time.Millisecond, "requests slower than this land in GET /debug/slowlog with per-stage timings (negative disables)")
		accessLog     = flag.Bool("access-log", false, "emit one structured line per request to stderr")
		pprofFlag     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		replicasFlag = flag.String("replicas", "", "comma-separated peer base URLs (e.g. http://host:8081,http://host:8082): peers are health-checked and slow or failed shard probes are hedged onto them")
		joinFlag     = flag.String("join", "", "join the primary at this base URL as a read-only replica: fetch its checkpoint, stream its WAL until caught up, then flip /readyz")
		hedgeDelay   = flag.Duration("hedge-delay", 0, "per-shard hedge delay before re-issuing a probe to a peer (with -replicas; 0 = adaptive, tracking the observed shard p95)")

		qualitySample  = flag.Int("quality-sample", 256, "shadow-recall sampling: re-run ~1/N of live queries as exact scans off-path and serve quality estimates at GET /debug/quality (0 disables)")
		qualityWorkers = flag.Int("quality-workers", 1, "shadow ground-truth worker goroutines (with -quality-sample)")
		sloLatency     = flag.Duration("slo-latency", 100*time.Millisecond, "latency SLO threshold for GET /debug/slo burn rates")
		sloLatencyTgt  = flag.Float64("slo-latency-target", 0.99, "latency SLO target: fraction of requests that must finish within -slo-latency")
		sloRecallTgt   = flag.Float64("slo-recall-target", 0.95, "recall SLO target: mean shadow recall@k must stay at or above this")
	)
	flag.Parse()

	walSync, err := resinfer.ParseWALSync(*walSyncFlag)
	if err != nil {
		log.Fatalf("annserve: %v", err)
	}
	peers, err := replica.ParsePeers(*replicasFlag)
	if err != nil {
		log.Fatalf("annserve: %v", err)
	}
	joinURL, err := replica.ParseJoin(*joinFlag)
	if err != nil {
		log.Fatalf("annserve: %v", err)
	}
	if err := replica.ValidateHedgeDelay(*hedgeDelay); err != nil {
		log.Fatalf("annserve: %v", err)
	}
	if joinURL != "" && *loadPath != "" {
		log.Fatalf("annserve: -join and -load conflict: a joining replica bootstraps from the primary's checkpoint, not a file")
	}
	if joinURL != "" && *walDir != "" {
		log.Fatalf("annserve: -join and -wal-dir conflict: a replica's durability is the primary's WAL; on restart it re-joins from a fresh snapshot")
	}
	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("RESINFER_FAULTS")
	}
	if spec != "" {
		if err := fault.ParseSpec(spec); err != nil {
			log.Fatalf("annserve: %v", err)
		}
		log.Printf("annserve: fault injection armed: %s", spec)
	}
	// A loaded/recovered index carries its own compaction knobs; only an
	// explicitly given -compact-threshold overrides them.
	threshSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "compact-threshold" {
			threshSet = true
		}
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	repClient := replica.NewClient(2 * time.Second)
	var follower *replica.Follower
	var idx server.Searcher
	if joinURL != "" {
		log.Printf("annserve: joining %s as a read-only replica", joinURL)
		opts := &resinfer.MutableOptions{DisableAutoCompact: *noAutoCompact}
		if threshSet {
			opts.CompactThreshold = *compactThresh
		}
		follower, err = replica.Join(ctx, joinURL, repClient, opts)
		if err != nil {
			log.Fatalf("annserve: %v", err)
		}
		idx = follower.Index()
		log.Printf("annserve: loaded primary checkpoint: %d rows, cursor at lsn %d",
			idx.Len(), follower.Cursor())
	} else {
		idx, err = buildOrLoad(*loadPath, *savePath, *kindFlag, *metric, *modesFlag,
			*shards, *n, *dim, *train, *seed,
			*mutable, *compactThresh, threshSet, *noAutoCompact, *walDir, walSync)
		if err != nil {
			log.Fatalf("annserve: %v", err)
		}
	}
	if mx, ok := idx.(*resinfer.MutableIndex); ok {
		defer mx.Close()
	}

	// hedgeable is the slice of the index API replicated serving drives;
	// sharded and mutable indexes satisfy it.
	type hedgeable interface {
		SetShardHedger(resinfer.ShardHedger, time.Duration)
		SetHedgeDelay(time.Duration)
	}
	var set *replica.Set
	var hedged hedgeable
	if len(peers) > 0 {
		h, ok := idx.(hedgeable)
		if !ok {
			log.Fatalf("annserve: -replicas needs a sharded index (-shards > 1, or -mutable); a single unsharded index has no shard probes to hedge")
		}
		hedged = h
		set = replica.NewSet(peers, repClient, replica.SetOptions{})
		set.Start()
		defer set.Close()
		initial := *hedgeDelay
		note := ""
		if initial == 0 {
			// Adaptive: start conservative, then track the observed shard
			// p95 once the server's histograms have data.
			initial = 25 * time.Millisecond
			note = ", adapting to shard p95"
		}
		hedged.SetShardHedger(replica.Hedger(set), initial)
		log.Printf("annserve: hedging onto %d peer(s) after %v%s", len(peers), initial, note)
	}

	cfg := server.Config{
		DefaultK:         *k,
		DefaultBudget:    *budget,
		BatchWindow:      *batchWindow,
		BatchMaxSize:     *batchMax,
		MaxConcurrent:    *maxConc,
		SearchWorkers:    *workers,
		RequestTimeout:   *reqTimeout,
		MaxQueueDepth:    *maxQueue,
		DrainTimeout:     *drainGrace,
		SlowLogThreshold: *slowlogThresh,
		AccessLog:        *accessLog,
		EnablePprof:      *pprofFlag,

		QualitySampleRate:   *qualitySample,
		QualityWorkers:      *qualityWorkers,
		SLOLatencyThreshold: *sloLatency,
		SLOLatencyTarget:    *sloLatencyTgt,
		SLORecallTarget:     *sloRecallTgt,
	}
	if follower != nil {
		cfg.ReadyCheck = follower.Ready
		cfg.ReplicaOf = joinURL
	}
	srv := server.New(idx, cfg)

	if hedged != nil && *hedgeDelay == 0 {
		ctrl := replica.StartDelayController(hedged, srv.ShardLatencyP95,
			5*time.Second, time.Millisecond, time.Second)
		defer ctrl.Close()
	}
	if follower != nil {
		go func() {
			if err := follower.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("annserve: replication stopped: %v", err)
			}
		}()
	}

	err = srv.Serve(ctx, *addr, func(bound string) {
		log.Printf("annserve: serving %d points (query dim %d, modes %v, simd %s) on %s",
			idx.Len(), idx.QueryDim(), idx.Modes(), resinfer.SIMDLevel(), bound)
	})
	if err != nil {
		log.Fatalf("annserve: %v", err)
	}
}

// buildOrLoad resolves the served index from flags: either a saved file
// (format auto-detected from the magic: mutable, sharded or single), the
// recovered durable state of a WAL directory, or a fresh build over a
// synthetic dataset (onto which any checkpoint-less WAL records are
// replayed — the same seed rebuilds the same base, so recovery works
// even before the first compaction checkpoint exists).
func buildOrLoad(loadPath, savePath, kindFlag, metric, modesFlag string,
	shards, n, dim, train int, seed int64,
	mutable bool, compactThresh int, threshSet, noAutoCompact bool,
	walDir string, walSync resinfer.WALSync) (server.Searcher, error) {

	// forLoad options leave CompactThreshold at 0 unless the flag was
	// given explicitly — LoadMutable/RecoverMutable then keep the
	// persisted value instead of silently resetting it to the default.
	mutOpts := func(index *resinfer.Options, forLoad bool) *resinfer.MutableOptions {
		o := &resinfer.MutableOptions{
			Index:              index,
			CompactThreshold:   compactThresh,
			DisableAutoCompact: noAutoCompact,
			WALDir:             walDir,
			WALSync:            walSync,
		}
		if forLoad && !threshSet {
			o.CompactThreshold = 0
		}
		return o
	}

	if loadPath != "" {
		format, err := sniffFormat(loadPath)
		if err != nil {
			return nil, err
		}
		if walDir != "" && format != formatMutable {
			return nil, fmt.Errorf("-wal-dir needs a mutable index; %s is not one", loadPath)
		}
		switch format {
		case formatMutable:
			log.Printf("annserve: loading mutable (streaming) index from %s", loadPath)
			mx, err := resinfer.LoadMutableFile(loadPath, mutOpts(nil, true))
			if err != nil {
				return nil, err
			}
			logRecovery(mx)
			return mx, nil
		case formatSharded:
			log.Printf("annserve: loading sharded index from %s", loadPath)
			return resinfer.LoadShardedFile(loadPath)
		default:
			log.Printf("annserve: loading index from %s", loadPath)
			return resinfer.LoadFile(loadPath)
		}
	}
	if walDir != "" && !mutable {
		return nil, fmt.Errorf("-wal-dir requires -mutable")
	}
	if walDir != "" {
		// A previous run's compaction checkpoint is the authoritative
		// state — recover it (plus the log tail) instead of rebuilding.
		mx, found, err := resinfer.RecoverMutable(mutOpts(nil, true))
		if err != nil {
			return nil, err
		}
		if found {
			log.Printf("annserve: recovered mutable index from %s checkpoint", walDir)
			logRecovery(mx)
			return mx, nil
		}
	}

	modes, err := parseModes(modesFlag)
	if err != nil {
		return nil, err
	}
	log.Printf("annserve: generating synthetic dataset n=%d dim=%d", n, dim)
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "annserve", N: n, Dim: dim, TrainQueries: train,
		VE32: 0.6, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	opts := &resinfer.Options{Metric: resinfer.MetricKind(metric), Seed: seed}
	kind := resinfer.IndexKind(kindFlag)

	start := time.Now()
	if mutable {
		if shards < 1 {
			shards = 1
		}
		log.Printf("annserve: building mutable %d-shard %s index (compact threshold %d)",
			shards, kind, compactThresh)
		mx, err := resinfer.NewMutable(ds.Data, kind, shards, mutOpts(opts, false))
		if err != nil {
			return nil, err
		}
		logRecovery(mx)
		for _, m := range modes {
			log.Printf("annserve: enabling %s", m)
			if err := mx.EnableWithTraining(m, ds.Train, opts); err != nil {
				return nil, err
			}
		}
		log.Printf("annserve: built in %.1fs", time.Since(start).Seconds())
		if savePath != "" {
			if err := mx.SaveFile(savePath); err != nil {
				return nil, err
			}
			log.Printf("annserve: saved to %s", savePath)
		}
		return mx, nil
	}
	if shards > 1 {
		log.Printf("annserve: building %d %s shards", shards, kind)
		sx, err := resinfer.NewSharded(ds.Data, kind, shards, &resinfer.ShardOptions{Index: opts})
		if err != nil {
			return nil, err
		}
		for _, m := range modes {
			log.Printf("annserve: enabling %s", m)
			if err := sx.EnableWithTraining(m, ds.Train, opts); err != nil {
				return nil, err
			}
		}
		log.Printf("annserve: built in %.1fs", time.Since(start).Seconds())
		if savePath != "" {
			if err := sx.SaveFile(savePath); err != nil {
				return nil, err
			}
			log.Printf("annserve: saved to %s", savePath)
		}
		return sx, nil
	}

	log.Printf("annserve: building unsharded %s index", kind)
	ix, err := resinfer.New(ds.Data, kind, opts)
	if err != nil {
		return nil, err
	}
	for _, m := range modes {
		log.Printf("annserve: enabling %s", m)
		if err := ix.EnableWithTraining(m, ds.Train, opts); err != nil {
			return nil, err
		}
	}
	log.Printf("annserve: built in %.1fs", time.Since(start).Seconds())
	if savePath != "" {
		if err := ix.SaveFile(savePath); err != nil {
			return nil, err
		}
		log.Printf("annserve: saved to %s", savePath)
	}
	return ix, nil
}

// logRecovery prints the recover-on-start banner: how much WAL history
// was replayed to bring the index back to its acknowledged state.
func logRecovery(mx *resinfer.MutableIndex) {
	rec := mx.WALRecovery()
	if !rec.Enabled {
		return
	}
	src := "fresh build"
	if rec.Snapshot != "" {
		src = rec.Snapshot
	}
	log.Printf("annserve: wal recovery: base=%s replayed %d upserts + %d deletes (torn segments: %d, lsn %d); %d rows live",
		src, rec.Upserts, rec.Deletes, rec.TornSegments, rec.LastLSN, mx.Len())
}

func parseModes(s string) ([]resinfer.Mode, error) {
	var out []resinfer.Mode
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m := resinfer.Mode(part)
		switch m {
		case resinfer.Exact, resinfer.ADSampling, resinfer.DDCRes, resinfer.DDCPCA, resinfer.DDCOPQ:
			out = append(out, m)
		default:
			return nil, fmt.Errorf("unknown mode %q", part)
		}
	}
	return out, nil
}

// fileFormat identifies which loader a saved index needs.
type fileFormat int

const (
	formatSingle fileFormat = iota
	formatSharded
	formatMutable
)

// sniffFormat peeks at the file magic to pick the right loader. The
// version digit is ignored so the check survives format bumps; the loader
// itself rejects versions it cannot read.
func sniffFormat(path string) (fileFormat, error) {
	f, err := os.Open(path)
	if err != nil {
		return formatSingle, err
	}
	defer f.Close()
	magic := make([]byte, 8)
	if _, err := io.ReadFull(f, magic); err != nil {
		return formatSingle, fmt.Errorf("reading magic of %s: %w", path, err)
	}
	switch string(magic) {
	case "RESSHARD":
		return formatSharded, nil
	default:
		if string(magic[:7]) == "RESSTRM" {
			return formatMutable, nil
		}
		return formatSingle, nil
	}
}
