// Command bench regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact of the evaluation section
// (see DESIGN.md's experiment index).
//
// Usage:
//
//	bench -list
//	bench -exp exp1
//	bench -exp fig1,fig2,exp7 -out results.txt
//	bench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"resinfer/internal/harness"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		outPath   = flag.String("out", "", "write results to this file instead of stdout")
		scale     = flag.Float64("scale", 1.0, "shrink dataset profiles by this factor (0,1]")
		serving   = flag.String("serving", "", "run the sharded serving benchmark and write machine-readable JSON (QPS, p50/p99, recall) to this path, e.g. BENCH_serving.json")
		kernels   = flag.String("kernels", "", "run the kernel/layout/pooling benchmarks and write machine-readable JSON (ns/op, allocs/op, QPS before/after) to this path, e.g. BENCH_kernels.json")
		streaming = flag.String("streaming", "", "run the streaming-ingestion benchmark (concurrent upserts + searches + compaction) and write machine-readable JSON (ingest vec/s, QPS, recall@10) to this path, e.g. BENCH_streaming.json")
	)
	flag.Parse()
	harness.SetScale(*scale)

	if *list {
		for _, e := range harness.Registry() {
			fmt.Printf("%-6s  %-14s  %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}
	if *kernels != "" {
		if err := harness.RunKernels(os.Stdout, *kernels); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *expFlag == "" && *serving == "" && *streaming == "" {
			return
		}
	}
	if *streaming != "" {
		if err := harness.RunStreaming(os.Stdout, *streaming); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *expFlag == "" && *serving == "" {
			return
		}
	}
	if *serving != "" {
		if err := harness.RunServing(os.Stdout, *serving); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *expFlag == "" {
			return
		}
	}
	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "usage: bench -exp <id>[,<id>...] | -exp all | -list | -serving <out.json> | -kernels <out.json> | -streaming <out.json>")
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var exps []harness.Experiment
	if *expFlag == "all" {
		exps = harness.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		fmt.Fprintf(w, "### %s (%s): %s\n", e.ID, e.PaperRef, e.Title)
		start := time.Now()
		if err := e.Run(w); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}
}
