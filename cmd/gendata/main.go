// Command gendata materializes a synthetic dataset analog to disk in the
// standard fvecs/ivecs interchange formats: base vectors, evaluation
// queries, training queries, and exact ground truth.
//
// Usage:
//
//	gendata -profile deep -out ./data/deep
//	gendata -profile sift -k 100 -out ./data/sift
//	gendata -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"resinfer/internal/dataset"
)

func main() {
	var (
		profile = flag.String("profile", "", "dataset profile name (see -list)")
		outDir  = flag.String("out", ".", "output directory (created if missing)")
		k       = flag.Int("k", 100, "ground-truth neighbors per query")
		drift   = flag.Float64("drift", 0, "mean shift over insert order, in σ of the leading direction: row i is biased by drift·i/(n−1), so late rows are out-of-distribution (exercises the streaming retrain path)")
		list    = flag.Bool("list", false, "list available profiles")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %9s %5s %7s %6s  %s\n", "name", "n", "dim", "queries", "VE32", "paper dataset")
		for _, p := range dataset.Profiles() {
			fmt.Printf("%-10s %9d %5d %7d %6.2f  n=%d (%s)\n",
				p.Name, p.N, p.Dim, p.Queries, p.VE32, p.PaperN, p.PaperNote)
		}
		return
	}
	if *profile == "" {
		fmt.Fprintln(os.Stderr, "usage: gendata -profile <name> -out <dir> | gendata -list")
		os.Exit(2)
	}
	prof, err := dataset.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	prof.GenConfig.Drift = *drift
	if *drift != 0 {
		fmt.Printf("generating %s (n=%d, dim=%d, drift=%.2fσ over insert order)...\n",
			prof.Name, prof.N, prof.Dim, *drift)
	} else {
		fmt.Printf("generating %s (n=%d, dim=%d)...\n", prof.Name, prof.N, prof.Dim)
	}
	ds, err := dataset.Generate(prof.GenConfig)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	write := func(name string, rows [][]float32) {
		path := filepath.Join(*outDir, name)
		if err := dataset.SaveFvecsFile(path, rows); err != nil {
			fmt.Fprintln(os.Stderr, "gendata:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s (%d rows)\n", path, len(rows))
	}
	write(prof.Name+"_base.fvecs", ds.Data)
	write(prof.Name+"_query.fvecs", ds.Queries)
	write(prof.Name+"_train.fvecs", ds.Train)

	fmt.Printf("computing exact ground truth (k=%d)...\n", *k)
	gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, *k, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	gtPath := filepath.Join(*outDir, prof.Name+"_groundtruth.ivecs")
	f, err := os.Create(gtPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := dataset.WriteIvecs(f, gt); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s (%d rows)\n", gtPath, len(gt))
}
