package resinfer

// Concurrency-safety pin-down: an Index (and a ShardedIndex layered over
// it) is read-safe once Enable returns — any number of goroutines may run
// Search / SearchWithStats / SearchBatch against it concurrently. Run
// under `go test -race` (CI does) to catch data races in the search path,
// the per-query evaluators, and the sharded fan-out/merge.

import (
	"sync"
	"testing"
)

func TestConcurrentSearchBatchRace(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data, HNSW, &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mode := Exact
			if g%2 == 0 {
				mode = DDCRes
			}
			// Mix single searches and batches from the same goroutine.
			for rep := 0; rep < 3; rep++ {
				q := ds.Queries[(g+rep)%len(ds.Queries)]
				if _, _, err := ix.SearchWithStats(q, 10, mode, 60); err != nil {
					errCh <- err
					return
				}
				res, err := ix.SearchBatch(ds.Queries[:8], 10, mode, 60, 4)
				if err != nil {
					errCh <- err
					return
				}
				for _, r := range res {
					if r.Err != nil {
						errCh <- r.Err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestConcurrentShardedSearchRace(t *testing.T) {
	ds, _ := apiFixtures(t)
	sx, err := NewSharded(ds.Data, HNSW, 3, &ShardOptions{Index: &Options{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mode := DDCRes
			if g%3 == 0 {
				mode = Exact
			}
			for rep := 0; rep < 3; rep++ {
				q := ds.Queries[(g+rep)%len(ds.Queries)]
				if _, err := sx.Search(q, 10, mode, 60); err != nil {
					errCh <- err
					return
				}
			}
			if g%2 == 0 {
				res, err := sx.SearchBatch(ds.Queries[:6], 10, mode, 60, 3)
				if err != nil {
					errCh <- err
					return
				}
				for _, r := range res {
					if r.Err != nil {
						errCh <- r.Err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestBatchValidation(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data[:100], Flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SearchBatch(nil, 10, Exact, 0, 0); err == nil {
		t.Fatal("expected empty-batch error")
	}
	if _, err := ix.SearchBatch(ds.Queries, 0, Exact, 0, 0); err == nil {
		t.Fatal("expected bad-k error")
	}
	if _, err := ix.SearchBatch(ds.Queries, -3, Exact, 0, 0); err == nil {
		t.Fatal("expected negative-k error")
	}
	if _, err := ix.SearchBatch(ds.Queries, 10, Exact, -1, 0); err == nil {
		t.Fatal("expected bad-budget error")
	}
	mixed := [][]float32{ds.Queries[0], {1, 2, 3}}
	if _, err := ix.SearchBatch(mixed, 10, Exact, 0, 0); err == nil {
		t.Fatal("expected dim-mismatch error")
	}
	// A valid batch still succeeds after the validation path.
	res, err := ix.SearchBatch(ds.Queries[:4], 10, Exact, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
}
