package resinfer

// Crash durability for streaming ingestion. With MutableOptions.WALDir
// set, a MutableIndex appends every Add/Upsert/Delete to a write-ahead
// log (internal/wal) before applying it, and each completed compaction
// writes a checkpoint snapshot ("checkpoint.strm" in the WAL directory)
// then rotates the log and deletes the segments the snapshot covers —
// so replay cost stays bounded by the churn since the last compaction.
// After an unclean shutdown, RecoverMutable restores the exact
// acknowledged state: latest checkpoint snapshot + WAL tail.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"resinfer/internal/wal"
)

// WALSync selects the write-ahead log's fsync policy. The zero value is
// WALSyncAlways.
type WALSync = wal.SyncPolicy

// WALSyncAlways fsyncs every record before the mutation returns: an
// acknowledged mutation survives machine failure.
func WALSyncAlways() WALSync { return wal.SyncAlways() }

// WALSyncNone never fsyncs explicitly. Records are still written
// through to the OS per mutation, so they survive a process crash but
// not necessarily a power failure.
func WALSyncNone() WALSync { return wal.SyncNone() }

// WALSyncInterval fsyncs from a background flusher every d: at most d
// of acknowledged mutations are exposed to machine failure.
func WALSyncInterval(d time.Duration) WALSync { return wal.SyncInterval(d) }

// ParseWALSync parses "always", "none", "interval" or
// "interval=<duration>" — the annserve -wal-sync flag syntax.
func ParseWALSync(s string) (WALSync, error) { return wal.ParseSyncPolicy(s) }

// WALRecovery reports what a WAL-enabled constructor replayed while
// bringing the index back to its pre-crash state.
type WALRecovery struct {
	// Enabled reports whether a WAL is attached at all.
	Enabled bool `json:"enabled"`
	// Snapshot is the checkpoint file recovery started from ("" when
	// the index was built or loaded from caller-provided state).
	Snapshot string `json:"snapshot,omitempty"`
	// Upserts and Deletes count the replayed mutation records.
	Upserts int `json:"upserts"`
	Deletes int `json:"deletes"`
	// TornSegments counts log segments that ended in a truncated final
	// record (dropped — the expected artifact of a crash mid-write).
	TornSegments int `json:"torn_segments,omitempty"`
	// LastLSN is the log position the index is recovered to.
	LastLSN uint64 `json:"last_lsn"`
}

// walCheckpointFile is the checkpoint snapshot's name inside a WAL
// directory; writes go through a temp file + rename so a crash never
// leaves a half-written checkpoint under this name.
const walCheckpointFile = "checkpoint.strm"

func walCheckpointPath(dir string) string { return filepath.Join(dir, walCheckpointFile) }

// RecoverMutable restores the durable state of opts.WALDir: the latest
// checkpoint snapshot plus every WAL record logged after it. found is
// false (with no error) when the directory holds no checkpoint — the
// caller then builds its index and lets NewMutable replay any
// checkpoint-less WAL records.
func RecoverMutable(opts *MutableOptions) (mx *MutableIndex, found bool, err error) {
	o := opts.withDefaults()
	if o.WALDir == "" {
		return nil, false, errors.New("resinfer: RecoverMutable needs MutableOptions.WALDir")
	}
	ckpt := walCheckpointPath(o.WALDir)
	if _, err := os.Stat(ckpt); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, err
	}
	mx, err = LoadMutableFile(ckpt, opts)
	if err != nil {
		return nil, false, fmt.Errorf("resinfer: recovering %s: %w", ckpt, err)
	}
	mx.walRec.Snapshot = ckpt
	return mx, true, nil
}

// attachWAL opens the log in o.WALDir, replays every record with
// LSN > after onto sx — which must be mutation-enabled and not yet
// serving — and attaches the log so subsequent mutations append to it.
// Replay re-executes the recorded mutations through the exact ingest
// path, so the recovered index is bit-identical to one that never
// crashed.
func attachWAL(sx *ShardedIndex, o MutableOptions, after uint64) (WALRecovery, error) {
	lg, err := wal.Open(o.WALDir, o.WALSync, after)
	if err != nil {
		return WALRecovery{}, err
	}
	st, err := lg.Replay(after, func(r wal.Record) error {
		switch r.Op {
		case wal.OpUpsert:
			_, err := sx.mutUpsert(r.ID, r.Vec)
			return err
		case wal.OpDelete:
			_, err := sx.Delete(r.ID)
			return err
		}
		return nil // checkpoint markers replay as no-ops
	})
	if err != nil {
		lg.Close()
		return WALRecovery{}, err
	}
	if st.FirstLSN > after+1 {
		// The log starts past the state we are replaying onto: records
		// in (after, FirstLSN) were trimmed against a newer snapshot
		// than the one loaded. Refuse rather than silently lose them.
		lg.Close()
		return WALRecovery{}, fmt.Errorf(
			"resinfer: wal %s starts at lsn %d but the loaded state ends at %d; recover from the directory's checkpoint instead",
			o.WALDir, st.FirstLSN, after)
	}
	m := sx.mut
	m.mu.Lock()
	last := st.LastLSN
	if last < after {
		last = after
	}
	m.appliedLSN.Store(last)
	m.wal = lg
	m.mu.Unlock()
	return WALRecovery{
		Enabled:      true,
		Upserts:      st.Upserts,
		Deletes:      st.Deletes,
		TornSegments: st.Torn,
		LastLSN:      last,
	}, nil
}

// walCheckpoint makes the index's current state the log's durability
// point: the full mutable snapshot is written to a temp file, fsynced
// and renamed over checkpoint.strm, then the log rotates and drops
// every segment the snapshot covers. Called once per compaction pass
// (maybeWALCheckpoint).
func (mx *MutableIndex) walCheckpoint() error {
	dir := mx.cfg.WALDir
	tmp, err := os.CreateTemp(dir, walCheckpointFile+".tmp-*")
	if err != nil {
		return err
	}
	lsn, err := mx.save(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), walCheckpointPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Make the rename itself durable (best effort; not all platforms
	// support directory fsync).
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	mx.walCkpts.Add(1)
	return mx.sx.mut.wal.Checkpoint(lsn)
}

// WALRecovery reports what was replayed when this index was
// constructed (all zero when no WAL is attached).
func (mx *MutableIndex) WALRecovery() WALRecovery { return mx.walRec }
