// Imagesearch mirrors the paper's Ant Group scenario (§VII Exp-8): a
// corpus of 512-dimensional image embeddings with skewed variance, where
// the DDC methods accelerate retrieval at equal accuracy. It builds the
// 512-dim analog, runs exact HNSW and HNSW-DDCres side by side, and
// reports recall, latency and throughput changes.
package main

import (
	"fmt"
	"log"
	"time"

	"resinfer"
	"resinfer/internal/dataset"
)

func main() {
	prof, err := dataset.ProfileByName("ant512")
	if err != nil {
		log.Fatal(err)
	}
	cfg := prof.GenConfig
	cfg.N = 6000 // keep the example snappy
	fmt.Printf("generating %d x %d image-embedding analog...\n", cfg.N, cfg.Dim)
	ds, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building HNSW index...")
	idx, err := resinfer.New(ds.Data, resinfer.HNSW, &resinfer.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training DDCres comparator (PCA + error quantile)...")
	if err := idx.Enable(resinfer.DDCRes, nil); err != nil {
		log.Fatal(err)
	}

	measure := func(mode resinfer.Mode) (recall float64, qps float64) {
		results := make([][]int, len(ds.Queries))
		start := time.Now()
		for qi, q := range ds.Queries {
			ns, err := idx.Search(q, 10, mode, 60)
			if err != nil {
				log.Fatal(err)
			}
			for _, n := range ns {
				results[qi] = append(results[qi], n.ID)
			}
		}
		elapsed := time.Since(start)
		return dataset.Recall(results, gt, 10), float64(len(ds.Queries)) / elapsed.Seconds()
	}

	exactRecall, exactQPS := measure(resinfer.Exact)
	ddcRecall, ddcQPS := measure(resinfer.DDCRes)

	fmt.Printf("\n%-10s recall@10=%.4f QPS=%.0f\n", "exact", exactRecall, exactQPS)
	fmt.Printf("%-10s recall@10=%.4f QPS=%.0f\n", "ddc-res", ddcRecall, ddcQPS)
	fmt.Printf("\nthroughput change: %+.1f%% at recall delta %+.4f\n",
		100*(ddcQPS/exactQPS-1), ddcRecall-exactRecall)
}
