// Ivfscan exercises the IVF index path: the inverted-file lists contain
// many far-away points, so threshold pruning is at its most effective
// (the paper reports 96%+ pruned rates in Fig. 10). The example sweeps
// nprobe and prints the recall/QPS/pruned-rate trade-off for exact vs
// DDCres distance computation.
package main

import (
	"fmt"
	"log"
	"time"

	"resinfer"
	"resinfer/internal/dataset"
)

func main() {
	prof, err := dataset.ProfileByName("deep")
	if err != nil {
		log.Fatal(err)
	}
	cfg := prof.GenConfig
	cfg.N = 10000
	fmt.Printf("generating %d x %d dataset (DEEP analog)...\n", cfg.N, cfg.Dim)
	ds, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building IVF index...")
	idx, err := resinfer.New(ds.Data, resinfer.IVF, &resinfer.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.Enable(resinfer.DDCRes, nil); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %-9s %-9s %-7s %-11s\n", "nprobe", "mode", "recall@10", "QPS", "pruned-rate")
	for _, nprobe := range []int{4, 8, 16, 32} {
		for _, mode := range []resinfer.Mode{resinfer.Exact, resinfer.DDCRes} {
			results := make([][]int, len(ds.Queries))
			var prunedRate float64
			start := time.Now()
			for qi, q := range ds.Queries {
				ns, st, err := idx.SearchWithStats(q, 10, mode, nprobe)
				if err != nil {
					log.Fatal(err)
				}
				prunedRate += st.PrunedRate
				for _, n := range ns {
					results[qi] = append(results[qi], n.ID)
				}
			}
			elapsed := time.Since(start)
			fmt.Printf("%-8d %-9s %-9.4f %-7.0f %-11.3f\n",
				nprobe, mode,
				dataset.Recall(results, gt, 10),
				float64(len(ds.Queries))/elapsed.Seconds(),
				prunedRate/float64(len(ds.Queries)))
		}
	}
}
