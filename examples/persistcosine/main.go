// Persistcosine demonstrates two production features layered on the
// paper's framework: cosine-metric search (reduced to Euclidean via unit
// normalization, §II-A) and index persistence — a trained index, including
// its DDCres comparator, round-trips through a file so later processes
// skip both construction and training.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"resinfer"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const n, dim = 4000, 96
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, dim)
		shared := rng.NormFloat64()
		for j := range row {
			row[j] = float32(shared*0.5 + rng.NormFloat64())
		}
		data[i] = row
	}

	fmt.Println("building cosine-metric HNSW index with DDCres...")
	idx, err := resinfer.New(data, resinfer.HNSW, &resinfer.Options{
		Seed: 1, Metric: resinfer.Cosine,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.Enable(resinfer.DDCRes, nil); err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "resinfer-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.ri")

	start := time.Now()
	if err := idx.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved index to %s (%.1f MB) in %v\n",
		path, float64(info.Size())/(1<<20), time.Since(start))

	start = time.Now()
	loaded, err := resinfer.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v (no retraining needed; modes: %v)\n",
		time.Since(start), loaded.Modes())

	q := data[17]
	hits, err := loaded.Search(q, 5, resinfer.DDCRes, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 by cosine similarity:")
	for _, h := range hits {
		fmt.Printf("  id=%-5d cosine=%.4f\n", h.ID, loaded.Score(h, q))
	}
}
