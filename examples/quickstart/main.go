// Quickstart: build an HNSW index, enable the paper's DDCres distance
// computation, and compare it with exact search on the same queries.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"resinfer"
)

func main() {
	// Synthesize a small anisotropic dataset: 5000 vectors in 128 dims
	// with correlated coordinates (PCA-friendly, like real embeddings).
	rng := rand.New(rand.NewSource(42))
	const n, dim = 5000, 128
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, dim)
		shared := rng.NormFloat64()
		for j := range row {
			decay := 1.0
			for d := 0; d < j/8; d++ {
				decay *= 0.8
			}
			row[j] = float32(shared*decay + 0.3*rng.NormFloat64()*decay)
		}
		data[i] = row
	}
	query := data[0]

	// Build the graph index. Exact search works out of the box.
	idx, err := resinfer.New(data, resinfer.HNSW, &resinfer.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Enable DDCres: PCA rotation + Gaussian error-quantile pruning.
	if err := idx.Enable(resinfer.DDCRes, nil); err != nil {
		log.Fatal(err)
	}

	for _, mode := range []resinfer.Mode{resinfer.Exact, resinfer.DDCRes} {
		start := time.Now()
		var hits []resinfer.Neighbor
		var stats resinfer.SearchStats
		for rep := 0; rep < 200; rep++ {
			hits, stats, err = idx.SearchWithStats(query, 5, mode, 50)
			if err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start) / 200
		fmt.Printf("%-10s  %v/query  scan-rate %.2f  top-5:", mode, elapsed, stats.ScanRate)
		for _, h := range hits {
			fmt.Printf(" %d(%.3f)", h.ID, h.Distance)
		}
		fmt.Println()
	}
}
