// Serving example: shard a dataset, serve it over HTTP on a loopback
// port, and act as the client — single searches through the
// micro-batching path, one batch search, then the server's own counters.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"

	"resinfer"
	"resinfer/internal/dataset"
	"resinfer/internal/server"
)

func main() {
	// 1. A small synthetic dataset and a 3-shard HNSW index with the
	// paper's DDCres comparator enabled on every shard.
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "serving-demo", N: 6000, Dim: 48, Queries: 8, VE32: 0.7, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sx, err := resinfer.NewSharded(ds.Data, resinfer.HNSW, 3,
		&resinfer.ShardOptions{Index: &resinfer.Options{Seed: 7}})
	if err != nil {
		log.Fatal(err)
	}
	if err := sx.Enable(resinfer.DDCRes, nil); err != nil {
		log.Fatal(err)
	}

	// 2. Serve it on a loopback port.
	srv := server.New(sx, server.Config{DefaultMode: resinfer.DDCRes, DefaultBudget: 100})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	go func() {
		if err := srv.Serve(ctx, "127.0.0.1:0", func(addr string) { ready <- addr }); err != nil {
			log.Print(err)
		}
	}()
	base := "http://" + <-ready
	fmt.Println("serving on", base)

	// 3. Single searches (these ride the micro-batching admission queue).
	for qi, q := range ds.Queries[:3] {
		var out struct {
			Neighbors []struct {
				ID       int     `json:"id"`
				Distance float32 `json:"distance"`
			} `json:"neighbors"`
			Stats struct {
				ScanRate float64 `json:"scan_rate"`
			} `json:"stats"`
		}
		post(base+"/search", map[string]any{"query": q, "k": 5}, &out)
		fmt.Printf("query %d: top-5 =", qi)
		for _, n := range out.Neighbors {
			fmt.Printf(" %d", n.ID)
		}
		fmt.Printf("  (scan rate %.3f)\n", out.Stats.ScanRate)
	}

	// 4. One batch request over every query at once.
	var batch struct {
		Results []struct {
			Neighbors []struct {
				ID int `json:"id"`
			} `json:"neighbors"`
		} `json:"results"`
	}
	post(base+"/search/batch", map[string]any{"queries": ds.Queries, "k": 5}, &batch)
	fmt.Printf("batch: %d queries answered\n", len(batch.Results))

	// 5. The server's own counters.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d requests, %d queries, %d comparisons, p50 %.2fms\n",
		stats.Requests, stats.Queries, stats.Comparisons, stats.LatencyP50Ms)
}

func post(url string, body, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
