// Textsearch demonstrates the paper's method-selection guidance (Exp-1):
// on flat-variance text embeddings (GLOVE-like, where a 32-dim PCA keeps
// only ~18% of the variance) the quantization-based DDCopq outperforms the
// PCA-based DDCres, while on skewed image-like data the ranking flips.
// The variance-explained statistic printed first is the selection signal.
package main

import (
	"fmt"
	"log"
	"time"

	"resinfer"
	"resinfer/internal/dataset"
	"resinfer/internal/pca"
)

func main() {
	prof, err := dataset.ProfileByName("glove")
	if err != nil {
		log.Fatal(err)
	}
	cfg := prof.GenConfig
	cfg.N = 8000
	cfg.TrainQueries = 400
	fmt.Printf("generating %d x %d text-embedding analog (GLOVE-like)...\n", cfg.N, cfg.Dim)
	ds, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The selection signal the paper recommends: variance preserved by a
	// 32-dim PCA. Low values favor DDCopq; high values favor DDCres.
	model, err := pca.Train(ds.Data, pca.Config{SampleSize: 4000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("variance preserved by 32-dim PCA: %.0f%% (paper: GLOVE 18%%, GIST 67%%)\n",
		100*model.VarianceExplained(32))

	gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := resinfer.New(ds.Data, resinfer.HNSW, &resinfer.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training DDCres and DDCopq comparators...")
	if err := idx.Enable(resinfer.DDCRes, nil); err != nil {
		log.Fatal(err)
	}
	if err := idx.EnableWithTraining(resinfer.DDCOPQ, ds.Train, nil); err != nil {
		log.Fatal(err)
	}

	for _, mode := range []resinfer.Mode{resinfer.Exact, resinfer.DDCRes, resinfer.DDCOPQ} {
		results := make([][]int, len(ds.Queries))
		start := time.Now()
		for qi, q := range ds.Queries {
			ns, err := idx.Search(q, 10, mode, 60)
			if err != nil {
				log.Fatal(err)
			}
			for _, n := range ns {
				results[qi] = append(results[qi], n.ID)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-10s recall@10=%.4f QPS=%.0f\n", mode,
			dataset.Recall(results, gt, 10),
			float64(len(ds.Queries))/elapsed.Seconds())
	}
	fmt.Println("\non flat-variance data, expect ddc-opq to lead ddc-res (Exp-1's crossover)")
}
