module resinfer

go 1.22
