package resinfer

// Golden equivalence tests for the contiguous-storage refactor: the flat
// row-major layout and the pooled (Reset-reused) evaluators must return
// BIT-IDENTICAL distances and results to the seed's per-row [][]float32
// path. The kernels are shared between both layouts and read coordinates
// in the same order, so equality here is exact, not approximate.

import (
	"sync"
	"testing"

	"resinfer/internal/core"
	"resinfer/internal/heap"
	"resinfer/internal/vec"
)

// rowsScanReference is the seed path: a k-NN scan over the caller's row
// slices using the shared slice kernel.
func rowsScanReference(rows [][]float32, q []float32, k int) []heap.Item {
	rq := heap.NewResultQueue(k)
	for id := range rows {
		d := vec.L2Sq(q, rows[id])
		if d < rq.Threshold() {
			rq.Push(id, d)
		}
	}
	return rq.Sorted()
}

func TestFlatLayoutBitIdenticalToRowsScan(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data, Flat, &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range ds.Queries {
		want := rowsScanReference(ds.Data, q, 10)
		got, _, err := ix.SearchWithStats(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Distance != want[i].Dist {
				t.Fatalf("query %d hit %d: (%d, %v) differs from rows path (%d, %v)",
					qi, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Dist)
			}
		}
	}
}

// TestPooledEvaluatorBitIdenticalToFresh asserts that an evaluator that
// has been Reset and reused across many queries answers exactly like a
// freshly built one, for every DCO in the repository.
func TestPooledEvaluatorBitIdenticalToFresh(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data, Flat, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(ADSampling, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableWithTraining(DDCPCA, ds.Train, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableWithTraining(DDCOPQ, ds.Train, nil); err != nil {
		t.Fatal(err)
	}
	taus := []float32{0.5, 5, 50, core.InfThreshold}
	for _, mode := range []Mode{Exact, ADSampling, DDCRes, DDCPCA, DDCOPQ} {
		dco := ix.dcos[mode].(core.PooledDCO)
		reused := dco.NewEvaluator()
		for qi, q := range ds.Queries {
			fresh, err := dco.NewQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := reused.Reset(q); err != nil {
				t.Fatal(err)
			}
			for id := 0; id < 200; id++ {
				tau := taus[(qi+id)%len(taus)]
				df, pf := fresh.Compare(id, tau)
				dr, pr := reused.Compare(id, tau)
				if df != dr || pf != pr {
					t.Fatalf("%s query %d id %d tau %v: fresh (%v,%v) vs reused (%v,%v)",
						mode, qi, id, tau, df, pf, dr, pr)
				}
				if dd, dd2 := fresh.Distance(id), reused.Distance(id); dd != dd2 {
					t.Fatalf("%s query %d id %d: Distance %v vs %v", mode, qi, id, dd, dd2)
				}
			}
			sf, sr := fresh.Stats(), reused.Stats()
			if *sf != *sr {
				t.Fatalf("%s query %d: stats diverge: %+v vs %+v", mode, qi, *sf, *sr)
			}
		}
	}
}

// TestSearchIntoMatchesSearch asserts the allocation-free entry point
// returns exactly what the allocating one does, for every index kind.
func TestSearchIntoMatchesSearch(t *testing.T) {
	ds, _ := apiFixtures(t)
	for _, kind := range []IndexKind{Flat, HNSW, IVF} {
		ix, err := New(ds.Data, kind, &Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Enable(DDCRes, nil); err != nil {
			t.Fatal(err)
		}
		var dst []Neighbor
		for _, mode := range []Mode{Exact, DDCRes} {
			for _, q := range ds.Queries {
				want, wantSt, err := ix.SearchWithStats(q, 10, mode, 40)
				if err != nil {
					t.Fatal(err)
				}
				var gotSt SearchStats
				dst, gotSt, err = ix.SearchInto(dst[:0], q, 10, mode, 40)
				if err != nil {
					t.Fatal(err)
				}
				if len(dst) != len(want) || gotSt != wantSt {
					t.Fatalf("%s/%s: SearchInto diverges (%d vs %d hits, %+v vs %+v)",
						kind, mode, len(dst), len(want), gotSt, wantSt)
				}
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("%s/%s hit %d: %+v vs %+v", kind, mode, i, dst[i], want[i])
					}
				}
			}
		}
	}
}

// TestConcurrentPooledSearchConsistency hammers one index from many
// goroutines across modes and entry points and checks every result against
// the sequential answer — run under -race this also proves the pools do
// not share per-query state.
func TestConcurrentPooledSearchConsistency(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data, HNSW, &Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(ADSampling, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	modes := []Mode{Exact, ADSampling, DDCRes}
	want := map[Mode][][]Neighbor{}
	for _, mode := range modes {
		want[mode] = make([][]Neighbor, len(ds.Queries))
		for qi, q := range ds.Queries {
			ns, err := ix.Search(q, 10, mode, 60)
			if err != nil {
				t.Fatal(err)
			}
			want[mode][qi] = ns
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var dst []Neighbor
			for rep := 0; rep < 5; rep++ {
				for qi, q := range ds.Queries {
					mode := modes[(g+qi+rep)%len(modes)]
					var ns []Neighbor
					var err error
					if (g+rep)%2 == 0 {
						ns, err = ix.Search(q, 10, mode, 60)
					} else {
						dst, _, err = ix.SearchInto(dst[:0], q, 10, mode, 60)
						ns = dst
					}
					if err != nil {
						errCh <- err
						return
					}
					exp := want[mode][qi]
					if len(ns) != len(exp) {
						errCh <- errMismatch(mode, qi)
						return
					}
					for i := range exp {
						if ns[i] != exp[i] {
							errCh <- errMismatch(mode, qi)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type mismatchError struct {
	mode Mode
	qi   int
}

func (e mismatchError) Error() string {
	return "concurrent result for mode " + string(e.mode) + " diverged from sequential"
}

func errMismatch(mode Mode, qi int) error { return mismatchError{mode, qi} }
