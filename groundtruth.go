package resinfer

import (
	"fmt"

	"resinfer/internal/heap"
	"resinfer/internal/vec"
)

// gtScratch is the pooled per-scan state of GroundTruthSearch: the
// bounded result queue, the Cosine query normalization buffer, and the
// admitted-ID → shard attribution map. Everything is capacity-reused so
// steady-state ground-truth scans allocate nothing.
type gtScratch struct {
	rq      *heap.ResultQueue
	qbuf    []float32
	shardOf map[int]int
}

// GroundTruthSearch runs an exact brute-force top-k scan over the whole
// index — every base row of every shard plus every memtable row,
// tombstone- and shadow-aware — using the same SIMD flat-matrix kernels
// and merge keys as the serving path. It is the online ground-truth
// oracle for shadow quality sampling: its ranking is exactly what a
// perfect (recall-1.0) search would have served at the same instant.
//
// Results are appended to dst in ascending merge-key order (the serving
// order); shards receives, aligned with the returned neighbors, the
// shard each ground-truth neighbor currently lives in (memtable rows
// attribute to their owning shard). The int result is the number of
// rows compared. Each shard's segment lock is held for that shard's
// scan, so per-shard visibility is consistent with a concurrent search;
// shards are scanned sequentially, off the request path.
//
//resinfer:noalloc
func (sx *ShardedIndex) GroundTruthSearch(dst []Neighbor, shards []int, q []float32, k int) ([]Neighbor, []int, int, error) {
	if len(q) != sx.userDim {
		//resinfer:alloc-ok cold invalid-argument path
		return dst, shards, 0, fmt.Errorf("resinfer: query dim %d, index expects %d", len(q), sx.userDim)
	}
	if k <= 0 {
		//resinfer:alloc-ok cold invalid-argument path
		return dst, shards, 0, fmt.Errorf("resinfer: k must be positive, got %d", k)
	}
	gs := sx.gtPool.Get().(*gtScratch)
	defer sx.gtPool.Put(gs)
	gs.rq.Reset(k)
	for id := range gs.shardOf {
		delete(gs.shardOf, id)
	}

	// qScan is the query in "scan space": normalized for Cosine (both
	// base and memtable rows are stored normalized), raw otherwise. For
	// InnerProduct the base rows are norm-augmented but not scaled, so a
	// raw dot product over the first userDim coordinates is the true
	// inner product — identical to the memtable key and the merge key.
	qScan := q
	if sx.metric == Cosine {
		if len(gs.qbuf) != sx.userDim {
			gs.qbuf = make([]float32, sx.userDim) //resinfer:alloc-ok lazy one-time scratch growth
		}
		var err error
		ms := metricState{kind: Cosine}
		qScan, err = ms.transformInto(gs.qbuf, q)
		if err != nil {
			return dst, shards, 0, err
		}
	}
	ip := sx.metric == InnerProduct

	rq := gs.rq
	comparisons := 0
	for s := range sx.shards {
		var seg *shardSeg
		if sx.mut != nil {
			seg = sx.mut.segs[s]
			seg.mu.RLock()
		}
		base := sx.shards[s]
		gids := sx.globalID[s]
		flat := base.data.Flat()
		stride := base.data.Dim()
		rows := base.data.Rows()
		for i := 0; i < rows; i++ {
			gid := gids[i]
			if seg != nil && (seg.dead.Has(gid) || seg.mem.Has(gid)) {
				continue
			}
			var key float32
			if ip {
				key = -vec.DotFlat(qScan, flat, i*stride)
			} else {
				key = vec.L2SqFlat(qScan, flat, i*stride)
			}
			comparisons++
			if key < rq.Threshold() && rq.Push(gid, key) {
				gs.shardOf[gid] = s
			}
		}
		if seg != nil {
			mem := seg.mem
			for i := 0; i < mem.Len(); i++ {
				row := mem.Vec(i)
				var key float32
				if ip {
					key = -vec.Dot(qScan, row)
				} else {
					key = vec.L2Sq(qScan, row)
				}
				comparisons++
				if key < rq.Threshold() && rq.Push(mem.ID(i), key) {
					gs.shardOf[mem.ID(i)] = s
				}
			}
			seg.mu.RUnlock()
		}
	}

	nres := rq.Len()
	start := len(dst)
	for i := 0; i < nres; i++ {
		dst = append(dst, Neighbor{})
		shards = append(shards, 0)
	}
	for i := nres - 1; i >= 0; i-- {
		it, _ := rq.PopMax()
		dst[start+i] = Neighbor{ID: it.ID, Distance: it.Dist}
		shards[start+i] = gs.shardOf[it.ID]
	}
	return dst, shards, comparisons, nil
}
