package resinfer

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// gtNaive is a per-metric reference ranking computed with plain float64
// arithmetic over the caller-space rows: the independent oracle the
// SIMD-kernel ground-truth scan must agree with.
func gtNaive(data map[int][]float32, q []float32, metric MetricKind, k int) []int {
	type scored struct {
		id  int
		key float64
	}
	var all []scored
	for id, row := range data {
		var key float64
		switch metric {
		case Cosine:
			var dot, nr, nq float64
			for i := range row {
				dot += float64(row[i]) * float64(q[i])
				nr += float64(row[i]) * float64(row[i])
				nq += float64(q[i]) * float64(q[i])
			}
			key = -dot / math.Sqrt(nr*nq) // descending similarity
		case InnerProduct:
			var dot float64
			for i := range row {
				dot += float64(row[i]) * float64(q[i])
			}
			key = -dot
		default:
			var d float64
			for i := range row {
				diff := float64(row[i]) - float64(q[i])
				d += diff * diff
			}
			key = d
		}
		all = append(all, scored{id, key})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	if len(all) > k {
		all = all[:k]
	}
	ids := make([]int, len(all))
	for i, s := range all {
		ids[i] = s.id
	}
	return ids
}

func gtOverlap(a, b []int) int {
	set := map[int]struct{}{}
	for _, id := range a {
		set[id] = struct{}{}
	}
	n := 0
	for _, id := range b {
		if _, ok := set[id]; ok {
			n++
		}
	}
	return n
}

func TestGroundTruthSearchExactAcrossMetrics(t *testing.T) {
	const n, dim, k, shards = 300, 12, 10, 3
	rng := rand.New(rand.NewSource(42))
	data := make([][]float32, n)
	live := map[int][]float32{}
	for i := range data {
		data[i] = make([]float32, dim)
		for j := range data[i] {
			data[i][j] = rng.Float32()*2 - 1
		}
		live[i] = data[i]
	}
	for _, metric := range []MetricKind{L2, Cosine, InnerProduct} {
		sx, err := NewSharded(data, Flat, shards, &ShardOptions{Index: &Options{Metric: metric}})
		if err != nil {
			t.Fatalf("%s: NewSharded: %v", metric, err)
		}
		for qi := 0; qi < 20; qi++ {
			q := make([]float32, dim)
			for j := range q {
				q[j] = rng.Float32()*2 - 1
			}
			got, owners, comp, err := sx.GroundTruthSearch(nil, nil, q, k)
			if err != nil {
				t.Fatalf("%s: GroundTruthSearch: %v", metric, err)
			}
			if len(got) != k || len(owners) != k {
				t.Fatalf("%s: got %d neighbors, %d owners, want %d", metric, len(got), len(owners), k)
			}
			if comp != n {
				t.Fatalf("%s: compared %d rows, want %d", metric, comp, n)
			}
			for i := 1; i < len(got); i++ {
				if got[i].Distance < got[i-1].Distance {
					t.Fatalf("%s: results not ascending at %d", metric, i)
				}
			}
			gotIDs := make([]int, len(got))
			for i, nb := range got {
				gotIDs[i] = nb.ID
				if owners[i] != nb.ID%shards { // RoundRobin partition
					t.Fatalf("%s: neighbor %d attributed to shard %d, want %d",
						metric, nb.ID, owners[i], nb.ID%shards)
				}
			}
			want := gtNaive(live, q, metric, k)
			// float32 kernel vs float64 reference can swap near-ties at
			// the tail; demand near-total agreement, and exact top-1.
			if ov := gtOverlap(want, gotIDs); ov < k-1 {
				t.Fatalf("%s: overlap %d/%d with naive oracle (got %v want %v)",
					metric, ov, k, gotIDs, want)
			}
			if gotIDs[0] != want[0] {
				t.Fatalf("%s: top-1 %d, naive oracle %d", metric, gotIDs[0], want[0])
			}
		}
	}
}

func TestGroundTruthSearchMutationAware(t *testing.T) {
	const n, dim, k, shards = 200, 8, 10, 2
	rng := rand.New(rand.NewSource(7))
	data := make([][]float32, n)
	live := map[int][]float32{}
	for i := range data {
		data[i] = make([]float32, dim)
		for j := range data[i] {
			data[i][j] = rng.Float32()
		}
		live[i] = data[i]
	}
	mx, err := NewMutable(data, Flat, shards, &MutableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("NewMutable: %v", err)
	}
	defer mx.Close()

	// Delete some base rows, upsert over others, and add fresh rows so
	// the scan must honor tombstones, shadowed base rows, and memtables.
	for id := 0; id < 20; id++ {
		if _, err := mx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		delete(live, id)
	}
	for id := 20; id < 40; id++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()
		}
		if _, err := mx.Upsert(id, v); err != nil {
			t.Fatalf("Upsert(%d): %v", id, err)
		}
		live[id] = v
	}
	for i := 0; i < 30; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()
		}
		id, err := mx.Add(v)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		live[id] = v
	}

	var dst []Neighbor
	var owners []int
	for qi := 0; qi < 10; qi++ {
		q := make([]float32, dim)
		for j := range q {
			q[j] = rng.Float32()
		}
		var err error
		dst, owners, _, err = mx.GroundTruthSearch(dst[:0], owners[:0], q, k)
		if err != nil {
			t.Fatalf("GroundTruthSearch: %v", err)
		}
		gotIDs := make([]int, len(dst))
		for i, nb := range dst {
			gotIDs[i] = nb.ID
			if _, ok := live[nb.ID]; !ok {
				t.Fatalf("ground truth returned dead/stale id %d", nb.ID)
			}
			if owners[i] < 0 || owners[i] >= shards {
				t.Fatalf("owner shard %d out of range", owners[i])
			}
		}
		want := gtNaive(live, q, L2, k)
		if ov := gtOverlap(want, gotIDs); ov < k-1 {
			t.Fatalf("overlap %d/%d with naive oracle over mutated corpus (got %v want %v)",
				ov, k, gotIDs, want)
		}
	}

	// After compaction the same scan must still agree (memtables folded
	// into the base, tombstones retired).
	if _, err := mx.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = rng.Float32()
	}
	dst, _, _, err = mx.GroundTruthSearch(dst[:0], owners[:0], q, k)
	if err != nil {
		t.Fatalf("GroundTruthSearch after compact: %v", err)
	}
	gotIDs := make([]int, len(dst))
	for i, nb := range dst {
		gotIDs[i] = nb.ID
	}
	want := gtNaive(live, q, L2, k)
	if ov := gtOverlap(want, gotIDs); ov < k-1 {
		t.Fatalf("post-compaction overlap %d/%d (got %v want %v)", ov, k, gotIDs, want)
	}
}

func TestGroundTruthSearchValidation(t *testing.T) {
	data := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	sx, err := NewSharded(data, Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sx.GroundTruthSearch(nil, nil, []float32{1}, 2); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, _, _, err := sx.GroundTruthSearch(nil, nil, []float32{1, 2}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// k larger than the corpus truncates to the corpus.
	ns, owners, _, err := sx.GroundTruthSearch(nil, nil, []float32{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != len(data) || len(owners) != len(data) {
		t.Fatalf("k>n returned %d results, want %d", len(ns), len(data))
	}
}
