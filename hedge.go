package resinfer

import (
	"context"
	"fmt"
	"time"
)

// This file is the index-side half of replicated serving: the hedge
// hook the deadline-aware fan-out fires at a slow or failed shard, and
// the single-shard probe a peer replica answers those hedges with. The
// replica set itself — health-checked peers, the HTTP transport, the
// catch-up follower — lives in internal/replica; it plugs in here
// through SetShardHedger so the index stays transport-agnostic.

// ShardHedger re-issues one shard's query to a peer replica and returns
// that shard's contribution in global, merge-ready form: Neighbor.ID is
// the global row ID and Neighbor.Distance the cross-shard merge key —
// exactly what SearchShardGlobal produces on the peer. The fan-out
// cancels ctx when the local probe wins; implementations must abort
// their remote call promptly.
type ShardHedger func(ctx context.Context, shard int, q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error)

// SetShardHedger installs fn as the shard hedger with the given initial
// hedge delay and arms hedged fan-out on the deadline-aware search
// paths (SearchWithStatsCtx, SearchBatchCtx): a shard that has not
// answered after the hedge delay — or whose probe fails outright — has
// its query re-issued through fn, and the first good answer wins. The
// plain paths (Search, SearchInto) are untouched, so the unhedged
// steady state stays allocation-free. Install before serving begins;
// the delay may be retuned live with SetHedgeDelay. A delay <= 0 leaves
// the hedger armed for failure-triggered retries off (hedging fully
// disabled) until a positive delay is set.
func (sx *ShardedIndex) SetShardHedger(fn ShardHedger, delay time.Duration) {
	sx.hedger = fn
	sx.hedgeDelayNs.Store(int64(delay))
}

// SetHedgeDelay retunes the per-shard hedge delay: queries read it
// atomically, so an adaptive controller may track the observed shard
// p95 while serving runs. A delay <= 0 disables hedging.
func (sx *ShardedIndex) SetHedgeDelay(d time.Duration) {
	sx.hedgeDelayNs.Store(int64(d))
}

// HedgeDelay returns the current per-shard hedge delay.
func (sx *ShardedIndex) HedgeDelay() time.Duration {
	return time.Duration(sx.hedgeDelayNs.Load())
}

// HedgeStats returns how many shard probes were hedged and how many
// hedges delivered the shard's first good answer — the counters behind
// resinfer_hedged_total and resinfer_hedge_wins_total.
func (sx *ShardedIndex) HedgeStats() (hedged, wins uint64) {
	return sx.hedged.Load(), sx.hedgeWins.Load()
}

// SearchShardGlobal probes a single shard and returns its contribution
// in global, merge-ready form: IDs are global row IDs and Distance is
// the cross-shard merge key (the negated native score for InnerProduct,
// the internal squared distance otherwise). It is the peer-side half of
// hedged fan-out — a replica answers /internal/shard/search with it —
// and is also useful for shard-local diagnostics. The result slice is
// freshly allocated; this path trades allocations for isolation since
// it serves remote peers, not the local hot path.
func (sx *ShardedIndex) SearchShardGlobal(s int, q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	if s < 0 || s >= len(sx.shards) {
		return nil, SearchStats{}, fmt.Errorf("resinfer: shard %d out of range [0,%d)", s, len(sx.shards))
	}
	if len(q) != sx.userDim {
		return nil, SearchStats{}, fmt.Errorf("resinfer: query dim %d, index expects %d", len(q), sx.userDim)
	}
	fs := sx.fanPool.Get().(*fanScratch)
	var qScan []float32
	if sx.mut != nil {
		var serr error
		if qScan, serr = sx.scanQuery(fs, q); serr != nil {
			sx.fanPool.Put(fs)
			return nil, SearchStats{}, serr
		}
	}
	sx.searchShardObs(s, fs.outs, q, qScan, k, mode, budget, nil)
	out := &fs.outs[s]
	if out.err != nil {
		err := fmt.Errorf("resinfer: shard %d: %w", s, out.err)
		out.err = nil
		sx.fanPool.Put(fs)
		return nil, SearchStats{}, err
	}
	ns := make([]Neighbor, len(out.ns))
	for i, nb := range out.ns {
		id, key := nb.ID, nb.Distance
		if sx.mut == nil {
			if sx.metric == InnerProduct {
				key = -sx.shards[s].Score(nb, q)
			}
			id = sx.globalID[s][nb.ID]
		}
		ns[i] = Neighbor{ID: id, Distance: key}
	}
	st := out.st
	sx.fanPool.Put(fs)
	return ns, st, nil
}

// SetShardHedger delegates to the underlying sharded index; see
// ShardedIndex.SetShardHedger.
func (mx *MutableIndex) SetShardHedger(fn ShardHedger, delay time.Duration) {
	mx.sx.SetShardHedger(fn, delay)
}

// SetHedgeDelay delegates to the underlying sharded index.
func (mx *MutableIndex) SetHedgeDelay(d time.Duration) { mx.sx.SetHedgeDelay(d) }

// HedgeDelay delegates to the underlying sharded index.
func (mx *MutableIndex) HedgeDelay() time.Duration { return mx.sx.HedgeDelay() }

// HedgeStats delegates to the underlying sharded index.
func (mx *MutableIndex) HedgeStats() (hedged, wins uint64) { return mx.sx.HedgeStats() }

// SearchShardGlobal delegates to the underlying sharded index; see
// ShardedIndex.SearchShardGlobal.
func (mx *MutableIndex) SearchShardGlobal(s int, q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	return mx.sx.SearchShardGlobal(s, q, k, mode, budget)
}
