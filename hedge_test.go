package resinfer_test

// Hedged fan-out tests: a slow or failed shard probe is re-issued to a
// peer replica (here: a second identical index standing in for one) and
// the first good answer wins, so replicated serving turns stragglers
// into hedge wins and partial results into full ones. These run under
// -race in CI's chaos leg alongside the deadline fan-out tests.

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/fault"
)

var errShardDown = errors.New("injected: shard down")

// peerHedger hedges onto a second, identically built index — the
// in-process stand-in for a replica answering /internal/shard/search.
func peerHedger(peer *resinfer.ShardedIndex) resinfer.ShardHedger {
	return func(ctx context.Context, shard int, q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error) {
		if err := ctx.Err(); err != nil {
			return nil, resinfer.SearchStats{}, err
		}
		return peer.SearchShardGlobal(shard, q, k, mode, budget)
	}
}

func sortedIDs(ns []resinfer.Neighbor) []int {
	ids := make([]int, len(ns))
	for i, n := range ns {
		ids[i] = n.ID
	}
	sort.Ints(ids)
	return ids
}

// TestHedgeWinsOnSlowShard is the tail-at-scale acceptance path: one
// shard's local probe is stuck, the hedge fires after the hedge delay,
// the peer answers, and the query completes fully — no partial result —
// with the hedge counted as a win.
func TestHedgeWinsOnSlowShard(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	peer := buildChaosSharded(t, 4)
	q := chaosQuery()
	want, _, err := sx.SearchWithStats(q, 10, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	sx.SetShardHedger(peerHedger(peer), 5*time.Millisecond)
	// Limit 1: only the first evaluation — the local probe of shard 2 —
	// stalls; the peer's probe of the same shard runs clean.
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 2, Delay: 2 * time.Second, Limit: 1,
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ns, st, err := sx.SearchWithStatsCtx(ctx, q, 10, resinfer.Exact, 0, nil)
	if err != nil {
		t.Fatalf("hedged search failed: %v", err)
	}
	if st.ShardsOK != 4 || st.ShardsFailed != 0 {
		t.Fatalf("coverage: ok=%d failed=%d, want 4/0 (hedge must rescue the slow shard)", st.ShardsOK, st.ShardsFailed)
	}
	wantIDs, gotIDs := sortedIDs(want), sortedIDs(ns)
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("hedged result diverges from unhedged: got %v, want %v", gotIDs, wantIDs)
		}
	}
	hedged, wins := sx.HedgeStats()
	if hedged < 1 || wins < 1 {
		t.Fatalf("hedge counters: hedged=%d wins=%d, want >= 1 each", hedged, wins)
	}
}

// TestHedgeRescuesFailedShard: a shard whose local probe fails outright
// is hedged immediately (no waiting for the hedge delay), so the query
// still returns full coverage.
func TestHedgeRescuesFailedShard(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	peer := buildChaosSharded(t, 4)
	// A long hedge delay proves the failure-triggered hedge does not wait
	// for the timer.
	sx.SetShardHedger(peerHedger(peer), time.Second)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 1, Err: errShardDown, Limit: 1,
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	t0 := time.Now()
	_, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 10, resinfer.Exact, 0, nil)
	if err != nil {
		t.Fatalf("hedged search failed: %v", err)
	}
	if st.ShardsOK != 4 || st.ShardsFailed != 0 {
		t.Fatalf("coverage: ok=%d failed=%d, want 4/0", st.ShardsOK, st.ShardsFailed)
	}
	if d := time.Since(t0); d > 500*time.Millisecond {
		t.Fatalf("failure-triggered hedge waited %v — it must fire immediately, not after the hedge delay", d)
	}
	if hedged, wins := sx.HedgeStats(); hedged < 1 || wins < 1 {
		t.Fatalf("hedge counters: hedged=%d wins=%d, want >= 1 each", hedged, wins)
	}
}

// TestPartialOnlyWhenAllReplicasFail: with the peer failing too, the
// shard is genuinely down everywhere and only then does the query go
// partial.
func TestPartialOnlyWhenAllReplicasFail(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	peer := buildChaosSharded(t, 4)
	sx.SetShardHedger(peerHedger(peer), time.Millisecond)
	// No Limit: the injection hits the local probe and the peer's probe
	// alike — every replica of shard 3 is down.
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 3, Err: errShardDown,
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ns, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 10, resinfer.Exact, 0, nil)
	if err != nil {
		t.Fatalf("partial search errored: %v", err)
	}
	if st.ShardsOK != 3 || st.ShardsFailed != 1 {
		t.Fatalf("coverage: ok=%d failed=%d, want 3/1 (partial only when all replicas fail)", st.ShardsOK, st.ShardsFailed)
	}
	if len(ns) == 0 {
		t.Fatal("partial result empty")
	}
}

// TestHedgeLoserCancelled: the local probes win (nothing injected), so
// every fired hedge must have its context cancelled promptly.
func TestHedgeLoserCancelled(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 2)
	cancelled := make(chan struct{}, 2)
	hedger := func(ctx context.Context, shard int, q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error) {
		<-ctx.Done() // a slow peer: only returns once cancelled
		cancelled <- struct{}{}
		return nil, resinfer.SearchStats{}, ctx.Err()
	}
	// 1ns delay: the hedge timer fires before the locals finish, so the
	// hedges launch and then lose.
	sx.SetShardHedger(hedger, time.Nanosecond)
	// Slow the locals slightly so the timer always beats them.
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: fault.AnyArg, Delay: 20 * time.Millisecond, Limit: 2,
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 10, resinfer.Exact, 0, nil)
	if err != nil || st.ShardsOK != 2 {
		t.Fatalf("search: ok=%d err=%v, want 2/nil (locals win)", st.ShardsOK, err)
	}
	hedged, wins := sx.HedgeStats()
	if hedged < 1 {
		t.Fatalf("hedge never fired (hedged=%d)", hedged)
	}
	if wins != 0 {
		t.Fatalf("blocked hedger recorded %d wins, want 0", wins)
	}
	for i := uint64(0); i < hedged; i++ {
		select {
		case <-cancelled:
		case <-time.After(2 * time.Second):
			t.Fatalf("hedge %d of %d never saw its context cancelled", i+1, hedged)
		}
	}
}

// TestHedgeDisabledWithoutPositiveDelay: an armed hedger with a
// non-positive delay must never fire — the operator's off switch.
func TestHedgeDisabledWithoutPositiveDelay(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 2)
	peer := buildChaosSharded(t, 2)
	sx.SetShardHedger(peerHedger(peer), 0)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 0, Err: errShardDown, Limit: 1,
	})()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 5, resinfer.Exact, 0, nil)
	if err != nil {
		t.Fatalf("partial search errored: %v", err)
	}
	if st.ShardsFailed != 1 {
		t.Fatalf("failed=%d, want 1 (hedging disabled, failure stays a failure)", st.ShardsFailed)
	}
	if hedged, _ := sx.HedgeStats(); hedged != 0 {
		t.Fatalf("hedged=%d with hedging disabled, want 0", hedged)
	}
}

// TestSearchShardGlobalMatchesFanout: the peer-side probe must produce
// exactly the per-shard contribution the local fan-out would merge.
func TestSearchShardGlobalMatchesFanout(t *testing.T) {
	sx := buildChaosSharded(t, 3)
	q := chaosQuery()
	want, _, err := sx.SearchWithStats(q, 10, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Merge the three per-shard global contributions by key and take the
	// top 10: it must equal the fan-out's answer.
	var all []resinfer.Neighbor
	for s := 0; s < 3; s++ {
		ns, st, err := sx.SearchShardGlobal(s, q, 10, resinfer.Exact, 0)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if st.Comparisons == 0 {
			t.Fatalf("shard %d reported no work", s)
		}
		all = append(all, ns...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Distance < all[j].Distance })
	all = all[:10]
	got, want2 := sortedIDs(all), sortedIDs(want)
	for i := range want2 {
		if got[i] != want2[i] {
			t.Fatalf("per-shard global merge diverges: got %v, want %v", got, want2)
		}
	}
	if _, _, err := sx.SearchShardGlobal(7, q, 10, resinfer.Exact, 0); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, _, err := sx.SearchShardGlobal(0, q[:3], 10, resinfer.Exact, 0); err == nil {
		t.Fatal("bad query dim accepted")
	}
}

// TestHedgerConcurrentSearches exercises the hedged fan-out under
// concurrent load for the -race leg: mixed slow and failing shards,
// every query must still come back full.
func TestHedgerConcurrentSearches(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	peer := buildChaosSharded(t, 4)
	sx.SetShardHedger(peerHedger(peer), 2*time.Millisecond)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 1, Delay: 10 * time.Millisecond, P: 0.5,
	})()
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 2, Err: errShardDown, P: 0.3,
	})()
	fault.Seed(42)

	const goroutines = 8
	const perG = 20
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			q := make([]float32, 32)
			for i := 0; i < perG; i++ {
				for j := range q {
					q[j] = float32(rng.NormFloat64())
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, _, err := sx.SearchWithStatsCtx(ctx, q, 5, resinfer.Exact, 0, nil)
				cancel()
				if err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(int64(g))
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errCh; err != nil {
			t.Fatalf("concurrent hedged search failed: %v", err)
		}
	}
}
