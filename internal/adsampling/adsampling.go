// Package adsampling implements the ADSampling distance comparison
// operator of Gao & Long (SIGMOD 2023) — the state of the art the paper
// improves on (§III). Vectors are rotated by a random orthogonal matrix;
// at query time the squared distance is accumulated over increasing
// prefixes of the rotated coordinates and a Johnson–Lindenstrauss
// hypothesis test decides after each increment whether the candidate can
// already be pruned: with partial distance dis'_d over d of D dimensions,
// prune when
//
//	dis'_d · (D/d) > τ · (1 + ε0/√d)²
//
// which is the squared form of the paper's √(D/d)·‖·‖ > (1+ε0/√d)·√τ test.
// ε0 trades pruning aggressiveness against failure probability 2e^(-c·ε0²).
package adsampling

import (
	"errors"
	"math"
	"math/rand"

	"resinfer/internal/core"
	"resinfer/internal/matrix"
	"resinfer/internal/vec"
)

// Config controls the DCO.
type Config struct {
	// Epsilon0 is the hypothesis-test significance parameter; the
	// ADSampling authors recommend ~2.1.
	Epsilon0 float64
	// DeltaD is the dimension increment per test round; default 32.
	DeltaD int
	Seed   int64
}

// DCO is the ADSampling comparator.
type DCO struct {
	rotated  [][]float32
	rotation *matrix.Matrix
	dim      int
	eps0     float64
	deltaD   int
	// factors[d] caches (1+eps0/sqrt(d))^2 * d / D for each test depth d,
	// so the per-round prune test is one multiply and one compare:
	// prune iff partial > tau * factors[d].
	factors []float32
}

// New builds the DCO by rotating data with a fresh random orthogonal
// matrix.
func New(data [][]float32, cfg Config) (*DCO, error) {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errors.New("adsampling: empty data")
	}
	dim := len(data[0])
	if cfg.Epsilon0 <= 0 {
		cfg.Epsilon0 = 2.1
	}
	if cfg.DeltaD <= 0 {
		cfg.DeltaD = 32
	}
	if cfg.DeltaD > dim {
		cfg.DeltaD = dim
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rot := matrix.RandomOrthogonal(dim, rng)
	rotated := make([][]float32, len(data))
	for i, row := range data {
		if len(row) != dim {
			return nil, errors.New("adsampling: ragged data")
		}
		y, err := rot.ApplyF32(row)
		if err != nil {
			return nil, err
		}
		rotated[i] = y
	}
	d := &DCO{
		rotated:  rotated,
		rotation: rot,
		dim:      dim,
		eps0:     cfg.Epsilon0,
		deltaD:   cfg.DeltaD,
		factors:  make([]float32, dim+1),
	}
	for k := 1; k <= dim; k++ {
		mult := 1 + cfg.Epsilon0/math.Sqrt(float64(k))
		d.factors[k] = float32(mult * mult * float64(k) / float64(dim))
	}
	return d, nil
}

// NewWithRotation builds the DCO reusing pre-rotated data and its rotation
// matrix (used by tests and by index serialization).
func NewWithRotation(rotated [][]float32, rot *matrix.Matrix, cfg Config) (*DCO, error) {
	if len(rotated) == 0 || len(rotated[0]) == 0 {
		return nil, errors.New("adsampling: empty data")
	}
	dim := len(rotated[0])
	if rot.Rows != dim || rot.Cols != dim {
		return nil, errors.New("adsampling: rotation shape mismatch")
	}
	if cfg.Epsilon0 <= 0 {
		cfg.Epsilon0 = 2.1
	}
	if cfg.DeltaD <= 0 {
		cfg.DeltaD = 32
	}
	if cfg.DeltaD > dim {
		cfg.DeltaD = dim
	}
	d := &DCO{
		rotated:  rotated,
		rotation: rot,
		dim:      dim,
		eps0:     cfg.Epsilon0,
		deltaD:   cfg.DeltaD,
		factors:  make([]float32, dim+1),
	}
	for k := 1; k <= dim; k++ {
		mult := 1 + cfg.Epsilon0/math.Sqrt(float64(k))
		d.factors[k] = float32(mult * mult * float64(k) / float64(dim))
	}
	return d, nil
}

// Name implements core.DCO.
func (d *DCO) Name() string { return "adsampling" }

// Size implements core.DCO.
func (d *DCO) Size() int { return len(d.rotated) }

// Dim implements core.DCO.
func (d *DCO) Dim() int { return d.dim }

// ExtraBytes implements core.DCO: the D×D rotation matrix (stored as
// float64 here; the paper counts D² floats).
func (d *DCO) ExtraBytes() int64 { return int64(d.dim) * int64(d.dim) * 8 }

// Rotation exposes the rotation matrix for serialization.
func (d *DCO) Rotation() *matrix.Matrix { return d.rotation }

// Rotated exposes the rotated vectors (read-only by convention); used by
// the approximation-accuracy experiment (Table III).
func (d *DCO) Rotated() [][]float32 { return d.rotated }

// NewQuery implements core.DCO.
func (d *DCO) NewQuery(q []float32) (core.QueryEvaluator, error) {
	if len(q) != d.dim {
		return nil, errors.New("adsampling: query dimension mismatch")
	}
	rq, err := d.rotation.ApplyF32(q)
	if err != nil {
		return nil, err
	}
	return &evaluator{parent: d, q: rq}, nil
}

type evaluator struct {
	parent *DCO
	q      []float32
	stats  core.Stats
}

func (ev *evaluator) Distance(id int) float32 {
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.parent.dim)
	return vec.L2Sq(ev.q, ev.parent.rotated[id])
}

func (ev *evaluator) Compare(id int, tau float32) (float32, bool) {
	ev.stats.Comparisons++
	p := ev.parent
	x := p.rotated[id]
	if math.IsInf(float64(tau), 1) {
		ev.stats.ExactDistances++
		ev.stats.DimsScanned += int64(p.dim)
		return vec.L2Sq(ev.q, x), false
	}
	var partial float32
	d := 0
	for d < p.dim {
		next := d + p.deltaD
		if next > p.dim {
			next = p.dim
		}
		partial += vec.L2SqRange(ev.q, x, d, next)
		ev.stats.DimsScanned += int64(next - d)
		d = next
		if d < p.dim && partial > tau*p.factors[d] {
			ev.stats.Pruned++
			// Scaled partial distance as the approximate estimate.
			return partial * float32(p.dim) / float32(d), true
		}
	}
	ev.stats.ExactDistances++
	return partial, false
}

func (ev *evaluator) Stats() *core.Stats { return &ev.stats }
