// Package adsampling implements the ADSampling distance comparison
// operator of Gao & Long (SIGMOD 2023) — the state of the art the paper
// improves on (§III). Vectors are rotated by a random orthogonal matrix;
// at query time the squared distance is accumulated over increasing
// prefixes of the rotated coordinates and a Johnson–Lindenstrauss
// hypothesis test decides after each increment whether the candidate can
// already be pruned: with partial distance dis'_d over d of D dimensions,
// prune when
//
//	dis'_d · (D/d) > τ · (1 + ε0/√d)²
//
// which is the squared form of the paper's √(D/d)·‖·‖ > (1+ε0/√d)·√τ test.
// ε0 trades pruning aggressiveness against failure probability 2e^(-c·ε0²).
package adsampling

import (
	"errors"
	"math"
	"math/rand"

	"resinfer/internal/core"
	"resinfer/internal/matrix"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// Config controls the DCO.
type Config struct {
	// Epsilon0 is the hypothesis-test significance parameter; the
	// ADSampling authors recommend ~2.1.
	Epsilon0 float64
	// DeltaD is the dimension increment per test round; default 32.
	DeltaD int
	Seed   int64
}

// DCO is the ADSampling comparator.
type DCO struct {
	rotated  *store.Matrix
	rotation *matrix.Matrix
	dim      int
	eps0     float64
	deltaD   int
	// factors[d] caches (1+eps0/sqrt(d))^2 * d / D for each test depth d,
	// so the per-round prune test is one multiply and one compare:
	// prune iff partial > tau * factors[d].
	factors []float32
}

func (cfg *Config) withDefaults(dim int) {
	if cfg.Epsilon0 <= 0 {
		cfg.Epsilon0 = 2.1
	}
	if cfg.DeltaD <= 0 {
		cfg.DeltaD = 32
	}
	if cfg.DeltaD > dim {
		cfg.DeltaD = dim
	}
}

// New builds the DCO by rotating data with a fresh random orthogonal
// matrix.
func New(data *store.Matrix, cfg Config) (*DCO, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("adsampling: empty data")
	}
	dim := data.Dim()
	cfg.withDefaults(dim)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rot := matrix.RandomOrthogonal(dim, rng)
	rotated, err := store.New(data.Rows(), dim)
	if err != nil {
		return nil, err
	}
	for i := 0; i < data.Rows(); i++ {
		if err := rot.ApplyF32Into(rotated.Row(i), data.Row(i)); err != nil {
			return nil, err
		}
	}
	return newDCO(rotated, rot, cfg), nil
}

// NewWithRotation builds the DCO reusing pre-rotated data and its rotation
// matrix (used by tests and by index serialization).
func NewWithRotation(rotated *store.Matrix, rot *matrix.Matrix, cfg Config) (*DCO, error) {
	if rotated == nil || rotated.Rows() == 0 {
		return nil, errors.New("adsampling: empty data")
	}
	dim := rotated.Dim()
	if rot.Rows != dim || rot.Cols != dim {
		return nil, errors.New("adsampling: rotation shape mismatch")
	}
	cfg.withDefaults(dim)
	return newDCO(rotated, rot, cfg), nil
}

func newDCO(rotated *store.Matrix, rot *matrix.Matrix, cfg Config) *DCO {
	dim := rotated.Dim()
	d := &DCO{
		rotated:  rotated,
		rotation: rot,
		dim:      dim,
		eps0:     cfg.Epsilon0,
		deltaD:   cfg.DeltaD,
		factors:  make([]float32, dim+1),
	}
	for k := 1; k <= dim; k++ {
		mult := 1 + cfg.Epsilon0/math.Sqrt(float64(k))
		d.factors[k] = float32(mult * mult * float64(k) / float64(dim))
	}
	return d
}

// Name implements core.DCO.
func (d *DCO) Name() string { return "adsampling" }

// Size implements core.DCO.
func (d *DCO) Size() int { return d.rotated.Rows() }

// Dim implements core.DCO.
func (d *DCO) Dim() int { return d.dim }

// ExtraBytes implements core.DCO: the D×D rotation matrix (stored as
// float64 here; the paper counts D² floats).
func (d *DCO) ExtraBytes() int64 { return int64(d.dim) * int64(d.dim) * 8 }

// Rotation exposes the rotation matrix for serialization.
func (d *DCO) Rotation() *matrix.Matrix { return d.rotation }

// Epsilon0 returns the effective significance parameter (defaults
// applied), so serialization records what the comparator actually uses.
func (d *DCO) Epsilon0() float64 { return d.eps0 }

// DeltaD returns the effective dimension increment per test round.
func (d *DCO) DeltaD() int { return d.deltaD }

// Rotated exposes the rotated vectors (read-only by convention); used by
// the approximation-accuracy experiment (Table III).
func (d *DCO) Rotated() *store.Matrix { return d.rotated }

// NewQuery implements core.DCO.
func (d *DCO) NewQuery(q []float32) (core.QueryEvaluator, error) {
	ev := d.NewEvaluator()
	if err := ev.Reset(q); err != nil {
		return nil, err
	}
	return ev, nil
}

// NewEvaluator implements core.PooledDCO: the returned evaluator owns a
// reusable rotated-query buffer.
func (d *DCO) NewEvaluator() core.ResettableEvaluator {
	return &evaluator{parent: d, flat: d.rotated.Flat(), q: make([]float32, d.dim)}
}

type evaluator struct {
	parent *DCO
	flat   []float32 // rotated vectors, row-major
	q      []float32 // rotated query (owned scratch)
	stats  core.Stats
}

// Reset rotates q into the evaluator's scratch and zeroes the counters.
func (ev *evaluator) Reset(q []float32) error {
	if len(q) != ev.parent.dim {
		return errors.New("adsampling: query dimension mismatch")
	}
	if err := ev.parent.rotation.ApplyF32Into(ev.q, q); err != nil {
		return err
	}
	ev.stats = core.Stats{}
	return nil
}

func (ev *evaluator) Distance(id int) float32 {
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.parent.dim)
	return vec.L2SqFlat(ev.q, ev.flat, id*ev.parent.dim)
}

func (ev *evaluator) Compare(id int, tau float32) (float32, bool) {
	ev.stats.Comparisons++
	p := ev.parent
	base := id * p.dim
	if math.IsInf(float64(tau), 1) {
		ev.stats.ExactDistances++
		ev.stats.DimsScanned += int64(p.dim)
		return vec.L2SqFlat(ev.q, ev.flat, base), false
	}
	var partial float32
	d := 0
	for d < p.dim {
		next := d + p.deltaD
		if next > p.dim {
			next = p.dim
		}
		partial += vec.L2SqRangeFlat(ev.q, ev.flat, base, d, next)
		ev.stats.DimsScanned += int64(next - d)
		d = next
		if d < p.dim && partial > tau*p.factors[d] {
			ev.stats.Pruned++
			// Scaled partial distance as the approximate estimate.
			return partial * float32(p.dim) / float32(d), true
		}
	}
	ev.stats.ExactDistances++
	return partial, false
}

func (ev *evaluator) Stats() *core.Stats { return &ev.stats }
