package adsampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resinfer/internal/store"
	"resinfer/internal/vec"
)

func gauss(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(r.NormFloat64())
		}
		data[i] = row
	}
	return data
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := store.FromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestExactDistancePreserved(t *testing.T) {
	// Rotation is an isometry, so Distance must equal the original-space
	// distance within float tolerance.
	r := rand.New(rand.NewSource(1))
	data := gauss(r, 100, 48)
	dco, err := New(store.MustFromRows(data), Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := gauss(r, 1, 48)[0]
	ev, err := dco.NewQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 20; id++ {
		got := float64(ev.Distance(id))
		want := vec.L2Sq64(q, data[id])
		if math.Abs(got-want) > 1e-2*(1+want) {
			t.Fatalf("Distance(%d) = %v, want %v", id, got, want)
		}
	}
}

func TestCompareInfTauIsExact(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := gauss(r, 30, 16)
	dco, _ := New(store.MustFromRows(data), Config{Seed: 3, DeltaD: 4})
	ev, _ := dco.NewQuery(data[0])
	d, pruned := ev.Compare(5, float32(math.Inf(1)))
	if pruned {
		t.Fatal("must not prune against +Inf threshold")
	}
	want := vec.L2Sq64(data[0], data[5])
	if math.Abs(float64(d)-want) > 1e-2*(1+want) {
		t.Fatalf("inf-tau distance %v, want %v", d, want)
	}
}

// Soundness: when Compare declines to prune, the returned distance must be
// exact; when it prunes, the true distance must (almost always) exceed tau.
func TestCompareSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := gauss(r, 400, 64)
	dco, err := New(store.MustFromRows(data), Config{Seed: 5, DeltaD: 8, Epsilon0: 2.1})
	if err != nil {
		t.Fatal(err)
	}
	falsePrunes, prunes := 0, 0
	for qi := 0; qi < 20; qi++ {
		q := gauss(r, 1, 64)[0]
		ev, _ := dco.NewQuery(q)
		for id := 0; id < 400; id++ {
			exact := vec.L2Sq(q, data[id])
			tau := exact * (0.5 + r.Float32()) // thresholds around the true distance
			got, pruned := ev.Compare(id, tau)
			if pruned {
				prunes++
				if exact <= tau {
					falsePrunes++
				}
			} else if math.Abs(float64(got-exact)) > 1e-2*(1+float64(exact)) {
				t.Fatalf("non-pruned distance %v, want exact %v", got, exact)
			}
		}
	}
	if prunes == 0 {
		t.Fatal("test produced no prunes; thresholds mis-chosen")
	}
	// The JL bound makes false prunes very unlikely at eps0=2.1.
	if rate := float64(falsePrunes) / float64(prunes); rate > 0.01 {
		t.Fatalf("false prune rate %v too high (%d/%d)", rate, falsePrunes, prunes)
	}
}

func TestPruningSavesDimensions(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := gauss(r, 300, 128)
	dco, _ := New(store.MustFromRows(data), Config{Seed: 9, DeltaD: 16})
	q := gauss(r, 1, 128)[0]
	ev, _ := dco.NewQuery(q)
	// Tiny tau forces pruning almost immediately for every point.
	for id := range data {
		ev.Compare(id, 0.01)
	}
	st := ev.Stats()
	if st.Pruned < int64(len(data))*9/10 {
		t.Fatalf("expected heavy pruning, got %d/%d", st.Pruned, st.Comparisons)
	}
	if rate := st.ScanRate(128); rate > 0.5 {
		t.Fatalf("scan rate %v should be far below 1 under heavy pruning", rate)
	}
}

func TestNoPruneScanEqualsFull(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := gauss(r, 50, 32)
	dco, _ := New(store.MustFromRows(data), Config{Seed: 2, DeltaD: 8})
	q := gauss(r, 1, 32)[0]
	ev, _ := dco.NewQuery(q)
	// Huge tau: nothing prunes, everything scans fully.
	for id := range data {
		_, pruned := ev.Compare(id, 1e30)
		if pruned {
			t.Fatal("nothing should prune under huge tau")
		}
	}
	st := ev.Stats()
	if st.DimsScanned != int64(50*32) {
		t.Fatalf("DimsScanned = %d, want %d", st.DimsScanned, 50*32)
	}
}

// Property: the cached test factors are monotonically increasing in d and
// approach (slightly exceed) d/D from above.
func TestFactorsShape(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data := gauss(r, 10, 40)
	dco, _ := New(store.MustFromRows(data), Config{Seed: 1})
	f := func(ku uint8) bool {
		k := 1 + int(ku)%39
		if dco.factors[k] >= dco.factors[k+1] {
			return false
		}
		return float64(dco.factors[k]) > float64(k)/40.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueryDimMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dco, _ := New(store.MustFromRows(gauss(r, 10, 8)), Config{})
	if _, err := dco.NewQuery(make([]float32, 4)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestExtraBytes(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	dco, _ := New(store.MustFromRows(gauss(r, 10, 16)), Config{})
	if dco.ExtraBytes() != 16*16*8 {
		t.Fatalf("ExtraBytes = %d", dco.ExtraBytes())
	}
}

func TestNewWithRotationValidation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := gauss(r, 10, 8)
	dco, _ := New(store.MustFromRows(data), Config{Seed: 4})
	re, err := NewWithRotation(dco.rotated, dco.Rotation(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Dim() != 8 || re.Size() != 10 {
		t.Fatal("metadata mismatch")
	}
	if _, err := NewWithRotation(nil, dco.Rotation(), Config{}); err == nil {
		t.Fatal("expected empty error")
	}
}
