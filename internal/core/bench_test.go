package core

import (
	"math/rand"
	"testing"

	"resinfer/internal/heap"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// The Compare-loop benchmarks quantify the contiguous-layout win: a full
// k-NN scan through the result-queue threshold, once over per-row heap
// slices (the seed's [][]float32 data plane, allocated in shuffled order
// the way a parallel build leaves them) and once over the flat matrix.
// Run with: go test -bench=CompareLoop -benchmem ./internal/core/

const (
	benchN   = 8192
	benchDim = 128
	benchK   = 10
)

func benchData() (*store.Matrix, [][]float32, []float32) {
	rng := rand.New(rand.NewSource(7))
	mat, err := store.New(benchN, benchDim)
	if err != nil {
		panic(err)
	}
	buf := mat.Flat()
	for i := range buf {
		buf[i] = float32(rng.NormFloat64())
	}
	rows := make([][]float32, benchN)
	for _, i := range rng.Perm(benchN) {
		row := make([]float32, benchDim)
		copy(row, mat.Row(i))
		rows[i] = row
	}
	q := make([]float32, benchDim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	return mat, rows, q
}

func BenchmarkCompareLoopRows(b *testing.B) {
	_, rows, q := benchData()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		rq := heap.NewResultQueue(benchK)
		for id := range rows {
			d := vec.L2Sq(q, rows[id])
			if d < rq.Threshold() {
				rq.Push(id, d)
			}
		}
		sink += rq.Threshold()
	}
	_ = sink
}

func BenchmarkCompareLoopFlat(b *testing.B) {
	mat, _, q := benchData()
	exact, err := NewExact(mat)
	if err != nil {
		b.Fatal(err)
	}
	ev := exact.NewEvaluator()
	if err := ev.Reset(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		rq := heap.NewResultQueue(benchK)
		for id := 0; id < benchN; id++ {
			d, _ := ev.Compare(id, rq.Threshold())
			if d < rq.Threshold() {
				rq.Push(id, d)
			}
		}
		sink += rq.Threshold()
	}
	_ = sink
}
