// Package core defines the paper's central abstraction: the distance
// comparison operator (DCO). AKNN algorithms in the refinement phase never
// need raw distances per se — they need to decide whether a candidate's
// distance to the query exceeds the result queue's threshold τ, and only if
// it does not, the (exact) distance itself. A DCO owns the data layout
// required by its distance method (rotated vectors, quantization codes,
// norms) and builds a per-query evaluator that answers exactly those
// questions while counting the work it performed.
//
// Implementations in this repository: exact scan (this package),
// ADSampling (internal/adsampling), and the paper's DDCres / DDCpca /
// DDCopq (internal/ddc).
package core

import (
	"errors"
	"math"

	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// Stats counts the work a query evaluator performed. Indexes aggregate
// these to report the paper's scan-rate and pruned-rate metrics (Exp-6).
type Stats struct {
	// Comparisons is the number of Compare calls.
	Comparisons int64
	// Pruned counts comparisons resolved with an approximate distance
	// (the candidate was discarded without computing an exact distance).
	Pruned int64
	// DimsScanned is the total number of vector coordinates consumed by
	// Compare calls. For an exact method this is Comparisons·D; for
	// incremental methods it is smaller — DimsScanned / (Comparisons·D)
	// is the paper's scan rate.
	DimsScanned int64
	// ExactDistances counts full exact distance computations (Compare
	// fallthroughs plus Distance calls).
	ExactDistances int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Comparisons += other.Comparisons
	s.Pruned += other.Pruned
	s.DimsScanned += other.DimsScanned
	s.ExactDistances += other.ExactDistances
}

// PrunedRate returns Pruned / Comparisons (0 when no comparisons ran).
func (s *Stats) PrunedRate() float64 {
	if s.Comparisons == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.Comparisons)
}

// ScanRate returns the fraction of coordinates consumed relative to an
// exact scan over the same comparisons.
func (s *Stats) ScanRate(dim int) float64 {
	if s.Comparisons == 0 || dim <= 0 {
		return 0
	}
	return float64(s.DimsScanned) / float64(s.Comparisons*int64(dim))
}

// DCO builds per-query evaluators over a fixed dataset.
type DCO interface {
	// Name identifies the method (e.g. "exact", "adsampling", "ddc-res").
	Name() string
	// Size returns the number of points the DCO can evaluate.
	Size() int
	// Dim returns the data dimensionality.
	Dim() int
	// NewQuery prepares per-query state (query rotation, lookup tables,
	// error-bound suffix tables) and returns an evaluator. The returned
	// evaluator is NOT safe for concurrent use; create one per goroutine.
	NewQuery(q []float32) (QueryEvaluator, error)
	// ExtraBytes reports auxiliary memory beyond the raw float32 vectors:
	// rotation matrices, stored norms, quantization codes (Exp-3's space
	// accounting).
	ExtraBytes() int64
}

// QueryEvaluator answers threshold comparisons and exact distances for one
// query.
type QueryEvaluator interface {
	// Distance returns the exact squared Euclidean distance to point id.
	Distance(id int) float32
	// Compare decides whether dist(q, id) > tau. When pruned is true the
	// candidate may be discarded and dist holds the (corrected)
	// approximate distance — usable as an ordering hint but not exact.
	// When pruned is false, dist is the exact distance. A tau of +Inf
	// (result queue still filling) always takes the exact path.
	Compare(id int, tau float32) (dist float32, pruned bool)
	// Stats returns the accumulated work counters.
	Stats() *Stats
}

// ResettableEvaluator is a QueryEvaluator that can be re-primed for a new
// query, reusing its scratch buffers (rotated query, suffix tables, lookup
// tables) instead of allocating fresh ones. Reset zeroes the work counters.
// A reset evaluator must answer exactly like a freshly built one.
type ResettableEvaluator interface {
	QueryEvaluator
	Reset(q []float32) error
}

// PooledDCO is implemented by every DCO in this repository: NewEvaluator
// returns an unprimed evaluator whose scratch is preallocated. Callers
// (evaluator pools, batch searches) must Reset it before use. NewQuery is
// equivalent to NewEvaluator followed by Reset.
type PooledDCO interface {
	DCO
	NewEvaluator() ResettableEvaluator
}

// Exact is the baseline DCO computing every distance in full. It owns the
// original vectors in a flat row-major matrix; other DCOs that need
// original-space exact distances (e.g. DDCopq) share the same matrix.
type Exact struct {
	data *store.Matrix
}

// NewExact wraps a flat matrix in an exact DCO.
func NewExact(data *store.Matrix) (*Exact, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("core: empty data")
	}
	return &Exact{data: data}, nil
}

// Name implements DCO.
func (e *Exact) Name() string { return "exact" }

// Size implements DCO.
func (e *Exact) Size() int { return e.data.Rows() }

// Dim implements DCO.
func (e *Exact) Dim() int { return e.data.Dim() }

// ExtraBytes implements DCO: the exact method stores nothing extra.
func (e *Exact) ExtraBytes() int64 { return 0 }

// Data exposes the underlying vectors (read-only by convention) so index
// builders can compute construction-time distances without an evaluator.
func (e *Exact) Data() *store.Matrix { return e.data }

// NewQuery implements DCO.
func (e *Exact) NewQuery(q []float32) (QueryEvaluator, error) {
	ev := e.NewEvaluator()
	if err := ev.Reset(q); err != nil {
		return nil, err
	}
	return ev, nil
}

// NewEvaluator implements PooledDCO.
func (e *Exact) NewEvaluator() ResettableEvaluator {
	return &exactEvaluator{parent: e, flat: e.data.Flat(), dim: e.data.Dim()}
}

type exactEvaluator struct {
	parent *Exact
	flat   []float32
	dim    int
	q      []float32
	stats  Stats
}

func (ev *exactEvaluator) Reset(q []float32) error {
	if len(q) != ev.dim {
		return errors.New("core: query dimension mismatch")
	}
	ev.q = q
	ev.stats = Stats{}
	return nil
}

func (ev *exactEvaluator) Distance(id int) float32 {
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.dim)
	return vec.L2SqFlat(ev.q, ev.flat, id*ev.dim)
}

func (ev *exactEvaluator) Compare(id int, tau float32) (float32, bool) {
	ev.stats.Comparisons++
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.dim)
	d := vec.L2SqFlat(ev.q, ev.flat, id*ev.dim)
	_ = tau
	return d, false
}

func (ev *exactEvaluator) Stats() *Stats { return &ev.stats }

// InfThreshold is the threshold value used while a result queue is still
// filling; Compare implementations must not prune against it.
var InfThreshold = float32(math.Inf(1))
