// Package core defines the paper's central abstraction: the distance
// comparison operator (DCO). AKNN algorithms in the refinement phase never
// need raw distances per se — they need to decide whether a candidate's
// distance to the query exceeds the result queue's threshold τ, and only if
// it does not, the (exact) distance itself. A DCO owns the data layout
// required by its distance method (rotated vectors, quantization codes,
// norms) and builds a per-query evaluator that answers exactly those
// questions while counting the work it performed.
//
// Implementations in this repository: exact scan (this package),
// ADSampling (internal/adsampling), and the paper's DDCres / DDCpca /
// DDCopq (internal/ddc).
package core

import (
	"errors"
	"math"

	"resinfer/internal/vec"
)

// Stats counts the work a query evaluator performed. Indexes aggregate
// these to report the paper's scan-rate and pruned-rate metrics (Exp-6).
type Stats struct {
	// Comparisons is the number of Compare calls.
	Comparisons int64
	// Pruned counts comparisons resolved with an approximate distance
	// (the candidate was discarded without computing an exact distance).
	Pruned int64
	// DimsScanned is the total number of vector coordinates consumed by
	// Compare calls. For an exact method this is Comparisons·D; for
	// incremental methods it is smaller — DimsScanned / (Comparisons·D)
	// is the paper's scan rate.
	DimsScanned int64
	// ExactDistances counts full exact distance computations (Compare
	// fallthroughs plus Distance calls).
	ExactDistances int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Comparisons += other.Comparisons
	s.Pruned += other.Pruned
	s.DimsScanned += other.DimsScanned
	s.ExactDistances += other.ExactDistances
}

// PrunedRate returns Pruned / Comparisons (0 when no comparisons ran).
func (s *Stats) PrunedRate() float64 {
	if s.Comparisons == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.Comparisons)
}

// ScanRate returns the fraction of coordinates consumed relative to an
// exact scan over the same comparisons.
func (s *Stats) ScanRate(dim int) float64 {
	if s.Comparisons == 0 || dim <= 0 {
		return 0
	}
	return float64(s.DimsScanned) / float64(s.Comparisons*int64(dim))
}

// DCO builds per-query evaluators over a fixed dataset.
type DCO interface {
	// Name identifies the method (e.g. "exact", "adsampling", "ddc-res").
	Name() string
	// Size returns the number of points the DCO can evaluate.
	Size() int
	// Dim returns the data dimensionality.
	Dim() int
	// NewQuery prepares per-query state (query rotation, lookup tables,
	// error-bound suffix tables) and returns an evaluator. The returned
	// evaluator is NOT safe for concurrent use; create one per goroutine.
	NewQuery(q []float32) (QueryEvaluator, error)
	// ExtraBytes reports auxiliary memory beyond the raw float32 vectors:
	// rotation matrices, stored norms, quantization codes (Exp-3's space
	// accounting).
	ExtraBytes() int64
}

// QueryEvaluator answers threshold comparisons and exact distances for one
// query.
type QueryEvaluator interface {
	// Distance returns the exact squared Euclidean distance to point id.
	Distance(id int) float32
	// Compare decides whether dist(q, id) > tau. When pruned is true the
	// candidate may be discarded and dist holds the (corrected)
	// approximate distance — usable as an ordering hint but not exact.
	// When pruned is false, dist is the exact distance. A tau of +Inf
	// (result queue still filling) always takes the exact path.
	Compare(id int, tau float32) (dist float32, pruned bool)
	// Stats returns the accumulated work counters.
	Stats() *Stats
}

// Exact is the baseline DCO computing every distance in full. It owns the
// original vectors; other DCOs that need original-space exact distances
// (e.g. DDCopq) embed the same data slice.
type Exact struct {
	data [][]float32
	dim  int
}

// NewExact wraps data (non-empty, rectangular) in an exact DCO.
func NewExact(data [][]float32) (*Exact, error) {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errors.New("core: empty data")
	}
	dim := len(data[0])
	for _, row := range data {
		if len(row) != dim {
			return nil, errors.New("core: ragged data")
		}
	}
	return &Exact{data: data, dim: dim}, nil
}

// Name implements DCO.
func (e *Exact) Name() string { return "exact" }

// Size implements DCO.
func (e *Exact) Size() int { return len(e.data) }

// Dim implements DCO.
func (e *Exact) Dim() int { return e.dim }

// ExtraBytes implements DCO: the exact method stores nothing extra.
func (e *Exact) ExtraBytes() int64 { return 0 }

// Data exposes the underlying vectors (read-only by convention) so index
// builders can compute construction-time distances without an evaluator.
func (e *Exact) Data() [][]float32 { return e.data }

// NewQuery implements DCO.
func (e *Exact) NewQuery(q []float32) (QueryEvaluator, error) {
	if len(q) != e.dim {
		return nil, errors.New("core: query dimension mismatch")
	}
	return &exactEvaluator{parent: e, q: q}, nil
}

type exactEvaluator struct {
	parent *Exact
	q      []float32
	stats  Stats
}

func (ev *exactEvaluator) Distance(id int) float32 {
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.parent.dim)
	return vec.L2Sq(ev.q, ev.parent.data[id])
}

func (ev *exactEvaluator) Compare(id int, tau float32) (float32, bool) {
	ev.stats.Comparisons++
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.parent.dim)
	d := vec.L2Sq(ev.q, ev.parent.data[id])
	_ = tau
	return d, false
}

func (ev *exactEvaluator) Stats() *Stats { return &ev.stats }

// InfThreshold is the threshold value used while a result queue is still
// filling; Compare implementations must not prune against it.
var InfThreshold = float32(math.Inf(1))
