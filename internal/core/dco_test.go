package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resinfer/internal/store"
	"resinfer/internal/vec"
)

func toy(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(r.NormFloat64())
		}
		data[i] = row
	}
	return data
}

func toyMat(r *rand.Rand, n, d int) *store.Matrix {
	return store.MustFromRows(toy(r, n, d))
}

func TestNewExactErrors(t *testing.T) {
	if _, err := NewExact(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := store.FromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestExactDistanceMatchesL2(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := toy(r, 50, 8)
	dco, err := NewExact(store.MustFromRows(data))
	if err != nil {
		t.Fatal(err)
	}
	q := toy(r, 1, 8)[0]
	ev, err := dco.NewQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for id := range data {
		if got, want := ev.Distance(id), vec.L2Sq(q, data[id]); got != want {
			t.Fatalf("Distance(%d) = %v, want %v", id, got, want)
		}
	}
}

func TestExactCompareNeverPrunes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := toy(r, 20, 4)
	dco, _ := NewExact(store.MustFromRows(data))
	ev, _ := dco.NewQuery(data[0])
	for id := range data {
		d, pruned := ev.Compare(id, 0.001)
		if pruned {
			t.Fatal("exact DCO must never prune")
		}
		if d != vec.L2Sq(data[0], data[id]) {
			t.Fatal("exact Compare distance mismatch")
		}
	}
	st := ev.Stats()
	if st.Comparisons != 20 || st.Pruned != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.DimsScanned != 20*4 {
		t.Fatalf("DimsScanned = %d", st.DimsScanned)
	}
}

func TestExactQueryDimMismatch(t *testing.T) {
	dco, _ := NewExact(store.MustFromRows([][]float32{{1, 2}}))
	if _, err := dco.NewQuery([]float32{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestStatsAddAndRates(t *testing.T) {
	var a Stats
	a.Add(Stats{Comparisons: 10, Pruned: 6, DimsScanned: 100, ExactDistances: 4})
	a.Add(Stats{Comparisons: 10, Pruned: 2, DimsScanned: 60, ExactDistances: 8})
	if a.Comparisons != 20 || a.Pruned != 8 {
		t.Fatalf("Add: %+v", a)
	}
	if got := a.PrunedRate(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("PrunedRate = %v", got)
	}
	if got := a.ScanRate(10); math.Abs(got-160.0/200.0) > 1e-12 {
		t.Fatalf("ScanRate = %v", got)
	}
	var zero Stats
	if zero.PrunedRate() != 0 || zero.ScanRate(8) != 0 {
		t.Fatal("zero stats rates must be 0")
	}
}

// Property: exact DCO's metadata is consistent with its input.
func TestExactMetadata(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, d := 1+r.Intn(30), 1+r.Intn(16)
		data := toyMat(r, n, d)
		dco, err := NewExact(data)
		if err != nil {
			return false
		}
		return dco.Size() == n && dco.Dim() == d && dco.ExtraBytes() == 0 &&
			dco.Name() == "exact" && dco.Data().Rows() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInfThreshold(t *testing.T) {
	if !math.IsInf(float64(InfThreshold), 1) {
		t.Fatal("InfThreshold must be +Inf")
	}
}
