package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"resinfer/internal/pca"
	"resinfer/internal/vec"
)

func TestGenerateShapes(t *testing.T) {
	ds, err := Generate(GenConfig{Name: "t", N: 500, Dim: 24, Queries: 10, TrainQueries: 20, Seed: 1, VE32: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Data) != 500 || len(ds.Queries) != 10 || len(ds.Train) != 20 {
		t.Fatalf("shapes: %d %d %d", len(ds.Data), len(ds.Queries), len(ds.Train))
	}
	for _, row := range ds.Data[:5] {
		if len(row) != 24 {
			t.Fatal("wrong dim")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{N: 0, Dim: 4}); err == nil {
		t.Fatal("expected N error")
	}
	if _, err := Generate(GenConfig{N: 10, Dim: 4, Queries: -1}); err == nil {
		t.Fatal("expected negative-queries error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Name: "d", N: 100, Dim: 8, Queries: 5, Seed: 42, VE32: 0.6}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a.Data {
		if !vec.Equal(a.Data[i], b.Data[i]) {
			t.Fatal("same seed must reproduce identical data")
		}
	}
}

func TestSolveDecay(t *testing.T) {
	// Solving then evaluating should give back the target.
	for _, target := range []float64{0.18, 0.36, 0.55, 0.67, 0.82} {
		g := solveDecay(300, 32, target)
		got := (1 - math.Pow(g, 32)) / (1 - math.Pow(g, 300))
		if math.Abs(got-target) > 1e-6 {
			t.Errorf("target %v: solved %v gives %v", target, g, got)
		}
	}
	if solveDecay(16, 32, 0.9) != 1 {
		t.Error("dim <= d must return flat profile")
	}
	if solveDecay(300, 32, 0.05) != 1 {
		t.Error("target below uniform must return flat profile")
	}
}

func TestVE32CalibrationSurvivesGeneration(t *testing.T) {
	// PCA trained on generated data should capture roughly the requested
	// variance fraction in 32 dims — the property the whole substitution
	// argument rests on.
	// Dim must be large enough that the target exceeds the uniform floor
	// 32/Dim, otherwise the flat profile is the best the generator can do.
	for _, target := range []float64{0.2, 0.6, 0.8} {
		ds, err := Generate(GenConfig{Name: "cal", N: 6000, Dim: 256, Seed: 7, VE32: target})
		if err != nil {
			t.Fatal(err)
		}
		m, err := pca.Train(ds.Data, pca.Config{})
		if err != nil {
			t.Fatal(err)
		}
		got := m.VarianceExplained(32)
		if math.Abs(got-target) > 0.08 {
			t.Errorf("target VE32 %v, PCA measured %v", target, got)
		}
	}
}

func TestMixerIsIsometry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := newMixer(40, rng)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make([]float32, 40)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		before := float64(vec.NormSq(x))
		m.apply(x)
		after := float64(vec.NormSq(x))
		return math.Abs(before-after) < 1e-3*(1+before)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBruteForceKNNExactOnToyData(t *testing.T) {
	data := [][]float32{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	queries := [][]float32{{0.1, 0}, {2.9, 0}}
	gt, err := BruteForceKNN(data, queries, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gt[0][0] != 0 || gt[0][1] != 1 {
		t.Fatalf("query 0 gt = %v", gt[0])
	}
	if gt[1][0] != 3 || gt[1][1] != 2 {
		t.Fatalf("query 1 gt = %v", gt[1])
	}
}

func TestBruteForceKNNErrors(t *testing.T) {
	if _, err := BruteForceKNN(nil, nil, 1, 1); err == nil {
		t.Fatal("expected empty-data error")
	}
	if _, err := BruteForceKNN([][]float32{{1}}, nil, 0, 1); err == nil {
		t.Fatal("expected k error")
	}
}

func TestBruteForceKNNClampsK(t *testing.T) {
	data := [][]float32{{0}, {1}}
	gt, err := BruteForceKNN(data, [][]float32{{0}}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt[0]) != 2 {
		t.Fatalf("expected clamp to n, got %d", len(gt[0]))
	}
}

// Property: brute-force results are sorted by distance and unique.
func TestBruteForceSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(100)
		data := make([][]float32, n)
		for i := range data {
			data[i] = []float32{float32(r.NormFloat64()), float32(r.NormFloat64())}
		}
		q := [][]float32{{float32(r.NormFloat64()), float32(r.NormFloat64())}}
		gt, err := BruteForceKNN(data, q, 10, 4)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		prev := float32(-1)
		for _, id := range gt[0] {
			if seen[id] {
				return false
			}
			seen[id] = true
			d := vec.L2Sq(q[0], data[id])
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRecall(t *testing.T) {
	truth := [][]int{{1, 2, 3}, {4, 5, 6}}
	perfect := [][]int{{3, 2, 1}, {6, 5, 4}}
	if r := Recall(perfect, truth, 3); r != 1 {
		t.Fatalf("perfect recall = %v", r)
	}
	half := [][]int{{1, 9, 3}, {9, 5, 8}}
	if r := Recall(half, truth, 3); math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("half recall = %v", r)
	}
	if r := Recall(nil, truth, 3); r != 0 {
		t.Fatalf("empty recall = %v", r)
	}
	// Truncation to k.
	long := [][]int{{1, 2, 3, 99, 98}, {4, 5, 6, 97, 96}}
	if r := Recall(long, truth, 3); r != 1 {
		t.Fatalf("k-truncated recall = %v", r)
	}
}

func TestOODQueriesShifted(t *testing.T) {
	cfg := GenConfig{Name: "ood", N: 2000, Dim: 32, Seed: 5, VE32: 0.6}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ood, err := OODQueries(cfg, 100, 4.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ood) != 100 {
		t.Fatalf("len = %d", len(ood))
	}
	// OOD queries should be farther from the data mean than in-dist data.
	mean := make([]float64, 32)
	for _, row := range ds.Data {
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(len(ds.Data))
	}
	dist := func(x []float32) float64 {
		var s float64
		for j, v := range x {
			d := float64(v) - mean[j]
			s += d * d
		}
		return s
	}
	var inAvg, oodAvg float64
	for _, row := range ds.Data[:100] {
		inAvg += dist(row)
	}
	for _, row := range ood {
		oodAvg += dist(row)
	}
	if oodAvg <= inAvg {
		t.Fatalf("OOD queries not shifted: %v vs %v", oodAvg, inAvg)
	}
	if _, err := OODQueries(cfg, 0, 1, 1); err == nil {
		t.Fatal("expected n error")
	}
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) < 8 {
		t.Fatalf("expected >=8 profiles, got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.N <= 0 || p.Dim <= 0 || p.VE32 <= 0 || p.VE32 >= 1 {
			t.Fatalf("profile %q has invalid parameters: %+v", p.Name, p)
		}
	}
	// Paper-quoted VE32 values must be encoded.
	for name, want := range map[string]float64{"gist": 0.67, "sift": 0.82, "word2vec": 0.36, "glove": 0.18} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.VE32-want) > 1e-9 {
			t.Errorf("%s VE32 = %v, want %v", name, p.VE32, want)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("expected unknown-profile error")
	}
}

func TestFvecsRoundTrip(t *testing.T) {
	rows := [][]float32{{1.5, -2.25, 3}, {0, 1e-9, 42}}
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !vec.Equal(got[0], rows[0]) || !vec.Equal(got[1], rows[1]) {
		t.Fatalf("round trip mismatch: %v", got)
	}
}

func TestFvecsRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFvecs(&buf, [][]float32{{1, 2}})
	b := buf.Bytes()
	// Truncate mid-row.
	if _, err := ReadFvecs(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("expected truncation error")
	}
	// Mixed dimensions.
	var mixed bytes.Buffer
	_ = WriteFvecs(&mixed, [][]float32{{1, 2}})
	_ = WriteFvecs(&mixed, [][]float32{{1, 2, 3}})
	if _, err := ReadFvecs(&mixed); err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	rows := [][]int{{1, 2, 3}, {-1, 0, 7}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("ivecs mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestFvecsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fvecs")
	rows := [][]float32{{9, 8, 7}}
	if err := SaveFvecsFile(path, rows); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFvecsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(got[0], rows[0]) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFvecsFile(filepath.Join(dir, "missing.fvecs")); err == nil {
		t.Fatal("expected missing-file error")
	}
}
