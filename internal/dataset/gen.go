// Package dataset provides the data substrate for the reproduction: a
// synthetic vector generator whose variance-skew profile is calibrated to
// the real benchmark datasets the paper uses, brute-force ground truth, and
// fvecs/ivecs file I/O.
//
// The paper's qualitative results hinge on two dataset properties it
// analyzes explicitly: dimensionality and how skewed the variance spectrum
// is (it quotes the fraction of variance a 32-dim PCA preserves: GIST 67%,
// SIFT 82%, WORD2VEC 36%, GLOVE 18% — §VII-B Exp-1). The generator
// reproduces both: points are drawn from a Gaussian mixture whose
// per-dimension variances follow a geometric decay solved numerically to
// hit the target 32-dim variance fraction, then mixed by a hidden
// orthogonal transform (random Householder reflections, a permutation and
// sign flips) so the principal directions are not axis-aligned and PCA has
// to discover them.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// Dataset is a generated or loaded vector collection.
type Dataset struct {
	Name    string
	Dim     int
	Data    [][]float32 // base vectors
	Queries [][]float32 // evaluation queries
	Train   [][]float32 // training queries (classifier calibration)

	mat *store.Matrix // lazily built flat view of Data
}

// Matrix returns Data as a flat row-major matrix, building (and caching)
// it on first use. Callers must not mutate Data afterwards.
func (ds *Dataset) Matrix() *store.Matrix {
	if ds.mat == nil {
		ds.mat = store.MustFromRows(ds.Data)
	}
	return ds.mat
}

// GenConfig parameterizes the synthetic generator.
type GenConfig struct {
	Name         string
	N            int // base vectors
	Dim          int
	Queries      int
	TrainQueries int
	Clusters     int // Gaussian mixture components; default max(8, N/2000)
	// VE32 is the target fraction of variance captured by a 32-dim PCA;
	// the generator solves the geometric decay rate to match. Values in
	// (Dim>32 ? (32/Dim, 1) : ignored).
	VE32 float64
	// Drift shifts the base-vector mean linearly over insert order: row i
	// is biased by Drift·(i/(N−1)) standard deviations of the leading
	// direction on every coordinate (the same bias shape OODQueries
	// uses), so late rows are out-of-distribution relative to early ones.
	// Queries and training queries are NOT drifted — they model the
	// historical workload, which is exactly what makes freshly ingested
	// drifted vectors exercise the retrain-on-compaction path. Zero
	// disables drift.
	Drift float64
	Seed  int64
}

// Generate produces a synthetic dataset per cfg.
func Generate(cfg GenConfig) (*Dataset, error) {
	if cfg.N <= 0 || cfg.Dim <= 0 {
		return nil, errors.New("dataset: N and Dim must be positive")
	}
	if cfg.Queries < 0 || cfg.TrainQueries < 0 {
		return nil, errors.New("dataset: negative query counts")
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = cfg.N / 1000
		if cfg.Clusters < 16 {
			cfg.Clusters = 16
		}
	}
	if cfg.VE32 <= 0 || cfg.VE32 >= 1 {
		cfg.VE32 = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	sigmas := varianceProfile(cfg.Dim, cfg.VE32)
	mix := newMixer(cfg.Dim, rng)

	// Cluster centers and points share the anisotropy so the global
	// covariance keeps the calibrated profile:
	// Var_global = (centerScale² + withinScale²)·σ², with the two scales
	// chosen to sum (in squares) to 1. The center contribution is kept
	// small because the empirical center covariance has rank ≤ Clusters
	// and would otherwise concentrate variance into few directions,
	// inflating the measured VE32 above the calibration target.
	const centerScale = 0.25
	withinScale := math.Sqrt(1 - centerScale*centerScale)
	centers := make([][]float64, cfg.Clusters)
	for c := range centers {
		row := make([]float64, cfg.Dim)
		for j := range row {
			row[j] = centerScale * sigmas[j] * rng.NormFloat64()
		}
		centers[c] = row
	}

	draw := func(r *rand.Rand) []float32 {
		c := centers[r.Intn(len(centers))]
		row := make([]float32, cfg.Dim)
		for j := range row {
			row[j] = float32(c[j] + withinScale*sigmas[j]*r.NormFloat64())
		}
		mix.apply(row)
		return row
	}

	ds := &Dataset{Name: cfg.Name, Dim: cfg.Dim}
	ds.Data = make([][]float32, cfg.N)
	for i := range ds.Data {
		ds.Data[i] = draw(rng)
	}
	if cfg.Drift != 0 && cfg.N > 1 {
		for i, row := range ds.Data {
			bias := float32(cfg.Drift * sigmas[0] * float64(i) / float64(cfg.N-1))
			for j := range row {
				row[j] += bias
			}
		}
	}
	ds.Queries = make([][]float32, cfg.Queries)
	for i := range ds.Queries {
		ds.Queries[i] = draw(rng)
	}
	ds.Train = make([][]float32, cfg.TrainQueries)
	for i := range ds.Train {
		ds.Train[i] = draw(rng)
	}
	return ds, nil
}

// OODQueries generates n out-of-distribution queries for ds: the same
// spectral profile but fresh mixture centers shifted away from the data's,
// modeling the query drift studied in the technical report's Exp-A.2/A.3.
func OODQueries(cfg GenConfig, n int, shift float64, seed int64) ([][]float32, error) {
	if n <= 0 {
		return nil, errors.New("dataset: n must be positive")
	}
	sub := cfg
	sub.N = n
	sub.Queries = 0
	sub.TrainQueries = 0
	// A different seed gives fresh centers; the added bias vector moves
	// the whole query cloud off-distribution by `shift` standard
	// deviations of the leading direction.
	sub.Seed = seed + 7_777_777
	tmp, err := Generate(sub)
	if err != nil {
		return nil, err
	}
	sigmas := varianceProfile(cfg.Dim, cfg.VE32)
	bias := float32(shift * sigmas[0])
	for _, q := range tmp.Data {
		for j := range q {
			q[j] += bias
		}
	}
	return tmp.Data, nil
}

// varianceProfile returns per-dimension standard deviations σ_i following
// a geometric decay σ²_i = γ^i with γ solved so that the first 32
// dimensions hold the ve32 fraction of total variance.
func varianceProfile(dim int, ve32 float64) []float64 {
	gamma := solveDecay(dim, 32, ve32)
	out := make([]float64, dim)
	for i := range out {
		out[i] = math.Sqrt(math.Pow(gamma, float64(i)))
	}
	return out
}

// solveDecay binary-searches the geometric ratio γ ∈ (0,1] such that
// (1-γ^d)/(1-γ^dim) = target. For dim <= d any γ works (returns 1); for a
// target at or below the uniform fraction d/dim it returns 1 (flat).
func solveDecay(dim, d int, target float64) float64 {
	if dim <= d {
		return 1
	}
	uniform := float64(d) / float64(dim)
	if target <= uniform {
		return 1
	}
	frac := func(g float64) float64 {
		if g >= 1 {
			return uniform
		}
		return (1 - math.Pow(g, float64(d))) / (1 - math.Pow(g, float64(dim)))
	}
	lo, hi := 1e-9, 1-1e-12 // frac(lo) → ~1, frac(hi) → uniform
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if frac(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// mixer is a fast hidden orthogonal transform: sign flips, a coordinate
// permutation, and k Householder reflections. Applying it costs O(k·D) per
// vector instead of the O(D²) of a dense rotation, while still producing a
// dense, non-axis-aligned covariance for PCA to untangle.
type mixer struct {
	perm  []int
	signs []float32
	hh    [][]float32 // unit Householder vectors
}

func newMixer(dim int, rng *rand.Rand) *mixer {
	m := &mixer{
		perm:  rng.Perm(dim),
		signs: make([]float32, dim),
		hh:    make([][]float32, 3),
	}
	for i := range m.signs {
		if rng.Intn(2) == 0 {
			m.signs[i] = 1
		} else {
			m.signs[i] = -1
		}
	}
	for k := range m.hh {
		v := make([]float32, dim)
		var norm float64
		for i := range v {
			v[i] = float32(rng.NormFloat64())
			norm += float64(v[i]) * float64(v[i])
		}
		inv := float32(1 / math.Sqrt(norm))
		for i := range v {
			v[i] *= inv
		}
		m.hh[k] = v
	}
	return m
}

// apply transforms x in place.
func (m *mixer) apply(x []float32) {
	// Signs and permutation.
	tmp := make([]float32, len(x))
	for i, p := range m.perm {
		tmp[i] = x[p] * m.signs[p]
	}
	copy(x, tmp)
	// Householder reflections: x ← x − 2 v ⟨v,x⟩.
	for _, v := range m.hh {
		dot := vec.Dot(v, x)
		vec.Axpy(-2*dot, v, x)
	}
}

// Profile identifies one of the paper's benchmark datasets and the
// synthetic analog standing in for it.
type Profile struct {
	GenConfig
	// PaperN and PaperNote document what the paper used.
	PaperN    int
	PaperNote string
}

// Profiles returns the laptop-scale analogs of the paper's Table II
// datasets (plus the Ant Group 512-dim scenario of Exp-8). Dimensions
// match the paper; sizes are scaled down and the variance-skew target VE32
// is set from the paper's quoted numbers where available, interpolated by
// modality otherwise (image/audio: skewed; text: flat).
func Profiles() []Profile {
	mk := func(name string, n, dim, q, tq, ve1000 int, paperN int, note string) Profile {
		return Profile{
			GenConfig: GenConfig{
				Name:         name,
				N:            n,
				Dim:          dim,
				Queries:      q,
				TrainQueries: tq,
				VE32:         float64(ve1000) / 1000,
				Seed:         int64(len(name))*1_000_003 + int64(dim),
			},
			PaperN:    paperN,
			PaperNote: note,
		}
	}
	return []Profile{
		mk("msong", 12000, 420, 100, 800, 600, 992_272, "audio; skewed spectrum"),
		mk("gist", 8000, 960, 50, 500, 670, 1_000_000, "image; VE32=67% quoted in paper"),
		mk("deep", 20000, 256, 100, 1000, 550, 1_000_000, "image CNN embeddings"),
		mk("word2vec", 15000, 300, 100, 800, 360, 1_000_000, "text; VE32=36% quoted in paper"),
		mk("glove", 15000, 300, 100, 800, 180, 2_196_017, "text; VE32=18% quoted in paper"),
		mk("tiny", 15000, 384, 100, 800, 600, 5_000_000, "image (TINY5M analog)"),
		mk("tiny80", 40000, 150, 100, 800, 700, 79_302_017, "image (TINY80M analog)"),
		mk("sift", 50000, 128, 100, 800, 820, 100_000_000, "image; VE32=82% quoted in paper"),
		mk("ant512", 10000, 512, 100, 800, 650, 1_000_000, "Ant Group face-embedding analog (Exp-8)"),
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}
