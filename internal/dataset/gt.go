package dataset

import (
	"errors"
	"runtime"
	"sync"

	"resinfer/internal/heap"
	"resinfer/internal/vec"
)

// BruteForceKNN computes, for each query, the ids of its k nearest base
// vectors under squared Euclidean distance, in ascending-distance order.
// Queries are processed in parallel across workers (default GOMAXPROCS).
// This is the exact ground truth every recall number is measured against.
func BruteForceKNN(data, queries [][]float32, k, workers int) ([][]int, error) {
	if len(data) == 0 {
		return nil, errors.New("dataset: empty data")
	}
	if k <= 0 {
		return nil, errors.New("dataset: k must be positive")
	}
	if k > len(data) {
		k = len(data)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]int, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for qi := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			q := queries[qi]
			rq := heap.NewResultQueue(k)
			for id, row := range data {
				d := vec.L2Sq(q, row)
				if d < rq.Threshold() {
					rq.Push(id, d)
				}
			}
			items := rq.Sorted()
			ids := make([]int, len(items))
			for i, it := range items {
				ids[i] = it.ID
			}
			out[qi] = ids
		}(qi)
	}
	wg.Wait()
	return out, nil
}

// Recall returns |result ∩ truth| / k averaged over queries — the paper's
// recall@K. result rows may be shorter than k (missing entries count as
// misses).
func Recall(results, truth [][]int, k int) float64 {
	if len(results) == 0 || k <= 0 {
		return 0
	}
	var total float64
	for i := range results {
		if i >= len(truth) {
			break
		}
		t := truth[i]
		if len(t) > k {
			t = t[:k]
		}
		set := make(map[int]struct{}, len(t))
		for _, id := range t {
			set[id] = struct{}{}
		}
		hits := 0
		r := results[i]
		if len(r) > k {
			r = r[:k]
		}
		for _, id := range r {
			if _, ok := set[id]; ok {
				hits++
			}
		}
		total += float64(hits) / float64(len(t))
	}
	return total / float64(len(results))
}
