package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// The fvecs/ivecs formats are the de-facto interchange formats of the ANN
// benchmark datasets the paper uses (SIFT/GIST/DEEP releases): each row is
// a little-endian int32 dimension followed by that many 4-byte values.

// WriteFvecs writes rows to w in fvecs format.
func WriteFvecs(w io.Writer, rows [][]float32) error {
	bw := bufio.NewWriter(w)
	var buf [4]byte
	for _, row := range rows {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(row)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFvecs reads all fvecs rows from r. Rows must share one dimension.
func ReadFvecs(r io.Reader) ([][]float32, error) {
	br := bufio.NewReader(r)
	var rows [][]float32
	dim := -1
	var buf [4]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return rows, nil
			}
			return nil, err
		}
		d := int(int32(binary.LittleEndian.Uint32(buf[:])))
		if d <= 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible fvecs dimension %d", d)
		}
		if dim == -1 {
			dim = d
		} else if d != dim {
			return nil, fmt.Errorf("dataset: inconsistent fvecs dimensions %d vs %d", d, dim)
		}
		row := make([]float32, d)
		for i := range row {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("dataset: truncated fvecs row: %w", err)
			}
			row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
		}
		rows = append(rows, row)
	}
}

// WriteIvecs writes integer rows (e.g. ground-truth id lists) in ivecs
// format.
func WriteIvecs(w io.Writer, rows [][]int) error {
	bw := bufio.NewWriter(w)
	var buf [4]byte
	for _, row := range rows {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(row)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(buf[:], uint32(int32(v)))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadIvecs reads all ivecs rows from r.
func ReadIvecs(r io.Reader) ([][]int, error) {
	br := bufio.NewReader(r)
	var rows [][]int
	var buf [4]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return rows, nil
			}
			return nil, err
		}
		d := int(int32(binary.LittleEndian.Uint32(buf[:])))
		if d < 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible ivecs dimension %d", d)
		}
		row := make([]int, d)
		for i := range row {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("dataset: truncated ivecs row: %w", err)
			}
			row[i] = int(int32(binary.LittleEndian.Uint32(buf[:])))
		}
		rows = append(rows, row)
	}
}

// SaveFvecsFile writes rows to path.
func SaveFvecsFile(path string, rows [][]float32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteFvecs(f, rows); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFvecsFile reads rows from path.
func LoadFvecsFile(path string) ([][]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f)
}
