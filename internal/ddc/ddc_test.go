package ddc

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"resinfer/internal/core"
	"resinfer/internal/dataset"
	"resinfer/internal/vec"
)

// testData caches one small calibrated dataset for the whole package.
var testDS *dataset.Dataset

func getDS(t testing.TB) *dataset.Dataset {
	if testDS == nil {
		ds, err := dataset.Generate(dataset.GenConfig{
			Name: "ddc-test", N: 3000, Dim: 64, Queries: 20, TrainQueries: 60,
			VE32: 0.85, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		testDS = ds
	}
	return testDS
}

func TestNewResErrors(t *testing.T) {
	if _, err := NewRes(nil, ResConfig{}); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestResDistanceExact(t *testing.T) {
	ds := getDS(t)
	r, err := NewRes(ds.Matrix(), ResConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries[0]
	ev, err := r.NewQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 50; id++ {
		got := float64(ev.Distance(id))
		want := vec.L2Sq64(q, ds.Data[id])
		if math.Abs(got-want) > 1e-2*(1+want) {
			t.Fatalf("Distance(%d) = %v, want %v", id, got, want)
		}
	}
}

func TestResCompareFallthroughIsExact(t *testing.T) {
	ds := getDS(t)
	r, _ := NewRes(ds.Matrix(), ResConfig{Seed: 1, InitD: 8, DeltaD: 8})
	q := ds.Queries[1]
	ev, _ := r.NewQuery(q)
	for id := 0; id < 100; id++ {
		want := vec.L2Sq64(q, ds.Data[id])
		// Huge tau: never prunes, always exact.
		got, pruned := ev.Compare(id, 1e30)
		if pruned {
			t.Fatal("must not prune under huge tau")
		}
		if math.Abs(float64(got)-want) > 1e-2*(1+want) {
			t.Fatalf("fallthrough dist %v, want %v", got, want)
		}
	}
}

func TestResCompareInfTau(t *testing.T) {
	ds := getDS(t)
	r, _ := NewRes(ds.Matrix(), ResConfig{Seed: 1})
	ev, _ := r.NewQuery(ds.Queries[0])
	_, pruned := ev.Compare(3, float32(math.Inf(1)))
	if pruned {
		t.Fatal("must not prune against +Inf")
	}
}

// Soundness: with m=3 the false-prune rate must be far below 1%.
func TestResCompareSoundness(t *testing.T) {
	ds := getDS(t)
	r, _ := NewRes(ds.Matrix(), ResConfig{Seed: 1, Multiplier: 3})
	falsePrunes, prunes := 0, 0
	rng := rand.New(rand.NewSource(4))
	for _, q := range ds.Queries {
		ev, _ := r.NewQuery(q)
		for trial := 0; trial < 200; trial++ {
			id := rng.Intn(len(ds.Data))
			exact := vec.L2Sq(q, ds.Data[id])
			tau := exact * (0.5 + rng.Float32())
			_, pruned := ev.Compare(id, tau)
			if pruned {
				prunes++
				if exact <= tau {
					falsePrunes++
				}
			}
		}
	}
	if prunes == 0 {
		t.Fatal("no prunes; test mis-configured")
	}
	if rate := float64(falsePrunes) / float64(prunes); rate > 0.01 {
		t.Fatalf("false prune rate %v (%d/%d)", rate, falsePrunes, prunes)
	}
}

// Effectiveness: on skewed data DDCres must scan far fewer dimensions than
// an exact scan when pruning against tight thresholds.
func TestResScansFewDimensions(t *testing.T) {
	ds := getDS(t)
	r, _ := NewRes(ds.Matrix(), ResConfig{Seed: 1, InitD: 8, DeltaD: 8})
	q := ds.Queries[2]
	ev, _ := r.NewQuery(q)
	// Tau near the 10-NN distance: most points should prune early.
	dists := make([]float32, len(ds.Data))
	for id := range ds.Data {
		dists[id] = vec.L2Sq(q, ds.Data[id])
	}
	tau := quantile32(dists, 0.003)
	for id := range ds.Data {
		ev.Compare(id, tau)
	}
	st := ev.Stats()
	if rate := st.ScanRate(64); rate > 0.5 {
		t.Fatalf("scan rate %v should be well below 1 (pruned %d/%d)",
			rate, st.Pruned, st.Comparisons)
	}
}

// DDCres must prune earlier (fewer dims) than a random rotation would:
// proxy check — the PCA model concentrates variance, so sigma at depth 32
// must be far below sigma at depth 0.
func TestResSigmaDecay(t *testing.T) {
	ds := getDS(t)
	r, _ := NewRes(ds.Matrix(), ResConfig{Seed: 1})
	ev0, _ := r.NewQuery(ds.Queries[0])
	rev := ev0.(*resEvaluator)
	if rev.sigma[32] > rev.sigma[0]*0.7 {
		t.Fatalf("sigma[32]=%v should decay strongly from sigma[0]=%v on skewed data",
			rev.sigma[32], rev.sigma[0])
	}
	if rev.sigma[64] != 0 {
		t.Fatalf("sigma at full depth must be 0, got %v", rev.sigma[64])
	}
}

func TestResAlgorithm1Mode(t *testing.T) {
	// DeltaD >= Dim gives the non-incremental Algorithm 1: one test at
	// InitD, then exact.
	ds := getDS(t)
	r, _ := NewRes(ds.Matrix(), ResConfig{Seed: 1, InitD: 16, DeltaD: 9999})
	q := ds.Queries[3]
	ev, _ := r.NewQuery(q)
	_, pruned := ev.Compare(0, 1e-6)
	if !pruned {
		t.Fatal("tiny tau must prune at the first test")
	}
	st := ev.Stats()
	if st.DimsScanned != 16 {
		t.Fatalf("Algorithm-1 mode scanned %d dims, want 16", st.DimsScanned)
	}
}

func TestResEstimationError(t *testing.T) {
	ds := getDS(t)
	r, _ := NewRes(ds.Matrix(), ResConfig{Seed: 1})
	q := ds.Queries[0]
	// At depth 0 the "error" is -2<q_rot, x_rot> over all dims; at full
	// depth it is 0.
	e, err := r.EstimationError(q, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("full-depth estimation error = %v, want 0", e)
	}
	if _, err := r.EstimationError(q, 5, 65); err == nil {
		t.Fatal("expected depth error")
	}
	// Error at depth d must satisfy dis = dis'_d + eps identity:
	// dis' = C1 - C2 = |x|^2+|q|^2-2<q_d,x_d>; eps = -2<q_r,x_r>;
	// dis = dis' + eps.
	rev, _ := r.NewQuery(q)
	exact := float64(rev.Distance(5))
	rq, _ := r.Model().Project(q)
	x := r.Rotated().Row(5)
	for _, d := range []int{8, 16, 32} {
		eps, _ := r.EstimationError(q, 5, d)
		disApprox := float64(vec.NormSq(x)) + float64(vec.NormSq(rq)) -
			2*vec.Dot64(rq[:d], x[:d])
		if math.Abs(disApprox+eps-exact) > 1e-2*(1+exact) {
			t.Fatalf("depth %d: decomposition identity violated: %v + %v != %v",
				d, disApprox, eps, exact)
		}
	}
}

func TestResExtraBytes(t *testing.T) {
	ds := getDS(t)
	r, _ := NewRes(ds.Matrix(), ResConfig{Seed: 1})
	want := int64(64*64*8 + len(ds.Data)*4)
	if r.ExtraBytes() != want {
		t.Fatalf("ExtraBytes = %d, want %d", r.ExtraBytes(), want)
	}
}

func TestCollectSamples(t *testing.T) {
	ds := getDS(t)
	samples, err := CollectSamples(ds.Matrix(), ds.Train[:10], CollectConfig{K: 20, NegPerQuery: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("len = %d", len(samples))
	}
	for _, qs := range samples {
		if len(qs.IDs) != len(qs.Exact) || len(qs.IDs) != len(qs.Labels) {
			t.Fatal("ragged sample")
		}
		n0, n1 := 0, 0
		for i, lab := range qs.Labels {
			switch lab {
			case 0:
				n0++
				if qs.Exact[i] > qs.Tau {
					t.Fatal("label-0 sample beyond tau")
				}
			case 1:
				n1++
				if qs.Exact[i] <= qs.Tau {
					t.Fatal("label-1 sample within tau")
				}
			default:
				t.Fatal("bad label")
			}
			// Exact distances must be genuine.
			want := vec.L2Sq(qs.Query, ds.Data[qs.IDs[i]])
			if qs.Exact[i] != want {
				t.Fatal("stored exact distance mismatch")
			}
		}
		if n0 != 20 || n1 == 0 {
			t.Fatalf("n0=%d n1=%d", n0, n1)
		}
	}
}

func TestCollectSamplesErrors(t *testing.T) {
	ds := getDS(t)
	if _, err := CollectSamples(nil, ds.Train[:1], CollectConfig{}); err == nil {
		t.Fatal("expected empty-data error")
	}
	if _, err := CollectSamples(ds.Matrix(), nil, CollectConfig{}); err == nil {
		t.Fatal("expected no-queries error")
	}
}

func TestPCADCOBasics(t *testing.T) {
	ds := getDS(t)
	p, err := NewPCA(ds.Matrix(), ds.Train, PCAConfig{
		Seed:    2,
		Collect: CollectConfig{K: 20, NegPerQuery: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "ddc-pca" || p.Size() != len(ds.Data) || p.Dim() != 64 {
		t.Fatal("metadata")
	}
	if len(p.Levels()) == 0 || len(p.Classifiers()) != len(p.Levels()) {
		t.Fatal("levels/classifiers mismatch")
	}
	q := ds.Queries[0]
	ev, err := p.NewQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Exactness of the fallthrough.
	for id := 0; id < 30; id++ {
		want := vec.L2Sq64(q, ds.Data[id])
		got, pruned := ev.Compare(id, 1e30)
		if pruned {
			t.Fatal("huge tau must not prune")
		}
		if math.Abs(float64(got)-want) > 1e-2*(1+want) {
			t.Fatalf("pca fallthrough %v want %v", got, want)
		}
	}
}

// The learned correction must keep the false-prune rate near the recall
// target: label-0-style candidates (true neighbors) survive.
func TestPCADCOFalsePruneRate(t *testing.T) {
	ds := getDS(t)
	p, err := NewPCA(ds.Matrix(), ds.Train, PCAConfig{
		Seed:         3,
		TargetRecall: 0.995,
		Collect:      CollectConfig{K: 20, NegPerQuery: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	falsePrunes, keepers := 0, 0
	for _, q := range ds.Queries {
		ev, _ := p.NewQuery(q)
		// Ground truth top-20: these must essentially never prune at
		// tau = the 20-NN distance.
		dists := make([]float32, len(ds.Data))
		for id := range ds.Data {
			dists[id] = vec.L2Sq(q, ds.Data[id])
		}
		tau := quantile32(dists, 20.0/float64(len(ds.Data)))
		for id := range ds.Data {
			if dists[id] <= tau {
				keepers++
				if _, pruned := ev.Compare(id, tau); pruned {
					falsePrunes++
				}
			}
		}
	}
	if keepers == 0 {
		t.Fatal("no keepers found")
	}
	if rate := float64(falsePrunes) / float64(keepers); rate > 0.05 {
		t.Fatalf("false prune rate on true neighbors = %v (%d/%d)",
			rate, falsePrunes, keepers)
	}
}

func TestPCADCOLevelValidation(t *testing.T) {
	ds := getDS(t)
	if _, err := NewPCA(ds.Matrix(), ds.Train, PCAConfig{Levels: []int{64}, Seed: 1,
		Collect: CollectConfig{K: 10, NegPerQuery: 20}}); err == nil {
		t.Fatal("expected level >= dim error")
	}
	if _, err := NewPCA(ds.Matrix(), ds.Train, PCAConfig{TargetRecall: 1.5, Seed: 1}); err == nil {
		t.Fatal("expected target recall error")
	}
}

func TestOPQDCOBasics(t *testing.T) {
	ds := getDS(t)
	o, err := NewOPQ(ds.Matrix(), ds.Train, OPQConfig{
		M: 8, Nbits: 6, OPQIters: 2, Seed: 4,
		Collect: CollectConfig{K: 20, NegPerQuery: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "ddc-opq" || o.Size() != len(ds.Data) || o.Dim() != 64 {
		t.Fatal("metadata")
	}
	q := ds.Queries[0]
	ev, err := o.NewQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 30; id++ {
		want := vec.L2Sq(q, ds.Data[id])
		got, pruned := ev.Compare(id, 1e30)
		if pruned {
			t.Fatal("huge tau must not prune")
		}
		if got != want {
			t.Fatalf("opq fallthrough %v want %v (must be exact)", got, want)
		}
	}
	if _, err := o.NewQuery(make([]float32, 3)); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestOPQDCOPrunesAggressively(t *testing.T) {
	ds := getDS(t)
	o, err := NewOPQ(ds.Matrix(), ds.Train, OPQConfig{
		M: 8, Nbits: 6, OPQIters: 2, Seed: 5,
		Collect: CollectConfig{K: 20, NegPerQuery: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries[1]
	ev, _ := o.NewQuery(q)
	dists := make([]float32, len(ds.Data))
	for id := range ds.Data {
		dists[id] = vec.L2Sq(q, ds.Data[id])
	}
	tau := quantile32(dists, 20.0/float64(len(ds.Data)))
	for id := range ds.Data {
		ev.Compare(id, tau)
	}
	st := ev.Stats()
	if st.PrunedRate() < 0.5 {
		t.Fatalf("pruned rate %v too low; classifier useless", st.PrunedRate())
	}
	// And the paper's key safety property: among pruned points, almost
	// none are true neighbors.
	falsePrunes := 0
	ev2, _ := o.NewQuery(q)
	for id := range ds.Data {
		if _, pruned := ev2.Compare(id, tau); pruned && dists[id] <= tau {
			falsePrunes++
		}
	}
	if falsePrunes > 3 {
		t.Fatalf("%d true neighbors were pruned", falsePrunes)
	}
}

func TestOPQDCONoResidualFeature(t *testing.T) {
	ds := getDS(t)
	o, err := NewOPQ(ds.Matrix(), ds.Train[:30], OPQConfig{
		M: 8, Nbits: 4, OPQIters: 1, Seed: 6, DisableResidualFeature: true,
		Collect: CollectConfig{K: 10, NegPerQuery: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.clf.W) != 2 {
		t.Fatalf("expected 2 features without residual, got %d", len(o.clf.W))
	}
}

func TestResDeterministic(t *testing.T) {
	ds := getDS(t)
	a, _ := NewRes(ds.Matrix(), ResConfig{Seed: 7})
	b, _ := NewRes(ds.Matrix(), ResConfig{Seed: 7})
	if !vec.Equal(a.Rotated().Row(3), b.Rotated().Row(3)) {
		t.Fatal("same seed must rotate identically")
	}
}

// quantile32 returns the q-quantile of xs without mutating the original.
func quantile32(xs []float32, q float64) float32 {
	cp := append([]float32(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	k := int(q * float64(len(cp)-1))
	if k < 0 {
		k = 0
	}
	return cp[k]
}

var _ core.DCO = (*Res)(nil)
var _ core.DCO = (*PCADCO)(nil)
var _ core.DCO = (*OPQDCO)(nil)

var _ core.PooledDCO = (*Res)(nil)
var _ core.PooledDCO = (*PCADCO)(nil)
var _ core.PooledDCO = (*OPQDCO)(nil)
