package ddc

import (
	"errors"
	"io"

	"resinfer/internal/learn"
	"resinfer/internal/pca"
	"resinfer/internal/persist"
	"resinfer/internal/quant"
	"resinfer/internal/store"
)

// Version 2 of the comparator streams stores vector payloads as flat
// row-major matrix blocks (store.Matrix) instead of per-row slices.
const (
	resMagic    = "RIRES2"
	pcaDCOMagic = "RIDPC2"
	opqDCOMagic = "RIDOQ2"
)

// Encode writes the DDCres comparator (PCA model, rotated vectors, norms,
// tuning) onto an existing persist stream.
func (r *Res) Encode(pw *persist.Writer) {
	pw.Magic(resMagic)
	r.model.Encode(pw)
	r.rotated.Encode(pw)
	pw.F32s(r.norms)
	pw.F64(float64(r.m))
	pw.Int(r.initD)
	pw.Int(r.deltaD)
}

// DecodeRes reads a DDCres comparator previously written by Encode.
func DecodeRes(pr *persist.Reader) (*Res, error) {
	pr.Magic(resMagic)
	model, err := pca.Decode(pr)
	if err != nil {
		return nil, err
	}
	rotated, err := store.Decode(pr)
	if err != nil {
		return nil, err
	}
	r := &Res{
		model:   model,
		dim:     model.Dim,
		rotated: rotated,
	}
	r.norms = pr.F32s()
	r.m = float32(pr.F64())
	r.initD = pr.Int()
	r.deltaD = pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if rotated.Dim() != r.dim || len(r.norms) != rotated.Rows() ||
		r.initD <= 0 || r.initD > r.dim || r.deltaD <= 0 || r.m <= 0 {
		return nil, errors.New("ddc: corrupt encoded Res")
	}
	return r, nil
}

// WriteTo serializes the comparator to w as a standalone stream.
func (r *Res) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w)
	r.Encode(pw)
	return 0, pw.Flush()
}

// ReadRes deserializes a standalone DDCres comparator.
func ReadRes(rd io.Reader) (*Res, error) {
	return DecodeRes(persist.NewReader(rd))
}

// Encode writes the DDCpca comparator onto an existing persist stream.
func (p *PCADCO) Encode(pw *persist.Writer) {
	pw.Magic(pcaDCOMagic)
	p.model.Encode(pw)
	p.rotated.Encode(pw)
	pw.Ints(p.levels)
	pw.Int(len(p.classifiers))
	for _, c := range p.classifiers {
		c.Encode(pw)
	}
}

// DecodePCA reads a DDCpca comparator previously written by Encode.
func DecodePCA(pr *persist.Reader) (*PCADCO, error) {
	pr.Magic(pcaDCOMagic)
	model, err := pca.Decode(pr)
	if err != nil {
		return nil, err
	}
	rotated, err := store.Decode(pr)
	if err != nil {
		return nil, err
	}
	p := &PCADCO{
		model:   model,
		dim:     model.Dim,
		rotated: rotated,
		levels:  pr.Ints(),
	}
	nc := pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if nc != len(p.levels) || nc == 0 {
		return nil, errors.New("ddc: corrupt classifier count")
	}
	p.classifiers = make([]*learn.Classifier, nc)
	for i := range p.classifiers {
		c, err := learn.Decode(pr)
		if err != nil {
			return nil, err
		}
		p.classifiers[i] = c
	}
	if rotated.Dim() != p.dim {
		return nil, errors.New("ddc: corrupt encoded PCADCO")
	}
	for _, l := range p.levels {
		if l <= 0 || l >= p.dim {
			return nil, errors.New("ddc: corrupt level")
		}
	}
	return p, nil
}

// WriteTo serializes the comparator to w as a standalone stream.
func (p *PCADCO) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w)
	p.Encode(pw)
	return 0, pw.Flush()
}

// ReadPCA deserializes a standalone DDCpca comparator.
func ReadPCA(rd io.Reader) (*PCADCO, error) {
	return DecodePCA(persist.NewReader(rd))
}

// Encode writes the DDCopq comparator onto an existing persist stream.
// The original vectors are REQUIRED at decode time (they are owned by the
// caller / the index, not duplicated into the stream).
func (o *OPQDCO) Encode(pw *persist.Writer) {
	pw.Magic(opqDCOMagic)
	pw.Int(o.dim)
	pw.Bool(o.useResidual)
	o.opq.EncodeTo(pw)
	pw.Bytes(o.codes)
	pw.F32s(o.resNorms)
	o.clf.Encode(pw)
}

// DecodeOPQ reads a DDCopq comparator previously written by Encode,
// rebinding it to the given original vectors (used for exact fallbacks).
func DecodeOPQ(pr *persist.Reader, data *store.Matrix) (*OPQDCO, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("ddc: DecodeOPQ needs the original vectors")
	}
	pr.Magic(opqDCOMagic)
	o := &OPQDCO{
		data:        data,
		dim:         pr.Int(),
		useResidual: pr.Bool(),
	}
	opq, err := quant.DecodeOPQ(pr)
	if err != nil {
		return nil, err
	}
	o.opq = opq
	o.codes = pr.Bytes()
	o.resNorms = pr.F32s()
	clf, err := learn.Decode(pr)
	if err != nil {
		return nil, err
	}
	o.clf = clf
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if o.dim != data.Dim() || len(o.codes) != data.Rows()*opq.PQ.M ||
		len(o.resNorms) != data.Rows() {
		return nil, errors.New("ddc: encoded OPQDCO does not match the data")
	}
	return o, nil
}

// WriteTo serializes the comparator to w as a standalone stream.
func (o *OPQDCO) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w)
	o.Encode(pw)
	return 0, pw.Flush()
}

// ReadOPQ deserializes a standalone DDCopq comparator.
func ReadOPQ(rd io.Reader, data *store.Matrix) (*OPQDCO, error) {
	return DecodeOPQ(persist.NewReader(rd), data)
}
