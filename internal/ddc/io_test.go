package ddc

import (
	"bytes"
	"testing"

	"resinfer/internal/store"
	"resinfer/internal/vec"
)

func TestResRoundTrip(t *testing.T) {
	ds := getDS(t)
	orig, err := NewRes(ds.Matrix(), ResConfig{Seed: 41, InitD: 8, DeltaD: 16, Multiplier: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadRes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != orig.Dim() || loaded.Size() != orig.Size() {
		t.Fatal("metadata")
	}
	if loaded.m != orig.m || loaded.initD != orig.initD || loaded.deltaD != orig.deltaD {
		t.Fatal("tuning lost")
	}
	// Identical Compare behavior on a few probes.
	q := ds.Queries[0]
	evA, _ := orig.NewQuery(q)
	evB, _ := loaded.NewQuery(q)
	for id := 0; id < 50; id++ {
		tau := float32(1.0)
		da, pa := evA.Compare(id, tau)
		db, pb := evB.Compare(id, tau)
		if da != db || pa != pb {
			t.Fatalf("Compare(%d) differs after round trip", id)
		}
	}
}

func TestResRoundTripCorruption(t *testing.T) {
	ds := getDS(t)
	orig, _ := NewRes(store.MustFromRows(ds.Data[:200]), ResConfig{Seed: 43})
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadRes(bytes.NewReader(b[:len(b)/3])); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte("YYYYYY"), b[6:]...)
	if _, err := ReadRes(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestPCADCORoundTrip(t *testing.T) {
	ds := getDS(t)
	orig, err := NewPCA(ds.Matrix(), ds.Train[:30], PCAConfig{
		Seed: 45, Collect: CollectConfig{K: 10, NegPerQuery: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPCA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Levels()) != len(orig.Levels()) {
		t.Fatal("levels lost")
	}
	q := ds.Queries[1]
	evA, _ := orig.NewQuery(q)
	evB, _ := loaded.NewQuery(q)
	for id := 0; id < 50; id++ {
		da, pa := evA.Compare(id, 2.0)
		db, pb := evB.Compare(id, 2.0)
		if da != db || pa != pb {
			t.Fatalf("PCADCO Compare(%d) differs after round trip", id)
		}
	}
}

func TestOPQDCORoundTrip(t *testing.T) {
	ds := getDS(t)
	orig, err := NewOPQ(ds.Matrix(), ds.Train[:30], OPQConfig{
		M: 8, Nbits: 4, OPQIters: 1, Seed: 47,
		Collect: CollectConfig{K: 10, NegPerQuery: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadOPQ(&buf, ds.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries[2]
	evA, _ := orig.NewQuery(q)
	evB, _ := loaded.NewQuery(q)
	for id := 0; id < 50; id++ {
		da, pa := evA.Compare(id, 2.0)
		db, pb := evB.Compare(id, 2.0)
		if da != db || pa != pb {
			t.Fatalf("OPQDCO Compare(%d) differs after round trip", id)
		}
	}
	// Wrong data binding must be rejected.
	var buf2 bytes.Buffer
	if _, err := orig.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOPQ(&buf2, store.MustFromRows(ds.Data[:10])); err == nil {
		t.Fatal("expected data-mismatch error")
	}
	if _, err := ReadOPQ(bytes.NewReader(nil), nil); err == nil {
		t.Fatal("expected missing-data error")
	}
}

func TestResRoundTripPreservesExactDistances(t *testing.T) {
	ds := getDS(t)
	orig, _ := NewRes(store.MustFromRows(ds.Data[:300]), ResConfig{Seed: 49})
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadRes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(orig.Rotated().Row(5), loaded.Rotated().Row(5)) {
		t.Fatal("rotated vectors differ")
	}
	if !vec.Equal(orig.Norms(), loaded.Norms()) {
		t.Fatal("norms differ")
	}
}
