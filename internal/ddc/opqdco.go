package ddc

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"resinfer/internal/core"
	"resinfer/internal/learn"
	"resinfer/internal/quant"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// OPQConfig controls DDCopq: the data-driven correction over OPQ
// asymmetric distances (§V-B). Besides the approximate distance and the
// threshold, the classifier receives the candidate's quantization-residual
// norm ‖u − centroid(u)‖² as a third feature ("this additional feature
// further enhances the effectiveness of the linear model").
type OPQConfig struct {
	M     int // PQ subspaces; default Dim/4 capped at 64
	Nbits int // bits per code; default 8
	// OPQIters is the number of alternating rotation-optimization rounds.
	OPQIters int
	// OPQSample caps rows used for OPQ training (the paper samples 65536).
	OPQSample int
	// TargetRecall is the label-0 recall target; default 0.995.
	TargetRecall float64
	// DisableResidualFeature drops the quantization-residual feature from
	// the classifier (used by the feature-ablation benchmark). The zero
	// value keeps the feature on, matching the paper's configuration.
	DisableResidualFeature bool
	Collect                CollectConfig
	TrainEpochs            int
	Seed                   int64
	Workers                int
}

// OPQDCO is the DDCopq comparator.
type OPQDCO struct {
	data        *store.Matrix // original vectors for the exact fallback
	opq         *quant.OPQ
	codes       []byte
	resNorms    []float32
	clf         *learn.Classifier
	dim         int
	useResidual bool
}

// NewOPQ trains OPQ on data, encodes every point, collects labeled samples
// from trainQueries and fits the correction classifier.
func NewOPQ(data *store.Matrix, trainQueries [][]float32, cfg OPQConfig) (*OPQDCO, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("ddc: empty data")
	}
	dim := data.Dim()
	if cfg.M <= 0 {
		cfg.M = dim / 4
		if cfg.M > 64 {
			cfg.M = 64
		}
		if cfg.M < 1 {
			cfg.M = 1
		}
	}
	if cfg.Nbits <= 0 {
		cfg.Nbits = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TargetRecall == 0 {
		cfg.TargetRecall = 0.995
	}
	if cfg.TargetRecall < 0 || cfg.TargetRecall > 1 {
		return nil, fmt.Errorf("ddc: target recall %v outside (0,1]", cfg.TargetRecall)
	}
	opq, err := quant.TrainOPQ(data, quant.OPQConfig{
		PQ:          quant.PQConfig{M: cfg.M, Nbits: cfg.Nbits, Seed: cfg.Seed},
		Iters:       cfg.OPQIters,
		TrainSample: cfg.OPQSample,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	codes, err := opq.EncodeAll(data)
	if err != nil {
		return nil, err
	}
	o := &OPQDCO{
		data:        data,
		opq:         opq,
		codes:       codes,
		resNorms:    make([]float32, data.Rows()),
		dim:         dim,
		useResidual: !cfg.DisableResidualFeature,
	}
	m := opq.PQ.M
	y := make([]float32, dim)
	dec := make([]float32, dim)
	for i := 0; i < data.Rows(); i++ {
		if err := opq.RotateInto(y, data.Row(i)); err != nil {
			return nil, err
		}
		if err := opq.PQ.DecodeInto(dec, codes[i*m:(i+1)*m]); err != nil {
			return nil, err
		}
		o.resNorms[i] = vec.L2Sq(y, dec)
	}
	if err := o.Retrain(trainQueries, cfg); err != nil {
		return nil, err
	}
	return o, nil
}

// Retrain refits the correction classifier on new training queries without
// retraining OPQ — the OOD mitigation of §V-C.
func (o *OPQDCO) Retrain(trainQueries [][]float32, cfg OPQConfig) error {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TargetRecall == 0 {
		cfg.TargetRecall = 0.995
	}
	cc := cfg.Collect
	cc.Seed = cfg.Seed
	cc.Workers = cfg.Workers
	samples, err := CollectSamples(o.data, trainQueries, cc)
	if err != nil {
		return err
	}
	m := o.opq.PQ.M
	var feats [][]float64
	var labels []int
	for _, qs := range samples {
		lut, err := o.opq.BuildLUT(qs.Query)
		if err != nil {
			return err
		}
		for i, id := range qs.IDs {
			approx := lut.Distance(o.codes[id*m : (id+1)*m])
			f := []float64{float64(approx), float64(qs.Tau)}
			if o.useResidual {
				f = append(f, float64(o.resNorms[id]))
			}
			feats = append(feats, f)
			labels = append(labels, qs.Labels[i])
		}
	}
	clf, err := learn.Train(feats, labels, learn.Config{
		Epochs:        cfg.TrainEpochs,
		Seed:          cfg.Seed,
		TargetRecall0: cfg.TargetRecall,
	})
	if err != nil {
		return fmt.Errorf("ddc: opq classifier: %w", err)
	}
	o.clf = clf
	return nil
}

// Name implements core.DCO.
func (o *OPQDCO) Name() string { return "ddc-opq" }

// Size implements core.DCO.
func (o *OPQDCO) Size() int { return o.data.Rows() }

// Dim implements core.DCO.
func (o *OPQDCO) Dim() int { return o.dim }

// ExtraBytes implements core.DCO: rotation, codes and residual norms
// (§VI-B's n·M·nbits bits plus the OPQ rotation).
func (o *OPQDCO) ExtraBytes() int64 {
	return int64(o.dim)*int64(o.dim)*8 +
		int64(o.opq.PQ.CodeBytes(o.data.Rows())) +
		int64(len(o.resNorms))*4
}

// Quantizer exposes the trained OPQ for diagnostics.
func (o *OPQDCO) Quantizer() *quant.OPQ { return o.opq }

// NewQuery implements core.DCO: build the per-query asymmetric-distance
// lookup table (O(D·2^nbits)), after which each approximate distance costs
// M table lookups.
func (o *OPQDCO) NewQuery(q []float32) (core.QueryEvaluator, error) {
	ev := o.NewEvaluator()
	if err := ev.Reset(q); err != nil {
		return nil, err
	}
	return ev, nil
}

// NewEvaluator implements core.PooledDCO: the returned evaluator owns the
// lookup table and the rotation scratch.
func (o *OPQDCO) NewEvaluator() core.ResettableEvaluator {
	return &opqEvaluator{
		parent: o,
		flat:   o.data.Flat(),
		rot:    make([]float32, o.dim),
		lut:    &quant.LUT{Tab: make([]float32, o.opq.PQ.M*o.opq.PQ.K)},
	}
}

type opqEvaluator struct {
	parent *OPQDCO
	flat   []float32 // original vectors, row-major
	q      []float32 // caller query (exact fallbacks run in original space)
	rot    []float32 // rotated-query scratch for the LUT build
	lut    *quant.LUT
	stats  core.Stats
}

// Reset rebuilds the lookup table for q in place and zeroes the counters.
func (ev *opqEvaluator) Reset(q []float32) error {
	p := ev.parent
	if len(q) != p.dim {
		return errors.New("ddc: query dimension mismatch")
	}
	if err := p.opq.BuildLUTInto(ev.lut, ev.rot, q); err != nil {
		return err
	}
	ev.q = q
	ev.stats = core.Stats{}
	return nil
}

func (ev *opqEvaluator) Distance(id int) float32 {
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.parent.dim)
	return vec.L2SqFlat(ev.q, ev.flat, id*ev.parent.dim)
}

// Compare scores the classifier on (dis'_opq, τ [, residual]); a prune
// vote discards the candidate with the asymmetric distance as the
// estimate, otherwise the exact distance is computed on the original
// vectors. Quantization has no incremental refinement, so the fallback is
// a single full scan (§V-B).
func (ev *opqEvaluator) Compare(id int, tau float32) (float32, bool) {
	ev.stats.Comparisons++
	p := ev.parent
	if math.IsInf(float64(tau), 1) {
		ev.stats.ExactDistances++
		ev.stats.DimsScanned += int64(p.dim)
		return vec.L2SqFlat(ev.q, ev.flat, id*p.dim), false
	}
	m := p.opq.PQ.M
	approx := ev.lut.Distance(p.codes[id*m : (id+1)*m])
	ev.stats.DimsScanned += int64(m) // M lookups stand in for M coordinates
	var feat [3]float64
	feat[0] = float64(approx)
	feat[1] = float64(tau)
	fs := feat[:2]
	if p.useResidual {
		feat[2] = float64(p.resNorms[id])
		fs = feat[:3]
	}
	if p.clf.Score(fs) > 0 {
		ev.stats.Pruned++
		return approx, true
	}
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(p.dim)
	return vec.L2SqFlat(ev.q, ev.flat, id*p.dim), false
}

func (ev *opqEvaluator) Stats() *core.Stats { return &ev.stats }
