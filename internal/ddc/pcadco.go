package ddc

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"resinfer/internal/core"
	"resinfer/internal/learn"
	"resinfer/internal/pca"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// PCAConfig controls DDCpca: the data-driven correction over plain PCA
// projected distances (§V-B, "we use a straightforward PCA projection as an
// approximate distance measure without applying the decomposition").
type PCAConfig struct {
	// Levels are the projection depths at which classifiers are trained
	// (Incremental Correction, §V-B). Default: 32, 64, 128, ... up to but
	// excluding Dim.
	Levels []int
	// TargetRecall is the label-0 recall target r for the adaptive
	// boundary adjustment; default 0.995 (Exp-2's best tradeoff).
	TargetRecall float64
	Collect      CollectConfig
	TrainEpochs  int
	PCASample    int
	Seed         int64
	Workers      int
}

// PCADCO is the DDCpca comparator.
type PCADCO struct {
	rotated     *store.Matrix
	model       *pca.Model
	classifiers []*learn.Classifier
	levels      []int
	dim         int
}

// NewPCA trains PCA, collects labeled samples from trainQueries, and fits
// one linear classifier per projection level.
func NewPCA(data *store.Matrix, trainQueries [][]float32, cfg PCAConfig) (*PCADCO, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("ddc: empty data")
	}
	model, err := pca.Train(data.ToRows(), pca.Config{SampleSize: cfg.PCASample, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return NewPCAFromModel(data, trainQueries, model, cfg)
}

// NewPCAFromModel is NewPCA with a pre-trained PCA model.
func NewPCAFromModel(data *store.Matrix, trainQueries [][]float32, model *pca.Model, cfg PCAConfig) (*PCADCO, error) {
	dim := model.Dim
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TargetRecall == 0 {
		cfg.TargetRecall = 0.995
	}
	if cfg.TargetRecall < 0 || cfg.TargetRecall > 1 {
		return nil, fmt.Errorf("ddc: target recall %v outside (0,1]", cfg.TargetRecall)
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		for d := 32; d < dim; d *= 2 {
			levels = append(levels, d)
		}
		if len(levels) == 0 { // dim <= 32
			levels = []int{dim / 2}
		}
	}
	for _, l := range levels {
		if l <= 0 || l >= dim {
			return nil, fmt.Errorf("ddc: level %d outside (0, %d)", l, dim)
		}
	}

	rotated, err := model.ProjectMatrix(data, cfg.Workers)
	if err != nil {
		return nil, err
	}
	p := &PCADCO{rotated: rotated, model: model, levels: levels, dim: dim}
	if err := p.Retrain(trainQueries, cfg); err != nil {
		return nil, err
	}
	return p, nil
}

// Name implements core.DCO.
func (p *PCADCO) Name() string { return "ddc-pca" }

// Size implements core.DCO.
func (p *PCADCO) Size() int { return p.rotated.Rows() }

// Dim implements core.DCO.
func (p *PCADCO) Dim() int { return p.dim }

// ExtraBytes implements core.DCO: rotation matrix plus the (negligible)
// classifier parameters.
func (p *PCADCO) ExtraBytes() int64 {
	clf := int64(0)
	for _, c := range p.classifiers {
		clf += int64(len(c.W)+len(c.Mean)+len(c.Std)+1) * 8
	}
	return int64(p.dim)*int64(p.dim)*8 + clf
}

// Levels exposes the trained projection depths.
func (p *PCADCO) Levels() []int { return p.levels }

// Classifiers exposes the per-level models (for retraining experiments).
func (p *PCADCO) Classifiers() []*learn.Classifier { return p.classifiers }

// Retrain refits the per-level classifiers on new training queries without
// touching the PCA model or rotated data — the OOD mitigation of §V-C
// (retraining with ~100 OOD queries).
func (p *PCADCO) Retrain(trainQueries [][]float32, cfg PCAConfig) error {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TargetRecall == 0 {
		cfg.TargetRecall = 0.995
	}
	if len(trainQueries) == 0 {
		return errors.New("ddc: no training queries")
	}
	// Collect labeled samples in the ROTATED space: rotation preserves
	// exact distances, and the approximate distance at level l is the
	// prefix distance over the first l rotated coordinates.
	tq, err := store.FromRows(trainQueries)
	if err != nil {
		return err
	}
	rq, err := p.model.ProjectMatrix(tq, cfg.Workers)
	if err != nil {
		return err
	}
	cc := cfg.Collect
	cc.Seed = cfg.Seed
	cc.Workers = cfg.Workers
	samples, err := CollectSamples(p.rotated, rq.ToRows(), cc)
	if err != nil {
		return err
	}
	classifiers := make([]*learn.Classifier, len(p.levels))
	for li, level := range p.levels {
		var feats [][]float64
		var labels []int
		for _, qs := range samples {
			for i, id := range qs.IDs {
				approx := vec.L2SqRange(qs.Query, p.rotated.Row(id), 0, level)
				feats = append(feats, []float64{float64(approx), float64(qs.Tau)})
				labels = append(labels, qs.Labels[i])
			}
		}
		clf, err := learn.Train(feats, labels, learn.Config{
			Epochs:        cfg.TrainEpochs,
			Seed:          cfg.Seed + int64(li),
			TargetRecall0: cfg.TargetRecall,
		})
		if err != nil {
			return fmt.Errorf("ddc: level %d classifier: %w", level, err)
		}
		classifiers[li] = clf
	}
	p.classifiers = classifiers
	return nil
}

// NewQuery implements core.DCO.
func (p *PCADCO) NewQuery(q []float32) (core.QueryEvaluator, error) {
	ev := p.NewEvaluator()
	if err := ev.Reset(q); err != nil {
		return nil, err
	}
	return ev, nil
}

// NewEvaluator implements core.PooledDCO: the returned evaluator owns the
// rotated-query buffer and the centering scratch.
func (p *PCADCO) NewEvaluator() core.ResettableEvaluator {
	return &pcaEvaluator{
		parent: p,
		flat:   p.rotated.Flat(),
		q:      make([]float32, p.dim),
		cent:   make([]float32, p.dim),
	}
}

type pcaEvaluator struct {
	parent *PCADCO
	flat   []float32 // rotated vectors, row-major
	q      []float32 // rotated query (owned scratch)
	cent   []float32 // centering scratch
	stats  core.Stats
}

// Reset projects q into the evaluator's scratch and zeroes the counters.
func (ev *pcaEvaluator) Reset(q []float32) error {
	if err := ev.parent.model.ProjectInto(ev.q, q, ev.cent); err != nil {
		return err
	}
	ev.stats = core.Stats{}
	return nil
}

func (ev *pcaEvaluator) Distance(id int) float32 {
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.parent.dim)
	return vec.L2SqFlat(ev.q, ev.flat, id*ev.parent.dim)
}

// Compare accumulates the prefix distance level by level; at each trained
// level the classifier votes on (dis'_l, τ). The first prune vote discards
// the candidate; if no level prunes, the scan completes and the distance
// is exact.
func (ev *pcaEvaluator) Compare(id int, tau float32) (float32, bool) {
	ev.stats.Comparisons++
	p := ev.parent
	base := id * p.dim
	if math.IsInf(float64(tau), 1) {
		ev.stats.ExactDistances++
		ev.stats.DimsScanned += int64(p.dim)
		return vec.L2SqFlat(ev.q, ev.flat, base), false
	}
	var partial float32
	prev := 0
	feat := [2]float64{0, float64(tau)}
	for li, level := range p.levels {
		partial += vec.L2SqRangeFlat(ev.q, ev.flat, base, prev, level)
		ev.stats.DimsScanned += int64(level - prev)
		prev = level
		feat[0] = float64(partial)
		if p.classifiers[li].Score(feat[:]) > 0 {
			ev.stats.Pruned++
			return partial, true
		}
	}
	partial += vec.L2SqRangeFlat(ev.q, ev.flat, base, prev, p.dim)
	ev.stats.DimsScanned += int64(p.dim - prev)
	ev.stats.ExactDistances++
	return partial, false
}

func (ev *pcaEvaluator) Stats() *core.Stats { return &ev.stats }
