// Package ddc implements the paper's distance computation methods:
//
//   - DDCres (§IV, Algorithms 1–2): PCA-rotated vectors with the
//     distance decomposition dis = C1 − C2 − C3 and the Gaussian
//     error-quantile bound m·σ, applied incrementally over projection
//     depths.
//   - DDCpca (§V-B): plain PCA projected distance corrected by learned
//     per-level linear classifiers.
//   - DDCopq (§V-B): OPQ asymmetric distance corrected by a learned
//     linear classifier with the quantization-residual feature.
//
// All three implement core.DCO (and core.PooledDCO: their evaluators carry
// reusable scratch) and plug into the HNSW and IVF indexes. Vector payloads
// live in flat row-major store.Matrix buffers.
package ddc

import (
	"errors"
	"math"
	"runtime"

	"resinfer/internal/core"
	"resinfer/internal/pca"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// ResConfig controls DDCres.
type ResConfig struct {
	// Multiplier is the error-bound multiplier m of §IV-C; the corrected
	// distance is dis' − m·σ. Default 3 (the 99.7% Gaussian empirical
	// rule highlighted in Fig. 2). Convert coverage probabilities with
	// stats.MultiplierForCoverage / stats.OneSidedMultiplier.
	Multiplier float64
	// InitD is the first projection depth tested; default 32.
	InitD int
	// DeltaD is the depth increment per correction round (Algorithm 2);
	// default 32. Setting DeltaD >= Dim reproduces the non-incremental
	// Algorithm 1 (one test, then exact).
	DeltaD int
	// PCASample caps rows used for PCA training (0 = all).
	PCASample int
	Seed      int64
	// Workers parallelizes the one-time data rotation; default GOMAXPROCS.
	Workers int
}

// Res is the DDCres comparator.
type Res struct {
	rotated *store.Matrix
	norms   []float32 // ‖x−μ‖² per point in the rotated space
	model   *pca.Model
	dim     int
	m       float32
	initD   int
	deltaD  int
}

// NewRes trains PCA on data and builds the DDCres comparator.
func NewRes(data *store.Matrix, cfg ResConfig) (*Res, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("ddc: empty data")
	}
	model, err := pca.Train(data.ToRows(), pca.Config{SampleSize: cfg.PCASample, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return NewResFromModel(data, model, cfg)
}

// NewResFromModel builds DDCres from a pre-trained PCA model, rotating
// data into the model's basis.
func NewResFromModel(data *store.Matrix, model *pca.Model, cfg ResConfig) (*Res, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("ddc: empty data")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rotated, err := model.ProjectMatrix(data, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return newResFromRotated(rotated, model, cfg)
}

func newResFromRotated(rotated *store.Matrix, model *pca.Model, cfg ResConfig) (*Res, error) {
	dim := model.Dim
	if cfg.Multiplier <= 0 {
		cfg.Multiplier = 3
	}
	if cfg.InitD <= 0 {
		cfg.InitD = 32
	}
	if cfg.InitD > dim {
		cfg.InitD = dim
	}
	if cfg.DeltaD <= 0 {
		cfg.DeltaD = 32
	}
	if cfg.DeltaD > dim {
		cfg.DeltaD = dim
	}
	r := &Res{
		rotated: rotated,
		norms:   make([]float32, rotated.Rows()),
		model:   model,
		dim:     dim,
		m:       float32(cfg.Multiplier),
		initD:   cfg.InitD,
		deltaD:  cfg.DeltaD,
	}
	for i := 0; i < rotated.Rows(); i++ {
		r.norms[i] = vec.NormSq(rotated.Row(i))
	}
	return r, nil
}

// Name implements core.DCO.
func (r *Res) Name() string { return "ddc-res" }

// Size implements core.DCO.
func (r *Res) Size() int { return r.rotated.Rows() }

// Dim implements core.DCO.
func (r *Res) Dim() int { return r.dim }

// ExtraBytes implements core.DCO: rotation matrix (D² float64) plus the
// per-point norms (§VII Exp-3's space accounting for DDCres).
func (r *Res) ExtraBytes() int64 {
	return int64(r.dim)*int64(r.dim)*8 + int64(len(r.norms))*4
}

// Model exposes the trained PCA model (variance spectrum, rotation) for
// diagnostics and the figure experiments.
func (r *Res) Model() *pca.Model { return r.model }

// Rotated exposes the rotated vectors (read-only by convention).
func (r *Res) Rotated() *store.Matrix { return r.rotated }

// Norms exposes the stored per-point squared norms ‖x−μ‖² (read-only by
// convention) — the C1 ingredient of the distance decomposition.
func (r *Res) Norms() []float32 { return r.norms }

// NewQuery implements core.DCO. Per query it rotates q (O(D²)) and builds
// the σ suffix table: sigma[d] = sqrt(4·Σ_{i≥d} q_i²σ_i²), so each
// correction round reads its error bound in O(1).
func (r *Res) NewQuery(q []float32) (core.QueryEvaluator, error) {
	ev := r.NewEvaluator()
	if err := ev.Reset(q); err != nil {
		return nil, err
	}
	return ev, nil
}

// NewEvaluator implements core.PooledDCO: the returned evaluator owns the
// rotated-query buffer, the centering scratch and the σ suffix table.
func (r *Res) NewEvaluator() core.ResettableEvaluator {
	return &resEvaluator{
		parent:   r,
		flat:     r.rotated.Flat(),
		q:        make([]float32, r.dim),
		cent:     make([]float32, r.dim),
		suffix64: make([]float64, r.dim+1),
		sigma:    make([]float32, r.dim+1),
	}
}

type resEvaluator struct {
	parent   *Res
	flat     []float32 // rotated vectors, row-major
	q        []float32 // rotated query (owned scratch)
	cent     []float32 // centering scratch for the PCA projection
	suffix64 []float64 // float64 suffix accumulation scratch
	qNorm    float32
	sigma    []float32 // error-bound σ at each projection depth
	stats    core.Stats
}

// Reset projects q into the evaluator's scratch, rebuilds the σ suffix
// table and zeroes the counters.
func (ev *resEvaluator) Reset(q []float32) error {
	p := ev.parent
	if err := p.model.ProjectInto(ev.q, q, ev.cent); err != nil {
		return err
	}
	vec.SuffixWeightedSqInto(ev.suffix64, ev.q, p.model.Sigmas)
	for i, s := range ev.suffix64 {
		ev.sigma[i] = float32(math.Sqrt(4 * s))
	}
	ev.qNorm = vec.NormSq(ev.q)
	ev.stats = core.Stats{}
	return nil
}

func (ev *resEvaluator) Distance(id int) float32 {
	ev.stats.ExactDistances++
	ev.stats.DimsScanned += int64(ev.parent.dim)
	return vec.L2SqFlat(ev.q, ev.flat, id*ev.parent.dim)
}

// Compare implements Incremental-DDCres (Algorithm 2): C1 is precomputed
// from stored norms, C2 accumulates inner products over increasing depth,
// and the candidate is pruned as soon as C1 − C2 − m·σ_d exceeds tau.
func (ev *resEvaluator) Compare(id int, tau float32) (float32, bool) {
	ev.stats.Comparisons++
	p := ev.parent
	base := id * p.dim
	if math.IsInf(float64(tau), 1) {
		ev.stats.ExactDistances++
		ev.stats.DimsScanned += int64(p.dim)
		return vec.L2SqFlat(ev.q, ev.flat, base), false
	}
	c1 := p.norms[id] + ev.qNorm
	var c2 float32
	d := 0
	next := p.initD
	for {
		if next > p.dim {
			next = p.dim
		}
		c2 += 2 * vec.DotRangeFlat(ev.q, ev.flat, base, d, next)
		ev.stats.DimsScanned += int64(next - d)
		d = next
		approx := c1 - c2
		if d >= p.dim {
			// All dimensions consumed: the decomposition is exact
			// (C3 folded into C2). Clamp float cancellation noise.
			if approx < 0 {
				approx = 0
			}
			ev.stats.ExactDistances++
			return approx, false
		}
		if approx-p.m*ev.sigma[d] > tau {
			ev.stats.Pruned++
			return approx, true
		}
		next = d + p.deltaD
	}
}

func (ev *resEvaluator) Stats() *core.Stats { return &ev.stats }

// EstimationError returns dis' − dis = −2⟨q_r, x_r⟩ for point id at
// projection depth d — the random variable of Eq. 2 whose distribution
// Figs. 1–2 plot. Exposed for the figure-reproduction experiments.
func (r *Res) EstimationError(q []float32, id, d int) (float64, error) {
	rq, err := r.model.Project(q)
	if err != nil {
		return 0, err
	}
	if d < 0 || d > r.dim {
		return 0, errors.New("ddc: depth out of range")
	}
	x := r.rotated.Row(id)
	return -2 * vec.Dot64(rq[d:], x[d:]), nil
}
