package ddc

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"

	"resinfer/internal/heap"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// The learned correction methods (DDCpca, DDCopq) are calibrated on
// labeled (approximate distance, threshold) pairs collected from training
// queries, following §VII-A: each training query's exact K nearest
// neighbors become label-0 (keep) examples with τ set to the K-th
// neighbor distance, and randomly sampled points farther than τ become
// label-1 (prune) examples.

// QuerySamples holds the labeled candidates collected for one training
// query.
type QuerySamples struct {
	Query  []float32
	Tau    float32   // K-th nearest neighbor distance
	IDs    []int     // candidate point ids
	Exact  []float32 // exact distances, aligned with IDs
	Labels []int     // 1 iff Exact > Tau
}

// CollectConfig controls sample collection.
type CollectConfig struct {
	K           int // neighbors per query (label 0); default 100
	NegPerQuery int // label-1 samples per query; default 100
	Seed        int64
	Workers     int
}

// CollectSamples labels candidates for every training query against the
// rows of data using exact distances. Queries run in parallel.
func CollectSamples(data *store.Matrix, queries [][]float32, cfg CollectConfig) ([]QuerySamples, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("ddc: empty data")
	}
	if len(queries) == 0 {
		return nil, errors.New("ddc: no training queries")
	}
	if cfg.K <= 0 {
		cfg.K = 100
	}
	if cfg.K > data.Rows() {
		cfg.K = data.Rows()
	}
	if cfg.NegPerQuery <= 0 {
		cfg.NegPerQuery = 100
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	out := make([]QuerySamples, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for qi := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(qi)*104729))
			q := queries[qi]
			rq := heap.NewResultQueue(cfg.K)
			flat, dim := data.Flat(), data.Dim()
			for id := 0; id < data.Rows(); id++ {
				d := vec.L2SqFlat(q, flat, id*dim)
				if d < rq.Threshold() {
					rq.Push(id, d)
				}
			}
			knn := rq.Sorted()
			tau := knn[len(knn)-1].Dist
			qs := QuerySamples{Query: q, Tau: tau}
			inKNN := make(map[int]struct{}, len(knn))
			for _, it := range knn {
				qs.IDs = append(qs.IDs, it.ID)
				qs.Exact = append(qs.Exact, it.Dist)
				qs.Labels = append(qs.Labels, 0)
				inKNN[it.ID] = struct{}{}
			}
			// Negatives: rejection-sample points beyond tau. Nearly every
			// random point qualifies, so the attempt cap is generous.
			negs := 0
			for attempts := 0; negs < cfg.NegPerQuery && attempts < cfg.NegPerQuery*20; attempts++ {
				id := rng.Intn(data.Rows())
				if _, ok := inKNN[id]; ok {
					continue
				}
				d := vec.L2SqFlat(q, flat, id*dim)
				if d <= tau {
					continue
				}
				qs.IDs = append(qs.IDs, id)
				qs.Exact = append(qs.Exact, d)
				qs.Labels = append(qs.Labels, 1)
				negs++
			}
			out[qi] = qs
		}(qi)
	}
	wg.Wait()
	for qi := range out {
		hasNeg := false
		for _, l := range out[qi].Labels {
			if l == 1 {
				hasNeg = true
				break
			}
		}
		if !hasNeg {
			return nil, errors.New("ddc: a training query produced no label-1 samples; dataset too small or K too large")
		}
	}
	return out, nil
}
