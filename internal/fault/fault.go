// Package fault is a fault-injection registry for chaos testing the
// serving stack. Production code guards every injection site with a
// single atomic load (Active), so a build with no faults armed pays one
// predictable branch per site and allocates nothing — the steady-state
// search path stays 0 allocs/op with the package linked in.
//
// A site is a named point in the code (SiteWALFsync, SiteShardSearch,
// ...) that consults the registry when armed. An Injection arms one
// site with an error to return, a latency to add, or a panic to raise —
// optionally filtered to one site argument (e.g. a single shard),
// delayed past the first N evaluations, probabilistic under a seeded
// RNG (deterministic across runs), and bounded to a firing limit.
//
// Faults are armed in-process with Inject (tests) or from a spec string
// with ParseSpec (the annserve -faults flag and the RESINFER_FAULTS
// environment variable), e.g.:
//
//	wal.fsync:delay=5ms
//	shard.search:err=stuck,arg=1;wal.append:err=disk,p=0.5,limit=3
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// AnyArg matches every site argument.
const AnyArg = -1

// Injection arms one site. The zero value of each field is inert: only
// set fields take effect. Evaluation order per hit: After gate, Limit
// gate, probability draw, then Delay (sleep), then Panic, then Err.
type Injection struct {
	// Site is the injection point to arm.
	Site Site
	// Arg filters the hit to one site argument (shard number); AnyArg
	// (and, for convenience, 0 on argument-less sites) matches all. Use
	// AnyArg explicitly when arming shard sites for every shard.
	Arg int
	// Err, when non-nil, is returned from Check.
	Err error
	// Delay, when positive, is slept before returning (after the
	// probability draw, so p=0.1 delays one hit in ten).
	Delay time.Duration
	// Panic, when non-empty, raises panic(Panic) — exercising the
	// caller's panic-isolation path.
	Panic string
	// P is the firing probability per eligible hit; 0 means 1.0 (always).
	// Draws come from the registry's seeded RNG, so a fixed seed replays
	// the same firing pattern.
	P float64
	// After skips the first After eligible hits before firing begins.
	After int
	// Limit caps how many times the injection fires; 0 is unlimited.
	Limit int

	hits  int // eligible evaluations seen (After gate)
	fired int // times actually fired (Limit gate)
}

var (
	active atomic.Bool // true while at least one injection is armed

	mu   sync.Mutex
	arm  map[Site][]*Injection
	hits map[Site]int64
	rng  = rand.New(rand.NewSource(1))
)

// Active reports whether any injection is armed. It is the only check a
// site pays when the registry is empty: one atomic load, no allocation.
func Active() bool { return active.Load() }

// Seed reseeds the registry's RNG, making probabilistic injections
// deterministic from this point.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// Inject arms one injection and returns a function that disarms it.
func Inject(inj Injection) (remove func()) {
	if inj.Site == "" {
		panic("fault: injection needs a site")
	}
	p := &inj
	mu.Lock()
	if arm == nil {
		arm = make(map[Site][]*Injection)
		hits = make(map[Site]int64)
	}
	arm[inj.Site] = append(arm[inj.Site], p)
	active.Store(true)
	mu.Unlock()
	return func() {
		mu.Lock()
		defer mu.Unlock()
		list := arm[p.Site]
		for i, q := range list {
			if q == p {
				arm[p.Site] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(arm[p.Site]) == 0 {
			delete(arm, p.Site)
		}
		active.Store(len(arm) > 0)
	}
}

// Reset disarms every injection and clears the hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	arm = nil
	hits = nil
	active.Store(false)
}

// Hits returns how many times a site fired (injections actually applied,
// not mere evaluations).
func Hits(site Site) int64 {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// Check evaluates a site with no argument filter. See CheckArg.
func Check(site Site) error { return CheckArg(site, AnyArg) }

// CheckArg evaluates every injection armed on site whose Arg matches
// arg: delays are slept, a panic is raised, and the first injected
// error is returned. Callers guard it with Active() so the disabled
// path stays a single atomic load.
func CheckArg(site Site, arg int) error {
	mu.Lock()
	list := arm[site]
	if len(list) == 0 {
		mu.Unlock()
		return nil
	}
	var delay time.Duration
	var panicMsg string
	var err error
	fired := false
	for _, inj := range list {
		if inj.Arg != AnyArg && arg != AnyArg && inj.Arg != arg {
			continue
		}
		inj.hits++
		if inj.hits <= inj.After {
			continue
		}
		if inj.Limit > 0 && inj.fired >= inj.Limit {
			continue
		}
		if inj.P > 0 && inj.P < 1 && rng.Float64() >= inj.P {
			continue
		}
		inj.fired++
		fired = true
		if inj.Delay > delay {
			delay = inj.Delay
		}
		if panicMsg == "" {
			panicMsg = inj.Panic
		}
		if err == nil {
			err = inj.Err
		}
	}
	if fired {
		hits[site]++
	}
	mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if panicMsg != "" {
		panic("fault: injected panic at " + string(site) + ": " + panicMsg)
	}
	return err
}

// ParseSpec arms injections from a spec string: semicolon-separated
// entries of the form
//
//	<site>:<field>=<value>[,<field>=<value>...]
//
// with fields err (message), delay (duration), panic (message), p
// (probability), arg, after, limit, and seed (reseeds the RNG; site
// part ignored). The site must be one of the registered sites in
// sites.go — an unknown site is a parse error naming the known sites,
// so a typo fails at flag-parse time instead of arming a site nothing
// consults. An empty spec arms nothing.
func ParseSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return fmt.Errorf("fault: spec entry %q lacks a ':'", entry)
		}
		inj := Injection{Site: Site(strings.TrimSpace(site)), Arg: AnyArg}
		if !KnownSite(inj.Site) {
			return fmt.Errorf("fault: unknown site %q (known sites: %s)", inj.Site, siteList())
		}
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return fmt.Errorf("fault: spec field %q lacks an '='", kv)
			}
			var err error
			switch k {
			case "err":
				inj.Err = errors.New("fault: injected: " + v)
			case "delay":
				inj.Delay, err = time.ParseDuration(v)
			case "panic":
				inj.Panic = v
			case "p":
				inj.P, err = strconv.ParseFloat(v, 64)
			case "arg":
				inj.Arg, err = strconv.Atoi(v)
			case "after":
				inj.After, err = strconv.Atoi(v)
			case "limit":
				inj.Limit, err = strconv.Atoi(v)
			case "seed":
				var s int64
				s, err = strconv.ParseInt(v, 10, 64)
				if err == nil {
					Seed(s)
				}
				continue
			default:
				return fmt.Errorf("fault: unknown spec field %q", k)
			}
			if err != nil {
				return fmt.Errorf("fault: spec field %q: %w", kv, err)
			}
		}
		if inj.Err == nil && inj.Delay == 0 && inj.Panic == "" {
			return fmt.Errorf("fault: spec entry %q injects nothing (need err, delay or panic)", entry)
		}
		Inject(inj)
	}
	return nil
}
