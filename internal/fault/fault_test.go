package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInactiveByDefault(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("registry active with nothing armed")
	}
	if err := Check(SiteWALFsync); err != nil {
		t.Fatalf("unarmed Check returned %v", err)
	}
}

func TestInjectErrAndDisarm(t *testing.T) {
	Reset()
	boom := errors.New("boom")
	remove := Inject(Injection{Site: SiteWALAppend, Arg: AnyArg, Err: boom})
	if !Active() {
		t.Fatal("not active after Inject")
	}
	if err := Check(SiteWALAppend); !errors.Is(err, boom) {
		t.Fatalf("Check = %v, want boom", err)
	}
	if err := Check(SiteWALFsync); err != nil {
		t.Fatalf("other site fired: %v", err)
	}
	if got := Hits(SiteWALAppend); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
	remove()
	if Active() {
		t.Fatal("still active after disarm")
	}
	if err := Check(SiteWALAppend); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
}

func TestArgFilter(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Inject(Injection{Site: SiteShardSearch, Arg: 2, Err: boom})
	if err := CheckArg(SiteShardSearch, 1); err != nil {
		t.Fatalf("shard 1 fired: %v", err)
	}
	if err := CheckArg(SiteShardSearch, 2); !errors.Is(err, boom) {
		t.Fatalf("shard 2 = %v, want boom", err)
	}
}

func TestAfterAndLimit(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Inject(Injection{Site: SiteWALFsync, Arg: AnyArg, Err: boom, After: 2, Limit: 1})
	var fired int
	for i := 0; i < 5; i++ {
		if Check(SiteWALFsync) != nil {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1 (after=2, limit=1)", fired)
	}
	if got := Hits(SiteWALFsync); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
}

func TestSeededProbabilityDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	run := func() []bool {
		Reset()
		Seed(42)
		Inject(Injection{Site: SiteWALAppend, Arg: AnyArg, Err: boom, P: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check(SiteWALAppend) != nil
		}
		return out
	}
	a, b := run(), run()
	var n int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge at hit %d", i)
		}
		if a[i] {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times — probability gate inert", n, len(a))
	}
}

func TestDelay(t *testing.T) {
	Reset()
	defer Reset()
	Inject(Injection{Site: SiteWALFsync, Arg: AnyArg, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Check(SiteWALFsync); err != nil {
		t.Fatalf("delay-only injection returned error %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay injection slept only %v", d)
	}
}

func TestPanic(t *testing.T) {
	Reset()
	defer Reset()
	Inject(Injection{Site: SiteCompactSwap, Arg: AnyArg, Panic: "kaboom"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic raised")
		}
		if !strings.Contains(r.(string), "kaboom") {
			t.Fatalf("panic payload %v", r)
		}
	}()
	Check(SiteCompactSwap)
}

func TestParseSpec(t *testing.T) {
	Reset()
	defer Reset()
	err := ParseSpec("wal.fsync:delay=1ms; shard.search:err=stuck,arg=3,limit=2")
	if err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("spec armed nothing")
	}
	if err := CheckArg(SiteShardSearch, 3); err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("shard 3 = %v, want injected stuck", err)
	}
	if err := CheckArg(SiteShardSearch, 1); err != nil {
		t.Fatalf("shard 1 fired: %v", err)
	}
	if err := Check(SiteWALFsync); err != nil {
		t.Fatalf("delay entry returned error %v", err)
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	Reset()
	defer Reset()
	for _, spec := range []string{
		"nocolon",
		"wal.fsync:delay",
		"wal.fsync:wat=1",
		"wal.fsync:p=0.5",       // injects nothing
		"wal.fsync:delay=bogus", // bad duration
		"wal.fzync:delay=1ms",   // unknown site (typo)
	} {
		if err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
		Reset()
	}
	if err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
}

func TestParseSpecUnknownSiteListsKnown(t *testing.T) {
	Reset()
	defer Reset()
	err := ParseSpec("wal.fzync:delay=1ms")
	if err == nil {
		t.Fatal("typoed site accepted")
	}
	for _, site := range Sites() {
		if !strings.Contains(err.Error(), string(site)) {
			t.Errorf("error %q does not list known site %q", err, site)
		}
	}
}
