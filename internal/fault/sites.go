// Central registry of fault-injection sites. Every Check/CheckArg call
// in the serving stack must pass one of the constants below — the
// faultsite analyzer in tools/resinferlint enforces this — and
// ParseSpec rejects spec strings naming a site that is not registered
// here, so a typo in an annserve -faults flag or RESINFER_FAULTS value
// fails at flag-parse time instead of silently arming nothing.
//
// Adding a site is a two-line change: declare the constant and add it
// to knownSites. Tests arming ad-hoc sites through Inject are exempt;
// only the serving stack's wired sites and operator-facing spec
// strings go through the registry.
package fault

import "strings"

// Site names one injection point. The constants below are the sites the
// serving stack consults; tests may invent ad-hoc sites of their own
// (via Inject — ParseSpec accepts registered sites only).
type Site string

// Injection sites wired into the serving stack.
const (
	// SiteWALAppend fires before a WAL record is serialized and written;
	// an injected error is returned as a (transient, retryable) append
	// failure with nothing written.
	SiteWALAppend Site = "wal.append"
	// SiteWALFsync fires in place of the fsync on the WAL append and
	// checkpoint paths; an injected error is a sync failure (fail-stop
	// until Recover), an injected delay models a slow disk.
	SiteWALFsync Site = "wal.fsync"
	// SiteShardSearch fires at the start of every per-shard probe of the
	// sharded fan-out; its argument is the shard number. Delay models a
	// stuck shard, error a failed one, panic a crashing one.
	SiteShardSearch Site = "shard.search"
	// SiteCompactBuild fires before a compaction rebuilds a shard's base
	// index; its argument is the shard number.
	SiteCompactBuild Site = "compact.build"
	// SiteCompactSwap fires before a compaction hot-swaps the rebuilt
	// base in; its argument is the shard number.
	SiteCompactSwap Site = "compact.swap"
	// SiteReplicaProbe fires before each health probe of a replica-set
	// member; its argument is the member index. Errors model a
	// partitioned peer, delays a slow one.
	SiteReplicaProbe Site = "replica.probe"
	// SiteReplicaFetch fires before a joining replica fetches the
	// primary's checkpoint snapshot; errors model a failed join.
	SiteReplicaFetch Site = "replica.fetch"
	// SiteReplicaStream fires before each WAL tail fetch of the catch-up
	// follower; errors and delays model a flaky or slow replication link.
	SiteReplicaStream Site = "replica.stream"
)

// knownSites is the authoritative set ParseSpec validates against, in
// the order Sites reports them.
var knownSites = []Site{
	SiteWALAppend,
	SiteWALFsync,
	SiteShardSearch,
	SiteCompactBuild,
	SiteCompactSwap,
	SiteReplicaProbe,
	SiteReplicaFetch,
	SiteReplicaStream,
}

// Sites returns the registered injection sites, in declaration order.
// The returned slice is a copy; callers may keep or mutate it.
func Sites() []Site {
	out := make([]Site, len(knownSites))
	copy(out, knownSites)
	return out
}

// KnownSite reports whether s is a registered injection site.
func KnownSite(s Site) bool {
	for _, k := range knownSites {
		if s == k {
			return true
		}
	}
	return false
}

// siteList renders the registered sites for ParseSpec's unknown-site
// error message.
func siteList() string {
	var b strings.Builder
	for i, k := range knownSites {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(k))
	}
	return b.String()
}
