// Package finger implements a FINGER-style fast inference accelerator for
// HNSW graphs (Chen et al., WWW 2023) — the graph-specific competitor the
// paper compares against in Exp-4. The idea: when expanding node c, the
// distance from the query q to each neighbor d decomposes over the basis
// given by c itself:
//
//	dist(q,d)² = dist(q,c)² + ‖d−c‖² − 2(t_q·t_d·‖c‖² + ⟨q_res, d_res⟩)
//
// where t_q, t_d are projection coefficients of q−c and d−c along c and
// the residual inner product ⟨q_res, d_res⟩ is estimated from signed
// random projection (SRP) signatures via the hamming-angle identity
// cos(π·h/L)·‖q_res‖·‖d_res‖. Everything about d is precomputed per edge;
// everything about q costs O(L) per visited node given a one-time O(L·D)
// query sketch — so each neighbor estimate costs a popcount instead of a
// D-dimensional scan.
//
// FINGER buys this speed with a much larger index (per-edge metadata plus
// per-node projections), which is exactly the tradeoff Exp-3/Exp-4
// measure.
package finger

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"

	"resinfer/internal/core"
	"resinfer/internal/heap"
	"resinfer/internal/hnsw"
	"resinfer/internal/vec"
)

// Config controls the accelerator.
type Config struct {
	// L is the number of SRP signature bits (max 64, default 64).
	L int
	// ErrorFactor inflates the pruning threshold: a neighbor is skipped
	// when estimate > ErrorFactor·τ. Values slightly above 1 compensate
	// the SRP estimation noise; default 1.0.
	ErrorFactor float64
	Seed        int64
}

type edgeMeta struct {
	tD        float32 // projection coefficient of d−c along c
	dcNormSq  float32 // ‖d−c‖²
	resNormSq float32 // ‖d_res‖²
	sig       uint64  // SRP signature of d_res
}

// Finger wraps a built HNSW index with per-edge geometry.
type Finger struct {
	idx       *hnsw.Index
	l         int
	errFactor float32
	rvs       [][]float32  // L random projection vectors
	nodeProj  [][]float32  // ⟨r_j, node⟩ per node (L floats)
	normSq    []float32    // ‖node‖² per node
	edges     [][]edgeMeta // aligned with idx.Neighbors(node, 0)
}

// Build precomputes edge metadata for every layer-0 edge of idx.
func Build(idx *hnsw.Index, cfg Config) (*Finger, error) {
	if idx == nil || idx.Len() == 0 {
		return nil, errors.New("finger: empty index")
	}
	if cfg.L <= 0 || cfg.L > 64 {
		cfg.L = 64
	}
	if cfg.ErrorFactor <= 0 {
		cfg.ErrorFactor = 1.0
	}
	dim := idx.Dim()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Finger{
		idx:       idx,
		l:         cfg.L,
		errFactor: float32(cfg.ErrorFactor),
		rvs:       make([][]float32, cfg.L),
		nodeProj:  make([][]float32, idx.Len()),
		normSq:    make([]float32, idx.Len()),
		edges:     make([][]edgeMeta, idx.Len()),
	}
	for j := range f.rvs {
		rv := make([]float32, dim)
		for i := range rv {
			rv[i] = float32(rng.NormFloat64())
		}
		f.rvs[j] = rv
	}
	data := idx.Data()
	for n := 0; n < data.Rows(); n++ {
		row := data.Row(n)
		f.normSq[n] = vec.NormSq(row)
		proj := make([]float32, cfg.L)
		for j, rv := range f.rvs {
			proj[j] = vec.Dot(rv, row)
		}
		f.nodeProj[n] = proj
	}
	for n := 0; n < data.Rows(); n++ {
		nbs := idx.Neighbors(int32(n), 0)
		metas := make([]edgeMeta, len(nbs))
		c := data.Row(n)
		cNormSq := f.normSq[n]
		for i, nb := range nbs {
			d := data.Row(int(nb))
			dcNormSq := vec.L2Sq(c, d)
			var tD float32
			if cNormSq > 0 {
				// ⟨d−c, c⟩ = ⟨d,c⟩ − ‖c‖².
				tD = (vec.Dot(d, c) - cNormSq) / cNormSq
			}
			resNormSq := dcNormSq - tD*tD*cNormSq
			if resNormSq < 0 {
				resNormSq = 0
			}
			var sig uint64
			for j := 0; j < cfg.L; j++ {
				// ⟨r_j, d_res⟩ = ⟨r_j,d⟩ − (1+tD)·⟨r_j,c⟩.
				if f.nodeProj[nb][j]-(1+tD)*f.nodeProj[n][j] > 0 {
					sig |= 1 << uint(j)
				}
			}
			metas[i] = edgeMeta{tD: tD, dcNormSq: dcNormSq, resNormSq: resNormSq, sig: sig}
		}
		f.edges[n] = metas
	}
	return f, nil
}

// ExtraBytes reports the accelerator's memory: per-edge metadata, per-node
// projections and norms, and the random vectors.
func (f *Finger) ExtraBytes() int64 {
	var edges int64
	for _, e := range f.edges {
		edges += int64(len(e)) * (4 + 4 + 4 + 8)
	}
	perNode := int64(f.idx.Len()) * int64(f.l*4+4)
	rvs := int64(f.l) * int64(f.idx.Dim()) * 4
	return edges + perNode + rvs
}

// Search runs the layer-0 beam search with FINGER estimates: each
// neighbor's distance is first approximated from edge metadata; only
// candidates whose estimate passes the beam threshold get an exact
// distance.
func (f *Finger) Search(q []float32, k, ef int) ([]hnsw.Result, core.Stats, error) {
	if k <= 0 {
		return nil, core.Stats{}, errors.New("finger: k must be positive")
	}
	if ef < k {
		ef = k
	}
	var stats core.Stats
	idx := f.idx
	data := idx.Data()
	dim := idx.Dim()
	qNormSq := vec.NormSq(q)
	// Per-query sketch: ⟨r_j, q⟩ for all j.
	qProj := make([]float32, f.l)
	for j, rv := range f.rvs {
		qProj[j] = vec.Dot(rv, q)
	}

	// Upper layers: exact greedy descent.
	ep := idx.Entry()
	curDist := vec.L2Sq(q, data.Row(int(ep)))
	stats.DimsScanned += int64(dim)
	stats.ExactDistances++
	for l := idx.MaxLevel(); l > 0; l-- {
		for {
			improved := false
			for _, nb := range idx.Neighbors(ep, l) {
				d := vec.L2Sq(q, data.Row(int(nb)))
				stats.DimsScanned += int64(dim)
				stats.ExactDistances++
				if d < curDist {
					curDist, ep, improved = d, nb, true
				}
			}
			if !improved {
				break
			}
		}
	}

	visited := make([]bool, idx.Len())
	visited[ep] = true
	cands := heap.NewMinQueue(ef)
	w := heap.NewResultQueue(ef)
	cands.Push(int(ep), curDist)
	w.Push(int(ep), curDist)
	invL := float32(math.Pi) / float32(f.l)
	for cands.Len() > 0 {
		c, _ := cands.PopMin()
		if c.Dist > w.Threshold() {
			break
		}
		cid := c.ID
		distQC := c.Dist
		cNormSq := f.normSq[cid]
		// t_q and the query residual relative to this center.
		var tQ float32
		if cNormSq > 0 {
			qDotC := (qNormSq + cNormSq - distQC) / 2
			tQ = (qDotC - cNormSq) / cNormSq
		}
		qResNormSq := distQC - tQ*tQ*cNormSq
		if qResNormSq < 0 {
			qResNormSq = 0
		}
		var qSig uint64
		projC := f.nodeProj[cid]
		for j := 0; j < f.l; j++ {
			if qProj[j]-(1+tQ)*projC[j] > 0 {
				qSig |= 1 << uint(j)
			}
		}
		qResNorm := float32(math.Sqrt(float64(qResNormSq)))

		nbs := idx.Neighbors(int32(cid), 0)
		metas := f.edges[cid]
		tau := w.Threshold()
		for i, nb := range nbs {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			m := metas[i]
			stats.Comparisons++
			// Estimate dist(q, d)² from edge geometry.
			h := bits.OnesCount64(qSig ^ m.sig)
			cosTheta := float32(math.Cos(float64(invL * float32(h))))
			resIP := cosTheta * qResNorm * float32(math.Sqrt(float64(m.resNormSq)))
			est := distQC + m.dcNormSq - 2*(tQ*m.tD*cNormSq+resIP)
			if est < 0 {
				est = 0
			}
			if !math.IsInf(float64(tau), 1) && est > f.errFactor*tau {
				stats.Pruned++
				continue
			}
			d := vec.L2Sq(q, data.Row(int(nb)))
			stats.DimsScanned += int64(dim)
			stats.ExactDistances++
			if !w.Full() || d < w.Threshold() {
				cands.Push(int(nb), d)
				w.Push(int(nb), d)
				tau = w.Threshold()
			}
		}
	}
	all := w.Sorted()
	if len(all) > k {
		all = all[:k]
	}
	return all, stats, nil
}
