package finger

import (
	"math"
	"sync"
	"testing"

	"resinfer/internal/core"
	"resinfer/internal/dataset"
	"resinfer/internal/hnsw"
	"resinfer/internal/vec"
)

var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixGT   [][]int
	fixIdx  *hnsw.Index
	fixErr  error
)

func getFixtures(t testing.TB) (*dataset.Dataset, [][]int, *hnsw.Index) {
	fixOnce.Do(func() {
		ds, err := dataset.Generate(dataset.GenConfig{
			Name: "finger-test", N: 4000, Dim: 96, Queries: 25, TrainQueries: 10,
			VE32: 0.8, Seed: 31,
		})
		if err != nil {
			fixErr = err
			return
		}
		gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
		if err != nil {
			fixErr = err
			return
		}
		idx, err := hnsw.Build(ds.Matrix(), hnsw.Config{M: 16, EfConstruction: 200, Seed: 3})
		if err != nil {
			fixErr = err
			return
		}
		fixDS, fixGT, fixIdx = ds, gt, idx
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDS, fixGT, fixIdx
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("expected nil-index error")
	}
}

func TestEdgeMetadataGeometry(t *testing.T) {
	ds, _, idx := getFixtures(t)
	f, err := Build(idx, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	data := ds.Data
	// For a sample of edges: dcNormSq matches, residual decomposition
	// satisfies Pythagoras: ‖d−c‖² = t_d²‖c‖² + ‖d_res‖².
	checked := 0
	for n := 0; n < 200 && checked < 100; n++ {
		nbs := idx.Neighbors(int32(n), 0)
		for i, nb := range nbs {
			m := f.edges[n][i]
			want := vec.L2Sq(data[n], data[nb])
			if math.Abs(float64(m.dcNormSq-want)) > 1e-2*(1+float64(want)) {
				t.Fatalf("edge (%d,%d): dcNormSq %v want %v", n, nb, m.dcNormSq, want)
			}
			lhs := float64(m.dcNormSq)
			rhs := float64(m.tD)*float64(m.tD)*float64(f.normSq[n]) + float64(m.resNormSq)
			if math.Abs(lhs-rhs) > 1e-2*(1+lhs) {
				t.Fatalf("edge (%d,%d): Pythagoras violated: %v vs %v", n, nb, lhs, rhs)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no edges checked")
	}
}

func TestSearchRecallCloseToExactHNSW(t *testing.T) {
	ds, gt, idx := getFixtures(t)
	f, err := Build(idx, Config{Seed: 7, ErrorFactor: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	// Exact HNSW baseline at the same ef.
	exact, _ := core.NewExact(ds.Matrix())
	base := make([][]int, len(ds.Queries))
	fing := make([][]int, len(ds.Queries))
	var agg core.Stats
	for qi, q := range ds.Queries {
		items, _, err := idx.Search(exact, q, 10, 50)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			base[qi] = append(base[qi], it.ID)
		}
		fitems, st, err := f.Search(q, 10, 50)
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(st)
		for _, it := range fitems {
			fing[qi] = append(fing[qi], it.ID)
		}
	}
	rBase := dataset.Recall(base, gt, 10)
	rFing := dataset.Recall(fing, gt, 10)
	if rFing < rBase-0.08 {
		t.Fatalf("FINGER recall %v too far below exact HNSW %v", rFing, rBase)
	}
	if agg.Pruned == 0 {
		t.Fatal("FINGER never pruned")
	}
	// The point of FINGER: most neighbor evaluations avoid an exact scan.
	if pr := agg.PrunedRate(); pr < 0.2 {
		t.Fatalf("FINGER pruned rate %v too low", pr)
	}
}

func TestSearchResultsSortedAndExactDistances(t *testing.T) {
	ds, _, idx := getFixtures(t)
	f, _ := Build(idx, Config{Seed: 7})
	items, _, err := f.Search(ds.Queries[0], 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 10 {
		t.Fatalf("len = %d", len(items))
	}
	for i, it := range items {
		want := vec.L2Sq(ds.Queries[0], ds.Data[it.ID])
		if it.Dist != want {
			t.Fatalf("result %d distance %v not exact (%v)", i, it.Dist, want)
		}
		if i > 0 && items[i-1].Dist > it.Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestSearchErrors(t *testing.T) {
	_, _, idx := getFixtures(t)
	f, _ := Build(idx, Config{Seed: 7})
	if _, _, err := f.Search(fixDS.Queries[0], 0, 10); err == nil {
		t.Fatal("expected k error")
	}
}

func TestExtraBytesScalesWithIndex(t *testing.T) {
	_, _, idx := getFixtures(t)
	f, _ := Build(idx, Config{Seed: 7})
	eb := f.ExtraBytes()
	if eb <= 0 {
		t.Fatal("ExtraBytes must be positive")
	}
	// FINGER must be hungrier than DDCres-style storage (norms + rotation):
	// per-edge metadata alone dwarfs a D² rotation at this scale.
	ddcLike := int64(96*96*8) + int64(idx.Len())*4
	if eb < ddcLike {
		t.Fatalf("FINGER bytes %d unexpectedly below DDC-like %d", eb, ddcLike)
	}
}

func TestConfigDefaults(t *testing.T) {
	_, _, idx := getFixtures(t)
	f, err := Build(idx, Config{L: 999, Seed: 1}) // clamps to 64
	if err != nil {
		t.Fatal(err)
	}
	if f.l != 64 {
		t.Fatalf("L = %d, want 64", f.l)
	}
	if f.errFactor != 1.0 {
		t.Fatalf("ErrorFactor default = %v", f.errFactor)
	}
}
