// Package flat implements the exhaustive-scan index: every query compares
// against every point through the DCO. With an approximate comparator this
// is exactly the linear-scan setting of the paper's Table III — the
// threshold of the growing result queue prunes most of the scan — and it
// is the correct choice for small collections where graph construction
// doesn't pay for itself.
package flat

import (
	"errors"
	"fmt"
	"sync"

	"resinfer/internal/core"
	"resinfer/internal/heap"
	"resinfer/internal/store"
)

// Index is a flat index over n points. It stores no per-point state; the
// vectors live in the DCO.
type Index struct {
	size int
	dim  int
	// ctxPool recycles per-search result queues so steady-state searches
	// allocate nothing.
	ctxPool sync.Pool
}

// Build creates a flat index over the rows of data.
func Build(data *store.Matrix) (*Index, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("flat: empty data")
	}
	return New(data.Rows(), data.Dim())
}

// New creates a flat index with explicit dimensions (used by Load paths).
func New(size, dim int) (*Index, error) {
	if size <= 0 || dim <= 0 {
		return nil, errors.New("flat: invalid dimensions")
	}
	idx := &Index{size: size, dim: dim}
	idx.ctxPool.New = func() any { return heap.NewResultQueue(16) }
	return idx, nil
}

// Result is a search hit.
type Result = heap.Item

// Search scans every point through dco, maintaining a k-bounded result
// queue whose threshold drives pruning. The budget parameter of the other
// indexes has no meaning here and is ignored.
func (idx *Index) Search(dco core.DCO, q []float32, k int) ([]Result, core.Stats, error) {
	if dco.Size() != idx.size {
		return nil, core.Stats{}, fmt.Errorf("flat: DCO over %d points, index over %d", dco.Size(), idx.size)
	}
	if k <= 0 {
		return nil, core.Stats{}, errors.New("flat: k must be positive")
	}
	ev, err := dco.NewQuery(q)
	if err != nil {
		return nil, core.Stats{}, err
	}
	out, err := idx.SearchEval(ev, k, dco.Size(), nil)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return out, *ev.Stats(), nil
}

// SearchEval is the evaluator-driven search path: the caller owns ev
// (typically pooled and already Reset for this query) and receives the
// hits appended to dst in ascending distance order. size must be the
// evaluator's point count; work counters accumulate in ev.Stats().
func (idx *Index) SearchEval(ev core.QueryEvaluator, k, size int, dst []Result) ([]Result, error) {
	if size != idx.size {
		return nil, fmt.Errorf("flat: DCO over %d points, index over %d", size, idx.size)
	}
	if k <= 0 {
		return nil, errors.New("flat: k must be positive")
	}
	rq := idx.ctxPool.Get().(*heap.ResultQueue)
	rq.Reset(k)
	for id := 0; id < idx.size; id++ {
		tau := rq.Threshold()
		d, pruned := ev.Compare(id, tau)
		if pruned {
			continue
		}
		if d < tau {
			rq.Push(id, d)
		}
	}
	dst = rq.AppendSorted(dst)
	idx.ctxPool.Put(rq)
	return dst, nil
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return idx.size }

// Dim returns the indexed dimensionality.
func (idx *Index) Dim() int { return idx.dim }
