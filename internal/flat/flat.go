// Package flat implements the exhaustive-scan index: every query compares
// against every point through the DCO. With an approximate comparator this
// is exactly the linear-scan setting of the paper's Table III — the
// threshold of the growing result queue prunes most of the scan — and it
// is the correct choice for small collections where graph construction
// doesn't pay for itself.
package flat

import (
	"errors"
	"fmt"

	"resinfer/internal/core"
	"resinfer/internal/heap"
)

// Index is a flat index over n points. It stores no per-point state; the
// vectors live in the DCO.
type Index struct {
	size int
	dim  int
}

// Build creates a flat index over data.
func Build(data [][]float32) (*Index, error) {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errors.New("flat: empty data")
	}
	return &Index{size: len(data), dim: len(data[0])}, nil
}

// New creates a flat index with explicit dimensions (used by Load paths).
func New(size, dim int) (*Index, error) {
	if size <= 0 || dim <= 0 {
		return nil, errors.New("flat: invalid dimensions")
	}
	return &Index{size: size, dim: dim}, nil
}

// Result is a search hit.
type Result = heap.Item

// Search scans every point through dco, maintaining a k-bounded result
// queue whose threshold drives pruning. The budget parameter of the other
// indexes has no meaning here and is ignored.
func (idx *Index) Search(dco core.DCO, q []float32, k int) ([]Result, core.Stats, error) {
	if dco.Size() != idx.size {
		return nil, core.Stats{}, fmt.Errorf("flat: DCO over %d points, index over %d", dco.Size(), idx.size)
	}
	if k <= 0 {
		return nil, core.Stats{}, errors.New("flat: k must be positive")
	}
	ev, err := dco.NewQuery(q)
	if err != nil {
		return nil, core.Stats{}, err
	}
	rq := heap.NewResultQueue(k)
	for id := 0; id < idx.size; id++ {
		tau := rq.Threshold()
		d, pruned := ev.Compare(id, tau)
		if pruned {
			continue
		}
		if d < tau {
			rq.Push(id, d)
		}
	}
	return rq.Sorted(), *ev.Stats(), nil
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return idx.size }

// Dim returns the indexed dimensionality.
func (idx *Index) Dim() int { return idx.dim }
