package flat

import (
	"math/rand"
	"testing"

	"resinfer/internal/core"
	"resinfer/internal/dataset"
	"resinfer/internal/ddc"
	"resinfer/internal/store"
)

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := New(0, 5); err == nil {
		t.Fatal("expected invalid-dims error")
	}
}

func TestFlatExactEqualsBruteForce(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "flat-test", N: 1200, Dim: 32, Queries: 10, VE32: 0.8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	dco, _ := core.NewExact(ds.Matrix())
	for qi, q := range ds.Queries {
		items, _, err := idx.Search(dco, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i, it := range items {
			if it.ID != gt[qi][i] {
				t.Fatalf("query %d result %d: %d vs gt %d", qi, i, it.ID, gt[qi][i])
			}
		}
	}
}

func TestFlatWithDDCresNearExact(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "flat-ddc", N: 2000, Dim: 64, Queries: 15, VE32: 0.85, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := Build(ds.Matrix())
	dco, err := ddc.NewRes(ds.Matrix(), ddc.ResConfig{Seed: 7, InitD: 16, DeltaD: 16})
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]int, len(ds.Queries))
	var prunedTotal, compTotal int64
	for qi, q := range ds.Queries {
		items, st, err := idx.Search(dco, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		prunedTotal += st.Pruned
		compTotal += st.Comparisons
		for _, it := range items {
			results[qi] = append(results[qi], it.ID)
		}
	}
	if r := dataset.Recall(results, gt, 10); r < 0.99 {
		t.Fatalf("flat DDCres recall = %v", r)
	}
	// The queue threshold tightens quickly, so the bulk of the scan prunes.
	if rate := float64(prunedTotal) / float64(compTotal); rate < 0.5 {
		t.Fatalf("flat scan pruned rate %v too low", rate)
	}
}

func TestFlatErrors(t *testing.T) {
	data := store.MustFromRows([][]float32{{1, 2}, {3, 4}})
	idx, _ := Build(data)
	dco, _ := core.NewExact(data)
	if _, _, err := idx.Search(dco, []float32{1, 2}, 0); err == nil {
		t.Fatal("expected k error")
	}
	other, _ := core.NewExact(store.MustFromRows([][]float32{{1, 2}}))
	if _, _, err := idx.Search(other, []float32{1, 2}, 1); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if idx.Len() != 2 || idx.Dim() != 2 {
		t.Fatal("metadata")
	}
}

func TestFlatKLargerThanN(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := make([][]float32, 5)
	for i := range data {
		data[i] = []float32{float32(r.NormFloat64())}
	}
	mat := store.MustFromRows(data)
	idx, _ := Build(mat)
	dco, _ := core.NewExact(mat)
	items, _, err := idx.Search(dco, []float32{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("k>n should return all %d points, got %d", 5, len(items))
	}
}
