// Package harness drives the reproduction of every table and figure in the
// paper's evaluation (§VII) plus the technical-report OOD experiments and
// the ablations called out in DESIGN.md. It owns a process-wide cache of
// expensive artifacts (datasets, ground truth, indexes, trained DCOs) so
// that experiments sharing a dataset pay for construction once, and it
// records construction wall-times and sizes for the preprocessing
// experiments (Exp-3, Exp-5).
package harness

import (
	"fmt"
	"sync"
	"time"

	"resinfer/internal/adsampling"
	"resinfer/internal/core"
	"resinfer/internal/dataset"
	"resinfer/internal/ddc"
	"resinfer/internal/finger"
	"resinfer/internal/hnsw"
	"resinfer/internal/ivf"
)

// Artifacts lazily builds and caches everything derived from one dataset
// profile. All getters are safe for concurrent use.
type Artifacts struct {
	Profile dataset.Profile

	mu      sync.Mutex
	ds      *dataset.Dataset
	gt      map[int][][]int
	hnswIdx *hnsw.Index
	ivfIdx  *ivf.Index
	exact   *core.Exact
	ads     *adsampling.DCO
	res     *ddc.Res
	pcadco  *ddc.PCADCO
	opqdco  *ddc.OPQDCO
	fing    *finger.Finger
	timings map[string]time.Duration
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Artifacts{}
	scale   = 1.0
)

// SetScale shrinks every profile fetched through Get by the given factor
// (applied to N, query counts and training queries, with sane floors).
// The benchmark suite uses a reduced scale so `go test -bench` finishes
// quickly; cmd/bench defaults to 1.0. Call before the first Get.
func SetScale(s float64) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s > 0 && s <= 1 {
		scale = s
	}
}

func scaled(n, floor int) int {
	v := int(float64(n) * scale)
	if v < floor {
		v = floor
	}
	return v
}

// Get returns the (cached) artifact set for a named dataset profile.
func Get(name string) (*Artifacts, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if a, ok := cache[name]; ok {
		return a, nil
	}
	prof, err := dataset.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	prof.N = scaled(prof.N, 2000)
	prof.Queries = scaled(prof.Queries, 40)
	prof.TrainQueries = scaled(prof.TrainQueries, 200)
	a := &Artifacts{
		Profile: prof,
		gt:      map[int][][]int{},
		timings: map[string]time.Duration{},
	}
	cache[name] = a
	return a, nil
}

// GetCustom returns artifacts for an ad-hoc profile (tests and the CLI's
// -n/-dim overrides), cached under the profile name.
func GetCustom(prof dataset.Profile) *Artifacts {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if a, ok := cache[prof.Name]; ok {
		return a
	}
	a := &Artifacts{
		Profile: prof,
		gt:      map[int][][]int{},
		timings: map[string]time.Duration{},
	}
	cache[prof.Name] = a
	return a
}

// Reset drops all cached artifacts (used by tests).
func Reset() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[string]*Artifacts{}
}

func (a *Artifacts) timed(key string, build func() error) error {
	start := time.Now()
	if err := build(); err != nil {
		return err
	}
	a.timings[key] = time.Since(start)
	return nil
}

// Timing returns the recorded build duration for a component key
// ("dataset", "hnsw", "ivf", "ads", "res", "pca", "opq", "finger"); zero
// when the component has not been built.
func (a *Artifacts) Timing(key string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.timings[key]
}

// Dataset returns the generated dataset.
func (a *Artifacts) Dataset() (*dataset.Dataset, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.ensureDataset(); err != nil {
		return nil, err
	}
	return a.ds, nil
}

func (a *Artifacts) ensureDataset() error {
	if a.ds != nil {
		return nil
	}
	return a.timed("dataset", func() error {
		ds, err := dataset.Generate(a.Profile.GenConfig)
		if err != nil {
			return err
		}
		a.ds = ds
		return nil
	})
}

// GroundTruth returns exact top-k ids for the evaluation queries.
func (a *Artifacts) GroundTruth(k int) ([][]int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if gt, ok := a.gt[k]; ok {
		return gt, nil
	}
	if err := a.ensureDataset(); err != nil {
		return nil, err
	}
	gt, err := dataset.BruteForceKNN(a.ds.Data, a.ds.Queries, k, 0)
	if err != nil {
		return nil, err
	}
	a.gt[k] = gt
	return gt, nil
}

// HNSW returns the built graph index (M=16 as in the paper; a reduced
// efConstruction=200 keeps the laptop-scale suite fast).
func (a *Artifacts) HNSW() (*hnsw.Index, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.hnswIdx != nil {
		return a.hnswIdx, nil
	}
	if err := a.ensureDataset(); err != nil {
		return nil, err
	}
	err := a.timed("hnsw", func() error {
		idx, err := hnsw.Build(a.ds.Matrix(), hnsw.Config{M: 16, EfConstruction: 200, Seed: a.Profile.Seed})
		if err != nil {
			return err
		}
		a.hnswIdx = idx
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.hnswIdx, nil
}

// IVF returns the built inverted-file index (NList defaults to ≈√n).
func (a *Artifacts) IVF() (*ivf.Index, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ivfIdx != nil {
		return a.ivfIdx, nil
	}
	if err := a.ensureDataset(); err != nil {
		return nil, err
	}
	err := a.timed("ivf", func() error {
		idx, err := ivf.Build(a.ds.Matrix(), ivf.Config{Seed: a.Profile.Seed})
		if err != nil {
			return err
		}
		a.ivfIdx = idx
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.ivfIdx, nil
}

// Mode names accepted by DCO.
const (
	ModeExact = "exact"
	ModeADS   = "ads"
	ModeRes   = "res"
	ModePCA   = "pca"
	ModeOPQ   = "opq"
)

// AllModes lists the five distance computation methods of Exp-1, in the
// paper's presentation order.
var AllModes = []string{ModeExact, ModeADS, ModeOPQ, ModePCA, ModeRes}

// DCO returns (building if necessary) the comparator for the given mode.
func (a *Artifacts) DCO(mode string) (core.DCO, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.ensureDataset(); err != nil {
		return nil, err
	}
	switch mode {
	case ModeExact:
		if a.exact == nil {
			e, err := core.NewExact(a.ds.Matrix())
			if err != nil {
				return nil, err
			}
			a.exact = e
		}
		return a.exact, nil
	case ModeADS:
		if a.ads == nil {
			err := a.timed("ads", func() error {
				d, err := adsampling.New(a.ds.Matrix(), adsampling.Config{Seed: a.Profile.Seed, DeltaD: 32})
				if err != nil {
					return err
				}
				a.ads = d
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		return a.ads, nil
	case ModeRes:
		if a.res == nil {
			err := a.timed("res", func() error {
				d, err := ddc.NewRes(a.ds.Matrix(), ddc.ResConfig{
					Seed: a.Profile.Seed, InitD: 32, DeltaD: 32, Multiplier: 3,
				})
				if err != nil {
					return err
				}
				a.res = d
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		return a.res, nil
	case ModePCA:
		if a.pcadco == nil {
			err := a.timed("pca", func() error {
				d, err := ddc.NewPCA(a.ds.Matrix(), a.ds.Train, ddc.PCAConfig{
					Seed:    a.Profile.Seed,
					Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
				})
				if err != nil {
					return err
				}
				a.pcadco = d
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		return a.pcadco, nil
	case ModeOPQ:
		if a.opqdco == nil {
			err := a.timed("opq", func() error {
				d, err := ddc.NewOPQ(a.ds.Matrix(), a.ds.Train, ddc.OPQConfig{
					OPQIters:  3,
					OPQSample: 4096,
					Seed:      a.Profile.Seed,
					Collect:   ddc.CollectConfig{K: 100, NegPerQuery: 100},
				})
				if err != nil {
					return err
				}
				a.opqdco = d
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		return a.opqdco, nil
	}
	return nil, fmt.Errorf("harness: unknown DCO mode %q", mode)
}

// Finger returns the FINGER-accelerated index over the HNSW graph.
func (a *Artifacts) Finger() (*finger.Finger, error) {
	if _, err := a.HNSW(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fing != nil {
		return a.fing, nil
	}
	err := a.timed("finger", func() error {
		f, err := finger.Build(a.hnswIdx, finger.Config{Seed: a.Profile.Seed, ErrorFactor: 1.1})
		if err != nil {
			return err
		}
		a.fing = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.fing, nil
}
