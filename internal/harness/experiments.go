package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"resinfer/internal/adsampling"
	"resinfer/internal/core"
	"resinfer/internal/dataset"
	"resinfer/internal/ddc"
	"resinfer/internal/heap"
	"resinfer/internal/hnsw"
	"resinfer/internal/quant"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// Experiment reproduces one paper artifact (table or figure).
type Experiment struct {
	ID       string
	PaperRef string
	Title    string
	Run      func(w io.Writer) error
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Fig. 1", "Estimation-error distribution: PCA vs random projection", RunFig1},
		{"fig2", "Fig. 2", "Empirical analysis of the mσ error bound", RunFig2},
		{"exp1", "Fig. 5", "Time-accuracy tradeoff across methods, indexes, datasets", RunExp1},
		{"exp2", "Fig. 6", "Varying the target recall r", RunExp2},
		{"exp3", "Fig. 7", "Pre-processing time and space", RunExp3},
		{"exp4", "Fig. 8", "Comparison with FINGER", RunExp4},
		{"exp5", "Fig. 9", "Scalability of pre-processing", RunExp5},
		{"exp6", "Fig. 10", "Scan rate and pruned rate", RunExp6},
		{"exp7", "Table III", "Approximation accuracy under linear scan", RunExp7},
		{"exp8", "§VII Exp-8", "Ant Group 512-dim image-search scenario", RunExp8},
		{"expA2", "TR Exp-A.2", "Out-of-distribution query sensitivity", RunExpA2},
		{"expA3", "TR Exp-A.3", "OOD mitigation by retraining", RunExpA3},
		{"abl1", "§IV (ablation)", "DDCres: incremental step Δd", RunAblationDeltaD},
		{"abl2", "§IV-C (ablation)", "DDCres: error-bound multiplier m", RunAblationMultiplier},
		{"abl3", "§V-B (ablation)", "DDCopq: residual-norm feature", RunAblationOPQFeature},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Parameter sweeps matching the paper's figure axes (scaled to our sizes).
var (
	efsK20     = []int{20, 40, 80, 160, 320}
	efsK100    = []int{100, 150, 250, 400}
	nprobesAll = []int{2, 4, 8, 16, 32, 64}
)

// exp1HNSWDatasets and exp1IVFDatasets mirror Fig. 5's panel layout: six
// datasets on both indexes, the two large analogs on HNSW only.
var (
	exp1BothDatasets = []string{"msong", "gist", "deep", "tiny", "glove", "word2vec"}
	exp1HNSWOnly     = []string{"tiny80", "sift"}
)

// RunExp1 reproduces Fig. 5: QPS–recall curves for HNSW and IVF variants.
func RunExp1(w io.Writer) error {
	for _, name := range exp1BothDatasets {
		if err := exp1Panel(w, name, true, true); err != nil {
			return err
		}
	}
	for _, name := range exp1HNSWOnly {
		if err := exp1Panel(w, name, true, false); err != nil {
			return err
		}
	}
	return nil
}

func exp1Panel(w io.Writer, name string, doHNSW, doIVF bool) error {
	a, err := Get(name)
	if err != nil {
		return err
	}
	ds, err := a.Dataset()
	if err != nil {
		return err
	}
	for _, k := range []int{20, 100} {
		gt, err := a.GroundTruth(k)
		if err != nil {
			return err
		}
		efs := efsK20
		if k == 100 {
			efs = efsK100
		}
		if doHNSW {
			idx, err := a.HNSW()
			if err != nil {
				return err
			}
			var curves []Curve
			for _, mode := range AllModes {
				dco, err := a.DCO(mode)
				if err != nil {
					return err
				}
				pts, err := SweepHNSW(idx, dco, ds.Queries, gt, k, efs)
				if err != nil {
					return err
				}
				curves = append(curves, Curve{Label: "hnsw-" + mode, Points: pts})
			}
			RenderCurves(w, fmt.Sprintf("%s (HNSW) recall@%d", name, k), "ef", ds.Dim, curves)
		}
		if doIVF {
			idx, err := a.IVF()
			if err != nil {
				return err
			}
			var curves []Curve
			for _, mode := range AllModes {
				dco, err := a.DCO(mode)
				if err != nil {
					return err
				}
				pts, err := SweepIVF(idx, dco, ds.Queries, gt, k, nprobesAll)
				if err != nil {
					return err
				}
				curves = append(curves, Curve{Label: "ivf-" + mode, Points: pts})
			}
			RenderCurves(w, fmt.Sprintf("%s (IVF) recall@%d", name, k), "nprobe", ds.Dim, curves)
		}
	}
	return nil
}

// RunExp2 reproduces Fig. 6: the effect of the target recall r used by the
// adaptive boundary adjustment on the HNSW-DDCpca and HNSW-DDCopq curves.
func RunExp2(w io.Writer) error {
	targets := []float64{0.9, 0.95, 0.97, 0.99, 0.995, 0.999}
	for _, name := range []string{"gist", "deep"} {
		a, err := Get(name)
		if err != nil {
			return err
		}
		ds, err := a.Dataset()
		if err != nil {
			return err
		}
		gt, err := a.GroundTruth(20)
		if err != nil {
			return err
		}
		idx, err := a.HNSW()
		if err != nil {
			return err
		}
		// DDCpca with per-target retraining.
		var pcaCurves, opqCurves []Curve
		pcaDCO, err := a.DCO(ModePCA)
		if err != nil {
			return err
		}
		opqDCO, err := a.DCO(ModeOPQ)
		if err != nil {
			return err
		}
		pcad := pcaDCO.(*ddc.PCADCO)
		opqd := opqDCO.(*ddc.OPQDCO)
		for _, r := range targets {
			if err := pcad.Retrain(ds.Train, ddc.PCAConfig{
				Seed: a.Profile.Seed, TargetRecall: r,
				Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
			}); err != nil {
				return err
			}
			pts, err := SweepHNSW(idx, pcad, ds.Queries, gt, 20, efsK20)
			if err != nil {
				return err
			}
			pcaCurves = append(pcaCurves, Curve{Label: fmt.Sprintf("r=%.3f", r), Points: pts})

			if err := opqd.Retrain(ds.Train, ddc.OPQConfig{
				Seed: a.Profile.Seed, TargetRecall: r,
				Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
			}); err != nil {
				return err
			}
			pts, err = SweepHNSW(idx, opqd, ds.Queries, gt, 20, efsK20)
			if err != nil {
				return err
			}
			opqCurves = append(opqCurves, Curve{Label: fmt.Sprintf("r=%.3f", r), Points: pts})
		}
		// Restore the default calibration for later experiments.
		if err := pcad.Retrain(ds.Train, ddc.PCAConfig{
			Seed:    a.Profile.Seed,
			Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
		}); err != nil {
			return err
		}
		if err := opqd.Retrain(ds.Train, ddc.OPQConfig{
			Seed:    a.Profile.Seed,
			Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
		}); err != nil {
			return err
		}
		RenderCurves(w, fmt.Sprintf("%s (HNSW-DDCpca) target-recall sweep, recall@20", name), "ef", ds.Dim, pcaCurves)
		RenderCurves(w, fmt.Sprintf("%s (HNSW-DDCopq) target-recall sweep, recall@20", name), "ef", ds.Dim, opqCurves)
	}
	return nil
}

// RunExp3 reproduces Fig. 7: pre-processing time and space per method,
// next to the index costs of HNSW and IVF.
func RunExp3(w io.Writer) error {
	names := []string{"msong", "gist", "deep", "word2vec", "glove", "tiny"}
	fmt.Fprintln(w, "== Pre-processing time (s) and space (MB) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tcomponent\ttime(s)\tspace(MB)")
	for _, name := range names {
		a, err := Get(name)
		if err != nil {
			return err
		}
		ds, err := a.Dataset()
		if err != nil {
			return err
		}
		baseMB := float64(len(ds.Data)) * float64(ds.Dim) * 4 / (1 << 20)
		hnswIdx, err := a.HNSW()
		if err != nil {
			return err
		}
		ivfIdx, err := a.IVF()
		if err != nil {
			return err
		}
		type row struct {
			comp  string
			secs  float64
			space float64
		}
		rows := []row{
			{"base-data", 0, baseMB},
			{"hnsw-index", a.Timing("hnsw").Seconds(), float64(hnswIdx.GraphBytes()) / (1 << 20)},
			{"ivf-index", a.Timing("ivf").Seconds(), float64(ivfIdx.IndexBytes()) / (1 << 20)},
		}
		for _, mode := range []string{ModeADS, ModeRes, ModePCA, ModeOPQ} {
			dco, err := a.DCO(mode)
			if err != nil {
				return err
			}
			rows = append(rows, row{
				comp:  "dco-" + mode,
				secs:  a.Timing(modeTimingKey(mode)).Seconds(),
				space: float64(dco.ExtraBytes()) / (1 << 20),
			})
		}
		fing, err := a.Finger()
		if err != nil {
			return err
		}
		rows = append(rows, row{"finger", a.Timing("finger").Seconds(),
			float64(fing.ExtraBytes()) / (1 << 20)})
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\n", name, r.comp, r.secs, r.space)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

func modeTimingKey(mode string) string {
	switch mode {
	case ModeADS:
		return "ads"
	case ModeRes:
		return "res"
	case ModePCA:
		return "pca"
	case ModeOPQ:
		return "opq"
	}
	return mode
}

// RunExp4 reproduces Fig. 8: FINGER vs our methods on GIST and DEEP with
// HNSW.
func RunExp4(w io.Writer) error {
	for _, name := range []string{"gist", "deep"} {
		a, err := Get(name)
		if err != nil {
			return err
		}
		ds, err := a.Dataset()
		if err != nil {
			return err
		}
		idx, err := a.HNSW()
		if err != nil {
			return err
		}
		fing, err := a.Finger()
		if err != nil {
			return err
		}
		for _, k := range []int{20, 100} {
			gt, err := a.GroundTruth(k)
			if err != nil {
				return err
			}
			efs := efsK20
			if k == 100 {
				efs = efsK100
			}
			var curves []Curve
			for _, mode := range []string{ModeExact, ModeADS, ModeOPQ, ModePCA, ModeRes} {
				dco, err := a.DCO(mode)
				if err != nil {
					return err
				}
				pts, err := SweepHNSW(idx, dco, ds.Queries, gt, k, efs)
				if err != nil {
					return err
				}
				curves = append(curves, Curve{Label: "hnsw-" + mode, Points: pts})
			}
			// FINGER runs its own search loop.
			var fpts []Point
			for _, ef := range efs {
				results := make([][]int, len(ds.Queries))
				var agg core.Stats
				start := time.Now()
				for qi, q := range ds.Queries {
					items, st, err := fing.Search(q, k, ef)
					if err != nil {
						return err
					}
					agg.Add(st)
					for _, it := range items {
						results[qi] = append(results[qi], it.ID)
					}
				}
				elapsed := time.Since(start)
				fpts = append(fpts, Point{
					Param:  ef,
					Recall: dataset.Recall(results, gt, k),
					QPS:    float64(len(ds.Queries)) / elapsed.Seconds(),
					Stats:  agg,
				})
			}
			curves = append(curves, Curve{Label: "finger", Points: fpts})
			RenderCurves(w, fmt.Sprintf("%s (HNSW vs FINGER) recall@%d", name, k), "ef", ds.Dim, curves)
		}
	}
	return nil
}

// RunExp5 reproduces Fig. 9: pre-processing time versus dataset size on
// the SIFT analog, sweeping five proportional slices.
func RunExp5(w io.Writer) error {
	a, err := Get("sift")
	if err != nil {
		return err
	}
	ds, err := a.Dataset()
	if err != nil {
		return err
	}
	n := len(ds.Data)
	fmt.Fprintln(w, "== Scalability: pre-processing time (s) vs dataset size (SIFT analog) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\thnsw\tads\tpca-rotate(res)\topq-train\tddc-pca-train\tddc-opq-train")
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		sz := int(float64(n) * frac)
		slice := store.MustFromRows(ds.Data[:sz])
		train := ds.Train
		if len(train) > 400 {
			train = train[:400]
		}

		hnswT := timeIt(func() error {
			_, err := hnsw.Build(slice, hnsw.Config{M: 16, EfConstruction: 200, Seed: 1})
			return err
		})
		adsT := timeIt(func() error {
			_, err := adsampling.New(slice, adsampling.Config{Seed: 1})
			return err
		})
		resT := timeIt(func() error {
			_, err := ddc.NewRes(slice, ddc.ResConfig{Seed: 1, PCASample: 20000})
			return err
		})
		opqT := timeIt(func() error {
			_, err := quant.TrainOPQ(slice, quant.OPQConfig{
				PQ: quant.PQConfig{M: 32, Nbits: 8, Seed: 1}, Iters: 3, TrainSample: 4096, Seed: 1,
			})
			return err
		})
		pcaTrainT := timeIt(func() error {
			_, err := ddc.NewPCA(slice, train, ddc.PCAConfig{
				Seed: 1, Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
			})
			return err
		})
		opqTrainT := timeIt(func() error {
			_, err := ddc.NewOPQ(slice, train, ddc.OPQConfig{
				OPQIters: 3, OPQSample: 4096, Seed: 1,
				Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
			})
			return err
		})
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			sz, hnswT.Seconds(), adsT.Seconds(), resT.Seconds(),
			opqT.Seconds(), pcaTrainT.Seconds(), opqTrainT.Seconds())
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

func timeIt(f func() error) time.Duration {
	start := time.Now()
	if err := f(); err != nil {
		return 0
	}
	return time.Since(start)
}

// RunExp6 reproduces Fig. 10: scan rate for the projection-based methods
// and pruned rate for all, versus ef (HNSW) and nprobe (IVF), on GIST and
// DEEP.
func RunExp6(w io.Writer) error {
	for _, name := range []string{"gist", "deep"} {
		a, err := Get(name)
		if err != nil {
			return err
		}
		ds, err := a.Dataset()
		if err != nil {
			return err
		}
		gt, err := a.GroundTruth(20)
		if err != nil {
			return err
		}
		hidx, err := a.HNSW()
		if err != nil {
			return err
		}
		iidx, err := a.IVF()
		if err != nil {
			return err
		}
		var hc, ic []Curve
		for _, mode := range []string{ModeADS, ModePCA, ModeRes, ModeOPQ} {
			dco, err := a.DCO(mode)
			if err != nil {
				return err
			}
			hp, err := SweepHNSW(hidx, dco, ds.Queries, gt, 20, efsK20)
			if err != nil {
				return err
			}
			hc = append(hc, Curve{Label: mode, Points: hp})
			ip, err := SweepIVF(iidx, dco, ds.Queries, gt, 20, nprobesAll)
			if err != nil {
				return err
			}
			ic = append(ic, Curve{Label: mode, Points: ip})
		}
		RenderCurves(w, name+" scan/pruned rates (HNSW)", "ef", ds.Dim, hc)
		RenderCurves(w, name+" scan/pruned rates (IVF)", "nprobe", ds.Dim, ic)
	}
	return nil
}

// RunExp7 reproduces Table III: recall@100 of a pure linear scan using
// 32-dimensional approximations — PCA prefix distance, random-projection
// distance, and DDCres with its correction loop.
func RunExp7(w io.Writer) error {
	const d = 32
	const k = 100
	fmt.Fprintln(w, "== Table III: approximation accuracy (recall@100, 32 dims) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tPCA\tRand\tDDCres")
	for _, name := range []string{"deep", "gist", "tiny", "glove", "word2vec"} {
		a, err := Get(name)
		if err != nil {
			return err
		}
		ds, err := a.Dataset()
		if err != nil {
			return err
		}
		gt, err := a.GroundTruth(k)
		if err != nil {
			return err
		}
		resDCO, err := a.DCO(ModeRes)
		if err != nil {
			return err
		}
		res := resDCO.(*ddc.Res)
		adsDCO, err := a.DCO(ModeADS)
		if err != nil {
			return err
		}

		pcaResults := make([][]int, len(ds.Queries))
		randResults := make([][]int, len(ds.Queries))
		ddcResults := make([][]int, len(ds.Queries))
		for qi, q := range ds.Queries {
			// (a) Top-k by PCA prefix distance at depth d.
			rq, err := res.Model().Project(q)
			if err != nil {
				return err
			}
			pcaResults[qi] = topKByApprox(res.Rotated(), rq, d, k)
			// (b) Top-k by random-projection prefix distance at depth d.
			randResults[qi], err = topKByRandomPrefix(adsDCO.(*adsampling.DCO), q, d, k)
			if err != nil {
				return err
			}
			// (c) DDCres approximate distance: the decomposition
			// C1 − C2 = ‖x‖²+‖q‖²−2⟨x_d,q_d⟩ at depth d. Unlike the plain
			// PCA prefix distance it keeps the full norm information, which
			// is what Table III credits for the gap (largest on GLOVE).
			qNorm := vec.NormSq(rq)
			norms := res.Norms()
			rot := res.Rotated()
			ddcQueue := heap.NewResultQueue(k)
			for id := 0; id < rot.Rows(); id++ {
				approx := norms[id] + qNorm - 2*vec.DotRange(rq, rot.Row(id), 0, d)
				if approx < ddcQueue.Threshold() {
					ddcQueue.Push(id, approx)
				}
			}
			for _, it := range ddcQueue.Sorted() {
				ddcResults[qi] = append(ddcResults[qi], it.ID)
			}
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\n", name,
			100*dataset.Recall(pcaResults, gt, k),
			100*dataset.Recall(randResults, gt, k),
			100*dataset.Recall(ddcResults, gt, k))
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// topKByApprox ranks points by prefix distance over the first d rotated
// coordinates.
func topKByApprox(rotated *store.Matrix, rq []float32, d, k int) []int {
	q := heap.NewResultQueue(k)
	for id := 0; id < rotated.Rows(); id++ {
		dist := vec.L2SqRange(rq, rotated.Row(id), 0, d)
		if dist < q.Threshold() {
			q.Push(id, dist)
		}
	}
	items := q.Sorted()
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	return ids
}

// RunExp8 reproduces the Ant Group scenario: a 512-dim image-embedding
// analog where HNSW-DDCopq must cut retrieval time without losing recall.
func RunExp8(w io.Writer) error {
	a, err := Get("ant512")
	if err != nil {
		return err
	}
	ds, err := a.Dataset()
	if err != nil {
		return err
	}
	gt, err := a.GroundTruth(20)
	if err != nil {
		return err
	}
	idx, err := a.HNSW()
	if err != nil {
		return err
	}
	exact, err := a.DCO(ModeExact)
	if err != nil {
		return err
	}
	opq, err := a.DCO(ModeOPQ)
	if err != nil {
		return err
	}
	basePts, err := SweepHNSW(idx, exact, ds.Queries, gt, 20, efsK20)
	if err != nil {
		return err
	}
	opqPts, err := SweepHNSW(idx, opq, ds.Queries, gt, 20, efsK20)
	if err != nil {
		return err
	}
	RenderCurves(w, "ant512 (HNSW) recall@20", "ef", ds.Dim, []Curve{
		{Label: "hnsw-exact", Points: basePts},
		{Label: "hnsw-ddc-opq", Points: opqPts},
	})
	const target = 0.95
	baseQPS := QPSAtRecall(basePts, target)
	opqQPS := QPSAtRecall(opqPts, target)
	if baseQPS > 0 && opqQPS > 0 {
		fmt.Fprintf(w, "at recall>=%.2f: exact %.0f QPS, DDCopq %.0f QPS, throughput %+.1f%%, retrieval time %+.1f%%\n\n",
			target, baseQPS, opqQPS, 100*(opqQPS/baseQPS-1), 100*(baseQPS/opqQPS-1))
	} else {
		fmt.Fprintf(w, "target recall %.2f not reached by both methods\n\n", target)
	}
	return nil
}

// topKByRandomPrefix ranks points by prefix distance over the first d
// randomly rotated coordinates (scaling by D/d preserves the order, so the
// raw prefix suffices for ranking).
func topKByRandomPrefix(ads *adsampling.DCO, q []float32, d, k int) ([]int, error) {
	rq, err := ads.Rotation().ApplyF32(q)
	if err != nil {
		return nil, err
	}
	return topKByApprox(ads.Rotated(), rq, d, k), nil
}
