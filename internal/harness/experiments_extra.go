package harness

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"resinfer/internal/dataset"
	"resinfer/internal/ddc"
	"resinfer/internal/matrix"
	"resinfer/internal/stats"
	"resinfer/internal/vec"
)

// RunFig1 reproduces Fig. 1: the distribution of the estimation error
// ⟨q_r, x_r⟩ under PCA versus random projection (panel 1) and under PCA
// with varying residual dimension (panel 2), on the DEEP analog. The
// figure's visual claim — PCA's error distribution is far more
// concentrated — is reported as standard deviations and central-mass
// fractions.
func RunFig1(w io.Writer) error {
	a, err := Get("deep")
	if err != nil {
		return err
	}
	ds, err := a.Dataset()
	if err != nil {
		return err
	}
	resDCO, err := a.DCO(ModeRes)
	if err != nil {
		return err
	}
	res := resDCO.(*ddc.Res)
	dim := ds.Dim

	// Random rotation for the comparison panel.
	rng := rand.New(rand.NewSource(7))
	randRot := matrix.RandomOrthogonal(dim, rng)
	q := ds.Queries[0]
	rqPCA, err := res.Model().Project(q)
	if err != nil {
		return err
	}
	rqRand, err := randRot.ApplyF32(q)
	if err != nil {
		return err
	}

	sampleErrs := func(rotQ []float32, rotate func([]float32) ([]float32, error), resDim int, n int) ([]float64, error) {
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			id := rng.Intn(len(ds.Data))
			var x []float32
			var err error
			if rotate != nil {
				x, err = rotate(ds.Data[id])
				if err != nil {
					return nil, err
				}
			} else {
				x = res.Rotated().Row(id)
			}
			d := dim - resDim
			out = append(out, vec.Dot64(rotQ[d:], x[d:]))
		}
		return out, nil
	}

	const n = 4000
	fmt.Fprintln(w, "== Fig. 1: estimation-error distribution <q_r, x_r> (DEEP analog) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "projection\tres-dim\tstd\t99%-halfwidth")
	pcaErrs, err := sampleErrs(rqPCA, nil, 128, n)
	if err != nil {
		return err
	}
	randErrs, err := sampleErrs(rqRand, randRot.ApplyF32, 128, n)
	if err != nil {
		return err
	}
	report := func(label string, resDim int, errs []float64) {
		s := stats.Summarize(errs)
		// Robust spread: half the central-99% interval. The paper's
		// visual contrast (Fig. 1.1's concentrated PCA spike vs the flat
		// random histogram) reduces to this number.
		qs, qerr := stats.Quantiles(errs, []float64{0.005, 0.995})
		hw := 0.0
		if qerr == nil {
			hw = (qs[1] - qs[0]) / 2
		}
		fmt.Fprintf(tw, "%s\t%d\t%.5f\t%.5f\n", label, resDim, s.Std, hw)
	}
	report("pca", 128, pcaErrs)
	report("random", 128, randErrs)
	for _, resDim := range []int{32, 64, 128} {
		errs, err := sampleErrs(rqPCA, nil, resDim, n)
		if err != nil {
			return err
		}
		report("pca", resDim, errs)
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// RunFig2 reproduces Fig. 2: how well the Gaussian m·σ bound of §IV-C
// matches the empirical error distribution, on the DEEP and GLOVE analogs
// at two projection depths. Reported per panel: the predicted σ (Eq. 3
// averaged over queries), the empirical std, the coverage of the 3σ bound
// (paper: ≈99.7% on DEEP), and the coverage of a 10σ ADSampling-style
// bound (far beyond the 99.7th percentile, i.e. overly conservative).
func RunFig2(w io.Writer) error {
	fmt.Fprintln(w, "== Fig. 2: empirical analysis of the error bound ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tproj-dim\tsigma-pred\tsigma-emp\tcover-3sigma\tcover-10sigma\temp-99.7pct\t3sigma-bound")
	for _, spec := range []struct {
		name string
		dims []int
	}{
		{"deep", []int{32, 128}},
		{"glove", []int{50, 100}},
	} {
		a, err := Get(spec.name)
		if err != nil {
			return err
		}
		ds, err := a.Dataset()
		if err != nil {
			return err
		}
		resDCO, err := a.DCO(ModeRes)
		if err != nil {
			return err
		}
		res := resDCO.(*ddc.Res)
		rng := rand.New(rand.NewSource(11))
		for _, d := range spec.dims {
			var errsAll []float64
			var sigPredSum float64
			nq := len(ds.Queries)
			if nq > 20 {
				nq = 20
			}
			for qi := 0; qi < nq; qi++ {
				q := ds.Queries[qi]
				rq, err := res.Model().Project(q)
				if err != nil {
					return err
				}
				suffix := vec.SuffixWeightedSq(rq, res.Model().Sigmas)
				sigPredSum += 2 * math.Sqrt(suffix[d])
				for i := 0; i < 400; i++ {
					id := rng.Intn(len(ds.Data))
					x := res.Rotated().Row(id)
					errsAll = append(errsAll, -2*vec.Dot64(rq[d:], x[d:]))
				}
			}
			s := stats.Summarize(errsAll)
			sigPred := sigPredSum / float64(nq)
			cover := func(mult float64) float64 {
				in := 0
				for _, e := range errsAll {
					if math.Abs(e) <= mult*sigPred {
						in++
					}
				}
				return float64(in) / float64(len(errsAll))
			}
			q997, err := stats.Quantile(absAll(errsAll), 0.997)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
				spec.name, d, sigPred, s.Std, cover(3), cover(10), q997, 3*sigPred)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

func absAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x)
	}
	return out
}

// RunExpA2 reproduces technical-report Exp-A.2: recall degradation under
// out-of-distribution queries. DDCres (query treated as deterministic)
// stays robust; the learned methods degrade because their training data no
// longer matches.
func RunExpA2(w io.Writer) error {
	return runOOD(w, false)
}

// RunExpA3 reproduces technical-report Exp-A.3: retraining the learned
// classifiers with ~100 OOD queries restores their performance.
func RunExpA3(w io.Writer) error {
	return runOOD(w, true)
}

func runOOD(w io.Writer, retrain bool) error {
	a, err := Get("deep")
	if err != nil {
		return err
	}
	ds, err := a.Dataset()
	if err != nil {
		return err
	}
	idx, err := a.HNSW()
	if err != nil {
		return err
	}
	oodQueries, err := dataset.OODQueries(a.Profile.GenConfig, 100, 2.0, a.Profile.Seed)
	if err != nil {
		return err
	}
	oodGT, err := dataset.BruteForceKNN(ds.Data, oodQueries, 20, 0)
	if err != nil {
		return err
	}
	inGT, err := a.GroundTruth(20)
	if err != nil {
		return err
	}
	title := "Exp-A.2: OOD sensitivity (recall@20, HNSW, DEEP analog)"
	if retrain {
		title = "Exp-A.3: OOD mitigation by retraining on 100 OOD queries"
	}
	fmt.Fprintln(w, "== "+title+" ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	// The exact-DCO columns isolate the graph's own difficulty with OOD
	// queries; the per-method "delta" columns are the DCO-induced recall
	// loss, which is what Exp-A.2 is about.
	fmt.Fprintln(tw, "method\tef\tin recall\tin delta-vs-exact\tOOD recall\tOOD delta-vs-exact")
	exactDCO, err := a.DCO(ModeExact)
	if err != nil {
		return err
	}
	exactIn := map[int]float64{}
	exactOOD := map[int]float64{}
	for _, ef := range []int{40, 80} {
		pts, err := SweepHNSW(idx, exactDCO, ds.Queries, inGT, 20, []int{ef})
		if err != nil {
			return err
		}
		exactIn[ef] = pts[0].Recall
		pts, err = SweepHNSW(idx, exactDCO, oodQueries, oodGT, 20, []int{ef})
		if err != nil {
			return err
		}
		exactOOD[ef] = pts[0].Recall
	}

	if retrain {
		// Fresh OOD training queries, disjoint from the evaluation set.
		oodTrain, err := dataset.OODQueries(a.Profile.GenConfig, 100, 2.0, a.Profile.Seed+1)
		if err != nil {
			return err
		}
		pcaDCO, err := a.DCO(ModePCA)
		if err != nil {
			return err
		}
		if err := pcaDCO.(*ddc.PCADCO).Retrain(oodTrain, ddc.PCAConfig{
			Seed: a.Profile.Seed, Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
		}); err != nil {
			return err
		}
		opqDCO, err := a.DCO(ModeOPQ)
		if err != nil {
			return err
		}
		if err := opqDCO.(*ddc.OPQDCO).Retrain(oodTrain, ddc.OPQConfig{
			Seed: a.Profile.Seed, Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
		}); err != nil {
			return err
		}
	}

	for _, mode := range []string{ModeRes, ModePCA, ModeOPQ} {
		dco, err := a.DCO(mode)
		if err != nil {
			return err
		}
		for _, ef := range []int{40, 80} {
			inPts, err := SweepHNSW(idx, dco, ds.Queries, inGT, 20, []int{ef})
			if err != nil {
				return err
			}
			oodPts, err := SweepHNSW(idx, dco, oodQueries, oodGT, 20, []int{ef})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%+.4f\t%.4f\t%+.4f\n", mode, ef,
				inPts[0].Recall, inPts[0].Recall-exactIn[ef],
				oodPts[0].Recall, oodPts[0].Recall-exactOOD[ef])
		}
	}
	tw.Flush()
	fmt.Fprintln(w)

	if retrain {
		// Restore default calibration so later experiments see the
		// in-distribution classifiers.
		pcaDCO, _ := a.DCO(ModePCA)
		if err := pcaDCO.(*ddc.PCADCO).Retrain(ds.Train, ddc.PCAConfig{
			Seed: a.Profile.Seed, Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
		}); err != nil {
			return err
		}
		opqDCO, _ := a.DCO(ModeOPQ)
		if err := opqDCO.(*ddc.OPQDCO).Retrain(ds.Train, ddc.OPQConfig{
			Seed: a.Profile.Seed, Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
		}); err != nil {
			return err
		}
	}
	return nil
}

// RunAblationDeltaD ablates the incremental step Δd of DDCres on DEEP:
// smaller steps prune earlier but test more often.
func RunAblationDeltaD(w io.Writer) error {
	a, err := Get("deep")
	if err != nil {
		return err
	}
	ds, err := a.Dataset()
	if err != nil {
		return err
	}
	gt, err := a.GroundTruth(20)
	if err != nil {
		return err
	}
	idx, err := a.HNSW()
	if err != nil {
		return err
	}
	var curves []Curve
	for _, dd := range []int{8, 16, 32, 64, 128} {
		dco, err := ddc.NewRes(ds.Matrix(), ddc.ResConfig{
			Seed: a.Profile.Seed, InitD: dd, DeltaD: dd, Multiplier: 3,
		})
		if err != nil {
			return err
		}
		pts, err := SweepHNSW(idx, dco, ds.Queries, gt, 20, []int{40, 80, 160})
		if err != nil {
			return err
		}
		curves = append(curves, Curve{Label: fmt.Sprintf("dd=%d", dd), Points: pts})
	}
	RenderCurves(w, "Ablation: DDCres Δd (DEEP analog, HNSW, recall@20)", "ef", ds.Dim, curves)
	return nil
}

// RunAblationMultiplier ablates the error-bound multiplier m: small m
// prunes aggressively but costs recall; large m (ADSampling-like 10σ) is
// safe but slow. m=3 is the paper's sweet spot.
func RunAblationMultiplier(w io.Writer) error {
	a, err := Get("deep")
	if err != nil {
		return err
	}
	ds, err := a.Dataset()
	if err != nil {
		return err
	}
	gt, err := a.GroundTruth(20)
	if err != nil {
		return err
	}
	idx, err := a.HNSW()
	if err != nil {
		return err
	}
	var curves []Curve
	for _, m := range []float64{1, 2, 3, 4, 6, 10} {
		dco, err := ddc.NewRes(ds.Matrix(), ddc.ResConfig{
			Seed: a.Profile.Seed, InitD: 32, DeltaD: 32, Multiplier: m,
		})
		if err != nil {
			return err
		}
		pts, err := SweepHNSW(idx, dco, ds.Queries, gt, 20, []int{40, 80, 160})
		if err != nil {
			return err
		}
		curves = append(curves, Curve{Label: fmt.Sprintf("m=%g", m), Points: pts})
	}
	RenderCurves(w, "Ablation: DDCres multiplier m (DEEP analog, HNSW, recall@20)", "ef", ds.Dim, curves)
	return nil
}

// RunAblationOPQFeature ablates DDCopq's quantization-residual feature on
// the GLOVE analog (where DDCopq is the method of choice).
func RunAblationOPQFeature(w io.Writer) error {
	a, err := Get("glove")
	if err != nil {
		return err
	}
	ds, err := a.Dataset()
	if err != nil {
		return err
	}
	gt, err := a.GroundTruth(20)
	if err != nil {
		return err
	}
	idx, err := a.HNSW()
	if err != nil {
		return err
	}
	var curves []Curve
	for _, disable := range []bool{false, true} {
		dco, err := ddc.NewOPQ(ds.Matrix(), ds.Train, ddc.OPQConfig{
			OPQIters: 3, OPQSample: 4096, Seed: a.Profile.Seed,
			DisableResidualFeature: disable,
			Collect:                ddc.CollectConfig{K: 100, NegPerQuery: 100},
		})
		if err != nil {
			return err
		}
		label := "with-residual"
		if disable {
			label = "no-residual"
		}
		pts, err := SweepHNSW(idx, dco, ds.Queries, gt, 20, []int{40, 80, 160})
		if err != nil {
			return err
		}
		curves = append(curves, Curve{Label: label, Points: pts})
	}
	RenderCurves(w, "Ablation: DDCopq residual feature (GLOVE analog, HNSW, recall@20)", "ef", ds.Dim, curves)
	return nil
}
