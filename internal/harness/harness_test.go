package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"resinfer/internal/dataset"
)

// tinyProfile is a fast ad-hoc profile for harness unit tests.
func tinyProfile(name string) dataset.Profile {
	return dataset.Profile{
		GenConfig: dataset.GenConfig{
			Name: name, N: 1500, Dim: 64, Queries: 15, TrainQueries: 40,
			VE32: 0.8, Seed: 5,
		},
	}
}

func TestRegistryCompleteness(t *testing.T) {
	reg := Registry()
	want := []string{"fig1", "fig2", "exp1", "exp2", "exp3", "exp4", "exp5",
		"exp6", "exp7", "exp8", "expA2", "expA3", "abl1", "abl2", "abl3"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Title == "" || reg[i].PaperRef == "" {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, err := ByID("exp1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestGetUnknownProfile(t *testing.T) {
	if _, err := Get("definitely-not-a-profile"); err != nil {
		// expected
	} else {
		t.Fatal("expected error")
	}
}

func TestGetCachesInstance(t *testing.T) {
	a1, err := Get("deep")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Get("deep")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("Get must return the cached instance")
	}
}

func TestArtifactsLifecycle(t *testing.T) {
	a := GetCustom(tinyProfile("harness-tiny"))
	ds, err := a.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Data) != 1500 {
		t.Fatalf("N = %d", len(ds.Data))
	}
	if a.Timing("dataset") <= 0 {
		t.Fatal("dataset timing not recorded")
	}
	gt, err := a.GroundTruth(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != 15 || len(gt[0]) != 10 {
		t.Fatalf("gt shape %dx%d", len(gt), len(gt[0]))
	}
	// All five DCO modes must build and agree on metadata.
	for _, mode := range AllModes {
		dco, err := a.DCO(mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if dco.Size() != 1500 || dco.Dim() != 64 {
			t.Fatalf("%s metadata wrong", mode)
		}
	}
	if _, err := a.DCO("bogus"); err == nil {
		t.Fatal("expected unknown-mode error")
	}
	if _, err := a.HNSW(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.IVF(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Finger(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"hnsw", "ivf", "res", "pca", "opq", "finger"} {
		if a.Timing(key) <= 0 {
			t.Fatalf("timing %q not recorded", key)
		}
	}
}

func TestSweepsProduceMonotoneWork(t *testing.T) {
	a := GetCustom(tinyProfile("harness-tiny"))
	ds, err := a.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	gt, err := a.GroundTruth(10)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := a.HNSW()
	if err != nil {
		t.Fatal(err)
	}
	dco, err := a.DCO(ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := SweepHNSW(idx, dco, ds.Queries, gt, 10, []int{10, 40, 160})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Wider beams do strictly more comparisons and at least as much recall
	// (tiny tolerance for beam-order effects).
	for i := 0; i+1 < len(pts); i++ {
		if pts[i].Stats.Comparisons >= pts[i+1].Stats.Comparisons {
			t.Fatalf("comparisons not increasing: %+v", pts)
		}
		if pts[i].Recall > pts[i+1].Recall+0.05 {
			t.Fatalf("recall collapsed with wider beam: %+v", pts)
		}
	}

	ivfIdx, err := a.IVF()
	if err != nil {
		t.Fatal(err)
	}
	ipts, err := SweepIVF(ivfIdx, dco, ds.Queries, gt, 10, []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(ipts); i++ {
		if ipts[i].Stats.Comparisons >= ipts[i+1].Stats.Comparisons {
			t.Fatalf("ivf comparisons not increasing: %+v", ipts)
		}
	}
}

func TestRenderCurvesOutput(t *testing.T) {
	var buf bytes.Buffer
	RenderCurves(&buf, "title", "ef", 64, []Curve{
		{Label: "m1", Points: []Point{{Param: 10, Recall: 0.5, QPS: 100}}},
	})
	out := buf.String()
	for _, want := range []string{"== title ==", "m1", "ef", "0.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestQPSAtRecall(t *testing.T) {
	pts := []Point{
		{Recall: 0.8, QPS: 1000},
		{Recall: 0.95, QPS: 400},
		{Recall: 0.99, QPS: 100},
	}
	if got := QPSAtRecall(pts, 0.9); got != 400 {
		t.Fatalf("QPSAtRecall = %v", got)
	}
	if got := QPSAtRecall(pts, 0.999); got != 0 {
		t.Fatalf("unreachable target must give 0, got %v", got)
	}
}

func TestConcurrentArtifactAccess(t *testing.T) {
	Reset()
	defer Reset()
	a := GetCustom(tinyProfile("harness-conc"))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			switch i % 4 {
			case 0:
				_, err = a.Dataset()
			case 1:
				_, err = a.GroundTruth(5)
			case 2:
				_, err = a.DCO(ModeRes)
			case 3:
				_, err = a.HNSW()
			}
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
