package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"resinfer/internal/core"
	"resinfer/internal/ddc"
	"resinfer/internal/flat"
	"resinfer/internal/heap"
	"resinfer/internal/hnsw"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// KernelsReport is the machine-readable output of `bench -kernels`: the
// micro-level (distance kernels), meso-level (flat-scan Compare loop,
// rows layout vs contiguous matrix) and macro-level (end-to-end search
// QPS, per-query evaluators vs pooled) effects of the contiguous-storage
// and zero-alloc-search work, measured on this machine.
type KernelsReport struct {
	N   int `json:"n"`
	Dim int `json:"dim"`

	// Kernel implementation selected by runtime dispatch for this run:
	// "avx2+fma", "neon" or "generic" (see vec.Level).
	SIMDLevel string `json:"simd_level"`

	// Distance kernels (ns/op on one Dim-length pair): the dispatched
	// kernels (SIMD on supporting hosts) vs the portable generic path,
	// and the resulting speedups.
	DotNsOp         float64 `json:"dot_ns_op"`
	L2SqNsOp        float64 `json:"l2sq_ns_op"`
	DotGenericNsOp  float64 `json:"dot_generic_ns_op"`
	L2SqGenericNsOp float64 `json:"l2sq_generic_ns_op"`
	DotSpeedup      float64 `json:"dot_speedup"`  // generic / dispatched
	L2SqSpeedup     float64 `json:"l2sq_speedup"` // generic / dispatched

	// Flat-scan Compare loop: one full k-NN scan over all N points
	// through a result queue (ns per scanned point). "rows_seed" is the
	// seed configuration (per-row heap slices, 4-way unrolled kernel),
	// "flat" is the contiguous matrix with the fused dispatched kernels.
	CompareRowsSeedNsOp float64 `json:"compare_rows_seed_ns_op"`
	CompareFlatNsOp     float64 `json:"compare_flat_ns_op"`
	CompareSpeedup      float64 `json:"compare_speedup"` // rows_seed / flat

	// Steady-state pooled search (flat index, exact mode): allocations
	// per search and ns per search with a reused evaluator and dst.
	SearchAllocsOp float64 `json:"search_allocs_op"`
	SearchNsOp     float64 `json:"search_ns_op"`

	// End-to-end HNSW+DDCres search: fresh evaluator per query (the seed
	// serving path) vs one pooled evaluator Reset per query.
	QPSFreshEvaluator float64 `json:"qps_fresh_evaluator"`
	QPSPooled         float64 `json:"qps_pooled"`
	QPSSpeedup        float64 `json:"qps_speedup"`
}

// l2Sq4 is the seed repository's 4-way unrolled kernel, kept verbatim so
// the before/after comparison measures what the seed actually shipped.
func l2Sq4(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// shuffledRows allocates one heap object per row in shuffled order —
// the memory layout a parallel index build leaves behind — then returns
// them in index order, replicating the seed's [][]float32 data plane.
func shuffledRows(m *store.Matrix, rng *rand.Rand) [][]float32 {
	n := m.Rows()
	rows := make([][]float32, n)
	for _, i := range rng.Perm(n) {
		row := make([]float32, m.Dim())
		copy(row, m.Row(i))
		rows[i] = row
	}
	return rows
}

// scanRows runs the k-NN Compare loop of the flat index over row slices
// with the given kernel.
func scanRows(rows [][]float32, q []float32, k int, kernel func(a, b []float32) float32) []heap.Item {
	rq := heap.NewResultQueue(k)
	for id := range rows {
		d := kernel(q, rows[id])
		if d < rq.Threshold() {
			rq.Push(id, d)
		}
	}
	return rq.Sorted()
}

// RunKernels measures the kernel, layout and pooling effects and writes a
// human-readable summary to w plus machine-readable JSON to outPath.
func RunKernels(w io.Writer, outPath string) error {
	const (
		n   = 20000
		dim = 128
		k   = 10
	)
	rep := KernelsReport{N: n, Dim: dim, SIMDLevel: vec.Level()}
	rng := rand.New(rand.NewSource(42))

	mat, err := store.New(n, dim)
	if err != nil {
		return err
	}
	buf := mat.Flat()
	for i := range buf {
		buf[i] = float32(rng.NormFloat64())
	}
	queries := make([][]float32, 64)
	for i := range queries {
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		queries[i] = q
	}
	rows := shuffledRows(mat, rng)

	// --- Distance kernels.
	a, b := queries[0], queries[1]
	var sink float32
	dotRes := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			sink += vec.Dot(a, b)
		}
	})
	rep.DotNsOp = float64(dotRes.NsPerOp())
	l2Res := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			sink += vec.L2Sq(a, b)
		}
	})
	rep.L2SqNsOp = float64(l2Res.NsPerOp())
	dotGenRes := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			sink += vec.DotGeneric(a, b)
		}
	})
	rep.DotGenericNsOp = float64(dotGenRes.NsPerOp())
	l2GenRes := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			sink += vec.L2SqGeneric(a, b)
		}
	})
	rep.L2SqGenericNsOp = float64(l2GenRes.NsPerOp())
	if rep.DotNsOp > 0 {
		rep.DotSpeedup = rep.DotGenericNsOp / rep.DotNsOp
	}
	if rep.L2SqNsOp > 0 {
		rep.L2SqSpeedup = rep.L2SqGenericNsOp / rep.L2SqNsOp
	}

	// --- Flat-scan Compare loop, rows (seed kernel) vs contiguous
	// matrix with the dispatched kernels. Costs are per scanned point.
	perPoint := func(r testing.BenchmarkResult) float64 {
		return float64(r.NsPerOp()) / float64(n)
	}
	rowsSeed := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			items := scanRows(rows, queries[i%len(queries)], k, l2Sq4)
			sink += items[0].Dist
		}
	})
	rep.CompareRowsSeedNsOp = perPoint(rowsSeed)

	exact, err := core.NewExact(mat)
	if err != nil {
		return err
	}
	ev := exact.NewEvaluator()
	flatScan := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			if err := ev.Reset(queries[i%len(queries)]); err != nil {
				bm.Fatal(err)
			}
			rq := heap.NewResultQueue(k)
			for id := 0; id < n; id++ {
				d, _ := ev.Compare(id, rq.Threshold())
				if d < rq.Threshold() {
					rq.Push(id, d)
				}
			}
			sink += rq.Threshold()
		}
	})
	rep.CompareFlatNsOp = perPoint(flatScan)
	if rep.CompareFlatNsOp > 0 {
		rep.CompareSpeedup = rep.CompareRowsSeedNsOp / rep.CompareFlatNsOp
	}

	// --- Steady-state pooled search: flat index + exact mode, evaluator
	// and traversal scratch reused across queries.
	fl, err := flat.Build(mat)
	if err != nil {
		return err
	}
	var dst []heap.Item
	searchRes := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			if err := ev.Reset(queries[i%len(queries)]); err != nil {
				bm.Fatal(err)
			}
			dst, err = fl.SearchEval(ev, k, n, dst[:0])
			if err != nil {
				bm.Fatal(err)
			}
			sink += dst[0].Dist
		}
	})
	rep.SearchAllocsOp = float64(searchRes.AllocsPerOp())
	rep.SearchNsOp = float64(searchRes.NsPerOp())

	// --- End-to-end: HNSW + DDCres, fresh evaluator per query vs pooled.
	graph, err := hnsw.Build(mat, hnsw.Config{M: 16, EfConstruction: 200, Seed: 1})
	if err != nil {
		return err
	}
	res, err := ddc.NewRes(mat, ddc.ResConfig{Seed: 1, InitD: 32, DeltaD: 32})
	if err != nil {
		return err
	}
	const ef = 80
	fresh := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			items, _, err := graph.Search(res, queries[i%len(queries)], k, ef)
			if err != nil {
				bm.Fatal(err)
			}
			sink += items[0].Dist
		}
	})
	rep.QPSFreshEvaluator = 1e9 / float64(fresh.NsPerOp())
	rev := res.NewEvaluator()
	pooled := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			if err := rev.Reset(queries[i%len(queries)]); err != nil {
				bm.Fatal(err)
			}
			dst, err = graph.SearchEval(rev, k, ef, n, dst[:0])
			if err != nil {
				bm.Fatal(err)
			}
			sink += dst[0].Dist
		}
	})
	rep.QPSPooled = 1e9 / float64(pooled.NsPerOp())
	if rep.QPSFreshEvaluator > 0 {
		rep.QPSSpeedup = rep.QPSPooled / rep.QPSFreshEvaluator
	}
	_ = sink

	fmt.Fprintf(w, "== Kernel / layout / pooling benchmarks (n=%d, dim=%d, simd=%s) ==\n", n, dim, rep.SIMDLevel)
	fmt.Fprintf(w, "dot: %.1f ns/op (generic %.1f, %.2fx)   l2sq: %.1f ns/op (generic %.1f, %.2fx)\n",
		rep.DotNsOp, rep.DotGenericNsOp, rep.DotSpeedup,
		rep.L2SqNsOp, rep.L2SqGenericNsOp, rep.L2SqSpeedup)
	fmt.Fprintf(w, "compare loop (ns/point): rows+seed-kernel %.2f   flat+dispatched %.2f   speedup %.2fx\n",
		rep.CompareRowsSeedNsOp, rep.CompareFlatNsOp, rep.CompareSpeedup)
	fmt.Fprintf(w, "steady-state flat search: %.0f allocs/op, %.0f ns/op\n", rep.SearchAllocsOp, rep.SearchNsOp)
	fmt.Fprintf(w, "hnsw+ddcres: fresh-evaluator %.0f QPS, pooled %.0f QPS (%.2fx)\n",
		rep.QPSFreshEvaluator, rep.QPSPooled, rep.QPSSpeedup)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(out, '\n'), 0o644)
}
