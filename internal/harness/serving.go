package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resinfer"
	"resinfer/internal/dataset"
	"resinfer/internal/fault"
	"resinfer/internal/quality"
	"resinfer/internal/replica"
	"resinfer/internal/server"
)

// ServingEntry is the measurement for one DCO mode on the sharded
// serving path. Latency quantiles come from two vantage points: P50Ms /
// P99Ms are the server's own interpolated request-duration histogram
// (the same numbers /stats and /metrics serve), while ClientP50Ms /
// ClientP99Ms are measured by the HTTP clients and additionally include
// the network round trip and client-side JSON work. The micro-batching
// shape of the run is recorded from the server's batch-size and
// queue-depth distributions.
type ServingEntry struct {
	Mode          string  `json:"mode"`
	QPS           float64 `json:"qps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	ClientP50Ms   float64 `json:"client_p50_ms"`
	ClientP99Ms   float64 `json:"client_p99_ms"`
	AvgBatchSize  float64 `json:"avg_batch_size"`
	BatchSizeP99  float64 `json:"batch_size_p99"`
	QueueDepthP99 float64 `json:"queue_depth_p99"`
	RecallAt10    float64 `json:"recall_at_10"`
}

// OverloadEntry is the overload section of the serving bench: the
// server is offered roughly twice its measured exact-mode capacity from
// an open-loop client behind a deliberately small admission queue. What
// matters is the split — how much was shed with 429 versus served — and
// the latency of what WAS served. A healthy shedding policy keeps
// goodput near capacity and accepted-p99 near the uncontended p99,
// instead of letting every request queue up and time out together.
type OverloadEntry struct {
	OfferedQPS    float64 `json:"offered_qps"`
	GoodputQPS    float64 `json:"goodput_qps"`
	ShedRate      float64 `json:"shed_rate"`
	AcceptedP99Ms float64 `json:"accepted_p99_ms"`
	Served        int     `json:"served"`
	Shed          int     `json:"shed"`
	Failed        int     `json:"failed"`
	MaxQueueDepth int     `json:"max_queue_depth"`
}

// QualityEntry is the shadow-sampling section of the serving bench: the
// same traffic measured two ways. LiveRecall is the server's own
// estimate from re-running sampled queries as exact off-path scans (the
// /debug/quality figure an operator watches); OfflineRecall is the
// classic bench measurement of the very same responses against a
// precomputed brute-force ground truth. The two must agree — the bench
// asserts |live − offline| ≤ 2 points — and the throughput delta
// against the unsampled baseline run is the sampling overhead.
type QualityEntry struct {
	Mode          string  `json:"mode"`
	SampleRate    int     `json:"sample_rate"`
	Sampled       uint64  `json:"sampled"`
	Measured      uint64  `json:"measured"`
	Dropped       uint64  `json:"dropped"`
	LiveRecall    float64 `json:"live_recall_at_10"`
	OfflineRecall float64 `json:"offline_recall_at_10"`
	AgreementPts  float64 `json:"agreement_pts"`
	BaselineQPS   float64 `json:"baseline_qps"`
	SampledQPS    float64 `json:"sampled_qps"`
	OverheadPct   float64 `json:"overhead_pct"`
}

// HedgingEntry is the replicated-serving section of the serving bench:
// the same traffic driven twice against a primary whose shard probes are
// randomly slowed by an injected fault — once plain, once hedging onto a
// peer replica serving the identical index. The point of hedging is the
// tail: a slow shard stalls the whole unhedged fan-out, while the hedged
// run re-issues that shard's probe to the peer after HedgeDelayMs and
// takes whichever answers first. HedgedP99Ms below UnhedgedP99Ms — with
// recall unchanged — is the acceptance criterion.
type HedgingEntry struct {
	FaultDelayMs  float64 `json:"fault_delay_ms"`
	FaultP        float64 `json:"fault_p"`
	HedgeDelayMs  float64 `json:"hedge_delay_ms"`
	UnhedgedQPS   float64 `json:"unhedged_qps"`
	UnhedgedP99Ms float64 `json:"unhedged_p99_ms"`
	HedgedQPS     float64 `json:"hedged_qps"`
	HedgedP99Ms   float64 `json:"hedged_p99_ms"`
	Hedged        uint64  `json:"hedged"`
	HedgeWins     uint64  `json:"hedge_wins"`
	HedgeRate     float64 `json:"hedge_rate"` // hedges per query
	WinRate       float64 `json:"win_rate"`   // wins per hedge
	RecallAt10    float64 `json:"recall_at_10"`
}

// ServingResult is the machine-readable document cmd/bench writes to
// BENCH_serving.json so the serving-path perf trajectory is recorded
// across PRs.
type ServingResult struct {
	Dataset  string         `json:"dataset"`
	N        int            `json:"n"`
	Dim      int            `json:"dim"`
	Kind     string         `json:"kind"`
	Shards   int            `json:"shards"`
	K        int            `json:"k"`
	Budget   int            `json:"budget"`
	Clients  int            `json:"clients"`
	Queries  int            `json:"queries"`
	Entries  []ServingEntry `json:"entries"`
	Quality  *QualityEntry  `json:"quality,omitempty"`
	Overload *OverloadEntry `json:"overload,omitempty"`
	Hedging  *HedgingEntry  `json:"hedging,omitempty"`
}

// RunServing benchmarks the sharded serving subsystem end to end: it
// builds a sharded HNSW index over a synthetic dataset, serves it through
// internal/server on a loopback port, drives it with concurrent HTTP
// clients for each mode, and writes the JSON result to outPath (progress
// and a summary table go to w). Each mode gets a fresh server so its
// /stats histograms describe that mode's traffic alone.
func RunServing(w io.Writer, outPath string) error {
	const (
		dim     = 64
		shards  = 4
		k       = 10
		budget  = 100
		clients = 8
	)
	n := scaled(16000, 2000)
	nq := scaled(600, 100)
	modes := []resinfer.Mode{resinfer.Exact, resinfer.DDCRes}

	fmt.Fprintf(w, "serving bench: n=%d dim=%d shards=%d clients=%d queries=%d\n",
		n, dim, shards, clients, nq)
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "serving-bench", N: n, Dim: dim, Queries: nq, VE32: 0.65, Seed: 99,
	})
	if err != nil {
		return err
	}
	gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, k, 0)
	if err != nil {
		return err
	}
	sx, err := resinfer.NewSharded(ds.Data, resinfer.HNSW, shards,
		&resinfer.ShardOptions{Index: &resinfer.Options{Seed: 99}})
	if err != nil {
		return err
	}
	for _, m := range modes {
		if err := sx.Enable(m, nil); err != nil {
			return err
		}
	}

	result := ServingResult{
		Dataset: "serving-bench", N: n, Dim: dim, Kind: "hnsw",
		Shards: shards, K: k, Budget: budget, Clients: clients, Queries: nq,
	}
	for _, mode := range modes {
		entry, err := runServingMode(sx, ds.Queries, gt, string(mode), k, budget, clients)
		if err != nil {
			return err
		}
		result.Entries = append(result.Entries, entry)
		fmt.Fprintf(w, "  %-8s  qps=%8.1f  p50=%6.2fms  p99=%6.2fms  batch=%.1f  recall@10=%.4f\n",
			entry.Mode, entry.QPS, entry.P50Ms, entry.P99Ms, entry.AvgBatchSize, entry.RecallAt10)
	}

	// Quality section: replay the approximate mode with every query
	// shadow-sampled and check the server's own recall estimate against
	// the offline measurement of the same traffic.
	last := result.Entries[len(result.Entries)-1]
	qe, err := runQualitySection(sx, ds.Queries, gt, last.Mode, k, budget, clients, last.QPS)
	if err != nil {
		return err
	}
	result.Quality = &qe
	fmt.Fprintf(w, "  quality   live=%.4f  offline=%.4f  (Δ %.2fpts)  measured=%d/%d  overhead=%.1f%%\n",
		qe.LiveRecall, qe.OfflineRecall, qe.AgreementPts, qe.Measured, qe.Sampled+qe.Dropped, qe.OverheadPct)

	// Overload section: offer ~2x the measured exact-mode capacity and
	// record how the admission queue splits it into goodput and 429s.
	if cap := result.Entries[0].QPS; cap > 0 {
		ov, err := runOverloadSection(sx, ds.Queries, k, budget, cap)
		if err != nil {
			return err
		}
		result.Overload = &ov
		fmt.Fprintf(w, "  overload  offered=%8.1f  goodput=%8.1f  shed=%5.1f%%  accepted-p99=%6.2fms\n",
			ov.OfferedQPS, ov.GoodputQPS, 100*ov.ShedRate, ov.AcceptedP99Ms)
	}

	// Hedging section: replay exact-mode traffic with randomly slowed
	// shard probes, plain versus hedged onto a peer replica.
	he, err := runHedgingSection(sx, ds.Queries, gt, k, budget, clients)
	if err != nil {
		return err
	}
	result.Hedging = &he
	fmt.Fprintf(w, "  hedging   p99 %6.2fms -> %6.2fms  (hedge rate %.1f%%, win rate %.1f%%)\n",
		he.UnhedgedP99Ms, he.HedgedP99Ms, 100*he.HedgeRate, 100*he.WinRate)

	raw, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}

// serveLoopback starts srv on an ephemeral loopback port and returns
// the base URL plus a shutdown func that drains the server and reports
// its exit error (ErrServerClosed and Canceled are a clean exit).
func serveLoopback(srv *server.Server) (base string, shutdown func() error, err error) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- srv.Serve(ctx, "127.0.0.1:0", func(addr string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		shutdown = func() error {
			cancel()
			if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, context.Canceled) {
				return err
			}
			return nil
		}
		return "http://" + addr, shutdown, nil
	case err := <-serveErr:
		cancel()
		return "", nil, err
	}
}

// runServingMode serves the index on its own loopback port, drives the
// clients for one mode, scrapes /stats, and shuts the server down.
func runServingMode(sx *resinfer.ShardedIndex, queries [][]float32, gt [][]int, mode string, k, budget, clients int) (ServingEntry, error) {
	srv := server.New(sx, server.Config{DefaultK: k, DefaultBudget: budget})
	base, shutdown, err := serveLoopback(srv)
	if err != nil {
		return ServingEntry{}, err
	}

	entry, err := driveClients(base, queries, gt, mode, k, budget, clients)
	if err != nil {
		_ = shutdown()
		return ServingEntry{}, err
	}

	// The server-side view: request-latency quantiles interpolated from
	// the /stats histogram, plus the micro-batching distributions the
	// clients cannot see.
	stats := srv.Stats()
	entry.P50Ms = stats.LatencyP50Ms
	entry.P99Ms = stats.LatencyP99Ms
	entry.MeanMs = stats.LatencyMeanMs
	entry.AvgBatchSize = stats.AvgBatchSize
	entry.BatchSizeP99 = stats.BatchSizeP99
	entry.QueueDepthP99 = stats.QueueDepthP99

	if err := shutdown(); err != nil {
		return ServingEntry{}, err
	}
	return entry, nil
}

// runQualitySection re-serves the index with shadow sampling at rate 1
// (every query is captured and re-run off-path as an exact scan),
// drives the same traffic, and compares the live estimate from
// /debug/quality against the offline ground-truth recall of the same
// responses. Disagreement past 2 points fails the bench — the live
// estimator would be lying to operators.
func runQualitySection(sx *resinfer.ShardedIndex, queries [][]float32, gt [][]int, mode string, k, budget, clients int, baselineQPS float64) (QualityEntry, error) {
	srv := server.New(sx, server.Config{
		DefaultK: k, DefaultBudget: budget,
		QualitySampleRate: 1, QualityWorkers: 4,
	})
	base, shutdown, err := serveLoopback(srv)
	if err != nil {
		return QualityEntry{}, err
	}

	entry, err := driveClients(base, queries, gt, mode, k, budget, clients)
	if err != nil {
		_ = shutdown()
		return QualityEntry{}, err
	}

	// Drain the shadow workers: every admitted sample must be measured
	// before the estimate is final.
	var snap quality.Snapshot
	deadline := time.Now().Add(30 * time.Second)
	for {
		hr, err := http.Get(base + "/debug/quality")
		if err != nil {
			_ = shutdown()
			return QualityEntry{}, err
		}
		err = json.NewDecoder(hr.Body).Decode(&snap)
		hr.Body.Close()
		if err != nil {
			_ = shutdown()
			return QualityEntry{}, err
		}
		if snap.Sampled+snap.Dropped >= uint64(len(queries)) && snap.Measured >= snap.Sampled {
			break
		}
		if time.Now().After(deadline) {
			_ = shutdown()
			return QualityEntry{}, fmt.Errorf("shadow sampler stuck: measured %d of %d admitted", snap.Measured, snap.Sampled)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := shutdown(); err != nil {
		return QualityEntry{}, err
	}
	if snap.Measured == 0 {
		return QualityEntry{}, fmt.Errorf("shadow sampler measured nothing (%d sampled, %d dropped)", snap.Sampled, snap.Dropped)
	}

	qe := QualityEntry{
		Mode:          mode,
		SampleRate:    snap.SampleRate,
		Sampled:       snap.Sampled,
		Measured:      snap.Measured,
		Dropped:       snap.Dropped,
		LiveRecall:    snap.RecallMean,
		OfflineRecall: entry.RecallAt10,
		AgreementPts:  math.Abs(snap.RecallMean-entry.RecallAt10) * 100,
		BaselineQPS:   baselineQPS,
		SampledQPS:    entry.QPS,
	}
	if baselineQPS > 0 {
		qe.OverheadPct = 100 * (baselineQPS - entry.QPS) / baselineQPS
	}
	if qe.AgreementPts > 2.0 {
		return QualityEntry{}, fmt.Errorf("live recall %.4f disagrees with offline %.4f by %.2f points (limit 2.0)",
			qe.LiveRecall, qe.OfflineRecall, qe.AgreementPts)
	}
	return qe, nil
}

// runHedgingSection measures hedged fan-out against a fault-slowed
// primary. The peer replica is a second server over the same index in
// this process, so the injected shard.search fault (process-global)
// slows its probes with the same probability — the honest setup, since
// real replicas share the same tail behavior. The fault parameters are
// chosen so a slow shard is common per unhedged query (1-(1-p)^shards
// well above 1%, pinning the unhedged p99 at the fault delay) but a
// simultaneous local+hedge slowdown is rare (~shards·p², far below 1%),
// which is exactly the regime where hedging pays.
func runHedgingSection(sx *resinfer.ShardedIndex, queries [][]float32, gt [][]int, k, budget, clients int) (HedgingEntry, error) {
	const (
		faultDelay = 20 * time.Millisecond
		faultP     = 0.02
		hedgeDelay = 2 * time.Millisecond
	)
	fault.Seed(7)
	restore := fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Delay: faultDelay, P: faultP, Arg: fault.AnyArg,
	})
	defer restore()

	// Unhedged run first: same fault, no hedger armed.
	entryU, err := runServingMode(sx, queries, gt, string(resinfer.Exact), k, budget, clients)
	if err != nil {
		return HedgingEntry{}, fmt.Errorf("unhedged run: %w", err)
	}

	// Peer replica: a second loopback server over the identical index,
	// answering /internal/shard/search for the primary's hedges.
	peerSrv := server.New(sx, server.Config{DefaultK: k, DefaultBudget: budget})
	peerBase, peerShutdown, err := serveLoopback(peerSrv)
	if err != nil {
		return HedgingEntry{}, err
	}
	set := replica.NewSet([]string{peerBase}, replica.NewClient(2*time.Second),
		replica.SetOptions{ProbeInterval: 50 * time.Millisecond})
	set.Start()
	h0, w0 := sx.HedgeStats()
	sx.SetShardHedger(replica.Hedger(set), hedgeDelay)

	entryH, err := runServingMode(sx, queries, gt, string(resinfer.Exact), k, budget, clients)
	sx.SetHedgeDelay(0) // disarm before the index serves anything else
	set.Close()
	shutErr := peerShutdown()
	if err != nil {
		return HedgingEntry{}, fmt.Errorf("hedged run: %w", err)
	}
	if shutErr != nil {
		return HedgingEntry{}, fmt.Errorf("peer shutdown: %w", shutErr)
	}
	h1, w1 := sx.HedgeStats()

	he := HedgingEntry{
		FaultDelayMs:  float64(faultDelay.Microseconds()) / 1000.0,
		FaultP:        faultP,
		HedgeDelayMs:  float64(hedgeDelay.Microseconds()) / 1000.0,
		UnhedgedQPS:   entryU.QPS,
		UnhedgedP99Ms: entryU.ClientP99Ms,
		HedgedQPS:     entryH.QPS,
		HedgedP99Ms:   entryH.ClientP99Ms,
		Hedged:        h1 - h0,
		HedgeWins:     w1 - w0,
		RecallAt10:    entryH.RecallAt10,
	}
	if n := len(queries); n > 0 {
		he.HedgeRate = float64(he.Hedged) / float64(n)
	}
	if he.Hedged > 0 {
		he.WinRate = float64(he.HedgeWins) / float64(he.Hedged)
	}
	if he.Hedged == 0 {
		return HedgingEntry{}, fmt.Errorf("no hedges fired (unhedged p99 %.2fms): the fault never slowed a probe past the hedge delay", he.UnhedgedP99Ms)
	}
	if he.HedgedP99Ms >= he.UnhedgedP99Ms {
		return HedgingEntry{}, fmt.Errorf("hedging did not improve the tail: p99 %.2fms unhedged vs %.2fms hedged",
			he.UnhedgedP99Ms, he.HedgedP99Ms)
	}
	if he.RecallAt10 < entryU.RecallAt10-0.01 {
		return HedgingEntry{}, fmt.Errorf("hedged recall dipped: %.4f vs %.4f unhedged", he.RecallAt10, entryU.RecallAt10)
	}
	return he, nil
}

// runOverloadSection offers the server roughly 2x capacity QPS from an
// open-loop dispatcher (requests fire on schedule whether or not earlier
// ones finished — the load a real overloaded frontend applies) behind a
// small admission queue, and splits the outcome into served / shed /
// failed with the latency of the accepted requests.
func runOverloadSection(sx *resinfer.ShardedIndex, queries [][]float32, k, budget int, capacity float64) (OverloadEntry, error) {
	const maxQueue = 32
	srv := server.New(sx, server.Config{
		DefaultK: k, DefaultBudget: budget, MaxQueueDepth: maxQueue,
	})
	base, shutdown, err := serveLoopback(srv)
	if err != nil {
		return OverloadEntry{}, err
	}

	type req struct {
		Query  []float32 `json:"query"`
		K      int       `json:"k"`
		Mode   string    `json:"mode"`
		Budget int       `json:"budget"`
	}
	offered := 2 * capacity
	total := 4 * len(queries)

	// A dedicated transport: the dial burst of an open-loop client leaves
	// pre-dialed connections that never carry a request; server-side those
	// sit in StateNew, which Shutdown will not reap. Closing the client's
	// idle pool before shutdown releases them.
	tr := &http.Transport{MaxIdleConnsPerHost: 64}
	client := &http.Client{Transport: tr}

	var served, shed, failed int64
	var mu sync.Mutex
	var accepted []time.Duration
	var wg sync.WaitGroup
	fire := func(q []float32) {
		defer wg.Done()
		raw, err := json.Marshal(req{Query: q, K: k, Mode: string(resinfer.Exact), Budget: budget})
		if err != nil {
			atomic.AddInt64(&failed, 1)
			return
		}
		t0 := time.Now()
		hr, err := client.Post(base+"/search", "application/json", bytes.NewReader(raw))
		if err != nil {
			atomic.AddInt64(&failed, 1)
			return
		}
		d := time.Since(t0)
		_, _ = io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
		switch hr.StatusCode {
		case http.StatusOK:
			atomic.AddInt64(&served, 1)
			mu.Lock()
			accepted = append(accepted, d)
			mu.Unlock()
		case http.StatusTooManyRequests:
			atomic.AddInt64(&shed, 1)
		default:
			atomic.AddInt64(&failed, 1)
		}
	}

	// Open-loop dispatcher: every millisecond, fire however many requests
	// the offered rate says are due. A per-request ticker cannot hold
	// multi-kQPS schedules; a due-count can.
	start := time.Now()
	fired := 0
	for fired < total {
		due := int(time.Since(start).Seconds() * offered)
		if due > total {
			due = total
		}
		for ; fired < due; fired++ {
			wg.Add(1)
			go fire(queries[fired%len(queries)])
		}
		time.Sleep(time.Millisecond)
	}
	dispatchSecs := time.Since(start).Seconds()
	wg.Wait()
	elapsed := time.Since(start)
	tr.CloseIdleConnections()
	if err := shutdown(); err != nil {
		return OverloadEntry{}, fmt.Errorf("overload shutdown: %w", err)
	}

	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	p99 := 0.0
	if len(accepted) > 0 {
		i := int(0.99 * float64(len(accepted)))
		if i >= len(accepted) {
			i = len(accepted) - 1
		}
		p99 = float64(accepted[i].Microseconds()) / 1000.0
	}
	return OverloadEntry{
		OfferedQPS:    float64(total) / dispatchSecs,
		GoodputQPS:    float64(served) / elapsed.Seconds(),
		ShedRate:      float64(shed) / float64(total),
		AcceptedP99Ms: p99,
		Served:        int(served),
		Shed:          int(shed),
		Failed:        int(failed),
		MaxQueueDepth: maxQueue,
	}, nil
}

// driveClients fans queries across concurrent HTTP clients against the
// /search endpoint and aggregates client-observed latency and recall.
func driveClients(base string, queries [][]float32, gt [][]int, mode string, k, budget, clients int) (ServingEntry, error) {
	type req struct {
		Query  []float32 `json:"query"`
		K      int       `json:"k"`
		Mode   string    `json:"mode"`
		Budget int       `json:"budget"`
	}
	type resp struct {
		Neighbors []struct {
			ID int `json:"id"`
		} `json:"neighbors"`
		Error string `json:"error"`
	}

	results := make([][]int, len(queries))
	latencies := make([]time.Duration, len(queries))
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for qi := c; qi < len(queries); qi += clients {
				raw, err := json.Marshal(req{Query: queries[qi], K: k, Mode: mode, Budget: budget})
				if err != nil {
					errs[c] = err
					return
				}
				t0 := time.Now()
				hr, err := http.Post(base+"/search", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs[c] = err
					return
				}
				var out resp
				err = json.NewDecoder(hr.Body).Decode(&out)
				hr.Body.Close()
				latencies[qi] = time.Since(t0)
				if err != nil {
					errs[c] = err
					return
				}
				if hr.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("query %d: status %d: %s", qi, hr.StatusCode, out.Error)
					return
				}
				ids := make([]int, len(out.Neighbors))
				for i, nb := range out.Neighbors {
					ids[i] = nb.ID
				}
				results[qi] = ids
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServingEntry{}, err
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quant := func(p float64) float64 {
		i := int(p * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return float64(latencies[i].Microseconds()) / 1000.0
	}
	return ServingEntry{
		Mode:        mode,
		QPS:         float64(len(queries)) / elapsed.Seconds(),
		ClientP50Ms: quant(0.50),
		ClientP99Ms: quant(0.99),
		RecallAt10:  dataset.Recall(results, gt, k),
	}, nil
}
