package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resinfer"
	"resinfer/internal/dataset"
)

// StreamingCheckpoint is one mid-ingest recall measurement: after
// `inserted` vectors have been ingested (and with ingestion paused for
// the measurement), the index's recall@10 against an exact scan over the
// corpus as it stands at that instant.
type StreamingCheckpoint struct {
	Inserted   int     `json:"inserted"`
	RecallAt10 float64 `json:"recall_at_10"`
}

// WALIngestResult measures the durability tax of one WAL sync policy:
// an ingest-only workload identical to the no-WAL baseline, with every
// mutation logged at that policy before it is applied.
type WALIngestResult struct {
	Policy          string  `json:"policy"`
	NInsert         int     `json:"n_insert"`
	IngestPerSec    float64 `json:"ingest_per_sec"`
	RelativeToNoWAL float64 `json:"relative_to_no_wal"`
}

// StreamingResult is the machine-readable document cmd/bench writes to
// BENCH_streaming.json: ingest throughput, the search QPS and latency
// observed by concurrent clients while ingestion runs, recall@10 during
// and after ingest, the compaction/hot-swap counters, and the WAL
// durability tax per sync policy.
type StreamingResult struct {
	Dataset          string  `json:"dataset"`
	NBase            int     `json:"n_base"`
	NInsert          int     `json:"n_insert"`
	Dim              int     `json:"dim"`
	Kind             string  `json:"kind"`
	Shards           int     `json:"shards"`
	Mode             string  `json:"mode"`
	K                int     `json:"k"`
	Budget           int     `json:"budget"`
	SearchClients    int     `json:"search_clients"`
	Ingesters        int     `json:"ingesters"`
	DriftSigma       float64 `json:"drift_sigma"`
	CompactThreshold int     `json:"compact_threshold"`

	IngestPerSec          float64               `json:"ingest_per_sec"`
	SearchQPSDuringIngest float64               `json:"search_qps_during_ingest"`
	SearchP50Ms           float64               `json:"search_p50_ms"`
	SearchP99Ms           float64               `json:"search_p99_ms"`
	Checkpoints           []StreamingCheckpoint `json:"checkpoints"`
	RecallFinal           float64               `json:"recall_final"`
	Compactions           int64                 `json:"compactions"`
	MaxSwapMicros         int64                 `json:"max_swap_micros"`
	LastBuildMillis       int64                 `json:"last_build_millis"`
	MemtableRowsAtEnd     int                   `json:"memtable_rows_at_end"`
	IngestNoWALPerSec     float64               `json:"ingest_no_wal_per_sec"`
	WALIngest             []WALIngestResult     `json:"wal_ingest"`
}

// RunStreaming benchmarks the streaming ingestion subsystem end to end:
// a mutable sharded HNSW index (DDCres enabled, so compactions retrain
// the comparator) is seeded with the first half of a drifting synthetic
// dataset, then concurrent ingesters upsert the second — progressively
// out-of-distribution — half while concurrent search clients hammer the
// index. Ingestion pauses at checkpoints to measure exact recall@10
// against the corpus as it stands; after ingest a forced compaction
// folds the tail in and final recall is measured over the full corpus.
// The JSON result goes to outPath; progress and a summary go to w.
func RunStreaming(w io.Writer, outPath string) error {
	const (
		dim     = 64
		shards  = 4
		k       = 10
		budget  = 100
		clients = 4
		ingestW = 2
		drift   = 1.2
		mode    = resinfer.DDCRes
	)
	nBase := scaled(10000, 1200)
	nIns := scaled(10000, 1200)
	nq := scaled(300, 60)
	threshold := scaled(512, 64)

	fmt.Fprintf(w, "streaming bench: base=%d insert=%d dim=%d shards=%d drift=%.1fσ threshold=%d\n",
		nBase, nIns, dim, shards, drift, threshold)
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "streaming-bench", N: nBase + nIns, Dim: dim, Queries: nq,
		VE32: 0.65, Drift: drift, Seed: 1234,
	})
	if err != nil {
		return err
	}

	buildStart := time.Now()
	mx, err := resinfer.NewMutable(ds.Data[:nBase], resinfer.HNSW, shards,
		&resinfer.MutableOptions{
			CompactThreshold: threshold,
			Index:            &resinfer.Options{Seed: 1234},
		})
	if err != nil {
		return err
	}
	defer mx.Close()
	if err := mx.Enable(mode, nil); err != nil {
		return err
	}
	fmt.Fprintf(w, "  built %d-shard hnsw base (%s enabled) in %.1fs\n",
		shards, mode, time.Since(buildStart).Seconds())

	// Search clients run for the whole ingest phase; per-chunk deltas of
	// the query counter give QPS over the windows where ingestion is
	// actually running (checkpoint pauses excluded).
	var queriesDone atomic.Int64
	var latMu sync.Mutex
	var latencies []time.Duration
	stop := make(chan struct{})
	searchErr := make(chan error, clients)
	var swg sync.WaitGroup
	for c := 0; c < clients; c++ {
		swg.Add(1)
		go func(c int) {
			defer swg.Done()
			var dst []resinfer.Neighbor
			local := make([]time.Duration, 0, 4096)
			defer func() {
				latMu.Lock()
				latencies = append(latencies, local...)
				latMu.Unlock()
			}()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := ds.Queries[i%len(ds.Queries)]
				t0 := time.Now()
				var err error
				dst, _, err = mx.SearchInto(dst[:0], q, k, mode, budget)
				if err != nil {
					searchErr <- err
					return
				}
				local = append(local, time.Since(t0))
				queriesDone.Add(1)
			}
		}(c)
	}

	// Ingest in chunks; between chunks (ingestion quiescent) measure
	// exact recall against the corpus as it stands.
	const chunks = 4
	var ingestDur time.Duration
	var ingestQueries int64
	var checkpoints []StreamingCheckpoint
	recallAt := func(cur int) (float64, error) {
		gt, err := dataset.BruteForceKNN(ds.Data[:cur], ds.Queries, k, 0)
		if err != nil {
			return 0, err
		}
		results := make([][]int, len(ds.Queries))
		for qi, q := range ds.Queries {
			ns, err := mx.Search(q, k, mode, budget)
			if err != nil {
				return 0, err
			}
			ids := make([]int, len(ns))
			for i, n := range ns {
				ids[i] = n.ID
			}
			results[qi] = ids
		}
		return dataset.Recall(results, gt, k), nil
	}
	for c := 0; c < chunks; c++ {
		lo := nBase + c*nIns/chunks
		hi := nBase + (c+1)*nIns/chunks
		qBefore := queriesDone.Load()
		t0 := time.Now()
		var iwg sync.WaitGroup
		ingErr := make(chan error, ingestW)
		for wkr := 0; wkr < ingestW; wkr++ {
			iwg.Add(1)
			go func(wkr int) {
				defer iwg.Done()
				for i := lo + wkr; i < hi; i += ingestW {
					// Upsert with the row index as explicit ID keeps global
					// IDs aligned with ground-truth row numbers.
					if _, err := mx.Upsert(i, ds.Data[i]); err != nil {
						ingErr <- err
						return
					}
				}
			}(wkr)
		}
		iwg.Wait()
		select {
		case err := <-ingErr:
			close(stop)
			swg.Wait()
			return err
		default:
		}
		ingestDur += time.Since(t0)
		ingestQueries += queriesDone.Load() - qBefore

		rec, err := recallAt(hi)
		if err != nil {
			close(stop)
			swg.Wait()
			return err
		}
		checkpoints = append(checkpoints, StreamingCheckpoint{Inserted: hi - nBase, RecallAt10: rec})
		st := mx.MutationStats()
		fmt.Fprintf(w, "  ingested %5d/%d  recall@10=%.4f  compactions=%d  memtable=%d\n",
			hi-nBase, nIns, rec, st.Compactions, st.MemtableRows)
	}
	close(stop)
	swg.Wait()
	select {
	case err := <-searchErr:
		return fmt.Errorf("search failed during ingest: %w", err)
	default:
	}

	memAtEnd := mx.MutationStats().MemtableRows
	// Fold the tail in (the OOD-retrain catch-up) and measure final recall
	// over the full corpus.
	if _, err := mx.Compact(); err != nil {
		return err
	}
	recallFinal, err := recallAt(nBase + nIns)
	if err != nil {
		return err
	}
	st := mx.MutationStats()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quant := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return float64(latencies[i].Microseconds()) / 1000.0
	}

	// Durability tax: the same ingest-only workload against a fresh
	// index, first without a WAL, then once per sync policy. Flat shards
	// and no auto-compaction isolate the append path — base kind and
	// rebuild cadence do not change what a WAL append costs.
	fmt.Fprintf(w, "  wal durability tax (ingest-only):\n")
	noWAL, walResults, err := walIngestTax(ds, shards)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "    %-14s %9.0f vec/s  (baseline)\n", "no-wal", noWAL)
	for _, r := range walResults {
		fmt.Fprintf(w, "    %-14s %9.0f vec/s  (%.2fx of baseline, n=%d)\n",
			r.Policy, r.IngestPerSec, r.RelativeToNoWAL, r.NInsert)
	}

	result := StreamingResult{
		Dataset: "streaming-bench", NBase: nBase, NInsert: nIns, Dim: dim,
		Kind: "hnsw", Shards: shards, Mode: string(mode), K: k, Budget: budget,
		SearchClients: clients, Ingesters: ingestW,
		DriftSigma: drift, CompactThreshold: threshold,
		IngestPerSec:          float64(nIns) / ingestDur.Seconds(),
		SearchQPSDuringIngest: float64(ingestQueries) / ingestDur.Seconds(),
		SearchP50Ms:           quant(0.50),
		SearchP99Ms:           quant(0.99),
		Checkpoints:           checkpoints,
		RecallFinal:           recallFinal,
		Compactions:           st.Compactions,
		MaxSwapMicros:         st.MaxSwapMicros,
		LastBuildMillis:       st.LastBuildMillis,
		MemtableRowsAtEnd:     memAtEnd,
		IngestNoWALPerSec:     noWAL,
		WALIngest:             walResults,
	}
	raw, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  ingest=%8.0f vec/s  search=%8.1f qps (p50=%.2fms p99=%.2fms)\n",
		result.IngestPerSec, result.SearchQPSDuringIngest, result.SearchP50Ms, result.SearchP99Ms)
	fmt.Fprintf(w, "  recall@10 final=%.4f  compactions=%d  max swap=%dµs\n",
		result.RecallFinal, result.Compactions, result.MaxSwapMicros)
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}

// walIngestTax measures single-writer ingest throughput over a fresh
// flat-sharded mutable index without a WAL (the baseline) and then with
// one at each sync policy. SyncAlways pays one fsync per acknowledged
// mutation, so it runs a smaller row count — throughput is normalized
// either way.
func walIngestTax(ds *dataset.Dataset, shards int) (noWAL float64, results []WALIngestResult, err error) {
	nBase := scaled(2000, 200)
	rows := scaled(3000, 300)
	alwaysRows := scaled(300, 50)
	if nBase > len(ds.Data) {
		nBase = len(ds.Data)
	}

	measure := func(dir string, sync resinfer.WALSync, n int) (float64, error) {
		mopts := &resinfer.MutableOptions{
			DisableAutoCompact: true,
			Index:              &resinfer.Options{Seed: 7},
			WALDir:             dir,
			WALSync:            sync,
		}
		mx, err := resinfer.NewMutable(ds.Data[:nBase], resinfer.Flat, shards, mopts)
		if err != nil {
			return 0, err
		}
		defer mx.Close()
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if _, err := mx.Add(ds.Data[nBase+i%(len(ds.Data)-nBase)]); err != nil {
				return 0, err
			}
		}
		return float64(n) / time.Since(t0).Seconds(), nil
	}

	noWAL, err = measure("", resinfer.WALSyncAlways(), rows)
	if err != nil {
		return 0, nil, err
	}
	policies := []struct {
		name string
		sync resinfer.WALSync
		rows int
	}{
		{"sync-none", resinfer.WALSyncNone(), rows},
		{"sync-interval", resinfer.WALSyncInterval(100 * time.Millisecond), rows},
		{"sync-always", resinfer.WALSyncAlways(), alwaysRows},
	}
	for _, p := range policies {
		dir, err := os.MkdirTemp("", "resinfer-walbench-*")
		if err != nil {
			return 0, nil, err
		}
		rate, err := measure(dir, p.sync, p.rows)
		os.RemoveAll(dir)
		if err != nil {
			return 0, nil, fmt.Errorf("wal ingest (%s): %w", p.name, err)
		}
		results = append(results, WALIngestResult{
			Policy:          p.name,
			NInsert:         p.rows,
			IngestPerSec:    rate,
			RelativeToNoWAL: rate / noWAL,
		})
	}
	return noWAL, results, nil
}
