package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"resinfer/internal/core"
	"resinfer/internal/dataset"
	"resinfer/internal/hnsw"
	"resinfer/internal/ivf"
)

// Point is one measurement on a time–accuracy curve: the swept parameter
// (ef for HNSW, nprobe for IVF), the achieved recall@K, queries per
// second, and the aggregated DCO work counters.
type Point struct {
	Param  int
	Recall float64
	QPS    float64
	Stats  core.Stats
}

// SweepHNSW measures the QPS–recall curve of the graph index under dco for
// each beam width in efs.
func SweepHNSW(idx *hnsw.Index, dco core.DCO, queries [][]float32, gt [][]int, k int, efs []int) ([]Point, error) {
	points := make([]Point, 0, len(efs))
	for _, ef := range efs {
		results := make([][]int, len(queries))
		var agg core.Stats
		start := time.Now()
		for qi, q := range queries {
			items, st, err := idx.Search(dco, q, k, ef)
			if err != nil {
				return nil, err
			}
			agg.Add(st)
			ids := make([]int, len(items))
			for i, it := range items {
				ids[i] = it.ID
			}
			results[qi] = ids
		}
		elapsed := time.Since(start)
		points = append(points, Point{
			Param:  ef,
			Recall: dataset.Recall(results, gt, k),
			QPS:    float64(len(queries)) / elapsed.Seconds(),
			Stats:  agg,
		})
	}
	return points, nil
}

// SweepIVF measures the QPS–recall curve of the inverted-file index under
// dco for each probe count in nprobes.
func SweepIVF(idx *ivf.Index, dco core.DCO, queries [][]float32, gt [][]int, k int, nprobes []int) ([]Point, error) {
	points := make([]Point, 0, len(nprobes))
	for _, np := range nprobes {
		results := make([][]int, len(queries))
		var agg core.Stats
		start := time.Now()
		for qi, q := range queries {
			items, st, err := idx.Search(dco, q, k, np)
			if err != nil {
				return nil, err
			}
			agg.Add(st)
			ids := make([]int, len(items))
			for i, it := range items {
				ids[i] = it.ID
			}
			results[qi] = ids
		}
		elapsed := time.Since(start)
		points = append(points, Point{
			Param:  np,
			Recall: dataset.Recall(results, gt, k),
			QPS:    float64(len(queries)) / elapsed.Seconds(),
			Stats:  agg,
		})
	}
	return points, nil
}

// Curve is a labeled series of points (one line in a paper figure).
type Curve struct {
	Label  string
	Points []Point
}

// RenderCurves prints curves as an aligned text table: one block per
// curve, one row per swept parameter.
func RenderCurves(w io.Writer, title, paramName string, dim int, curves []Curve) {
	fmt.Fprintf(w, "== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "method\t%s\trecall\tQPS\tscan-rate\tpruned-rate\n", paramName)
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.0f\t%.3f\t%.3f\n",
				c.Label, p.Param, p.Recall, p.QPS,
				p.Stats.ScanRate(dim), p.Stats.PrunedRate())
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// QPSAtRecall interpolates a curve's QPS at a target recall, the paper's
// standard way of comparing methods ("2x speedup at 0.95 recall"). It
// returns 0 when the curve never reaches the target.
func QPSAtRecall(points []Point, target float64) float64 {
	best := 0.0
	for _, p := range points {
		if p.Recall >= target && p.QPS > best {
			best = p.QPS
		}
	}
	return best
}
