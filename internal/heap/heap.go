// Package heap provides the two priority queues AKNN search needs: a
// bounded max-heap result queue Q whose worst distance is the pruning
// threshold tau consumed by every DCO, and an unbounded min-heap candidate
// queue used by graph traversal. Both are specialized to (id, dist) pairs
// and avoid interface boxing on the hot path.
package heap

import "math"

// Item is an (id, distance) pair.
type Item struct {
	ID   int
	Dist float32
}

// ResultQueue is the bounded max-heap over candidate distances described in
// §I of the paper: it keeps the K closest items seen so far and exposes the
// current K-th distance as the pruning threshold tau.
type ResultQueue struct {
	k     int
	items []Item // max-heap on Dist
}

// NewResultQueue returns a result queue retaining the k closest items.
// k must be positive.
func NewResultQueue(k int) *ResultQueue {
	if k <= 0 {
		k = 1
	}
	return &ResultQueue{k: k, items: make([]Item, 0, k)}
}

// Len returns the number of stored items.
func (q *ResultQueue) Len() int { return len(q.items) }

// Full reports whether the queue holds k items.
func (q *ResultQueue) Full() bool { return len(q.items) >= q.k }

// Threshold returns tau: the largest stored distance once the queue is
// full, or +Inf while it is filling. Any candidate with distance > tau can
// never enter the queue.
func (q *ResultQueue) Threshold() float32 {
	if !q.Full() {
		return float32(math.Inf(1))
	}
	return q.items[0].Dist
}

// Push offers (id, dist) to the queue. It reports whether the item was
// admitted. The backing array is allocated once at NewResultQueue and
// only ever re-sliced here, so steady-state pushes are allocation-free.
//
//resinfer:noalloc
func (q *ResultQueue) Push(id int, dist float32) bool {
	if len(q.items) < q.k {
		q.items = append(q.items, Item{ID: id, Dist: dist})
		q.siftUp(len(q.items) - 1)
		return true
	}
	if dist >= q.items[0].Dist {
		return false
	}
	q.items[0] = Item{ID: id, Dist: dist}
	q.siftDown(0)
	return true
}

// PopMax removes and returns the current worst (largest-distance) item.
// ok is false when the queue is empty.
//
//resinfer:noalloc
func (q *ResultQueue) PopMax() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return top, true
}

// Items returns a copy of the stored items in unspecified order.
func (q *ResultQueue) Items() []Item {
	out := make([]Item, len(q.items))
	copy(out, q.items)
	return out
}

// Sorted drains the queue and returns its contents ordered by ascending
// distance (the final AKNN answer). The queue is empty afterwards.
func (q *ResultQueue) Sorted() []Item {
	return q.AppendSorted(make([]Item, 0, len(q.items)))
}

// AppendSorted drains the queue, appending its contents to dst in
// ascending distance order, and returns the extended slice. The queue is
// empty afterwards. With a dst of sufficient capacity this is the
// allocation-free variant of Sorted.
func (q *ResultQueue) AppendSorted(dst []Item) []Item {
	start := len(dst)
	n := len(q.items)
	dst = append(dst, q.items[:n]...) // grow by n; values overwritten below
	for i := n - 1; i >= 0; i-- {
		item, _ := q.PopMax()
		dst[start+i] = item
	}
	return dst
}

// Reset re-bounds the queue to keep the k closest items and empties it,
// retaining the backing storage so pooled searches allocate nothing.
func (q *ResultQueue) Reset(k int) {
	if k <= 0 {
		k = 1
	}
	q.k = k
	if cap(q.items) < k {
		q.items = make([]Item, 0, k)
	} else {
		q.items = q.items[:0]
	}
}

func (q *ResultQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].Dist >= q.items[i].Dist {
			return
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

func (q *ResultQueue) siftDown(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && q.items[l].Dist > q.items[largest].Dist {
			largest = l
		}
		if r < n && q.items[r].Dist > q.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		q.items[i], q.items[largest] = q.items[largest], q.items[i]
		i = largest
	}
}

// MinQueue is an unbounded min-heap of (id, dist) pairs: the candidate
// frontier of greedy graph search, always expanding the closest unvisited
// node first.
type MinQueue struct {
	items []Item
}

// NewMinQueue returns an empty candidate queue with the given capacity hint.
func NewMinQueue(capHint int) *MinQueue {
	if capHint < 0 {
		capHint = 0
	}
	return &MinQueue{items: make([]Item, 0, capHint)}
}

// Len returns the number of stored items.
func (q *MinQueue) Len() int { return len(q.items) }

// Push inserts (id, dist).
func (q *MinQueue) Push(id int, dist float32) {
	q.items = append(q.items, Item{ID: id, Dist: dist})
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].Dist <= q.items[i].Dist {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// PopMin removes and returns the closest item. ok is false when empty.
func (q *MinQueue) PopMin() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].Dist < q.items[smallest].Dist {
			smallest = l
		}
		if r < n && q.items[r].Dist < q.items[smallest].Dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top, true
}

// PeekMin returns the closest item without removing it.
func (q *MinQueue) PeekMin() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	return q.items[0], true
}

// Reset empties the queue, retaining capacity.
func (q *MinQueue) Reset() { q.items = q.items[:0] }
