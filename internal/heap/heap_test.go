package heap

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestResultQueueThresholdWhileFilling(t *testing.T) {
	q := NewResultQueue(3)
	if !math.IsInf(float64(q.Threshold()), 1) {
		t.Fatal("threshold must be +Inf while filling")
	}
	q.Push(1, 5)
	q.Push(2, 3)
	if q.Full() {
		t.Fatal("queue should not be full with 2/3 items")
	}
	q.Push(3, 8)
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Threshold() != 8 {
		t.Fatalf("threshold = %v, want 8", q.Threshold())
	}
}

func TestResultQueueRejectsWorse(t *testing.T) {
	q := NewResultQueue(2)
	q.Push(1, 1)
	q.Push(2, 2)
	if q.Push(3, 3) {
		t.Fatal("must reject dist worse than threshold")
	}
	if !q.Push(4, 0.5) {
		t.Fatal("must accept better dist")
	}
	if q.Threshold() != 1 {
		t.Fatalf("threshold = %v, want 1", q.Threshold())
	}
}

func TestResultQueueSortedAscending(t *testing.T) {
	q := NewResultQueue(5)
	dists := []float32{9, 2, 7, 4, 1, 8, 3}
	for i, d := range dists {
		q.Push(i, d)
	}
	got := q.Sorted()
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	want := []float32{1, 2, 3, 4, 7}
	for i := range got {
		if got[i].Dist != want[i] {
			t.Fatalf("Sorted[%d] = %v, want %v", i, got[i].Dist, want[i])
		}
	}
	if q.Len() != 0 {
		t.Fatal("Sorted must drain the queue")
	}
}

func TestResultQueueKOne(t *testing.T) {
	q := NewResultQueue(1)
	q.Push(1, 10)
	q.Push(2, 5)
	q.Push(3, 20)
	got := q.Sorted()
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("got %+v, want id 2", got)
	}
}

func TestResultQueueZeroKClamped(t *testing.T) {
	q := NewResultQueue(0)
	q.Push(7, 1)
	if q.Len() != 1 {
		t.Fatal("k<=0 should clamp to 1")
	}
}

// Property: ResultQueue(k) over any stream returns exactly the k smallest
// distances (matching a sort-based oracle).
func TestResultQueueMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		k := 1 + r.Intn(20)
		dists := make([]float32, n)
		q := NewResultQueue(k)
		for i := range dists {
			dists[i] = float32(r.Float64() * 100)
			q.Push(i, dists[i])
		}
		got := q.Sorted()
		sorted := append([]float32(nil), dists...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Dist != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPopMaxEmpty(t *testing.T) {
	q := NewResultQueue(2)
	if _, ok := q.PopMax(); ok {
		t.Fatal("PopMax on empty must report !ok")
	}
}

func TestItemsIsCopy(t *testing.T) {
	q := NewResultQueue(2)
	q.Push(1, 1)
	items := q.Items()
	items[0].Dist = 999
	if q.Threshold() == 999 {
		t.Fatal("Items must return a copy")
	}
}

func TestMinQueueOrder(t *testing.T) {
	q := NewMinQueue(0)
	for _, d := range []float32{5, 1, 4, 2, 3} {
		q.Push(int(d), d)
	}
	prev := float32(-1)
	for q.Len() > 0 {
		it, ok := q.PopMin()
		if !ok {
			t.Fatal("unexpected empty")
		}
		if it.Dist < prev {
			t.Fatalf("PopMin out of order: %v after %v", it.Dist, prev)
		}
		prev = it.Dist
	}
	if _, ok := q.PopMin(); ok {
		t.Fatal("PopMin on empty must report !ok")
	}
}

// Property: MinQueue pops in non-decreasing order for any input stream.
func TestMinQueueSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewMinQueue(-1)
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			q.Push(i, float32(r.NormFloat64()))
		}
		prev := float32(math.Inf(-1))
		for q.Len() > 0 {
			it, _ := q.PopMin()
			if it.Dist < prev {
				return false
			}
			prev = it.Dist
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinQueuePeekAndReset(t *testing.T) {
	q := NewMinQueue(4)
	if _, ok := q.PeekMin(); ok {
		t.Fatal("PeekMin on empty must report !ok")
	}
	q.Push(1, 2)
	q.Push(2, 1)
	it, ok := q.PeekMin()
	if !ok || it.ID != 2 {
		t.Fatalf("PeekMin = %+v", it)
	}
	if q.Len() != 2 {
		t.Fatal("Peek must not remove")
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset must empty the queue")
	}
}

func BenchmarkResultQueuePush(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	dists := make([]float32, 4096)
	for i := range dists {
		dists[i] = r.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewResultQueue(100)
		for j, d := range dists {
			q.Push(j, d)
		}
	}
}
