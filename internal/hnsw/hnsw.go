// Package hnsw implements the Hierarchical Navigable Small World graph
// index (Malkov & Yashunin, TPAMI 2020) — the graph-based AKNN substrate
// of the paper's evaluation. Construction uses exact distances; search
// takes any core.DCO, so the same graph serves HNSW (exact), HNSW++
// (ADSampling) and the HNSW-DDC* variants by swapping the comparator.
package hnsw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"resinfer/internal/core"
	"resinfer/internal/heap"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// Config controls graph construction.
type Config struct {
	// M is the number of bidirectional links per node on upper layers
	// (layer 0 allows 2M); default 16, matching the paper's setting.
	M int
	// EfConstruction is the beam width during insertion; default 200.
	// The paper uses 500; the harness overrides per experiment.
	EfConstruction int
	Seed           int64
	// Workers parallelizes insertion; default GOMAXPROCS.
	Workers int
}

// Index is a built HNSW graph over a fixed dataset. Search is safe for
// concurrent use; the graph is immutable after Build.
type Index struct {
	dim      int
	m        int
	mMax0    int
	efCon    int
	entry    int32
	maxLevel int
	// links[node][level] holds the node's neighbors at that level;
	// len(links[node]) == levels(node)+1.
	links [][][]int32
	data  *store.Matrix
	// ctxPool recycles per-search scratch (epoch-stamped visited marks and
	// both traversal queues) so steady-state searches allocate nothing.
	ctxPool sync.Pool
}

// searchCtx is the per-search scratch recycled by ctxPool. The visited
// array is epoch-stamped: marking is visited[i] = epoch, so consecutive
// searches skip the O(n) clear.
type searchCtx struct {
	visited []uint32
	epoch   uint32
	cands   *heap.MinQueue
	w       *heap.ResultQueue
}

func newIndex(dim, m, mMax0, efCon int, entry int32, maxLevel int, links [][][]int32, data *store.Matrix) *Index {
	idx := &Index{
		dim: dim, m: m, mMax0: mMax0, efCon: efCon,
		entry: entry, maxLevel: maxLevel, links: links, data: data,
	}
	n := data.Rows()
	idx.ctxPool.New = func() any {
		return &searchCtx{
			visited: make([]uint32, n),
			cands:   heap.NewMinQueue(64),
			w:       heap.NewResultQueue(16),
		}
	}
	return idx
}

// Build constructs the graph over the rows of data using exact distances.
func Build(data *store.Matrix, cfg Config) (*Index, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("hnsw: empty data")
	}
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.EfConstruction <= 0 {
		cfg.EfConstruction = 200
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = cfg.M
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	n := data.Rows()
	idx := newIndex(data.Dim(), cfg.M, 2*cfg.M, cfg.EfConstruction, 0, 0, make([][][]int32, n), data)
	mult := 1 / math.Log(float64(cfg.M))
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Pre-draw levels so parallel insertion stays deterministic in
	// structure-independent state.
	levels := make([]int, n)
	for i := range levels {
		levels[i] = int(math.Floor(-math.Log(1-rng.Float64()) * mult))
	}
	idx.links[0] = make([][]int32, levels[0]+1)
	idx.maxLevel = levels[0]

	var mu sync.RWMutex
	var wg sync.WaitGroup
	next := make(chan int, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				idx.insert(i, levels[i], &mu)
			}
		}()
	}
	for i := 1; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return idx, nil
}

// insert wires node i with the given level into the graph. Reads take the
// RLock; the final wiring takes the write lock.
func (idx *Index) insert(i, level int, mu *sync.RWMutex) {
	q := idx.data.Row(i)
	nodeLinks := make([][]int32, level+1)

	mu.RLock()
	ep := idx.entry
	maxL := idx.maxLevel
	// Greedy descent on the layers above the node's level.
	curDist := vec.L2Sq(q, idx.data.Row(int(ep)))
	for l := maxL; l > level; l-- {
		ep, curDist = idx.greedyStep(q, ep, curDist, l)
	}
	// Beam search per layer from min(level, maxL) down to 0, collecting
	// neighbor candidates.
	type layerResult struct {
		level int
		cands []heap.Item
	}
	var results []layerResult
	for l := min(level, maxL); l >= 0; l-- {
		w := idx.searchLayerExact(q, ep, curDist, l, idx.efCon, i)
		if len(w) > 0 {
			ep, curDist = int32(w[0].ID), w[0].Dist
		}
		results = append(results, layerResult{l, w})
	}
	mu.RUnlock()

	mu.Lock()
	defer mu.Unlock()
	for _, lr := range results {
		maxConn := idx.m
		if lr.level == 0 {
			maxConn = idx.mMax0
		}
		selected := idx.selectNeighbors(q, lr.cands, idx.m)
		neigh := make([]int32, 0, len(selected))
		for _, s := range selected {
			neigh = append(neigh, int32(s.ID))
		}
		nodeLinks[lr.level] = neigh
		// Bidirectional wiring with shrink on overflow.
		for _, s := range selected {
			nb := int32(s.ID)
			if len(idx.links[nb]) <= lr.level {
				continue // neighbor was wired below this level concurrently
			}
			lst := append(idx.links[nb][lr.level], int32(i))
			if len(lst) > maxConn {
				lst = idx.shrink(nb, lst, maxConn)
			}
			idx.links[nb][lr.level] = lst
		}
	}
	idx.links[i] = nodeLinks
	if level > idx.maxLevel {
		idx.maxLevel = level
		idx.entry = int32(i)
	}
}

// greedyStep walks to the closest neighbor of ep at layer l until no
// improvement. Caller must hold at least the read lock.
func (idx *Index) greedyStep(q []float32, ep int32, curDist float32, l int) (int32, float32) {
	for {
		improved := false
		if int(ep) < len(idx.links) && idx.links[ep] != nil && l < len(idx.links[ep]) {
			for _, nb := range idx.links[ep][l] {
				d := vec.L2Sq(q, idx.data.Row(int(nb)))
				if d < curDist {
					curDist = d
					ep = nb
					improved = true
				}
			}
		}
		if !improved {
			return ep, curDist
		}
	}
}

// searchLayerExact is the construction-time beam search with exact
// distances; skip excludes the node being inserted. Returns candidates in
// ascending distance order.
func (idx *Index) searchLayerExact(q []float32, ep int32, epDist float32, l, ef, skip int) []heap.Item {
	visited := map[int32]struct{}{ep: {}}
	cands := heap.NewMinQueue(ef)
	w := heap.NewResultQueue(ef)
	cands.Push(int(ep), epDist)
	if int(ep) != skip {
		w.Push(int(ep), epDist)
	}
	for cands.Len() > 0 {
		c, _ := cands.PopMin()
		if c.Dist > w.Threshold() {
			break
		}
		node := int32(c.ID)
		if int(node) >= len(idx.links) || idx.links[node] == nil || l >= len(idx.links[node]) {
			continue
		}
		for _, nb := range idx.links[node][l] {
			if _, ok := visited[nb]; ok {
				continue
			}
			visited[nb] = struct{}{}
			d := vec.L2Sq(q, idx.data.Row(int(nb)))
			if !w.Full() || d < w.Threshold() {
				cands.Push(int(nb), d)
				if int(nb) != skip {
					w.Push(int(nb), d)
				}
			}
		}
	}
	return w.Sorted()
}

// selectNeighbors applies the HNSW heuristic (Algorithm 4): keep a
// candidate only if it is closer to the query than to every already
// selected neighbor, which spreads links across directions.
func (idx *Index) selectNeighbors(q []float32, cands []heap.Item, m int) []heap.Item {
	if len(cands) <= m {
		return cands
	}
	selected := make([]heap.Item, 0, m)
	for _, c := range cands {
		if len(selected) >= m {
			break
		}
		good := true
		for _, s := range selected {
			if vec.L2Sq(idx.data.Row(c.ID), idx.data.Row(s.ID)) < c.Dist {
				good = false
				break
			}
		}
		if good {
			selected = append(selected, c)
		}
	}
	// Fill remaining slots with the nearest discarded candidates.
	if len(selected) < m {
		chosen := make(map[int]struct{}, len(selected))
		for _, s := range selected {
			chosen[s.ID] = struct{}{}
		}
		for _, c := range cands {
			if len(selected) >= m {
				break
			}
			if _, ok := chosen[c.ID]; !ok {
				selected = append(selected, c)
			}
		}
	}
	return selected
}

// shrink re-selects maxConn neighbors for node nb from the overflowing
// list using the same heuristic.
func (idx *Index) shrink(nb int32, lst []int32, maxConn int) []int32 {
	cands := make([]heap.Item, 0, len(lst))
	for _, o := range lst {
		cands = append(cands, heap.Item{ID: int(o), Dist: vec.L2Sq(idx.data.Row(int(nb)), idx.data.Row(int(o)))})
	}
	sortItems(cands)
	sel := idx.selectNeighbors(idx.data.Row(int(nb)), cands, maxConn)
	out := make([]int32, 0, len(sel))
	for _, s := range sel {
		out = append(out, int32(s.ID))
	}
	return out
}

func sortItems(items []heap.Item) {
	// Insertion sort: candidate lists are short (≤ a few hundred).
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].Dist < items[j-1].Dist; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

// Result is a search hit.
type Result = heap.Item

// Search returns the approximate k nearest neighbors of q using the given
// DCO, with beam width ef (clamped up to k). It also returns the DCO work
// counters for the query.
func (idx *Index) Search(dco core.DCO, q []float32, k, ef int) ([]Result, core.Stats, error) {
	if dco.Size() != idx.data.Rows() {
		return nil, core.Stats{}, fmt.Errorf("hnsw: DCO over %d points, index over %d", dco.Size(), idx.data.Rows())
	}
	if k <= 0 {
		return nil, core.Stats{}, errors.New("hnsw: k must be positive")
	}
	ev, err := dco.NewQuery(q)
	if err != nil {
		return nil, core.Stats{}, err
	}
	out, err := idx.SearchEval(ev, k, ef, dco.Size(), nil)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return out, *ev.Stats(), nil
}

// SearchEval is the evaluator-driven search path: the caller owns ev
// (typically pooled and already Reset for this query) and receives the
// hits appended to dst in ascending distance order. size must be the
// evaluator's point count; work counters accumulate in ev.Stats().
func (idx *Index) SearchEval(ev core.QueryEvaluator, k, ef, size int, dst []Result) ([]Result, error) {
	if size != idx.data.Rows() {
		return nil, fmt.Errorf("hnsw: DCO over %d points, index over %d", size, idx.data.Rows())
	}
	if k <= 0 {
		return nil, errors.New("hnsw: k must be positive")
	}
	if ef < k {
		ef = k
	}
	ep := idx.entry
	curDist := ev.Distance(int(ep))
	for l := idx.maxLevel; l > 0; l-- {
		for {
			improved := false
			if l < len(idx.links[ep]) {
				for _, nb := range idx.links[ep][l] {
					d := ev.Distance(int(nb))
					if d < curDist {
						curDist, ep, improved = d, nb, true
					}
				}
			}
			if !improved {
				break
			}
		}
	}
	// Layer-0 beam search driven by the DCO: candidates whose corrected
	// approximate distance already exceeds the beam threshold are pruned
	// without an exact computation (the refinement loop of §I).
	ctx := idx.ctxPool.Get().(*searchCtx)
	ctx.epoch++
	if ctx.epoch == 0 { // wrapped: clear the stale marks once
		for i := range ctx.visited {
			ctx.visited[i] = 0
		}
		ctx.epoch = 1
	}
	visited, epoch := ctx.visited, ctx.epoch
	visited[ep] = epoch
	cands, w := ctx.cands, ctx.w
	cands.Reset()
	w.Reset(ef)
	cands.Push(int(ep), curDist)
	w.Push(int(ep), curDist)
	for cands.Len() > 0 {
		c, _ := cands.PopMin()
		if c.Dist > w.Threshold() {
			break
		}
		for _, nb := range idx.links[c.ID][0] {
			if visited[nb] == epoch {
				continue
			}
			visited[nb] = epoch
			d, pruned := ev.Compare(int(nb), w.Threshold())
			if pruned {
				continue
			}
			if !w.Full() || d < w.Threshold() {
				cands.Push(int(nb), d)
				w.Push(int(nb), d)
			}
		}
	}
	start := len(dst)
	dst = w.AppendSorted(dst)
	if len(dst)-start > k {
		dst = dst[:start+k]
	}
	idx.ctxPool.Put(ctx)
	return dst, nil
}

// Dim returns the indexed dimensionality.
func (idx *Index) Dim() int { return idx.dim }

// Len returns the number of indexed points.
func (idx *Index) Len() int { return idx.data.Rows() }

// MaxLevel returns the top layer of the graph.
func (idx *Index) MaxLevel() int { return idx.maxLevel }

// Entry returns the entry-point node id.
func (idx *Index) Entry() int32 { return idx.entry }

// Neighbors returns node's adjacency at the given level (nil when the node
// does not reach that level). The returned slice is the live adjacency —
// callers must not modify it.
func (idx *Index) Neighbors(node int32, level int) []int32 {
	if int(node) >= len(idx.links) || level >= len(idx.links[node]) {
		return nil
	}
	return idx.links[node][level]
}

// Data returns the indexed vectors (read-only by convention).
func (idx *Index) Data() *store.Matrix { return idx.data }

// GraphBytes reports the memory consumed by adjacency lists (Exp-3's index
// space accounting).
func (idx *Index) GraphBytes() int64 {
	var total int64
	for _, perLevel := range idx.links {
		for _, lst := range perLevel {
			total += int64(len(lst)) * 4
		}
	}
	return total
}
