package hnsw

import (
	"sync"
	"testing"

	"resinfer/internal/adsampling"
	"resinfer/internal/core"
	"resinfer/internal/dataset"
	"resinfer/internal/ddc"
	"resinfer/internal/store"
)

// Shared fixtures: one calibrated dataset, its ground truth, and one built
// graph, reused across tests (construction dominates test runtime).
var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixGT   [][]int
	fixIdx  *Index
	fixErr  error
)

func getFixtures(t testing.TB) (*dataset.Dataset, [][]int, *Index) {
	fixOnce.Do(func() {
		ds, err := dataset.Generate(dataset.GenConfig{
			Name: "hnsw-test", N: 4000, Dim: 128, Queries: 30, TrainQueries: 50,
			VE32: 0.85, Seed: 17,
		})
		if err != nil {
			fixErr = err
			return
		}
		gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
		if err != nil {
			fixErr = err
			return
		}
		idx, err := Build(ds.Matrix(), Config{M: 16, EfConstruction: 200, Seed: 5})
		if err != nil {
			fixErr = err
			return
		}
		fixDS, fixGT, fixIdx = ds, gt, idx
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDS, fixGT, fixIdx
}

func searchAll(t testing.TB, idx *Index, dco core.DCO, queries [][]float32, k, ef int) ([][]int, core.Stats) {
	var agg core.Stats
	results := make([][]int, len(queries))
	for qi, q := range queries {
		items, st, err := idx.Search(dco, q, k, ef)
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(st)
		for _, it := range items {
			results[qi] = append(results[qi], it.ID)
		}
	}
	return results, agg
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := store.FromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestSearchErrors(t *testing.T) {
	ds, _, _ := getFixtures(t)
	idx, err := Build(store.MustFromRows(ds.Data[:100]), Config{M: 8, EfConstruction: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dco, _ := core.NewExact(store.MustFromRows(ds.Data[:100]))
	if _, _, err := idx.Search(dco, ds.Queries[0], 0, 10); err == nil {
		t.Fatal("expected k error")
	}
	smaller, _ := core.NewExact(store.MustFromRows(ds.Data[:50]))
	if _, _, err := idx.Search(smaller, ds.Queries[0], 5, 10); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestSearchHighRecallExact(t *testing.T) {
	ds, gt, idx := getFixtures(t)
	dco, _ := core.NewExact(ds.Matrix())
	results, _ := searchAll(t, idx, dco, ds.Queries, 10, 100)
	if r := dataset.Recall(results, gt, 10); r < 0.95 {
		t.Fatalf("exact-HNSW recall@10 = %v, want >= 0.95", r)
	}
}

func TestSearchResultsSorted(t *testing.T) {
	ds, _, idx := getFixtures(t)
	dco, _ := core.NewExact(ds.Matrix())
	items, _, err := idx.Search(dco, ds.Queries[0], 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(items); i++ {
		if items[i].Dist > items[i+1].Dist {
			t.Fatal("results not sorted by distance")
		}
	}
	if len(items) != 10 {
		t.Fatalf("len = %d, want 10", len(items))
	}
}

// The paper's central comparison, in miniature: both approximate DCOs must
// preserve recall, both must prune, and DDCres (PCA projection on skewed
// data) must scan fewer dimensions than ADSampling (random projection) —
// Theorem 1 made operational (Exp-6).
func TestDDCresBeatsADSamplingScanRate(t *testing.T) {
	ds, gt, idx := getFixtures(t)
	ads, err := adsampling.New(ds.Matrix(), adsampling.Config{Seed: 3, DeltaD: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ddc.NewRes(ds.Matrix(), ddc.ResConfig{Seed: 4, InitD: 16, DeltaD: 16})
	if err != nil {
		t.Fatal(err)
	}
	adsResults, adsStats := searchAll(t, idx, ads, ds.Queries, 10, 20)
	resResults, resStats := searchAll(t, idx, res, ds.Queries, 10, 20)

	if r := dataset.Recall(adsResults, gt, 10); r < 0.8 {
		t.Fatalf("HNSW++ recall@10 = %v", r)
	}
	if r := dataset.Recall(resResults, gt, 10); r < 0.8 {
		t.Fatalf("HNSW-DDCres recall@10 = %v", r)
	}
	if adsStats.Pruned == 0 || resStats.Pruned == 0 {
		t.Fatalf("both methods must prune: ads=%d res=%d", adsStats.Pruned, resStats.Pruned)
	}
	adsRate := adsStats.ScanRate(128)
	resRate := resStats.ScanRate(128)
	if resRate >= adsRate {
		t.Fatalf("DDCres scan rate %v must beat ADSampling %v on skewed data", resRate, adsRate)
	}
	if resRate > 0.8 {
		t.Fatalf("DDCres scan rate %v too high for VE32=0.85 data", resRate)
	}
}

func TestGraphInvariants(t *testing.T) {
	ds, _, _ := getFixtures(t)
	idx, _ := Build(store.MustFromRows(ds.Data[:1000]), Config{M: 8, EfConstruction: 64, Seed: 7})
	if idx.Len() != 1000 || idx.Dim() != 128 {
		t.Fatal("metadata")
	}
	// Degree caps hold; no self-links; neighbor ids valid and reach the
	// linking level.
	for node := int32(0); node < 1000; node++ {
		for l := 0; l < len(idx.links[node]); l++ {
			maxConn := idx.m
			if l == 0 {
				maxConn = idx.mMax0
			}
			lst := idx.Neighbors(node, l)
			if len(lst) > maxConn {
				t.Fatalf("node %d level %d degree %d > %d", node, l, len(lst), maxConn)
			}
			for _, nb := range lst {
				if nb == node {
					t.Fatalf("self link at node %d", node)
				}
				if nb < 0 || nb >= 1000 {
					t.Fatalf("bad neighbor id %d", nb)
				}
				if len(idx.links[nb]) <= l {
					t.Fatalf("node %d links to %d at level %d beyond its top", node, nb, l)
				}
			}
		}
	}
	if idx.MaxLevel() < 0 || int(idx.Entry()) >= 1000 {
		t.Fatal("entry metadata")
	}
	if idx.GraphBytes() <= 0 {
		t.Fatal("GraphBytes must be positive")
	}
}

func TestLayer0Connectivity(t *testing.T) {
	ds, _, _ := getFixtures(t)
	idx, _ := Build(store.MustFromRows(ds.Data[:2000]), Config{M: 8, EfConstruction: 64, Seed: 9})
	seen := make([]bool, 2000)
	queue := []int32{idx.Entry()}
	seen[idx.Entry()] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nb := range idx.Neighbors(n, 0) {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	if float64(count)/2000 < 0.99 {
		t.Fatalf("layer-0 reachability %d/2000", count)
	}
}

func TestBuildSingleWorkerDeterministic(t *testing.T) {
	ds, _, _ := getFixtures(t)
	a, err := Build(store.MustFromRows(ds.Data[:500]), Config{M: 8, EfConstruction: 50, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(store.MustFromRows(ds.Data[:500]), Config{M: 8, EfConstruction: 50, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for n := int32(0); n < 500; n++ {
		la, lb := a.Neighbors(n, 0), b.Neighbors(n, 0)
		if len(la) != len(lb) {
			t.Fatalf("node %d: nondeterministic build with 1 worker", n)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("node %d: neighbor lists differ", n)
			}
		}
	}
}

func TestSearchEfClampedToK(t *testing.T) {
	ds, _, _ := getFixtures(t)
	idx, _ := Build(store.MustFromRows(ds.Data[:300]), Config{M: 8, EfConstruction: 32, Seed: 1})
	dco, _ := core.NewExact(store.MustFromRows(ds.Data[:300]))
	items, _, err := idx.Search(dco, ds.Queries[0], 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 20 {
		t.Fatalf("ef < k must clamp; got %d results", len(items))
	}
}
