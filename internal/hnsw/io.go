package hnsw

import (
	"errors"
	"io"

	"resinfer/internal/persist"
	"resinfer/internal/store"
)

// Version 2 stores the vectors as one flat matrix block.
const indexMagic = "RIHNSW2"

// Encode writes the index (graph structure and vectors) onto an existing
// persist stream, so it can be composed into larger files.
func (idx *Index) Encode(pw *persist.Writer) {
	pw.Magic(indexMagic)
	pw.Int(idx.dim)
	pw.Int(idx.m)
	pw.Int(idx.mMax0)
	pw.Int(idx.efCon)
	pw.I64(int64(idx.entry))
	pw.Int(idx.maxLevel)
	pw.Int(len(idx.links))
	for _, perLevel := range idx.links {
		pw.Int(len(perLevel))
		for _, lst := range perLevel {
			pw.I32s(lst)
		}
	}
	idx.data.Encode(pw)
}

// Decode reads an index previously written by Encode.
func Decode(pr *persist.Reader) (*Index, error) {
	pr.Magic(indexMagic)
	dim := pr.Int()
	m := pr.Int()
	mMax0 := pr.Int()
	efCon := pr.Int()
	entry := int32(pr.I64())
	maxLevel := pr.Int()
	n := pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if n <= 0 || n > persist.MaxSliceLen {
		return nil, errors.New("hnsw: corrupt node count")
	}
	links := make([][][]int32, n)
	for i := 0; i < n; i++ {
		levels := pr.Int()
		if pr.Err() != nil {
			return nil, pr.Err()
		}
		if levels < 0 || levels > 64 {
			return nil, errors.New("hnsw: corrupt level count")
		}
		links[i] = make([][]int32, levels)
		for l := 0; l < levels; l++ {
			links[i][l] = pr.I32s()
		}
	}
	data, err := store.Decode(pr)
	if err != nil {
		return nil, err
	}
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if data.Rows() != n || dim <= 0 || data.Dim() != dim || int(entry) >= n || entry < 0 {
		return nil, errors.New("hnsw: corrupt index")
	}
	for node, perLevel := range links {
		for _, lst := range perLevel {
			for _, nb := range lst {
				if nb < 0 || int(nb) >= n || int(nb) == node {
					return nil, errors.New("hnsw: corrupt adjacency")
				}
			}
		}
	}
	return newIndex(dim, m, mMax0, efCon, entry, maxLevel, links, data), nil
}

// WriteTo serializes the index to w as a standalone stream.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w)
	idx.Encode(pw)
	return 0, pw.Flush()
}

// Read deserializes a standalone index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	return Decode(persist.NewReader(r))
}
