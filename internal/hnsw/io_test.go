package hnsw

import (
	"bytes"
	"testing"

	"resinfer/internal/core"
	"resinfer/internal/store"
)

func TestIndexRoundTrip(t *testing.T) {
	ds, _, _ := getFixtures(t)
	idx, err := Build(store.MustFromRows(ds.Data[:800]), Config{M: 8, EfConstruction: 50, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() || loaded.Dim() != idx.Dim() ||
		loaded.Entry() != idx.Entry() || loaded.MaxLevel() != idx.MaxLevel() {
		t.Fatal("metadata lost")
	}
	// Identical searches.
	dco, _ := core.NewExact(store.MustFromRows(ds.Data[:800]))
	a, _, err := idx.Search(dco, ds.Queries[0], 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.Search(dco, ds.Queries[0], 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("search results differ after round trip")
		}
	}
}

func TestIndexReadRejectsCorruption(t *testing.T) {
	ds, _, _ := getFixtures(t)
	idx, _ := Build(store.MustFromRows(ds.Data[:200]), Config{M: 8, EfConstruction: 40, Seed: 53})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Read(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte("WRONGXY"), good[7:]...)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected magic error")
	}
}
