package ivf

import (
	"errors"
	"io"

	"resinfer/internal/persist"
	"resinfer/internal/store"
)

// Version 2 stores the centroids as one flat matrix block.
const indexMagic = "RIIVF2"

// Encode writes the index (centroids and inverted lists) onto an existing
// persist stream. The base vectors live in the DCO, not the IVF index, and
// are not written.
func (idx *Index) Encode(pw *persist.Writer) {
	pw.Magic(indexMagic)
	pw.Int(idx.dim)
	pw.Int(idx.size)
	idx.centroids.Encode(pw)
	pw.Int(len(idx.lists))
	for _, lst := range idx.lists {
		pw.I32s(lst)
	}
}

// Decode reads an index previously written by Encode.
func Decode(pr *persist.Reader) (*Index, error) {
	pr.Magic(indexMagic)
	dim := pr.Int()
	size := pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	centroids, err := store.Decode(pr)
	if err != nil {
		return nil, err
	}
	nl := pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if nl <= 0 || nl > persist.MaxSliceLen {
		return nil, errors.New("ivf: corrupt list count")
	}
	lists := make([][]int32, nl)
	total := 0
	for i := range lists {
		lists[i] = pr.I32s()
		total += len(lists[i])
	}
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if dim <= 0 || centroids.Rows() != nl || centroids.Dim() != dim || total != size {
		return nil, errors.New("ivf: corrupt index")
	}
	for _, lst := range lists {
		for _, id := range lst {
			if id < 0 || int(id) >= size {
				return nil, errors.New("ivf: corrupt list entry")
			}
		}
	}
	return newIndex(dim, centroids, lists, size), nil
}

// WriteTo serializes the index to w as a standalone stream.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w)
	idx.Encode(pw)
	return 0, pw.Flush()
}

// Read deserializes a standalone index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	return Decode(persist.NewReader(r))
}
