package ivf

import (
	"bytes"
	"testing"

	"resinfer/internal/core"
)

func TestIndexRoundTrip(t *testing.T) {
	ds, _, idx := getFixtures(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() || loaded.NList() != idx.NList() || loaded.Dim() != idx.Dim() {
		t.Fatal("metadata lost")
	}
	dco, _ := core.NewExact(ds.Matrix())
	a, _, err := idx.Search(dco, ds.Queries[0], 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.Search(dco, ds.Queries[0], 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("search results differ after round trip")
		}
	}
}

func TestIndexReadRejectsCorruption(t *testing.T) {
	_, _, idx := getFixtures(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Read(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte("NOPEXY"), good[6:]...)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected magic error")
	}
}
