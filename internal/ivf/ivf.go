// Package ivf implements the inverted-file index (IVF) of §II-A: data is
// clustered with k-means; at query time the nprobe closest clusters are
// scanned through a pluggable core.DCO, so the same index serves IVF
// (exact), IVF++ (ADSampling) and the IVF-DDC* variants.
package ivf

import (
	"errors"
	"fmt"

	"resinfer/internal/core"
	"resinfer/internal/heap"
	"resinfer/internal/kmeans"
)

// Config controls index construction.
type Config struct {
	// NList is the number of clusters; default max(16, √n) (the paper uses
	// 4096 at million scale, ≈ √n points per list).
	NList int
	// TrainIters bounds the k-means iterations; default 20.
	TrainIters int
	Seed       int64
	Workers    int
}

// Index is a built IVF index. Search is safe for concurrent use.
type Index struct {
	dim       int
	centroids [][]float32
	lists     [][]int32
	size      int
}

// Build clusters data into cfg.NList inverted lists.
func Build(data [][]float32, cfg Config) (*Index, error) {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errors.New("ivf: empty data")
	}
	if cfg.NList <= 0 {
		cfg.NList = 16
		for cfg.NList*cfg.NList < len(data) {
			cfg.NList *= 2
		}
	}
	if cfg.NList > len(data) {
		cfg.NList = len(data)
	}
	res, err := kmeans.Train(data, kmeans.Config{
		K:        cfg.NList,
		MaxIters: cfg.TrainIters,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("ivf: clustering: %w", err)
	}
	idx := &Index{
		dim:       len(data[0]),
		centroids: res.Centroids,
		lists:     make([][]int32, cfg.NList),
		size:      len(data),
	}
	for i, c := range res.Assign {
		idx.lists[c] = append(idx.lists[c], int32(i))
	}
	return idx, nil
}

// Result is a search hit.
type Result = heap.Item

// Search scans the nprobe closest inverted lists with the given DCO and
// returns the approximate k nearest neighbors plus the query's work
// counters.
func (idx *Index) Search(dco core.DCO, q []float32, k, nprobe int) ([]Result, core.Stats, error) {
	if dco.Size() != idx.size {
		return nil, core.Stats{}, fmt.Errorf("ivf: DCO over %d points, index over %d", dco.Size(), idx.size)
	}
	if k <= 0 {
		return nil, core.Stats{}, errors.New("ivf: k must be positive")
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	ev, err := dco.NewQuery(q)
	if err != nil {
		return nil, core.Stats{}, err
	}
	probes := kmeans.NearestCentroids(idx.centroids, q, nprobe)
	rq := heap.NewResultQueue(k)
	for _, c := range probes {
		for _, id := range idx.lists[c] {
			tau := rq.Threshold()
			d, pruned := ev.Compare(int(id), tau)
			if pruned {
				continue
			}
			if d < tau {
				rq.Push(int(id), d)
			}
		}
	}
	return rq.Sorted(), *ev.Stats(), nil
}

// Dim returns the indexed dimensionality.
func (idx *Index) Dim() int { return idx.dim }

// Len returns the number of indexed points.
func (idx *Index) Len() int { return idx.size }

// NList returns the number of inverted lists.
func (idx *Index) NList() int { return len(idx.lists) }

// Centroids exposes the coarse quantizer (read-only by convention).
func (idx *Index) Centroids() [][]float32 { return idx.centroids }

// List returns inverted list c (read-only by convention).
func (idx *Index) List(c int) []int32 { return idx.lists[c] }

// IndexBytes reports the memory held by centroids and lists (Exp-3's space
// accounting).
func (idx *Index) IndexBytes() int64 {
	total := int64(len(idx.centroids)) * int64(idx.dim) * 4
	for _, l := range idx.lists {
		total += int64(len(l)) * 4
	}
	return total
}
