// Package ivf implements the inverted-file index (IVF) of §II-A: data is
// clustered with k-means; at query time the nprobe closest clusters are
// scanned through a pluggable core.DCO, so the same index serves IVF
// (exact), IVF++ (ADSampling) and the IVF-DDC* variants.
package ivf

import (
	"errors"
	"fmt"
	"sync"

	"resinfer/internal/core"
	"resinfer/internal/heap"
	"resinfer/internal/kmeans"
	"resinfer/internal/store"
)

// Config controls index construction.
type Config struct {
	// NList is the number of clusters; default max(16, √n) (the paper uses
	// 4096 at million scale, ≈ √n points per list).
	NList int
	// TrainIters bounds the k-means iterations; default 20.
	TrainIters int
	Seed       int64
	Workers    int
}

// Index is a built IVF index. Search is safe for concurrent use.
type Index struct {
	dim       int
	centroids *store.Matrix
	lists     [][]int32
	size      int
	// ctxPool recycles per-search scratch (result queue, probe order,
	// centroid distances) so steady-state searches allocate nothing.
	ctxPool sync.Pool
}

// searchCtx is the per-search scratch recycled by ctxPool.
type searchCtx struct {
	rq     *heap.ResultQueue
	probes []int
	cdists []float32
}

// Build clusters the rows of data into cfg.NList inverted lists.
func Build(data *store.Matrix, cfg Config) (*Index, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("ivf: empty data")
	}
	n := data.Rows()
	if cfg.NList <= 0 {
		cfg.NList = 16
		for cfg.NList*cfg.NList < n {
			cfg.NList *= 2
		}
	}
	if cfg.NList > n {
		cfg.NList = n
	}
	res, err := kmeans.Train(data, kmeans.Config{
		K:        cfg.NList,
		MaxIters: cfg.TrainIters,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("ivf: clustering: %w", err)
	}
	idx := newIndex(data.Dim(), res.Centroids, make([][]int32, cfg.NList), n)
	for i, c := range res.Assign {
		idx.lists[c] = append(idx.lists[c], int32(i))
	}
	return idx, nil
}

func newIndex(dim int, centroids *store.Matrix, lists [][]int32, size int) *Index {
	idx := &Index{dim: dim, centroids: centroids, lists: lists, size: size}
	idx.ctxPool.New = func() any {
		return &searchCtx{rq: heap.NewResultQueue(16)}
	}
	return idx
}

// Result is a search hit.
type Result = heap.Item

// Search scans the nprobe closest inverted lists with the given DCO and
// returns the approximate k nearest neighbors plus the query's work
// counters.
func (idx *Index) Search(dco core.DCO, q []float32, k, nprobe int) ([]Result, core.Stats, error) {
	if dco.Size() != idx.size {
		return nil, core.Stats{}, fmt.Errorf("ivf: DCO over %d points, index over %d", dco.Size(), idx.size)
	}
	if k <= 0 {
		return nil, core.Stats{}, errors.New("ivf: k must be positive")
	}
	ev, err := dco.NewQuery(q)
	if err != nil {
		return nil, core.Stats{}, err
	}
	out, err := idx.SearchEval(ev, q, k, nprobe, dco.Size(), nil)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return out, *ev.Stats(), nil
}

// SearchEval is the evaluator-driven search path: the caller owns ev
// (typically pooled and already Reset for this query) and receives the
// hits appended to dst in ascending distance order. q is the query in the
// index's space (it drives centroid probing); size must be the
// evaluator's point count; work counters accumulate in ev.Stats().
func (idx *Index) SearchEval(ev core.QueryEvaluator, q []float32, k, nprobe, size int, dst []Result) ([]Result, error) {
	if size != idx.size {
		return nil, fmt.Errorf("ivf: DCO over %d points, index over %d", size, idx.size)
	}
	if k <= 0 {
		return nil, errors.New("ivf: k must be positive")
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	ctx := idx.ctxPool.Get().(*searchCtx)
	ctx.probes, ctx.cdists = kmeans.NearestCentroidsInto(idx.centroids, q, nprobe, ctx.probes, ctx.cdists)
	rq := ctx.rq
	rq.Reset(k)
	for _, c := range ctx.probes {
		for _, id := range idx.lists[c] {
			tau := rq.Threshold()
			d, pruned := ev.Compare(int(id), tau)
			if pruned {
				continue
			}
			if d < tau {
				rq.Push(int(id), d)
			}
		}
	}
	dst = rq.AppendSorted(dst)
	idx.ctxPool.Put(ctx)
	return dst, nil
}

// Dim returns the indexed dimensionality.
func (idx *Index) Dim() int { return idx.dim }

// Len returns the number of indexed points.
func (idx *Index) Len() int { return idx.size }

// NList returns the number of inverted lists.
func (idx *Index) NList() int { return len(idx.lists) }

// Centroids exposes the coarse quantizer (read-only by convention).
func (idx *Index) Centroids() *store.Matrix { return idx.centroids }

// List returns inverted list c (read-only by convention).
func (idx *Index) List(c int) []int32 { return idx.lists[c] }

// IndexBytes reports the memory held by centroids and lists (Exp-3's space
// accounting).
func (idx *Index) IndexBytes() int64 {
	total := idx.centroids.Bytes()
	for _, l := range idx.lists {
		total += int64(len(l)) * 4
	}
	return total
}
