package ivf

import (
	"sync"
	"testing"

	"resinfer/internal/adsampling"
	"resinfer/internal/core"
	"resinfer/internal/dataset"
	"resinfer/internal/ddc"
	"resinfer/internal/store"
)

var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixGT   [][]int
	fixIdx  *Index
	fixErr  error
)

func getFixtures(t testing.TB) (*dataset.Dataset, [][]int, *Index) {
	fixOnce.Do(func() {
		ds, err := dataset.Generate(dataset.GenConfig{
			Name: "ivf-test", N: 5000, Dim: 96, Queries: 30, TrainQueries: 50,
			VE32: 0.8, Seed: 23,
		})
		if err != nil {
			fixErr = err
			return
		}
		gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
		if err != nil {
			fixErr = err
			return
		}
		idx, err := Build(ds.Matrix(), Config{Seed: 11})
		if err != nil {
			fixErr = err
			return
		}
		fixDS, fixGT, fixIdx = ds, gt, idx
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDS, fixGT, fixIdx
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestBuildDefaultNList(t *testing.T) {
	_, _, idx := getFixtures(t)
	// Default: smallest power-of-two-scaled value with NList² >= n.
	if idx.NList() < 64 || idx.NList() > 256 {
		t.Fatalf("NList = %d for n=5000", idx.NList())
	}
}

func TestListsPartitionData(t *testing.T) {
	_, _, idx := getFixtures(t)
	seen := make([]bool, idx.Len())
	total := 0
	for c := 0; c < idx.NList(); c++ {
		for _, id := range idx.List(c) {
			if seen[id] {
				t.Fatalf("point %d in two lists", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != idx.Len() {
		t.Fatalf("lists cover %d of %d points", total, idx.Len())
	}
}

func TestSearchErrors(t *testing.T) {
	ds, _, idx := getFixtures(t)
	dco, _ := core.NewExact(ds.Matrix())
	if _, _, err := idx.Search(dco, ds.Queries[0], 0, 4); err == nil {
		t.Fatal("expected k error")
	}
	smaller, _ := core.NewExact(store.MustFromRows(ds.Data[:10]))
	if _, _, err := idx.Search(smaller, ds.Queries[0], 5, 4); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestSearchFullProbeIsExact(t *testing.T) {
	// Probing every list is a brute-force scan: recall must be 1.
	ds, gt, idx := getFixtures(t)
	dco, _ := core.NewExact(ds.Matrix())
	results := make([][]int, len(ds.Queries))
	for qi, q := range ds.Queries {
		items, _, err := idx.Search(dco, q, 10, idx.NList())
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			results[qi] = append(results[qi], it.ID)
		}
	}
	if r := dataset.Recall(results, gt, 10); r < 0.9999 {
		t.Fatalf("full-probe recall = %v, want 1", r)
	}
}

func TestRecallGrowsWithNProbe(t *testing.T) {
	ds, gt, idx := getFixtures(t)
	dco, _ := core.NewExact(ds.Matrix())
	recallAt := func(nprobe int) float64 {
		results := make([][]int, len(ds.Queries))
		for qi, q := range ds.Queries {
			items, _, err := idx.Search(dco, q, 10, nprobe)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range items {
				results[qi] = append(results[qi], it.ID)
			}
		}
		return dataset.Recall(results, gt, 10)
	}
	r1, r8, r64 := recallAt(1), recallAt(8), recallAt(64)
	if !(r1 <= r8+0.02 && r8 <= r64+0.02) {
		t.Fatalf("recall not increasing: %v %v %v", r1, r8, r64)
	}
	if r64 < 0.9 {
		t.Fatalf("recall@nprobe=64 = %v too low", r64)
	}
}

func TestSearchWithDCOsPreservesRecall(t *testing.T) {
	ds, gt, idx := getFixtures(t)
	ads, err := adsampling.New(ds.Matrix(), adsampling.Config{Seed: 1, DeltaD: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ddc.NewRes(ds.Matrix(), ddc.ResConfig{Seed: 2, InitD: 16, DeltaD: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: exact DCO at the same nprobe. Approximate DCOs may lose
	// only a sliver of recall relative to it (the probing, not the DCO,
	// caps recall at a fixed nprobe).
	exact, _ := core.NewExact(ds.Matrix())
	run := func(dco core.DCO) (float64, core.Stats) {
		var agg core.Stats
		results := make([][]int, len(ds.Queries))
		for qi, q := range ds.Queries {
			items, st, err := idx.Search(dco, q, 10, 16)
			if err != nil {
				t.Fatal(err)
			}
			agg.Add(st)
			for _, it := range items {
				results[qi] = append(results[qi], it.ID)
			}
		}
		return dataset.Recall(results, gt, 10), agg
	}
	baseline, _ := run(exact)
	for _, dco := range []core.DCO{ads, res} {
		r, agg := run(dco)
		if r < baseline-0.02 {
			t.Fatalf("%s: IVF recall %v below exact baseline %v", dco.Name(), r, baseline)
		}
		if agg.Pruned == 0 {
			t.Fatalf("%s: never pruned", dco.Name())
		}
	}
}

// IVF's pruning is much stronger than HNSW's because scanned lists contain
// many far points: the pruned rate should be high (paper Fig. 10 reports
// 96%+).
func TestIVFPrunedRateHigh(t *testing.T) {
	ds, _, idx := getFixtures(t)
	res, err := ddc.NewRes(ds.Matrix(), ddc.ResConfig{Seed: 2, InitD: 16, DeltaD: 16})
	if err != nil {
		t.Fatal(err)
	}
	var agg core.Stats
	for _, q := range ds.Queries {
		_, st, err := idx.Search(res, q, 10, 16)
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(st)
	}
	if pr := agg.PrunedRate(); pr < 0.5 {
		t.Fatalf("IVF-DDCres pruned rate %v, want > 0.5", pr)
	}
}

func TestIndexBytesPositive(t *testing.T) {
	_, _, idx := getFixtures(t)
	want := int64(idx.NList()*idx.Dim()*4) + int64(idx.Len()*4)
	if idx.IndexBytes() != want {
		t.Fatalf("IndexBytes = %d, want %d", idx.IndexBytes(), want)
	}
}

func TestNProbeClamp(t *testing.T) {
	ds, _, idx := getFixtures(t)
	dco, _ := core.NewExact(ds.Matrix())
	// nprobe <= 0 clamps to 1; larger than NList clamps to NList.
	if _, _, err := idx.Search(dco, ds.Queries[0], 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := idx.Search(dco, ds.Queries[0], 5, 1<<20); err != nil {
		t.Fatal(err)
	}
}
