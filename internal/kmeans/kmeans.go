// Package kmeans implements Lloyd's algorithm with k-means++ seeding and
// parallel assignment. It is the clustering substrate shared by the IVF
// coarse quantizer (§II-A of the paper) and the per-subspace codebook
// training of product quantization (§V-B). Points and centroids live in
// flat row-major matrices so the assignment step streams contiguously.
package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// Config controls training.
type Config struct {
	K        int   // number of centroids (required, >= 1)
	MaxIters int   // Lloyd iterations; default 25
	Seed     int64 // RNG seed for k-means++ and empty-cluster repair
	// MinShift stops early when no centroid moved more than this squared
	// distance in an iteration; default 1e-6.
	MinShift float64
	// Workers bounds parallelism for the assignment step; default
	// runtime.GOMAXPROCS(0).
	Workers int
}

// Result holds a trained clustering.
type Result struct {
	Centroids  *store.Matrix // K rows of dimension D
	Assign     []int         // len(data); cluster index per point
	Sizes      []int         // points per cluster
	Iterations int           // Lloyd iterations actually run
	Inertia    float64       // final sum of squared distances to centroids
}

// Train clusters the rows of data into cfg.K clusters.
func Train(data *store.Matrix, cfg Config) (*Result, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("kmeans: empty data")
	}
	n, d := data.Rows(), data.Dim()
	if cfg.K < 1 {
		return nil, errors.New("kmeans: K must be >= 1")
	}
	if cfg.K > n {
		return nil, errors.New("kmeans: K exceeds number of points")
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 25
	}
	if cfg.MinShift <= 0 {
		cfg.MinShift = 1e-6
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids := seedPlusPlus(data, cfg.K, rng)
	assign := make([]int, n)
	res := &Result{Centroids: centroids, Assign: assign, Sizes: make([]int, cfg.K)}

	dists := make([]float32, n)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		res.Iterations = iter + 1
		assignParallel(data, centroids, assign, dists, cfg.Workers)

		// Recompute centroids.
		sums := make([][]float64, cfg.K)
		for k := range sums {
			sums[k] = make([]float64, d)
		}
		counts := make([]int, cfg.K)
		for i := 0; i < n; i++ {
			k := assign[i]
			counts[k]++
			s := sums[k]
			for j, v := range data.Row(i) {
				s[j] += float64(v)
			}
		}
		maxShift := 0.0
		for k := 0; k < cfg.K; k++ {
			crow := centroids.Row(k)
			if counts[k] == 0 {
				// Empty cluster: reseed at the point currently farthest
				// from its centroid, the standard repair.
				far := farthestPoint(dists)
				copy(crow, data.Row(far))
				counts[k] = 1
				continue
			}
			inv := 1 / float64(counts[k])
			var shift float64
			for j := 0; j < d; j++ {
				nv := float32(sums[k][j] * inv)
				dv := float64(nv - crow[j])
				shift += dv * dv
				crow[j] = nv
			}
			if shift > maxShift {
				maxShift = shift
			}
		}
		copy(res.Sizes, counts)
		if maxShift < cfg.MinShift {
			break
		}
	}
	// Final assignment against the final centroids.
	assignParallel(data, centroids, assign, dists, cfg.Workers)
	for k := range res.Sizes {
		res.Sizes[k] = 0
	}
	var inertia float64
	for i := 0; i < n; i++ {
		res.Sizes[assign[i]]++
		inertia += float64(dists[i])
	}
	res.Inertia = inertia
	return res, nil
}

// NearestCentroid returns the index of the centroid closest to x and the
// squared distance to it.
func NearestCentroid(centroids *store.Matrix, x []float32) (int, float32) {
	best, bestD := 0, float32(math.Inf(1))
	flat := centroids.Flat()
	for k, off := 0, 0; k < centroids.Rows(); k, off = k+1, off+centroids.Dim() {
		d := vec.L2SqFlat(x, flat, off)
		if d < bestD {
			best, bestD = k, d
		}
	}
	return best, bestD
}

// NearestCentroidRows is NearestCentroid over row slices — used where
// centroids live in per-subspace codebooks rather than one matrix.
func NearestCentroidRows(centroids [][]float32, x []float32) (int, float32) {
	best, bestD := 0, float32(math.Inf(1))
	for k, c := range centroids {
		d := vec.L2Sq(x, c)
		if d < bestD {
			best, bestD = k, d
		}
	}
	return best, bestD
}

// NearestCentroids returns the indices of the nprobe closest centroids to
// x, ordered by ascending distance. This is the IVF probe-selection step.
func NearestCentroids(centroids *store.Matrix, x []float32, nprobe int) []int {
	out, _ := NearestCentroidsInto(centroids, x, nprobe, nil, nil)
	return out
}

// NearestCentroidsInto is NearestCentroids with caller-provided scratch:
// out receives the probe order (appended to out[:0]), dists is a
// len-K distance scratch grown as needed. Both scratches are returned for
// reuse. Allocation-free once the scratches have reached capacity.
func NearestCentroidsInto(centroids *store.Matrix, x []float32, nprobe int, out []int, dists []float32) ([]int, []float32) {
	k := centroids.Rows()
	if nprobe > k {
		nprobe = k
	}
	if cap(dists) < k {
		dists = make([]float32, k)
	}
	dists = dists[:k]
	flat := centroids.Flat()
	for c, off := 0, 0; c < k; c, off = c+1, off+centroids.Dim() {
		dists[c] = vec.L2SqFlat(x, flat, off)
	}
	out = out[:0]
	// Partial selection over a scratch permutation is overkill: nprobe << K
	// in practice, so select the next-best centroid nprobe times, marking
	// consumed entries with +Inf.
	for i := 0; i < nprobe; i++ {
		best, bestD := -1, float32(math.Inf(1))
		for c, d := range dists {
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best < 0 {
			// Every remaining distance is +Inf or NaN (overflowed query or
			// consumed entry): fall back to the lowest centroid not yet
			// chosen so the probe list stays valid.
			for c := range dists {
				taken := false
				for _, o := range out {
					if o == c {
						taken = true
						break
					}
				}
				if !taken {
					best = c
					break
				}
			}
		}
		out = append(out, best)
		dists[best] = float32(math.Inf(1))
	}
	return out, dists
}

func seedPlusPlus(data *store.Matrix, k int, rng *rand.Rand) *store.Matrix {
	n := data.Rows()
	centroids, err := store.New(k, data.Dim())
	if err != nil {
		panic(err) // unreachable: shape validated by Train
	}
	first := rng.Intn(n)
	copy(centroids.Row(0), data.Row(first))

	// minDist[i] = squared distance from data[i] to nearest chosen centroid.
	minDist := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		minDist[i] = float64(vec.L2Sq(data.Row(i), centroids.Row(0)))
		total += minDist[i]
	}
	for c := 1; c < k; c++ {
		var chosen int
		if total <= 0 {
			chosen = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			chosen = n - 1
			for i, w := range minDist {
				acc += w
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		copy(centroids.Row(c), data.Row(chosen))
		if c == k-1 {
			break
		}
		total = 0
		for i := 0; i < n; i++ {
			nd := float64(vec.L2Sq(data.Row(i), centroids.Row(c)))
			if nd < minDist[i] {
				minDist[i] = nd
			}
			total += minDist[i]
		}
	}
	return centroids
}

func assignParallel(data, centroids *store.Matrix, assign []int, dists []float32, workers int) {
	n := data.Rows()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			assign[i], dists[i] = NearestCentroid(centroids, data.Row(i))
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				assign[i], dists[i] = NearestCentroid(centroids, data.Row(i))
			}
		}(lo, hi)
	}
	wg.Wait()
}

func farthestPoint(dists []float32) int {
	best, bestD := 0, float32(-1)
	for i, d := range dists {
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}
