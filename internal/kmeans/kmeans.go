// Package kmeans implements Lloyd's algorithm with k-means++ seeding and
// parallel assignment. It is the clustering substrate shared by the IVF
// coarse quantizer (§II-A of the paper) and the per-subspace codebook
// training of product quantization (§V-B).
package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"resinfer/internal/vec"
)

// Config controls training.
type Config struct {
	K        int   // number of centroids (required, >= 1)
	MaxIters int   // Lloyd iterations; default 25
	Seed     int64 // RNG seed for k-means++ and empty-cluster repair
	// MinShift stops early when no centroid moved more than this squared
	// distance in an iteration; default 1e-6.
	MinShift float64
	// Workers bounds parallelism for the assignment step; default
	// runtime.GOMAXPROCS(0).
	Workers int
}

// Result holds a trained clustering.
type Result struct {
	Centroids  [][]float32 // K rows of dimension D
	Assign     []int       // len(data); cluster index per point
	Sizes      []int       // points per cluster
	Iterations int         // Lloyd iterations actually run
	Inertia    float64     // final sum of squared distances to centroids
}

// Train clusters data (n rows, equal dimension) into cfg.K clusters.
func Train(data [][]float32, cfg Config) (*Result, error) {
	if len(data) == 0 {
		return nil, errors.New("kmeans: empty data")
	}
	d := len(data[0])
	for _, row := range data {
		if len(row) != d {
			return nil, errors.New("kmeans: ragged data")
		}
	}
	if cfg.K < 1 {
		return nil, errors.New("kmeans: K must be >= 1")
	}
	if cfg.K > len(data) {
		return nil, errors.New("kmeans: K exceeds number of points")
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 25
	}
	if cfg.MinShift <= 0 {
		cfg.MinShift = 1e-6
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids := seedPlusPlus(data, cfg.K, rng)
	assign := make([]int, len(data))
	res := &Result{Centroids: centroids, Assign: assign, Sizes: make([]int, cfg.K)}

	dists := make([]float32, len(data))
	for iter := 0; iter < cfg.MaxIters; iter++ {
		res.Iterations = iter + 1
		assignParallel(data, centroids, assign, dists, cfg.Workers)

		// Recompute centroids.
		sums := make([][]float64, cfg.K)
		for k := range sums {
			sums[k] = make([]float64, d)
		}
		counts := make([]int, cfg.K)
		for i, row := range data {
			k := assign[i]
			counts[k]++
			s := sums[k]
			for j, v := range row {
				s[j] += float64(v)
			}
		}
		maxShift := 0.0
		for k := 0; k < cfg.K; k++ {
			if counts[k] == 0 {
				// Empty cluster: reseed at the point currently farthest
				// from its centroid, the standard repair.
				far := farthestPoint(dists)
				copy32(centroids[k], data[far])
				counts[k] = 1
				continue
			}
			inv := 1 / float64(counts[k])
			var shift float64
			for j := 0; j < d; j++ {
				nv := float32(sums[k][j] * inv)
				dv := float64(nv - centroids[k][j])
				shift += dv * dv
				centroids[k][j] = nv
			}
			if shift > maxShift {
				maxShift = shift
			}
		}
		copy(res.Sizes, counts)
		if maxShift < cfg.MinShift {
			break
		}
	}
	// Final assignment against the final centroids.
	assignParallel(data, centroids, assign, dists, cfg.Workers)
	for k := range res.Sizes {
		res.Sizes[k] = 0
	}
	var inertia float64
	for i := range data {
		res.Sizes[assign[i]]++
		inertia += float64(dists[i])
	}
	res.Inertia = inertia
	return res, nil
}

// NearestCentroid returns the index of the centroid closest to x and the
// squared distance to it.
func NearestCentroid(centroids [][]float32, x []float32) (int, float32) {
	best, bestD := 0, float32(math.Inf(1))
	for k, c := range centroids {
		d := vec.L2Sq(x, c)
		if d < bestD {
			best, bestD = k, d
		}
	}
	return best, bestD
}

// NearestCentroids returns the indices of the nprobe closest centroids to
// x, ordered by ascending distance. This is the IVF probe-selection step.
func NearestCentroids(centroids [][]float32, x []float32, nprobe int) []int {
	if nprobe > len(centroids) {
		nprobe = len(centroids)
	}
	type kd struct {
		k int
		d float32
	}
	all := make([]kd, len(centroids))
	for k, c := range centroids {
		all[k] = kd{k, vec.L2Sq(x, c)}
	}
	// Partial selection sort is fine: nprobe << K in practice.
	out := make([]int, 0, nprobe)
	for i := 0; i < nprobe; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[best].d {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		out = append(out, all[i].k)
	}
	return out
}

func seedPlusPlus(data [][]float32, k int, rng *rand.Rand) [][]float32 {
	d := len(data[0])
	centroids := make([][]float32, k)
	for i := range centroids {
		centroids[i] = make([]float32, d)
	}
	first := rng.Intn(len(data))
	copy32(centroids[0], data[first])

	// minDist[i] = squared distance from data[i] to nearest chosen centroid.
	minDist := make([]float64, len(data))
	total := 0.0
	for i, row := range data {
		minDist[i] = float64(vec.L2Sq(row, centroids[0]))
		total += minDist[i]
	}
	for c := 1; c < k; c++ {
		var chosen int
		if total <= 0 {
			chosen = rng.Intn(len(data))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			chosen = len(data) - 1
			for i, w := range minDist {
				acc += w
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		copy32(centroids[c], data[chosen])
		if c == k-1 {
			break
		}
		total = 0
		for i, row := range data {
			nd := float64(vec.L2Sq(row, centroids[c]))
			if nd < minDist[i] {
				minDist[i] = nd
			}
			total += minDist[i]
		}
	}
	return centroids
}

func assignParallel(data, centroids [][]float32, assign []int, dists []float32, workers int) {
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		for i, row := range data {
			assign[i], dists[i] = NearestCentroid(centroids, row)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(data) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				assign[i], dists[i] = NearestCentroid(centroids, data[i])
			}
		}(lo, hi)
	}
	wg.Wait()
}

func farthestPoint(dists []float32) int {
	best, bestD := 0, float32(-1)
	for i, d := range dists {
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func copy32(dst, src []float32) { copy(dst, src) }
