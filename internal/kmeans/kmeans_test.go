package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// blobs generates n points around k well-separated centers.
func blobs(r *rand.Rand, n, k, d int, spread float64) ([][]float32, []int) {
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = make([]float64, d)
		for j := range centers[i] {
			centers[i][j] = float64(i*20) + r.NormFloat64()
		}
	}
	data := make([][]float32, n)
	labels := make([]int, n)
	for i := range data {
		c := i % k
		labels[i] = c
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(centers[c][j] + spread*r.NormFloat64())
		}
		data[i] = row
	}
	return data, labels
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{K: 2}); err == nil {
		t.Fatal("expected empty-data error")
	}
	data := [][]float32{{1, 2}, {3, 4}}
	if _, err := Train(store.MustFromRows(data), Config{K: 0}); err == nil {
		t.Fatal("expected K<1 error")
	}
	if _, err := Train(store.MustFromRows(data), Config{K: 3}); err == nil {
		t.Fatal("expected K>n error")
	}
	if _, err := store.FromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestTrainSeparatedBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data, labels := blobs(r, 600, 3, 8, 0.3)
	res, err := Train(store.MustFromRows(data), Config{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// All points with the same true label must share a cluster, and
	// different labels must differ (well-separated blobs).
	labelToCluster := map[int]int{}
	for i := range data {
		c := res.Assign[i]
		if prev, ok := labelToCluster[labels[i]]; ok {
			if prev != c {
				t.Fatalf("label %d split across clusters %d and %d", labels[i], prev, c)
			}
		} else {
			labelToCluster[labels[i]] = c
		}
	}
	if len(labelToCluster) != 3 {
		t.Fatalf("expected 3 distinct clusters, got %d", len(labelToCluster))
	}
}

func TestTrainInertiaDecreasesVsK1(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data, _ := blobs(r, 300, 4, 6, 0.5)
	r1, err := Train(store.MustFromRows(data), Config{K: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Train(store.MustFromRows(data), Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Inertia >= r1.Inertia {
		t.Fatalf("K=4 inertia %v should beat K=1 inertia %v", r4.Inertia, r1.Inertia)
	}
}

func TestTrainDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data, _ := blobs(r, 200, 3, 4, 0.4)
	a, err := Train(store.MustFromRows(data), Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(store.MustFromRows(data), Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give identical assignment")
		}
	}
}

// Property: every point is assigned to its truly nearest centroid after
// training (assignment consistency invariant).
func TestAssignmentConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(100)
		k := 1 + r.Intn(5)
		data := make([][]float32, n)
		for i := range data {
			row := make([]float32, 4)
			for j := range row {
				row[j] = float32(r.NormFloat64())
			}
			data[i] = row
		}
		res, err := Train(store.MustFromRows(data), Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for i, row := range data {
			want, _ := NearestCentroid(res.Centroids, row)
			got := res.Assign[i]
			// Ties are possible; accept if distances are equal.
			if got != want {
				dw := vec.L2Sq(row, res.Centroids.Row(want))
				dg := vec.L2Sq(row, res.Centroids.Row(got))
				if dg != dw {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: cluster sizes sum to n.
func TestSizesSumToN(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(80)
		k := 1 + r.Intn(6)
		data := make([][]float32, n)
		for i := range data {
			data[i] = []float32{float32(r.NormFloat64()), float32(r.NormFloat64())}
		}
		res, err := Train(store.MustFromRows(data), Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		total := 0
		for _, s := range res.Sizes {
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNearestCentroids(t *testing.T) {
	centroids := store.MustFromRows([][]float32{{0, 0}, {10, 0}, {0, 10}, {10, 10}})
	q := []float32{1, 1}
	got := NearestCentroids(centroids, q, 2)
	if len(got) != 2 || got[0] != 0 {
		t.Fatalf("NearestCentroids = %v", got)
	}
	// nprobe larger than K clamps.
	all := NearestCentroids(centroids, q, 99)
	if len(all) != 4 {
		t.Fatalf("clamped len = %d", len(all))
	}
	// Ascending order of distance.
	prev := float32(-1)
	for _, k := range all {
		d := vec.L2Sq(q, centroids.Row(k))
		if d < prev {
			t.Fatal("NearestCentroids not ascending")
		}
		prev = d
	}
}

func TestDuplicatePointsDoNotCrash(t *testing.T) {
	data := make([][]float32, 50)
	for i := range data {
		data[i] = []float32{1, 2, 3}
	}
	res, err := Train(store.MustFromRows(data), Config{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Inertia) {
		t.Fatal("NaN inertia on duplicate data")
	}
}

func TestSingleWorker(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data, _ := blobs(r, 100, 2, 4, 0.3)
	res, err := Train(store.MustFromRows(data), Config{K: 2, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows() != 2 {
		t.Fatal("wrong centroid count")
	}
}

func TestNearestCentroidsDegenerateDistances(t *testing.T) {
	centroids := store.MustFromRows([][]float32{{0, 0}, {10, 0}, {0, 10}})
	// A query whose squared distances all overflow to +Inf must still
	// yield a valid, duplicate-free probe order instead of index -1.
	huge := []float32{3e38, 3e38}
	got := NearestCentroids(centroids, huge, 3)
	if len(got) != 3 {
		t.Fatalf("probe count = %d", len(got))
	}
	seen := map[int]bool{}
	for _, c := range got {
		if c < 0 || c >= 3 || seen[c] {
			t.Fatalf("invalid probe order %v", got)
		}
		seen[c] = true
	}
	// Same for a NaN-containing query.
	nan := []float32{float32(math.NaN()), 1}
	got = NearestCentroids(centroids, nan, 2)
	for _, c := range got {
		if c < 0 || c >= 3 {
			t.Fatalf("NaN query produced probe %d", c)
		}
	}
}
