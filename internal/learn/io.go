package learn

import (
	"errors"

	"resinfer/internal/persist"
)

const clfMagic = "RICLF1"

// Encode writes the classifier to w.
func (c *Classifier) Encode(w *persist.Writer) {
	w.Magic(clfMagic)
	w.F64s(c.W)
	w.F64(c.B)
	w.F64s(c.Mean)
	w.F64s(c.Std)
}

// Decode reads a classifier previously written by Encode.
func Decode(r *persist.Reader) (*Classifier, error) {
	r.Magic(clfMagic)
	c := &Classifier{
		W: r.F64s(),
	}
	c.B = r.F64()
	c.Mean = r.F64s()
	c.Std = r.F64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(c.W) == 0 || len(c.Mean) != len(c.W) || len(c.Std) != len(c.W) {
		return nil, errors.New("learn: corrupt encoded classifier")
	}
	return c, nil
}
