// Package learn implements the linear classifier of §V: logistic
// regression trained with stochastic gradient descent on binary
// cross-entropy loss, plus the paper's adaptive decision-boundary
// adjustment, which shifts the intercept until a target recall on label-0
// (keep) examples is met. The classifier converts an arbitrary approximate
// distance into a pruning rule: label 1 means dis > τ (prune), label 0
// means dis ≤ τ (keep).
package learn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls training.
type Config struct {
	Epochs       int     // SGD passes over the data; default 30
	LearningRate float64 // default 0.1
	L2           float64 // ridge penalty; default 1e-6
	Seed         int64
	// TargetRecall0 is the required recall on label-0 examples after the
	// boundary adjustment (the paper's r, default 0.995). Zero disables
	// the adjustment.
	TargetRecall0 float64
}

// Classifier is a trained linear model over standardized features:
// score(x) = w·((x-mean)/std) + b, predicted label = 1 iff score > 0.
type Classifier struct {
	W    []float64
	B    float64
	Mean []float64
	Std  []float64
}

// Train fits a logistic-regression classifier on features X (rows) and
// labels y ∈ {0, 1}. Features are standardized internally.
func Train(x [][]float64, y []int, cfg Config) (*Classifier, error) {
	if len(x) == 0 || len(x[0]) == 0 {
		return nil, errors.New("learn: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("learn: %d rows vs %d labels", len(x), len(y))
	}
	dim := len(x[0])
	var n0, n1 int
	for i, row := range x {
		if len(row) != dim {
			return nil, errors.New("learn: ragged features")
		}
		switch y[i] {
		case 0:
			n0++
		case 1:
			n1++
		default:
			return nil, fmt.Errorf("learn: label %d not in {0,1}", y[i])
		}
	}
	if n0 == 0 || n1 == 0 {
		return nil, errors.New("learn: training set needs both classes")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.L2 < 0 {
		cfg.L2 = 0
	}

	c := &Classifier{
		W:    make([]float64, dim),
		Mean: make([]float64, dim),
		Std:  make([]float64, dim),
	}
	// Standardization statistics.
	for _, row := range x {
		for j, v := range row {
			c.Mean[j] += v
		}
	}
	for j := range c.Mean {
		c.Mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			d := v - c.Mean[j]
			c.Std[j] += d * d
		}
	}
	for j := range c.Std {
		c.Std[j] = math.Sqrt(c.Std[j] / float64(len(x)))
		if c.Std[j] < 1e-12 {
			c.Std[j] = 1 // constant feature: no scaling
		}
	}

	// SGD over BCE loss with per-epoch shuffling and 1/sqrt(t) decay.
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(x))
	feat := make([]float64, dim)
	step := cfg.LearningRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := step / math.Sqrt(float64(epoch+1))
		for _, i := range order {
			row := x[i]
			for j, v := range row {
				feat[j] = (v - c.Mean[j]) / c.Std[j]
			}
			z := c.B
			for j, v := range feat {
				z += c.W[j] * v
			}
			p := sigmoid(z)
			g := p - float64(y[i]) // dBCE/dz
			for j, v := range feat {
				c.W[j] -= lr * (g*v + cfg.L2*c.W[j])
			}
			c.B -= lr * g
		}
	}

	if cfg.TargetRecall0 > 0 {
		if err := c.AdjustBoundary(x, y, cfg.TargetRecall0); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Score returns the decision value w·standardize(x) + b; label 1 (prune)
// is predicted when the score is positive.
func (c *Classifier) Score(x []float64) float64 {
	z := c.B
	for j, v := range x {
		z += c.W[j] * (v - c.Mean[j]) / c.Std[j]
	}
	return z
}

// Predict returns the predicted label for x.
func (c *Classifier) Predict(x []float64) int {
	if c.Score(x) > 0 {
		return 1
	}
	return 0
}

// Recall0 returns the fraction of label-0 rows predicted 0 — the safety
// metric the boundary adjustment controls (a label-0 example predicted 1
// is a wrongly pruned true neighbor).
func (c *Classifier) Recall0(x [][]float64, y []int) float64 {
	var n0, ok0 int
	for i, row := range x {
		if y[i] != 0 {
			continue
		}
		n0++
		if c.Predict(row) == 0 {
			ok0++
		}
	}
	if n0 == 0 {
		return 1
	}
	return float64(ok0) / float64(n0)
}

// Recall1 returns the fraction of label-1 rows predicted 1 — the pruning
// power retained after adjustment.
func (c *Classifier) Recall1(x [][]float64, y []int) float64 {
	var n1, ok1 int
	for i, row := range x {
		if y[i] != 1 {
			continue
		}
		n1++
		if c.Predict(row) == 1 {
			ok1++
		}
	}
	if n1 == 0 {
		return 1
	}
	return float64(ok1) / float64(n1)
}

// AdjustBoundary shifts the intercept B so that Recall0 on the given set is
// at least target while pruning as aggressively as possible. §V formulates
// this as a binary search on the shifted intercept β'; shifting until
// exactly the (1-target) quantile of label-0 scores sits at the boundary is
// the same fixed point, computed here directly from the sorted label-0
// scores.
func (c *Classifier) AdjustBoundary(x [][]float64, y []int, target float64) error {
	if target <= 0 || target > 1 {
		return fmt.Errorf("learn: target recall %v outside (0,1]", target)
	}
	scores0 := make([]float64, 0, len(x))
	for i, row := range x {
		if y[i] == 0 {
			scores0 = append(scores0, c.Score(row))
		}
	}
	if len(scores0) == 0 {
		return errors.New("learn: no label-0 examples to calibrate on")
	}
	sort.Float64s(scores0)
	// We need at least ceil(target*n0) label-0 scores <= 0 after the
	// shift. Place the boundary just above the k-th order statistic.
	k := int(math.Ceil(target*float64(len(scores0)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(scores0) {
		k = len(scores0) - 1
	}
	shift := scores0[k]
	if shift > 0 {
		// Move boundary up: scores at or below scores0[k] become <= 0.
		c.B -= shift + 1e-12
	} else {
		// The model is already conservative enough; pull the boundary
		// down toward the quantile to regain pruning power.
		c.B -= shift + 1e-12
	}
	return nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
