package learn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// separable2D builds a linearly separable 2-feature problem with the given
// margin between the classes.
func separable2D(r *rand.Rand, n int, margin float64) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		lab := i % 2
		base := -margin
		if lab == 1 {
			base = margin
		}
		x[i] = []float64{base + 0.3*r.NormFloat64(), r.NormFloat64()}
		y[i] = lab
	}
	return x, y
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, Config{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{0, 2}, Config{}); err == nil {
		t.Fatal("expected bad-label error")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{0, 0}, Config{}); err == nil {
		t.Fatal("expected one-class error")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{0, 1}, Config{}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestTrainSeparable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x, y := separable2D(r, 2000, 2.0)
	c, err := Train(x, y, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if c.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.98 {
		t.Fatalf("accuracy %v on separable data", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x, y := separable2D(r, 400, 1.0)
	a, err := Train(x, y, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Train(x, y, Config{Seed: 3})
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("same seed must give identical weights")
		}
	}
	if a.B != b.B {
		t.Fatal("same seed must give identical bias")
	}
}

func TestAdjustBoundaryMeetsTarget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Overlapping classes: unadjusted model will misclassify some label-0.
	x := make([][]float64, 4000)
	y := make([]int, 4000)
	for i := range x {
		lab := i % 2
		center := -0.5
		if lab == 1 {
			center = 0.5
		}
		x[i] = []float64{center + r.NormFloat64()}
		y[i] = lab
	}
	for _, target := range []float64{0.9, 0.99, 0.999} {
		c, err := Train(x, y, Config{Seed: 5, TargetRecall0: target})
		if err != nil {
			t.Fatal(err)
		}
		got := c.Recall0(x, y)
		if got < target {
			t.Errorf("target %v: recall0 = %v", target, got)
		}
	}
}

func TestAdjustBoundaryTradesPruningPower(t *testing.T) {
	// Higher recall targets must not increase label-1 recall (pruning
	// power is monotonically sacrificed).
	r := rand.New(rand.NewSource(4))
	x := make([][]float64, 3000)
	y := make([]int, 3000)
	for i := range x {
		lab := i % 2
		center := -0.4
		if lab == 1 {
			center = 0.4
		}
		x[i] = []float64{center + r.NormFloat64()}
		y[i] = lab
	}
	base, err := Train(x, y, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.1
	for _, target := range []float64{0.9, 0.99, 0.999} {
		c := &Classifier{W: append([]float64(nil), base.W...), B: base.B,
			Mean: base.Mean, Std: base.Std}
		if err := c.AdjustBoundary(x, y, target); err != nil {
			t.Fatal(err)
		}
		r1 := c.Recall1(x, y)
		if r1 > prev+1e-9 {
			t.Fatalf("recall1 %v increased while tightening target %v", r1, target)
		}
		prev = r1
	}
}

func TestAdjustBoundaryErrors(t *testing.T) {
	c := &Classifier{W: []float64{1}, Mean: []float64{0}, Std: []float64{1}}
	if err := c.AdjustBoundary([][]float64{{1}}, []int{1}, 0.99); err == nil {
		t.Fatal("expected no-label-0 error")
	}
	if err := c.AdjustBoundary([][]float64{{1}}, []int{0}, 1.5); err == nil {
		t.Fatal("expected target range error")
	}
}

func TestRecallEdgeCases(t *testing.T) {
	c := &Classifier{W: []float64{1}, Mean: []float64{0}, Std: []float64{1}}
	if c.Recall0(nil, nil) != 1 || c.Recall1(nil, nil) != 1 {
		t.Fatal("empty recalls default to 1")
	}
}

func TestConstantFeatureDoesNotNaN(t *testing.T) {
	x := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []int{0, 0, 1, 1}
	c, err := Train(x, y, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(c.Score([]float64{2.5, 5})) {
		t.Fatal("constant feature produced NaN score")
	}
}

// Property: Score is monotone in a feature with positive weight (sanity of
// the standardized linear form).
func TestScoreLinearity(t *testing.T) {
	c := &Classifier{
		W:    []float64{2, -1},
		B:    0.5,
		Mean: []float64{1, 1},
		Std:  []float64{2, 4},
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			return true // avoid float cancellation at extreme magnitudes
		}
		s1 := c.Score([]float64{a, b})
		s2 := c.Score([]float64{a + 1, b})
		// Weight 2 over std 2 → slope exactly 1 in feature 0.
		return math.Abs((s2-s1)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if s := sigmoid(100); s <= 0.999 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := sigmoid(-100); s >= 0.001 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
	// Numerical stability at extremes.
	if math.IsNaN(sigmoid(-1000)) || math.IsNaN(sigmoid(1000)) {
		t.Fatal("sigmoid NaN at extremes")
	}
}
