package matrix

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix a,
// returning eigenvalues in descending order and the corresponding
// eigenvectors as the ROWS of the returned matrix (so the result is
// directly usable as a rotation: y = V * x projects x onto the
// eigenbasis, with row 0 the leading principal direction).
//
// The implementation is the classic two-stage dense symmetric solver:
// Householder reduction to tridiagonal form followed by implicit-shift QL
// iteration, O(n^3) overall — fast enough for the up-to-960-dimensional
// covariance matrices of the paper's datasets.
func EigenSym(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("matrix: EigenSym needs a square matrix")
	}
	n := a.Rows
	// Work on a copy; z accumulates the orthogonal transform.
	z := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := tqli(d, e, z); err != nil {
		return nil, nil, err
	}
	// z currently holds eigenvectors in its COLUMNS; sort descending by
	// eigenvalue and emit row-major eigenvectors.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return d[idx[x]] > d[idx[y]] })
	vals = make([]float64, n)
	vecs = New(n, n)
	for r, k := range idx {
		vals[r] = d[k]
		row := vecs.Row(r)
		for i := 0; i < n; i++ {
			row[i] = z.At(i, k)
		}
	}
	return vals, vecs, nil
}

// tred2 reduces the symmetric matrix held in z to tridiagonal form,
// accumulating the transformation in z. On return d holds the diagonal and
// e the subdiagonal (e[0] unused). Adapted from the standard Householder
// algorithm (Numerical Recipes §11.2 / EISPACK TRED2).
func tred2(z *Matrix, d, e []float64) {
	n := z.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					z.Set(i, k, z.At(i, k)/scale)
					h += z.At(i, k) * z.At(i, k)
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
}

// tqli performs implicit-shift QL iteration on the tridiagonal matrix
// (d, e), updating the eigenvector accumulator z. Eigenvalues land in d.
// The off-diagonal deflation test uses a relative tolerance rather than
// exact float64 rounding — the classic formulation compares in single
// precision for the same reason; demanding full double-precision
// cancellation can spin past any iteration cap on large matrices.
func tqli(d, e []float64, z *Matrix) error {
	const tol = 1e-14
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	// Absolute deflation floor: covariance spectra can span dozens of
	// orders of magnitude (strongly decayed variance profiles), in which
	// case a purely relative test on the tiny tail diagonal entries never
	// fires. Off-diagonals below tol·‖T‖ are numerically zero at the
	// matrix's dominant scale.
	var anorm float64
	for i := 0; i < n; i++ {
		if v := math.Abs(d[i]) + math.Abs(e[i]); v > anorm {
			anorm = v
		}
	}
	floor := tol * anorm
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter >= 100 {
				return errors.New("matrix: tqli failed to converge")
			}
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= tol*dd || math.Abs(e[m]) <= floor {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			broke := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					broke = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < z.Rows; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if broke {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// SVDSquare computes the singular value decomposition A = U diag(s) V^T of
// a square matrix, via the eigendecomposition of A^T A. Singular values are
// returned in descending order; U and V have the singular vectors as
// COLUMNS. Singular values below rankTol times the largest are treated as
// zero and their U columns are completed to an orthonormal basis.
//
// The OPQ Procrustes step needs exactly this: R = U V^T minimizes
// ||X R - Y||_F over orthogonal R when A = X^T Y.
func SVDSquare(a *Matrix) (u *Matrix, s []float64, v *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, nil, errors.New("matrix: SVDSquare needs a square matrix")
	}
	n := a.Rows
	at := a.T()
	ata, err := Mul(at, a)
	if err != nil {
		return nil, nil, nil, err
	}
	evals, evecsRows, err := EigenSym(ata)
	if err != nil {
		return nil, nil, nil, err
	}
	s = make([]float64, n)
	v = evecsRows.T() // columns are eigenvectors of A^T A = right singular vectors
	for i := range evals {
		if evals[i] < 0 {
			evals[i] = 0 // clamp tiny negative rounding
		}
		s[i] = math.Sqrt(evals[i])
	}
	const rankTol = 1e-10
	u = New(n, n)
	smax := s[0]
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		if smax > 0 && s[j] > rankTol*smax {
			// u_j = A v_j / s_j
			for i := 0; i < n; i++ {
				var acc float64
				arow := a.Row(i)
				for k := 0; k < n; k++ {
					acc += arow[k] * v.At(k, j)
				}
				col[i] = acc / s[j]
			}
		} else {
			// Null direction: fill with a basis vector; fixed below by
			// re-orthonormalizing U's columns.
			for i := range col {
				col[i] = 0
			}
			col[j%n] = 1
		}
		for i := 0; i < n; i++ {
			u.Set(i, j, col[i])
		}
	}
	// Re-orthonormalize U's columns (cheap, and handles the null-space
	// completion above). Work on the transpose so GramSchmidt sees rows.
	ut := u.T()
	if err := GramSchmidt(ut); err != nil {
		return nil, nil, nil, err
	}
	u = ut.T()
	return u, s, v, nil
}

// Procrustes returns the orthogonal matrix R (d x d) minimizing
// ||X R^T - Y||_F given the cross-covariance C = Σ x_i y_i^T, i.e.
// R = V U^T where C = U diag(s) V^T. In OPQ's alternating optimization, X
// holds data rows and Y the decoded (reconstructed) rows.
func Procrustes(crossCov *Matrix) (*Matrix, error) {
	u, _, v, err := SVDSquare(crossCov)
	if err != nil {
		return nil, err
	}
	return Mul(v, u.T())
}
