package matrix

import (
	"errors"

	"resinfer/internal/persist"
)

const matMagic = "RIMAT1"

// Encode writes m to w.
func (m *Matrix) Encode(w *persist.Writer) {
	w.Magic(matMagic)
	w.Int(m.Rows)
	w.Int(m.Cols)
	w.F64s(m.Data)
}

// Decode reads a matrix previously written by Encode.
func Decode(r *persist.Reader) (*Matrix, error) {
	r.Magic(matMagic)
	rows := r.Int()
	cols := r.Int()
	data := r.F64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rows <= 0 || cols <= 0 || len(data) != rows*cols {
		return nil, errors.New("matrix: corrupt encoded matrix")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}
