package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x0 matrix")
		}
	}()
	New(0, 0)
}

func TestIdentityApply(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y, err := id.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity apply changed vector: %v", y)
		}
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged-row error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := Mul(a, New(3, 2)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatrix(r, 1+r.Intn(10), 1+r.Intn(10))
		tt := m.T().T()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := randomMatrix(r, 7, 5)
	x := make([]float64, 5)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	y, err := m.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	xm := New(5, 1)
	copy(xm.Data, x)
	ym, err := Mul(m, xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-ym.At(i, 0)) > 1e-12 {
			t.Fatalf("Apply disagrees with Mul at %d", i)
		}
	}
	if _, err := m.Apply(make([]float64, 4)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestApplyF32(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	m := randomMatrix(r, 6, 6)
	x32 := make([]float32, 6)
	x64 := make([]float64, 6)
	for i := range x32 {
		v := r.NormFloat64()
		x32[i] = float32(v)
		x64[i] = float64(float32(v))
	}
	y32, err := m.ApplyF32(x32)
	if err != nil {
		t.Fatal(err)
	}
	y64, _ := m.Apply(x64)
	for i := range y32 {
		if math.Abs(float64(y32[i])-y64[i]) > 1e-4 {
			t.Fatalf("ApplyF32 mismatch at %d: %v vs %v", i, y32[i], y64[i])
		}
	}
}

func TestRandomOrthogonal(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 8, 33} {
		m := RandomOrthogonal(n, r)
		if !m.IsOrthonormal(1e-9) {
			t.Fatalf("RandomOrthogonal(%d) not orthonormal", n)
		}
	}
}

// Property: orthogonal rotation preserves Euclidean norms (the basis of
// every projection method in the paper).
func TestRotationPreservesNorm(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := RandomOrthogonal(24, r)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := make([]float64, 24)
		for i := range x {
			x[i] = rr.NormFloat64()
		}
		y, err := m.Apply(x)
		if err != nil {
			return false
		}
		var nx, ny float64
		for i := range x {
			nx += x[i] * x[i]
			ny += y[i] * y[i]
		}
		return math.Abs(nx-ny) < 1e-8*(1+nx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGramSchmidtRankDeficient(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 0}, {2, 0}})
	if err := GramSchmidt(m); err == nil {
		t.Fatal("expected rank-deficiency error")
	}
}

func TestCovarianceKnown(t *testing.T) {
	data := [][]float32{{1, 0}, {-1, 0}, {0, 2}, {0, -2}}
	cov, mean, err := Covariance(data)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 0 || mean[1] != 0 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(cov.At(0, 0)-0.5) > 1e-9 || math.Abs(cov.At(1, 1)-2) > 1e-9 {
		t.Fatalf("cov diag = %v %v", cov.At(0, 0), cov.At(1, 1))
	}
	if math.Abs(cov.At(0, 1)) > 1e-9 || math.Abs(cov.At(1, 0)) > 1e-9 {
		t.Fatal("off-diagonal should be 0")
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, _, err := Covariance(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, _, err := Covariance([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	if !vecs.IsOrthonormal(1e-9) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 5, 17, 40} {
		// Build a random symmetric matrix.
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Descending order.
		for i := 0; i+1 < n; i++ {
			if vals[i] < vals[i+1] {
				t.Fatalf("n=%d eigenvalues not descending: %v", n, vals)
			}
		}
		if !vecs.IsOrthonormal(1e-8) {
			t.Fatalf("n=%d eigenvectors not orthonormal", n)
		}
		// Check A v = lambda v for each eigenpair (rows of vecs).
		for k := 0; k < n; k++ {
			v := vecs.Row(k)
			av, _ := a.Apply(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[k]*v[i]) > 1e-7*(1+math.Abs(vals[k])) {
					t.Fatalf("n=%d eigenpair %d fails A v = lambda v", n, k)
				}
			}
		}
	}
}

func TestEigenSymRejectsNonSquare(t *testing.T) {
	if _, _, err := EigenSym(New(2, 3)); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestSVDSquareReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{2, 6, 20} {
		a := randomMatrix(r, n, n)
		u, s, v, err := SVDSquare(a)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct A = U diag(s) V^T.
		us := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				us.Set(i, j, u.At(i, j)*s[j])
			}
		}
		rec, err := Mul(us, v.T())
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-6 {
				t.Fatalf("n=%d SVD reconstruction error %v at %d",
					n, rec.Data[i]-a.Data[i], i)
			}
		}
		// Singular values descending and non-negative.
		for i := 0; i+1 < n; i++ {
			if s[i] < s[i+1] || s[i+1] < 0 {
				t.Fatalf("singular values not sorted: %v", s)
			}
		}
	}
}

func TestSVDSquareSingular(t *testing.T) {
	// Rank-1 matrix: SVD must still return orthonormal factors.
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	u, s, v, err := SVDSquare(a)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] > 1e-8 {
		t.Fatalf("second singular value should vanish: %v", s)
	}
	if !u.T().IsOrthonormal(1e-8) || !v.T().IsOrthonormal(1e-8) {
		t.Fatal("factors not orthonormal for singular input")
	}
}

func TestProcrustesRecoversRotation(t *testing.T) {
	// If Y = X R0^T exactly, Procrustes on C = X^T Y must return R ≈ R0.
	r := rand.New(rand.NewSource(21))
	n, d := 200, 8
	r0 := RandomOrthogonal(d, r)
	x := randomMatrix(r, n, d)
	y, err := Mul(x, r0.T())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Mul(x.T(), y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Procrustes(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-r0.Data[i]) > 1e-6 {
			t.Fatalf("Procrustes failed to recover rotation at %d: %v vs %v",
				i, got.Data[i], r0.Data[i])
		}
	}
}

func BenchmarkEigenSym128(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 128
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(a); err != nil {
			b.Fatal(err)
		}
	}
}
