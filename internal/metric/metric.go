// Package metric implements the reductions of §II-A: cosine similarity
// and (bounded) maximum inner product search transform into Euclidean
// nearest-neighbor search, so every distance computation method in this
// library applies to those metrics too.
//
//   - Cosine: normalize data and queries to unit length; then
//     ‖x−q‖² = 2 − 2·cos(x,q), a monotone decreasing map — the Euclidean
//     KNN of the normalized vectors are exactly the cosine KNN.
//   - Inner product: append one coordinate. Data rows x with norms
//     ‖x‖ ≤ R become (x, sqrt(R²−‖x‖²)); the query becomes (q, 0). Then
//     ‖x̂−q̂‖² = ‖q‖² + R² − 2⟨x,q⟩, monotone decreasing in ⟨x,q⟩.
package metric

import (
	"errors"
	"math"

	"resinfer/internal/vec"
)

// NormalizeForCosine returns unit-normalized copies of rows. Rows with
// zero norm are rejected: cosine similarity is undefined for them.
func NormalizeForCosine(rows [][]float32) ([][]float32, error) {
	out := make([][]float32, len(rows))
	for i, row := range rows {
		n := vec.Norm(row)
		if n == 0 {
			return nil, errors.New("metric: zero vector has no cosine direction")
		}
		c := vec.Clone(row)
		vec.Scale(c, 1/n)
		out[i] = c
	}
	return out, nil
}

// NormalizeForCosineInto writes the unit-normalized q into dst (same
// length) and returns dst, allocating nothing. A zero vector is rejected.
func NormalizeForCosineInto(dst, q []float32) ([]float32, error) {
	if len(dst) != len(q) {
		return nil, errors.New("metric: normalize scratch length mismatch")
	}
	n := vec.Norm(q)
	if n == 0 {
		return nil, errors.New("metric: zero vector has no cosine direction")
	}
	inv := 1 / n
	for i, v := range q {
		dst[i] = v * inv
	}
	return dst, nil
}

// CosineFromSqDist converts a squared Euclidean distance between unit
// vectors back to the cosine similarity.
func CosineFromSqDist(d float32) float32 {
	return 1 - d/2
}

// IPTransform holds the augmentation parameters of the inner-product
// reduction.
type IPTransform struct {
	Dim    int     // original dimensionality
	MaxSq  float64 // R²: the maximum squared norm among the data rows
	QNorms bool    // reserved for symmetric variants
}

// NewIPTransform scans the data rows and returns the transform plus the
// augmented rows (x, sqrt(R²−‖x‖²)).
func NewIPTransform(rows [][]float32) (*IPTransform, [][]float32, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, nil, errors.New("metric: empty data")
	}
	dim := len(rows[0])
	var maxSq float64
	for _, row := range rows {
		if len(row) != dim {
			return nil, nil, errors.New("metric: ragged data")
		}
		if n := float64(vec.NormSq(row)); n > maxSq {
			maxSq = n
		}
	}
	t := &IPTransform{Dim: dim, MaxSq: maxSq}
	out := make([][]float32, len(rows))
	for i, row := range rows {
		aug := make([]float32, dim+1)
		copy(aug, row)
		rem := maxSq - float64(vec.NormSq(row))
		if rem < 0 {
			rem = 0
		}
		aug[dim] = float32(math.Sqrt(rem))
		out[i] = aug
	}
	return t, out, nil
}

// Query augments a query vector with a zero coordinate.
func (t *IPTransform) Query(q []float32) ([]float32, error) {
	aug := make([]float32, t.Dim+1)
	return t.QueryInto(aug, q)
}

// QueryInto writes the augmented query into dst (length Dim+1) and
// returns dst, allocating nothing.
func (t *IPTransform) QueryInto(dst, q []float32) ([]float32, error) {
	if len(q) != t.Dim {
		return nil, errors.New("metric: query dimension mismatch")
	}
	if len(dst) != t.Dim+1 {
		return nil, errors.New("metric: query scratch length mismatch")
	}
	copy(dst, q)
	dst[t.Dim] = 0
	return dst, nil
}

// IPFromSqDist recovers the inner product ⟨x, q⟩ from the augmented
// squared distance and the original query.
func (t *IPTransform) IPFromSqDist(d float32, q []float32) float32 {
	// ‖x̂−q̂‖² = ‖q‖² + R² − 2⟨x,q⟩  ⇒  ⟨x,q⟩ = (‖q‖² + R² − d)/2.
	return (vec.NormSq(q) + float32(t.MaxSq) - d) / 2
}
