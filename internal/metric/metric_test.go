package metric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"resinfer/internal/vec"
)

func randRows(r *rand.Rand, n, d int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(r.NormFloat64())
		}
		rows[i] = row
	}
	return rows
}

func TestNormalizeForCosine(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rows := randRows(r, 50, 8)
	norm, err := NormalizeForCosine(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range norm {
		if math.Abs(float64(vec.Norm(row))-1) > 1e-5 {
			t.Fatalf("row %d not unit norm", i)
		}
	}
	// Input untouched.
	if vec.Norm(rows[0]) == 1 {
		t.Skip("unlikely: input already unit")
	}
	if _, err := NormalizeForCosine([][]float32{{0, 0}}); err == nil {
		t.Fatal("expected zero-vector error")
	}
}

// Property: Euclidean KNN order on normalized vectors equals descending
// cosine-similarity order.
func TestCosineOrderEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 30, 6)
		q := randRows(r, 1, 6)[0]
		norm, err := NormalizeForCosine(rows)
		if err != nil {
			return true // zero vectors: skip
		}
		nq, err := NormalizeForCosine([][]float32{q})
		if err != nil {
			return true
		}
		type pair struct {
			id  int
			d   float64
			cos float64
		}
		ps := make([]pair, len(rows))
		for i := range rows {
			ps[i] = pair{
				id:  i,
				d:   vec.L2Sq64(nq[0], norm[i]),
				cos: vec.Dot64(nq[0], norm[i]),
			}
		}
		byDist := append([]pair(nil), ps...)
		sort.Slice(byDist, func(a, b int) bool { return byDist[a].d < byDist[b].d })
		byCos := append([]pair(nil), ps...)
		sort.Slice(byCos, func(a, b int) bool { return byCos[a].cos > byCos[b].cos })
		for i := range byDist {
			if byDist[i].id != byCos[i].id {
				// Ties can legitimately reorder; accept when values equal.
				if math.Abs(byDist[i].cos-byCos[i].cos) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCosineFromSqDist(t *testing.T) {
	// Identical unit vectors: d=0 → cos=1. Opposite: d=4 → cos=-1.
	if CosineFromSqDist(0) != 1 {
		t.Fatal("cos(0)")
	}
	if CosineFromSqDist(4) != -1 {
		t.Fatal("cos(4)")
	}
	if CosineFromSqDist(2) != 0 {
		t.Fatal("cos(2)")
	}
}

func TestIPTransformErrors(t *testing.T) {
	if _, _, err := NewIPTransform(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, _, err := NewIPTransform([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestIPTransformAugmentedNorms(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	rows := randRows(r, 40, 5)
	tr, aug, err := NewIPTransform(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Every augmented row has norm exactly R.
	for i, row := range aug {
		if len(row) != 6 {
			t.Fatal("augmented dim")
		}
		if math.Abs(float64(vec.NormSq(row))-tr.MaxSq) > 1e-3*(1+tr.MaxSq) {
			t.Fatalf("row %d: augmented norm² %v, want %v", i, vec.NormSq(row), tr.MaxSq)
		}
	}
}

// Property: Euclidean order on augmented vectors equals descending
// inner-product order.
func TestIPOrderEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 25, 4)
		q := randRows(r, 1, 4)[0]
		tr, aug, err := NewIPTransform(rows)
		if err != nil {
			return false
		}
		aq, err := tr.Query(q)
		if err != nil {
			return false
		}
		type pair struct {
			id int
			d  float64
			ip float64
		}
		ps := make([]pair, len(rows))
		for i := range rows {
			ps[i] = pair{i, vec.L2Sq64(aq, aug[i]), vec.Dot64(q, rows[i])}
		}
		byDist := append([]pair(nil), ps...)
		sort.Slice(byDist, func(a, b int) bool { return byDist[a].d < byDist[b].d })
		byIP := append([]pair(nil), ps...)
		sort.Slice(byIP, func(a, b int) bool { return byIP[a].ip > byIP[b].ip })
		for i := range byDist {
			if byDist[i].id != byIP[i].id &&
				math.Abs(byDist[i].ip-byIP[i].ip) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIPRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rows := randRows(r, 20, 6)
	q := randRows(r, 1, 6)[0]
	tr, aug, err := NewIPTransform(rows)
	if err != nil {
		t.Fatal(err)
	}
	aq, _ := tr.Query(q)
	for i := range rows {
		d := vec.L2Sq(aq, aug[i])
		got := float64(tr.IPFromSqDist(d, q))
		want := vec.Dot64(q, rows[i])
		if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("row %d: recovered IP %v, want %v", i, got, want)
		}
	}
	if _, err := tr.Query(q[:2]); err == nil {
		t.Fatal("expected dim error")
	}
}
