package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observe is lock-free and allocation-free; quantiles are estimated by
// linear interpolation inside the winning bucket, so the error is
// bounded by the in-bucket distribution rather than the bucket width —
// the fix for the old log2 histogram whose quantiles were only exact to
// a factor of two.
type Histogram struct {
	bounds  []float64       // finite ascending upper bounds
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given finite ascending
// bucket upper bounds (an implicit +Inf bucket is appended). It panics
// on an empty or unsorted bound list — a registration-time programmer
// error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %g after %g",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// ExponentialBuckets returns count bounds starting at start, each
// factor times the previous — the standard shape for latency buckets.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns count bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		panic("obs: LinearBuckets needs count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value. It never allocates.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds (the Prometheus base unit).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// snapshot loads the bucket array once; every derived figure (count,
// quantiles, rendition) uses the same loaded values so they are
// mutually consistent even under concurrent Observe traffic.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	return h.Sum() / float64(total)
}

// Quantile estimates the p-th quantile (p in [0,1]) by linear
// interpolation inside the bucket containing the target rank, assuming
// a uniform in-bucket distribution. Observations in the +Inf overflow
// bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(p float64) float64 {
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	target := p * float64(total)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) >= target {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper bound to interpolate
				// toward; report the largest finite bound (a floor).
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - float64(prev)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// CountAtOrBelow returns, from one consistent snapshot, the number of
// observations that landed in buckets whose upper bound is <= le, the
// total observation count, and the effective bound actually used (the
// largest bucket bound <= le; NaN when le is below every bound, in
// which case below is 0). It is the primitive an SLO error-rate needs:
// "how many requests finished within the threshold".
func (h *Histogram) CountAtOrBelow(le float64) (below, total uint64, bound float64) {
	counts := h.snapshot()
	bound = math.NaN()
	for i, b := range h.bounds {
		if b <= le {
			below += counts[i]
			bound = b
		}
	}
	for _, c := range counts {
		total += c
	}
	return below, total, bound
}

// write renders the histogram: cumulative le buckets, _sum and _count.
// _count always equals the +Inf bucket because both derive from the
// same snapshot.
func (h *Histogram) write(w io.Writer, name, labels string) {
	counts := h.snapshot()
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		writeSample(w, name+"_bucket", joinLabels(labels, `le="`+formatFloat(bound)+`"`),
			fmt.Sprintf("%d", cum))
	}
	cum += counts[len(h.bounds)]
	writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), fmt.Sprintf("%d", cum))
	writeSample(w, name+"_sum", labels, formatFloat(h.Sum()))
	writeSample(w, name+"_count", labels, fmt.Sprintf("%d", cum))
}

// joinLabels appends extra to a pre-rendered label string.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}
