// Package obs is the serving-path observability substrate: a
// zero-dependency metrics registry (counters, gauges, fixed-bucket
// histograms with interpolated quantiles) rendered in Prometheus text
// exposition format, plus a lightweight per-request trace recorder
// (trace.go) and Go runtime metric registration (runtime.go).
//
// Design constraints, in order:
//
//  1. The hot path must stay allocation-free: Counter.Add, Gauge.Set
//     and Histogram.Observe are single atomic operations (plus a
//     binary search over a small fixed bound slice for histograms) and
//     never allocate.
//  2. Scrapes must be safe concurrently with traffic: every value is
//     read atomically; a scrape observes each sample at some point
//     within its own duration, and histogram renditions are internally
//     consistent (cumulative buckets, _count and _sum all derive from
//     one loaded snapshot of the bucket array).
//  3. Zero module dependencies: everything is stdlib.
//
// Metric families are fixed at registration time — the label sets this
// system needs (per-shard, per-endpoint) are known when the server
// starts, so there is no dynamic label interning on the request path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric at registration.
type Label struct {
	Name, Value string
}

// metricType is the Prometheus TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// collector is one registered metric instance (a family member).
type collector interface {
	// write renders the metric's samples. name is the family name and
	// labels the pre-rendered label pairs (without braces, "" if none).
	write(w io.Writer, name, labels string)
}

// familyEntry pairs a collector with its rendered labels.
type familyEntry struct {
	labels string
	c      collector
}

// family is all metrics sharing one name (and therefore one HELP/TYPE).
type family struct {
	name    string
	help    string
	typ     metricType
	entries []familyEntry
}

// Registry holds metric families and renders them as Prometheus text.
// Registration is expected at startup; it is nevertheless safe (and
// scrape-consistent) at any time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register adds c under name, creating the family on first use and
// enforcing one TYPE/HELP per name.
func (r *Registry) register(name, help string, typ metricType, labels []Label, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	f.entries = append(f.entries, familyEntry{labels: renderLabels(labels), c: c})
}

// Counter registers (or extends the family of) a monotonically
// increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, labels, c)
	return c
}

// Gauge registers a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, labels, g)
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeGauge, labels, gaugeFunc(fn))
}

// Histogram registers a fixed-bucket histogram. bounds are the finite
// ascending bucket upper bounds; an implicit +Inf bucket is appended.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, typeHistogram, labels, h)
	return h
}

// RegisterHistogram exports an existing histogram (built with
// NewHistogram and fed elsewhere) under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, typeHistogram, labels, h)
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	// Entry slices are append-only; snapshot the lengths so a concurrent
	// registration cannot tear the iteration.
	entries := make([][]familyEntry, len(fams))
	for i, f := range fams {
		entries[i] = f.entries[:len(f.entries):len(f.entries)]
	}
	r.mu.Unlock()

	var buf strings.Builder
	for i, f := range fams {
		fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.typ)
		for _, e := range entries[i] {
			e.c.write(&buf, f.name, e.labels)
		}
	}
	_, err := io.WriteString(w, buf.String())
	return err
}

// Counter is a monotonically increasing int64 counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, strconv.FormatInt(c.v.Load(), 10))
}

// Gauge is a settable float64 gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; contention on gauges is negligible here).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, formatFloat(g.Value()))
}

// gaugeFunc renders a scrape-time computed gauge.
type gaugeFunc func() float64

func (fn gaugeFunc) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, formatFloat(fn()))
}

// writeSample emits one `name{labels} value` line.
func writeSample(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	}
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels pre-renders `k="v",...` (sorted by name for a stable
// identity) at registration time so scrapes do no label work.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
