package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_depth", "Queue depth.", Label{"shard", "0"})
	g.Set(3.5)
	g.Add(-1.5)
	r.GaugeFunc("test_depth", "Queue depth.", func() float64 { return 7 }, Label{"shard", "1"})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 42\n",
		"# TYPE test_depth gauge\n",
		`test_depth{shard="0"} 2` + "\n",
		`test_depth{shard="1"} 7` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE per family even with two members.
	if strings.Count(out, "# TYPE test_depth gauge") != 1 {
		t.Errorf("family header duplicated:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("test_esc", "esc", Label{"v", "a\"b\\c\nd"}).Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_esc{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label missing; got:\n%s", b.String())
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	// All mass in the (1ms, 2ms] bucket: the old log2 histogram would
	// report its upper bound (2ms) for every quantile; interpolation
	// must spread estimates across the bucket.
	h := NewHistogram([]float64{0.001, 0.002, 0.004})
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 + 0.001*float64(i)/1000)
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.0013 || p50 > 0.0017 {
		t.Errorf("p50 = %v, want ~0.0015 (interpolated)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.0019 || p99 > 0.002 {
		t.Errorf("p99 = %v, want ~0.00199", p99)
	}
	if q := h.Quantile(0); q <= 0 || q > 0.0011 {
		t.Errorf("p0 = %v, want at the bucket floor", q)
	}
}

func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(1, 2, 10)) // 1..512
	// 100 obs in (1,2], 100 in (2,4].
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
		h.Observe(3)
	}
	if q := h.Quantile(0.25); q < 1 || q > 2 {
		t.Errorf("p25 = %v, want in (1,2]", q)
	}
	if q := h.Quantile(0.75); q < 2 || q > 4 {
		t.Errorf("p75 = %v, want in (2,4]", q)
	}
	if h.Count() != 200 {
		t.Errorf("count = %d, want 200", h.Count())
	}
	if math.Abs(h.Sum()-450) > 1e-6 {
		t.Errorf("sum = %v, want 450", h.Sum())
	}
	if m := h.Mean(); math.Abs(m-2.25) > 1e-9 {
		t.Errorf("mean = %v, want 2.25", m)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	if q := h.Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", q)
	}
	var b strings.Builder
	r := NewRegistry()
	r.register("test_h", "h", typeHistogram, nil, h)
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_h_bucket{le="1"} 0`,
		`test_h_bucket{le="2"} 0`,
		`test_h_bucket{le="+Inf"} 1`,
		"test_h_count 1",
		"test_h_sum 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram([]float64{1})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestTraceRecordsStagesAndShards(t *testing.T) {
	t0 := time.Now()
	tr := NewTrace()
	tr.ResetAt(t0)
	s1 := time.Now()
	time.Sleep(time.Millisecond)
	tr.End("decode", s1)
	tr.Shard(2, time.Now(), 5*time.Millisecond, 100, 40)
	tr.SetBatchSize(8)
	snap := tr.Snapshot()
	if len(snap.Stages) != 1 || snap.Stages[0].Name != "decode" {
		t.Fatalf("stages = %+v", snap.Stages)
	}
	if snap.Stages[0].Dur < time.Millisecond {
		t.Errorf("decode dur = %v, want >= 1ms", snap.Stages[0].Dur)
	}
	if len(snap.Shards) != 1 || snap.Shards[0].Shard != 2 ||
		snap.Shards[0].Comparisons != 100 || snap.Shards[0].Pruned != 40 {
		t.Fatalf("shards = %+v", snap.Shards)
	}
	if snap.Total < snap.Stages[0].Dur {
		t.Errorf("total %v < stage dur %v", snap.Total, snap.Stages[0].Dur)
	}

	// Reset keeps capacity, clears content.
	tr.ResetAt(time.Now())
	if snap2 := tr.Snapshot(); len(snap2.Stages) != 0 || len(snap2.Shards) != 0 || snap2.BatchSize != 0 {
		t.Fatalf("reset trace not empty: %+v", snap2)
	}
}

func TestTraceNilReceiverSafe(t *testing.T) {
	var tr *Trace
	tr.ResetAt(time.Now())
	tr.End("x", time.Now())
	tr.Shard(0, time.Now(), 0, 0, 0)
	tr.SetBatchSize(1)
	if snap := tr.Snapshot(); len(snap.Stages) != 0 {
		t.Fatal("nil trace snapshot not empty")
	}
}

// TestConcurrentObserveAndScrape is the -race guard: observations on
// every metric type concurrent with renders.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "c")
	g := r.Gauge("test_g", "g")
	h := r.Histogram("test_h_seconds", "h", ExponentialBuckets(1e-6, 2, 20))
	RegisterGoRuntime(r)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Inc()
			g.Add(1)
			h.Observe(0.001)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "test_h_seconds_count") {
			t.Fatal("scrape missing histogram count")
		}
	}
	close(stop)
	wg.Wait()

	// Internal consistency after the dust settles: +Inf == count.
	if h.Count() == 0 || c.Value() == 0 {
		t.Fatal("no traffic recorded")
	}
}
