package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterGoRuntime registers the go_* process metrics: goroutine
// count, heap figures and GC activity. runtime.ReadMemStats stops the
// world briefly, so one snapshot is shared by every memstats-backed
// gauge and refreshed at most once per second regardless of how many
// gauges a scrape reads.
func RegisterGoRuntime(r *Registry) {
	var (
		mu   sync.Mutex
		ms   runtime.MemStats
		last time.Time
	)
	mem := func(get func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			if time.Since(last) > time.Second || last.IsZero() {
				runtime.ReadMemStats(&ms)
				last = time.Now()
			}
			return get(&ms)
		}
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	r.GaugeFunc("go_gc_cycles", "Completed GC cycles.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.GaugeFunc("go_gc_pause_seconds", "Cumulative stop-the-world GC pause time.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
	r.GaugeFunc("go_gc_cpu_fraction", "Fraction of CPU time used by the GC since program start.",
		mem(func(m *runtime.MemStats) float64 { return m.GCCPUFraction }))
}
