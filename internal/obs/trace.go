package obs

import (
	"sync"
	"time"
)

// Stage is one named, timed step of a request pipeline. Start is the
// offset from the trace origin.
type Stage struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// ShardStage is one shard probe within the fan-out, with the work
// counters the shard reported.
type ShardStage struct {
	Shard       int
	Start       time.Duration
	Dur         time.Duration
	Comparisons int64
	Pruned      int64
}

// Trace records the per-stage timeline of one request: HTTP decode →
// admission-queue wait → shard fan-out → k-way merge → encode, plus a
// per-shard breakdown. It is designed for pooling: Reset keeps the
// accumulated slice capacity, so a pooled Trace records a whole request
// without allocating at steady state. All methods are safe on a nil
// receiver (no-ops), which keeps call sites branch-light, and safe for
// concurrent use (shard probes run in parallel).
type Trace struct {
	mu        sync.Mutex
	t0        time.Time
	stages    []Stage
	shards    []ShardStage
	batchSize int
}

// NewTrace returns a trace with its origin at now.
func NewTrace() *Trace {
	t := &Trace{}
	t.ResetAt(time.Now())
	return t
}

// ResetAt clears the trace and sets its origin, keeping slice capacity.
func (t *Trace) ResetAt(t0 time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.t0 = t0
	t.stages = t.stages[:0]
	t.shards = t.shards[:0]
	t.batchSize = 0
	t.mu.Unlock()
}

// End records a stage that started at start and ends now.
func (t *Trace) End(name string, start time.Time) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Start: start.Sub(t.t0), Dur: now.Sub(start)})
	t.mu.Unlock()
}

// Shard records one shard probe.
func (t *Trace) Shard(shard int, start time.Time, d time.Duration, comparisons, pruned int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shards = append(t.shards, ShardStage{
		Shard: shard, Start: start.Sub(t.t0), Dur: d,
		Comparisons: comparisons, Pruned: pruned,
	})
	t.mu.Unlock()
}

// SetBatchSize records how many queries shared the micro-batch this
// request rode in.
func (t *Trace) SetBatchSize(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.batchSize = n
	t.mu.Unlock()
}

// Snapshot is an immutable copy of a trace, safe to retain after the
// trace returns to its pool.
type Snapshot struct {
	Total     time.Duration
	BatchSize int
	Stages    []Stage
	Shards    []ShardStage
}

// Snapshot copies the recorded timeline; Total is the time from the
// trace origin to this call.
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		Total:     time.Since(t.t0),
		BatchSize: t.batchSize,
	}
	if len(t.stages) > 0 {
		s.Stages = append([]Stage(nil), t.stages...)
	}
	if len(t.shards) > 0 {
		s.Shards = append([]ShardStage(nil), t.shards...)
	}
	return s
}
