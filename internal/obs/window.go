package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Window is a sliding-window histogram estimator: the same fixed-bucket
// shape as Histogram, but observations age out after the window
// duration instead of accumulating forever. It is built from a ring of
// sub-window slots; the window advances by whole slots, so estimates
// cover between (slots-1)/slots and slots/slots of the nominal window.
//
// Unlike Histogram, Window is mutex-guarded: it is meant for low-rate
// off-path feeds (shadow quality measurements, not per-request
// latencies), where a mutex is simpler than per-slot atomics and the
// contention is negligible.
type Window struct {
	mu       sync.Mutex
	bounds   []float64 // finite ascending upper bounds
	slots    []winSlot // ring; len = slot count
	slotDur  time.Duration
	headTick int64 // absolute slot index of slots head
	head     int   // ring position of the current slot
	now      func() time.Time
}

// winSlot is one sub-window's worth of observations.
type winSlot struct {
	counts []uint64 // len(bounds)+1; last is +Inf
	n      uint64
	sum    float64
}

// NewWindow builds a sliding-window estimator covering roughly window,
// divided into slots sub-windows. bounds follow NewHistogram's rules.
func NewWindow(bounds []float64, window time.Duration, slots int) *Window {
	if slots < 2 {
		panic("obs: Window needs at least 2 slots")
	}
	if window <= 0 {
		panic("obs: Window needs a positive duration")
	}
	// Validate via NewHistogram's checks, then keep our own copy.
	b := NewHistogram(bounds).bounds
	w := &Window{
		bounds:  b,
		slots:   make([]winSlot, slots),
		slotDur: window / time.Duration(slots),
		now:     time.Now,
	}
	for i := range w.slots {
		w.slots[i].counts = make([]uint64, len(b)+1)
	}
	return w
}

// setClock injects a clock for rotation-boundary tests.
func (w *Window) setClock(now func() time.Time) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

// rotate advances the ring to the slot containing the current time,
// zeroing every slot skipped over. Callers hold w.mu.
func (w *Window) rotate() {
	tick := w.now().UnixNano() / int64(w.slotDur)
	if tick <= w.headTick {
		return
	}
	steps := tick - w.headTick
	if steps > int64(len(w.slots)) {
		steps = int64(len(w.slots))
	}
	for i := int64(0); i < steps; i++ {
		w.head = (w.head + 1) % len(w.slots)
		s := &w.slots[w.head]
		for j := range s.counts {
			s.counts[j] = 0
		}
		s.n, s.sum = 0, 0
	}
	w.headTick = tick
}

// Observe records one value into the current slot.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate()
	i := sort.SearchFloat64s(w.bounds, v)
	s := &w.slots[w.head]
	s.counts[i]++
	s.n++
	s.sum += v
}

// merged sums the live slots into scratch counts. Callers hold w.mu.
func (w *Window) merged(counts []uint64) (total uint64, sum float64) {
	for i := range counts {
		counts[i] = 0
	}
	for si := range w.slots {
		s := &w.slots[si]
		for i, c := range s.counts {
			counts[i] += c
		}
		total += s.n
		sum += s.sum
	}
	return total, sum
}

// Count returns the number of observations currently inside the window.
func (w *Window) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate()
	var total uint64
	for si := range w.slots {
		total += w.slots[si].n
	}
	return total
}

// Mean returns the average of the observations inside the window
// (0 when empty).
func (w *Window) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate()
	var total uint64
	var sum float64
	for si := range w.slots {
		total += w.slots[si].n
		sum += w.slots[si].sum
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// Quantile estimates the p-th quantile over the observations inside the
// window, with Histogram's interpolation rules (0 when empty).
func (w *Window) Quantile(p float64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate()
	counts := make([]uint64, len(w.bounds)+1)
	total, _ := w.merged(counts)
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	target := p * float64(total)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) >= target {
			if i == len(w.bounds) {
				return w.bounds[len(w.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = w.bounds[i-1]
			}
			hi := w.bounds[i]
			frac := (target - float64(prev)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return w.bounds[len(w.bounds)-1]
}

// EWMA is an exponentially weighted moving average with atomic loads
// and CAS updates; the zero value is usable and reports NaN until the
// first observation seeds it.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1];
// higher alpha weights recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("obs: EWMA alpha must be in (0, 1]")
	}
	e := &EWMA{alpha: alpha}
	e.bits.Store(math.Float64bits(math.NaN()))
	return e
}

// Observe folds v into the average (the first observation seeds it).
func (e *EWMA) Observe(v float64) {
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		var nw float64
		if math.IsNaN(cur) {
			nw = v
		} else {
			nw = cur + e.alpha*(v-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(nw)) {
			return
		}
	}
}

// Value returns the current average, or NaN before any observation.
func (e *EWMA) Value() float64 { return math.Float64frombits(e.bits.Load()) }
