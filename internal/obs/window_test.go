package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// --- Histogram.Quantile edge cases ---

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 0 {
			t.Fatalf("Quantile(%g) on empty histogram = %g, want 0", p, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	h.Observe(3) // lands in the (2, 4] bucket
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		got := h.Quantile(p)
		// With one observation the target rank clamps to 1 and full
		// interpolation reaches the bucket's upper bound.
		if got != 4 {
			t.Fatalf("Quantile(%g) with one observation = %g, want 4", p, got)
		}
	}
}

func TestQuantileAllInOneBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(2.5) // all in (2, 4]
	}
	lastQ := 0.0
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(p)
		if got < 2 || got > 4 {
			t.Fatalf("Quantile(%g) = %g, want within the (2,4] bucket", p, got)
		}
		if got < lastQ {
			t.Fatalf("Quantile not monotone: p=%g gave %g after %g", p, got, lastQ)
		}
		lastQ = got
	}
	// Out-of-range p clamps rather than extrapolating.
	if lo, hi := h.Quantile(-0.5), h.Quantile(1.5); lo < 2 || hi > 4 {
		t.Fatalf("clamped quantiles escaped bucket: p=-0.5 -> %g, p=1.5 -> %g", lo, hi)
	}
}

func TestQuantileOverflowBucketClamps(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %g, want largest finite bound 2", got)
	}
}

func TestQuantileConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(1e-3, 2, 16))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			v := seed
			for {
				h.Observe(v)
				v = math.Mod(v*1.3+1e-3, 40)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(float64(g + 1))
	}
	for i := 0; i < 500; i++ {
		q := h.Quantile(0.5)
		if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
			t.Errorf("Quantile under concurrent Observe = %g", q)
			break
		}
	}
	close(stop)
	wg.Wait()
	if c := h.Count(); c == 0 {
		t.Fatal("no observations landed")
	}
}

func TestCountAtOrBelow(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	below, total, bound := h.CountAtOrBelow(0.1)
	if below != 3 || total != 5 || bound != 0.1 {
		t.Fatalf("CountAtOrBelow(0.1) = (%d, %d, %g), want (3, 5, 0.1)", below, total, bound)
	}
	// A threshold between bounds uses the largest bound below it.
	below, _, bound = h.CountAtOrBelow(0.5)
	if below != 3 || bound != 0.1 {
		t.Fatalf("CountAtOrBelow(0.5) = (%d, bound %g), want (3, 0.1)", below, bound)
	}
	// Below every bound: nothing countable.
	below, total, bound = h.CountAtOrBelow(0.001)
	if below != 0 || total != 5 || !math.IsNaN(bound) {
		t.Fatalf("CountAtOrBelow(0.001) = (%d, %d, %g), want (0, 5, NaN)", below, total, bound)
	}
}

// --- Window rotation ---

func TestWindowRotationBoundary(t *testing.T) {
	base := time.Unix(1000, 0)
	cur := base
	w := NewWindow([]float64{0.5, 1}, 4*time.Second, 4) // 1s slots
	w.setClock(func() time.Time { return cur })

	w.Observe(0.25)
	w.Observe(0.25)
	if got := w.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}

	// Crossing one slot boundary keeps the old slot's observations.
	cur = base.Add(1100 * time.Millisecond)
	w.Observe(0.75)
	if got := w.Count(); got != 3 {
		t.Fatalf("Count after one rotation = %d, want 3", got)
	}

	// Advancing to the last slot still covering the first observations.
	cur = base.Add(3900 * time.Millisecond)
	if got := w.Count(); got != 3 {
		t.Fatalf("Count at window edge = %d, want 3", got)
	}

	// One more slot ages out the first two observations...
	cur = base.Add(4100 * time.Millisecond)
	if got := w.Count(); got != 1 {
		t.Fatalf("Count after first slot aged out = %d, want 1", got)
	}
	if got := w.Mean(); got != 0.75 {
		t.Fatalf("Mean after aging = %g, want 0.75", got)
	}

	// ...and a jump far past the window clears everything, including a
	// step count larger than the ring (the skip-cap path).
	cur = base.Add(time.Hour)
	if got := w.Count(); got != 0 {
		t.Fatalf("Count after full-window jump = %d, want 0", got)
	}
	if got := w.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile on empty window = %g, want 0", got)
	}
}

func TestWindowQuantileMatchesHistogramShape(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	w := NewWindow(bounds, time.Minute, 6)
	h := NewHistogram(bounds)
	for i := 0; i < 50; i++ {
		v := float64(i%8) + 0.5
		w.Observe(v)
		h.Observe(v)
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if hw, hh := w.Quantile(p), h.Quantile(p); hw != hh {
			t.Fatalf("Quantile(%g): window %g != histogram %g (same data, no rotation)", p, hw, hh)
		}
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if !math.IsNaN(e.Value()) {
		t.Fatalf("unseeded EWMA = %g, want NaN", e.Value())
	}
	e.Observe(1)
	if got := e.Value(); got != 1 {
		t.Fatalf("seeded EWMA = %g, want 1", got)
	}
	e.Observe(0)
	if got := e.Value(); got != 0.5 {
		t.Fatalf("EWMA after decay = %g, want 0.5", got)
	}
}
