package pca

import (
	"errors"

	"resinfer/internal/matrix"
	"resinfer/internal/persist"
)

const modelMagic = "RIPCA1"

// Encode writes the model to w.
func (m *Model) Encode(w *persist.Writer) {
	w.Magic(modelMagic)
	w.Int(m.Dim)
	w.F32s(m.Mean)
	m.Rotation.Encode(w)
	w.F64s(m.Variances)
	w.F32s(m.Sigmas)
}

// Decode reads a model previously written by Encode.
func Decode(r *persist.Reader) (*Model, error) {
	r.Magic(modelMagic)
	dim := r.Int()
	mean := r.F32s()
	rot, err := matrix.Decode(r)
	if err != nil {
		return nil, err
	}
	variances := r.F64s()
	sigmas := r.F32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if dim <= 0 || len(mean) != dim || len(variances) != dim ||
		len(sigmas) != dim || rot.Rows != dim || rot.Cols != dim {
		return nil, errors.New("pca: corrupt encoded model")
	}
	return &Model{Dim: dim, Mean: mean, Rotation: rot, Variances: variances, Sigmas: sigmas}, nil
}
