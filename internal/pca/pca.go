// Package pca implements principal component analysis: the optimal
// orthogonal rotation of §IV of the paper. The trained model exposes the
// descending-eigenvalue rotation matrix R (Theorem 1: it maximizes variance
// in the leading dimensions and minimizes it in the residual dimensions),
// the per-dimension variances σ²ᵢ of the rotated space needed by the
// DDCres error bound (Eq. 3), and variance-explained accounting used to
// pick between PCA- and quantization-based methods (Exp-1 discussion).
package pca

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"resinfer/internal/matrix"
	"resinfer/internal/store"
)

// Model is a trained PCA rotation.
type Model struct {
	Dim      int            // data dimensionality D
	Mean     []float32      // training mean, subtracted before rotation
	Rotation *matrix.Matrix // D x D; row i is the i-th principal direction
	// Variances holds the variance of each rotated dimension in descending
	// order (the eigenvalues of the covariance matrix). Variances[i] is the
	// σ²ᵢ of Eq. 3.
	Variances []float64
	// Sigmas caches sqrt(Variances) as float32 for the per-query suffix
	// table of DDCres.
	Sigmas []float32
}

// Config controls training.
type Config struct {
	// SampleSize caps how many rows are used to estimate the covariance
	// matrix (the paper samples 1M points for large datasets, following
	// Faiss practice). 0 means use all rows.
	SampleSize int
	Seed       int64
}

// Train fits a PCA model on data (n rows of equal dimension).
func Train(data [][]float32, cfg Config) (*Model, error) {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errors.New("pca: empty data")
	}
	rows := data
	if cfg.SampleSize > 0 && cfg.SampleSize < len(data) {
		rng := rand.New(rand.NewSource(cfg.Seed))
		idx := rng.Perm(len(data))[:cfg.SampleSize]
		rows = make([][]float32, cfg.SampleSize)
		for i, j := range idx {
			rows[i] = data[j]
		}
	}
	cov, mean64, err := matrix.Covariance(rows)
	if err != nil {
		return nil, err
	}
	vals, vecs, err := matrix.EigenSym(cov)
	if err != nil {
		return nil, err
	}
	d := len(vals)
	m := &Model{
		Dim:       d,
		Mean:      make([]float32, d),
		Rotation:  vecs,
		Variances: vals,
		Sigmas:    make([]float32, d),
	}
	for i, v := range mean64 {
		m.Mean[i] = float32(v)
	}
	for i, v := range vals {
		if v < 0 {
			v = 0 // rounding noise on degenerate directions
		}
		m.Variances[i] = v
		m.Sigmas[i] = float32(math.Sqrt(v))
	}
	return m, nil
}

// Project rotates x into the PCA basis: y = R (x - mean). The output has
// the same dimension; callers truncate to the first d coordinates for a
// d-dimensional projection.
func (m *Model) Project(x []float32) ([]float32, error) {
	dst := make([]float32, m.Dim)
	if err := m.ProjectInto(dst, x, make([]float32, m.Dim)); err != nil {
		return nil, err
	}
	return dst, nil
}

// ProjectInto is Project writing into dst using cent as centering scratch
// (both of length Dim), allocating nothing. dst and cent must not alias x.
func (m *Model) ProjectInto(dst, x, cent []float32) error {
	if len(x) != m.Dim {
		return errors.New("pca: dimension mismatch")
	}
	if len(dst) != m.Dim || len(cent) != m.Dim {
		return errors.New("pca: scratch dimension mismatch")
	}
	for i := range x {
		cent[i] = x[i] - m.Mean[i]
	}
	return m.Rotation.ApplyF32Into(dst, cent)
}

// ProjectMatrix rotates every row of data into a fresh flat matrix using
// up to `workers` goroutines. Rotating n rows costs n·D² multiply-adds —
// the dominant one-time cost of building a PCA-based DCO.
func (m *Model) ProjectMatrix(data *store.Matrix, workers int) (*store.Matrix, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("pca: empty data")
	}
	if data.Dim() != m.Dim {
		return nil, errors.New("pca: dimension mismatch")
	}
	out, err := store.New(data.Rows(), m.Dim)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > data.Rows() {
		workers = data.Rows()
	}
	if workers <= 1 {
		cent := make([]float32, m.Dim)
		for i := 0; i < data.Rows(); i++ {
			if err := m.ProjectInto(out.Row(i), data.Row(i), cent); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (data.Rows() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > data.Rows() {
			hi = data.Rows()
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cent := make([]float32, m.Dim)
			for i := lo; i < hi; i++ {
				if err := m.ProjectInto(out.Row(i), data.Row(i), cent); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ProjectAll rotates every row of data, returning a new matrix of rotated
// rows. Rows are processed independently; the caller may parallelize by
// sharding beforehand.
func (m *Model) ProjectAll(data [][]float32) ([][]float32, error) {
	return m.ProjectAllParallel(data, 1)
}

// ProjectAllParallel rotates every row using up to `workers` goroutines.
// Rotating n rows costs n·D² multiply-adds — the dominant one-time cost of
// building a PCA-based DCO — so large builds should pass GOMAXPROCS.
func (m *Model) ProjectAllParallel(data [][]float32, workers int) ([][]float32, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]float32, len(data))
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		for i, row := range data {
			p, err := m.Project(row)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(data) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(data) {
			hi = len(data)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				p, err := m.Project(data[i])
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = p
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// VarianceExplained returns the fraction of total variance captured by the
// first d rotated dimensions — e.g. the paper quotes 67% at d=32 for GIST
// and 18% for GLOVE, which predicts whether DDCres/DDCpca or DDCopq wins.
func (m *Model) VarianceExplained(d int) float64 {
	if d <= 0 {
		return 0
	}
	if d > m.Dim {
		d = m.Dim
	}
	var lead, total float64
	for i, v := range m.Variances {
		total += v
		if i < d {
			lead += v
		}
	}
	if total == 0 {
		return 1
	}
	return lead / total
}

// ResidualVariance returns Σ_{i>=d} σ²ᵢ, the total variance mass in the
// residual dimensions at projection depth d.
func (m *Model) ResidualVariance(d int) float64 {
	if d < 0 {
		d = 0
	}
	var s float64
	for i := d; i < m.Dim; i++ {
		s += m.Variances[i]
	}
	return s
}
