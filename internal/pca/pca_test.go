package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resinfer/internal/vec"
)

// anisotropic draws n samples from N(mean, diag(vars)) rotated by an
// arbitrary fixed rotation so PCA has something to discover.
func anisotropic(r *rand.Rand, n int, vars []float64) [][]float32 {
	d := len(vars)
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(math.Sqrt(vars[j]) * r.NormFloat64())
		}
		data[i] = row
	}
	return data
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestVariancesDescendingAndRecovered(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vars := []float64{16, 9, 4, 1}
	data := anisotropic(r, 20000, vars)
	m, err := Train(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(m.Variances); i++ {
		if m.Variances[i] < m.Variances[i+1] {
			t.Fatalf("variances not descending: %v", m.Variances)
		}
	}
	for i, want := range vars {
		if math.Abs(m.Variances[i]-want) > 0.5 {
			t.Fatalf("variance[%d] = %v, want ~%v", i, m.Variances[i], want)
		}
	}
}

func TestProjectPreservesDistances(t *testing.T) {
	// Full-dimensional rotation is an isometry: pairwise distances are
	// preserved (the precondition for using rotated vectors for exact
	// distances).
	r := rand.New(rand.NewSource(2))
	data := anisotropic(r, 500, []float64{5, 3, 2, 1, 0.5, 0.2})
	m, err := Train(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		a := data[r.Intn(len(data))]
		b := data[r.Intn(len(data))]
		pa, err := m.Project(a)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := m.Project(b)
		orig := float64(vec.L2Sq(a, b))
		rot := float64(vec.L2Sq(pa, pb))
		if math.Abs(orig-rot) > 1e-2*(1+orig) {
			t.Fatalf("rotation is not an isometry: %v vs %v", orig, rot)
		}
	}
}

func TestProjectDimensionMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := anisotropic(r, 100, []float64{1, 1})
	m, _ := Train(data, Config{})
	if _, err := m.Project([]float32{1}); err != nil {
		// good
	} else {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestVarianceExplainedMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := anisotropic(r, 3000, []float64{10, 5, 2, 1, 0.5, 0.1})
	m, _ := Train(data, Config{})
	f := func(du, dv uint8) bool {
		a, b := int(du)%7, int(dv)%7
		if a > b {
			a, b = b, a
		}
		return m.VarianceExplained(a) <= m.VarianceExplained(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if m.VarianceExplained(0) != 0 {
		t.Fatal("VE(0) must be 0")
	}
	if math.Abs(m.VarianceExplained(6)-1) > 1e-9 {
		t.Fatal("VE(D) must be 1")
	}
	if math.Abs(m.VarianceExplained(99)-1) > 1e-9 {
		t.Fatal("VE(d>D) clamps to 1")
	}
}

func TestResidualVariancePlusLeadEqualsTotal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := anisotropic(r, 2000, []float64{4, 3, 2, 1})
	m, _ := Train(data, Config{})
	total := m.ResidualVariance(0)
	for d := 0; d <= 4; d++ {
		lead := total - m.ResidualVariance(d)
		if math.Abs(lead/total-m.VarianceExplained(d)) > 1e-9 {
			t.Fatalf("d=%d inconsistent VE vs residual", d)
		}
	}
	if m.ResidualVariance(-1) != total {
		t.Fatal("negative d clamps to 0")
	}
}

func TestSkewControlsVE(t *testing.T) {
	// High-skew data (image-like) captures much more variance at small d
	// than flat data (GLOVE-like) — the Exp-1 selection criterion.
	r := rand.New(rand.NewSource(6))
	d := 32
	skewed := make([]float64, d)
	flat := make([]float64, d)
	for i := 0; i < d; i++ {
		skewed[i] = math.Pow(0.75, float64(i))
		flat[i] = 1
	}
	ms, _ := Train(anisotropic(r, 4000, skewed), Config{})
	mf, _ := Train(anisotropic(r, 4000, flat), Config{})
	if ms.VarianceExplained(8) <= mf.VarianceExplained(8)+0.1 {
		t.Fatalf("skewed VE(8)=%v should far exceed flat VE(8)=%v",
			ms.VarianceExplained(8), mf.VarianceExplained(8))
	}
}

func TestSampledTrainingClose(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vars := []float64{8, 4, 2, 1}
	data := anisotropic(r, 20000, vars)
	full, _ := Train(data, Config{})
	sampled, err := Train(data, Config{SampleSize: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vars {
		if math.Abs(full.Variances[i]-sampled.Variances[i]) > 0.8 {
			t.Fatalf("sampled variance[%d]=%v too far from full %v",
				i, sampled.Variances[i], full.Variances[i])
		}
	}
}

func TestSigmasMatchVariances(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := anisotropic(r, 1000, []float64{9, 4, 1})
	m, _ := Train(data, Config{})
	for i := range m.Variances {
		if math.Abs(float64(m.Sigmas[i])*float64(m.Sigmas[i])-m.Variances[i]) > 1e-3 {
			t.Fatalf("sigma[%d]^2 != variance", i)
		}
	}
}

func TestProjectAll(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := anisotropic(r, 50, []float64{2, 1})
	m, _ := Train(data, Config{})
	rot, err := m.ProjectAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rot) != len(data) {
		t.Fatal("length mismatch")
	}
	p0, _ := m.Project(data[0])
	if !vec.Equal(rot[0], p0) {
		t.Fatal("ProjectAll disagrees with Project")
	}
}
