// Package persist provides the little-endian binary encoding used by every
// Save/Load pair in the library (indexes, rotations, quantizers,
// classifiers). A Writer/Reader carries its first error so call sites can
// chain writes and check once at the end, and every stream starts with a
// magic string and version so stale files fail loudly instead of decoding
// garbage.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrBadMagic reports a stream that does not start with the expected
// section marker.
var ErrBadMagic = errors.New("persist: bad magic")

// MaxSliceLen bounds decoded slice lengths as a corruption guard.
const MaxSliceLen = 1 << 31

// Writer encodes values to an underlying stream, retaining the first
// error.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// Magic writes a fixed section marker.
func (w *Writer) Magic(s string) { w.write([]byte(s)) }

// U32 writes a uint32.
func (w *Writer) U32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.write(buf[:])
}

// U64 writes a uint64.
func (w *Writer) U64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.write(buf[:])
}

// I64 writes an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F32 writes a float32.
func (w *Writer) F32(v float32) { w.U32(math.Float32bits(v)) }

// F64 writes a float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.write([]byte{b})
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.Int(len(p))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// F32s writes a length-prefixed []float32.
func (w *Writer) F32s(xs []float32) {
	w.Int(len(xs))
	for _, v := range xs {
		w.F32(v)
	}
}

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(xs []float64) {
	w.Int(len(xs))
	for _, v := range xs {
		w.F64(v)
	}
}

// Ints writes a length-prefixed []int.
func (w *Writer) Ints(xs []int) {
	w.Int(len(xs))
	for _, v := range xs {
		w.I64(int64(v))
	}
}

// I32s writes a length-prefixed []int32.
func (w *Writer) I32s(xs []int32) {
	w.Int(len(xs))
	for _, v := range xs {
		w.U32(uint32(v))
	}
}

// F32Mat writes a length-prefixed [][]float32.
func (w *Writer) F32Mat(rows [][]float32) {
	w.Int(len(rows))
	for _, r := range rows {
		w.F32s(r)
	}
}

// blockFloats is how many float32s F32Block converts per chunk (64 KiB of
// encoded bytes), trading a small scratch buffer for large sequential
// writes instead of one 4-byte write per element.
const blockFloats = 16384

// F32Block writes a length-prefixed []float32 as one bulk little-endian
// byte stream. It encodes the same logical value as F32s but converts in
// 64 KiB chunks, so flat vector buffers serialize at memory bandwidth
// instead of element-at-a-time.
func (w *Writer) F32Block(xs []float32) {
	w.Int(len(xs))
	if w.err != nil {
		return
	}
	buf := make([]byte, 0, 4*blockFloats)
	for len(xs) > 0 {
		n := len(xs)
		if n > blockFloats {
			n = blockFloats
		}
		buf = buf[:4*n]
		for i, v := range xs[:n] {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		w.write(buf)
		if w.err != nil {
			return
		}
		xs = xs[n:]
	}
}

// Reader decodes values from an underlying stream, retaining the first
// error.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	_, r.err = io.ReadFull(r.r, p)
}

// Magic consumes and verifies a section marker.
func (r *Reader) Magic(s string) {
	buf := make([]byte, len(s))
	r.read(buf)
	if r.err == nil && string(buf) != s {
		r.err = fmt.Errorf("%w: want %q got %q", ErrBadMagic, s, string(buf))
	}
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	var buf [4]byte
	r.read(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(buf[:])
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	var buf [8]byte
	r.read(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int encoded as int64.
func (r *Reader) Int() int { return int(r.I64()) }

// Len reads a slice length and validates it.
func (r *Reader) Len() int {
	n := r.Int()
	if r.err == nil && (n < 0 || n > MaxSliceLen) {
		r.err = fmt.Errorf("persist: implausible length %d", n)
		return 0
	}
	return n
}

// F32 reads a float32.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool.
func (r *Reader) Bool() bool {
	var buf [1]byte
	r.read(buf[:])
	return buf[0] != 0
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	p := make([]byte, n)
	r.read(p)
	return p
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// F32s reads a length-prefixed []float32.
func (r *Reader) F32s() []float32 {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = r.F32()
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.I64())
	}
	return out
}

// I32s reads a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.U32())
	}
	return out
}

// F32Block reads a length-prefixed []float32 written by F32Block.
func (r *Reader) F32Block() []float32 {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	out := make([]float32, n)
	buf := make([]byte, 0, 4*blockFloats)
	for off := 0; off < n; {
		c := n - off
		if c > blockFloats {
			c = blockFloats
		}
		buf = buf[:4*c]
		r.read(buf)
		if r.err != nil {
			return nil
		}
		for i := 0; i < c; i++ {
			out[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		off += c
	}
	return out
}

// F32Mat reads a length-prefixed [][]float32.
func (r *Reader) F32Mat() [][]float32 {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	out := make([][]float32, n)
	for i := range out {
		out[i] = r.F32s()
	}
	return out
}
