package persist

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("TEST1")
	w.U32(42)
	w.U64(1 << 40)
	w.I64(-7)
	w.Int(123456)
	w.F32(1.5)
	w.F64(-2.25)
	w.Bool(true)
	w.Bool(false)
	w.String("hello")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Magic("TEST1")
	if r.U32() != 42 || r.U64() != 1<<40 || r.I64() != -7 || r.Int() != 123456 {
		t.Fatal("integer round trip failed")
	}
	if r.F32() != 1.5 || r.F64() != -2.25 {
		t.Fatal("float round trip failed")
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip failed")
	}
	if r.String() != "hello" {
		t.Fatal("string round trip failed")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestRoundTripSlices(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	f32s := []float32{1, -2, 3.5}
	f64s := []float64{math.Pi, -1}
	ints := []int{-5, 0, 99}
	i32s := []int32{7, -8}
	mat := [][]float32{{1, 2}, {3}}
	w.F32s(f32s)
	w.F64s(f64s)
	w.Ints(ints)
	w.I32s(i32s)
	w.F32Mat(mat)
	w.Bytes([]byte{9, 8})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	gotF32 := r.F32s()
	gotF64 := r.F64s()
	gotInts := r.Ints()
	gotI32 := r.I32s()
	gotMat := r.F32Mat()
	gotBytes := r.Bytes()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	for i := range f32s {
		if gotF32[i] != f32s[i] {
			t.Fatal("f32s")
		}
	}
	for i := range f64s {
		if gotF64[i] != f64s[i] {
			t.Fatal("f64s")
		}
	}
	for i := range ints {
		if gotInts[i] != ints[i] {
			t.Fatal("ints")
		}
	}
	for i := range i32s {
		if gotI32[i] != i32s[i] {
			t.Fatal("i32s")
		}
	}
	if len(gotMat) != 2 || gotMat[0][1] != 2 || gotMat[1][0] != 3 {
		t.Fatal("mat")
	}
	if gotBytes[0] != 9 || gotBytes[1] != 8 {
		t.Fatal("bytes")
	}
}

func TestMagicMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("AAAA")
	_ = w.Flush()
	r := NewReader(&buf)
	r.Magic("BBBB")
	if !errors.Is(r.Err(), ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", r.Err())
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F32s([]float32{1, 2, 3, 4, 5})
	_ = w.Flush()
	b := buf.Bytes()
	r := NewReader(bytes.NewReader(b[:len(b)-3]))
	_ = r.F32s()
	if r.Err() == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(-1) // negative length
	_ = w.Flush()
	r := NewReader(&buf)
	_ = r.F32s()
	if r.Err() == nil {
		t.Fatal("negative length must error")
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.U32() // EOF
	first := r.Err()
	if first == nil {
		t.Fatal("expected EOF error")
	}
	_ = r.U64()
	_ = r.F32s()
	if r.Err() != first {
		t.Fatal("error must be sticky")
	}
}

// Property: arbitrary float32 matrices round-trip bit-exactly.
func TestMatrixRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(8)
		mat := make([][]float32, rows)
		for i := range mat {
			mat[i] = make([]float32, rng.Intn(16))
			for j := range mat[i] {
				mat[i][j] = math.Float32frombits(rng.Uint32())
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.F32Mat(mat)
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		got := r.F32Mat()
		if r.Err() != nil || len(got) != len(mat) {
			return false
		}
		for i := range mat {
			if len(got[i]) != len(mat[i]) {
				return false
			}
			for j := range mat[i] {
				// Compare bit patterns: NaNs must survive too.
				if math.Float32bits(got[i][j]) != math.Float32bits(mat[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestF32BlockRoundTrip(t *testing.T) {
	// Cross the chunk boundary to exercise the multi-chunk path.
	xs := make([]float32, 16384*2+37)
	for i := range xs {
		xs[i] = float32(i)*0.5 - 1000
	}
	for _, in := range [][]float32{nil, {1.25}, xs} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.F32Block(in)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		out := r.F32Block()
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if len(out) != len(in) {
			t.Fatalf("len %d want %d", len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("elem %d: %v want %v", i, out[i], in[i])
			}
		}
	}
}

func TestF32BlockMatchesF32s(t *testing.T) {
	// F32Block and F32s encode the same logical value with identical bytes.
	xs := []float32{1, -2.5, 3e7, 0}
	var a, b bytes.Buffer
	wa, wb := NewWriter(&a), NewWriter(&b)
	wa.F32Block(xs)
	wb.F32s(xs)
	wa.Flush()
	wb.Flush()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("F32Block must be byte-compatible with F32s")
	}
}
