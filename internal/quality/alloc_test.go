package quality_test

import (
	"math/rand"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/quality"
	"resinfer/internal/raceguard"
)

// allocSetup builds the guard's fixture: a sharded index with the
// shadow sampler attached at an aggressive rate (1/8 instead of the
// production 1/256, so the 200-run measurement crosses the sampled path
// ~25 times) and a long warmup that seeds every pool — job buffers,
// ground-truth scratch, the fingerprint sketch — before measuring.
func allocSetup(t testing.TB) (*resinfer.ShardedIndex, *quality.Tracker, []float32) {
	const n, dim = 2000, 32
	rng := rand.New(rand.NewSource(17))
	data := make([][]float32, n)
	for i := range data {
		data[i] = make([]float32, dim)
		for j := range data[i] {
			data[i][j] = float32(rng.NormFloat64())
		}
	}
	sx, err := resinfer.NewSharded(data, resinfer.Flat, 4, &resinfer.ShardOptions{SearchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := quality.NewTracker(sx, quality.Config{SampleRate: 8, QueueDepth: 8})
	q := make([]float32, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	return sx, tr, q
}

// TestShadowSampledSearchZeroAlloc enforces the tentpole's hot-path
// bar: with the shadow sampler enabled, the untraced sharded search
// path (search + MaybeSample) stays at 0 allocs/op — including the
// amortized cost of sampled iterations and the off-path ground-truth
// worker, since AllocsPerRun counts process-global allocations.
func TestShadowSampledSearchZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if raceguard.Enabled {
		t.Skip("race-detector instrumentation allocates")
	}
	sx, tr, q := allocSetup(t)
	defer tr.Close()
	const k = 10
	var dst []resinfer.Neighbor
	// Warm every pool across many sampled iterations, then let the
	// worker drain so mid-measurement processing is steady-state.
	for i := 0; i < 256; i++ {
		var err error
		dst, _, err = sx.SearchInto(dst[:0], q, k, resinfer.Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr.MaybeSample(q, dst, k)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tr.Snapshot().Measured < 30 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		dst, _, err = sx.SearchInto(dst[:0], q, k, resinfer.Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr.MaybeSample(q, dst, k)
	})
	if allocs != 0 {
		t.Fatalf("sharded search with shadow sampling on: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkSearchWithShadowSampling reports the sampler's hot-path
// overhead (compare against the same loop in the root package's
// sharded benchmarks) and must show 0 B/op at steady state.
func BenchmarkSearchWithShadowSampling(b *testing.B) {
	sx, tr, q := allocSetup(b)
	defer tr.Close()
	const k = 10
	var dst []resinfer.Neighbor
	for i := 0; i < 64; i++ {
		var err error
		dst, _, err = sx.SearchInto(dst[:0], q, k, resinfer.Exact, 0)
		if err != nil {
			b.Fatal(err)
		}
		tr.MaybeSample(q, dst, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = sx.SearchInto(dst[:0], q, k, resinfer.Exact, 0)
		if err != nil {
			b.Fatal(err)
		}
		tr.MaybeSample(q, dst, k)
	}
}
