package quality

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"resinfer"
	"resinfer/internal/obs"
)

// Oracle is the exact-scan capability the tracker shadows queries
// against — satisfied by resinfer.ShardedIndex and resinfer.MutableIndex.
type Oracle interface {
	GroundTruthSearch(dst []resinfer.Neighbor, shards []int, q []float32, k int) ([]resinfer.Neighbor, []int, int, error)
	NumShards() int
}

// Config tunes the shadow sampler.
type Config struct {
	// SampleRate samples one query in SampleRate (1 = every query).
	// Values below 1 default to 256.
	SampleRate int
	// Workers is the ground-truth worker pool size (default 1 — the
	// scans are whole-corpus and deliberately bandwidth-bounded).
	Workers int
	// QueueDepth bounds the sampled-query queue; a full queue drops the
	// sample rather than backpressuring the request path (default 8).
	QueueDepth int
	// Window is the sliding estimation window (default 5m), split into
	// WindowSlots sub-windows (default 10).
	Window      time.Duration
	WindowSlots int
	// HotCapacity is the heavy-hitter sketch size (default 64).
	HotCapacity int
}

func (c Config) withDefaults() Config {
	if c.SampleRate < 1 {
		c.SampleRate = 256
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8
	}
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.WindowSlots < 2 {
		c.WindowSlots = 10
	}
	if c.HotCapacity < 1 {
		c.HotCapacity = 64
	}
	return c
}

// job is one sampled query in flight to the worker pool. All slices are
// capacity-reused through the job pool so steady-state sampling does
// not allocate.
type job struct {
	q          []float32
	servedID   []int
	servedKey  []float32
	k          int
	truth      []resinfer.Neighbor
	truthShard []int
	rankOf     map[int]int
}

// shardAgg accumulates per-shard ground-truth hit rates: of the
// ground-truth neighbors living in this shard, how many did the served
// answer include.
type shardAgg struct {
	Truth uint64 `json:"truth_neighbors"`
	Found uint64 `json:"found"`
}

// epochAgg accumulates within one compaction epoch.
type epochAgg struct {
	n         uint64
	recallSum float64
}

// EpochSummary is an epoch aggregate rendered for the debug endpoint.
type EpochSummary struct {
	Samples    uint64  `json:"samples"`
	MeanRecall float64 `json:"mean_recall"`
}

// Tracker owns the shadow sampling pipeline: admission counter →
// bounded job queue → ground-truth workers → estimators.
type Tracker struct {
	cfg    Config
	oracle Oracle

	ctr      atomic.Uint64
	sampled  atomic.Uint64
	dropped  atomic.Uint64
	measured atomic.Uint64
	gtComp   atomic.Uint64

	jobs      chan *job
	jobPool   sync.Pool
	wg        sync.WaitGroup
	closing   atomic.Bool
	sendMu    sync.RWMutex // excludes sampled sends vs channel close
	closeOnce sync.Once

	// Cumulative + windowed estimators. The recall histogram buckets
	// recall in [0,1]; windows smooth the same signals over cfg.Window.
	recallHist *obs.Histogram
	recallWin  *obs.Window
	recallEWMA *obs.EWMA
	dispWin    *obs.Window
	scoreWin   *obs.Window

	// SLO feed: sample count and accumulated recall shortfall (1-recall
	// summed), both monotone so burn windows can diff snapshots.
	recallN          atomic.Uint64
	recallErrSumBits atomic.Uint64

	mu          sync.Mutex
	perShard    []shardAgg
	epoch       epochAgg
	prevEpoch   *EpochSummary
	compactions uint64

	sketch *SpaceSaving
}

// NewTracker builds the tracker and starts its worker pool.
func NewTracker(oracle Oracle, cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	recallBounds := obs.LinearBuckets(0.05, 0.05, 20) // 0.05 .. 1.0
	t := &Tracker{
		cfg:        cfg,
		oracle:     oracle,
		jobs:       make(chan *job, cfg.QueueDepth),
		recallHist: obs.NewHistogram(recallBounds),
		recallWin:  obs.NewWindow(recallBounds, cfg.Window, cfg.WindowSlots),
		recallEWMA: obs.NewEWMA(0.05),
		dispWin:    obs.NewWindow(obs.ExponentialBuckets(0.5, 2, 8), cfg.Window, cfg.WindowSlots),
		scoreWin:   obs.NewWindow(obs.ExponentialBuckets(1e-6, 10, 8), cfg.Window, cfg.WindowSlots),
		perShard:   make([]shardAgg, oracle.NumShards()),
		sketch:     NewSpaceSaving(cfg.HotCapacity),
	}
	t.jobPool.New = func() any { return &job{rankOf: make(map[int]int, 32)} }
	for i := 0; i < cfg.Workers; i++ {
		t.wg.Add(1)
		go t.worker()
	}
	return t
}

// SampleRate returns the configured sampling denominator.
func (t *Tracker) SampleRate() int { return t.cfg.SampleRate }

// MaybeSample admits roughly one call in cfg.SampleRate into the shadow
// pipeline. The non-sampled path is one atomic add; the sampled path
// copies the query and served answer into a pooled job and hands it to
// the worker queue, dropping (never blocking) when the queue is full.
// Safe for concurrent use; a nil tracker is a no-op.
//
//resinfer:noalloc
func (t *Tracker) MaybeSample(q []float32, served []resinfer.Neighbor, k int) {
	if t == nil {
		return
	}
	if t.ctr.Add(1)%uint64(t.cfg.SampleRate) != 0 {
		return
	}
	t.sendMu.RLock()
	defer t.sendMu.RUnlock()
	if t.closing.Load() {
		return
	}
	j := t.jobPool.Get().(*job)
	j.q = append(j.q[:0], q...)
	j.servedID = j.servedID[:0]
	j.servedKey = j.servedKey[:0]
	for _, n := range served {
		j.servedID = append(j.servedID, n.ID)
		j.servedKey = append(j.servedKey, n.Distance)
	}
	j.k = k
	select {
	case t.jobs <- j:
		t.sampled.Add(1)
	default:
		t.dropped.Add(1)
		t.jobPool.Put(j)
	}
}

func (t *Tracker) worker() {
	defer t.wg.Done()
	for j := range t.jobs {
		t.measure(j)
		t.jobPool.Put(j)
	}
}

// measure shadows one sampled query with an exact scan and folds the
// comparison into every estimator.
func (t *Tracker) measure(j *job) {
	var err error
	j.truth, j.truthShard, _, err = t.oracle.GroundTruthSearch(j.truth[:0], j.truthShard[:0], j.q, j.k)
	if err != nil {
		return
	}
	truth := j.truth
	if len(truth) == 0 {
		return
	}
	for id := range j.rankOf {
		delete(j.rankOf, id)
	}
	for rank, n := range truth {
		j.rankOf[n.ID] = rank
	}

	denom := j.k
	if len(truth) < denom {
		denom = len(truth)
	}
	matches := 0
	var dispSum float64
	for i, id := range j.servedID {
		if r, ok := j.rankOf[id]; ok {
			matches++
			d := i - r
			if d < 0 {
				d = -d
			}
			dispSum += float64(d)
		}
	}
	recall := float64(matches) / float64(denom)
	disp := 0.0
	if matches > 0 {
		disp = dispSum / float64(matches)
	}
	// Score error: positional relative error between served and exact
	// merge keys over the overlapping prefix.
	var scoreErr float64
	np := len(j.servedKey)
	if len(truth) < np {
		np = len(truth)
	}
	for i := 0; i < np; i++ {
		want := float64(truth[i].Distance)
		got := float64(j.servedKey[i])
		den := math.Abs(want)
		if den < 1e-9 {
			den = 1e-9
		}
		scoreErr += math.Abs(got-want) / den
	}
	if np > 0 {
		scoreErr /= float64(np)
	}

	t.recallHist.Observe(recall)
	t.recallWin.Observe(recall)
	t.recallEWMA.Observe(recall)
	t.dispWin.Observe(disp)
	t.scoreWin.Observe(scoreErr)
	t.recallN.Add(1)
	addFloat(&t.recallErrSumBits, 1-recall)
	t.measured.Add(1)

	t.mu.Lock()
	for i, n := range truth {
		s := j.truthShard[i]
		if s >= 0 && s < len(t.perShard) {
			t.perShard[s].Truth++
			if _, ok := j.rankOf[n.ID]; ok {
				// found means the served answer contained it.
				if containsID(j.servedID, n.ID) {
					t.perShard[s].Found++
				}
			}
		}
	}
	t.epoch.n++
	t.epoch.recallSum += recall
	t.mu.Unlock()

	t.sketch.Offer(Fingerprint(j.q))
}

func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// addFloat CAS-accumulates delta into a float64-bits atomic.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// RecallBurnFeed returns the monotone (samples, error-sum) pair the SLO
// tracker diffs across windows: error-sum is Σ(1 − recall@k).
func (t *Tracker) RecallBurnFeed() (n uint64, errSum float64) {
	if t == nil {
		return 0, 0
	}
	return t.recallN.Load(), math.Float64frombits(t.recallErrSumBits.Load())
}

// NoteCompaction rolls the since-compaction epoch: the finished epoch's
// summary is retained for one generation so a quality dip across a
// compaction is visible in /debug/quality.
func (t *Tracker) NoteCompaction() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sum := summarize(t.epoch)
	t.prevEpoch = &sum
	t.epoch = epochAgg{}
	t.compactions++
}

func summarize(e epochAgg) EpochSummary {
	s := EpochSummary{Samples: e.n}
	if e.n > 0 {
		s.MeanRecall = e.recallSum / float64(e.n)
	}
	return s
}

// ShardQuality is one shard's ground-truth hit rate.
type ShardQuality struct {
	Shard          uint64  `json:"shard"`
	TruthNeighbors uint64  `json:"truth_neighbors"`
	Found          uint64  `json:"found"`
	HitRate        float64 `json:"hit_rate"`
}

// Snapshot is the JSON body of GET /debug/quality.
type Snapshot struct {
	SampleRate int    `json:"sample_rate"`
	Sampled    uint64 `json:"sampled"`
	Dropped    uint64 `json:"dropped"`
	Measured   uint64 `json:"measured"`

	RecallMean       float64 `json:"recall_mean"`
	RecallEWMA       float64 `json:"recall_ewma"`
	RecallWindowMean float64 `json:"recall_window_mean"`
	RecallWindowP10  float64 `json:"recall_window_p10"`
	RecallWindowN    uint64  `json:"recall_window_samples"`

	RankDisplacementWindowMean float64 `json:"rank_displacement_window_mean"`
	ScoreErrorWindowMean       float64 `json:"score_error_window_mean"`

	PerShard []ShardQuality `json:"per_shard"`

	Compactions     uint64        `json:"compactions"`
	SinceCompaction EpochSummary  `json:"since_compaction"`
	PrevCompaction  *EpochSummary `json:"prev_compaction,omitempty"`

	HotQueries      []HotKey `json:"hot_queries"`
	HotQueriesTotal uint64   `json:"hot_queries_total"`
}

// Snapshot renders the tracker's current state.
func (t *Tracker) Snapshot() Snapshot {
	snap := Snapshot{
		SampleRate:       t.cfg.SampleRate,
		Sampled:          t.sampled.Load(),
		Dropped:          t.dropped.Load(),
		Measured:         t.measured.Load(),
		RecallMean:       t.recallHist.Mean(),
		RecallWindowMean: t.recallWin.Mean(),
		RecallWindowP10:  t.recallWin.Quantile(0.10),
		RecallWindowN:    t.recallWin.Count(),

		RankDisplacementWindowMean: t.dispWin.Mean(),
		ScoreErrorWindowMean:       t.scoreWin.Mean(),
	}
	if v := t.recallEWMA.Value(); !math.IsNaN(v) {
		snap.RecallEWMA = v
	}
	t.mu.Lock()
	snap.PerShard = make([]ShardQuality, len(t.perShard))
	for i, a := range t.perShard {
		sq := ShardQuality{Shard: uint64(i), TruthNeighbors: a.Truth, Found: a.Found}
		if a.Truth > 0 {
			sq.HitRate = float64(a.Found) / float64(a.Truth)
		}
		snap.PerShard[i] = sq
	}
	snap.Compactions = t.compactions
	snap.SinceCompaction = summarize(t.epoch)
	snap.PrevCompaction = t.prevEpoch
	t.mu.Unlock()
	snap.HotQueries = t.sketch.Top(10)
	snap.HotQueriesTotal = t.sketch.Total()
	return snap
}

// Register exports the tracker's metric families on reg.
func (t *Tracker) Register(reg *obs.Registry) {
	reg.GaugeFunc("resinfer_quality_sampled_total",
		"Shadow-sampled queries admitted to the ground-truth queue.",
		func() float64 { return float64(t.sampled.Load()) })
	reg.GaugeFunc("resinfer_quality_dropped_total",
		"Shadow samples dropped because the ground-truth queue was full.",
		func() float64 { return float64(t.dropped.Load()) })
	reg.GaugeFunc("resinfer_quality_measured_total",
		"Shadow samples fully measured against an exact scan.",
		func() float64 { return float64(t.measured.Load()) })
	reg.GaugeFunc("resinfer_quality_recall_window_mean",
		"Mean shadow recall@k over the sliding window.",
		func() float64 { return t.recallWin.Mean() })
	reg.GaugeFunc("resinfer_quality_recall_ewma",
		"Exponentially weighted moving average of shadow recall@k.",
		func() float64 {
			v := t.recallEWMA.Value()
			if math.IsNaN(v) {
				return 0
			}
			return v
		})
	reg.GaugeFunc("resinfer_quality_rank_displacement_window_mean",
		"Mean absolute rank displacement of served vs exact results over the window.",
		func() float64 { return t.dispWin.Mean() })
	reg.GaugeFunc("resinfer_quality_score_error_window_mean",
		"Mean relative score error of served vs exact results over the window.",
		func() float64 { return t.scoreWin.Mean() })
	// The cumulative recall distribution, for offline quantile queries
	// over scrape history.
	reg.RegisterHistogram("resinfer_quality_recall",
		"Distribution of shadow recall@k measurements.", t.recallHist)
}

// Close drains the worker pool. Idempotent; nil-safe.
func (t *Tracker) Close() {
	if t == nil {
		return
	}
	t.closeOnce.Do(func() {
		t.sendMu.Lock()
		t.closing.Store(true)
		close(t.jobs)
		t.sendMu.Unlock()
	})
	t.wg.Wait()
}
