package quality_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/quality"
)

func buildSharded(t testing.TB, n, dim, shards int, seed int64) (*resinfer.ShardedIndex, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float32, n)
	for i := range data {
		data[i] = make([]float32, dim)
		for j := range data[i] {
			data[i][j] = float32(rng.NormFloat64())
		}
	}
	sx, err := resinfer.NewSharded(data, resinfer.Flat, shards, &resinfer.ShardOptions{SearchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sx, data
}

func waitMeasured(t testing.TB, tr *quality.Tracker, want uint64) quality.Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := tr.Snapshot()
		if snap.Measured >= want {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("tracker measured %d samples, want >= %d", snap.Measured, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestTrackerPerfectServingScoresRecallOne(t *testing.T) {
	const k = 10
	sx, _ := buildSharded(t, 500, 16, 3, 5)
	tr := quality.NewTracker(sx, quality.Config{SampleRate: 1, QueueDepth: 32})
	defer tr.Close()

	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		q := make([]float32, 16)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		ns, err := sx.Search(q, k, resinfer.Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr.MaybeSample(q, ns, k)
	}
	snap := waitMeasured(t, tr, 20)
	if snap.RecallMean < 0.999 {
		t.Fatalf("exact serving scored recall %v, want 1.0", snap.RecallMean)
	}
	if snap.RecallWindowMean < 0.999 {
		t.Fatalf("window recall %v, want 1.0", snap.RecallWindowMean)
	}
	if snap.RecallEWMA < 0.999 {
		t.Fatalf("EWMA recall %v, want 1.0", snap.RecallEWMA)
	}
	if snap.RankDisplacementWindowMean != 0 {
		t.Fatalf("exact serving has rank displacement %v, want 0", snap.RankDisplacementWindowMean)
	}
	if snap.Sampled != 20 || snap.Dropped != 0 {
		t.Fatalf("sampled=%d dropped=%d, want 20/0", snap.Sampled, snap.Dropped)
	}
	var truthTotal uint64
	for _, sh := range snap.PerShard {
		truthTotal += sh.TruthNeighbors
		if sh.TruthNeighbors > 0 && sh.HitRate < 0.999 {
			t.Fatalf("shard %d hit rate %v under exact serving", sh.Shard, sh.HitRate)
		}
	}
	if truthTotal != 20*k {
		t.Fatalf("per-shard truth total %d, want %d", truthTotal, 20*k)
	}
	if snap.HotQueriesTotal != 20 || len(snap.HotQueries) == 0 {
		t.Fatalf("sketch saw %d offers (%d keys), want 20", snap.HotQueriesTotal, len(snap.HotQueries))
	}
}

func TestTrackerScoresDegradedServing(t *testing.T) {
	const k = 10
	sx, _ := buildSharded(t, 400, 16, 2, 9)
	tr := quality.NewTracker(sx, quality.Config{SampleRate: 1})
	defer tr.Close()

	rng := rand.New(rand.NewSource(10))
	q := make([]float32, 16)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	ns, err := sx.Search(q, k, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt half the answer with IDs that cannot be in the top-k, and
	// reverse the surviving order so displacement is non-zero.
	bad := make([]resinfer.Neighbor, k)
	for i := 0; i < k; i++ {
		bad[i] = ns[k-1-i]
	}
	for i := 0; i < k/2; i++ {
		bad[i].ID = 100000 + i
	}
	tr.MaybeSample(q, bad, k)
	snap := waitMeasured(t, tr, 1)
	if snap.RecallMean > 0.51 || snap.RecallMean < 0.49 {
		t.Fatalf("half-corrupt answer scored recall %v, want 0.5", snap.RecallMean)
	}
	if snap.RankDisplacementWindowMean == 0 {
		t.Fatalf("reversed answer scored zero rank displacement")
	}
}

// slowOracle blocks every ground-truth call until released.
type slowOracle struct {
	release chan struct{}
}

func (o *slowOracle) GroundTruthSearch(dst []resinfer.Neighbor, shards []int, q []float32, k int) ([]resinfer.Neighbor, []int, int, error) {
	<-o.release
	return dst, shards, 0, nil
}
func (o *slowOracle) NumShards() int { return 1 }

func TestTrackerDropsWhenSaturated(t *testing.T) {
	o := &slowOracle{release: make(chan struct{})}
	tr := quality.NewTracker(o, quality.Config{SampleRate: 1, Workers: 1, QueueDepth: 1})
	q := []float32{1, 2}
	served := []resinfer.Neighbor{{ID: 0}}
	// 1 in-flight with the worker + 1 queued; the rest must drop.
	for i := 0; i < 10; i++ {
		tr.MaybeSample(q, served, 1)
	}
	snap := tr.Snapshot()
	if snap.Dropped == 0 {
		t.Fatalf("saturated queue dropped nothing (sampled=%d)", snap.Sampled)
	}
	if snap.Sampled+snap.Dropped != 10 {
		t.Fatalf("sampled=%d + dropped=%d, want 10", snap.Sampled, snap.Dropped)
	}
	close(o.release)
	tr.Close()
}

func TestTrackerSampleRate(t *testing.T) {
	o := &slowOracle{release: make(chan struct{})}
	close(o.release) // never block
	tr := quality.NewTracker(o, quality.Config{SampleRate: 4, QueueDepth: 64})
	defer tr.Close()
	q := []float32{1}
	for i := 0; i < 100; i++ {
		tr.MaybeSample(q, nil, 1)
	}
	snap := tr.Snapshot()
	if snap.Sampled != 25 {
		t.Fatalf("rate-4 sampler admitted %d of 100, want 25", snap.Sampled)
	}
}

func TestNoteCompactionRollsEpoch(t *testing.T) {
	sx, _ := buildSharded(t, 200, 8, 2, 3)
	tr := quality.NewTracker(sx, quality.Config{SampleRate: 1})
	defer tr.Close()
	q := make([]float32, 8)
	ns, err := sx.Search(q, 5, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.MaybeSample(q, ns, 5)
	waitMeasured(t, tr, 1)
	tr.NoteCompaction()
	snap := tr.Snapshot()
	if snap.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", snap.Compactions)
	}
	if snap.PrevCompaction == nil || snap.PrevCompaction.Samples != 1 {
		t.Fatalf("previous epoch not retained: %+v", snap.PrevCompaction)
	}
	if snap.SinceCompaction.Samples != 0 {
		t.Fatalf("since-compaction epoch not reset: %+v", snap.SinceCompaction)
	}
}

func TestSpaceSavingHeavyHitters(t *testing.T) {
	s := quality.NewSpaceSaving(4)
	// One heavy key among noise wider than the sketch.
	for i := 0; i < 100; i++ {
		s.Offer(7777)
		s.Offer(uint64(1000 + i)) // all distinct
	}
	top := s.Top(4)
	if len(top) == 0 || top[0].Fingerprint != 7777 {
		t.Fatalf("heavy key missing from sketch top: %+v", top)
	}
	if top[0].Count < 100 {
		t.Fatalf("heavy key count %d, want >= 100 (space-saving never undercounts)", top[0].Count)
	}
	if s.Total() != 200 {
		t.Fatalf("total = %d, want 200", s.Total())
	}
}

func TestFingerprintQuantizes(t *testing.T) {
	a := []float32{0.5, -1.25, 3.0}
	b := []float32{0.5001, -1.2501, 3.0001} // same coarse grid cell
	c := []float32{0.5, -1.25, 3.5}
	if quality.Fingerprint(a) != quality.Fingerprint(b) {
		t.Fatal("near-duplicate queries fingerprint differently")
	}
	if quality.Fingerprint(a) == quality.Fingerprint(c) {
		t.Fatal("distinct queries collided")
	}
}

// TestQualityTrackerConcurrentIngestSearch exercises the shadow sampler
// under concurrent mutation and search — the CI -race leg's target.
func TestQualityTrackerConcurrentIngestSearch(t *testing.T) {
	const dim, k = 8, 5
	rng := rand.New(rand.NewSource(21))
	data := make([][]float32, 300)
	for i := range data {
		data[i] = make([]float32, dim)
		for j := range data[i] {
			data[i][j] = rng.Float32()
		}
	}
	mx, err := resinfer.NewMutable(data, resinfer.Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()
	tr := quality.NewTracker(mx, quality.Config{SampleRate: 2, QueueDepth: 16, Workers: 2})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := make([]float32, dim)
				for j := range v {
					v[j] = rng.Float32()
				}
				id, err := mx.Add(v)
				if err != nil {
					t.Error(err)
					return
				}
				if id%3 == 0 {
					if _, err := mx.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(100 + g))
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			q := make([]float32, dim)
			for i := 0; i < 200; i++ {
				for j := range q {
					q[j] = rng.Float32()
				}
				ns, err := mx.Search(q, k, resinfer.Exact, 0)
				if err != nil {
					t.Error(err)
					return
				}
				tr.MaybeSample(q, ns, k)
			}
		}(int64(200 + g))
	}
	// Roll compaction epochs concurrently with measurement.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := mx.Compact(); err != nil {
				t.Error(err)
				return
			}
			tr.NoteCompaction()
			tr.Snapshot()
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	tr.Close()
	snap := tr.Snapshot()
	if snap.Sampled == 0 {
		t.Fatal("nothing sampled under concurrent load")
	}
	// Under a mutating corpus recall stays an estimate — but exact-mode
	// serving should still mostly agree with ground truth taken moments
	// later; a wildly low figure signals a visibility bug.
	if snap.Measured > 0 && snap.RecallMean < 0.5 {
		t.Fatalf("concurrent exact serving scored recall %v", snap.RecallMean)
	}
}
