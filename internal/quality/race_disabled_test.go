//go:build !race

package quality_test

const raceEnabled = false
