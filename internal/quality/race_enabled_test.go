//go:build race

package quality_test

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so strict allocs-per-op tests skip.
const raceEnabled = true
