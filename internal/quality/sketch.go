// Package quality is the online answer-quality subsystem: it shadows a
// sampled fraction of live queries with exact ground-truth scans on an
// off-path worker pool, folds the resulting recall / rank-displacement
// / score-error measurements into windowed estimators, and tracks
// recall and latency SLO burn rates over multiple windows. Nothing in
// this package runs on the request hot path except Tracker.MaybeSample,
// which is a single atomic counter in the common (non-sampled) case.
package quality

import (
	"math"
	"sort"
	"sync"
)

// SpaceSaving is the classic space-saving heavy-hitter sketch over
// uint64 fingerprints: it keeps at most cap counters; when a new key
// arrives at capacity it replaces the minimum counter and inherits its
// count (recorded as the estimate's error bound). Any key whose true
// frequency exceeds N/cap is guaranteed to be present.
type SpaceSaving struct {
	mu    sync.Mutex
	cap   int
	idx   map[uint64]int // fingerprint -> slot
	slots []ssSlot
	total uint64
}

type ssSlot struct {
	fp    uint64
	count uint64
	err   uint64 // overestimate bound inherited at replacement
}

// NewSpaceSaving returns a sketch keeping at most capacity counters.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{
		cap:   capacity,
		idx:   make(map[uint64]int, capacity),
		slots: make([]ssSlot, 0, capacity),
	}
}

// Offer counts one occurrence of fp.
func (s *SpaceSaving) Offer(fp uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if i, ok := s.idx[fp]; ok {
		s.slots[i].count++
		return
	}
	if len(s.slots) < s.cap {
		s.idx[fp] = len(s.slots)
		s.slots = append(s.slots, ssSlot{fp: fp, count: 1})
		return
	}
	// Replace the minimum counter; the new key inherits its count as
	// both estimate and error bound.
	min := 0
	for i := 1; i < len(s.slots); i++ {
		if s.slots[i].count < s.slots[min].count {
			min = i
		}
	}
	old := s.slots[min]
	delete(s.idx, old.fp)
	s.slots[min] = ssSlot{fp: fp, count: old.count + 1, err: old.count}
	s.idx[fp] = min
}

// HotKey is one heavy-hitter estimate.
type HotKey struct {
	Fingerprint uint64  `json:"fingerprint"`
	Count       uint64  `json:"count"`
	ErrorBound  uint64  `json:"error_bound"`
	Share       float64 `json:"share"` // count / total offers
}

// Top returns up to n keys by descending estimated count.
func (s *SpaceSaving) Top(n int) []HotKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HotKey, 0, len(s.slots))
	for _, sl := range s.slots {
		share := 0.0
		if s.total > 0 {
			share = float64(sl.count) / float64(s.total)
		}
		out = append(out, HotKey{Fingerprint: sl.fp, Count: sl.count, ErrorBound: sl.err, Share: share})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Total returns the number of offers seen.
func (s *SpaceSaving) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Fingerprint hashes a query vector onto a coarse grid (FNV-1a over
// per-coordinate quantized values), so near-duplicate queries — the
// retry storms and hot prompts a result cache would want to serve —
// collide onto one heavy-hitter key.
func Fingerprint(q []float32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range q {
		g := math.Round(float64(v) * 16)
		if g > 32767 {
			g = 32767
		} else if g < -32768 {
			g = -32768
		}
		h ^= uint64(uint16(int16(g)))
		h *= prime64
	}
	return h
}
