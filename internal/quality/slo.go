package quality

import (
	"sync"
	"time"

	"resinfer/internal/obs"
)

// SLOConfig describes the service-level objectives the burn tracker
// evaluates: a latency objective ("LatencyTarget of requests finish
// within LatencyThreshold") and a recall objective ("mean shadow
// recall@k stays at or above RecallTarget").
type SLOConfig struct {
	LatencyThreshold time.Duration // default 100ms
	LatencyTarget    float64       // default 0.99
	RecallTarget     float64       // default 0.95
	FastWindow       time.Duration // default 5m
	SlowWindow       time.Duration // default 1h
	Tick             time.Duration // sampling cadence, default 10s
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 100 * time.Millisecond
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.RecallTarget <= 0 || c.RecallTarget >= 1 {
		c.RecallTarget = 0.95
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.Tick <= 0 {
		c.Tick = 10 * time.Second
	}
	return c
}

// Standard multi-window alert thresholds (error-budget burn
// multipliers): a fast burn this hot exhausts the monthly budget in
// hours; a slow burn this hot exhausts it in days.
const (
	FastBurnAlert = 14.4
	SlowBurnAlert = 6.0
)

// sloSample is one snapshot of the monotone SLO feeds.
type sloSample struct {
	t        time.Time
	latBelow uint64
	latTotal uint64
	recN     uint64
	recErr   float64
}

// SLO tracks multi-window error-budget burn rates by periodically
// snapshotting monotone counters (the request-duration histogram and
// the shadow-recall feed) and diffing the live values against the
// oldest snapshot inside each window.
type SLO struct {
	cfg     SLOConfig
	latency *obs.Histogram // request durations in seconds
	recall  *Tracker       // nil when shadow sampling is off

	mu      sync.Mutex
	samples []sloSample // ascending by time, pruned past SlowWindow
	now     func() time.Time

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewSLO builds the tracker over the server's request-duration
// histogram and (optionally, may be nil) the quality tracker, seeds it
// with a t0 sample so burn rates are defined immediately, and starts
// the snapshot ticker.
func NewSLO(latency *obs.Histogram, recall *Tracker, cfg SLOConfig) *SLO {
	s := &SLO{
		cfg:     cfg.withDefaults(),
		latency: latency,
		recall:  recall,
		now:     time.Now,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.snap()
	go s.loop()
	return s
}

func (s *SLO) loop() {
	defer close(s.done)
	tk := time.NewTicker(s.cfg.Tick)
	defer tk.Stop()
	for {
		select {
		case <-tk.C:
			s.snap()
		case <-s.stop:
			return
		}
	}
}

// current reads the live monotone feeds.
func (s *SLO) current() sloSample {
	below, total, _ := s.latency.CountAtOrBelow(s.cfg.LatencyThreshold.Seconds())
	smp := sloSample{t: s.now(), latBelow: below, latTotal: total}
	if s.recall != nil {
		smp.recN, smp.recErr = s.recall.RecallBurnFeed()
	}
	return smp
}

// snap appends a snapshot and prunes everything older than SlowWindow
// (keeping one sample beyond the edge so the slow window always has a
// baseline).
func (s *SLO) snap() {
	smp := s.current()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, smp)
	cutoff := smp.t.Add(-s.cfg.SlowWindow)
	first := 0
	for first < len(s.samples)-1 && s.samples[first+1].t.Before(cutoff) {
		first++
	}
	if first > 0 {
		s.samples = append(s.samples[:0], s.samples[first:]...)
	}
}

// baseline returns the oldest retained sample no older than window
// before now (or the oldest retained overall — right after start the
// t0 seed serves every window).
func (s *SLO) baseline(now time.Time, window time.Duration) sloSample {
	cutoff := now.Add(-window)
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.samples[0]
	for _, smp := range s.samples {
		if smp.t.After(cutoff) {
			// First sample inside the window: take it instead of the
			// last one outside only if it sits closer to the cutoff —
			// after a snapshot gap the nearer sample bounds the window
			// more faithfully.
			if cutoff.Sub(base.t) > smp.t.Sub(cutoff) {
				base = smp
			}
			break
		}
		base = smp
	}
	return base
}

// WindowBurn is one window's burn figures for one objective.
type WindowBurn struct {
	Window    string  `json:"window"`
	Seconds   float64 `json:"seconds"`
	Requests  uint64  `json:"requests"`
	ErrorRate float64 `json:"error_rate"`
	Burn      float64 `json:"burn"`
	Alerting  bool    `json:"alerting"`
}

// burnOver computes one objective's burn between base and cur.
func burnOver(errDelta, totalDelta float64, target float64, window string, seconds float64, alertAt float64) WindowBurn {
	wb := WindowBurn{Window: window, Seconds: seconds}
	if totalDelta <= 0 {
		return wb
	}
	wb.Requests = uint64(totalDelta)
	wb.ErrorRate = errDelta / totalDelta
	wb.Burn = wb.ErrorRate / (1 - target)
	wb.Alerting = wb.Burn >= alertAt
	return wb
}

// LatencyBurn returns the latency-objective burn over the given window.
func (s *SLO) latencyBurn(cur, base sloSample, name string, d time.Duration, alertAt float64) WindowBurn {
	total := float64(cur.latTotal) - float64(base.latTotal)
	ok := float64(cur.latBelow) - float64(base.latBelow)
	return burnOver(total-ok, total, s.cfg.LatencyTarget, name, d.Seconds(), alertAt)
}

// recallBurn returns the recall-objective burn over the given window.
// The "error rate" is the mean recall shortfall (1 − recall) per
// sample, so burn 1.0 means recall ran exactly at target.
func (s *SLO) recallBurn(cur, base sloSample, name string, d time.Duration, alertAt float64) WindowBurn {
	n := float64(cur.recN) - float64(base.recN)
	errSum := cur.recErr - base.recErr
	return burnOver(errSum, n, s.cfg.RecallTarget, name, d.Seconds(), alertAt)
}

// SLOSnapshot is the JSON body of GET /debug/slo.
type SLOSnapshot struct {
	LatencyThresholdMs float64 `json:"latency_threshold_ms"`
	LatencyTarget      float64 `json:"latency_target"`
	RecallTarget       float64 `json:"recall_target"`
	RecallTracked      bool    `json:"recall_tracked"`

	Latency []WindowBurn `json:"latency_burn"`
	Recall  []WindowBurn `json:"recall_burn,omitempty"`

	// Page when the fast AND slow windows both burn hot — the standard
	// multi-window condition that filters short blips without missing
	// sustained burns.
	LatencyPage bool `json:"latency_page"`
	RecallPage  bool `json:"recall_page"`
}

// Snapshot computes every window's burn figures from the live counters.
func (s *SLO) Snapshot() SLOSnapshot {
	cur := s.current()
	fastBase := s.baseline(cur.t, s.cfg.FastWindow)
	slowBase := s.baseline(cur.t, s.cfg.SlowWindow)

	out := SLOSnapshot{
		LatencyThresholdMs: float64(s.cfg.LatencyThreshold) / float64(time.Millisecond),
		LatencyTarget:      s.cfg.LatencyTarget,
		RecallTarget:       s.cfg.RecallTarget,
		RecallTracked:      s.recall != nil,
	}
	lf := s.latencyBurn(cur, fastBase, "fast", s.cfg.FastWindow, FastBurnAlert)
	ls := s.latencyBurn(cur, slowBase, "slow", s.cfg.SlowWindow, SlowBurnAlert)
	out.Latency = []WindowBurn{lf, ls}
	out.LatencyPage = lf.Alerting && ls.Alerting
	if s.recall != nil {
		rf := s.recallBurn(cur, fastBase, "fast", s.cfg.FastWindow, FastBurnAlert)
		rs := s.recallBurn(cur, slowBase, "slow", s.cfg.SlowWindow, SlowBurnAlert)
		out.Recall = []WindowBurn{rf, rs}
		out.RecallPage = rf.Alerting && rs.Alerting
	}
	return out
}

// Register exports the burn rates as scrape-time gauges.
func (s *SLO) Register(reg *obs.Registry) {
	mk := func(latency bool, fast bool) func() float64 {
		return func() float64 {
			cur := s.current()
			w, d := "slow", s.cfg.SlowWindow
			alertAt := SlowBurnAlert
			if fast {
				w, d, alertAt = "fast", s.cfg.FastWindow, FastBurnAlert
			}
			base := s.baseline(cur.t, d)
			if latency {
				return s.latencyBurn(cur, base, w, d, alertAt).Burn
			}
			return s.recallBurn(cur, base, w, d, alertAt).Burn
		}
	}
	reg.GaugeFunc("resinfer_slo_latency_burn",
		"Latency SLO error-budget burn rate (1.0 = burning exactly at target).",
		mk(true, true), obs.Label{Name: "window", Value: "fast"})
	reg.GaugeFunc("resinfer_slo_latency_burn",
		"Latency SLO error-budget burn rate (1.0 = burning exactly at target).",
		mk(true, false), obs.Label{Name: "window", Value: "slow"})
	if s.recall != nil {
		reg.GaugeFunc("resinfer_slo_recall_burn",
			"Recall SLO error-budget burn rate (1.0 = burning exactly at target).",
			mk(false, true), obs.Label{Name: "window", Value: "fast"})
		reg.GaugeFunc("resinfer_slo_recall_burn",
			"Recall SLO error-budget burn rate (1.0 = burning exactly at target).",
			mk(false, false), obs.Label{Name: "window", Value: "slow"})
	}
}

// Close stops the snapshot ticker. Idempotent.
func (s *SLO) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
}
