package quality

import (
	"math"
	"testing"
	"time"

	"resinfer/internal/obs"
)

// newTestSLO builds an SLO without the background ticker, on a fake
// clock the test advances by hand.
func newTestSLO(h *obs.Histogram, cfg SLOConfig, clock *time.Time) *SLO {
	s := &SLO{
		cfg:     cfg.withDefaults(),
		latency: h,
		now:     func() time.Time { return *clock },
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	close(s.done)
	s.snap()
	return s
}

func TestSLOLatencyBurn(t *testing.T) {
	h := obs.NewHistogram([]float64{0.01, 0.1, 1})
	clock := time.Unix(10000, 0)
	s := newTestSLO(h, SLOConfig{
		LatencyThreshold: 100 * time.Millisecond,
		LatencyTarget:    0.99,
		FastWindow:       5 * time.Minute,
		SlowWindow:       time.Hour,
	}, &clock)

	// 100 requests, 2 over threshold: error rate 2%, burn 2 at a 1%
	// budget.
	for i := 0; i < 98; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	h.Observe(0.5)
	clock = clock.Add(time.Minute)
	snap := s.Snapshot()
	if len(snap.Latency) != 2 {
		t.Fatalf("want 2 latency windows, got %d", len(snap.Latency))
	}
	fast := snap.Latency[0]
	if fast.Requests != 100 {
		t.Fatalf("fast window saw %d requests, want 100", fast.Requests)
	}
	if math.Abs(fast.ErrorRate-0.02) > 1e-9 {
		t.Fatalf("fast error rate %v, want 0.02", fast.ErrorRate)
	}
	if math.Abs(fast.Burn-2.0) > 1e-9 {
		t.Fatalf("fast burn %v, want 2.0", fast.Burn)
	}
	if fast.Alerting || snap.LatencyPage {
		t.Fatal("burn 2.0 must not alert at the 14.4 fast threshold")
	}
	if snap.RecallTracked || snap.Recall != nil {
		t.Fatal("recall section present without a tracker")
	}
}

func TestSLOWindowsDiverge(t *testing.T) {
	h := obs.NewHistogram([]float64{0.01, 0.1, 1})
	clock := time.Unix(20000, 0)
	s := newTestSLO(h, SLOConfig{
		LatencyThreshold: 100 * time.Millisecond,
		LatencyTarget:    0.99,
		FastWindow:       5 * time.Minute,
		SlowWindow:       time.Hour,
		Tick:             10 * time.Second,
	}, &clock)

	// A clean first half-hour...
	for i := 0; i < 1000; i++ {
		h.Observe(0.01)
	}
	clock = clock.Add(30 * time.Minute)
	s.snap()
	// ...then a brutal last minute: every request blows the threshold.
	for i := 0; i < 100; i++ {
		h.Observe(0.9)
	}
	clock = clock.Add(time.Minute)
	snap := s.Snapshot()
	fast, slow := snap.Latency[0], snap.Latency[1]
	// Fast window covers only the bad minute: 100% errors, burn 100.
	if fast.ErrorRate < 0.99 {
		t.Fatalf("fast error rate %v, want ~1.0", fast.ErrorRate)
	}
	if !fast.Alerting {
		t.Fatal("fast window must alert at burn 100")
	}
	// Slow window dilutes over 1100 requests: ~9% errors, burn ~9.
	if slow.ErrorRate > 0.2 {
		t.Fatalf("slow error rate %v, want ~0.09", slow.ErrorRate)
	}
	if !slow.Alerting {
		t.Fatalf("slow burn %v must still exceed the 6.0 threshold", slow.Burn)
	}
	if !snap.LatencyPage {
		t.Fatal("both windows hot must page")
	}
}

func TestSLORecallBurn(t *testing.T) {
	h := obs.NewHistogram([]float64{0.01})
	clock := time.Unix(30000, 0)
	tr := &Tracker{cfg: Config{}.withDefaults()}
	s := newTestSLO(h, SLOConfig{RecallTarget: 0.95}, &clock)
	s.recall = tr

	// 10 samples at recall 0.8: mean shortfall 0.2, budget 0.05 → burn 4.
	for i := 0; i < 10; i++ {
		tr.recallN.Add(1)
		addFloat(&tr.recallErrSumBits, 0.2)
	}
	clock = clock.Add(time.Minute)
	snap := s.Snapshot()
	if !snap.RecallTracked || len(snap.Recall) != 2 {
		t.Fatalf("recall burn missing: %+v", snap)
	}
	fast := snap.Recall[0]
	if fast.Requests != 10 {
		t.Fatalf("recall window saw %d samples, want 10", fast.Requests)
	}
	if math.Abs(fast.ErrorRate-0.2) > 1e-9 {
		t.Fatalf("recall error rate %v, want 0.2", fast.ErrorRate)
	}
	if math.Abs(fast.Burn-4.0) > 1e-9 {
		t.Fatalf("recall burn %v, want 4.0", fast.Burn)
	}
}

func TestSLOSamplePruning(t *testing.T) {
	h := obs.NewHistogram([]float64{0.01})
	clock := time.Unix(40000, 0)
	s := newTestSLO(h, SLOConfig{SlowWindow: time.Hour, Tick: time.Minute}, &clock)
	for i := 0; i < 300; i++ {
		clock = clock.Add(time.Minute)
		s.snap()
	}
	s.mu.Lock()
	n := len(s.samples)
	oldest := s.samples[0].t
	s.mu.Unlock()
	if n > 63 {
		t.Fatalf("ring retained %d samples for a 60-tick window", n)
	}
	if clock.Sub(oldest) > time.Hour+2*time.Minute {
		t.Fatalf("oldest sample %v old, want ~1h", clock.Sub(oldest))
	}
}

func TestSLORegisterAndClose(t *testing.T) {
	reg := obs.NewRegistry()
	h := obs.NewHistogram([]float64{0.01})
	s := NewSLO(h, nil, SLOConfig{Tick: time.Hour})
	s.Register(reg)
	var sb testWriter
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`resinfer_slo_latency_burn{window="fast"}`,
		`resinfer_slo_latency_burn{window="slow"}`,
	} {
		if !contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	if contains(out, "resinfer_slo_recall_burn") {
		t.Fatal("recall burn exported without a tracker")
	}
	s.Close()
	s.Close() // idempotent
}

type testWriter struct{ b []byte }

func (w *testWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *testWriter) String() string              { return string(w.b) }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
