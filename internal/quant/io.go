package quant

import (
	"errors"

	"resinfer/internal/matrix"
	"resinfer/internal/persist"
)

const (
	pqMagic  = "RIPQ1"
	opqMagic = "RIOPQ1"
)

// EncodeTo writes the product quantizer to w.
func (pq *PQ) EncodeTo(w *persist.Writer) {
	w.Magic(pqMagic)
	w.Int(pq.Dim)
	w.Int(pq.M)
	w.Int(pq.Nbits)
	w.Int(pq.K)
	w.Ints(pq.Bounds)
	w.Int(len(pq.Codebooks))
	for _, cb := range pq.Codebooks {
		w.F32Mat(cb)
	}
}

// DecodePQ reads a product quantizer written by EncodeTo.
func DecodePQ(r *persist.Reader) (*PQ, error) {
	r.Magic(pqMagic)
	pq := &PQ{
		Dim:    r.Int(),
		M:      r.Int(),
		Nbits:  r.Int(),
		K:      r.Int(),
		Bounds: r.Ints(),
	}
	nb := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nb < 0 || nb > persist.MaxSliceLen {
		return nil, errors.New("quant: corrupt codebook count")
	}
	pq.Codebooks = make([][][]float32, nb)
	for i := range pq.Codebooks {
		pq.Codebooks[i] = r.F32Mat()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if pq.Dim <= 0 || pq.M <= 0 || pq.M != nb || len(pq.Bounds) != pq.M+1 ||
		pq.Bounds[pq.M] != pq.Dim || pq.K != 1<<pq.Nbits {
		return nil, errors.New("quant: corrupt encoded PQ")
	}
	for _, cb := range pq.Codebooks {
		if len(cb) != pq.K {
			return nil, errors.New("quant: corrupt codebook size")
		}
	}
	return pq, nil
}

// EncodeTo writes the OPQ (rotation + PQ) to w.
func (o *OPQ) EncodeTo(w *persist.Writer) {
	w.Magic(opqMagic)
	o.Rotation.Encode(w)
	o.PQ.EncodeTo(w)
}

// DecodeOPQ reads an OPQ written by EncodeTo.
func DecodeOPQ(r *persist.Reader) (*OPQ, error) {
	r.Magic(opqMagic)
	rot, err := matrix.Decode(r)
	if err != nil {
		return nil, err
	}
	pq, err := DecodePQ(r)
	if err != nil {
		return nil, err
	}
	if rot.Rows != pq.Dim {
		return nil, errors.New("quant: OPQ rotation/PQ dimension mismatch")
	}
	return &OPQ{Rotation: rot, PQ: pq}, nil
}
