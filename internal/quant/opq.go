package quant

import (
	"errors"
	"fmt"
	"math/rand"

	"resinfer/internal/matrix"
	"resinfer/internal/store"
)

// OPQConfig controls Optimized Product Quantization training.
type OPQConfig struct {
	PQ PQConfig
	// Iters is the number of alternating (PQ-train, Procrustes) rounds of
	// the non-parametric OPQ optimization; default 5.
	Iters int
	// TrainSample caps the rows used during rotation optimization (each
	// round costs an SVD plus a PQ training); default 16384, matching the
	// paper's 65536-row OPQ sample in spirit at our scaled-down sizes.
	// 0 means use all rows.
	TrainSample int
	Seed        int64
}

// OPQ is a trained optimized product quantizer: an orthogonal rotation R
// followed by a PQ in the rotated space.
type OPQ struct {
	Rotation *matrix.Matrix // D x D; applied as y = R x
	PQ       *PQ
}

// TrainOPQ fits OPQ on the rows of data using non-parametric alternating
// optimization (Ge et al., TPAMI 2014): rotate, train PQ, reconstruct,
// re-solve the rotation by Procrustes, repeat.
func TrainOPQ(data *store.Matrix, cfg OPQConfig) (*OPQ, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("quant: empty training data")
	}
	d := data.Dim()
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	if cfg.TrainSample == 0 {
		cfg.TrainSample = 16384
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	sampleIdx := randPerm(data.Rows(), cfg.TrainSample, rng)
	sample, err := store.New(len(sampleIdx), d)
	if err != nil {
		return nil, err
	}
	for i, j := range sampleIdx {
		sample.SetRow(i, data.Row(j))
	}

	rot := matrix.Identity(d)
	rotated, err := store.New(sample.Rows(), d)
	if err != nil {
		return nil, err
	}
	var pq *PQ
	rec := make([]float32, d)
	code := make([]byte, 0)
	for iter := 0; iter < cfg.Iters; iter++ {
		for i := 0; i < sample.Rows(); i++ {
			if err := rot.ApplyF32Into(rotated.Row(i), sample.Row(i)); err != nil {
				return nil, err
			}
		}
		pqCfg := cfg.PQ
		pqCfg.Seed = cfg.Seed + int64(iter)
		// Cheap codebooks during the alternation; the final full training
		// happens after the loop.
		if pqCfg.TrainIters <= 0 {
			pqCfg.TrainIters = 8
		}
		pq, err = TrainPQ(rotated, pqCfg)
		if err != nil {
			return nil, fmt.Errorf("quant: OPQ iter %d: %w", iter, err)
		}
		if iter == cfg.Iters-1 {
			break // rotation from this round would be unused
		}
		if len(code) != pq.M {
			code = make([]byte, pq.M)
		}
		// Cross-covariance C = Σ x_i y_i^T between original rows x and
		// reconstructed rotated rows y; the Procrustes solution R = V U^T
		// maximizes tr(R C), i.e. minimizes Σ ||R x_i - y_i||².
		c := matrix.New(d, d)
		for i := 0; i < sample.Rows(); i++ {
			if err := pq.EncodeInto(code, rotated.Row(i)); err != nil {
				return nil, err
			}
			if err := pq.DecodeInto(rec, code); err != nil {
				return nil, err
			}
			row := sample.Row(i)
			for a := 0; a < d; a++ {
				xa := float64(row[a])
				if xa == 0 {
					continue
				}
				crow := c.Row(a)
				for b := 0; b < d; b++ {
					crow[b] += xa * float64(rec[b])
				}
			}
		}
		newRot, err := matrix.Procrustes(c)
		if err != nil {
			return nil, fmt.Errorf("quant: OPQ Procrustes: %w", err)
		}
		rot = newRot
	}
	// Final codebooks trained at full strength in the final rotation.
	for i := 0; i < sample.Rows(); i++ {
		if err := rot.ApplyF32Into(rotated.Row(i), sample.Row(i)); err != nil {
			return nil, err
		}
	}
	finalCfg := cfg.PQ
	finalCfg.Seed = cfg.Seed + 1_000_003
	finalPQ, err := TrainPQ(rotated, finalCfg)
	if err != nil {
		return nil, err
	}
	return &OPQ{Rotation: rot, PQ: finalPQ}, nil
}

// Rotate applies the learned rotation to x.
func (o *OPQ) Rotate(x []float32) ([]float32, error) {
	return o.Rotation.ApplyF32(x)
}

// RotateInto applies the learned rotation to x into dst (length Dim),
// allocating nothing.
func (o *OPQ) RotateInto(dst, x []float32) error {
	return o.Rotation.ApplyF32Into(dst, x)
}

// Encode rotates then quantizes x.
func (o *OPQ) Encode(x []float32) ([]byte, error) {
	y, err := o.Rotate(x)
	if err != nil {
		return nil, err
	}
	return o.PQ.Encode(y)
}

// EncodeAll rotates and quantizes every row into a flat code array.
func (o *OPQ) EncodeAll(data *store.Matrix) ([]byte, error) {
	codes := make([]byte, data.Rows()*o.PQ.M)
	y := make([]float32, o.PQ.Dim)
	for i := 0; i < data.Rows(); i++ {
		if err := o.RotateInto(y, data.Row(i)); err != nil {
			return nil, err
		}
		if err := o.PQ.EncodeInto(codes[i*o.PQ.M:(i+1)*o.PQ.M], y); err != nil {
			return nil, err
		}
	}
	return codes, nil
}

// BuildLUT rotates the query and builds the asymmetric-distance table in
// the rotated space.
func (o *OPQ) BuildLUT(q []float32) (*LUT, error) {
	lut := &LUT{}
	if err := o.BuildLUTInto(lut, make([]float32, o.PQ.Dim), q); err != nil {
		return nil, err
	}
	return lut, nil
}

// BuildLUTInto rotates q into rotScratch (length Dim) and fills lut,
// reusing lut.Tab — the allocation-free path for pooled evaluators.
func (o *OPQ) BuildLUTInto(lut *LUT, rotScratch, q []float32) error {
	if err := o.RotateInto(rotScratch, q); err != nil {
		return err
	}
	return o.PQ.BuildLUTInto(lut, rotScratch)
}

// ReconstructionError returns ||Rx - decode(encode(Rx))||² for x. Rotation
// is an isometry, so this equals the reconstruction error in the original
// space.
func (o *OPQ) ReconstructionError(x []float32) (float32, error) {
	y, err := o.Rotate(x)
	if err != nil {
		return 0, err
	}
	return o.PQ.ReconstructionError(y)
}

// QuantizationError returns the mean reconstruction error of the given
// rows — the objective OPQ minimizes, exposed for tests and diagnostics.
func (o *OPQ) QuantizationError(data *store.Matrix) (float64, error) {
	if data == nil || data.Rows() == 0 {
		return 0, errors.New("quant: empty data")
	}
	var s float64
	for i := 0; i < data.Rows(); i++ {
		e, err := o.ReconstructionError(data.Row(i))
		if err != nil {
			return 0, err
		}
		s += float64(e)
	}
	return s / float64(data.Rows()), nil
}
