// Package quant implements Product Quantization (PQ) and Optimized Product
// Quantization (OPQ) — the quantization-based approximate distances of §II-B
// and §V-B of the paper. PQ splits the vector into M subspaces, quantizes
// each against a learned codebook, and computes query-to-code asymmetric
// distances with per-query lookup tables (m table lookups per distance).
// OPQ additionally learns an orthogonal rotation minimizing quantization
// error via alternating PQ training and a Procrustes solve.
package quant

import (
	"errors"
	"fmt"
	"math/rand"

	"resinfer/internal/kmeans"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// PQConfig controls product-quantizer training.
type PQConfig struct {
	M     int // number of subspaces (required, >= 1)
	Nbits int // bits per code; centroids per subspace = 1<<Nbits; default 8, max 8
	// TrainIters bounds the k-means iterations per subspace; default 20.
	TrainIters int
	Seed       int64
}

// PQ is a trained product quantizer.
type PQ struct {
	Dim    int
	M      int
	Nbits  int
	K      int   // centroids per subspace = 1 << Nbits
	Bounds []int // len M+1; subspace m covers dims [Bounds[m], Bounds[m+1])
	// Codebooks[m][k] is the k-th centroid of subspace m (length of the
	// subspace).
	Codebooks [][][]float32
}

// TrainPQ fits a product quantizer on the rows of data.
func TrainPQ(data *store.Matrix, cfg PQConfig) (*PQ, error) {
	if data == nil || data.Rows() == 0 {
		return nil, errors.New("quant: empty training data")
	}
	d := data.Dim()
	if cfg.M < 1 || cfg.M > d {
		return nil, fmt.Errorf("quant: M=%d invalid for dim %d", cfg.M, d)
	}
	if cfg.Nbits == 0 {
		cfg.Nbits = 8
	}
	if cfg.Nbits < 1 || cfg.Nbits > 8 {
		return nil, fmt.Errorf("quant: Nbits=%d outside [1,8]", cfg.Nbits)
	}
	if cfg.TrainIters <= 0 {
		cfg.TrainIters = 20
	}
	k := 1 << cfg.Nbits
	if k > data.Rows() {
		return nil, fmt.Errorf("quant: %d centroids exceed %d training rows", k, data.Rows())
	}
	pq := &PQ{
		Dim:       d,
		M:         cfg.M,
		Nbits:     cfg.Nbits,
		K:         k,
		Bounds:    subspaceBounds(d, cfg.M),
		Codebooks: make([][][]float32, cfg.M),
	}
	for m := 0; m < cfg.M; m++ {
		lo, hi := pq.Bounds[m], pq.Bounds[m+1]
		sub, err := store.New(data.Rows(), hi-lo)
		if err != nil {
			return nil, err
		}
		for i := 0; i < data.Rows(); i++ {
			sub.SetRow(i, data.Row(i)[lo:hi])
		}
		res, err := kmeans.Train(sub, kmeans.Config{
			K:        k,
			MaxIters: cfg.TrainIters,
			Seed:     cfg.Seed + int64(m)*7919,
		})
		if err != nil {
			return nil, fmt.Errorf("quant: subspace %d: %w", m, err)
		}
		pq.Codebooks[m] = res.Centroids.ToRows()
	}
	return pq, nil
}

// subspaceBounds splits d dimensions into m contiguous ranges whose sizes
// differ by at most one, so dimensions not divisible by M still work.
func subspaceBounds(d, m int) []int {
	bounds := make([]int, m+1)
	base, rem := d/m, d%m
	for i := 0; i < m; i++ {
		size := base
		if i < rem {
			size++
		}
		bounds[i+1] = bounds[i] + size
	}
	return bounds
}

// Encode quantizes x into M code bytes.
func (pq *PQ) Encode(x []float32) ([]byte, error) {
	code := make([]byte, pq.M)
	if err := pq.EncodeInto(code, x); err != nil {
		return nil, err
	}
	return code, nil
}

// EncodeInto quantizes x into code (length M), allocating nothing.
func (pq *PQ) EncodeInto(code []byte, x []float32) error {
	if len(x) != pq.Dim {
		return errors.New("quant: dimension mismatch in Encode")
	}
	if len(code) != pq.M {
		return errors.New("quant: code length mismatch in Encode")
	}
	for m := 0; m < pq.M; m++ {
		lo, hi := pq.Bounds[m], pq.Bounds[m+1]
		best, _ := kmeans.NearestCentroidRows(pq.Codebooks[m], x[lo:hi])
		code[m] = byte(best)
	}
	return nil
}

// EncodeAll quantizes every row of data, returning a flat code array of
// data.Rows()*M bytes (row i at codes[i*M:(i+1)*M]).
func (pq *PQ) EncodeAll(data *store.Matrix) ([]byte, error) {
	codes := make([]byte, data.Rows()*pq.M)
	for i := 0; i < data.Rows(); i++ {
		if err := pq.EncodeInto(codes[i*pq.M:(i+1)*pq.M], data.Row(i)); err != nil {
			return nil, err
		}
	}
	return codes, nil
}

// Decode reconstructs the vector represented by code.
func (pq *PQ) Decode(code []byte) ([]float32, error) {
	out := make([]float32, pq.Dim)
	if err := pq.DecodeInto(out, code); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto reconstructs the vector represented by code into out (length
// Dim), allocating nothing.
func (pq *PQ) DecodeInto(out []float32, code []byte) error {
	if len(code) != pq.M {
		return errors.New("quant: code length mismatch in Decode")
	}
	if len(out) != pq.Dim {
		return errors.New("quant: output length mismatch in Decode")
	}
	for m := 0; m < pq.M; m++ {
		lo := pq.Bounds[m]
		copy(out[lo:pq.Bounds[m+1]], pq.Codebooks[m][code[m]])
	}
	return nil
}

// LUT is a per-query lookup table of squared distances from the query's
// subvectors to every centroid: LUT[m*K+k] = ||q_m - c_{m,k}||².
type LUT struct {
	M, K int
	Tab  []float32
}

// BuildLUT computes the asymmetric-distance lookup table for query q.
// Building costs O(D * K); each subsequent distance costs M lookups.
func (pq *PQ) BuildLUT(q []float32) (*LUT, error) {
	lut := &LUT{}
	if err := pq.BuildLUTInto(lut, q); err != nil {
		return nil, err
	}
	return lut, nil
}

// BuildLUTInto fills lut for query q, reusing lut.Tab when it is already
// large enough — the allocation-free path for pooled evaluators.
func (pq *PQ) BuildLUTInto(lut *LUT, q []float32) error {
	if len(q) != pq.Dim {
		return errors.New("quant: dimension mismatch in BuildLUT")
	}
	lut.M, lut.K = pq.M, pq.K
	if cap(lut.Tab) < pq.M*pq.K {
		lut.Tab = make([]float32, pq.M*pq.K)
	}
	lut.Tab = lut.Tab[:pq.M*pq.K]
	for m := 0; m < pq.M; m++ {
		lo, hi := pq.Bounds[m], pq.Bounds[m+1]
		qm := q[lo:hi]
		base := m * pq.K
		for k, c := range pq.Codebooks[m] {
			lut.Tab[base+k] = vec.L2Sq(qm, c)
		}
	}
	return nil
}

// Distance returns the asymmetric distance of the point whose codes are
// given, using the query's lookup table.
func (l *LUT) Distance(code []byte) float32 {
	var s float32
	for m, c := range code {
		s += l.Tab[m*l.K+int(c)]
	}
	return s
}

// ReconstructionError returns ||x - decode(encode(x))||², the quantization
// residual energy. DDCopq feeds this per-point value to its linear
// classifier as the third feature.
func (pq *PQ) ReconstructionError(x []float32) (float32, error) {
	code, err := pq.Encode(x)
	if err != nil {
		return 0, err
	}
	dec, err := pq.Decode(code)
	if err != nil {
		return 0, err
	}
	return vec.L2Sq(x, dec), nil
}

// CodeBytes returns the storage in bytes for n encoded points: the paper's
// n·M·nbits bits (§VI-B).
func (pq *PQ) CodeBytes(n int) int {
	return n * pq.M * pq.Nbits / 8
}

// randPerm is exposed for deterministic subsampling by OPQ training.
func randPerm(n, k int, rng *rand.Rand) []int {
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.Perm(n)[:k]
}
