package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resinfer/internal/store"
	"resinfer/internal/vec"
)

func gaussData(r *rand.Rand, n, d int) *store.Matrix {
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			// Correlated coordinates make OPQ's rotation worth learning.
			base := r.NormFloat64()
			row[j] = float32(base + 0.3*r.NormFloat64())
		}
		data[i] = row
	}
	return store.MustFromRows(data)
}

// subMat returns a copy of the first n rows of m.
func subMat(m *store.Matrix, n int) *store.Matrix {
	out, err := store.New(n, m.Dim())
	if err != nil {
		panic(err)
	}
	copy(out.Flat(), m.Flat()[:n*m.Dim()])
	return out
}

func TestSubspaceBounds(t *testing.T) {
	b := subspaceBounds(10, 3)
	want := []int{0, 4, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	b = subspaceBounds(8, 4)
	if b[4] != 8 || b[1] != 2 {
		t.Fatalf("even bounds = %v", b)
	}
}

func TestTrainPQErrors(t *testing.T) {
	if _, err := TrainPQ(nil, PQConfig{M: 2}); err == nil {
		t.Fatal("expected empty error")
	}
	data := gaussData(rand.New(rand.NewSource(1)), 300, 8)
	if _, err := TrainPQ(data, PQConfig{M: 0}); err == nil {
		t.Fatal("expected M<1 error")
	}
	if _, err := TrainPQ(data, PQConfig{M: 9}); err == nil {
		t.Fatal("expected M>dim error")
	}
	if _, err := TrainPQ(data, PQConfig{M: 2, Nbits: 12}); err == nil {
		t.Fatal("expected Nbits error")
	}
	if _, err := TrainPQ(subMat(data, 10), PQConfig{M: 2, Nbits: 8}); err == nil {
		t.Fatal("expected too-few-rows error")
	}
}

func TestPQEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := gaussData(r, 500, 12)
	pq, err := TrainPQ(data, PQConfig{M: 4, Nbits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Decoding a centroid-exact vector must be lossless.
	comp := make([]float32, 12)
	for m := 0; m < pq.M; m++ {
		copy(comp[pq.Bounds[m]:pq.Bounds[m+1]], pq.Codebooks[m][3])
	}
	code, err := pq.Encode(comp)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := pq.Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(comp, dec, 1e-6) {
		t.Fatal("centroid vector must round-trip exactly")
	}
}

func TestPQReconstructionBetterThanRandomCode(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := gaussData(r, 800, 16)
	pq, err := TrainPQ(data, PQConfig{M: 4, Nbits: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var encErr, randErr float64
	for ri := 0; ri < 100; ri++ {
		row := data.Row(ri)
		e, err := pq.ReconstructionError(row)
		if err != nil {
			t.Fatal(err)
		}
		encErr += float64(e)
		rc := make([]byte, pq.M)
		for m := range rc {
			rc[m] = byte(r.Intn(pq.K))
		}
		dec, _ := pq.Decode(rc)
		randErr += float64(vec.L2Sq(row, dec))
	}
	if encErr >= randErr {
		t.Fatalf("encoded error %v must beat random-code error %v", encErr, randErr)
	}
}

// Property: LUT asymmetric distance equals the explicit distance between q
// and the decoded vector.
func TestLUTMatchesDecodedDistance(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := gaussData(r, 400, 10)
	pq, err := TrainPQ(data, PQConfig{M: 5, Nbits: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		q := make([]float32, 10)
		for i := range q {
			q[i] = float32(rr.NormFloat64())
		}
		lut, err := pq.BuildLUT(q)
		if err != nil {
			return false
		}
		x := data.Row(rr.Intn(data.Rows()))
		code, _ := pq.Encode(x)
		dec, _ := pq.Decode(code)
		got := float64(lut.Distance(code))
		want := vec.L2Sq64(q, dec)
		return math.Abs(got-want) < 1e-2*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAllLayout(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := gaussData(r, 100, 8)
	pq, err := TrainPQ(data, PQConfig{M: 4, Nbits: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	codes, err := pq.EncodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != 100*4 {
		t.Fatalf("codes len = %d", len(codes))
	}
	c7, _ := pq.Encode(data.Row(7))
	for m := 0; m < 4; m++ {
		if codes[7*4+m] != c7[m] {
			t.Fatal("EncodeAll layout mismatch")
		}
	}
}

func TestCodeBytes(t *testing.T) {
	pq := &PQ{M: 16, Nbits: 8}
	if got := pq.CodeBytes(1000); got != 16000 {
		t.Fatalf("CodeBytes = %d", got)
	}
	pq4 := &PQ{M: 16, Nbits: 4}
	if got := pq4.CodeBytes(1000); got != 8000 {
		t.Fatalf("CodeBytes nbits=4 = %d", got)
	}
}

func TestOPQImprovesOverIdentityStart(t *testing.T) {
	// On anisotropic, correlated data the learned rotation should not be
	// worse than plain PQ (identity rotation).
	r := rand.New(rand.NewSource(6))
	n, d := 1500, 16
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		shared := r.NormFloat64() * 3
		for j := range row {
			row[j] = float32(shared*math.Pow(0.8, float64(j)) + 0.4*r.NormFloat64())
		}
		data[i] = row
	}
	pqCfg := PQConfig{M: 4, Nbits: 5, Seed: 11}
	mat := store.MustFromRows(data)
	pq, err := TrainPQ(mat, pqCfg)
	if err != nil {
		t.Fatal(err)
	}
	var pqErr float64
	for _, row := range data[:300] {
		e, _ := pq.ReconstructionError(row)
		pqErr += float64(e)
	}
	pqErr /= 300

	opq, err := TrainOPQ(mat, OPQConfig{PQ: pqCfg, Iters: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	opqErr, err := opq.QuantizationError(subMat(mat, 300))
	if err != nil {
		t.Fatal(err)
	}
	if opqErr > pqErr*1.05 {
		t.Fatalf("OPQ error %v should not exceed PQ error %v", opqErr, pqErr)
	}
}

func TestOPQRotationOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := gaussData(r, 600, 12)
	opq, err := TrainOPQ(data, OPQConfig{PQ: PQConfig{M: 3, Nbits: 4}, Iters: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !opq.Rotation.IsOrthonormal(1e-6) {
		t.Fatal("OPQ rotation must stay orthonormal")
	}
}

func TestOPQLUTMatchesDecoded(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := gaussData(r, 500, 10)
	opq, err := TrainOPQ(data, OPQConfig{PQ: PQConfig{M: 5, Nbits: 4}, Iters: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q := data.Row(0)
	lut, err := opq.BuildLUT(q)
	if err != nil {
		t.Fatal(err)
	}
	x := data.Row(42)
	code, err := opq.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	rotQ, _ := opq.Rotate(q)
	dec, _ := opq.PQ.Decode(code)
	want := vec.L2Sq64(rotQ, dec)
	got := float64(lut.Distance(code))
	if math.Abs(got-want) > 1e-2*(1+want) {
		t.Fatalf("OPQ LUT distance %v, want %v", got, want)
	}
}

func TestOPQEmptyData(t *testing.T) {
	if _, err := TrainOPQ(nil, OPQConfig{PQ: PQConfig{M: 2}}); err == nil {
		t.Fatal("expected empty error")
	}
}

func BenchmarkLUTDistance(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	data := gaussData(r, 400, 32)
	pq, err := TrainPQ(data, PQConfig{M: 8, Nbits: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	lut, _ := pq.BuildLUT(data.Row(0))
	code, _ := pq.Encode(data.Row(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lut.Distance(code)
	}
}
