//go:build race

package raceguard

// Enabled reports whether the race detector is compiled in.
const Enabled = true
