// Package raceguard exposes whether the race detector is compiled into
// the current binary. Race instrumentation allocates, so strict
// allocs-per-op guard tests (the 0-alloc search-path contracts) consult
// raceguard.Enabled and skip under -race instead of reporting phantom
// allocations.
//
// This is the single home for the build-tag pair; test packages import
// it instead of each carrying their own race_enabled/race_disabled file
// duo.
package raceguard
