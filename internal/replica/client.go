package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"resinfer"
	"resinfer/internal/fault"
	"resinfer/internal/wal"
)

// lastLSNHeader carries the primary's applied LSN on checkpoint and WAL
// tail responses, so a follower can tell when its cursor has caught up
// to the state the primary is serving.
const lastLSNHeader = "X-Resinfer-Last-Lsn"

// ErrGone reports a WAL tail request for a cursor the primary has
// already trimmed behind a checkpoint: the follower's history is
// unrecoverable over the stream and it must re-sync from a fresh
// snapshot (in practice: restart with -join).
var ErrGone = errors.New("replica: cursor behind the primary's trimmed WAL; re-sync from a fresh snapshot")

// Client is the HTTP side of replication: health probes, snapshot
// fetch, WAL tail streaming and hedged shard searches, all against a
// peer's base URL. A zero Client is not usable; construct with
// NewClient. Client is safe for concurrent use.
type Client struct {
	hc *http.Client
}

// NewClient builds a replication client. timeout caps probe and shard
// search requests end to end; snapshot fetches and tail streams run
// under the caller's context instead (they are long transfers).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Client{hc: &http.Client{Timeout: timeout}}
}

// streamClient strips the flat timeout for snapshot and tail transfers,
// sharing the underlying transport (and its connection pool).
func (c *Client) streamClient() *http.Client {
	return &http.Client{Transport: c.hc.Transport}
}

// ProbeReady asks one peer whether it is ready to serve: a 200 from
// GET /readyz. member is the peer's index in its Set, threaded to the
// replica.probe fault site so chaos tests can partition one member.
func (c *Client) ProbeReady(ctx context.Context, base string, member int) error {
	if err := fault.CheckArg(fault.SiteReplicaProbe, member); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: %s/readyz: %s", base, resp.Status)
	}
	return nil
}

// FetchCheckpoint streams the primary's checkpoint snapshot — the exact
// bytes MutableIndex.Save writes, loadable with LoadMutable. The caller
// owns closing the returned body.
func (c *Client) FetchCheckpoint(ctx context.Context, base string) (io.ReadCloser, error) {
	if err := fault.Check(fault.SiteReplicaFetch); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/internal/replica/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.streamClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("replica: %s/internal/replica/checkpoint: %s", base, resp.Status)
	}
	return resp.Body, nil
}

// Tail is one WAL tail response: a stream of records with LSN > the
// requested cursor, plus the primary's applied LSN at response time —
// the high-water mark the follower compares its cursor against to
// decide it has caught up.
type Tail struct {
	// LastLSN is the primary's applied LSN when the tail was cut.
	LastLSN uint64

	sr   *wal.StreamReader
	body io.Closer
}

// Next returns the next record of the tail; io.EOF at the end. A
// wal.ErrStreamCorrupt means the transfer was damaged in flight — the
// follower re-requests from its cursor, which has only advanced past
// records that decoded cleanly.
func (t *Tail) Next() (wal.Record, error) { return t.sr.Next() }

// Close releases the underlying response body.
func (t *Tail) Close() error { return t.body.Close() }

// StreamTail requests the primary's WAL records with LSN > from. It
// returns ErrGone when the primary has trimmed past the cursor (HTTP
// 410): the follower cannot catch up over the stream any more.
func (c *Client) StreamTail(ctx context.Context, base string, from uint64) (*Tail, error) {
	if err := fault.Check(fault.SiteReplicaStream); err != nil {
		return nil, err
	}
	u := base + "/internal/replica/wal?from=" + strconv.FormatUint(from, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.streamClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusGone {
		resp.Body.Close()
		return nil, ErrGone
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("replica: %s: %s", u, resp.Status)
	}
	last, err := strconv.ParseUint(resp.Header.Get(lastLSNHeader), 10, 64)
	if err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("replica: %s: bad %s header: %w", u, lastLSNHeader, err)
	}
	return &Tail{LastLSN: last, sr: wal.NewStreamReader(resp.Body), body: resp.Body}, nil
}

// shardSearchRequest is the wire form of a hedged shard probe; the
// response carries the shard's contribution in global, merge-ready form
// (SearchShardGlobal's output).
type shardSearchRequest struct {
	Shard  int       `json:"shard"`
	Query  []float32 `json:"query"`
	K      int       `json:"k"`
	Mode   string    `json:"mode"`
	Budget int       `json:"budget"`
}

type shardNeighborJSON struct {
	ID int `json:"id"`
	// Key is the cross-shard merge key (resinfer.Neighbor.Distance in
	// global form), not necessarily a user-facing distance.
	Key float32 `json:"key"`
}

type shardSearchResponse struct {
	Neighbors   []shardNeighborJSON `json:"neighbors"`
	Comparisons int64               `json:"comparisons"`
	Pruned      int64               `json:"pruned"`
}

// ShardSearch re-issues one shard's query to a peer replica — the
// transport half of a hedge — and returns the shard's contribution in
// global, merge-ready form.
func (c *Client) ShardSearch(ctx context.Context, base string, shard int, q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error) {
	body, err := json.Marshal(shardSearchRequest{Shard: shard, Query: q, K: k, Mode: string(mode), Budget: budget})
	if err != nil {
		return nil, resinfer.SearchStats{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/internal/shard/search", bytes.NewReader(body))
	if err != nil {
		return nil, resinfer.SearchStats{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, resinfer.SearchStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, resinfer.SearchStats{}, fmt.Errorf("replica: %s/internal/shard/search: %s: %s", base, resp.Status, bytes.TrimSpace(msg))
	}
	var sr shardSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, resinfer.SearchStats{}, fmt.Errorf("replica: decoding shard search response: %w", err)
	}
	ns := make([]resinfer.Neighbor, len(sr.Neighbors))
	for i, n := range sr.Neighbors {
		ns[i] = resinfer.Neighbor{ID: n.ID, Distance: n.Key}
	}
	st := resinfer.SearchStats{Comparisons: sr.Comparisons, Pruned: sr.Pruned, ShardsOK: 1}
	return ns, st, nil
}

// Status mirrors GET /internal/replica/status: the primary's applied
// LSN and row count, for diagnostics and tests.
type Status struct {
	AppliedLSN uint64 `json:"applied_lsn"`
	Points     int    `json:"points"`
}

// FetchStatus reads a peer's replication status document.
func (c *Client) FetchStatus(ctx context.Context, base string) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/internal/replica/status", nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("replica: %s/internal/replica/status: %s", base, resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, err
	}
	return st, nil
}
