// Package replica turns a set of annserve processes into a replicated
// serving group. Each process serves the full index; peers reach each
// other over the same HTTP listener that serves clients:
//
//   - A serving replica probes its peers' /readyz, maintains a
//     health-checked member set (consecutive-failure ejection, backoff
//     re-probe, re-admission), and hedges slow or failed shard probes
//     onto a healthy peer via POST /internal/shard/search.
//   - A joining replica fetches the primary's checkpoint snapshot from
//     GET /internal/replica/checkpoint, then streams the WAL tail from
//     GET /internal/replica/wal?from=<lsn> and replays it until caught
//     up, serving read-only (readyz 503) in the meantime.
//
// The package owns the replication topology and transport only; the
// hedged fan-out itself lives in the resinfer package
// (ShardedIndex.SetShardHedger), and the HTTP endpoints a peer answers
// live in internal/server.
package replica

import (
	"fmt"
	"net/url"
	"strings"
	"time"
)

// ParsePeers validates a comma-separated list of peer base URLs (the
// annserve -replicas flag). Every entry must be an absolute http or
// https URL with a host and no query or fragment; trailing slashes are
// stripped so path joins are uniform. Errors name the offending entry
// and what a valid one looks like, so a typo fails at flag-parse time
// with something actionable.
func ParsePeers(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	peers := make([]string, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for i, part := range parts {
		raw := strings.TrimSpace(part)
		if raw == "" {
			return nil, fmt.Errorf("replica: -replicas entry %d is empty (want comma-separated base URLs like http://host:8080, got %q)", i+1, spec)
		}
		u, err := normalizeBase(raw)
		if err != nil {
			return nil, fmt.Errorf("replica: -replicas entry %d: %w", i+1, err)
		}
		if seen[u] {
			return nil, fmt.Errorf("replica: -replicas lists %s twice", u)
		}
		seen[u] = true
		peers = append(peers, u)
	}
	return peers, nil
}

// ParseJoin validates the -join flag: the base URL of the primary a
// fresh replica fetches its snapshot from, same shape rules as one
// -replicas entry.
func ParseJoin(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", nil
	}
	u, err := normalizeBase(raw)
	if err != nil {
		return "", fmt.Errorf("replica: -join: %w", err)
	}
	return u, nil
}

// ValidateHedgeDelay rejects a negative -hedge-delay. Zero is valid and
// means "adaptive": the serving process tracks the observed per-shard
// p95 and retunes the delay live.
func ValidateHedgeDelay(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("replica: -hedge-delay %v is negative (want 0 for adaptive-from-p95, or a positive duration like 20ms)", d)
	}
	return nil
}

// normalizeBase parses and canonicalizes one peer base URL.
func normalizeBase(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("parsing %q: %w (want a base URL like http://host:8080)", raw, err)
	}
	switch u.Scheme {
	case "http", "https":
	case "":
		return "", fmt.Errorf("%q has no scheme (want a base URL like http://host:8080)", raw)
	default:
		return "", fmt.Errorf("%q uses scheme %q (want http or https)", raw, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("%q has no host (want a base URL like http://host:8080)", raw)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("%q carries a query or fragment; a peer is addressed by its base URL only", raw)
	}
	u.Path = strings.TrimRight(u.Path, "/")
	return u.String(), nil
}
