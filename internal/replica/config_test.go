package replica

import (
	"strings"
	"testing"
	"time"
)

func TestParsePeersValid(t *testing.T) {
	got, err := ParsePeers(" http://a:8080 ,https://b.example/base/, http://127.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:8080", "https://b.example/base", "http://127.0.0.1:9000"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("peer %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParsePeersEmptySpec(t *testing.T) {
	got, err := ParsePeers("   ")
	if err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", got, err)
	}
}

func TestParsePeersRejections(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"http://a:8080,,http://b:8080", "entry 2 is empty"},
		{"a:8080", "want http or https"},
		{"localhost:8080", "want http or https"}, // parses as scheme "localhost"
		{"ftp://a:8080", `scheme "ftp"`},
		{"http://", "no host"},
		{"http://a:8080?x=1", "query or fragment"},
		{"http://a:8080,http://a:8080", "twice"},
	}
	for _, c := range cases {
		_, err := ParsePeers(c.spec)
		if err == nil {
			t.Errorf("ParsePeers(%q): accepted, want error containing %q", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParsePeers(%q) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
}

func TestParseJoin(t *testing.T) {
	if got, err := ParseJoin("http://primary:8080/"); err != nil || got != "http://primary:8080" {
		t.Fatalf("got %q, %v", got, err)
	}
	if got, err := ParseJoin(""); err != nil || got != "" {
		t.Fatalf("empty join: got %q, %v; want empty, nil", got, err)
	}
	if _, err := ParseJoin("primary:8080"); err == nil || !strings.Contains(err.Error(), "-join") {
		t.Fatalf("schemeless join accepted or unlabelled: %v", err)
	}
}

func TestValidateHedgeDelay(t *testing.T) {
	if err := ValidateHedgeDelay(0); err != nil {
		t.Fatalf("0 (adaptive) rejected: %v", err)
	}
	if err := ValidateHedgeDelay(20 * time.Millisecond); err != nil {
		t.Fatalf("positive rejected: %v", err)
	}
	err := ValidateHedgeDelay(-time.Millisecond)
	if err == nil {
		t.Fatal("negative accepted")
	}
	if !strings.Contains(err.Error(), "negative") || !strings.Contains(err.Error(), "-hedge-delay") {
		t.Fatalf("unactionable error: %v", err)
	}
}
