package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"resinfer"
	"resinfer/internal/retry"
	"resinfer/internal/wal"
)

// Follower is a replica catching up to (and then shadowing) a primary:
// it loads the primary's checkpoint snapshot, then repeatedly streams
// the WAL tail past its cursor and replays it locally. Until the cursor
// reaches the primary's applied LSN the follower reports itself not
// ready (Ready returns an error, which internal/server surfaces as a
// 503 /readyz — load balancers keep clients away while search still
// works for anyone who asks); once caught up, readiness flips and
// sticks while the follower keeps tailing.
type Follower struct {
	mx      *resinfer.MutableIndex
	primary string
	client  *Client

	// PollInterval is the tail re-request cadence once caught up
	// (default 250ms). Set before Run.
	PollInterval time.Duration

	cursor   atomic.Uint64
	caughtUp atomic.Bool
	failed   atomic.Pointer[error] // permanent failure (trimmed history)

	upserts atomic.Uint64
	deletes atomic.Uint64
}

// Join fetches the primary's checkpoint snapshot and loads it into a
// fresh mutable index. opts should not set WALDir: the follower's
// durability is the primary's WAL — on restart it re-joins from a fresh
// snapshot rather than replaying local history that could collide with
// reissued LSNs.
func Join(ctx context.Context, primary string, client *Client, opts *resinfer.MutableOptions) (*Follower, error) {
	rc, err := client.FetchCheckpoint(ctx, primary)
	if err != nil {
		return nil, fmt.Errorf("replica: joining %s: %w", primary, err)
	}
	defer rc.Close()
	mx, err := resinfer.LoadMutable(rc, opts)
	if err != nil {
		return nil, fmt.Errorf("replica: loading %s checkpoint: %w", primary, err)
	}
	f := &Follower{mx: mx, primary: primary, client: client, PollInterval: 250 * time.Millisecond}
	f.cursor.Store(mx.AppliedLSN())
	return f, nil
}

// Index returns the follower's local index, ready to serve searches.
func (f *Follower) Index() *resinfer.MutableIndex { return f.mx }

// Cursor returns the LSN of the last primary record applied locally.
func (f *Follower) Cursor() uint64 { return f.cursor.Load() }

// CaughtUp reports whether the follower has reached the primary's
// applied LSN at least once.
func (f *Follower) CaughtUp() bool { return f.caughtUp.Load() }

// Applied reports how many upserts and deletes the follower has
// replayed from the stream since joining.
func (f *Follower) Applied() (upserts, deletes uint64) {
	return f.upserts.Load(), f.deletes.Load()
}

// Ready is the /readyz gate: nil once the follower has caught up, an
// actionable error before then or after a permanent failure.
func (f *Follower) Ready() error {
	if p := f.failed.Load(); p != nil {
		return *p
	}
	if !f.caughtUp.Load() {
		return fmt.Errorf("replica: catching up to %s (cursor %d)", f.primary, f.cursor.Load())
	}
	return nil
}

// Err returns the permanent failure that stopped replication, if any.
func (f *Follower) Err() error {
	if p := f.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// streamRetry shapes transient tail-fetch retries: quick first retry,
// exponential and jittered from there.
var streamRetry = retry.Policy{Base: 100 * time.Millisecond, Factor: 2, Max: 2 * time.Second, Jitter: 0.2}

// Run tails the primary until ctx is cancelled or the primary trims
// history past the cursor (ErrGone, permanent — the process must
// restart with -join to re-sync; it reports unready meanwhile). All
// other errors — connection resets, corrupt transfers, primary
// restarts — are retried with backoff from the current cursor, which
// only ever advances past records that decoded and applied cleanly.
func (f *Follower) Run(ctx context.Context) error {
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f.tailOnce(ctx)
		switch {
		case err == nil:
			fails = 0
			if err := sleepCtx(ctx, f.PollInterval); err != nil {
				return err
			}
		case errors.Is(err, ErrGone):
			perm := fmt.Errorf("replica: %w (cursor %d; restart with -join to re-sync)", ErrGone, f.cursor.Load())
			f.failed.Store(&perm)
			f.caughtUp.Store(false)
			return perm
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return err
		default:
			fails++
			if err := sleepCtx(ctx, streamRetry.Backoff(fails-1)); err != nil {
				return err
			}
		}
	}
}

// tailOnce fetches and applies one WAL tail from the cursor. On a clean
// end of stream it marks the follower caught up if the cursor has
// reached the primary's applied LSN at the time the tail was cut.
func (f *Follower) tailOnce(ctx context.Context) error {
	tail, err := f.client.StreamTail(ctx, f.primary, f.cursor.Load())
	if err != nil {
		return err
	}
	defer tail.Close()
	for {
		rec, err := tail.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// A corrupt transfer: the cursor sits after the last good
			// record, so the retry re-requests exactly what is missing.
			return err
		}
		if err := f.apply(rec); err != nil {
			return err
		}
		f.cursor.Store(rec.LSN)
	}
	if f.cursor.Load() >= tail.LastLSN {
		f.caughtUp.Store(true)
	}
	return nil
}

// apply replays one primary record into the local index. Checkpoint
// records carry no state change — the cursor still advances over them.
func (f *Follower) apply(rec wal.Record) error {
	switch rec.Op {
	case wal.OpUpsert:
		if _, err := f.mx.Upsert(rec.ID, rec.Vec); err != nil {
			return fmt.Errorf("replica: applying upsert lsn %d: %w", rec.LSN, err)
		}
		f.upserts.Add(1)
	case wal.OpDelete:
		if _, err := f.mx.Delete(rec.ID); err != nil {
			return fmt.Errorf("replica: applying delete lsn %d: %w", rec.LSN, err)
		}
		f.deletes.Add(1)
	case wal.OpCheckpoint:
		// No local effect; the primary's snapshot boundary.
	default:
		return fmt.Errorf("replica: unknown op %d at lsn %d", rec.Op, rec.LSN)
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
