package replica

// End-to-end catch-up tests: a real primary (mutable index + WAL)
// served by internal/server, a follower joining over HTTP, streaming
// the WAL tail, and flipping ready once caught up.

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/fault"
	"resinfer/internal/server"
)

// newPrimary builds a WAL-backed mutable index and serves it over an
// httptest server with the replication endpoints mounted.
func newPrimary(t *testing.T) (*resinfer.MutableIndex, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	data := make([][]float32, 400)
	for i := range data {
		row := make([]float32, 16)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		data[i] = row
	}
	mx, err := resinfer.NewMutable(data, resinfer.Flat, 2, &resinfer.MutableOptions{
		DisableAutoCompact: true,
		WALDir:             t.TempDir(),
		WALSync:            resinfer.WALSyncNone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mx.Close)
	srv := server.New(mx, server.Config{BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return mx, ts.URL
}

func primaryVec(seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, 16)
	for j := range v {
		v[j] = float32(rng.NormFloat64())
	}
	return v
}

// joinFollower joins the primary and returns the follower with a fast
// poll cadence, running until the test ends.
func joinFollower(t *testing.T, primaryURL string) (*Follower, context.CancelFunc) {
	t.Helper()
	f, err := Join(context.Background(), primaryURL, NewClient(2*time.Second),
		&resinfer.MutableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Index().Close() })
	f.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return f, cancel
}

// TestFollowerJoinAndCatchUp is the catch-up lifecycle end to end:
// snapshot join, not-ready while behind, WAL tail replay, ready flip,
// and identical search results once caught up.
func TestFollowerJoinAndCatchUp(t *testing.T) {
	mx, url := newPrimary(t)
	// Mutations before the join land in the snapshot...
	for i := 0; i < 20; i++ {
		if _, err := mx.Upsert(-1, primaryVec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	f, _ := joinFollower(t, url)
	if err := f.Ready(); err == nil {
		// Legal: the snapshot may already cover everything and the first
		// tail round may have run. But before any tail round Ready must
		// not panic; nothing to assert here beyond that.
		_ = err
	}
	// ...and mutations after it arrive over the WAL stream.
	var delID int
	for i := 0; i < 30; i++ {
		id, err := mx.Upsert(-1, primaryVec(int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			delID = id
		}
	}
	if _, err := mx.Delete(delID); err != nil {
		t.Fatal(err)
	}
	want := mx.AppliedLSN()
	waitDur(t, 5*time.Second, "catch-up", func() bool {
		return f.CaughtUp() && f.Cursor() >= want
	})
	if err := f.Ready(); err != nil {
		t.Fatalf("Ready after catch-up: %v", err)
	}
	ups, dels := f.Applied()
	if ups < 30 || dels < 1 {
		t.Fatalf("applied upserts=%d deletes=%d, want >=30/>=1", ups, dels)
	}
	if got, wantN := f.Index().Len(), mx.Len(); got != wantN {
		t.Fatalf("follower has %d rows, primary %d", got, wantN)
	}
	q := primaryVec(999)
	pw, _, err := mx.SearchWithStats(q, 10, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	fw, _, err := f.Index().SearchWithStats(q, 10, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != len(fw) {
		t.Fatalf("result sizes differ: %d vs %d", len(pw), len(fw))
	}
	for i := range pw {
		if pw[i].ID != fw[i].ID {
			t.Fatalf("result %d: primary id %d, follower id %d", i, pw[i].ID, fw[i].ID)
		}
	}
}

// TestFollowerLiveTail: a caught-up follower keeps applying new primary
// mutations as they happen.
func TestFollowerLiveTail(t *testing.T) {
	mx, url := newPrimary(t)
	f, _ := joinFollower(t, url)
	waitDur(t, 5*time.Second, "initial catch-up", func() bool { return f.CaughtUp() })
	for i := 0; i < 10; i++ {
		if _, err := mx.Upsert(-1, primaryVec(int64(500+i))); err != nil {
			t.Fatal(err)
		}
	}
	want := mx.AppliedLSN()
	waitDur(t, 5*time.Second, "live tail", func() bool { return f.Cursor() >= want })
	if got := f.Index().Len(); got != mx.Len() {
		t.Fatalf("follower has %d rows, primary %d", got, mx.Len())
	}
}

// TestFollowerGapIsPermanent: a cursor behind the primary's trimmed
// history gets 410 Gone; the follower fails permanently, unready, and
// tells the operator to re-sync.
func TestFollowerGapIsPermanent(t *testing.T) {
	mx, url := newPrimary(t)
	for i := 0; i < 10; i++ {
		if _, err := mx.Upsert(-1, primaryVec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint trims the log behind the snapshot: cursor 1 is history.
	if err := mx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	f, err := Join(context.Background(), url, NewClient(2*time.Second), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Index().Close()
	f.cursor.Store(1) // simulate a replica that slept through the trim
	f.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = f.Run(ctx)
	if !errors.Is(err, ErrGone) {
		t.Fatalf("Run = %v, want ErrGone", err)
	}
	rerr := f.Ready()
	if rerr == nil || !strings.Contains(rerr.Error(), "-join") {
		t.Fatalf("Ready after gap = %v, want a re-sync instruction", rerr)
	}
	if f.CaughtUp() {
		t.Fatal("follower still claims caught up after permanent failure")
	}
}

// TestFollowerStreamFaultRetries: a transient tail-fetch failure
// (replica.stream fault, one hit) delays catch-up but does not break it.
func TestFollowerStreamFaultRetries(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	mx, url := newPrimary(t)
	for i := 0; i < 5; i++ {
		if _, err := mx.Upsert(-1, primaryVec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	defer fault.Inject(fault.Injection{
		Site: fault.SiteReplicaStream, Err: errors.New("injected flaky link"), Limit: 2,
	})()
	f, _ := joinFollower(t, url)
	want := mx.AppliedLSN()
	waitDur(t, 10*time.Second, "catch-up through flaky link", func() bool {
		return f.CaughtUp() && f.Cursor() >= want
	})
}

// TestJoinFetchFault: an injected replica.fetch failure surfaces as a
// join error, not a partial index.
func TestJoinFetchFault(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	_, url := newPrimary(t)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteReplicaFetch, Err: errors.New("injected fetch failure"),
	})()
	if _, err := Join(context.Background(), url, NewClient(time.Second), nil); err == nil {
		t.Fatal("join succeeded through injected fetch failure")
	}
}

func waitDur(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
