package replica

import (
	"context"
	"errors"
	"time"

	"resinfer"
)

// ErrNoHealthyReplica fails a hedge fast when every peer is ejected;
// the shard's outcome then rests on the local probe alone.
var ErrNoHealthyReplica = errors.New("replica: no healthy peer to hedge onto")

// Hedger adapts a health-checked Set into the resinfer.ShardHedger the
// sharded fan-out fires at a slow or failed shard: pick the next
// healthy peer round-robin, re-issue the shard probe over HTTP, and let
// the fan-out race it against the local probe. Install with
// ShardedIndex.SetShardHedger.
func Hedger(set *Set) resinfer.ShardHedger {
	return func(ctx context.Context, shard int, q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error) {
		base, ok := set.PickHealthy()
		if !ok {
			return nil, resinfer.SearchStats{}, ErrNoHealthyReplica
		}
		return set.client.ShardSearch(ctx, base, shard, q, k, mode, budget)
	}
}

// hedgeTuner is the slice of the index API the delay controller drives.
type hedgeTuner interface {
	SetHedgeDelay(time.Duration)
}

// DelayController retunes the hedge delay live from an observed latency
// quantile — by default the per-shard search p95, so hedges fire for
// roughly the slowest 5% of probes (the tail-at-scale operating point)
// instead of at a guessed constant. Construct with StartDelayController
// and stop with Close.
type DelayController struct {
	stop chan struct{}
	done chan struct{}
}

// StartDelayController starts a controller that every interval reads
// p95 (seconds; zero means "no data yet") and applies it, clamped to
// [floor, ceil], as idx's hedge delay. Until first data arrives the
// delay installed at SetShardHedger time stands.
func StartDelayController(idx hedgeTuner, p95 func() float64, interval, floor, ceil time.Duration) *DelayController {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if floor <= 0 {
		floor = time.Millisecond
	}
	if ceil <= 0 {
		ceil = time.Second
	}
	c := &DelayController{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
			}
			q := p95()
			if q <= 0 {
				continue
			}
			d := time.Duration(q * float64(time.Second))
			if d < floor {
				d = floor
			}
			if d > ceil {
				d = ceil
			}
			idx.SetHedgeDelay(d)
		}
	}()
	return c
}

// Close stops the controller and waits for it to exit.
func (c *DelayController) Close() {
	close(c.stop)
	<-c.done
}
