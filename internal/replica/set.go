package replica

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"resinfer/internal/retry"
)

// SetOptions tunes a replica Set's health checking. The zero value
// probes every second, ejects after 3 consecutive failures, and caps
// the failing-member backoff at 8× the probe interval.
type SetOptions struct {
	// ProbeInterval is the healthy-member probe cadence (default 1s).
	// Failing members back off exponentially from this base, jittered,
	// up to MaxBackoff.
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive probe failures eject a
	// member from hedge routing (default 3). An ejected member keeps
	// being probed on the backed-off cadence and is re-admitted on the
	// first success — by then it has flipped its /readyz, which a
	// catching-up replica only does once caught up.
	FailThreshold int
	// MaxBackoff caps the failing-member probe backoff
	// (default 8×ProbeInterval).
	MaxBackoff time.Duration
	// ProbeTimeout caps one probe request (default 1s).
	ProbeTimeout time.Duration
}

func (o SetOptions) withDefaults() SetOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 8 * o.ProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	return o
}

// member is one peer's health record; all fields are guarded by Set.mu.
type member struct {
	url       string
	healthy   bool
	fails     int       // consecutive probe failures
	lastErr   error     // most recent probe failure
	nextProbe time.Time // earliest next probe (backoff while failing)
}

// MemberStatus is one peer's health snapshot, for status endpoints and
// logs.
type MemberStatus struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Fails     int    `json:"consecutive_failures"`
	LastError string `json:"last_error,omitempty"`
}

// Set is a health-checked replica membership: it probes every peer's
// /readyz on a jittered cadence, ejects members after consecutive
// failures, backs their probes off exponentially, re-admits them on the
// first successful probe, and routes hedges round-robin over the
// healthy members. Start launches the prober; Close stops it.
//
// Lock order: Set.mu is a leaf — nothing else is acquired under it, and
// the prober calls the network strictly outside it.
type Set struct {
	client *Client
	opts   SetOptions

	mu      sync.Mutex
	members []*member

	rr atomic.Uint64 // round-robin hedge-routing cursor

	ejections    atomic.Uint64
	readmissions atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// NewSet builds a Set over validated peer base URLs (ParsePeers output).
// Members start healthy — a replica set usually comes up all-green and
// the first probe round corrects any optimism within one interval.
func NewSet(peers []string, client *Client, opts SetOptions) *Set {
	s := &Set{
		client: client,
		opts:   opts.withDefaults(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, p := range peers {
		s.members = append(s.members, &member{url: p, healthy: true})
	}
	return s
}

// Start launches the background prober. Call once; Close stops it.
func (s *Set) Start() {
	go s.probeLoop()
}

// Close stops the prober and waits for it to exit.
func (s *Set) Close() {
	close(s.stop)
	<-s.done
}

// backoffPolicy shapes the failing-member probe cadence: exponential
// from the probe interval, jittered so a fleet of replicas does not
// probe a recovering peer in lockstep.
func (s *Set) backoffPolicy() retry.Policy {
	return retry.Policy{
		Base:   s.opts.ProbeInterval,
		Factor: 2,
		Max:    s.opts.MaxBackoff,
		Jitter: 0.2,
	}
}

// probeLoop drives one probe round per interval (jittered ±10% via the
// same retry jitter source). Each round probes, in parallel, every
// member whose backoff has elapsed.
func (s *Set) probeLoop() {
	defer close(s.done)
	pol := retry.Policy{Base: s.opts.ProbeInterval, Factor: 1, Jitter: 0.1}
	for round := 0; ; round++ {
		select {
		case <-s.stop:
			return
		case <-time.After(pol.Backoff(round)):
		}
		s.probeRound(time.Now())
	}
}

// probeRound probes every due member concurrently and folds the results
// back into the membership under the lock.
func (s *Set) probeRound(now time.Time) {
	s.mu.Lock()
	due := make([]int, 0, len(s.members))
	urls := make([]string, 0, len(s.members))
	for i, m := range s.members {
		if now.Before(m.nextProbe) {
			continue
		}
		due = append(due, i)
		urls = append(urls, m.url)
	}
	s.mu.Unlock()
	if len(due) == 0 {
		return
	}
	errs := make([]error, len(due))
	var wg sync.WaitGroup
	for j := range due {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), s.opts.ProbeTimeout)
			defer cancel()
			errs[j] = s.client.ProbeReady(ctx, urls[j], due[j])
		}(j)
	}
	wg.Wait()

	pol := s.backoffPolicy()
	s.mu.Lock()
	defer s.mu.Unlock()
	for j, i := range due {
		m := s.members[i]
		if errs[j] == nil {
			if !m.healthy {
				s.readmissions.Add(1)
			}
			m.healthy = true
			m.fails = 0
			m.lastErr = nil
			m.nextProbe = time.Time{} // healthy members ride the round cadence
			continue
		}
		m.fails++
		m.lastErr = errs[j]
		if m.healthy && m.fails >= s.opts.FailThreshold {
			m.healthy = false
			s.ejections.Add(1)
		}
		if m.fails >= s.opts.FailThreshold {
			m.nextProbe = time.Now().Add(pol.Backoff(m.fails - s.opts.FailThreshold))
		}
	}
}

// PickHealthy returns the next healthy member round-robin, or ok=false
// when every member is ejected (the hedge then fails fast and the shard
// outcome rests on the local probe alone).
func (s *Set) PickHealthy() (url string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.members)
	if n == 0 {
		return "", false
	}
	start := int(s.rr.Add(1)-1) % n
	for off := 0; off < n; off++ {
		m := s.members[(start+off)%n]
		if m.healthy {
			return m.url, true
		}
	}
	return "", false
}

// Healthy returns how many members are currently admitted.
func (s *Set) Healthy() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.members {
		if m.healthy {
			n++
		}
	}
	return n
}

// Size returns the total member count.
func (s *Set) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.members)
}

// Churn reports lifetime ejection and re-admission counts.
func (s *Set) Churn() (ejections, readmissions uint64) {
	return s.ejections.Load(), s.readmissions.Load()
}

// Snapshot captures every member's health for status endpoints.
func (s *Set) Snapshot() []MemberStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MemberStatus, len(s.members))
	for i, m := range s.members {
		out[i] = MemberStatus{URL: m.url, Healthy: m.healthy, Fails: m.fails}
		if m.lastErr != nil {
			out[i].LastError = m.lastErr.Error()
		}
	}
	return out
}
