package replica

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resinfer/internal/fault"
)

// readyzServer is a peer stub whose readiness can be flipped at will.
type readyzServer struct {
	ready atomic.Bool
	srv   *httptest.Server
}

func newReadyzServer(t *testing.T) *readyzServer {
	t.Helper()
	rs := &readyzServer{}
	rs.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if rs.ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	rs.srv = httptest.NewServer(mux)
	t.Cleanup(rs.srv.Close)
	return rs
}

// fastSet builds a Set over the given peers with an aggressive probe
// cadence so ejection/readmission tests run in tens of milliseconds.
func fastSet(t *testing.T, urls ...string) *Set {
	t.Helper()
	s := NewSet(urls, NewClient(time.Second), SetOptions{
		ProbeInterval: 5 * time.Millisecond,
		FailThreshold: 3,
		MaxBackoff:    20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
	})
	s.Start()
	t.Cleanup(s.Close)
	return s
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSetEjectionAndReadmission is the membership state machine
// end-to-end: a peer going unready is ejected after FailThreshold
// consecutive probe failures, kept on backed-off probes, and re-admitted
// on its first successful probe.
func TestSetEjectionAndReadmission(t *testing.T) {
	a, b := newReadyzServer(t), newReadyzServer(t)
	s := fastSet(t, a.srv.URL, b.srv.URL)
	waitFor(t, 2*time.Second, "both healthy", func() bool { return s.Healthy() == 2 })

	b.ready.Store(false)
	waitFor(t, 2*time.Second, "ejection", func() bool { return s.Healthy() == 1 })
	ej, re := s.Churn()
	if ej != 1 || re != 0 {
		t.Fatalf("churn after ejection: ejections=%d readmissions=%d, want 1/0", ej, re)
	}
	// Every pick must now land on the healthy peer.
	for i := 0; i < 10; i++ {
		u, ok := s.PickHealthy()
		if !ok || u != a.srv.URL {
			t.Fatalf("pick %d: got %q ok=%v, want the healthy peer", i, u, ok)
		}
	}

	b.ready.Store(true)
	waitFor(t, 2*time.Second, "readmission", func() bool { return s.Healthy() == 2 })
	if _, re := s.Churn(); re != 1 {
		t.Fatalf("readmissions = %d, want 1", re)
	}
}

// TestSetSingleFailureDoesNotEject: transient blips below the threshold
// must not evict a member.
func TestSetSingleFailureDoesNotEject(t *testing.T) {
	a := newReadyzServer(t)
	// Fail exactly two probes — one below the threshold of 3.
	var n atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(flaky.Close)
	s := fastSet(t, a.srv.URL, flaky.URL)
	waitFor(t, 2*time.Second, "blip absorbed", func() bool { return n.Load() >= 4 })
	if ej, _ := s.Churn(); ej != 0 {
		t.Fatalf("ejections = %d after sub-threshold blip, want 0", ej)
	}
	if s.Healthy() != 2 {
		t.Fatalf("healthy = %d, want 2", s.Healthy())
	}
}

// TestSetPickRoundRobin: healthy members share hedge load.
func TestSetPickRoundRobin(t *testing.T) {
	a, b := newReadyzServer(t), newReadyzServer(t)
	s := fastSet(t, a.srv.URL, b.srv.URL)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		u, ok := s.PickHealthy()
		if !ok {
			t.Fatal("no healthy member")
		}
		seen[u]++
	}
	if seen[a.srv.URL] != 5 || seen[b.srv.URL] != 5 {
		t.Fatalf("round robin skewed: %v", seen)
	}
}

// TestSetAllEjected: with every member down, PickHealthy fails fast so
// hedges do not queue behind dead peers.
func TestSetAllEjected(t *testing.T) {
	a := newReadyzServer(t)
	a.ready.Store(false)
	s := fastSet(t, a.srv.URL)
	waitFor(t, 2*time.Second, "ejection", func() bool { return s.Healthy() == 0 })
	if _, ok := s.PickHealthy(); ok {
		t.Fatal("PickHealthy returned a member with everyone ejected")
	}
}

// TestSetProbeFaultInjection: the replica.probe site partitions one
// member by index without touching the network.
func TestSetProbeFaultInjection(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	a, b := newReadyzServer(t), newReadyzServer(t)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteReplicaProbe, Arg: 1, Err: errors.New("injected partition"),
	})()
	s := fastSet(t, a.srv.URL, b.srv.URL)
	waitFor(t, 2*time.Second, "injected ejection", func() bool { return s.Healthy() == 1 })
	snap := s.Snapshot()
	if !snap[0].Healthy || snap[1].Healthy {
		t.Fatalf("wrong member ejected: %+v", snap)
	}
	if snap[1].LastError == "" {
		t.Fatal("ejected member carries no lastErr")
	}
}

// TestSetConcurrentPickAndProbe drives PickHealthy from many goroutines
// while the prober churns membership — the -race leg for the Set state
// machine.
func TestSetConcurrentPickAndProbe(t *testing.T) {
	a, b := newReadyzServer(t), newReadyzServer(t)
	s := fastSet(t, a.srv.URL, b.srv.URL)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.PickHealthy()
				s.Healthy()
				s.Snapshot()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		b.ready.Store(i%2 == 0)
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestProbeReadyStatuses: the probe treats any non-200 as failure and a
// cancelled context as an error, not a hang.
func TestProbeReadyStatuses(t *testing.T) {
	a := newReadyzServer(t)
	c := NewClient(time.Second)
	if err := c.ProbeReady(context.Background(), a.srv.URL, 0); err != nil {
		t.Fatalf("ready peer probed unready: %v", err)
	}
	a.ready.Store(false)
	if err := c.ProbeReady(context.Background(), a.srv.URL, 0); err == nil {
		t.Fatal("unready peer probed ready")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.ProbeReady(ctx, a.srv.URL, 0); err == nil {
		t.Fatal("cancelled probe succeeded")
	}
}
