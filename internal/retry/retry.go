// Package retry is the one bounded-retry loop of the serving stack:
// jittered exponential backoff, a max-attempts cap, and context-aware
// sleeping. The WAL append path, the replica health prober, and the
// catch-up fetcher all retry through it, so their schedules are tuned
// (and tested) in one place instead of three hand-rolled loops.
//
// A Policy is a value; the zero value retries once (no retry at all),
// so every caller states its schedule explicitly. Do retries fn until
// it succeeds, returns a Permanent error, the attempts run out, or ctx
// is cancelled mid-backoff.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy describes one retry schedule. Fields left zero take the
// documented defaults, so Policy{Attempts: 3, Base: 5 * time.Millisecond}
// reads as "three attempts, 5ms apart, doubling".
type Policy struct {
	// Attempts caps how many times fn runs (first call included).
	// Zero or negative means one attempt — no retry.
	Attempts int
	// Base is the backoff before the second attempt (default 1ms).
	Base time.Duration
	// Max caps the grown backoff; 0 means no cap.
	Max time.Duration
	// Factor multiplies the backoff after each failure (default 2; use
	// 1 for a constant schedule).
	Factor float64
	// Jitter randomizes each backoff multiplicatively into
	// [1-Jitter, 1] of its nominal value, de-synchronizing retry storms
	// across replicas. 0 disables jitter; values are clamped to [0, 1].
	Jitter float64

	// sleep and rnd are test seams: tests inject a recording clock and
	// a fixed random source to assert the exact schedule.
	sleep func(ctx context.Context, d time.Duration) error
	rnd   func() float64
}

// permanentError marks an error Do must not retry.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops retrying and returns err as-is.
// Callers use it for failures where retrying cannot help: a closed log,
// a rejected join, an invalid request.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// attempts returns the effective attempt cap.
func (p Policy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// Backoff returns the jittered backoff before attempt n (n counts
// failures so far: the delay between attempt n and n+1, n >= 1). It is
// exported for callers that own their loop — the replica prober sleeps
// Backoff(consecutiveFailures) between probes of an unhealthy peer.
func (p Policy) Backoff(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	base := p.Base
	if base <= 0 {
		base = time.Millisecond
	}
	factor := p.Factor
	if factor <= 0 {
		factor = 2
	}
	d := float64(base)
	for i := 1; i < n; i++ {
		d *= factor
		if p.Max > 0 && d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		r := rand.Float64
		if p.rnd != nil {
			r = p.rnd
		}
		d *= 1 - j*r()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Do runs fn up to p.Attempts times, sleeping the jittered backoff
// between attempts. It returns nil on the first success, the unwrapped
// error as soon as fn returns a Permanent one, ctx's error if the
// context expires during a backoff, and otherwise the last attempt's
// error once the attempts are spent. fn itself is never preempted —
// callers that want per-attempt deadlines derive them from ctx inside
// fn.
func (p Policy) Do(ctx context.Context, fn func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= p.attempts() {
			return err
		}
		if serr := p.sleepFor(ctx, p.Backoff(attempt)); serr != nil {
			return serr
		}
	}
}

// sleepFor blocks for d or until ctx is done, whichever comes first.
func (p Policy) sleepFor(ctx context.Context, d time.Duration) error {
	if p.sleep != nil {
		return p.sleep(ctx, d)
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
