package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recordingSleep captures the backoff schedule Do would have slept,
// without sleeping — the injected clock of the satellite spec.
func recordingSleep(dst *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*dst = append(*dst, d)
		return nil
	}
}

func TestBackoffScheduleExponential(t *testing.T) {
	p := Policy{Attempts: 5, Base: 10 * time.Millisecond, Factor: 2, Max: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // after attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond, // capped by Max
	}
	var got []time.Duration
	p.sleep = recordingSleep(&got)
	errFail := errors.New("fail")
	if err := p.Do(context.Background(), func() error { return errFail }); !errors.Is(err, errFail) {
		t.Fatalf("Do = %v, want %v", err, errFail)
	}
	if len(got) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("backoff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBackoffConstantSchedule(t *testing.T) {
	// Factor 1 is the WAL append schedule: a constant gap.
	p := Policy{Attempts: 3, Base: 5 * time.Millisecond, Factor: 1}
	var got []time.Duration
	p.sleep = recordingSleep(&got)
	p.Do(context.Background(), func() error { return errors.New("x") })
	if len(got) != 2 {
		t.Fatalf("slept %d times, want 2", len(got))
	}
	for i, d := range got {
		if d != 5*time.Millisecond {
			t.Errorf("backoff[%d] = %v, want 5ms", i, d)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Jitter: 0.5}
	// rnd = 0 keeps the full backoff; rnd = 1 shrinks it to half.
	p.rnd = func() float64 { return 0 }
	if d := p.Backoff(1); d != 100*time.Millisecond {
		t.Errorf("jitter(r=0) = %v, want 100ms", d)
	}
	p.rnd = func() float64 { return 1 }
	if d := p.Backoff(1); d != 50*time.Millisecond {
		t.Errorf("jitter(r=1) = %v, want 50ms", d)
	}
	p.rnd = func() float64 { return 0.5 }
	if d := p.Backoff(1); d != 75*time.Millisecond {
		t.Errorf("jitter(r=0.5) = %v, want 75ms", d)
	}
}

func TestDoStopsOnSuccess(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Millisecond}
	var slept []time.Duration
	p.sleep = recordingSleep(&slept)
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 || len(slept) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want nil/3/2", err, calls, len(slept))
	}
}

func TestDoPermanentShortCircuits(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Millisecond}
	var slept []time.Duration
	p.sleep = recordingSleep(&slept)
	errClosed := errors.New("closed")
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return Permanent(errClosed)
	})
	if !errors.Is(err, errClosed) {
		t.Fatalf("Do = %v, want the permanent cause unwrapped", err)
	}
	if calls != 1 || len(slept) != 0 {
		t.Fatalf("calls=%d sleeps=%d, want 1/0 (no retry on permanent)", calls, len(slept))
	}
}

func TestPermanentNilIsNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestDoContextCancelledDuringBackoff(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := p.Do(ctx, func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled before the retry)", calls)
	}
}

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	errX := errors.New("x")
	if err := (Policy{}).Do(context.Background(), func() error { calls++; return errX }); !errors.Is(err, errX) {
		t.Fatalf("Do = %v, want %v", err, errX)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (zero policy never retries)", calls)
	}
}

func TestBackoffFloorsAtOneNanosecond(t *testing.T) {
	p := Policy{Base: 1, Jitter: 1}
	p.rnd = func() float64 { return 1 } // would shrink to zero
	if d := p.Backoff(1); d < 1 {
		t.Fatalf("Backoff = %v, want >= 1ns", d)
	}
}
