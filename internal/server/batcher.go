package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"resinfer"
	"resinfer/internal/obs"
)

// ErrServerClosed is returned to queries still queued when the server
// shuts down.
var ErrServerClosed = errors.New("server: closed")

// ErrOverloaded is returned to queries arriving while the admission
// queue is past its watermark; the handler maps it to HTTP 429 with a
// Retry-After hint. Shedding the excess immediately keeps the queries
// already admitted inside their deadlines, instead of letting the whole
// queue time out collectively.
var ErrOverloaded = errors.New("server: overloaded, queue past watermark")

// batchKey groups queued queries that can share one SearchBatch call:
// only queries with identical search parameters are batched together.
type batchKey struct {
	k      int
	mode   resinfer.Mode
	budget int
}

// queryResult is the outcome delivered back to a waiting /search handler.
type queryResult struct {
	neighbors []resinfer.Neighbor
	stats     resinfer.SearchStats
	err       error
}

// pendingQuery is one admitted /search request waiting in the queue.
type pendingQuery struct {
	q        []float32
	key      batchKey
	tr       *obs.Trace       // nil unless the request is being traced
	enq      time.Time        // when the query entered the queue
	deadline time.Time        // the request ctx's deadline (zero if none)
	resp     chan queryResult // buffered, capacity 1
}

// batcher is the micro-batching admission queue: single-query requests
// are collected for a short window (or until a size cap) and executed as
// one SearchBatch per parameter group, amortizing scheduling overhead
// under concurrent load while keeping tail latency bounded by the window.
type batcher struct {
	idx       Searcher
	tracedIdx batchTracedSearcher // idx's traced variant, nil if unsupported
	ctxIdx    batchCtxSearcher    // idx's deadline-aware variant, nil if unsupported
	in        chan pendingQuery
	window    time.Duration
	maxSize   int
	maxDepth  int           // shed watermark; <= 0 disables shedding
	workers   int           // workers handed to SearchBatch
	sem       chan struct{} // shared concurrency limiter
	m         *metrics

	done     chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

func newBatcher(idx Searcher, window time.Duration, maxSize, maxDepth, workers int, sem chan struct{}, m *metrics) *batcher {
	// The queue buffer must cover the watermark: shedding is meant to be
	// the backpressure mechanism, not a blocking channel send.
	capacity := 4 * maxSize
	if maxDepth > capacity {
		capacity = maxDepth
	}
	b := &batcher{
		idx:      idx,
		in:       make(chan pendingQuery, capacity),
		window:   window,
		maxSize:  maxSize,
		maxDepth: maxDepth,
		workers:  workers,
		sem:      sem,
		m:        m,
		done:     make(chan struct{}),
	}
	b.tracedIdx, _ = idx.(batchTracedSearcher)
	b.ctxIdx, _ = idx.(batchCtxSearcher)
	b.wg.Add(1)
	go b.run()
	return b
}

// submit enqueues one query and waits for its result or ctx cancellation.
// A query arriving while the queue is at or past the watermark is shed
// with ErrOverloaded instead of being admitted into collective timeout.
func (b *batcher) submit(ctx context.Context, q []float32, key batchKey, tr *obs.Trace) queryResult {
	pq := pendingQuery{q: q, key: key, tr: tr, enq: time.Now(), resp: make(chan queryResult, 1)}
	if dl, ok := ctx.Deadline(); ok {
		pq.deadline = dl
	}
	select {
	case <-b.done:
		// Checked first: b.in is buffered, so a bare select could win the
		// send case after close() has already drained the queue, leaving
		// the query unanswered.
		return queryResult{err: ErrServerClosed}
	default:
	}
	if b.maxDepth > 0 && b.m.queueDepth.Load() >= int64(b.maxDepth) {
		return queryResult{err: ErrOverloaded}
	}
	select {
	case b.in <- pq:
		// The depth histogram samples at admission: it sees the queue as
		// arriving queries do, which is the distribution that matters for
		// sizing the window and the cap.
		b.m.queueHist.Observe(float64(b.m.queueDepth.Add(1)))
	case <-b.done:
		return queryResult{err: ErrServerClosed}
	case <-ctx.Done():
		return queryResult{err: ctx.Err()}
	}
	select {
	case r := <-pq.resp:
		return r
	case <-b.done:
		// Shutdown while waiting: an in-flight batch may still answer
		// within the drain grace period; otherwise fail fast instead of
		// sitting out the request timeout. The grace is derived from the
		// batch window — a query admitted just before shutdown may sit in
		// a collecting batch for up to one full window before it even
		// executes, so a fixed constant shorter than the window would
		// spuriously fail queries whose batch was still on its way.
		select {
		case r := <-pq.resp:
			return r
		case <-time.After(b.drainGrace()):
			return queryResult{err: ErrServerClosed}
		case <-ctx.Done():
			return queryResult{err: ctx.Err()}
		}
	case <-ctx.Done():
		// The executor will still write to the buffered channel; the
		// result is simply dropped.
		return queryResult{err: ctx.Err()}
	}
}

// drainGrace is how long a query admitted before shutdown waits for its
// in-flight batch to answer: one full collection window (the longest it
// can legitimately still be queued) plus a floor covering execution time.
func (b *batcher) drainGrace() time.Duration {
	const floor = 100 * time.Millisecond
	if b.window <= 0 {
		return floor
	}
	return b.window + floor
}

// close stops the collector and fails queries still waiting in the queue.
func (b *batcher) close() {
	b.closeOne.Do(func() { close(b.done) })
	b.wg.Wait()
	// A submit racing with shutdown may have enqueued after run()'s own
	// drain; sweep once more now that no batch will ever form.
	b.drainQueue()
}

// run collects queries into batches: the first arrival opens a window,
// and the batch executes when the window elapses or the size cap fills.
// Execution happens on a separate goroutine so collection never stalls
// behind a slow search.
func (b *batcher) run() {
	defer b.wg.Done()
	for {
		var first pendingQuery
		select {
		case first = <-b.in:
		case <-b.done:
			b.drainQueue()
			return
		}
		batch := []pendingQuery{first}
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.maxSize {
			select {
			case pq := <-b.in:
				batch = append(batch, pq)
			case <-timer.C:
				break collect
			case <-b.done:
				break collect
			}
		}
		timer.Stop()
		b.wg.Add(1)
		go b.execute(batch)
		select {
		case <-b.done:
			b.drainQueue()
			return
		default:
		}
	}
}

// drainQueue fails everything still queued at shutdown.
func (b *batcher) drainQueue() {
	for {
		select {
		case pq := <-b.in:
			b.m.queueDepth.Add(-1)
			pq.resp <- queryResult{err: ErrServerClosed}
		default:
			return
		}
	}
}

// execute groups a collected batch by search parameters and runs one
// SearchBatch per group under the shared concurrency limiter.
func (b *batcher) execute(batch []pendingQuery) {
	defer b.wg.Done()
	b.sem <- struct{}{}
	defer func() { <-b.sem }()

	groups := map[batchKey][]int{}
	for i, pq := range batch {
		groups[pq.key] = append(groups[pq.key], i)
	}
	for key, members := range groups {
		queries := make([][]float32, len(members))
		traced := false
		for j, i := range members {
			queries[j] = batch[i].q
			if batch[i].tr != nil {
				traced = true
			}
		}
		// The queue wait ends here, as the group starts executing; every
		// member shares the group's size for the batch histograms.
		now := time.Now()
		for _, i := range members {
			pq := batch[i]
			b.m.queueWait.Observe(now.Sub(pq.enq).Seconds())
			pq.tr.End("queue_wait", pq.enq)
			pq.tr.SetBatchSize(len(members))
		}
		b.m.batchSizes.Observe(float64(len(members)))

		var traces []*obs.Trace
		if traced {
			traces = make([]*obs.Trace, len(members))
			for j, i := range members {
				traces[j] = batch[i].tr
			}
		}
		var results []resinfer.BatchResult
		var err error
		switch {
		case b.ctxIdx != nil:
			// The group executes under a detached context expiring at the
			// latest member deadline: one member's cancellation must not
			// abort its groupmates, but a stuck shard must not hold the
			// group past the point where anyone still wants the answer.
			// Members with earlier deadlines give up in submit on their own.
			gctx := context.Background()
			var cancel context.CancelFunc
			var maxDL time.Time
			bounded := true
			for _, i := range members {
				dl := batch[i].deadline
				if dl.IsZero() {
					bounded = false
					break
				}
				if dl.After(maxDL) {
					maxDL = dl
				}
			}
			if bounded {
				gctx, cancel = context.WithDeadline(context.Background(), maxDL)
			}
			results, err = b.ctxIdx.SearchBatchCtx(gctx, queries, key.k, key.mode, key.budget, b.workers, traces)
			if cancel != nil {
				cancel()
			}
		case traced && b.tracedIdx != nil:
			results, err = b.tracedIdx.SearchBatchTraced(queries, key.k, key.mode, key.budget, b.workers, traces)
		default:
			results, err = b.idx.SearchBatch(queries, key.k, key.mode, key.budget, b.workers)
		}
		b.m.batches.Inc()
		b.m.batchedQueries.Add(int64(len(members)))
		if err != nil {
			for _, i := range members {
				b.m.queueDepth.Add(-1)
				batch[i].resp <- queryResult{err: err}
			}
			continue
		}
		for j, i := range members {
			r := results[j]
			b.m.queueDepth.Add(-1)
			batch[i].resp <- queryResult{neighbors: r.Neighbors, stats: r.Stats, err: r.Err}
		}
	}
}
