package server

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"resinfer"
	"resinfer/internal/obs"
	"resinfer/internal/quality"
)

// metrics is the server's request-path instrumentation. Counters and
// histograms live in an obs.Registry so one set of atomics backs both
// the JSON document at /stats and the Prometheus exposition at
// /metrics; every update on the request path is lock-free.
type metrics struct {
	start   time.Time
	reg     *obs.Registry
	walSync string // WAL fsync policy label for build_info ("none" when no WAL)

	requests       *obs.Counter // HTTP requests across all POST endpoints
	queries        *obs.Counter // individual queries answered
	errors         *obs.Counter // requests or queries that failed
	batches        *obs.Counter // SearchBatch executions by the micro-batcher
	batchedQueries *obs.Counter // queries that went through the micro-batcher
	comparisons    *obs.Counter // DCO threshold comparisons (visited candidates)
	pruned         *obs.Counter // candidates discarded from approximate distances
	upserts        *obs.Counter // vectors accepted via POST /upsert
	deletes        *obs.Counter // rows removed via POST /delete

	shed            *obs.Counter // requests shed at the admission watermark (429)
	timeouts        *obs.Counter // requests that exhausted the request deadline (503)
	partials        *obs.Counter // searches answered with partial shard coverage
	clientCancels   *obs.Counter // requests abandoned by the client (499)
	degradedRejects *obs.Counter // mutations rejected while degraded read-only (503)

	latency    *obs.Histogram // whole-request latency, seconds
	queueWait  *obs.Histogram // admission-queue wait, seconds
	batchSizes *obs.Histogram // queries per micro-batch execution
	queueHist  *obs.Histogram // admission-queue depth sampled at each enqueue
	queueDepth atomic.Int64   // queries currently inside the micro-batcher
}

// latencyBuckets covers 10µs up to ~80s in powers of two — request
// latencies under any plausible load, with interpolation inside each
// bucket keeping quantile error far below the old factor-of-two bound.
func latencyBuckets() []float64 { return obs.ExponentialBuckets(1e-5, 2, 23) }

func (m *metrics) init(reg *obs.Registry) {
	m.start = time.Now()
	m.reg = reg
	m.requests = reg.Counter("resinfer_http_requests_total", "HTTP requests accepted across all endpoints that do work.")
	m.queries = reg.Counter("resinfer_queries_total", "Individual search queries answered successfully.")
	m.errors = reg.Counter("resinfer_errors_total", "Requests or queries that failed.")
	m.batches = reg.Counter("resinfer_batches_total", "SearchBatch executions issued by the micro-batcher.")
	m.batchedQueries = reg.Counter("resinfer_batched_queries_total", "Queries that went through the micro-batching admission queue.")
	m.comparisons = reg.Counter("resinfer_comparisons_total", "Distance-comparator threshold comparisons (candidates visited).")
	m.pruned = reg.Counter("resinfer_pruned_total", "Candidates discarded from approximate distances alone.")
	m.upserts = reg.Counter("resinfer_upserts_total", "Vectors accepted via POST /upsert.")
	m.deletes = reg.Counter("resinfer_deletes_total", "Rows removed via POST /delete.")
	m.shed = reg.Counter("resinfer_shed_total", "Requests shed at the admission-queue watermark (HTTP 429).")
	m.timeouts = reg.Counter("resinfer_timeouts_total", "Requests that exhausted the request deadline (HTTP 503).")
	m.partials = reg.Counter("resinfer_partial_results_total", "Searches answered with partial shard coverage.")
	m.clientCancels = reg.Counter("resinfer_client_cancels_total", "Requests abandoned by the client before completion (HTTP 499).")
	m.degradedRejects = reg.Counter("resinfer_degraded_rejects_total", "Mutations rejected while the index was degraded read-only (HTTP 503).")

	m.latency = reg.Histogram("resinfer_request_duration_seconds",
		"End-to-end request latency across /search and /search/batch.", latencyBuckets())
	m.queueWait = reg.Histogram("resinfer_queue_wait_seconds",
		"Time a query spent in the micro-batching admission queue before executing.",
		obs.ExponentialBuckets(1e-5, 2, 18))
	m.batchSizes = reg.Histogram("resinfer_batch_size",
		"Queries per micro-batch execution.", obs.ExponentialBuckets(1, 2, 10))
	m.queueHist = reg.Histogram("resinfer_queue_depth",
		"Admission-queue depth sampled when each query is enqueued.",
		obs.ExponentialBuckets(1, 2, 12))
	reg.GaugeFunc("resinfer_queue_depth_current",
		"Queries currently waiting in or executing from the admission queue.",
		func() float64 { return float64(m.queueDepth.Load()) })
	reg.GaugeFunc("resinfer_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(m.start).Seconds() })
	reg.Gauge("resinfer_simd_level",
		"Always 1; the level label names the active SIMD dispatch tier.",
		obs.Label{Name: "level", Value: resinfer.SIMDLevel()}).Set(1)
	reg.Gauge("resinfer_build_info",
		"Always 1; labels identify the running build and its runtime configuration.",
		obs.Label{Name: "version", Value: resinfer.Version},
		obs.Label{Name: "goversion", Value: runtime.Version()},
		obs.Label{Name: "simd", Value: resinfer.SIMDLevel()},
		obs.Label{Name: "wal_sync", Value: m.walSync}).Set(1)
}

// StatsSnapshot is the JSON document served at GET /stats. Mutation is
// present only when the served index accepts streaming mutations: it
// carries the ingest counters plus the live segment depths (memtable
// rows, pending tombstones) and compaction/hot-swap timings.
type StatsSnapshot struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Version         string  `json:"version"`
	GoVersion       string  `json:"go_version"`
	SIMDLevel       string  `json:"simd_level"`
	WALSync         string  `json:"wal_sync"`
	Requests        int64   `json:"requests"`
	Queries         int64   `json:"queries"`
	Errors          int64   `json:"errors"`
	Batches         int64   `json:"batches"`
	BatchedQueries  int64   `json:"batched_queries"`
	AvgBatchSize    float64 `json:"avg_batch_size"`
	BatchSizeP50    float64 `json:"batch_size_p50,omitempty"`
	BatchSizeP99    float64 `json:"batch_size_p99,omitempty"`
	QueueDepthP50   float64 `json:"queue_depth_p50,omitempty"`
	QueueDepthP99   float64 `json:"queue_depth_p99,omitempty"`
	QueueWaitP99Ms  float64 `json:"queue_wait_p99_ms,omitempty"`
	Comparisons     int64   `json:"comparisons"`
	Pruned          int64   `json:"pruned"`
	Upserts         int64   `json:"upserts,omitempty"`
	Deletes         int64   `json:"deletes,omitempty"`
	Shed            int64   `json:"shed,omitempty"`
	Timeouts        int64   `json:"timeouts,omitempty"`
	PartialResults  int64   `json:"partial_results,omitempty"`
	ClientCancels   int64   `json:"client_cancels,omitempty"`
	DegradedRejects int64   `json:"degraded_rejects,omitempty"`
	LatencyMeanMs   float64 `json:"latency_mean_ms"`
	LatencyP50Ms    float64 `json:"latency_p50_ms"`
	LatencyP99Ms    float64 `json:"latency_p99_ms"`

	Mutation *resinfer.MutationStats `json:"mutation,omitempty"`
}

func (m *metrics) snapshot() StatsSnapshot {
	s := StatsSnapshot{
		UptimeSeconds:   time.Since(m.start).Seconds(),
		Version:         resinfer.Version,
		GoVersion:       runtime.Version(),
		SIMDLevel:       resinfer.SIMDLevel(),
		WALSync:         m.walSync,
		Requests:        m.requests.Value(),
		Queries:         m.queries.Value(),
		Errors:          m.errors.Value(),
		Batches:         m.batches.Value(),
		BatchedQueries:  m.batchedQueries.Value(),
		Comparisons:     m.comparisons.Value(),
		Pruned:          m.pruned.Value(),
		Upserts:         m.upserts.Value(),
		Deletes:         m.deletes.Value(),
		Shed:            m.shed.Value(),
		Timeouts:        m.timeouts.Value(),
		PartialResults:  m.partials.Value(),
		ClientCancels:   m.clientCancels.Value(),
		DegradedRejects: m.degradedRejects.Value(),
		LatencyMeanMs:   m.latency.Mean() * 1e3,
		LatencyP50Ms:    m.latency.Quantile(0.50) * 1e3,
		LatencyP99Ms:    m.latency.Quantile(0.99) * 1e3,
	}
	if s.Batches > 0 {
		s.AvgBatchSize = float64(s.BatchedQueries) / float64(s.Batches)
		s.BatchSizeP50 = m.batchSizes.Quantile(0.50)
		s.BatchSizeP99 = m.batchSizes.Quantile(0.99)
		s.QueueDepthP50 = m.queueHist.Quantile(0.50)
		s.QueueDepthP99 = m.queueHist.Quantile(0.99)
		s.QueueWaitP99Ms = m.queueWait.Quantile(0.99) * 1e3
	}
	return s
}

// registerIndexMetrics wires whatever observability the served index
// supports into the registry via capability probes, so the server stays
// decoupled from concrete index types: per-shard search timings and
// work counters, compaction build/swap durations, WAL append/fsync
// latency, and memtable/tombstone/segment gauges. qt (may be nil) is
// the shadow quality tracker; the index exposes a single compaction
// observer slot, so the metrics observer also rolls the tracker's
// since-compaction recall epoch.
// It returns the per-shard search-duration histograms (nil when the
// index is unsharded) so the server can derive the observed shard p95 —
// the adaptive hedge-delay source.
func registerIndexMetrics(reg *obs.Registry, idx Searcher, mut Mutator, qt *quality.Tracker) []*obs.Histogram {
	reg.GaugeFunc("resinfer_index_points", "Rows currently searchable in the index.",
		func() float64 { return float64(idx.Len()) })

	var shardDurs []*obs.Histogram
	if so, ok := idx.(shardObservable); ok {
		n := so.NumShards()
		durs := make([]*obs.Histogram, n)
		cmps := make([]*obs.Counter, n)
		prns := make([]*obs.Counter, n)
		for s := 0; s < n; s++ {
			l := obs.Label{Name: "shard", Value: strconv.Itoa(s)}
			durs[s] = reg.Histogram("resinfer_shard_search_duration_seconds",
				"Per-shard search duration within the fan-out.", latencyBuckets(), l)
			cmps[s] = reg.Counter("resinfer_shard_comparisons_total",
				"Threshold comparisons performed by this shard.", l)
			prns[s] = reg.Counter("resinfer_shard_pruned_total",
				"Candidates this shard discarded from approximate distances.", l)
		}
		so.SetShardObserver(func(shard int, d time.Duration, st resinfer.SearchStats) {
			if shard < 0 || shard >= n {
				return
			}
			durs[shard].ObserveDuration(d)
			cmps[shard].Add(st.Comparisons)
			prns[shard].Add(st.Pruned)
		})
		shardDurs = durs
	}

	if co, ok := idx.(compactionObservable); ok {
		build := reg.Histogram("resinfer_compaction_build_seconds",
			"Off-path rebuild+retrain duration of shard compactions.",
			obs.ExponentialBuckets(1e-3, 2, 18))
		swap := reg.Histogram("resinfer_compaction_swap_seconds",
			"Write-lock hold time of compaction hot swaps.",
			obs.ExponentialBuckets(1e-6, 2, 18))
		swaps := reg.Counter("resinfer_compaction_hotswaps_total",
			"Completed shard compactions (hot swaps).")
		co.SetCompactionObserver(func(ci resinfer.CompactionInfo) {
			build.ObserveDuration(ci.BuildDuration)
			swap.ObserveDuration(ci.SwapDuration)
			swaps.Inc()
			qt.NoteCompaction() // nil-safe
		})
	}

	if wo, ok := idx.(walObservable); ok {
		appendH := reg.Histogram("resinfer_wal_append_seconds",
			"WAL record append latency (serialize + write + inline fsync).",
			obs.ExponentialBuckets(1e-6, 2, 20))
		syncH := reg.Histogram("resinfer_wal_fsync_seconds",
			"WAL fsync latency on the append path (SyncAlways only).",
			obs.ExponentialBuckets(1e-6, 2, 20))
		wo.SetWALObserver(func(appendDur, syncDur time.Duration) {
			appendH.ObserveDuration(appendDur)
			if syncDur > 0 {
				syncH.ObserveDuration(syncDur)
			}
		})
	}

	if mut != nil {
		// One cached MutationStats snapshot feeds every gauge below:
		// MutationStats walks per-shard segment state under locks, so a
		// scrape reading five gauges should not take it five times.
		var (
			mu   sync.Mutex
			ms   resinfer.MutationStats
			last time.Time
		)
		stat := func(get func(resinfer.MutationStats) float64) func() float64 {
			return func() float64 {
				mu.Lock()
				defer mu.Unlock()
				if last.IsZero() || time.Since(last) > time.Second {
					ms = mut.MutationStats()
					last = time.Now()
				}
				return get(ms)
			}
		}
		reg.GaugeFunc("resinfer_memtable_rows", "Total memtable depth across shards.",
			stat(func(m resinfer.MutationStats) float64 { return float64(m.MemtableRows) }))
		reg.GaugeFunc("resinfer_tombstones", "Pending tombstoned deletes across shards.",
			stat(func(m resinfer.MutationStats) float64 { return float64(m.Tombstones) }))
		reg.GaugeFunc("resinfer_compactions", "Completed shard compactions.",
			stat(func(m resinfer.MutationStats) float64 { return float64(m.Compactions) }))
		reg.GaugeFunc("resinfer_compact_errors", "Failed compaction attempts.",
			stat(func(m resinfer.MutationStats) float64 { return float64(m.CompactErrors) }))
		reg.GaugeFunc("resinfer_wal_segments", "WAL segment files on disk.",
			stat(func(m resinfer.MutationStats) float64 { return float64(m.WALSegments) }))
	}
	return shardDurs
}
