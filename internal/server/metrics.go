package server

import (
	"math/bits"
	"sync/atomic"
	"time"

	"resinfer"
)

// nLatencyBuckets covers latencies from <1µs up to >2^46µs in powers of
// two, which is far beyond any plausible request duration.
const nLatencyBuckets = 48

// latencyHist is a lock-free log2-bucketed latency histogram: bucket i
// holds requests whose latency in microseconds has bit-length i. Quantile
// estimates are exact to within a factor of two, which is plenty for the
// p50/p99 surfaced at /stats.
type latencyHist struct {
	buckets [nLatencyBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= nLatencyBuckets {
		i = nLatencyBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// quantile returns the upper bound, in milliseconds, of the bucket
// containing the p-th percentile observation (p in [0,1]).
func (h *latencyHist) quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(p * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	for i := 0; i < nLatencyBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			upperUs := int64(1) << uint(i)
			return float64(upperUs) / 1000.0
		}
	}
	return 0
}

func (h *latencyHist) meanMs() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNs.Load()) / float64(n) / 1e6
}

// metrics is the server's atomic counter set; every field is updated
// lock-free on the request path and snapshotted at /stats.
type metrics struct {
	start          time.Time
	requests       atomic.Int64 // HTTP requests across all POST endpoints
	queries        atomic.Int64 // individual queries answered
	errors         atomic.Int64 // requests or queries that failed
	batches        atomic.Int64 // SearchBatch executions by the micro-batcher
	batchedQueries atomic.Int64 // queries that went through the micro-batcher
	comparisons    atomic.Int64 // DCO threshold comparisons (visited candidates)
	pruned         atomic.Int64 // candidates discarded from approximate distances
	upserts        atomic.Int64 // vectors accepted via POST /upsert
	deletes        atomic.Int64 // rows removed via POST /delete
	latency        latencyHist  // whole-request latency
}

// StatsSnapshot is the JSON document served at GET /stats. Mutation is
// present only when the served index accepts streaming mutations: it
// carries the ingest counters plus the live segment depths (memtable
// rows, pending tombstones) and compaction/hot-swap timings.
type StatsSnapshot struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	SIMDLevel      string  `json:"simd_level"`
	Requests       int64   `json:"requests"`
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	Batches        int64   `json:"batches"`
	BatchedQueries int64   `json:"batched_queries"`
	AvgBatchSize   float64 `json:"avg_batch_size"`
	Comparisons    int64   `json:"comparisons"`
	Pruned         int64   `json:"pruned"`
	Upserts        int64   `json:"upserts,omitempty"`
	Deletes        int64   `json:"deletes,omitempty"`
	LatencyMeanMs  float64 `json:"latency_mean_ms"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`

	Mutation *resinfer.MutationStats `json:"mutation,omitempty"`
}

func (m *metrics) snapshot() StatsSnapshot {
	s := StatsSnapshot{
		UptimeSeconds:  time.Since(m.start).Seconds(),
		SIMDLevel:      resinfer.SIMDLevel(),
		Requests:       m.requests.Load(),
		Queries:        m.queries.Load(),
		Errors:         m.errors.Load(),
		Batches:        m.batches.Load(),
		BatchedQueries: m.batchedQueries.Load(),
		Comparisons:    m.comparisons.Load(),
		Pruned:         m.pruned.Load(),
		Upserts:        m.upserts.Load(),
		Deletes:        m.deletes.Load(),
		LatencyMeanMs:  m.latency.meanMs(),
		LatencyP50Ms:   m.latency.quantile(0.50),
		LatencyP99Ms:   m.latency.quantile(0.99),
	}
	if s.Batches > 0 {
		s.AvgBatchSize = float64(s.BatchedQueries) / float64(s.Batches)
	}
	return s
}
