package server

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/obs"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promFamily is one parsed metric family.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

// parsePrometheus is a strict parser for the text exposition format
// (version 0.0.4), small enough to live in a test: it enforces that
// every sample belongs to a family announced by a preceding HELP/TYPE
// pair, that label values round-trip the escaping rules, and that no
// family is declared twice.
func parsePrometheus(t *testing.T, r io.Reader) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	var cur *promFamily
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: family %s declared twice", lineNo, name)
			}
			cur = &promFamily{name: name, help: help}
			fams[name] = cur
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			if cur == nil || cur.name != name {
				t.Fatalf("line %d: TYPE %s without immediately preceding HELP", lineNo, name)
			}
			if cur.typ != "" {
				t.Fatalf("line %d: TYPE %s declared twice", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", lineNo, typ)
			}
			cur.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s := parseSampleLine(t, lineNo, line)
		fam := familyOf(fams, s.name)
		if fam == nil {
			t.Fatalf("line %d: sample %s has no HELP/TYPE", lineNo, s.name)
		}
		if fam.typ == "" {
			t.Fatalf("line %d: family %s has HELP but no TYPE", lineNo, fam.name)
		}
		fam.samples = append(fam.samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name, fam := range fams {
		if fam.typ == "" {
			t.Fatalf("family %s: HELP without TYPE", name)
		}
		if len(fam.samples) == 0 {
			t.Fatalf("family %s: no samples", name)
		}
	}
	return fams
}

// familyOf resolves a sample name to its family, accounting for the
// _bucket/_sum/_count suffixes of histograms.
func familyOf(fams map[string]*promFamily, sample string) *promFamily {
	if f, ok := fams[sample]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base != sample {
			if f, ok := fams[base]; ok && f.typ == "histogram" {
				return f
			}
		}
	}
	return nil
}

func parseSampleLine(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: malformed sample %q", lineNo, line)
	} else {
		s.name = rest[:i]
		if rest[i] == '{' {
			end := strings.LastIndex(rest, "}")
			if end < i {
				t.Fatalf("line %d: unterminated label set: %q", lineNo, line)
			}
			parseLabels(t, lineNo, rest[i+1:end], s.labels)
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			rest = strings.TrimSpace(rest[i+1:])
		}
	}
	for _, r := range s.name {
		if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			t.Fatalf("line %d: invalid metric name %q", lineNo, s.name)
		}
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

// parseLabels decodes name="value" pairs, reversing the escaping the
// writer applied (\\, \", \n).
func parseLabels(t *testing.T, lineNo int, in string, out map[string]string) {
	t.Helper()
	for len(in) > 0 {
		eq := strings.Index(in, "=")
		if eq < 0 || len(in) < eq+2 || in[eq+1] != '"' {
			t.Fatalf("line %d: malformed labels %q", lineNo, in)
		}
		name := in[:eq]
		rest := in[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					t.Fatalf("line %d: dangling escape in %q", lineNo, in)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("line %d: bad escape \\%c", lineNo, rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			t.Fatalf("line %d: unterminated label value in %q", lineNo, in)
		}
		out[name] = val.String()
		in = rest[i+1:]
		in = strings.TrimPrefix(in, ",")
	}
}

// checkHistogram validates one histogram series: cumulative buckets are
// monotonically non-decreasing, the +Inf bucket equals _count, and _sum
// is present and finite.
func checkHistogram(t *testing.T, fam *promFamily, series string) {
	t.Helper()
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	var count, sum float64
	var haveCount, haveSum bool
	for _, s := range fam.samples {
		if labelsKey(s.labels, "le") != series {
			continue
		}
		switch s.name {
		case fam.name + "_bucket":
			le, err := strconv.ParseFloat(s.labels["le"], 64)
			if err != nil && s.labels["le"] != "+Inf" {
				t.Fatalf("%s: bad le %q", fam.name, s.labels["le"])
			}
			if s.labels["le"] == "+Inf" {
				le = math.Inf(1)
			}
			buckets = append(buckets, bucket{le: le, count: s.value})
		case fam.name + "_count":
			count, haveCount = s.value, true
		case fam.name + "_sum":
			sum, haveSum = s.value, true
		}
	}
	if !haveCount || !haveSum {
		t.Fatalf("%s: missing _count or _sum", fam.name)
	}
	if len(buckets) == 0 {
		t.Fatalf("%s: no buckets", fam.name)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			t.Fatalf("%s: bucket counts not monotonic: le=%v has %v < %v",
				fam.name, buckets[i].le, buckets[i].count, buckets[i-1].count)
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		t.Fatalf("%s: final bucket is le=%v, want +Inf", fam.name, last.le)
	}
	if last.count != count {
		t.Fatalf("%s: +Inf bucket %v != _count %v", fam.name, last.count, count)
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		t.Fatalf("%s: _sum = %v", fam.name, sum)
	}
}

// labelsKey renders a sample's labels minus the given names, to group
// histogram series that differ only in le.
func labelsKey(labels map[string]string, drop ...string) string {
	var parts []string
outer:
	for k, v := range labels {
		for _, d := range drop {
			if k == d {
				continue outer
			}
		}
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// TestMetricsPrometheusFormat drives traffic through a sharded server
// and validates the full /metrics output with a strict parser.
func TestMetricsPrometheusFormat(t *testing.T) {
	ds, _ := testFixtures(t)
	sx, err := resinfer.NewSharded(ds.Data, resinfer.Flat, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sx, Config{BatchWindow: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, q := range ds.Queries[:10] {
		var out searchResponse
		resp := postJSON(t, ts.URL+"/search", searchRequest{Query: q, K: 5}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	fams := parsePrometheus(t, resp.Body)

	for _, want := range []string{
		"resinfer_http_requests_total",
		"resinfer_queries_total",
		"resinfer_request_duration_seconds",
		"resinfer_queue_wait_seconds",
		"resinfer_batch_size",
		"resinfer_queue_depth",
		"resinfer_shard_search_duration_seconds",
		"resinfer_shard_comparisons_total",
		"resinfer_index_points",
		"resinfer_simd_level",
		"resinfer_uptime_seconds",
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
	} {
		if fams[want] == nil {
			t.Errorf("missing family %s", want)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	if v := fams["resinfer_queries_total"].samples[0].value; v != 10 {
		t.Errorf("resinfer_queries_total = %v, want 10", v)
	}
	// Per-shard families carry one series per shard.
	if n := len(fams["resinfer_shard_comparisons_total"].samples); n != 4 {
		t.Errorf("shard comparisons series = %d, want 4", n)
	}
	if lvl := fams["resinfer_simd_level"].samples[0].labels["level"]; lvl != resinfer.SIMDLevel() {
		t.Errorf("simd level label = %q, want %q", lvl, resinfer.SIMDLevel())
	}

	// Every histogram family checks out bucket-by-bucket, per series.
	for _, fam := range fams {
		if fam.typ != "histogram" {
			continue
		}
		series := map[string]bool{}
		for _, s := range fam.samples {
			series[labelsKey(s.labels, "le")] = true
		}
		for key := range series {
			checkHistogram(t, fam, key)
		}
	}

	// The request-duration histogram must have absorbed all 10 requests.
	fam := fams["resinfer_request_duration_seconds"]
	for _, s := range fam.samples {
		if s.name == fam.name+"_count" && s.value != 10 {
			t.Errorf("request_duration count = %v, want 10", s.value)
		}
	}
}

// TestMetricsScrapeDuringTraffic is the -race guard for the serving
// path: concurrent searches, mutations and scrapes on one server.
func TestMetricsScrapeDuringTraffic(t *testing.T) {
	ds, _ := testFixtures(t)
	sx, err := resinfer.NewSharded(ds.Data, resinfer.Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sx, Config{BatchWindow: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var out searchResponse
				postJSON(t, ts.URL+"/search", searchRequest{Query: ds.Queries[(w*20+i)%len(ds.Queries)], K: 5}, &out)
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		parsePrometheus(t, resp.Body)
		resp.Body.Close()
	}
	wg.Wait()

	// After the dust settles the scrape and /stats agree.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, resp.Body)
	resp.Body.Close()
	var stats StatsSnapshot
	getJSON(t, ts.URL+"/stats", &stats)
	if v := fams["resinfer_queries_total"].samples[0].value; int64(v) != stats.Queries {
		t.Fatalf("scrape queries %v != /stats queries %d", v, stats.Queries)
	}
	if stats.Queries != 80 {
		t.Fatalf("queries = %d, want 80", stats.Queries)
	}
}

// TestStatsQuantilesInterpolated pins the satellite fix: /stats p50/p99
// come from the interpolated histogram, so they are no longer snapped
// to power-of-two bucket bounds.
func TestStatsQuantilesInterpolated(t *testing.T) {
	var m metrics
	m.init(obs.NewRegistry())
	// 1000 latencies spread uniformly across one bucket, (10.24ms,
	// 20.48ms]: the old log2 histogram reported the bucket's upper bound
	// for every quantile in this range — a factor-of-two error at p50.
	lo, hi := 0.01024, 0.02048
	for i := 1; i <= 1000; i++ {
		m.latency.Observe(lo + (hi-lo)*float64(i)/1000)
	}
	snap := m.snapshot()
	if snap.LatencyP50Ms < 14 || snap.LatencyP50Ms > 17 {
		t.Errorf("p50 = %vms, want ~15.4ms (interpolated)", snap.LatencyP50Ms)
	}
	if snap.LatencyP99Ms < 19.5 || snap.LatencyP99Ms > 20.5 {
		t.Errorf("p99 = %vms, want just under 20.48ms", snap.LatencyP99Ms)
	}
	if snap.LatencyP50Ms >= snap.LatencyP99Ms {
		t.Errorf("p50 %v >= p99 %v", snap.LatencyP50Ms, snap.LatencyP99Ms)
	}
	wantMean := (lo + hi) / 2 * 1e3
	if math.Abs(snap.LatencyMeanMs-wantMean) > 0.5 {
		t.Errorf("mean = %vms, want ~%vms", snap.LatencyMeanMs, wantMean)
	}
}
