package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"resinfer"
)

// Mutator is the streaming-ingestion slice of the resinfer API;
// *resinfer.MutableIndex satisfies it. A server wrapping a Mutator
// additionally exposes POST /upsert, POST /delete and POST /compact,
// and surfaces the mutation counters at /stats.
type Mutator interface {
	Upsert(id int, vec []float32) (int, error)
	Delete(id int) (bool, error)
	Compact() (int, error)
	MutationStats() resinfer.MutationStats
}

type upsertRequest struct {
	// ID is optional: omitted (or negative) asks the index to assign one.
	ID     *int      `json:"id"`
	Vector []float32 `json:"vector"`
}

type upsertResponse struct {
	ID int `json:"id"`
}

type deleteRequest struct {
	ID *int `json:"id"`
}

type deleteResponse struct {
	Deleted bool `json:"deleted"`
}

type compactResponse struct {
	Compacted int `json:"compacted"`
}

func (s *Server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	var req upsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Vector) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty vector"))
		return
	}
	id := -1
	if req.ID != nil {
		id = *req.ID
	}
	gid, err := s.mut.Upsert(id, req.Vector)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.upserts.Add(1)
	writeJSON(w, http.StatusOK, upsertResponse{ID: gid})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.ID == nil || *req.ID < 0 {
		s.fail(w, http.StatusBadRequest, errors.New("missing or negative id"))
		return
	}
	deleted, err := s.mut.Delete(*req.ID)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if deleted {
		s.metrics.deletes.Add(1)
	}
	writeJSON(w, http.StatusOK, deleteResponse{Deleted: deleted})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	compacted, err := s.mut.Compact()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, compactResponse{Compacted: compacted})
}
