package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"resinfer"
)

// Mutator is the streaming-ingestion slice of the resinfer API;
// *resinfer.MutableIndex satisfies it. A server wrapping a Mutator
// additionally exposes POST /upsert, POST /delete and POST /compact,
// and surfaces the mutation counters at /stats.
type Mutator interface {
	Upsert(id int, vec []float32) (int, error)
	Delete(id int) (bool, error)
	Compact() (int, error)
	MutationStats() resinfer.MutationStats
}

type upsertRequest struct {
	// ID is optional: omitted (or negative) asks the index to assign one.
	ID     *int      `json:"id"`
	Vector []float32 `json:"vector"`
}

type upsertResponse struct {
	ID int `json:"id"`
}

type deleteRequest struct {
	ID *int `json:"id"`
}

type deleteResponse struct {
	Deleted bool `json:"deleted"`
}

type compactResponse struct {
	Compacted int `json:"compacted"`
}

// decodeStrict decodes one JSON value rejecting unknown fields, so a
// client typo ("vektor") fails loudly with a 400 instead of silently
// mutating nothing — or the wrong row.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// mutationStatus maps a mutation-API error to an HTTP status: invalid
// input (dimension mismatch, NaN/±Inf components) is the caller's
// fault; a degraded read-only index is 503 (the service exists, writes
// are temporarily refused — retry against a healthy replica); anything
// else — a failed shard rebuild, a WAL append failure — is an internal
// error.
func mutationStatus(err error) int {
	if errors.Is(err, resinfer.ErrInvalidVector) {
		return http.StatusBadRequest
	}
	if errors.Is(err, resinfer.ErrDegraded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// failMutation reports a mutation error, counting degraded rejections
// on their own so operators can tell "disk is broken" from "bad input".
func (s *Server) failMutation(w http.ResponseWriter, err error) {
	if errors.Is(err, resinfer.ErrDegraded) {
		s.metrics.degradedRejects.Inc()
	}
	s.fail(w, mutationStatus(err), err)
}

func (s *Server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Inc()
	var req upsertRequest
	if err := decodeStrict(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Vector) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty vector"))
		return
	}
	id := -1
	if req.ID != nil {
		id = *req.ID
	}
	gid, err := s.mut.Upsert(id, req.Vector)
	if err != nil {
		s.failMutation(w, err)
		return
	}
	s.metrics.upserts.Inc()
	writeJSON(w, http.StatusOK, upsertResponse{ID: gid})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Inc()
	var req deleteRequest
	if err := decodeStrict(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.ID == nil || *req.ID < 0 {
		s.fail(w, http.StatusBadRequest, errors.New("missing or negative id"))
		return
	}
	deleted, err := s.mut.Delete(*req.ID)
	if err != nil {
		s.failMutation(w, err)
		return
	}
	if deleted {
		s.metrics.deletes.Inc()
	}
	writeJSON(w, http.StatusOK, deleteResponse{Deleted: deleted})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Inc()
	compacted, err := s.mut.Compact()
	if err != nil {
		s.failMutation(w, err)
		return
	}
	writeJSON(w, http.StatusOK, compactResponse{Compacted: compacted})
}
