package server

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"resinfer"
)

func decodeInto(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// mutableFixture builds a small mutable index and serves it.
func mutableFixture(t *testing.T) (*resinfer.MutableIndex, *Server, *httptest.Server) {
	t.Helper()
	ds, _ := testFixtures(t)
	mx, err := resinfer.NewMutable(ds.Data, resinfer.Flat, 2,
		&resinfer.MutableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(mx, Config{BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		mx.Close()
	})
	return mx, srv, ts
}

func TestServerMutationEndpoints(t *testing.T) {
	mx, _, ts := mutableFixture(t)
	dim := mx.QueryDim()
	vecBody := make([]float32, dim)
	for i := range vecBody {
		vecBody[i] = float32(i) * 0.01
	}

	// Auto-assigned insert.
	var up struct {
		ID int `json:"id"`
	}
	resp := postJSON(t, ts.URL+"/upsert", map[string]any{"vector": vecBody}, &up)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upsert status %d", resp.StatusCode)
	}
	if up.ID < 2000 {
		t.Fatalf("auto id %d should be past the initial corpus", up.ID)
	}
	autoID := up.ID
	before := mx.Len()

	// Explicit-ID upsert replacing a base row leaves the count unchanged.
	resp = postJSON(t, ts.URL+"/upsert", map[string]any{"id": 7, "vector": vecBody}, &up)
	if resp.StatusCode != http.StatusOK || up.ID != 7 {
		t.Fatalf("explicit upsert: status %d id %d", resp.StatusCode, up.ID)
	}
	if mx.Len() != before {
		t.Fatalf("replacement changed Len %d → %d", before, mx.Len())
	}

	// The fresh vector is searchable immediately with perfect recall
	// (exact memtable scan) — it is its own nearest neighbor.
	var sr struct {
		Neighbors []struct {
			ID int `json:"id"`
		} `json:"neighbors"`
	}
	resp = postJSON(t, ts.URL+"/search", map[string]any{"query": vecBody, "k": 2}, &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if len(sr.Neighbors) == 0 || (sr.Neighbors[0].ID != autoID && sr.Neighbors[0].ID != 7) {
		t.Fatalf("fresh vector not top hit: %+v", sr.Neighbors)
	}

	// Delete it, verify it never comes back.
	var del struct {
		Deleted bool `json:"deleted"`
	}
	resp = postJSON(t, ts.URL+"/delete", map[string]any{"id": 7}, &del)
	if resp.StatusCode != http.StatusOK || !del.Deleted {
		t.Fatalf("delete: status %d deleted %v", resp.StatusCode, del.Deleted)
	}
	resp = postJSON(t, ts.URL+"/delete", map[string]any{"id": 7}, &del)
	if resp.StatusCode != http.StatusOK || del.Deleted {
		t.Fatalf("double delete: status %d deleted %v", resp.StatusCode, del.Deleted)
	}
	resp = postJSON(t, ts.URL+"/search", map[string]any{"query": vecBody, "k": 5}, &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	for _, n := range sr.Neighbors {
		if n.ID == 7 {
			t.Fatal("deleted id 7 surfaced in search results")
		}
	}

	// Compact via the endpoint and check the mutation stats section.
	var comp struct {
		Compacted int `json:"compacted"`
	}
	resp = postJSON(t, ts.URL+"/compact", map[string]any{}, &comp)
	if resp.StatusCode != http.StatusOK || comp.Compacted == 0 {
		t.Fatalf("compact: status %d compacted %d", resp.StatusCode, comp.Compacted)
	}

	hr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var snap StatsSnapshot
	decodeInto(t, hr, &snap)
	if snap.Mutation == nil {
		t.Fatal("/stats missing mutation section on a mutable index")
	}
	if snap.Mutation.Inserts != 2 || snap.Mutation.Deletes != 1 {
		t.Fatalf("mutation counters: %+v", snap.Mutation)
	}
	if snap.Mutation.Compactions == 0 {
		t.Fatal("compactions counter not surfaced")
	}
	if snap.Mutation.MemtableRows != 0 {
		t.Fatalf("memtable depth %d after compaction", snap.Mutation.MemtableRows)
	}
	if snap.Upserts != 2 || snap.Deletes != 1 {
		t.Fatalf("http-level counters: upserts=%d deletes=%d", snap.Upserts, snap.Deletes)
	}
}

func TestServerMutationBadRequests(t *testing.T) {
	_, _, ts := mutableFixture(t)
	cases := []struct {
		path string
		body map[string]any
	}{
		{"/upsert", map[string]any{}},                       // no vector
		{"/upsert", map[string]any{"vector": []float32{1}}}, // wrong dim
		{"/delete", map[string]any{}},                       // no id
		{"/delete", map[string]any{"id": -4}},               // negative id
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+c.path, c.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %v: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
}

// TestServerMutationRejectsUnknownFields pins DisallowUnknownFields on
// the mutation endpoints: a client typo ("vektor") must 400 and mutate
// nothing, not be silently ignored.
func TestServerMutationRejectsUnknownFields(t *testing.T) {
	mx, _, ts := mutableFixture(t)
	dim := mx.QueryDim()
	vecBody := make([]float32, dim)
	before := mx.Len()
	cases := []struct {
		path string
		body map[string]any
	}{
		{"/upsert", map[string]any{"vektor": vecBody}},
		{"/upsert", map[string]any{"vector": vecBody, "mode": "exact"}},
		{"/delete", map[string]any{"id": 3, "cascade": true}},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+c.path, c.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %v: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
	if mx.Len() != before {
		t.Fatalf("rejected requests mutated the index: %d → %d rows", before, mx.Len())
	}
}

// TestServerMutationRejectsNonFiniteVectors pins the scanRow validation
// end to end: NaN/±Inf components would poison exact memtable scans and
// comparator retraining, so /upsert must 400 them.
func TestServerMutationRejectsNonFiniteVectors(t *testing.T) {
	mx, _, ts := mutableFixture(t)
	dim := mx.QueryDim()
	before := mx.Len()
	for _, bad := range []string{"NaN", "Infinity", "-Infinity"} {
		// Go's json won't marshal non-finite floats; splice raw JSON.
		body := `{"vector":[` + bad
		for i := 1; i < dim; i++ {
			body += ",0"
		}
		body += `]}`
		resp, err := http.Post(ts.URL+"/upsert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// encoding/json itself rejects bare NaN/Infinity literals; either
		// way the contract is a 400, not a poisoned index.
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("upsert %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// Direct API check with a real NaN (bypassing JSON limitations).
	vec := make([]float32, dim)
	vec[dim/2] = float32(math.NaN())
	if _, err := mx.Upsert(-1, vec); !errors.Is(err, resinfer.ErrInvalidVector) {
		t.Fatalf("Upsert(NaN) error = %v, want ErrInvalidVector", err)
	}
	vec[dim/2] = float32(math.Inf(-1))
	if _, err := mx.Upsert(-1, vec); !errors.Is(err, resinfer.ErrInvalidVector) {
		t.Fatalf("Upsert(-Inf) error = %v, want ErrInvalidVector", err)
	}
	if mx.Len() != before {
		t.Fatalf("invalid vectors mutated the index: %d → %d rows", before, mx.Len())
	}
}

// failingMutator simulates an index whose mutation path fails
// internally (e.g. a failed shard rebuild): the server must answer 500,
// not blame the client with a 400.
type failingMutator struct {
	inner Searcher
}

func (f *failingMutator) SearchWithStats(q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error) {
	return f.inner.SearchWithStats(q, k, mode, budget)
}
func (f *failingMutator) SearchBatch(qs [][]float32, k int, mode resinfer.Mode, budget, workers int) ([]resinfer.BatchResult, error) {
	return f.inner.SearchBatch(qs, k, mode, budget, workers)
}
func (f *failingMutator) Len() int               { return f.inner.Len() }
func (f *failingMutator) QueryDim() int          { return f.inner.QueryDim() }
func (f *failingMutator) Modes() []resinfer.Mode { return f.inner.Modes() }
func (f *failingMutator) Upsert(id int, v []float32) (int, error) {
	return 0, errors.New("rebuild failed: disk on fire")
}
func (f *failingMutator) Delete(id int) (bool, error) {
	return false, errors.New("rebuild failed: disk on fire")
}
func (f *failingMutator) Compact() (int, error) {
	return 0, errors.New("rebuild failed: disk on fire")
}
func (f *failingMutator) MutationStats() resinfer.MutationStats { return resinfer.MutationStats{} }

func TestServerInternalMutationErrorsAre500(t *testing.T) {
	ds, _ := testFixtures(t)
	sx, err := resinfer.NewSharded(ds.Data, resinfer.Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(&failingMutator{inner: sx}, Config{BatchWindow: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	vecBody := make([]float32, sx.QueryDim())
	cases := []struct {
		path string
		body map[string]any
	}{
		{"/upsert", map[string]any{"vector": vecBody}},
		{"/delete", map[string]any{"id": 1}},
		{"/compact", map[string]any{}},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+c.path, c.body, nil)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("POST %s: status %d, want 500", c.path, resp.StatusCode)
		}
	}
}

func TestServerImmutableIndexHasNoMutationEndpoints(t *testing.T) {
	ds, _ := testFixtures(t)
	sx, err := resinfer.NewSharded(ds.Data, resinfer.Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sx, Config{BatchWindow: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/upsert", map[string]any{"vector": ds.Data[0]}, nil)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("immutable index must not accept /upsert")
	}
	hr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var snap StatsSnapshot
	decodeInto(t, hr, &snap)
	if snap.Mutation != nil {
		t.Fatal("immutable /stats must omit the mutation section")
	}
}
