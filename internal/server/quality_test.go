package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resinfer/internal/quality"
)

// qualityServer builds a sharded test server with shadow sampling on
// (rate 1: every query is shadowed).
func qualityServer(t *testing.T, cfg Config) (*Server, string, [][]float32, func()) {
	t.Helper()
	cfg.QualitySampleRate = 1
	srv, ts, queries := tracedServer(t, cfg)
	return srv, ts.URL, queries, func() {}
}

// waitQualityMeasured polls /debug/quality until the tracker has scored
// at least want samples (the workers are asynchronous).
func waitQualityMeasured(t *testing.T, url string, want uint64) quality.Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var snap quality.Snapshot
		getJSON(t, url+"/debug/quality", &snap)
		if snap.Measured >= want {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("quality tracker measured %d, want >= %d", snap.Measured, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestQualityEndpointScoresExactServing drives exact-mode traffic
// through the sampler: the shadow scans must agree with what was
// served, so every estimator reads 1.0.
func TestQualityEndpointScoresExactServing(t *testing.T) {
	_, url, queries, _ := qualityServer(t, Config{BatchWindow: time.Millisecond})

	const n, k = 10, 5
	for i := 0; i < n; i++ {
		var out searchResponse
		resp := postJSON(t, url+"/search", searchRequest{Query: queries[i], K: k, Mode: "exact"}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	snap := waitQualityMeasured(t, url, n)
	if snap.SampleRate != 1 || snap.Sampled != n {
		t.Fatalf("sampled %d at rate %d, want %d at 1", snap.Sampled, snap.SampleRate, n)
	}
	if snap.RecallMean < 0.999 || snap.RecallWindowMean < 0.999 {
		t.Fatalf("exact serving scored recall mean=%v window=%v, want 1.0",
			snap.RecallMean, snap.RecallWindowMean)
	}
	if len(snap.PerShard) != 4 {
		t.Fatalf("per-shard breakdown has %d entries, want 4", len(snap.PerShard))
	}
	var truth uint64
	for _, sh := range snap.PerShard {
		truth += sh.TruthNeighbors
	}
	if truth != n*k {
		t.Fatalf("per-shard truth total %d, want %d", truth, n*k)
	}
	if snap.SinceCompaction.Samples != n {
		t.Fatalf("since-compaction epoch has %d samples, want %d", snap.SinceCompaction.Samples, n)
	}
	if snap.HotQueriesTotal != n || len(snap.HotQueries) == 0 {
		t.Fatalf("hot-query sketch saw %d offers (%d keys), want %d", snap.HotQueriesTotal, len(snap.HotQueries), n)
	}
}

// TestQualityEndpointAbsentWhenDisabled: without the opt-in the
// endpoint does not exist and searches pay nothing.
func TestQualityEndpointAbsentWhenDisabled(t *testing.T) {
	srv, ts, queries := tracedServer(t, Config{BatchWindow: time.Millisecond})
	if srv.quality != nil {
		t.Fatal("quality tracker armed without opt-in")
	}
	var out searchResponse
	postJSON(t, ts.URL+"/search", searchRequest{Query: queries[0], K: 5}, &out)
	resp, err := http.Get(ts.URL + "/debug/quality")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/quality status %d, want 404", resp.StatusCode)
	}
}

// TestSLOEndpoint: /debug/slo is always mounted; the recall objective
// appears only when shadow sampling feeds it.
func TestSLOEndpoint(t *testing.T) {
	_, url, queries, _ := qualityServer(t, Config{BatchWindow: time.Millisecond})

	for i := 0; i < 5; i++ {
		var out searchResponse
		postJSON(t, url+"/search", searchRequest{Query: queries[i], K: 5}, &out)
	}
	waitQualityMeasured(t, url, 5)

	var snap quality.SLOSnapshot
	getJSON(t, url+"/debug/slo", &snap)
	if !snap.RecallTracked {
		t.Fatal("recall objective not tracked with sampling on")
	}
	if len(snap.Latency) != 2 || len(snap.Recall) != 2 {
		t.Fatalf("burn windows: latency=%d recall=%d, want 2/2", len(snap.Latency), len(snap.Recall))
	}
	fast := snap.Latency[0]
	if fast.Window != "fast" || fast.Requests < 5 {
		t.Fatalf("fast latency window = %+v", fast)
	}
	// httptest round-trips finish far under the 100ms default threshold,
	// and exact serving has perfect recall: neither objective burns.
	if fast.Burn != 0 || snap.Recall[0].Burn != 0 {
		t.Fatalf("healthy serving burning: latency=%v recall=%v", fast.Burn, snap.Recall[0].Burn)
	}
	if snap.LatencyPage || snap.RecallPage {
		t.Fatal("paging on healthy serving")
	}

	// Without sampling, the endpoint still serves the latency objective.
	_, ts, _ := tracedServer(t, Config{BatchWindow: time.Millisecond})
	var bare quality.SLOSnapshot
	getJSON(t, ts.URL+"/debug/slo", &bare)
	if bare.RecallTracked || len(bare.Recall) != 0 {
		t.Fatalf("recall tracked without sampling: %+v", bare)
	}
	if len(bare.Latency) != 2 {
		t.Fatalf("latency windows = %d, want 2", len(bare.Latency))
	}
}

// TestSlowlogCarriesTimestampAndTraceID: a traced slow request's
// slowlog entry records the request's arrival time and the same trace
// ID the client got back in the response header.
func TestSlowlogCarriesTimestampAndTraceID(t *testing.T) {
	_, ts, queries := tracedServer(t, Config{BatchWindow: time.Millisecond, SlowLogThreshold: time.Nanosecond})

	before := time.Now()
	body := strings.NewReader(`{"query":[` + floats(queries[0]) + `],"k":5,"trace":true}`)
	resp, err := http.Post(ts.URL+"/search", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantID := resp.Header.Get(traceIDHeader)
	if wantID == "" {
		t.Fatal("traced response carries no trace ID header")
	}

	// An untraced request still lands in the slowlog, just without an ID.
	var out searchResponse
	postJSON(t, ts.URL+"/search", searchRequest{Query: queries[1], K: 5}, &out)

	var sl slowLogResponse
	getJSON(t, ts.URL+"/debug/slowlog", &sl)
	if len(sl.Entries) != 2 {
		t.Fatalf("%d slowlog entries, want 2", len(sl.Entries))
	}
	untraced, traced := sl.Entries[0], sl.Entries[1]
	if traced.TraceID != wantID {
		t.Fatalf("slow entry trace ID %q, want %q", traced.TraceID, wantID)
	}
	if untraced.TraceID != "" {
		t.Fatalf("untraced entry has trace ID %q", untraced.TraceID)
	}
	for _, e := range sl.Entries {
		if e.Time.Before(before) || e.Time.After(time.Now()) {
			t.Fatalf("entry timestamp %v outside request window", e.Time)
		}
	}
}

// TestAccessLogCarriesTraceID: the access-log line for a traced request
// ends with the trace ID so it joins with the slowlog and the client's
// copy of the trace.
func TestAccessLogCarriesTraceID(t *testing.T) {
	srv, _, queries := tracedServer(t, Config{BatchWindow: time.Millisecond, AccessLog: true})
	var buf syncBuffer
	srv.access = logNew(&buf)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	body := strings.NewReader(`{"query":[` + floats(queries[0]) + `],"k":5,"trace":true}`)
	resp, err := http.Post(hts.URL+"/search", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantID := resp.Header.Get(traceIDHeader)
	var out searchResponse
	postJSON(t, hts.URL+"/search", searchRequest{Query: queries[1], K: 5}, &out)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d access-log lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "trace_id="+wantID) {
		t.Fatalf("traced line missing trace_id=%s: %s", wantID, lines[0])
	}
	if strings.Contains(lines[1], "trace_id=") {
		t.Fatalf("untraced line carries a trace ID: %s", lines[1])
	}
}

// TestBuildInfoExported: the build-info gauge is scrapeable and the
// same identity fields appear in /stats.
func TestBuildInfoExported(t *testing.T) {
	_, ts, _ := tracedServer(t, Config{BatchWindow: -1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, `resinfer_build_info{`) {
		t.Fatal("/metrics missing resinfer_build_info")
	}
	for _, want := range []string{`version=`, `goversion=`, `simd=`, `wal_sync="none"`} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics build_info missing %s", want)
		}
	}

	var stats StatsSnapshot
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Version == "" || stats.GoVersion == "" || stats.WALSync != "none" {
		t.Fatalf("stats identity fields = %q/%q/%q", stats.Version, stats.GoVersion, stats.WALSync)
	}
}
