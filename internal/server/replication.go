package server

// Replication endpoints: what one annserve process exposes so peers can
// replicate from it and hedge onto it.
//
//	POST /internal/shard/search        one shard's probe in global merge-ready form (hedge target)
//	GET  /internal/replica/checkpoint  the Save snapshot a joining replica bootstraps from
//	GET  /internal/replica/wal?from=N  the WAL tail past a follower's cursor, length-prefixed CRC records
//	GET  /internal/replica/status      applied LSN + row count
//
// The endpoints register via capability probes, so a server over a
// plain single index simply does not have them. They sit under
// /internal/ — a deployment fronting annserve with a load balancer
// should not route that prefix from outside the replica group.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"resinfer"
	"resinfer/internal/wal"
)

type (
	// shardGlobalSearcher answers hedged shard probes; ShardedIndex and
	// MutableIndex satisfy it.
	shardGlobalSearcher interface {
		SearchShardGlobal(s int, q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error)
		NumShards() int
	}
	// replicaSource serves snapshots and WAL tails to joining replicas;
	// MutableIndex satisfies it.
	replicaSource interface {
		Save(w io.Writer) error
		WALReplay(after uint64, fn func(wal.Record) error) (wal.ReplayStats, error)
		AppliedLSN() uint64
	}
	// hedgeStatter reports the hedged fan-out counters for /metrics.
	hedgeStatter interface {
		HedgeStats() (hedged, wins uint64)
	}
)

// registerReplication mounts whichever replication endpoints the index
// supports and the hedge counters when hedging is compiled into the
// index type. Called from New.
func (s *Server) registerReplication(idx Searcher) {
	if sg, ok := idx.(shardGlobalSearcher); ok {
		s.mux.HandleFunc("POST /internal/shard/search", func(w http.ResponseWriter, r *http.Request) {
			s.handleShardSearch(w, r, sg)
		})
	}
	if rs, ok := idx.(replicaSource); ok {
		s.mux.HandleFunc("GET /internal/replica/checkpoint", func(w http.ResponseWriter, r *http.Request) {
			s.handleReplicaCheckpoint(w, r, rs)
		})
		s.mux.HandleFunc("GET /internal/replica/wal", func(w http.ResponseWriter, r *http.Request) {
			s.handleReplicaWAL(w, r, rs)
		})
		s.mux.HandleFunc("GET /internal/replica/status", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, replicaStatusJSON{
				AppliedLSN: rs.AppliedLSN(),
				Points:     s.idx.Len(),
			})
		})
	}
	if hs, ok := idx.(hedgeStatter); ok {
		s.reg.GaugeFunc("resinfer_hedged_total",
			"Shard probes re-issued to a peer replica (hedges fired).",
			func() float64 { h, _ := hs.HedgeStats(); return float64(h) })
		s.reg.GaugeFunc("resinfer_hedge_wins_total",
			"Hedged probes that delivered their shard's first good answer.",
			func() float64 { _, w := hs.HedgeStats(); return float64(w) })
	}
}

type replicaStatusJSON struct {
	AppliedLSN uint64 `json:"applied_lsn"`
	Points     int    `json:"points"`
}

type shardSearchRequest struct {
	Shard  int       `json:"shard"`
	Query  []float32 `json:"query"`
	K      int       `json:"k"`
	Mode   string    `json:"mode"`
	Budget int       `json:"budget"`
}

type shardNeighborJSON struct {
	ID  int     `json:"id"`
	Key float32 `json:"key"`
}

type shardSearchResponse struct {
	Neighbors   []shardNeighborJSON `json:"neighbors"`
	Comparisons int64               `json:"comparisons"`
	Pruned      int64               `json:"pruned"`
}

// handleShardSearch answers a peer's hedged probe of one shard: the
// shard's contribution in global merge-ready form (IDs global, Key the
// cross-shard merge key). It bypasses the micro-batcher — a hedge is
// already late, queuing it behind a batch window would defeat it.
func (s *Server) handleShardSearch(w http.ResponseWriter, r *http.Request, sg shardGlobalSearcher) {
	s.metrics.requests.Inc()
	var req shardSearchRequest
	if err := decodeStrict(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Shard < 0 || req.Shard >= sg.NumShards() {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("shard %d out of range [0,%d)", req.Shard, sg.NumShards()))
		return
	}
	key, err := s.resolveParams(req.K, req.Mode, req.Budget)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ns, st, err := sg.SearchShardGlobal(req.Shard, req.Query, key.k, key.mode, key.budget)
	if err != nil {
		s.metrics.errors.Inc()
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	resp := shardSearchResponse{
		Neighbors:   make([]shardNeighborJSON, len(ns)),
		Comparisons: st.Comparisons,
		Pruned:      st.Pruned,
	}
	for i, n := range ns {
		resp.Neighbors[i] = shardNeighborJSON{ID: n.ID, Key: n.Distance}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReplicaCheckpoint serves the Save snapshot a joining replica
// bootstraps from. The snapshot is buffered in memory first: Save holds
// the mutation lock, and streaming straight to a slow peer would hold
// ingest hostage to the peer's network for the whole transfer.
func (s *Server) handleReplicaCheckpoint(w http.ResponseWriter, r *http.Request, rs replicaSource) {
	var buf bytes.Buffer
	if err := rs.Save(&buf); err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("snapshotting index: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set(lastLSNHeader, strconv.FormatUint(rs.AppliedLSN(), 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// lastLSNHeader carries the applied LSN on checkpoint and WAL tail
// responses — the high-water mark a follower's cursor must reach to be
// caught up.
const lastLSNHeader = "X-Resinfer-Last-Lsn"

// errWALGap marks a tail request whose cursor the log has trimmed past.
var errWALGap = errors.New("cursor behind trimmed WAL history")

// handleReplicaWAL streams the WAL records with LSN > from, framed
// exactly as on disk (length-prefixed, CRC-checked) behind a stream
// magic. The tail is buffered before the status line goes out, so a gap
// — the cursor sits before history a checkpoint already trimmed — can
// be reported as 410 Gone, telling the follower to re-sync from a fresh
// snapshot instead of silently missing mutations.
func (s *Server) handleReplicaWAL(w http.ResponseWriter, r *http.Request, rs replicaSource) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad from cursor: %w", err))
		return
	}
	var buf bytes.Buffer
	sw := wal.NewStreamWriter(&buf)
	delivered := uint64(0)
	_, rerr := rs.WALReplay(from, func(rec wal.Record) error {
		// LSNs are dense in the retained log: the first record past the
		// cursor not being from+1 means trimmed history.
		if delivered == 0 && rec.LSN > from+1 {
			return errWALGap
		}
		delivered = rec.LSN
		return sw.Write(rec)
	})
	applied := rs.AppliedLSN()
	switch {
	case errors.Is(rerr, errWALGap):
		s.fail(w, http.StatusGone, fmt.Errorf("wal trimmed past cursor %d; re-sync from a fresh checkpoint", from))
		return
	case errors.Is(rerr, resinfer.ErrNoWAL):
		s.fail(w, http.StatusConflict, rerr)
		return
	case rerr != nil:
		s.fail(w, http.StatusInternalServerError, rerr)
		return
	case delivered == 0 && from < applied:
		// Nothing retained past the cursor yet the index is ahead of it:
		// the whole gap was trimmed behind a checkpoint.
		s.fail(w, http.StatusGone, fmt.Errorf("wal trimmed past cursor %d; re-sync from a fresh checkpoint", from))
		return
	}
	if err := sw.Flush(); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set(lastLSNHeader, strconv.FormatUint(applied, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleReplicaReject answers mutation endpoints on a read-only replica:
// 503 naming the primary, so a misrouted writer knows where to go.
func (s *Server) handleReplicaReject(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Inc()
	s.metrics.degradedRejects.Inc()
	w.Header().Set("Retry-After", "0")
	s.fail(w, http.StatusServiceUnavailable,
		fmt.Errorf("read-only replica: mutations go to the primary at %s", s.cfg.ReplicaOf))
}
