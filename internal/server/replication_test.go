package server

// Tests for the replication endpoints: hedged shard probes, checkpoint
// serving, WAL tail streaming with gap detection, replica read-only
// rejection, and the catching-up /readyz gate.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/wal"
)

func newWALPrimary(t *testing.T, cfg Config) (*resinfer.MutableIndex, *Server, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	data := make([][]float32, 600)
	for i := range data {
		row := make([]float32, 24)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		data[i] = row
	}
	mx, err := resinfer.NewMutable(data, resinfer.Flat, 2, &resinfer.MutableOptions{
		DisableAutoCompact: true,
		WALDir:             t.TempDir(),
		WALSync:            resinfer.WALSyncNone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mx.Close)
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = -1
	}
	srv := New(mx, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return mx, srv, ts
}

func replVec(seed int64, dim int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, dim)
	for j := range v {
		v[j] = float32(rng.NormFloat64())
	}
	return v
}

// TestShardSearchEndpoint: the hedge target returns exactly the
// contribution SearchShardGlobal computes locally.
func TestShardSearchEndpoint(t *testing.T) {
	mx, _, ts := newWALPrimary(t, Config{})
	q := replVec(77, 24)
	want, wantSt, err := mx.SearchShardGlobal(1, q, 5, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"shard": 1, "query": q, "k": 5, "mode": "exact", "budget": 0})
	resp, err := http.Post(ts.URL+"/internal/shard/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var got shardSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Neighbors) != len(want) {
		t.Fatalf("got %d neighbors, want %d", len(got.Neighbors), len(want))
	}
	for i, n := range got.Neighbors {
		if n.ID != want[i].ID {
			t.Fatalf("neighbor %d: id %d, want %d", i, n.ID, want[i].ID)
		}
	}
	if got.Comparisons != wantSt.Comparisons {
		t.Fatalf("comparisons %d, want %d", got.Comparisons, wantSt.Comparisons)
	}

	// Out-of-range shard and unknown field are 400s, not 500s.
	for _, bad := range []string{
		`{"shard": 9, "query": [1], "k": 5}`,
		`{"shard": 0, "vektor": [1]}`,
	} {
		resp, err := http.Post(ts.URL+"/internal/shard/search", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestReplicaCheckpointRoundTrip: the checkpoint endpoint serves a
// loadable snapshot whose applied LSN matches the header.
func TestReplicaCheckpointRoundTrip(t *testing.T) {
	mx, _, ts := newWALPrimary(t, Config{})
	for i := 0; i < 15; i++ {
		if _, err := mx.Upsert(-1, replVec(int64(i), 24)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/internal/replica/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(lastLSNHeader); got != strconv.FormatUint(mx.AppliedLSN(), 10) {
		t.Fatalf("%s = %q, want %d", lastLSNHeader, got, mx.AppliedLSN())
	}
	clone, err := resinfer.LoadMutable(resp.Body, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer clone.Close()
	if clone.Len() != mx.Len() {
		t.Fatalf("clone has %d rows, primary %d", clone.Len(), mx.Len())
	}
	if clone.AppliedLSN() != mx.AppliedLSN() {
		t.Fatalf("clone lsn %d, primary %d", clone.AppliedLSN(), mx.AppliedLSN())
	}
	q := replVec(501, 24)
	a, _, _ := mx.SearchWithStats(q, 10, resinfer.Exact, 0)
	b, _, _ := clone.SearchWithStats(q, 10, resinfer.Exact, 0)
	ids := func(ns []resinfer.Neighbor) []int {
		out := make([]int, len(ns))
		for i, n := range ns {
			out[i] = n.ID
		}
		sort.Ints(out)
		return out
	}
	ai, bi := ids(a), ids(b)
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatalf("clone diverges: %v vs %v", ai, bi)
		}
	}
}

// fetchTail reads the WAL endpoint into decoded records.
func fetchTail(t *testing.T, base string, from uint64) ([]wal.Record, uint64, int) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/internal/replica/wal?from=%d", base, from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, resp.StatusCode
	}
	last, _ := strconv.ParseUint(resp.Header.Get(lastLSNHeader), 10, 64)
	sr := wal.NewStreamReader(resp.Body)
	var recs []wal.Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decoding tail: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs, last, http.StatusOK
}

// TestReplicaWALTail: the tail serves exactly the records past the
// cursor, and an up-to-date cursor gets an empty 200.
func TestReplicaWALTail(t *testing.T) {
	mx, _, ts := newWALPrimary(t, Config{})
	for i := 0; i < 8; i++ {
		if _, err := mx.Upsert(-1, replVec(int64(i), 24)); err != nil {
			t.Fatal(err)
		}
	}
	recs, last, code := fetchTail(t, ts.URL, 3)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if last != mx.AppliedLSN() {
		t.Fatalf("last-lsn header %d, want %d", last, mx.AppliedLSN())
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records past cursor 3, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(4+i) {
			t.Fatalf("record %d: lsn %d, want %d", i, rec.LSN, 4+i)
		}
		if rec.Op != wal.OpUpsert || len(rec.Vec) != 24 {
			t.Fatalf("record %d malformed: op=%d dim=%d", i, rec.Op, len(rec.Vec))
		}
	}
	// Caught-up cursor: empty tail, still 200 with the high-water mark.
	recs, last, code = fetchTail(t, ts.URL, mx.AppliedLSN())
	if code != http.StatusOK || len(recs) != 0 || last != mx.AppliedLSN() {
		t.Fatalf("caught-up tail: code=%d recs=%d last=%d", code, len(recs), last)
	}
}

// TestReplicaWALGapGone: a cursor behind trimmed history is 410, never
// a silently incomplete tail.
func TestReplicaWALGapGone(t *testing.T) {
	mx, _, ts := newWALPrimary(t, Config{})
	for i := 0; i < 10; i++ {
		if _, err := mx.Upsert(-1, replVec(int64(i), 24)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, code := fetchTail(t, ts.URL, 2); code != http.StatusGone {
		t.Fatalf("stale cursor: status %d, want 410", code)
	}
	// The checkpoint's own record is still retained, so the snapshot
	// cursor itself must NOT be a gap.
	if _, _, code := fetchTail(t, ts.URL, 10); code != http.StatusOK {
		t.Fatalf("snapshot cursor: status %d, want 200", code)
	}
	// Malformed cursor is the client's fault.
	resp, err := http.Get(ts.URL + "/internal/replica/wal?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: status %d, want 400", resp.StatusCode)
	}
}

// TestReplicaStatusEndpoint reports the applied LSN and row count.
func TestReplicaStatusEndpoint(t *testing.T) {
	mx, _, ts := newWALPrimary(t, Config{})
	if _, err := mx.Upsert(-1, replVec(1, 24)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/internal/replica/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st replicaStatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.AppliedLSN != mx.AppliedLSN() || st.Points != mx.Len() {
		t.Fatalf("status %+v, want lsn=%d points=%d", st, mx.AppliedLSN(), mx.Len())
	}
}

// TestReplicaReadOnlyReject: a server marked ReplicaOf rejects external
// mutations with 503 naming the primary, while searches keep serving.
func TestReplicaReadOnlyReject(t *testing.T) {
	_, _, ts := newWALPrimary(t, Config{ReplicaOf: "http://primary:8080"})
	body := `{"vector": [` + strings.Repeat("0.1,", 23) + `0.1]}`
	resp, err := http.Post(ts.URL+"/upsert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replica upsert: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "http://primary:8080") {
		t.Fatalf("rejection does not name the primary: %s", msg)
	}
	for _, ep := range []string{"/delete", "/compact"} {
		resp, err := http.Post(ts.URL+ep, "application/json", strings.NewReader(`{"id":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("replica %s: status %d, want 503", ep, resp.StatusCode)
		}
	}
	// Searches still serve.
	q := replVec(3, 24)
	sb, _ := json.Marshal(map[string]any{"query": q, "k": 5, "mode": "exact"})
	resp, err = http.Post(ts.URL+"/search", "application/json", bytes.NewReader(sb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica search: status %d, want 200", resp.StatusCode)
	}
}

// TestReadyzCatchingUp: the ReadyCheck hook gates /readyz until the
// follower reports caught up.
func TestReadyzCatchingUp(t *testing.T) {
	behind := true
	_, _, ts := newWALPrimary(t, Config{ReadyCheck: func() error {
		if behind {
			return errors.New("catching up to http://primary:8080 (cursor 7)")
		}
		return nil
	}})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rr readyResponse
	json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rr.Status != "catching-up" {
		t.Fatalf("catching up: status=%d body=%+v, want 503 catching-up", resp.StatusCode, rr)
	}
	behind = false
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("caught up: status %d, want 200", resp.StatusCode)
	}
}

// TestHedgeMetricsExposed: wrapping an index type with hedging support
// surfaces the hedge counters on /metrics.
func TestHedgeMetricsExposed(t *testing.T) {
	mx, _, ts := newWALPrimary(t, Config{})
	mx.SetShardHedger(func(ctx context.Context, shard int, q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error) {
		return nil, resinfer.SearchStats{}, nil
	}, time.Millisecond)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"resinfer_hedged_total", "resinfer_hedge_wins_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}
