package server

// Fault-tolerant-serving tests: overload shedding (429 + Retry-After),
// partial results under a deadline, require_full opt-out, client-cancel
// accounting, degraded read-only mode behind /readyz and
// /admin/degraded/clear, and the graceful-drain WAL flush.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/fault"
)

// buildResilienceSharded builds a small sharded index for fan-out tests.
func buildResilienceSharded(t *testing.T, nShards int) *resinfer.ShardedIndex {
	t.Helper()
	ds, _ := testFixtures(t)
	sx, err := resinfer.NewSharded(ds.Data, resinfer.Flat, nShards, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sx
}

// buildResilienceMutable builds a small WAL-backed mutable index.
func buildResilienceMutable(t *testing.T, walDir string) *resinfer.MutableIndex {
	t.Helper()
	ds, _ := testFixtures(t)
	mx, err := resinfer.NewMutable(ds.Data, resinfer.Flat, 2, &resinfer.MutableOptions{
		WALDir:             walDir,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

func testQuery(t *testing.T) []float32 {
	t.Helper()
	ds, _ := testFixtures(t)
	return ds.Queries[0]
}

// TestOverloadShed429: a query arriving past the admission watermark is
// shed immediately with 429 and a Retry-After hint, while the admitted
// query still answers — shedding protects goodput, it does not replace
// it.
func TestOverloadShed429(t *testing.T) {
	sx := buildResilienceSharded(t, 2)
	srv := New(sx, Config{
		BatchWindow:   300 * time.Millisecond, // long window: the first query sits collecting
		BatchMaxSize:  64,
		MaxQueueDepth: 1,
		RetryAfter:    2 * time.Second,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q := testQuery(t)

	firstDone := make(chan int, 1)
	go func() {
		var out searchResponse
		resp := postJSON(t, ts.URL+"/search", searchRequest{Query: q, K: 5, Mode: "exact"}, &out)
		firstDone <- resp.StatusCode
	}()

	// Wait for the first query to be admitted (queue depth 1 = watermark).
	deadline := time.Now().Add(2 * time.Second)
	for srv.metrics.queueDepth.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never entered the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	var out errorResponse
	resp := postJSON(t, ts.URL+"/search", searchRequest{Query: q, K: 5, Mode: "exact"}, &out)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", got)
	}
	if st := srv.Stats(); st.Shed < 1 {
		t.Fatalf("shed counter %d, want >= 1", st.Shed)
	}
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("admitted query: status %d, want 200", code)
	}
}

// TestPartialResultAndRequireFull: with one shard stuck past the request
// deadline the response arrives partial (200, partial=true, coverage in
// stats) — unless the client set require_full, which turns the same
// situation into a 503.
func TestPartialResultAndRequireFull(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildResilienceSharded(t, 4)
	srv := New(sx, Config{
		BatchWindow:    -1, // direct path: deterministic single-query deadline
		RequestTimeout: 150 * time.Millisecond,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q := testQuery(t)

	defer fault.Inject(fault.Injection{Site: fault.SiteShardSearch, Arg: 1, Delay: 2 * time.Second})()

	var out searchResponse
	resp := postJSON(t, ts.URL+"/search", searchRequest{Query: q, K: 5, Mode: "exact"}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial search: status %d, want 200", resp.StatusCode)
	}
	if !out.Partial {
		t.Fatal("response must be marked partial")
	}
	if out.Stats.ShardsOK != 3 || out.Stats.ShardsFailed != 1 {
		t.Fatalf("shard coverage: %+v, want 3 ok / 1 failed", out.Stats)
	}
	if len(out.Neighbors) != 5 {
		t.Fatalf("partial result carries %d neighbors, want 5", len(out.Neighbors))
	}
	if st := srv.Stats(); st.PartialResults < 1 {
		t.Fatalf("partials counter %d, want >= 1", st.PartialResults)
	}

	var errOut errorResponse
	resp = postJSON(t, ts.URL+"/search",
		searchRequest{Query: q, K: 5, Mode: "exact", RequireFull: true}, &errOut)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("require_full on partial: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(errOut.Error, "require_full") {
		t.Fatalf("error %q should name require_full", errOut.Error)
	}
	if st := srv.Stats(); st.Timeouts < 1 {
		t.Fatalf("timeouts counter %d, want >= 1", st.Timeouts)
	}
}

// TestBatchEndpointPartial: the batch endpoint marks per-entry partial
// coverage the same way.
func TestBatchEndpointPartial(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildResilienceSharded(t, 4)
	srv := New(sx, Config{RequestTimeout: 150 * time.Millisecond, SearchWorkers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ds, _ := testFixtures(t)

	defer fault.Inject(fault.Injection{Site: fault.SiteShardSearch, Arg: 2, Delay: 2 * time.Second})()

	var bout batchSearchResponse
	resp := postJSON(t, ts.URL+"/search/batch",
		batchSearchRequest{Queries: ds.Queries[:4], K: 5, Mode: "exact"}, &bout)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, want 200", resp.StatusCode)
	}
	for i, entry := range bout.Results {
		if entry.Error != "" {
			t.Fatalf("entry %d errored: %s", i, entry.Error)
		}
		if !entry.Partial {
			t.Fatalf("entry %d not marked partial", i)
		}
		if entry.Stats.ShardsFailed != 1 {
			t.Fatalf("entry %d coverage %+v, want 1 failed shard", i, entry.Stats)
		}
	}
}

// TestClientCancelCounted: a request the client abandons mid-flight is
// counted as a client cancel, not a server error.
func TestClientCancelCounted(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildResilienceSharded(t, 2)
	srv := New(sx, Config{BatchWindow: -1, RequestTimeout: 5 * time.Second})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q := testQuery(t)

	defer fault.Inject(fault.Injection{Site: fault.SiteShardSearch, Arg: fault.AnyArg, Delay: time.Second})()

	body := `{"query":` + floatsJSON(q) + `,"k":5,"mode":"exact"}`
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("expected the client-side deadline to abort the request, got status %d", resp.StatusCode)
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("client error: %v", err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		st := srv.Stats()
		if st.ClientCancels >= 1 {
			if st.Errors != 0 {
				t.Fatalf("client cancel inflated the error counter: %d", st.Errors)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client cancel never counted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDegradedServing is the degraded-mode acceptance test: a persistent
// injected fsync failure flips /readyz to 503 and mutations to 503
// while searches keep returning 200; POST /admin/degraded/clear re-arms
// writes once the fault is gone.
func TestDegradedServing(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	mx := buildResilienceMutable(t, t.TempDir())
	defer mx.Close()
	srv := New(mx, Config{BatchWindow: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q := testQuery(t)
	vec := make([]float32, len(q))
	copy(vec, q)

	// Healthy: ready, and writes work.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz healthy: status %d, want 200", resp.StatusCode)
	}
	var up upsertResponse
	if resp := postJSON(t, ts.URL+"/upsert", upsertRequest{Vector: vec}, &up); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy upsert: status %d", resp.StatusCode)
	}

	// Persistent fsync failure: mutations 503, readyz 503, searches 200.
	disarm := fault.Inject(fault.Injection{Site: fault.SiteWALFsync, Err: errors.New("disk gone")})
	var errOut errorResponse
	if resp := postJSON(t, ts.URL+"/upsert", upsertRequest{Vector: vec}, &errOut); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded upsert: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(errOut.Error, "degraded") {
		t.Fatalf("degraded upsert error %q should say degraded", errOut.Error)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyResponse
	decodeBody(t, resp, &ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Status != "degraded" {
		t.Fatalf("readyz degraded: status %d body %+v, want 503/degraded", resp.StatusCode, ready)
	}
	var out searchResponse
	if resp := postJSON(t, ts.URL+"/search", searchRequest{Query: q, K: 5, Mode: "exact"}, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("search while degraded: status %d, want 200", resp.StatusCode)
	}
	if st := srv.Stats(); st.DegradedRejects < 1 {
		t.Fatalf("degraded_rejects %d, want >= 1", st.DegradedRejects)
	}

	// Clearing while the fault persists re-degrades on the next write;
	// after the fault is gone, clear restores service.
	disarm()
	resp, err = http.Post(ts.URL+"/admin/degraded/clear", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded clear: status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after clear: status %d, want 200", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/upsert", upsertRequest{Vector: vec}, &up); resp.StatusCode != http.StatusOK {
		t.Fatalf("upsert after clear: status %d, want 200", resp.StatusCode)
	}
}

// TestDrainFlushesDurability: a graceful shutdown syncs the WAL and
// writes a checkpoint, so a clean stop leaves nothing to replay.
func TestDrainFlushesDurability(t *testing.T) {
	walDir := t.TempDir()
	mx := buildResilienceMutable(t, walDir)
	defer mx.Close()
	srv := New(mx, Config{DrainTimeout: 2 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	bound := make(chan string, 1)
	served := make(chan error, 1)
	go func() {
		served <- srv.Serve(ctx, "127.0.0.1:0", func(addr string) { bound <- addr })
	}()
	addr := <-bound
	q := testQuery(t)
	vec := make([]float32, len(q))
	copy(vec, q)
	var up upsertResponse
	if resp := postJSON(t, "http://"+addr+"/upsert", upsertRequest{Vector: vec}, &up); resp.StatusCode != http.StatusOK {
		t.Fatalf("upsert: status %d", resp.StatusCode)
	}

	cancel()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if _, err := os.Stat(filepath.Join(walDir, "checkpoint.strm")); err != nil {
		t.Fatalf("graceful drain must leave a checkpoint snapshot: %v", err)
	}
}

// floatsJSON renders a []float32 as a JSON array (for hand-built bodies).
func floatsJSON(v []float32) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconvFormat(x))
	}
	b.WriteByte(']')
	return b.String()
}

func strconvFormat(x float32) string {
	return strconv.FormatFloat(float64(x), 'g', -1, 32)
}
