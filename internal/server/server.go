// Package server exposes a resinfer index (single or sharded) over an
// HTTP JSON API:
//
//	POST /search         one query        {"query":[...],"k":10,"mode":"exact","budget":100}
//	POST /search/batch   many queries     {"queries":[[...],...],"k":10,"mode":"exact","budget":100}
//	GET  /stats          atomic request / latency / visited-count counters
//	GET  /metrics        the same and more in Prometheus text format
//	GET  /debug/slowlog  ring buffer of requests over the slow threshold
//	GET  /healthz        liveness plus index metadata
//
// Single-query requests pass through a micro-batching admission queue:
// they are collected for a short window (or until a size cap) and run as
// one SearchBatch, so concurrent callers share scheduling overhead. A
// semaphore bounds how many batch executions run at once, and every
// counter surfaced at /stats and /metrics is updated lock-free on the
// request path.
//
// A client can ask for its own request's pipeline timeline — decode,
// admission-queue wait, shard fan-out (with per-shard timings), k-way
// merge, encode — by sending the X-Resinfer-Trace: 1 header or
// "trace": true in the body; the stages come back inline under "trace".
// Requests slower than Config.SlowLogThreshold land in the slowlog ring
// with the same breakdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"resinfer"
	"resinfer/internal/obs"
	"resinfer/internal/quality"
)

// Searcher is the slice of the resinfer API the server needs; both
// *resinfer.Index and *resinfer.ShardedIndex satisfy it.
type Searcher interface {
	SearchWithStats(q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error)
	SearchBatch(queries [][]float32, k int, mode resinfer.Mode, budget, workers int) ([]resinfer.BatchResult, error)
	Len() int
	QueryDim() int
	Modes() []resinfer.Mode
}

// Config tunes the server. The zero value serves with exact search,
// k=10, a 2ms batching window, and GOMAXPROCS-wide concurrency.
type Config struct {
	// DefaultK is used when a request omits k (default 10).
	DefaultK int
	// DefaultBudget is used when a request omits budget (default 100).
	DefaultBudget int
	// DefaultMode is used when a request omits mode (default Exact).
	DefaultMode resinfer.Mode
	// MaxConcurrent bounds concurrently executing SearchBatch calls
	// across both endpoints (default GOMAXPROCS). Up to
	// MaxConcurrent×SearchWorkers search goroutines may exist at once;
	// they multiplex over GOMAXPROCS threads, so this bounds queue depth
	// and memory, not CPU.
	MaxConcurrent int
	// BatchWindow is how long the admission queue collects single
	// queries before executing (default 2ms). Negative disables
	// micro-batching: /search calls run directly.
	BatchWindow time.Duration
	// BatchMaxSize executes a collecting batch early once it holds this
	// many queries (default 64).
	BatchMaxSize int
	// SearchWorkers is the worker count handed to SearchBatch
	// (default GOMAXPROCS).
	SearchWorkers int
	// RequestTimeout caps how long one /search request may wait end to
	// end (default 30s). On a sharded index the deadline is enforced
	// inside the fan-out: shards that miss it are abandoned and the
	// response is served partial (see the Partial field of the search
	// response) rather than not at all.
	RequestTimeout time.Duration
	// MaxQueueDepth is the admission-queue watermark: single-query
	// requests arriving while this many queries already sit in (or
	// execute from) the micro-batcher are shed immediately with HTTP 429
	// and a Retry-After hint, instead of queueing into collective
	// timeout. Default 64×BatchMaxSize — deep enough that only sustained
	// overload sheds, not a burst one batch round absorbs; negative
	// disables shedding.
	MaxQueueDepth int
	// RetryAfter is the client back-off hint attached to shed (429)
	// responses (default 1s).
	RetryAfter time.Duration
	// DrainTimeout caps graceful shutdown: how long Serve waits for
	// in-flight requests (and the final WAL sync + checkpoint on a
	// durable index) before forcing connections closed (default 5s).
	DrainTimeout time.Duration
	// SlowLogThreshold sends requests slower than this to the
	// /debug/slowlog ring with per-stage timings (default 250ms).
	// Negative disables the slowlog — and with it the always-on tracing
	// that feeds it.
	SlowLogThreshold time.Duration
	// AccessLog emits one structured line per request to stderr.
	AccessLog bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// QualitySampleRate enables shadow quality sampling: one query in
	// QualitySampleRate is captured and replayed off-path as an exact
	// brute-force scan, feeding the live recall estimators at
	// /debug/quality and /metrics. 0 disables; requires an index with a
	// GroundTruthSearch (sharded or mutable).
	QualitySampleRate int
	// QualityWorkers sizes the ground-truth worker pool (default 1).
	QualityWorkers int
	// SLOLatencyThreshold / SLOLatencyTarget / SLORecallTarget define
	// the objectives the /debug/slo burn tracker evaluates (defaults:
	// 100ms at 0.99, recall 0.95).
	SLOLatencyThreshold time.Duration
	SLOLatencyTarget    float64
	SLORecallTarget     float64

	// ReadyCheck, when set, gates GET /readyz beyond the degraded probe:
	// a non-nil return serves 503 with the error as the reason. A
	// catching-up replica hooks its follower state in here, so load
	// balancers admit it only once its WAL cursor has reached the
	// primary.
	ReadyCheck func() error
	// ReplicaOf marks this server a read-only replica of the named
	// primary: the mutation endpoints are registered as rejections (503
	// naming the primary) instead of being wired to the index, which
	// only the replication stream may mutate.
	ReplicaOf string
}

func (c Config) withDefaults() Config {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 100
	}
	if c.DefaultMode == "" {
		c.DefaultMode = resinfer.Exact
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 64
	}
	if c.SearchWorkers <= 0 {
		c.SearchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxQueueDepth == 0 {
		c.MaxQueueDepth = 64 * c.BatchMaxSize
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.SlowLogThreshold == 0 {
		c.SlowLogThreshold = 250 * time.Millisecond
	}
	return c
}

// Server serves one index. Create with New, expose with Handler or
// ListenAndServe, stop with Close.
type Server struct {
	idx      Searcher
	traced   tracedSearcher // idx's traced variant, nil if unsupported
	ctxIdx   ctxSearcher    // idx's deadline-aware variant, nil if unsupported
	ctxBatch batchCtxSearcher
	mut      Mutator    // non-nil when idx also accepts mutations
	degr     degradable // non-nil when idx has a degraded read-only mode
	cfg      Config
	metrics  metrics
	reg      *obs.Registry
	slowlog  *slowLog // nil when disabled
	batcher  *batcher // nil when micro-batching is disabled
	sem      chan struct{}
	mux      *http.ServeMux
	access   *log.Logger      // nil unless Config.AccessLog
	quality  *quality.Tracker // nil unless shadow sampling is enabled
	slo      *quality.SLO
	traceSeq atomic.Uint64    // request trace-ID allocator
	shardDur []*obs.Histogram // per-shard search latency (nil when unsharded)
}

// New wraps idx in a server. The caller must not reconfigure idx (e.g.
// call Enable*) while the server is running; an index that implements
// Mutator (resinfer.MutableIndex) additionally gets the /upsert, /delete
// and /compact endpoints, through which mutation is safe at any time.
func New(idx Searcher, cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		idx: idx,
		cfg: c,
		reg: obs.NewRegistry(),
		sem: make(chan struct{}, c.MaxConcurrent),
	}
	s.traced, _ = idx.(tracedSearcher)
	s.ctxIdx, _ = idx.(ctxSearcher)
	s.ctxBatch, _ = idx.(batchCtxSearcher)
	s.degr, _ = idx.(degradable)
	s.metrics.walSync = "none"
	if wp, ok := idx.(walPolicied); ok {
		s.metrics.walSync = wp.WALSyncPolicy()
	}
	s.metrics.init(s.reg)
	obs.RegisterGoRuntime(s.reg)
	if c.SlowLogThreshold > 0 {
		s.slowlog = newSlowLog(c.SlowLogThreshold)
	}
	if c.AccessLog {
		s.access = log.New(os.Stderr, "", 0)
	}
	if c.BatchWindow > 0 {
		s.batcher = newBatcher(idx, c.BatchWindow, c.BatchMaxSize, c.MaxQueueDepth, c.SearchWorkers, s.sem, &s.metrics)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("POST /search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.degr != nil {
		s.mux.HandleFunc("POST /admin/degraded/clear", s.handleDegradedClear)
	}
	if s.slowlog != nil {
		s.mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	}
	if c.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if c.ReplicaOf != "" {
		// A read-only replica: only the replication stream mutates the
		// index, so external writers get a redirect-shaped 503 instead.
		s.mux.HandleFunc("POST /upsert", s.handleReplicaReject)
		s.mux.HandleFunc("POST /delete", s.handleReplicaReject)
		s.mux.HandleFunc("POST /compact", s.handleReplicaReject)
	} else if m, ok := idx.(Mutator); ok {
		s.mut = m
		s.mux.HandleFunc("POST /upsert", s.handleUpsert)
		s.mux.HandleFunc("POST /delete", s.handleDelete)
		s.mux.HandleFunc("POST /compact", s.handleCompact)
	}
	s.registerReplication(idx)
	if c.QualitySampleRate > 0 {
		if gt, ok := idx.(groundTruther); ok {
			s.quality = quality.NewTracker(gt, quality.Config{
				SampleRate: c.QualitySampleRate,
				Workers:    c.QualityWorkers,
			})
			s.quality.Register(s.reg)
			s.mux.HandleFunc("GET /debug/quality", s.handleQuality)
		}
	}
	s.slo = quality.NewSLO(s.metrics.latency, s.quality, quality.SLOConfig{
		LatencyThreshold: c.SLOLatencyThreshold,
		LatencyTarget:    c.SLOLatencyTarget,
		RecallTarget:     c.SLORecallTarget,
	})
	s.slo.Register(s.reg)
	s.mux.HandleFunc("GET /debug/slo", s.handleSLO)
	s.shardDur = registerIndexMetrics(s.reg, idx, s.mut, s.quality)
	return s
}

// ShardLatencyP95 returns the worst per-shard p95 search latency in
// seconds observed so far, 0 before any shard probe has been recorded
// or on an unsharded index. The adaptive hedge-delay controller polls
// it: hedging at the shard p95 re-issues roughly the slowest 5% of
// probes.
func (s *Server) ShardLatencyP95() float64 {
	var worst float64
	for _, h := range s.shardDur {
		if h.Count() == 0 {
			continue
		}
		if q := h.Quantile(0.95); q > worst {
			worst = q
		}
	}
	return worst
}

// handleQuality serves the shadow-sampling quality snapshot: recall /
// rank-displacement / score-error estimators, per-shard and
// since-compaction breakdowns, and the hot-query sketch.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.quality.Snapshot())
}

// handleSLO serves the multi-window SLO burn-rate snapshot.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Snapshot())
}

// Handler returns the server's HTTP handler (for tests and embedding),
// wrapped in the access-log middleware when enabled.
func (s *Server) Handler() http.Handler {
	if s.access == nil {
		return s.mux
	}
	return s.withAccessLog(s.mux)
}

// Registry exposes the server's metrics registry so embedders (the
// bench harness, tests) can read the same histograms /metrics serves.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Stats returns the same snapshot served at GET /stats.
func (s *Server) Stats() StatsSnapshot {
	snap := s.metrics.snapshot()
	if s.mut != nil {
		ms := s.mut.MutationStats()
		snap.Mutation = &ms
	}
	return snap
}

// Close stops the micro-batcher (failing queries still queued), the
// SLO snapshot ticker, and the shadow quality workers.
func (s *Server) Close() {
	if s.batcher != nil {
		s.batcher.close()
	}
	if s.slo != nil {
		s.slo.Close()
	}
	if s.quality != nil {
		s.quality.Close()
	}
}

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	return s.Serve(ctx, addr, nil)
}

// batchSizeHeader carries the query count of a request so the
// access-log middleware can log it without re-parsing the body.
const batchSizeHeader = "X-Resinfer-Batch"

// traceIDHeader echoes a traced request's ID back to the client; the
// access-log middleware reads it from the response headers the same way
// it reads the batch size, and slowlog entries carry the same ID, so
// one request's three records join on it.
const traceIDHeader = "X-Resinfer-Trace-Id"

// nextTraceID allocates a process-unique request trace ID.
func (s *Server) nextTraceID() string {
	return fmt.Sprintf("%08x", s.traceSeq.Add(1))
}

// statusWriter captures the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withAccessLog emits one logfmt-style line per request to stderr:
//
//	ts=... method=POST path=/search status=200 dur_ms=1.042 batch=8 remote=127.0.0.1:53420
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		batch := sw.Header().Get(batchSizeHeader)
		if batch == "" {
			batch = "0"
		}
		traceID := ""
		if tid := sw.Header().Get(traceIDHeader); tid != "" {
			traceID = " trace_id=" + tid
		}
		s.access.Printf("ts=%s method=%s path=%s status=%d dur_ms=%.3f batch=%s remote=%s%s",
			start.UTC().Format(time.RFC3339Nano), r.Method, r.URL.Path, sw.status,
			float64(time.Since(start))/float64(time.Millisecond), batch, r.RemoteAddr, traceID)
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// neighborJSON is one hit on the wire.
type neighborJSON struct {
	ID       int     `json:"id"`
	Distance float32 `json:"distance"`
}

// statsJSON mirrors resinfer.SearchStats on the wire.
type statsJSON struct {
	Comparisons  int64   `json:"comparisons"`
	Pruned       int64   `json:"pruned"`
	ScanRate     float64 `json:"scan_rate"`
	PrunedRate   float64 `json:"pruned_rate"`
	ShardsOK     int     `json:"shards_ok,omitempty"`
	ShardsFailed int     `json:"shards_failed,omitempty"`
}

type searchRequest struct {
	Query  []float32 `json:"query"`
	K      int       `json:"k"`
	Mode   string    `json:"mode"`
	Budget int       `json:"budget"`
	Trace  bool      `json:"trace"`
	// RequireFull opts out of the partial-result contract: if any shard
	// failed or missed the deadline, the request fails with 503 instead
	// of returning the surviving shards' merge.
	RequireFull bool `json:"require_full"`
}

type searchResponse struct {
	Neighbors []neighborJSON `json:"neighbors"`
	Stats     statsJSON      `json:"stats"`
	// Partial marks a response merged from a subset of shards: the
	// others failed or were abandoned at the deadline. Stats.ShardsOK /
	// Stats.ShardsFailed give the exact coverage.
	Partial bool       `json:"partial,omitempty"`
	Trace   *traceJSON `json:"trace,omitempty"`
}

type batchSearchRequest struct {
	Queries [][]float32 `json:"queries"`
	K       int         `json:"k"`
	Mode    string      `json:"mode"`
	Budget  int         `json:"budget"`
}

type batchEntryJSON struct {
	Neighbors []neighborJSON `json:"neighbors"`
	Stats     statsJSON      `json:"stats"`
	Partial   bool           `json:"partial,omitempty"`
	Error     string         `json:"error,omitempty"`
}

type batchSearchResponse struct {
	Results []batchEntryJSON `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func toNeighborsJSON(ns []resinfer.Neighbor) []neighborJSON {
	out := make([]neighborJSON, len(ns))
	for i, n := range ns {
		out[i] = neighborJSON{ID: n.ID, Distance: n.Distance}
	}
	return out
}

func toStatsJSON(st resinfer.SearchStats) statsJSON {
	return statsJSON{
		Comparisons:  st.Comparisons,
		Pruned:       st.Pruned,
		ScanRate:     st.ScanRate,
		PrunedRate:   st.PrunedRate,
		ShardsOK:     st.ShardsOK,
		ShardsFailed: st.ShardsFailed,
	}
}

// resolveParams fills defaults and normalizes one request's parameters.
func (s *Server) resolveParams(k int, mode string, budget int) (batchKey, error) {
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if budget <= 0 {
		budget = s.cfg.DefaultBudget
	}
	m := resinfer.Mode(mode)
	if mode == "" {
		m = s.cfg.DefaultMode
	}
	switch m {
	case resinfer.Exact, resinfer.ADSampling, resinfer.DDCRes, resinfer.DDCPCA, resinfer.DDCOPQ:
	default:
		return batchKey{}, fmt.Errorf("unknown mode %q", mode)
	}
	return batchKey{k: k, mode: m, budget: budget}, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.metrics.errors.Inc()
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusClientClosedRequest is nginx's conventional code for a request
// the client abandoned; no standard constant exists.
const statusClientClosedRequest = 499

// failSearch maps a search-path error to its HTTP status with the right
// counters: overload → 429 + Retry-After, deadline → 503 (a timeout),
// shutdown → 503, client cancellation → 499 — counted on its own,
// not inflating the error counter, since the server did nothing wrong.
func (s *Server) failSearch(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.metrics.shed.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		s.fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// The client hung up; the write below is best-effort at most.
		s.metrics.clientCancels.Inc()
		writeJSON(w, statusClientClosedRequest, errorResponse{Error: "client closed request"})
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.timeouts.Inc()
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrServerClosed):
		s.fail(w, http.StatusServiceUnavailable, err)
	default:
		s.fail(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.requests.Inc()
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Query) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	// Reject a wrong-dimension query before admission: once inside the
	// micro-batcher it would fail SearchBatch's up-front validation and
	// take every other query grouped with it down too.
	if len(req.Query) != s.idx.QueryDim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("query dim %d, index expects %d", len(req.Query), s.idx.QueryDim()))
		return
	}
	key, err := s.resolveParams(req.K, req.Mode, req.Budget)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set(batchSizeHeader, "1")

	// Trace when the client asked (header or body flag) or whenever the
	// slowlog is armed — a slow request is only diagnosable if its
	// stages were being recorded while it ran. Traces are pooled and
	// reset in place, so steady-state tracing does not allocate.
	wantTrace := req.Trace || r.Header.Get("X-Resinfer-Trace") == "1"
	var tr *obs.Trace
	var traceID string
	if wantTrace || s.slowlog != nil {
		tr = getTrace(start)
		defer putTrace(tr)
		tr.End("decode", start)
	}
	if wantTrace {
		// A client-visible trace gets an ID echoed in the response
		// header, the access log, and any slowlog entry, so the three
		// records of one request can be joined. Allocated only on traced
		// requests — the plain path never formats it.
		traceID = s.nextTraceID()
		w.Header().Set(traceIDHeader, traceID)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var res queryResult
	if s.batcher != nil {
		res = s.batcher.submit(ctx, req.Query, key, tr)
	} else {
		admit := time.Now()
		select {
		case s.sem <- struct{}{}:
			tr.End("admit", admit)
			switch {
			case s.ctxIdx != nil:
				searchStart := time.Now()
				ns, st, err := s.ctxIdx.SearchWithStatsCtx(ctx, req.Query, key.k, key.mode, key.budget, tr)
				if tr != nil && s.traced == nil {
					tr.End("search", searchStart)
				}
				res = queryResult{neighbors: ns, stats: st, err: err}
			case tr != nil && s.traced != nil:
				ns, st, err := s.traced.SearchWithStatsTraced(req.Query, key.k, key.mode, key.budget, tr)
				res = queryResult{neighbors: ns, stats: st, err: err}
			default:
				searchStart := time.Now()
				ns, st, err := s.idx.SearchWithStats(req.Query, key.k, key.mode, key.budget)
				tr.End("search", searchStart)
				res = queryResult{neighbors: ns, stats: st, err: err}
			}
			<-s.sem
		case <-ctx.Done():
			res = queryResult{err: ctx.Err()}
		}
	}
	if res.err != nil {
		s.failSearch(w, r, res.err)
		return
	}
	partial := res.stats.ShardsFailed > 0
	if partial && req.RequireFull {
		s.metrics.timeouts.Inc()
		s.fail(w, http.StatusServiceUnavailable,
			fmt.Errorf("partial result (%d/%d shards) rejected: require_full set",
				res.stats.ShardsOK, res.stats.ShardsOK+res.stats.ShardsFailed))
		return
	}
	if partial {
		s.metrics.partials.Inc()
	}
	s.metrics.queries.Inc()
	s.metrics.comparisons.Add(res.stats.Comparisons)
	s.metrics.pruned.Add(res.stats.Pruned)
	// Shadow quality sampling: one atomic on the common path; a sampled
	// query is copied into a pooled job and replayed off-path as an
	// exact scan (nil tracker = disabled, no-op).
	s.quality.MaybeSample(req.Query, res.neighbors, key.k)

	resp := searchResponse{
		Neighbors: toNeighborsJSON(res.neighbors),
		Stats:     toStatsJSON(res.stats),
		Partial:   partial,
	}
	if tr != nil {
		// Measure the encode stage by marshalling the response body
		// before the trace is attached — the cost of double-encoding is
		// paid only on traced requests, never on the plain path.
		encStart := time.Now()
		_, _ = json.Marshal(resp)
		tr.End("encode", encStart)
		snap := tr.Snapshot()
		if wantTrace {
			resp.Trace = toTraceJSON(snap)
		}
		if s.slowlog != nil && snap.Total >= s.slowlog.threshold {
			s.slowlog.record(start, traceID, "/search", string(key.mode), key.k, key.budget, len(req.Query), snap)
		}
	}
	s.metrics.latency.ObserveDuration(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.requests.Inc()
	var req batchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	key, err := s.resolveParams(req.K, req.Mode, req.Budget)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set(batchSizeHeader, strconv.Itoa(len(req.Queries)))
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	var results []resinfer.BatchResult
	select {
	case s.sem <- struct{}{}:
		if s.ctxBatch != nil {
			results, err = s.ctxBatch.SearchBatchCtx(ctx, req.Queries, key.k, key.mode, key.budget, s.cfg.SearchWorkers, nil)
		} else {
			results, err = s.idx.SearchBatch(req.Queries, key.k, key.mode, key.budget, s.cfg.SearchWorkers)
		}
		<-s.sem
	case <-ctx.Done():
		err = ctx.Err()
	}
	if err != nil {
		s.failSearch(w, r, err)
		return
	}
	out := batchSearchResponse{Results: make([]batchEntryJSON, len(results))}
	for i, res := range results {
		entry := batchEntryJSON{
			Neighbors: toNeighborsJSON(res.Neighbors),
			Stats:     toStatsJSON(res.Stats),
			Partial:   res.Stats.ShardsFailed > 0,
		}
		if res.Err != nil {
			entry.Error = res.Err.Error()
			s.metrics.errors.Inc()
		} else {
			if entry.Partial {
				s.metrics.partials.Inc()
			}
			s.metrics.queries.Inc()
			s.metrics.comparisons.Add(res.Stats.Comparisons)
			s.metrics.pruned.Add(res.Stats.Pruned)
			s.quality.MaybeSample(req.Queries[i], res.Neighbors, key.k)
		}
		out.Results[i] = entry
	}
	s.metrics.latency.ObserveDuration(time.Since(start))
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

type healthResponse struct {
	Status string   `json:"status"`
	Points int      `json:"points"`
	Dim    int      `json:"dim"`
	Modes  []string `json:"modes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	modes := []string{}
	for _, m := range s.idx.Modes() {
		modes = append(modes, string(m))
	}
	// Dim is the dimensionality clients must send queries in (the
	// internal dimensionality can differ under metric reduction).
	writeJSON(w, http.StatusOK, healthResponse{
		Status: "ok",
		Points: s.idx.Len(),
		Dim:    s.idx.QueryDim(),
		Modes:  modes,
	})
}

type readyResponse struct {
	Status   string `json:"status"`
	Degraded string `json:"degraded,omitempty"`
}

// handleReadyz is readiness, distinct from /healthz liveness: a degraded
// index (fail-stop read-only after persistent WAL failure) is alive —
// searches still serve — but not ready to take writes, so load
// balancers should route mutating traffic elsewhere. 503 while
// degraded, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadyCheck != nil {
		if err := s.cfg.ReadyCheck(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable,
				readyResponse{Status: "catching-up", Degraded: err.Error()})
			return
		}
	}
	if s.degr != nil {
		if err := s.degr.Degraded(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable,
				readyResponse{Status: "degraded", Degraded: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, readyResponse{Status: "ok"})
}

// handleDegradedClear is the operator's recovery path: once the disk is
// fixed, POST /admin/degraded/clear re-probes the WAL (rotating to a
// fresh segment) and, on success, lifts read-only mode.
func (s *Server) handleDegradedClear(w http.ResponseWriter, r *http.Request) {
	if err := s.degr.ClearDegraded(); err != nil {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("still degraded: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, readyResponse{Status: "ok"})
}

// Serve builds a listener on addr and serves until ctx cancellation,
// returning the bound address via the callback before blocking — used by
// callers that pass port 0.
func (s *Server) Serve(ctx context.Context, addr string, onReady func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := hs.Shutdown(shutCtx)
		s.Close()
		// With requests drained and the batcher stopped, flush durability
		// state: a final WAL fsync plus a checkpoint attempt, so a clean
		// shutdown restarts with nothing to replay. Best-effort — a
		// degraded WAL must not turn a graceful stop into a hang.
		if df, ok := s.idx.(drainFlusher); ok {
			if serr := df.SyncWAL(); serr == nil {
				_ = df.Checkpoint()
			}
		}
		return err
	}
}
