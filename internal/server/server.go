// Package server exposes a resinfer index (single or sharded) over an
// HTTP JSON API:
//
//	POST /search        one query        {"query":[...],"k":10,"mode":"exact","budget":100}
//	POST /search/batch  many queries     {"queries":[[...],...],"k":10,"mode":"exact","budget":100}
//	GET  /stats         atomic request / latency / visited-count counters
//	GET  /healthz       liveness plus index metadata
//
// Single-query requests pass through a micro-batching admission queue:
// they are collected for a short window (or until a size cap) and run as
// one SearchBatch, so concurrent callers share scheduling overhead. A
// semaphore bounds how many batch executions run at once, and every
// counter surfaced at /stats is updated atomically on the request path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"resinfer"
)

// Searcher is the slice of the resinfer API the server needs; both
// *resinfer.Index and *resinfer.ShardedIndex satisfy it.
type Searcher interface {
	SearchWithStats(q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error)
	SearchBatch(queries [][]float32, k int, mode resinfer.Mode, budget, workers int) ([]resinfer.BatchResult, error)
	Len() int
	QueryDim() int
	Modes() []resinfer.Mode
}

// Config tunes the server. The zero value serves with exact search,
// k=10, a 2ms batching window, and GOMAXPROCS-wide concurrency.
type Config struct {
	// DefaultK is used when a request omits k (default 10).
	DefaultK int
	// DefaultBudget is used when a request omits budget (default 100).
	DefaultBudget int
	// DefaultMode is used when a request omits mode (default Exact).
	DefaultMode resinfer.Mode
	// MaxConcurrent bounds concurrently executing SearchBatch calls
	// across both endpoints (default GOMAXPROCS). Up to
	// MaxConcurrent×SearchWorkers search goroutines may exist at once;
	// they multiplex over GOMAXPROCS threads, so this bounds queue depth
	// and memory, not CPU.
	MaxConcurrent int
	// BatchWindow is how long the admission queue collects single
	// queries before executing (default 2ms). Negative disables
	// micro-batching: /search calls run directly.
	BatchWindow time.Duration
	// BatchMaxSize executes a collecting batch early once it holds this
	// many queries (default 64).
	BatchMaxSize int
	// SearchWorkers is the worker count handed to SearchBatch
	// (default GOMAXPROCS).
	SearchWorkers int
	// RequestTimeout caps how long one /search request may wait end to
	// end (default 30s).
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 100
	}
	if c.DefaultMode == "" {
		c.DefaultMode = resinfer.Exact
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 64
	}
	if c.SearchWorkers <= 0 {
		c.SearchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Server serves one index. Create with New, expose with Handler or
// ListenAndServe, stop with Close.
type Server struct {
	idx     Searcher
	mut     Mutator // non-nil when idx also accepts mutations
	cfg     Config
	metrics metrics
	batcher *batcher // nil when micro-batching is disabled
	sem     chan struct{}
	mux     *http.ServeMux
}

// New wraps idx in a server. The caller must not reconfigure idx (e.g.
// call Enable*) while the server is running; an index that implements
// Mutator (resinfer.MutableIndex) additionally gets the /upsert, /delete
// and /compact endpoints, through which mutation is safe at any time.
func New(idx Searcher, cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		idx: idx,
		cfg: c,
		sem: make(chan struct{}, c.MaxConcurrent),
	}
	s.metrics.start = time.Now()
	if c.BatchWindow > 0 {
		s.batcher = newBatcher(idx, c.BatchWindow, c.BatchMaxSize, c.SearchWorkers, s.sem, &s.metrics)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("POST /search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if m, ok := idx.(Mutator); ok {
		s.mut = m
		s.mux.HandleFunc("POST /upsert", s.handleUpsert)
		s.mux.HandleFunc("POST /delete", s.handleDelete)
		s.mux.HandleFunc("POST /compact", s.handleCompact)
	}
	return s
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the micro-batcher, failing queries still queued.
func (s *Server) Close() {
	if s.batcher != nil {
		s.batcher.close()
	}
}

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	return s.Serve(ctx, addr, nil)
}

// neighborJSON is one hit on the wire.
type neighborJSON struct {
	ID       int     `json:"id"`
	Distance float32 `json:"distance"`
}

// statsJSON mirrors resinfer.SearchStats on the wire.
type statsJSON struct {
	Comparisons int64   `json:"comparisons"`
	Pruned      int64   `json:"pruned"`
	ScanRate    float64 `json:"scan_rate"`
	PrunedRate  float64 `json:"pruned_rate"`
}

type searchRequest struct {
	Query  []float32 `json:"query"`
	K      int       `json:"k"`
	Mode   string    `json:"mode"`
	Budget int       `json:"budget"`
}

type searchResponse struct {
	Neighbors []neighborJSON `json:"neighbors"`
	Stats     statsJSON      `json:"stats"`
}

type batchSearchRequest struct {
	Queries [][]float32 `json:"queries"`
	K       int         `json:"k"`
	Mode    string      `json:"mode"`
	Budget  int         `json:"budget"`
}

type batchEntryJSON struct {
	Neighbors []neighborJSON `json:"neighbors"`
	Stats     statsJSON      `json:"stats"`
	Error     string         `json:"error,omitempty"`
}

type batchSearchResponse struct {
	Results []batchEntryJSON `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func toNeighborsJSON(ns []resinfer.Neighbor) []neighborJSON {
	out := make([]neighborJSON, len(ns))
	for i, n := range ns {
		out[i] = neighborJSON{ID: n.ID, Distance: n.Distance}
	}
	return out
}

func toStatsJSON(st resinfer.SearchStats) statsJSON {
	return statsJSON{
		Comparisons: st.Comparisons,
		Pruned:      st.Pruned,
		ScanRate:    st.ScanRate,
		PrunedRate:  st.PrunedRate,
	}
}

// resolveParams fills defaults and normalizes one request's parameters.
func (s *Server) resolveParams(k int, mode string, budget int) (batchKey, error) {
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if budget <= 0 {
		budget = s.cfg.DefaultBudget
	}
	m := resinfer.Mode(mode)
	if mode == "" {
		m = s.cfg.DefaultMode
	}
	switch m {
	case resinfer.Exact, resinfer.ADSampling, resinfer.DDCRes, resinfer.DDCPCA, resinfer.DDCOPQ:
	default:
		return batchKey{}, fmt.Errorf("unknown mode %q", mode)
	}
	return batchKey{k: k, mode: m, budget: budget}, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.metrics.errors.Add(1)
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.requests.Add(1)
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Query) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	// Reject a wrong-dimension query before admission: once inside the
	// micro-batcher it would fail SearchBatch's up-front validation and
	// take every other query grouped with it down too.
	if len(req.Query) != s.idx.QueryDim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("query dim %d, index expects %d", len(req.Query), s.idx.QueryDim()))
		return
	}
	key, err := s.resolveParams(req.K, req.Mode, req.Budget)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var res queryResult
	if s.batcher != nil {
		res = s.batcher.submit(ctx, req.Query, key)
	} else {
		s.sem <- struct{}{}
		ns, st, err := s.idx.SearchWithStats(req.Query, key.k, key.mode, key.budget)
		<-s.sem
		res = queryResult{neighbors: ns, stats: st, err: err}
	}
	if res.err != nil {
		status := http.StatusBadRequest
		if errors.Is(res.err, ErrServerClosed) || errors.Is(res.err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		s.fail(w, status, res.err)
		return
	}
	s.metrics.queries.Add(1)
	s.metrics.comparisons.Add(res.stats.Comparisons)
	s.metrics.pruned.Add(res.stats.Pruned)
	s.metrics.latency.observe(time.Since(start))
	writeJSON(w, http.StatusOK, searchResponse{
		Neighbors: toNeighborsJSON(res.neighbors),
		Stats:     toStatsJSON(res.stats),
	})
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.requests.Add(1)
	var req batchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	key, err := s.resolveParams(req.K, req.Mode, req.Budget)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.sem <- struct{}{}
	results, err := s.idx.SearchBatch(req.Queries, key.k, key.mode, key.budget, s.cfg.SearchWorkers)
	<-s.sem
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	out := batchSearchResponse{Results: make([]batchEntryJSON, len(results))}
	for i, res := range results {
		entry := batchEntryJSON{
			Neighbors: toNeighborsJSON(res.Neighbors),
			Stats:     toStatsJSON(res.Stats),
		}
		if res.Err != nil {
			entry.Error = res.Err.Error()
			s.metrics.errors.Add(1)
		} else {
			s.metrics.queries.Add(1)
			s.metrics.comparisons.Add(res.Stats.Comparisons)
			s.metrics.pruned.Add(res.Stats.Pruned)
		}
		out.Results[i] = entry
	}
	s.metrics.latency.observe(time.Since(start))
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	if s.mut != nil {
		ms := s.mut.MutationStats()
		snap.Mutation = &ms
	}
	writeJSON(w, http.StatusOK, snap)
}

type healthResponse struct {
	Status string   `json:"status"`
	Points int      `json:"points"`
	Dim    int      `json:"dim"`
	Modes  []string `json:"modes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	modes := []string{}
	for _, m := range s.idx.Modes() {
		modes = append(modes, string(m))
	}
	// Dim is the dimensionality clients must send queries in (the
	// internal dimensionality can differ under metric reduction).
	writeJSON(w, http.StatusOK, healthResponse{
		Status: "ok",
		Points: s.idx.Len(),
		Dim:    s.idx.QueryDim(),
		Modes:  modes,
	})
}

// Serve builds a listener on addr and serves until ctx cancellation,
// returning the bound address via the callback before blocking — used by
// callers that pass port 0.
func (s *Server) Serve(ctx context.Context, addr string, onReady func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	hs := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := hs.Shutdown(shutCtx)
		s.Close()
		return err
	}
}
