package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/dataset"
)

func testFixtures(t *testing.T) (*dataset.Dataset, [][]int) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "server-test", N: 2000, Dim: 32, Queries: 40,
		VE32: 0.7, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds, gt
}

func postJSON(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// The acceptance test of the serving subsystem: a loopback server over a
// sharded index answers concurrent single and batch searches, and its
// recall@10 is at least the unsharded index's recall on the same data
// (the shard merge is lossless for exact mode, so both are 1.0 here).
func TestServerShardedRecall(t *testing.T) {
	ds, gt := testFixtures(t)

	unsharded, err := resinfer.New(ds.Data, resinfer.Flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := resinfer.NewSharded(ds.Data, resinfer.Flat, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: unsharded exact recall, computed library-side.
	baseResults := make([][]int, len(ds.Queries))
	for qi, q := range ds.Queries {
		ns, err := unsharded.Search(q, 10, resinfer.Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ns {
			baseResults[qi] = append(baseResults[qi], n.ID)
		}
	}
	baseRecall := dataset.Recall(baseResults, gt, 10)

	srv := New(sharded, Config{BatchWindow: time.Millisecond, BatchMaxSize: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Concurrent single searches over the micro-batching path.
	results := make([][]int, len(ds.Queries))
	var wg sync.WaitGroup
	errCh := make(chan error, len(ds.Queries))
	for qi := range ds.Queries {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			var out searchResponse
			resp := postJSON(t, ts.URL+"/search",
				searchRequest{Query: ds.Queries[qi], K: 10, Mode: "exact", Budget: 1},
				&out)
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("query %d: status %d", qi, resp.StatusCode)
				return
			}
			for _, n := range out.Neighbors {
				results[qi] = append(results[qi], n.ID)
			}
		}(qi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	recall := dataset.Recall(results, gt, 10)
	if recall < baseRecall {
		t.Fatalf("sharded serving recall %v < unsharded %v", recall, baseRecall)
	}
	if recall < 1.0 {
		t.Fatalf("exact sharded recall = %v, want lossless 1.0", recall)
	}

	// Batch endpoint returns the same answers.
	var bout batchSearchResponse
	resp := postJSON(t, ts.URL+"/search/batch",
		batchSearchRequest{Queries: ds.Queries, K: 10, Mode: "exact", Budget: 1},
		&bout)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(bout.Results) != len(ds.Queries) {
		t.Fatalf("batch returned %d results, want %d", len(bout.Results), len(ds.Queries))
	}
	batchResults := make([][]int, len(bout.Results))
	for i, entry := range bout.Results {
		if entry.Error != "" {
			t.Fatalf("batch entry %d: %s", i, entry.Error)
		}
		for _, n := range entry.Neighbors {
			batchResults[i] = append(batchResults[i], n.ID)
		}
	}
	if r := dataset.Recall(batchResults, gt, 10); r < baseRecall {
		t.Fatalf("batch recall %v < unsharded %v", r, baseRecall)
	}

	// Counters moved and the micro-batcher actually batched.
	var stats StatsSnapshot
	getJSON(t, ts.URL+"/stats", &stats)
	wantQueries := int64(2 * len(ds.Queries))
	if stats.Queries != wantQueries {
		t.Fatalf("stats.queries = %d, want %d", stats.Queries, wantQueries)
	}
	if stats.Requests != int64(len(ds.Queries))+1 {
		t.Fatalf("stats.requests = %d", stats.Requests)
	}
	if stats.Comparisons == 0 {
		t.Fatal("stats.comparisons should be non-zero")
	}
	if stats.Batches == 0 || stats.BatchedQueries != int64(len(ds.Queries)) {
		t.Fatalf("micro-batcher did not run: batches=%d batched=%d", stats.Batches, stats.BatchedQueries)
	}
	if stats.LatencyP99Ms <= 0 || stats.LatencyP50Ms > stats.LatencyP99Ms {
		t.Fatalf("implausible latency quantiles: p50=%v p99=%v", stats.LatencyP50Ms, stats.LatencyP99Ms)
	}
	if stats.SIMDLevel != resinfer.SIMDLevel() || stats.SIMDLevel == "" {
		t.Fatalf("stats.simd_level = %q, want %q", stats.SIMDLevel, resinfer.SIMDLevel())
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestServerHealthz(t *testing.T) {
	ds, _ := testFixtures(t)
	// InnerProduct augments vectors internally (dim 33), but /healthz
	// must report the dimensionality clients send queries in (32).
	ix, err := resinfer.New(ds.Data[:200], resinfer.Flat,
		&resinfer.Options{Metric: resinfer.InnerProduct})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ix, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.Points != 200 || h.Dim != 32 {
		t.Fatalf("healthz = %+v", h)
	}
	if len(h.Modes) == 0 {
		t.Fatal("healthz should list enabled modes")
	}

	// A query sized from /healthz must be accepted.
	var out searchResponse
	resp := postJSON(t, ts.URL+"/search",
		searchRequest{Query: ds.Queries[0][:h.Dim], K: 3}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz-sized query rejected: status %d", resp.StatusCode)
	}
}

func TestServerBadRequests(t *testing.T) {
	ds, _ := testFixtures(t)
	ix, err := resinfer.New(ds.Data[:200], resinfer.Flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ix, Config{BatchWindow: -1}) // direct path
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		url  string
		body any
	}{
		{"empty query", "/search", searchRequest{}},
		{"bad mode", "/search", searchRequest{Query: ds.Queries[0], Mode: "cosine-walk"}},
		{"bad dim", "/search", searchRequest{Query: []float32{1, 2}}},
		{"mode not enabled", "/search", searchRequest{Query: ds.Queries[0], Mode: "ddc-res"}},
		{"empty batch", "/search/batch", batchSearchRequest{}},
		{"batch bad dim", "/search/batch", batchSearchRequest{Queries: [][]float32{{1}}}},
	}
	for _, tc := range cases {
		var out errorResponse
		resp := postJSON(t, ts.URL+tc.url, tc.body, &out)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: expected failure, got 200", tc.name)
		}
		if out.Error == "" {
			t.Fatalf("%s: missing error message", tc.name)
		}
	}
	var stats StatsSnapshot
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Errors != int64(len(cases)) {
		t.Fatalf("stats.errors = %d, want %d", stats.Errors, len(cases))
	}
}

// A malformed query from one client must not poison a batch containing
// other clients' valid queries: the handler rejects it before admission.
func TestServerBadQueryDoesNotPoisonBatch(t *testing.T) {
	ds, _ := testFixtures(t)
	ix, err := resinfer.New(ds.Data[:300], resinfer.Flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A wide window would group the two requests if the bad one were
	// admitted to the queue.
	srv := New(ix, Config{BatchWindow: 50 * time.Millisecond, BatchMaxSize: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	goodDone := make(chan int, 1)
	go func() {
		var out searchResponse
		resp := postJSON(t, ts.URL+"/search", searchRequest{Query: ds.Queries[0], K: 5}, &out)
		goodDone <- resp.StatusCode
	}()
	time.Sleep(10 * time.Millisecond) // land inside the good query's window
	var eout errorResponse
	resp := postJSON(t, ts.URL+"/search", searchRequest{Query: []float32{1, 2, 3}, K: 5}, &eout)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-dim query: status %d", resp.StatusCode)
	}
	if code := <-goodDone; code != http.StatusOK {
		t.Fatalf("valid query failed alongside a malformed one: status %d", code)
	}
}

func TestServerCloseFailsQueued(t *testing.T) {
	ds, _ := testFixtures(t)
	ix, err := resinfer.New(ds.Data[:200], resinfer.Flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ix, Config{BatchWindow: time.Second}) // long window keeps queries queued
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		var out errorResponse
		resp := postJSON(t, ts.URL+"/search", searchRequest{Query: ds.Queries[0]}, &out)
		done <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case code := <-done:
		// Either the window had collected it (200 on race) or it failed
		// with 503; both mean the server did not hang.
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("unexpected status %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query hung after Close")
	}
}
