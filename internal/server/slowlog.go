package server

import (
	"net/http"
	"sync"
	"time"

	"resinfer/internal/obs"
)

// slowLogCapacity bounds the ring: the most recent slow requests are
// kept, older ones are overwritten.
const slowLogCapacity = 128

// slowEntry is one over-threshold request: the query's shape and
// parameters plus its per-stage timeline. The worst offender
// additionally keeps the per-shard breakdown.
type slowEntry struct {
	Time       time.Time        `json:"time"`
	TraceID    string           `json:"trace_id,omitempty"`
	Path       string           `json:"path"`
	Mode       string           `json:"mode"`
	K          int              `json:"k"`
	Budget     int              `json:"budget"`
	Dim        int              `json:"dim"`
	BatchSize  int              `json:"batch_size,omitempty"`
	DurationUs int64            `json:"duration_us"`
	Stages     []traceStageJSON `json:"stages,omitempty"`
	Shards     []traceShardJSON `json:"shards,omitempty"`
}

// slowLog is a fixed-size ring of requests that exceeded the slow-query
// threshold. Recording is off the 99%+ fast path entirely (the caller
// checks the threshold first), so a mutex is plenty.
type slowLog struct {
	threshold time.Duration

	mu       sync.Mutex
	ring     [slowLogCapacity]slowEntry
	next     int
	total    int64
	worst    slowEntry
	hasWorst bool
}

func newSlowLog(threshold time.Duration) *slowLog {
	return &slowLog{threshold: threshold}
}

// record stores one slow request. The ring keeps per-stage timings;
// the full per-shard breakdown is retained only for the worst offender
// seen so far, where it matters for diagnosis. t0 is the request's
// arrival time and traceID its ID when the request was traced (empty
// otherwise), so slow entries line up with access-log lines and
// client-side traces.
func (sl *slowLog) record(t0 time.Time, traceID, path, mode string, k, budget, dim int, snap obs.Snapshot) {
	tj := toTraceJSON(snap)
	e := slowEntry{
		Time:       t0,
		TraceID:    traceID,
		Path:       path,
		Mode:       mode,
		K:          k,
		Budget:     budget,
		Dim:        dim,
		BatchSize:  snap.BatchSize,
		DurationUs: tj.TotalUs,
		Stages:     tj.Stages,
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.ring[sl.next%slowLogCapacity] = e
	sl.next++
	sl.total++
	if !sl.hasWorst || e.DurationUs > sl.worst.DurationUs {
		e.Shards = tj.Shards
		sl.worst = e
		sl.hasWorst = true
	}
}

// slowLogResponse is the JSON document at GET /debug/slowlog: newest
// entry first, plus the worst offender with its shard breakdown.
type slowLogResponse struct {
	ThresholdMs float64     `json:"threshold_ms"`
	Total       int64       `json:"total"`
	Entries     []slowEntry `json:"entries"`
	Worst       *slowEntry  `json:"worst,omitempty"`
}

func (sl *slowLog) snapshot() slowLogResponse {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	n := sl.next
	if n > slowLogCapacity {
		n = slowLogCapacity
	}
	out := slowLogResponse{
		ThresholdMs: float64(sl.threshold) / float64(time.Millisecond),
		Total:       sl.total,
		Entries:     make([]slowEntry, 0, n),
	}
	for i := 0; i < n; i++ {
		out.Entries = append(out.Entries, sl.ring[(sl.next-1-i)%slowLogCapacity])
	}
	if sl.hasWorst {
		w := sl.worst
		out.Worst = &w
	}
	return out
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slowlog.snapshot())
}
