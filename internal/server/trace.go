package server

import (
	"context"
	"sync"
	"time"

	"resinfer"
	"resinfer/internal/obs"
)

// Capability probes: the server asks the index it wraps for deeper
// observability instead of depending on concrete types, so a plain
// *resinfer.Index (no shards) degrades gracefully — requests still
// trace the HTTP-level stages, just without the per-shard breakdown.
type (
	// shardObservable exposes per-shard search instrumentation;
	// *resinfer.ShardedIndex and *resinfer.MutableIndex satisfy it.
	shardObservable interface {
		NumShards() int
		SetShardObserver(func(shard int, d time.Duration, st resinfer.SearchStats))
	}
	// compactionObservable reports background compaction timings.
	compactionObservable interface {
		SetCompactionObserver(func(resinfer.CompactionInfo))
	}
	// walObservable reports WAL append/fsync latency when a log is
	// attached (the bool mirrors MutableIndex.SetWALObserver).
	walObservable interface {
		SetWALObserver(func(appendDur, syncDur time.Duration)) bool
	}
	// tracedSearcher runs one query recording fan-out/merge stages and
	// per-shard probes into the trace.
	tracedSearcher interface {
		SearchWithStatsTraced(q []float32, k int, mode resinfer.Mode, budget int, tr *obs.Trace) ([]resinfer.Neighbor, resinfer.SearchStats, error)
	}
	// batchTracedSearcher is the batch variant: traces[i] (nil entries
	// allowed) receives query i's stages.
	batchTracedSearcher interface {
		SearchBatchTraced(queries [][]float32, k int, mode resinfer.Mode, budget, workers int, traces []*obs.Trace) ([]resinfer.BatchResult, error)
	}
	// ctxSearcher runs one query under a deadline with partial-result
	// semantics: stragglers are abandoned when ctx expires and
	// SearchStats.ShardsOK/ShardsFailed report the coverage.
	// *resinfer.ShardedIndex and *resinfer.MutableIndex satisfy it; a
	// plain *resinfer.Index degrades to the undeadlined path.
	ctxSearcher interface {
		SearchWithStatsCtx(ctx context.Context, q []float32, k int, mode resinfer.Mode, budget int, tr *obs.Trace) ([]resinfer.Neighbor, resinfer.SearchStats, error)
	}
	// batchCtxSearcher is the batch variant of ctxSearcher.
	batchCtxSearcher interface {
		SearchBatchCtx(ctx context.Context, queries [][]float32, k int, mode resinfer.Mode, budget, workers int, traces []*obs.Trace) ([]resinfer.BatchResult, error)
	}
	// degradable reports and clears the fail-stop read-only state a
	// mutable index enters after persistent WAL failure; feeds /readyz
	// and POST /admin/degraded/clear. *resinfer.MutableIndex satisfies
	// it.
	degradable interface {
		Degraded() error
		ClearDegraded() error
	}
	// drainFlusher flushes durability state during graceful shutdown: a
	// final WAL fsync and a checkpoint attempt so a clean stop leaves
	// nothing to replay. *resinfer.MutableIndex satisfies it.
	drainFlusher interface {
		SyncWAL() error
		Checkpoint() error
	}
	// groundTruther exposes the exact, mutation-aware brute-force scan
	// the shadow quality sampler replays sampled queries against.
	// *resinfer.ShardedIndex and *resinfer.MutableIndex satisfy it.
	groundTruther interface {
		GroundTruthSearch(dst []resinfer.Neighbor, shards []int, q []float32, k int) ([]resinfer.Neighbor, []int, int, error)
		NumShards() int
	}
	// walPolicied reports the attached WAL's fsync policy for the
	// build-info metric. *resinfer.MutableIndex satisfies it.
	walPolicied interface {
		WALSyncPolicy() string
	}
)

// tracePool recycles obs.Trace recorders across requests; ResetAt keeps
// each trace's slice capacity, so tracing settles into zero steady-state
// allocations per request.
var tracePool = sync.Pool{New: func() any { return obs.NewTrace() }}

func getTrace(t0 time.Time) *obs.Trace {
	tr := tracePool.Get().(*obs.Trace)
	tr.ResetAt(t0)
	return tr
}

func putTrace(tr *obs.Trace) {
	if tr != nil {
		tracePool.Put(tr)
	}
}

// traceStageJSON is one pipeline stage on the wire; offsets and
// durations are microseconds from the request start.
type traceStageJSON struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// traceShardJSON is one shard probe within the fan-out stage.
type traceShardJSON struct {
	Shard       int   `json:"shard"`
	StartUs     int64 `json:"start_us"`
	DurUs       int64 `json:"dur_us"`
	Comparisons int64 `json:"comparisons"`
	Pruned      int64 `json:"pruned"`
}

// traceJSON is the inline per-request timeline returned when the client
// opts in via the X-Resinfer-Trace header or "trace": true in the body.
type traceJSON struct {
	TotalUs   int64            `json:"total_us"`
	BatchSize int              `json:"batch_size,omitempty"`
	Stages    []traceStageJSON `json:"stages"`
	Shards    []traceShardJSON `json:"shards,omitempty"`
}

func toTraceJSON(snap obs.Snapshot) *traceJSON {
	tj := &traceJSON{
		TotalUs:   snap.Total.Microseconds(),
		BatchSize: snap.BatchSize,
		Stages:    make([]traceStageJSON, len(snap.Stages)),
	}
	for i, st := range snap.Stages {
		tj.Stages[i] = traceStageJSON{
			Name:    st.Name,
			StartUs: st.Start.Microseconds(),
			DurUs:   st.Dur.Microseconds(),
		}
	}
	if len(snap.Shards) > 0 {
		tj.Shards = make([]traceShardJSON, len(snap.Shards))
		for i, sh := range snap.Shards {
			tj.Shards[i] = traceShardJSON{
				Shard:       sh.Shard,
				StartUs:     sh.Start.Microseconds(),
				DurUs:       sh.Dur.Microseconds(),
				Comparisons: sh.Comparisons,
				Pruned:      sh.Pruned,
			}
		}
	}
	return tj
}
