package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"resinfer"
)

// floats renders a query as a JSON array body fragment.
func floats(q []float32) string {
	parts := make([]string, len(q))
	for i, v := range q {
		parts[i] = strconv.FormatFloat(float64(v), 'g', -1, 32)
	}
	return strings.Join(parts, ",")
}

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func logNew(w *syncBuffer) *log.Logger { return log.New(w, "", 0) }

func tracedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, [][]float32) {
	t.Helper()
	ds, _ := testFixtures(t)
	sx, err := resinfer.NewSharded(ds.Data, resinfer.Flat, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sx, cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, ds.Queries
}

func stageNames(tj *traceJSON) []string {
	names := make([]string, len(tj.Stages))
	for i, st := range tj.Stages {
		names[i] = st.Name
	}
	return names
}

func hasStage(tj *traceJSON, name string) bool {
	for _, st := range tj.Stages {
		if st.Name == name {
			return true
		}
	}
	return false
}

// TestTracedRequestBodyFlag drives a traced request through the full
// micro-batching pipeline and checks the returned timeline: the
// expected stages are present, the per-shard breakdown covers every
// shard, and the stage sum lands close to the end-to-end total.
func TestTracedRequestBodyFlag(t *testing.T) {
	_, ts, queries := tracedServer(t, Config{BatchWindow: time.Millisecond})

	var out searchResponse
	resp := postJSON(t, ts.URL+"/search",
		searchRequest{Query: queries[0], K: 5, Trace: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Trace == nil {
		t.Fatal("no trace in response")
	}
	tj := out.Trace
	for _, want := range []string{"decode", "queue_wait", "fanout", "merge", "encode"} {
		if !hasStage(tj, want) {
			t.Errorf("missing stage %q in %v", want, stageNames(tj))
		}
	}
	if len(tj.Shards) != 4 {
		t.Errorf("shard breakdown has %d entries, want 4", len(tj.Shards))
	}
	if tj.BatchSize < 1 {
		t.Errorf("batch size = %d, want >= 1", tj.BatchSize)
	}
	if tj.TotalUs <= 0 {
		t.Fatalf("total = %dus", tj.TotalUs)
	}
	// The recorded stages cover the pipeline: their sum reaches a large
	// fraction of the end-to-end total. (The bound is loose — scheduling
	// gaps between stages are real time the sum legitimately misses.)
	var sum int64
	for _, st := range tj.Stages {
		sum += st.DurUs
	}
	if sum <= 0 {
		t.Fatalf("stage durations sum to 0: %+v", tj.Stages)
	}
	if sum < tj.TotalUs/2 {
		t.Errorf("stage sum %dus < half of total %dus: %v", sum, tj.TotalUs, stageNames(tj))
	}
	// Comparisons surfaced per shard must sum to the query's stats.
	var cmp int64
	for _, sh := range tj.Shards {
		cmp += sh.Comparisons
	}
	if cmp != out.Stats.Comparisons {
		t.Errorf("shard comparisons %d != stats %d", cmp, out.Stats.Comparisons)
	}
}

// TestTracedRequestHeader asks via the X-Resinfer-Trace header and uses
// the direct (batcher-less) path, which must record the fan-out too.
func TestTracedRequestHeader(t *testing.T) {
	_, ts, queries := tracedServer(t, Config{BatchWindow: -1})

	body := strings.NewReader(`{"query":[` + floats(queries[0]) + `],"k":5}`)
	req, err := http.NewRequest("POST", ts.URL+"/search", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Resinfer-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out searchResponse
	decodeBody(t, resp, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Trace == nil {
		t.Fatal("no trace in response")
	}
	for _, want := range []string{"decode", "admit", "fanout", "merge", "encode"} {
		if !hasStage(out.Trace, want) {
			t.Errorf("missing stage %q in %v", want, stageNames(out.Trace))
		}
	}
	if len(out.Trace.Shards) != 4 {
		t.Errorf("shard breakdown has %d entries, want 4", len(out.Trace.Shards))
	}
}

// TestUntracedRequestHasNoTrace: without the opt-in, no trace field.
func TestUntracedRequestHasNoTrace(t *testing.T) {
	_, ts, queries := tracedServer(t, Config{BatchWindow: time.Millisecond})
	var out searchResponse
	postJSON(t, ts.URL+"/search", searchRequest{Query: queries[0], K: 5}, &out)
	if out.Trace != nil {
		t.Fatal("trace returned without opt-in")
	}
}

// TestSlowlogCapturesSlowRequests arms a 1ns threshold so every request
// is "slow", then checks the ring's contents and the worst offender's
// shard breakdown.
func TestSlowlogCapturesSlowRequests(t *testing.T) {
	_, ts, queries := tracedServer(t, Config{BatchWindow: time.Millisecond, SlowLogThreshold: time.Nanosecond})

	for i := 0; i < 5; i++ {
		var out searchResponse
		postJSON(t, ts.URL+"/search", searchRequest{Query: queries[i], K: 5, Budget: 50, Mode: "exact"}, &out)
	}

	var sl slowLogResponse
	getJSON(t, ts.URL+"/debug/slowlog", &sl)
	if sl.Total != 5 || len(sl.Entries) != 5 {
		t.Fatalf("slowlog total=%d entries=%d, want 5/5", sl.Total, len(sl.Entries))
	}
	e := sl.Entries[0]
	if e.Path != "/search" || e.Mode != "exact" || e.K != 5 || e.Budget != 50 || e.Dim != len(queries[0]) {
		t.Fatalf("entry = %+v", e)
	}
	if e.DurationUs <= 0 || len(e.Stages) == 0 {
		t.Fatalf("entry missing timings: %+v", e)
	}
	if sl.Worst == nil {
		t.Fatal("no worst offender")
	}
	if len(sl.Worst.Shards) != 4 {
		t.Fatalf("worst offender shard breakdown has %d entries, want 4", len(sl.Worst.Shards))
	}
	for _, entry := range sl.Entries {
		if entry.DurationUs > sl.Worst.DurationUs {
			t.Fatalf("entry %dus slower than worst %dus", entry.DurationUs, sl.Worst.DurationUs)
		}
	}
}

// TestSlowlogDisabled: a negative threshold removes the endpoint.
func TestSlowlogDisabled(t *testing.T) {
	_, ts, queries := tracedServer(t, Config{BatchWindow: time.Millisecond, SlowLogThreshold: -1})
	var out searchResponse
	postJSON(t, ts.URL+"/search", searchRequest{Query: queries[0], K: 5}, &out)
	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("slowlog status %d, want 404", resp.StatusCode)
	}
}

// TestAccessLog checks the one-line-per-request format: method, path,
// status, latency, batch size and remote address.
func TestAccessLog(t *testing.T) {
	srv, _, queries := tracedServer(t, Config{BatchWindow: time.Millisecond, AccessLog: true})
	var buf syncBuffer
	srv.access = logNew(&buf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out searchResponse
	postJSON(t, ts.URL+"/search", searchRequest{Query: queries[0], K: 5}, &out)
	var bout batchSearchResponse
	postJSON(t, ts.URL+"/search/batch", batchSearchRequest{Queries: queries[:3], K: 5}, &bout)
	postJSON(t, ts.URL+"/search", searchRequest{}, nil) // 400

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d access-log lines, want 3:\n%s", len(lines), buf.String())
	}
	for _, want := range []string{"method=POST", "path=/search", "status=200", "batch=1", "dur_ms=", "remote=", "ts="} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line 1 missing %q: %s", want, lines[0])
		}
	}
	if !strings.Contains(lines[1], "path=/search/batch") || !strings.Contains(lines[1], "batch=3") {
		t.Errorf("batch line wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], "status=400") {
		t.Errorf("error line wrong: %s", lines[2])
	}
}

// TestAccessLogOffByDefault: the default handler is the bare mux.
func TestAccessLogOffByDefault(t *testing.T) {
	srv, _, _ := tracedServer(t, Config{BatchWindow: time.Millisecond})
	if srv.access != nil {
		t.Fatal("access logger armed without opt-in")
	}
}

// TestPprofGate: /debug/pprof/ exists only behind the flag.
func TestPprofGate(t *testing.T) {
	_, tsOff, _ := tracedServer(t, Config{BatchWindow: -1})
	resp, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without opt-in")
	}

	_, tsOn, _ := tracedServer(t, Config{BatchWindow: -1, EnablePprof: true})
	resp, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}
