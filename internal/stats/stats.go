// Package stats provides the scalar statistics the distance-correction
// machinery needs: Gaussian CDF / quantile functions (the multiplier m of
// DDCres is a probit value), summary statistics, empirical quantiles, and
// histograms used to reproduce the error-distribution figures (Figs. 1–2).
package stats

import (
	"errors"
	"math"
	"sort"
)

// NormalCDF returns P(Z <= x) for Z ~ N(0, 1).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the probit function: the x such that
// NormalCDF(x) = p, for p in (0, 1). This is the multiplier m used by the
// DDCres error bound: a two-sided coverage of q corresponds to
// m = NormalQuantile((1+q)/2), e.g. q = 0.997 -> m ≈ 3.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Sqrt2 * math.Erfcinv(2*p)
}

// MultiplierForCoverage converts a two-sided Gaussian coverage probability
// (e.g. 0.997) into the sigma multiplier m (≈ 3 for 0.997). Because the
// pruning test only errs on one side (a point wrongly pruned when
// dis <= tau), the one-sided variant OneSidedMultiplier is usually what the
// DCOs want; both are provided.
func MultiplierForCoverage(q float64) float64 {
	return NormalQuantile((1 + q) / 2)
}

// OneSidedMultiplier converts a one-sided coverage probability (e.g. 0.995)
// into the sigma multiplier m with P(Z <= m) = q.
func OneSidedMultiplier(q float64) float64 {
	return NormalQuantile(q)
}

// Summary holds moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // population variance (divide by N)
	Std      float64
	Min      float64
	Max      float64
}

// Summarize computes the Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(s.N)
	s.Std = math.Sqrt(s.Variance)
	return s
}

// Quantile returns the empirical q-quantile of xs (linear interpolation
// between order statistics, the common "type 7" estimator). xs need not be
// sorted. It returns an error for empty input or q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile level outside [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// Quantiles returns the empirical quantiles of xs at each level in qs,
// sorting the sample only once.
func Quantiles(xs []float64, qs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: quantiles of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			return nil, errors.New("stats: quantile level outside [0,1]")
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width binning of a sample, used to render the error
// distributions of Figs. 1 and 2 as text.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first / last bin so that mass is
// never silently dropped.
func NewHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Peakiness returns the fraction of mass in the central frac-wide band
// around zero. A more concentrated error distribution (PCA projection)
// scores higher than a flat one (random projection) — the Fig. 1 contrast
// reduced to a single number.
func (h *Histogram) Peakiness(frac float64) float64 {
	if h.Total == 0 {
		return 0
	}
	half := frac * (h.Hi - h.Lo) / 2
	inside := 0
	for i, c := range h.Counts {
		center := h.BinCenter(i)
		if math.Abs(center) <= half {
			inside += c
		}
	}
	return float64(inside) / float64(h.Total)
}
