package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 1)
		if p < 1e-6 || p > 1-1e-6 {
			return true
		}
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
}

func TestMultiplierForCoverage(t *testing.T) {
	// Empirical rule: 99.7% two-sided coverage ~ 3 sigma.
	if m := MultiplierForCoverage(0.997); math.Abs(m-2.9677) > 1e-3 {
		t.Errorf("MultiplierForCoverage(0.997) = %v, want ~2.97", m)
	}
	if m := MultiplierForCoverage(0.95); math.Abs(m-1.95996) > 1e-4 {
		t.Errorf("MultiplierForCoverage(0.95) = %v, want 1.96", m)
	}
}

func TestOneSidedMultiplier(t *testing.T) {
	if m := OneSidedMultiplier(0.995); math.Abs(m-2.5758) > 1e-3 {
		t.Errorf("OneSidedMultiplier(0.995) = %v, want ~2.576", m)
	}
	if m := OneSidedMultiplier(0.5); math.Abs(m) > 1e-12 {
		t.Errorf("OneSidedMultiplier(0.5) = %v, want 0", m)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize basic fields wrong: %+v", s)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 {
		t.Fatalf("Variance = %v, want 1.25", s.Variance)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestQuantileBasics(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	q, err := Quantile(xs, 0.5)
	if err != nil || math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median = %v err=%v, want 2.5", q, err)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 4 {
		t.Fatalf("extremes: %v %v", q0, q1)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("expected error on empty sample")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("expected error on q out of range")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(200))
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		qs, err := Quantiles(xs, []float64{0.1, 0.5, 0.9, 0.99})
		if err != nil {
			return false
		}
		for i := 0; i < len(qs)-1; i++ {
			if qs[i] > qs[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaussianQuantileAgreesEmpirically(t *testing.T) {
	// A large N(0,1) sample's 99.5% quantile should be near probit(0.995).
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	emp, err := Quantile(xs, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	want := NormalQuantile(0.995)
	if math.Abs(emp-want) > 0.05 {
		t.Fatalf("empirical 0.995 quantile %v vs probit %v", emp, want)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-2, -0.1, 0, 0.1, 2, 99}, -1, 1, 4)
	if h.Total != 6 {
		t.Fatalf("Total = %d", h.Total)
	}
	// -2 clamps to bin 0, 99 and 2 clamp to bin 3.
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Fatalf("clamping wrong: %v", h.Counts)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		t.Fatal("histogram mass not conserved")
	}
}

func TestHistogramPeakiness(t *testing.T) {
	// Concentrated sample has higher peakiness than a spread one.
	r := rand.New(rand.NewSource(3))
	tight := make([]float64, 10000)
	loose := make([]float64, 10000)
	for i := range tight {
		tight[i] = 0.05 * r.NormFloat64()
		loose[i] = 1.0 * r.NormFloat64()
	}
	ht := NewHistogram(tight, -3, 3, 60)
	hl := NewHistogram(loose, -3, 3, 60)
	if ht.Peakiness(0.2) <= hl.Peakiness(0.2) {
		t.Fatalf("tight %v should be peakier than loose %v",
			ht.Peakiness(0.2), hl.Peakiness(0.2))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 1}, 1, 1, 0)
	if h.Total != 3 || len(h.Counts) != 1 {
		t.Fatalf("degenerate histogram: %+v", h)
	}
}
