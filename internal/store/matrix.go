// Package store provides the contiguous vector storage used by the whole
// distance stack: a flat row-major []float32 with a fixed stride. One heap
// object holds every vector, so a linear scan (or a graph walk over ids
// assigned in insertion order) streams through memory instead of chasing
// one pointer per row, and the serialization codec can move the entire
// buffer with bulk reads and writes.
package store

import (
	"errors"
	"fmt"

	"resinfer/internal/persist"
)

// Matrix is a dense row-major collection of equal-length float32 vectors.
// Row i occupies Flat()[i*Dim() : (i+1)*Dim()]. The zero value is not
// usable; construct with New, FromRows or FromFlat.
type Matrix struct {
	data []float32
	rows int
	dim  int
}

// New returns a zeroed rows x dim matrix.
func New(rows, dim int) (*Matrix, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("store: invalid shape %dx%d", rows, dim)
	}
	return &Matrix{data: make([]float32, rows*dim), rows: rows, dim: dim}, nil
}

// FromRows copies rows (non-empty, rectangular) into a fresh flat buffer.
func FromRows(rows [][]float32) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("store: empty data")
	}
	dim := len(rows[0])
	m := &Matrix{data: make([]float32, len(rows)*dim), rows: len(rows), dim: dim}
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("store: row %d has dim %d, want %d", i, len(r), dim)
		}
		copy(m.data[i*dim:], r)
	}
	return m, nil
}

// MustFromRows is FromRows for callers with already-validated input (tests,
// generators); it panics on malformed rows.
func MustFromRows(rows [][]float32) *Matrix {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// FromFlat wraps an existing flat buffer (taking ownership) as a rows x dim
// matrix. len(flat) must equal rows*dim.
func FromFlat(flat []float32, rows, dim int) (*Matrix, error) {
	if rows <= 0 || dim <= 0 || len(flat) != rows*dim {
		return nil, fmt.Errorf("store: flat len %d does not match %dx%d", len(flat), rows, dim)
	}
	return &Matrix{data: flat, rows: rows, dim: dim}, nil
}

// Rows returns the number of vectors.
func (m *Matrix) Rows() int { return m.rows }

// Dim returns the vector dimensionality (the row stride).
func (m *Matrix) Dim() int { return m.dim }

// Flat returns the backing buffer (read-only by convention on shared
// matrices). Row i starts at offset i*Dim().
func (m *Matrix) Flat() []float32 { return m.data }

// Row returns a view of row i. The full slice expression pins cap to the
// row, so an append by a careless caller cannot clobber row i+1.
func (m *Matrix) Row(i int) []float32 {
	off := i * m.dim
	return m.data[off : off+m.dim : off+m.dim]
}

// SetRow copies v (length Dim) into row i.
func (m *Matrix) SetRow(i int, v []float32) {
	copy(m.data[i*m.dim:(i+1)*m.dim], v)
}

// ToRows returns per-row views sharing the flat buffer (no copy).
func (m *Matrix) ToRows() [][]float32 {
	out := make([][]float32, m.rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	data := make([]float32, len(m.data))
	copy(data, m.data)
	return &Matrix{data: data, rows: m.rows, dim: m.dim}
}

// Bytes returns the size of the backing buffer in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.data)) * 4 }

const matrixMagic = "RIMTX1"

// Encode writes the matrix onto a persist stream: shape header plus the
// flat buffer as one bulk block.
func (m *Matrix) Encode(pw *persist.Writer) {
	pw.Magic(matrixMagic)
	pw.Int(m.rows)
	pw.Int(m.dim)
	pw.F32Block(m.data)
}

// Decode reads a matrix previously written by Encode.
func Decode(pr *persist.Reader) (*Matrix, error) {
	pr.Magic(matrixMagic)
	rows := pr.Int()
	dim := pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if rows <= 0 || dim <= 0 || rows > persist.MaxSliceLen/dim {
		return nil, fmt.Errorf("store: corrupt matrix shape %dx%d", rows, dim)
	}
	flat := pr.F32Block()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	return FromFlat(flat, rows, dim)
}
