package store

import (
	"bytes"
	"testing"

	"resinfer/internal/persist"
)

func TestFromRowsRoundTrip(t *testing.T) {
	rows := [][]float32{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 4 || m.Dim() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Dim())
	}
	for i, r := range rows {
		got := m.Row(i)
		for j := range r {
			if got[j] != r[j] {
				t.Fatalf("row %d mismatch: %v vs %v", i, got, r)
			}
		}
	}
	back := m.ToRows()
	if len(back) != 4 || &back[1][0] != &m.Flat()[3] {
		t.Fatal("ToRows must alias the flat buffer")
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := FromRows([][]float32{{}}); err == nil {
		t.Fatal("expected empty-row error")
	}
	if _, err := FromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged error")
	}
	if _, err := FromFlat([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	if _, err := New(0, 3); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestRowIsCapBounded(t *testing.T) {
	m := MustFromRows([][]float32{{1, 2}, {3, 4}})
	r := m.Row(0)
	if cap(r) != 2 {
		t.Fatalf("row cap %d, want 2", cap(r))
	}
}

func TestSetRowAndClone(t *testing.T) {
	m := MustFromRows([][]float32{{1, 2}, {3, 4}})
	c := m.Clone()
	m.SetRow(1, []float32{9, 9})
	if m.Row(1)[0] != 9 || c.Row(1)[0] != 3 {
		t.Fatal("Clone must not share the buffer")
	}
	if m.Bytes() != 16 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := MustFromRows([][]float32{{1.5, -2.25, 3}, {4, 5, -6.75}})
	var buf bytes.Buffer
	pw := persist.NewWriter(&buf)
	m.Encode(pw)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(persist.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != m.Rows() || got.Dim() != m.Dim() {
		t.Fatalf("shape %dx%d", got.Rows(), got.Dim())
	}
	for i := range m.Flat() {
		if got.Flat()[i] != m.Flat()[i] {
			t.Fatalf("flat[%d] = %v want %v", i, got.Flat()[i], m.Flat()[i])
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	var buf bytes.Buffer
	pw := persist.NewWriter(&buf)
	pw.Magic(matrixMagic)
	pw.Int(-1)
	pw.Int(4)
	pw.F32Block(nil)
	pw.Flush()
	if _, err := Decode(persist.NewReader(&buf)); err == nil {
		t.Fatal("expected corrupt-shape error")
	}
}
