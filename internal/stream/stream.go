// Package stream provides the mutable-segment building blocks of the
// streaming ingestion subsystem: an append-only Memtable holding freshly
// ingested vectors in a growing flat buffer, and a Tombstones set marking
// deleted global IDs. A shard pairs one of each with its immutable base
// index; searches scan the memtable exactly (so recall on fresh vectors
// is perfect), the tombstone set filters both segments, and a background
// compactor periodically folds both back into a rebuilt base index.
//
// Neither structure is durable on its own: crash durability comes from
// the write-ahead log (internal/wal) the owning index appends every
// mutation to before it reaches a memtable or tombstone set here, and
// replays on recovery.
//
// Neither type locks internally — the owning shard serializes access
// (searches under a read lock, mutations and compaction swaps under a
// write lock).
package stream

import (
	"fmt"
	"sort"

	"resinfer/internal/heap"
	"resinfer/internal/persist"
	"resinfer/internal/vec"
)

// Memtable is the append-only mutable segment of one shard: freshly
// ingested vectors in a flat row-major buffer, keyed by global ID. A
// second write to an ID already present overwrites its row in place, so
// the memtable holds at most one row per ID. Every write is stamped with
// a monotone sequence number; compaction snapshots the current sequence,
// rebuilds the base off-line, and finally retains only rows written after
// the snapshot (CompactAfter).
type Memtable struct {
	dim  int
	seq  uint64
	ids  []int
	seqs []uint64
	vecs []float32 // flat row-major, row i at [i*dim : (i+1)*dim]
	pos  map[int]int
}

// NewMemtable returns an empty memtable for vectors of the given
// dimensionality.
func NewMemtable(dim int) *Memtable {
	return &Memtable{dim: dim, pos: make(map[int]int)}
}

// Len returns the number of rows held.
func (m *Memtable) Len() int { return len(m.ids) }

// Dim returns the vector dimensionality.
func (m *Memtable) Dim() int { return m.dim }

// Seq returns the current write sequence number.
func (m *Memtable) Seq() uint64 { return m.seq }

// Has reports whether the memtable holds a row for id.
func (m *Memtable) Has(id int) bool {
	_, ok := m.pos[id]
	return ok
}

// ID returns the global ID of row i.
func (m *Memtable) ID(i int) int { return m.ids[i] }

// Vec returns a view of row i's vector.
func (m *Memtable) Vec(i int) []float32 {
	off := i * m.dim
	return m.vecs[off : off+m.dim : off+m.dim]
}

// Add writes (id, v): appends a new row, or overwrites in place when the
// ID is already present. It reports whether a row was appended (false on
// overwrite). The vector is copied.
func (m *Memtable) Add(id int, v []float32) bool {
	m.seq++
	if i, ok := m.pos[id]; ok {
		copy(m.vecs[i*m.dim:(i+1)*m.dim], v)
		m.seqs[i] = m.seq
		return false
	}
	m.pos[id] = len(m.ids)
	m.ids = append(m.ids, id)
	m.seqs = append(m.seqs, m.seq)
	m.vecs = append(m.vecs, v...)
	return true
}

// Remove deletes the row for id (swap-with-last), reporting whether it
// was present.
func (m *Memtable) Remove(id int) bool {
	i, ok := m.pos[id]
	if !ok {
		return false
	}
	last := len(m.ids) - 1
	if i != last {
		m.ids[i] = m.ids[last]
		m.seqs[i] = m.seqs[last]
		copy(m.vecs[i*m.dim:(i+1)*m.dim], m.vecs[last*m.dim:(last+1)*m.dim])
		m.pos[m.ids[i]] = i
	}
	m.ids = m.ids[:last]
	m.seqs = m.seqs[:last]
	m.vecs = m.vecs[:last*m.dim]
	delete(m.pos, id)
	return true
}

// Snapshot deep-copies the current contents: the IDs, one row copy per
// ID, and the sequence number marking the snapshot point. Used by the
// compactor so the build can proceed off-lock while writes continue.
func (m *Memtable) Snapshot() (ids []int, rows [][]float32, seq uint64) {
	ids = make([]int, len(m.ids))
	copy(ids, m.ids)
	rows = make([][]float32, len(m.ids))
	for i := range rows {
		row := make([]float32, m.dim)
		copy(row, m.Vec(i))
		rows[i] = row
	}
	return ids, rows, m.seq
}

// CompactAfter returns a fresh memtable holding only the rows written
// after the snapshot sequence — the rows a finished compaction did not
// fold into the new base. The receiver is left unchanged.
func (m *Memtable) CompactAfter(seq uint64) *Memtable {
	out := NewMemtable(m.dim)
	out.seq = m.seq
	for i, s := range m.seqs {
		if s > seq {
			out.pos[m.ids[i]] = len(out.ids)
			out.ids = append(out.ids, m.ids[i])
			out.seqs = append(out.seqs, s)
			out.vecs = append(out.vecs, m.Vec(i)...)
		}
	}
	return out
}

// Scan exactly scores every memtable row against q and offers the
// (globalID, key) pairs to rq. With ip false the key is the squared L2
// distance; with ip true it is the negated inner product, matching the
// key-space the sharded merge ranks inner-product results in. It returns
// the number of comparisons performed (the row count).
//
//resinfer:noalloc
func (m *Memtable) Scan(q []float32, ip bool, rq *heap.ResultQueue) int {
	for i := range m.ids {
		base := i * m.dim
		var key float32
		if ip {
			key = -vec.DotFlat(q, m.vecs, base)
		} else {
			key = vec.L2SqFlat(q, m.vecs, base)
		}
		if key < rq.Threshold() {
			rq.Push(m.ids[i], key)
		}
	}
	return len(m.ids)
}

const memtableMagic = "RISTMEM1"

// Encode writes the memtable onto a persist stream.
func (m *Memtable) Encode(pw *persist.Writer) {
	pw.Magic(memtableMagic)
	pw.Int(m.dim)
	pw.U64(m.seq)
	pw.Ints(m.ids)
	pw.F32Block(m.vecs)
}

// DecodeMemtable reads a memtable written by Encode. Row sequence
// numbers are not persisted: a loaded memtable has no compaction in
// flight, so every row is stamped at the restored sequence.
func DecodeMemtable(pr *persist.Reader) (*Memtable, error) {
	pr.Magic(memtableMagic)
	dim := pr.Int()
	seq := pr.U64()
	ids := pr.Ints()
	vecs := pr.F32Block()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if dim <= 0 || len(vecs) != len(ids)*dim {
		return nil, fmt.Errorf("stream: corrupt memtable (%d ids, %d floats, dim %d)",
			len(ids), len(vecs), dim)
	}
	m := &Memtable{dim: dim, seq: seq, ids: ids, vecs: vecs,
		seqs: make([]uint64, len(ids)), pos: make(map[int]int, len(ids))}
	for i, id := range ids {
		if _, dup := m.pos[id]; dup {
			return nil, fmt.Errorf("stream: corrupt memtable (duplicate id %d)", id)
		}
		m.seqs[i] = seq
		m.pos[id] = i
	}
	return m, nil
}

// Tombstones is the set of deleted global IDs pending compaction. A
// tombstoned ID filters base-segment hits at search time; compaction
// drops the rows for good and retires the consumed tombstones.
type Tombstones struct {
	set map[int]struct{}
}

// NewTombstones returns an empty set.
func NewTombstones() *Tombstones {
	return &Tombstones{set: make(map[int]struct{})}
}

// Len returns the number of pending tombstones.
func (t *Tombstones) Len() int { return len(t.set) }

// Add marks id deleted.
func (t *Tombstones) Add(id int) { t.set[id] = struct{}{} }

// Has reports whether id is tombstoned.
func (t *Tombstones) Has(id int) bool {
	_, ok := t.set[id]
	return ok
}

// Remove clears one tombstone.
func (t *Tombstones) Remove(id int) { delete(t.set, id) }

// Clone returns an independent copy (the compactor's snapshot).
func (t *Tombstones) Clone() *Tombstones {
	out := &Tombstones{set: make(map[int]struct{}, len(t.set))}
	for id := range t.set {
		out.set[id] = struct{}{}
	}
	return out
}

// Subtract removes every ID present in other — the swap-time retirement
// of tombstones a finished compaction consumed.
func (t *Tombstones) Subtract(other *Tombstones) {
	for id := range other.set {
		delete(t.set, id)
	}
}

// IDs returns the tombstoned IDs in unspecified order.
func (t *Tombstones) IDs() []int {
	out := make([]int, 0, len(t.set))
	for id := range t.set {
		out = append(out, id)
	}
	return out
}

const tombstoneMagic = "RISTTMB1"

// Encode writes the set onto a persist stream in sorted order so equal
// sets produce identical bytes.
func (t *Tombstones) Encode(pw *persist.Writer) {
	pw.Magic(tombstoneMagic)
	ids := t.IDs()
	sort.Ints(ids)
	pw.Ints(ids)
}

// DecodeTombstones reads a set written by Encode.
func DecodeTombstones(pr *persist.Reader) (*Tombstones, error) {
	pr.Magic(tombstoneMagic)
	ids := pr.Ints()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	t := &Tombstones{set: make(map[int]struct{}, len(ids))}
	for _, id := range ids {
		t.set[id] = struct{}{}
	}
	return t, nil
}
