package stream

import (
	"bytes"
	"math/rand"
	"testing"

	"resinfer/internal/heap"
	"resinfer/internal/persist"
	"resinfer/internal/vec"
)

func vecOf(vals ...float32) []float32 { return vals }

func TestMemtableAddOverwriteRemove(t *testing.T) {
	m := NewMemtable(2)
	if !m.Add(7, vecOf(1, 2)) {
		t.Fatal("first add should append")
	}
	if !m.Add(9, vecOf(3, 4)) {
		t.Fatal("second add should append")
	}
	if m.Add(7, vecOf(5, 6)) {
		t.Fatal("overwrite should not append")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	i := 0
	for ; i < m.Len(); i++ {
		if m.ID(i) == 7 {
			break
		}
	}
	if got := m.Vec(i); got[0] != 5 || got[1] != 6 {
		t.Fatalf("overwritten row = %v, want [5 6]", got)
	}
	if !m.Remove(9) {
		t.Fatal("remove of present id should report true")
	}
	if m.Remove(9) {
		t.Fatal("second remove should report false")
	}
	if m.Len() != 1 || m.Has(9) || !m.Has(7) {
		t.Fatalf("after remove: len=%d has9=%v has7=%v", m.Len(), m.Has(9), m.Has(7))
	}
}

func TestMemtableRemoveSwapsLast(t *testing.T) {
	m := NewMemtable(1)
	for id := 0; id < 5; id++ {
		m.Add(id, vecOf(float32(id)))
	}
	m.Remove(1)
	if m.Len() != 4 {
		t.Fatalf("len = %d, want 4", m.Len())
	}
	for i := 0; i < m.Len(); i++ {
		id := m.ID(i)
		if got := m.Vec(i)[0]; got != float32(id) {
			t.Fatalf("row %d: id %d but value %v", i, id, got)
		}
	}
}

func TestMemtableCompactAfter(t *testing.T) {
	m := NewMemtable(1)
	m.Add(1, vecOf(1))
	m.Add(2, vecOf(2))
	snap := m.Seq()
	m.Add(3, vecOf(3))   // fresh after snapshot
	m.Add(1, vecOf(1.5)) // overwrite after snapshot
	rest := m.CompactAfter(snap)
	if rest.Len() != 2 {
		t.Fatalf("survivors = %d, want 2 (fresh + overwrite)", rest.Len())
	}
	if !rest.Has(3) || !rest.Has(1) || rest.Has(2) {
		t.Fatalf("survivors have 3=%v 1=%v 2=%v", rest.Has(3), rest.Has(1), rest.Has(2))
	}
	if rest.Seq() != m.Seq() {
		t.Fatalf("sequence must carry over: %d vs %d", rest.Seq(), m.Seq())
	}
}

func TestMemtableSnapshotIsDeepCopy(t *testing.T) {
	m := NewMemtable(2)
	m.Add(4, vecOf(1, 1))
	ids, rows, _ := m.Snapshot()
	m.Add(4, vecOf(9, 9)) // overwrite in place after the snapshot
	if rows[0][0] != 1 || rows[0][1] != 1 {
		t.Fatalf("snapshot row mutated to %v", rows[0])
	}
	if ids[0] != 4 {
		t.Fatalf("snapshot id = %d", ids[0])
	}
}

func TestMemtableScanMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim, n, k = 16, 40, 5
	m := NewMemtable(dim)
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, dim)
		for j := range rows[i] {
			rows[i][j] = rng.Float32()
		}
		m.Add(100+i, rows[i])
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = rng.Float32()
	}
	for _, ip := range []bool{false, true} {
		rq := heap.NewResultQueue(k)
		if comp := m.Scan(q, ip, rq); comp != n {
			t.Fatalf("comparisons = %d, want %d", comp, n)
		}
		got := rq.Sorted()
		type pair struct {
			id  int
			key float32
		}
		want := make([]pair, n)
		for i, r := range rows {
			key := vec.L2Sq(q, r)
			if ip {
				key = -vec.Dot(q, r)
			}
			want[i] = pair{100 + i, key}
		}
		for i := 0; i < len(want); i++ {
			for j := i + 1; j < len(want); j++ {
				if want[j].key < want[i].key {
					want[i], want[j] = want[j], want[i]
				}
			}
		}
		for i := 0; i < k; i++ {
			if got[i].ID != want[i].id || got[i].Dist != want[i].key {
				t.Fatalf("ip=%v hit %d: got (%d,%v), want (%d,%v)",
					ip, i, got[i].ID, got[i].Dist, want[i].id, want[i].key)
			}
		}
	}
}

func TestMemtableCodecRoundTrip(t *testing.T) {
	m := NewMemtable(3)
	m.Add(11, vecOf(1, 2, 3))
	m.Add(5, vecOf(4, 5, 6))
	m.Add(11, vecOf(7, 8, 9)) // overwrite

	var buf bytes.Buffer
	pw := persist.NewWriter(&buf)
	m.Encode(pw)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMemtable(persist.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Dim() != 3 || got.Seq() != m.Seq() {
		t.Fatalf("decoded len=%d dim=%d seq=%d", got.Len(), got.Dim(), got.Seq())
	}
	for i := 0; i < got.Len(); i++ {
		id := got.ID(i)
		if !m.Has(id) {
			t.Fatalf("decoded unknown id %d", id)
		}
		var orig []float32
		for j := 0; j < m.Len(); j++ {
			if m.ID(j) == id {
				orig = m.Vec(j)
			}
		}
		for j, v := range got.Vec(i) {
			if v != orig[j] {
				t.Fatalf("id %d coord %d: %v != %v", id, j, v, orig[j])
			}
		}
	}
}

func TestMemtableDecodeRejectsCorruption(t *testing.T) {
	m := NewMemtable(2)
	m.Add(1, vecOf(1, 2))
	var buf bytes.Buffer
	pw := persist.NewWriter(&buf)
	m.Encode(pw)
	_ = pw.Flush()
	raw := buf.Bytes()
	if _, err := DecodeMemtable(persist.NewReader(bytes.NewReader(raw[:len(raw)-3]))); err == nil {
		t.Fatal("truncated memtable must not decode")
	}
}

func TestTombstones(t *testing.T) {
	ts := NewTombstones()
	ts.Add(3)
	ts.Add(8)
	ts.Add(3)
	if ts.Len() != 2 || !ts.Has(3) || !ts.Has(8) || ts.Has(4) {
		t.Fatalf("bad set state: len=%d", ts.Len())
	}
	snap := ts.Clone()
	ts.Add(12)
	if snap.Len() != 2 {
		t.Fatal("clone must be independent")
	}
	ts.Subtract(snap)
	if ts.Len() != 1 || !ts.Has(12) {
		t.Fatalf("subtract left len=%d", ts.Len())
	}

	var buf bytes.Buffer
	pw := persist.NewWriter(&buf)
	ts.Encode(pw)
	_ = pw.Flush()
	got, err := DecodeTombstones(persist.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has(12) {
		t.Fatalf("decoded len=%d", got.Len())
	}
}
