package vec

import "os"

// The hot kernels are selected once, before main runs: the arch-specific
// init in dispatch_amd64.go / dispatch_arm64.go probes the CPU and, when
// the required features are present, repoints the impl variables at the
// assembly kernels. Everything in the package (including the fused
// flat-matrix variants in partial.go) calls through these variables, so
// every caller of the vec API picks up SIMD without modification.
//
// The variables are written only during init and by ForceGeneric; they are
// not synchronized, so ForceGeneric must not race with in-flight searches
// (call it from TestMain or before serving starts).
var (
	dotImpl  = DotGeneric
	l2sqImpl = L2SqGeneric
	level    = "generic"
)

// Level reports which kernel implementation is active: "avx2+fma", "neon"
// or "generic".
func Level() string { return level }

// ForceGeneric routes Dot and L2Sq (and everything built on them) to the
// portable scalar kernels, regardless of CPU features. Golden tests that
// need the deterministic 8-way scalar accumulation order call this; the
// RESINFER_NOSIMD=1 environment variable has the same effect without a
// code change.
func ForceGeneric() {
	dotImpl, l2sqImpl = DotGeneric, L2SqGeneric
	level = "generic"
}

// noSIMDEnv reports whether the RESINFER_NOSIMD environment variable asks
// for the scalar fallback ("" and "0" mean SIMD stays on).
func noSIMDEnv() bool {
	v := os.Getenv("RESINFER_NOSIMD")
	return v != "" && v != "0"
}
