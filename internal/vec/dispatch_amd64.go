//go:build amd64 && !noasm

package vec

// Runtime CPU-feature detection for the AVX2+FMA kernels, hand-rolled so
// the module keeps zero dependencies. AVX2 and FMA are separate CPUID
// feature bits, and using YMM registers also requires the OS to have
// enabled extended state saving (OSXSAVE + XCR0 bits 1-2), so all four
// conditions are checked — the same ladder golang.org/x/sys/cpu walks.

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

//go:noescape
func dotAVX2(a, b []float32) float32

//go:noescape
func l2sqAVX2(a, b []float32) float32

func hasAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		cpuidFMA     = 1 << 12 // leaf 1 ECX
		cpuidOSXSAVE = 1 << 27 // leaf 1 ECX
		cpuidAVX     = 1 << 28 // leaf 1 ECX
		cpuidAVX2    = 1 << 5  // leaf 7 EBX
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(cpuidFMA|cpuidOSXSAVE|cpuidAVX) != cpuidFMA|cpuidOSXSAVE|cpuidAVX {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 { // XMM and YMM state OS-enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&cpuidAVX2 != 0
}

func init() {
	if noSIMDEnv() || !hasAVX2FMA() {
		return
	}
	dotImpl, l2sqImpl = dotAVX2, l2sqAVX2
	level = "avx2+fma"
}
