//go:build arm64 && !noasm

package vec

// Advanced SIMD (NEON) is an architectural requirement of AArch64, so no
// feature probe is needed: every arm64 host that can run this binary has
// the instructions the kernels use.

//go:noescape
func dotNEON(a, b []float32) float32

//go:noescape
func l2sqNEON(a, b []float32) float32

func init() {
	if noSIMDEnv() {
		return
	}
	dotImpl, l2sqImpl = dotNEON, l2sqNEON
	level = "neon"
}
