//go:build (!amd64 && !arm64) || noasm

package vec

// Architectures without assembly kernels (and any build with the `noasm`
// tag) keep the package-default generic dispatch: dotImpl/l2sqImpl stay
// on DotGeneric/L2SqGeneric and Level() reports "generic".
