package vec

// The incremental distance-correction algorithms (ADSampling's hypothesis
// test, the paper's Incremental-DDCres, and the per-level classifiers of
// DDCpca) all consume distances dimension-range by dimension-range. The
// helpers here compute those partial quantities without re-scanning the
// prefix that has already been consumed.

// DotRange returns the inner product of a[lo:hi] and b[lo:hi].
func DotRange(a, b []float32, lo, hi int) float32 {
	return Dot(a[lo:hi], b[lo:hi])
}

// L2SqRange returns the squared Euclidean distance restricted to the
// coordinate range [lo, hi).
func L2SqRange(a, b []float32, lo, hi int) float32 {
	return L2Sq(a[lo:hi], b[lo:hi])
}

// SuffixNormSq returns, for each cut position d in [0, len(a)], the squared
// norm of the suffix a[d:]. out[len(a)] is 0. The result is computed in a
// single backwards pass with float64 accumulation so that successive
// entries are consistent (out[d] = out[d+1] + a[d]^2).
func SuffixNormSq(a []float32) []float64 {
	return SuffixNormSqInto(make([]float64, len(a)+1), a)
}

// SuffixNormSqInto is SuffixNormSq writing into out, which must have
// length len(a)+1. It returns out.
func SuffixNormSqInto(out []float64, a []float32) []float64 {
	out[len(a)] = 0
	var s float64
	for i := len(a) - 1; i >= 0; i-- {
		s += float64(a[i]) * float64(a[i])
		out[i] = s
	}
	return out
}

// SuffixWeightedSq returns, for each cut position d, the suffix sum
// Σ_{i≥d} (a[i]·w[i])². This is the σ² suffix table of DDCres: with
// a = query (rotated) and w = per-dimension residual standard deviations,
// entry d equals Σ_{i≥d} q_i² σ_i², so the error bound at projection depth
// d is m·sqrt(4·out[d]).
func SuffixWeightedSq(a, w []float32) []float64 {
	return SuffixWeightedSqInto(make([]float64, len(a)+1), a, w)
}

// SuffixWeightedSqInto is SuffixWeightedSq writing into out, which must
// have length len(a)+1. It returns out.
func SuffixWeightedSqInto(out []float64, a, w []float32) []float64 {
	out[len(a)] = 0
	var s float64
	for i := len(a) - 1; i >= 0; i-- {
		t := float64(a[i]) * float64(w[i])
		s += t * t
		out[i] = s
	}
	return out
}

// The flat-matrix kernels below read a row directly out of a row-major
// buffer (base = row*dim) without materializing a per-row slice header,
// fusing the row addressing into the distance computation. They are
// bit-identical to calling the slice kernels on the equivalent row views:
// same kernel, same accumulation order — including whichever SIMD kernel
// runtime dispatch selected, so the per-row compare loops of every DCO
// inherit the assembly paths without modification.

// L2SqFlat returns the squared Euclidean distance between q and the row
// starting at offset base in the flat row-major buffer.
func L2SqFlat(q, flat []float32, base int) float32 {
	return L2Sq(q, flat[base:base+len(q)])
}

// DotFlat returns the inner product of q and the row starting at offset
// base in the flat row-major buffer.
func DotFlat(q, flat []float32, base int) float32 {
	return Dot(q, flat[base:base+len(q)])
}

// L2SqRangeFlat returns the squared Euclidean distance restricted to
// coordinates [lo, hi) of q and the row starting at offset base.
func L2SqRangeFlat(q, flat []float32, base, lo, hi int) float32 {
	return L2Sq(q[lo:hi], flat[base+lo:base+hi])
}

// DotRangeFlat returns the inner product restricted to coordinates
// [lo, hi) of q and the row starting at offset base.
func DotRangeFlat(q, flat []float32, base, lo, hi int) float32 {
	return Dot(q[lo:hi], flat[base+lo:base+hi])
}
