package vec

// Equivalence tests between the dispatched kernels (SIMD where the host
// supports it) and the portable generic kernels. SIMD reassociates the
// float32 accumulation, so agreement is tolerance-based: the absolute
// difference must stay within relTol of the term-magnitude scale, which
// is robust even when cancellation drives the true dot product toward
// zero. On hosts without SIMD the dispatched and generic kernels are the
// same function and the tests degenerate to exact self-comparison, so
// they are meaningful (not vacuous) only on SIMD hosts — CI runs them on
// both.

import (
	"math"
	"math/rand"
	"testing"
)

const relTol = 1e-4

// termScale returns the float64 sum of |a_i|*|b_i| (dot) or (a_i-b_i)^2
// (l2): the magnitude against which rounding differences are judged.
func dotScale(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i]) * float64(b[i]))
	}
	return s
}

func l2Scale(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func agree(got, want float32, scale float64) bool {
	g, w := float64(got), float64(want)
	if math.IsNaN(w) {
		return math.IsNaN(g)
	}
	if math.IsInf(w, 0) {
		return g == w || math.IsNaN(g) // Inf sums may round differently under FMA
	}
	return math.Abs(g-w) <= relTol*math.Max(1, scale)
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// TestSIMDEquivalenceExhaustiveTails pins the tail handling: every length
// 0..64 plus lengths around the 8/32-float (amd64) and 4/16-float (arm64)
// block boundaries, each at aligned and unaligned (a[1:], a[3:]) starts.
func TestSIMDEquivalenceExhaustiveTails(t *testing.T) {
	t.Logf("dispatch level: %s", Level())
	rng := rand.New(rand.NewSource(1))
	lengths := make([]int, 0, 96)
	for n := 0; n <= 64; n++ {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, 95, 96, 97, 127, 128, 129, 255, 256, 257, 511, 512, 513, 1023, 1024)
	for _, n := range lengths {
		for _, off := range []int{0, 1, 3} {
			a := randSlice(rng, n+off)[off:]
			b := randSlice(rng, n+off)[off:]
			if gd, sd := DotGeneric(a, b), Dot(a, b); !agree(sd, gd, dotScale(a, b)) {
				t.Errorf("Dot n=%d off=%d: simd %v vs generic %v", n, off, sd, gd)
			}
			if gl, sl := L2SqGeneric(a, b), L2Sq(a, b); !agree(sl, gl, l2Scale(a, b)) {
				t.Errorf("L2Sq n=%d off=%d: simd %v vs generic %v", n, off, sl, gl)
			}
		}
	}
}

// TestSIMDEquivalenceRandomLengths covers random lengths in [0, 1024] at
// random offsets, including the ranged/flat fused variants, which must be
// bit-identical to the plain kernels on the equivalent subslices.
func TestSIMDEquivalenceRandomLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(1025)
		off := rng.Intn(8)
		a := randSlice(rng, n+off)[off:]
		b := randSlice(rng, n+off)[off:]
		if gd, sd := DotGeneric(a, b), Dot(a, b); !agree(sd, gd, dotScale(a, b)) {
			t.Fatalf("Dot n=%d off=%d: simd %v vs generic %v", n, off, sd, gd)
		}
		if gl, sl := L2SqGeneric(a, b), L2Sq(a, b); !agree(sl, gl, l2Scale(a, b)) {
			t.Fatalf("L2Sq n=%d off=%d: simd %v vs generic %v", n, off, sl, gl)
		}
		if n == 0 {
			continue
		}
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		if got, want := DotRange(a, b, lo, hi), Dot(a[lo:hi], b[lo:hi]); got != want {
			t.Fatalf("DotRange(%d,%d) = %v, want %v (must be bit-identical)", lo, hi, got, want)
		}
		if got, want := L2SqRangeFlat(a, b, 0, lo, hi), L2Sq(a[lo:hi], b[lo:hi]); got != want {
			t.Fatalf("L2SqRangeFlat(%d,%d) = %v, want %v (must be bit-identical)", lo, hi, got, want)
		}
	}
}

// TestSIMDNaNInfPropagation places non-finite values in every region the
// kernels treat differently (wide block, narrow block, scalar tail) and
// checks the dispatched kernel propagates them like the generic one.
func TestSIMDNaNInfPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	const n = 77 // 2 wide blocks + 1 narrow block + scalar tail on amd64
	for _, idx := range []int{0, 31, 33, 63, 70, 76} {
		for _, v := range []float32{nan, inf, -inf} {
			a := randSlice(rng, n)
			b := randSlice(rng, n)
			a[idx] = v
			if gd, sd := DotGeneric(a, b), Dot(a, b); !agree(sd, gd, dotScale(a, b)) {
				t.Errorf("Dot a[%d]=%v: simd %v vs generic %v", idx, v, sd, gd)
			}
			if gl, sl := L2SqGeneric(a, b), L2Sq(a, b); !agree(sl, gl, l2Scale(a, b)) {
				t.Errorf("L2Sq a[%d]=%v: simd %v vs generic %v", idx, v, sl, gl)
			}
			// Same non-finite value in both inputs: L2Sq sees Inf-Inf = NaN.
			b[idx] = v
			if gl, sl := L2SqGeneric(a, b), L2Sq(a, b); !agree(sl, gl, l2Scale(a, b)) {
				t.Errorf("L2Sq a[%d]=b[%d]=%v: simd %v vs generic %v", idx, idx, v, sl, gl)
			}
		}
	}
}

// TestKernelPanicsOnShortB pins the bounds contract: the assembly reads
// len(a) floats from b without checks, so the wrapper must panic (like
// the pure-Go kernels always did) before dispatch when b is shorter.
func TestKernelPanicsOnShortB(t *testing.T) {
	a := make([]float32, 16)
	b := make([]float32, 15)
	for name, f := range map[string]func([]float32, []float32) float32{"Dot": Dot, "L2Sq": L2Sq} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(len 16, len 15) did not panic", name)
				}
			}()
			f(a, b)
		}()
	}
}

// TestForceGeneric checks the scalar-path switch golden tests rely on.
func TestForceGeneric(t *testing.T) {
	savedDot, savedL2, savedLevel := dotImpl, l2sqImpl, level
	defer func() { dotImpl, l2sqImpl, level = savedDot, savedL2, savedLevel }()

	ForceGeneric()
	if Level() != "generic" {
		t.Fatalf("Level after ForceGeneric = %q, want generic", Level())
	}
	rng := rand.New(rand.NewSource(4))
	a, b := randSlice(rng, 129), randSlice(rng, 129)
	if Dot(a, b) != DotGeneric(a, b) || L2Sq(a, b) != L2SqGeneric(a, b) {
		t.Fatal("forced-generic kernels are not bit-identical to the generic reference")
	}
}

// FuzzSIMDEquivalence feeds arbitrary lengths, offsets and values (decoded
// to a bounded range so FMA-vs-scalar overflow behaviour cannot dominate;
// non-finite inputs are pinned by TestSIMDNaNInfPropagation) through both
// kernel paths and requires 1e-4 relative agreement.
func FuzzSIMDEquivalence(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(1))
	f.Add(make([]byte, 300), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, off uint8) {
		vals := make([]float32, 0, len(data)/2)
		for i := 0; i+1 < len(data) && len(vals) < 4096; i += 2 {
			u := uint16(data[i]) | uint16(data[i+1])<<8
			vals = append(vals, float32(u)/8192-4) // [-4, 4)
		}
		skip := int(off % 8)
		if len(vals) < 2*skip {
			return
		}
		half := len(vals) / 2
		a := vals[skip:half]
		b := vals[half+skip : 2*half]
		if gd, sd := DotGeneric(a, b), Dot(a, b); !agree(sd, gd, dotScale(a, b)) {
			t.Errorf("Dot n=%d off=%d: simd %v vs generic %v", len(a), skip, sd, gd)
		}
		if gl, sl := L2SqGeneric(a, b), L2Sq(a, b); !agree(sl, gl, l2Scale(a, b)) {
			t.Errorf("L2Sq n=%d off=%d: simd %v vs generic %v", len(a), skip, sl, gl)
		}
	})
}
