// Package vec provides the float32 vector kernels used throughout the
// library: dot products, squared Euclidean distances, partial (prefix /
// suffix) distances for incremental distance correction, norms and basic
// slice arithmetic.
//
// All distance-like quantities in this code base are squared Euclidean
// distances, matching the paper (squaring preserves the ordering of
// distances, §II-A). The hot kernels (Dot, L2Sq and the fused flat-matrix
// variants built on them) go through one-time runtime dispatch: on amd64
// with AVX2+FMA and on arm64 (NEON) they run hand-written assembly, and
// everywhere else — or under the `noasm` build tag, the RESINFER_NOSIMD
// environment variable, or ForceGeneric — they run the portable generic
// kernels. The generic kernels accumulate in float32 with 8-way unrolling
// (eight independent accumulators keep the FP units busy without SIMD,
// mirroring the scalar setting the paper evaluates under); the SIMD
// kernels use wider lanes and fused multiply-add, so their sums can differ
// from the generic ones by normal floating-point reassociation error.
// Reductions that feed statistics or training use the float64 variants to
// avoid cancellation.
package vec

import "math"

// Dot returns the inner product <a, b>. The slices must have equal length.
func Dot(a, b []float32) float32 {
	if len(a) > 0 {
		_ = b[len(a)-1] // bounds: b must cover a before the kernel runs unchecked
	}
	return dotImpl(a, b)
}

// DotGeneric is the portable scalar Dot kernel: 8-way unrolled, no SIMD.
// It is the deterministic reference path the dispatched kernels are tested
// against, and what Dot runs after ForceGeneric.
func DotGeneric(a, b []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	n := len(a)
	i := 0
	for ; i+8 <= n; i += 8 {
		aa, bb := a[i:i+8], b[i:i+8]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
		s4 += aa[4] * bb[4]
		s5 += aa[5] * bb[5]
		s6 += aa[6] * bb[6]
		s7 += aa[7] * bb[7]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// Dot64 returns the inner product accumulated in float64.
func Dot64(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// L2Sq returns the squared Euclidean distance between a and b.
func L2Sq(a, b []float32) float32 {
	if len(a) > 0 {
		_ = b[len(a)-1] // bounds: b must cover a before the kernel runs unchecked
	}
	return l2sqImpl(a, b)
}

// L2SqGeneric is the portable scalar L2Sq kernel: 8-way unrolled, no SIMD.
// It is the deterministic reference path the dispatched kernels are tested
// against, and what L2Sq runs after ForceGeneric.
func L2SqGeneric(a, b []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	n := len(a)
	i := 0
	for ; i+8 <= n; i += 8 {
		aa, bb := a[i:i+8], b[i:i+8]
		d0 := aa[0] - bb[0]
		d1 := aa[1] - bb[1]
		d2 := aa[2] - bb[2]
		d3 := aa[3] - bb[3]
		d4 := aa[4] - bb[4]
		d5 := aa[5] - bb[5]
		d6 := aa[6] - bb[6]
		d7 := aa[7] - bb[7]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		s4 += d4 * d4
		s5 += d5 * d5
		s6 += d6 * d6
		s7 += d7 * d7
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// L2Sq64 returns the squared Euclidean distance accumulated in float64.
func L2Sq64(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// NormSq returns the squared Euclidean norm of a.
func NormSq(a []float32) float32 {
	var s0, s1 float32
	n := len(a)
	i := 0
	for ; i+2 <= n; i += 2 {
		s0 += a[i] * a[i]
		s1 += a[i+1] * a[i+1]
	}
	if i < n {
		s0 += a[i] * a[i]
	}
	return s0 + s1
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(NormSq(a))))
}

// Scale multiplies every element of a by c in place.
func Scale(a []float32, c float32) {
	for i := range a {
		a[i] *= c
	}
}

// Axpy computes y += alpha*x in place. The slices must have equal length.
func Axpy(alpha float32, x, y []float32) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Add returns a+b as a new slice.
func Add(a, b []float32) []float32 {
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new slice.
func Sub(a, b []float32) []float32 {
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// SubInto writes a-b into dst, which must have the same length.
func SubInto(dst, a, b []float32) {
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Zero sets every element of a to zero.
func Zero(a []float32) {
	for i := range a {
		a[i] = 0
	}
}

// ArgMin returns the index of the smallest element of a, or -1 if a is
// empty. Ties resolve to the lowest index.
func ArgMin(a []float32) int {
	if len(a) == 0 {
		return -1
	}
	best, idx := a[0], 0
	for i := 1; i < len(a); i++ {
		if a[i] < best {
			best, idx = a[i], i
		}
	}
	return idx
}

// Mean returns the arithmetic mean of a (0 for empty input), accumulated in
// float64.
func Mean(a []float32) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for _, v := range a {
		s += float64(v)
	}
	return s / float64(len(a))
}

// Equal reports whether a and b have identical lengths and elements.
func Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b are element-wise equal within eps.
func ApproxEqual(a, b []float32, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i])-float64(b[i])) > eps {
			return false
		}
	}
	return true
}
