//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA float32 kernels. Both walk the inputs in 32-float blocks (four
// YMM accumulators hide FMA latency), then an 8-float block loop, then a
// scalar tail, so any length and any alignment is handled; loads are
// unaligned (VMOVUPS) because callers pass arbitrary subslices of the flat
// matrix. The wrappers in vec.go bounds-check b against len(a) before
// dispatch, so the assembly reads exactly len(a) floats from each input.

// func dotAVX2(a, b []float32) float32
TEXT ·dotAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $5, DX            // DX = number of 32-float blocks
	JZ   dot_tail8

dot_block32:
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  dot_block32

dot_tail8:
	ANDQ $31, CX           // CX = remaining floats after 32-blocks
	MOVQ CX, DX
	SHRQ $3, DX            // DX = number of 8-float blocks
	JZ   dot_reduce

dot_block8:
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  dot_block8

dot_reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $7, CX            // CX = scalar tail length
	JZ   dot_done

dot_scalar:
	VMOVSS (SI), X1
	VMOVSS (DI), X2
	VFMADD231SS X2, X1, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dot_scalar

dot_done:
	VZEROUPPER
	MOVSS X0, ret+48(FP)
	RET

// func l2sqAVX2(a, b []float32) float32
TEXT ·l2sqAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $5, DX
	JZ   l2_tail8

l2_block32:
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VSUBPS (DI), Y4, Y4
	VSUBPS 32(DI), Y5, Y5
	VSUBPS 64(DI), Y6, Y6
	VSUBPS 96(DI), Y7, Y7
	VFMADD231PS Y4, Y4, Y0
	VFMADD231PS Y5, Y5, Y1
	VFMADD231PS Y6, Y6, Y2
	VFMADD231PS Y7, Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  l2_block32

l2_tail8:
	ANDQ $31, CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   l2_reduce

l2_block8:
	VMOVUPS (SI), Y4
	VSUBPS (DI), Y4, Y4
	VFMADD231PS Y4, Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  l2_block8

l2_reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $7, CX
	JZ   l2_done

l2_scalar:
	VMOVSS (SI), X1
	VSUBSS (DI), X1, X1
	VFMADD231SS X1, X1, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  l2_scalar

l2_done:
	VZEROUPPER
	MOVSS X0, ret+48(FP)
	RET
