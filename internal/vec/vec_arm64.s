//go:build arm64 && !noasm

#include "textflag.h"

// NEON float32 kernels. Both walk the inputs in 16-float blocks (four
// 128-bit accumulators V0-V3), then a 4-float block loop, then a scalar
// tail, so any length and alignment is handled. The Go arm64 assembler
// has no mnemonic for the vector FSUB / FADDP forms, so those few
// instructions are WORD-encoded against fixed registers; everything else
// uses the assembler's VLD1/VFMLA/FMOVS support. The wrappers in vec.go
// bounds-check b against len(a) before dispatch, so the assembly reads
// exactly len(a) floats from each input.
//
// WORD encodings used (ARMv8 A64):
//   FADDP Vd.4S, Vn.4S, Vm.4S = 0x6E20D400 | Rm<<16 | Rn<<5 | Rd
//   FSUB  Vd.4S, Vn.4S, Vm.4S = 0x4EA0D400 | Rm<<16 | Rn<<5 | Rd

// func dotNEON(a, b []float32) float32
TEXT ·dotNEON(SB), NOSPLIT, $0-52
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R1
	MOVD a_len+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	LSR  $4, R2, R3            // R3 = number of 16-float blocks
	CBZ  R3, dot_tail4

dot_block16:
	VLD1.P 64(R0), [V4.S4, V5.S4, V6.S4, V7.S4]
	VLD1.P 64(R1), [V16.S4, V17.S4, V18.S4, V19.S4]
	VFMLA  V16.S4, V4.S4, V0.S4
	VFMLA  V17.S4, V5.S4, V1.S4
	VFMLA  V18.S4, V6.S4, V2.S4
	VFMLA  V19.S4, V7.S4, V3.S4
	SUB    $1, R3
	CBNZ   R3, dot_block16

dot_tail4:
	AND  $15, R2, R4           // R4 = remaining floats after 16-blocks
	LSR  $2, R4, R3            // R3 = number of 4-float blocks
	CBZ  R3, dot_reduce

dot_block4:
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V16.S4]
	VFMLA  V16.S4, V4.S4, V0.S4
	SUB    $1, R3
	CBNZ   R3, dot_block4

dot_reduce:
	WORD $0x6E21D400           // FADDP V0.4S, V0.4S, V1.4S
	WORD $0x6E23D442           // FADDP V2.4S, V2.4S, V3.4S
	WORD $0x6E22D400           // FADDP V0.4S, V0.4S, V2.4S
	WORD $0x6E20D400           // FADDP V0.4S, V0.4S, V0.4S
	WORD $0x6E20D400           // FADDP V0.4S, V0.4S, V0.4S -> lane 0 = sum
	AND  $3, R4, R2            // R2 = scalar tail length
	CBZ  R2, dot_done

dot_scalar:
	FMOVS  (R0), F4
	FMOVS  (R1), F5
	FMADDS F4, F0, F5, F0      // F0 += F5 * F4
	ADD    $4, R0
	ADD    $4, R1
	SUB    $1, R2
	CBNZ   R2, dot_scalar

dot_done:
	FMOVS F0, ret+48(FP)
	RET

// func l2sqNEON(a, b []float32) float32
TEXT ·l2sqNEON(SB), NOSPLIT, $0-52
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R1
	MOVD a_len+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	LSR  $4, R2, R3
	CBZ  R3, l2_tail4

l2_block16:
	VLD1.P 64(R0), [V4.S4, V5.S4, V6.S4, V7.S4]
	VLD1.P 64(R1), [V16.S4, V17.S4, V18.S4, V19.S4]
	WORD   $0x4EB0D484         // FSUB V4.4S, V4.4S, V16.4S
	WORD   $0x4EB1D4A5         // FSUB V5.4S, V5.4S, V17.4S
	WORD   $0x4EB2D4C6         // FSUB V6.4S, V6.4S, V18.4S
	WORD   $0x4EB3D4E7         // FSUB V7.4S, V7.4S, V19.4S
	VFMLA  V4.S4, V4.S4, V0.S4
	VFMLA  V5.S4, V5.S4, V1.S4
	VFMLA  V6.S4, V6.S4, V2.S4
	VFMLA  V7.S4, V7.S4, V3.S4
	SUB    $1, R3
	CBNZ   R3, l2_block16

l2_tail4:
	AND  $15, R2, R4
	LSR  $2, R4, R3
	CBZ  R3, l2_reduce

l2_block4:
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V16.S4]
	WORD   $0x4EB0D484         // FSUB V4.4S, V4.4S, V16.4S
	VFMLA  V4.S4, V4.S4, V0.S4
	SUB    $1, R3
	CBNZ   R3, l2_block4

l2_reduce:
	WORD $0x6E21D400           // FADDP V0.4S, V0.4S, V1.4S
	WORD $0x6E23D442           // FADDP V2.4S, V2.4S, V3.4S
	WORD $0x6E22D400           // FADDP V0.4S, V0.4S, V2.4S
	WORD $0x6E20D400           // FADDP V0.4S, V0.4S, V0.4S
	WORD $0x6E20D400           // FADDP V0.4S, V0.4S, V0.4S
	AND  $3, R4, R2
	CBZ  R2, l2_done

l2_scalar:
	FMOVS  (R0), F4
	FMOVS  (R1), F5
	FSUBS  F5, F4, F4          // F4 = F4 - F5
	FMADDS F4, F0, F4, F0      // F0 += F4 * F4
	ADD    $4, R0
	ADD    $4, R1
	SUB    $1, R2
	CBNZ   R2, l2_scalar

l2_done:
	FMOVS F0, ret+48(FP)
	RET
