package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMatchesFloat64(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100, 301} {
		a, b := randVec(r, n), randVec(r, n)
		got := float64(Dot(a, b))
		want := Dot64(a, b)
		if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Errorf("n=%d: Dot=%v Dot64=%v", n, got, want)
		}
	}
}

func TestL2SqBasic(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{1, 2, 2}
	if got := L2Sq(a, b); got != 9 {
		t.Fatalf("L2Sq = %v, want 9", got)
	}
}

func TestL2SqSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(64)
		a, b := randVec(r, n), randVec(r, n)
		return L2Sq(a, b) == L2Sq(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2SqIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVec(r, 1+r.Intn(128))
		return L2Sq(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ||a-b||^2 = ||a||^2 + ||b||^2 - 2<a,b> (the paper's Eq. 2 with
// d = 0 residual split).
func TestDistanceDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		a, b := randVec(r, n), randVec(r, n)
		lhs := L2Sq64(a, b)
		rhs := float64(NormSq(a)) + float64(NormSq(b)) - 2*Dot64(a, b)
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prefix dot + suffix dot = full dot, the invariant incremental
// DCOs rely on.
func TestDotRangeSplits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		cut := 1 + r.Intn(n-1)
		a, b := randVec(r, n), randVec(r, n)
		full := Dot64(a, b)
		split := float64(DotRange(a, b, 0, cut)) + float64(DotRange(a, b, cut, n))
		return math.Abs(full-split) < 1e-2*(1+math.Abs(full))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2SqRangeSplits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		cut := 1 + r.Intn(n-1)
		a, b := randVec(r, n), randVec(r, n)
		full := L2Sq64(a, b)
		split := float64(L2SqRange(a, b, 0, cut)) + float64(L2SqRange(a, b, cut, n))
		return math.Abs(full-split) < 1e-2*(1+math.Abs(full))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuffixNormSq(t *testing.T) {
	a := []float32{3, 4, 0}
	got := SuffixNormSq(a)
	want := []float64{25, 16, 0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("SuffixNormSq[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSuffixNormSqMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVec(r, 1+r.Intn(100))
		s := SuffixNormSq(a)
		for i := 0; i < len(s)-1; i++ {
			if s[i] < s[i+1] {
				return false
			}
		}
		return s[len(s)-1] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuffixWeightedSq(t *testing.T) {
	a := []float32{1, 2}
	w := []float32{3, 0.5}
	got := SuffixWeightedSq(a, w)
	// entries: (1*3)^2+(2*0.5)^2 = 10, (2*0.5)^2 = 1, 0
	want := []float64{10, 1, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("SuffixWeightedSq[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormSq(t *testing.T) {
	if got := NormSq([]float32{3, 4}); got != 25 {
		t.Fatalf("NormSq = %v, want 25", got)
	}
	if got := Norm([]float32{3, 4}); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestScaleAxpy(t *testing.T) {
	a := []float32{1, 2, 3}
	Scale(a, 2)
	if !Equal(a, []float32{2, 4, 6}) {
		t.Fatalf("Scale: %v", a)
	}
	y := []float32{1, 1, 1}
	Axpy(0.5, a, y)
	if !Equal(y, []float32{2, 3, 4}) {
		t.Fatalf("Axpy: %v", y)
	}
}

func TestAddSubClone(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 5}
	if !Equal(Add(a, b), []float32{4, 7}) {
		t.Fatal("Add")
	}
	if !Equal(Sub(b, a), []float32{2, 3}) {
		t.Fatal("Sub")
	}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases input")
	}
	dst := make([]float32, 2)
	SubInto(dst, b, a)
	if !Equal(dst, []float32{2, 3}) {
		t.Fatal("SubInto")
	}
}

func TestArgMin(t *testing.T) {
	if got := ArgMin(nil); got != -1 {
		t.Fatalf("ArgMin(nil) = %d", got)
	}
	if got := ArgMin([]float32{5, 1, 3, 1}); got != 1 {
		t.Fatalf("ArgMin = %d, want 1 (first of ties)", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float32{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual([]float32{1, 2}, []float32{1.0000001, 2}, 1e-3) {
		t.Fatal("ApproxEqual should accept tiny differences")
	}
	if ApproxEqual([]float32{1}, []float32{1, 2}, 1) {
		t.Fatal("ApproxEqual must reject length mismatch")
	}
	if ApproxEqual([]float32{1}, []float32{2}, 0.5) {
		t.Fatal("ApproxEqual must reject large differences")
	}
}

func TestZero(t *testing.T) {
	a := []float32{1, 2, 3}
	Zero(a)
	if !Equal(a, []float32{0, 0, 0}) {
		t.Fatal("Zero")
	}
}

func BenchmarkDot256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randVec(r, 256), randVec(r, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkL2Sq256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randVec(r, 256), randVec(r, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = L2Sq(x, y)
	}
}

func TestFlatKernelsMatchSliceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dim := range []int{1, 3, 7, 8, 9, 16, 31, 64, 100} {
		rows, q := 5, make([]float32, dim)
		flat := make([]float32, rows*dim)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		for i := range flat {
			flat[i] = float32(rng.NormFloat64())
		}
		for r := 0; r < rows; r++ {
			base := r * dim
			row := flat[base : base+dim]
			if got, want := L2SqFlat(q, flat, base), L2Sq(q, row); got != want {
				t.Fatalf("dim %d L2SqFlat = %v want %v", dim, got, want)
			}
			if got, want := DotFlat(q, flat, base), Dot(q, row); got != want {
				t.Fatalf("dim %d DotFlat = %v want %v", dim, got, want)
			}
			lo, hi := dim/3, dim
			if got, want := L2SqRangeFlat(q, flat, base, lo, hi), L2Sq(q[lo:hi], row[lo:hi]); got != want {
				t.Fatalf("dim %d L2SqRangeFlat = %v want %v", dim, got, want)
			}
			if got, want := DotRangeFlat(q, flat, base, lo, hi), Dot(q[lo:hi], row[lo:hi]); got != want {
				t.Fatalf("dim %d DotRangeFlat = %v want %v", dim, got, want)
			}
		}
	}
}

func TestSuffixIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, w := make([]float32, 33), make([]float32, 33)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		w[i] = float32(rng.Float64())
	}
	out := make([]float64, len(a)+1)
	got := SuffixWeightedSqInto(out, a, w)
	want := SuffixWeightedSq(a, w)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SuffixWeightedSqInto[%d] = %v want %v", i, got[i], want[i])
		}
	}
	gotN := SuffixNormSqInto(out, a)
	wantN := SuffixNormSq(a)
	for i := range wantN {
		if gotN[i] != wantN[i] {
			t.Fatalf("SuffixNormSqInto[%d] = %v want %v", i, gotN[i], wantN[i])
		}
	}
}
