// WAL tail streaming: the catch-up transport of replication. A joining
// replica resumes from an LSN cursor — the primary replays every record
// past the cursor into the HTTP response using the exact on-disk record
// framing (u32 length + u32 CRC32 + payload), prefixed by a stream
// magic. Reusing the segment encoding means the stream inherits the
// segment format's corruption detection for free, and the decoder below
// is the segment scanner's loop pointed at a socket instead of a file.
//
// Unlike a segment scan, a stream does not tolerate a torn tail: a
// short read or CRC mismatch mid-stream is a transport error
// (ErrStreamCorrupt) and the follower re-requests from its cursor —
// the cursor, not the stream, is the source of truth.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// StreamMagic starts every WAL tail stream, versioned separately from
// the segment magic so the wire format can evolve without a disk
// migration.
const StreamMagic = "RESWALT1"

// ErrStreamCorrupt reports a WAL tail stream that ended mid-record or
// failed its checksum — re-request from the cursor.
var ErrStreamCorrupt = errors.New("wal: tail stream torn or corrupt")

// AppendRecordWire appends r in the on-disk record framing to buf and
// returns the extended slice. It is the encoding half of StreamReader
// and of every segment record; an OpCheckpoint record carries Durable
// in the ID slot, mirroring appendLocked.
func AppendRecordWire(buf []byte, r Record) []byte {
	id := int64(r.ID)
	if r.Op == OpCheckpoint {
		id = int64(r.Durable)
	}
	plen := payloadFixed + 4*len(r.Vec)
	start := len(buf)
	buf = append(buf, make([]byte, recHeaderLen+plen)...)
	p := buf[start+recHeaderLen:]
	binary.LittleEndian.PutUint64(p[0:], r.LSN)
	p[8] = byte(r.Op)
	binary.LittleEndian.PutUint32(p[9:], uint32(r.Shard))
	binary.LittleEndian.PutUint64(p[13:], uint64(id))
	binary.LittleEndian.PutUint32(p[21:], uint32(len(r.Vec)))
	for i, x := range r.Vec {
		binary.LittleEndian.PutUint32(p[payloadFixed+4*i:], math.Float32bits(x))
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(p))
	return buf
}

// StreamWriter encodes records onto one WAL tail stream. NewStreamWriter
// writes the stream magic immediately; Flush must be called before the
// underlying writer is handed back to the transport.
type StreamWriter struct {
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewStreamWriter starts a tail stream on w, writing the magic.
func NewStreamWriter(w io.Writer) *StreamWriter {
	sw := &StreamWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	_, sw.err = sw.bw.WriteString(StreamMagic)
	return sw
}

// Write encodes one record.
func (sw *StreamWriter) Write(r Record) error {
	if sw.err != nil {
		return sw.err
	}
	sw.buf = AppendRecordWire(sw.buf[:0], r)
	_, sw.err = sw.bw.Write(sw.buf)
	return sw.err
}

// Flush drains the buffered encoder to the underlying writer.
func (sw *StreamWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	sw.err = sw.bw.Flush()
	return sw.err
}

// StreamReader decodes a WAL tail stream. Records arrive in LSN order;
// the reader enforces strict monotonicity exactly like the segment
// scanner, so a primary bug cannot feed a follower a reordered log.
type StreamReader struct {
	br      *bufio.Reader
	hdr     [recHeaderLen]byte
	payload []byte
	last    uint64
	started bool
}

// NewStreamReader wraps r; the stream magic is consumed on first Next.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, io.EOF at a clean end of stream, and
// ErrStreamCorrupt when the stream tears mid-record or a checksum
// fails.
func (sr *StreamReader) Next() (Record, error) {
	if !sr.started {
		magic := make([]byte, len(StreamMagic))
		if _, err := io.ReadFull(sr.br, magic); err != nil {
			return Record{}, fmt.Errorf("%w: reading stream magic: %v", ErrStreamCorrupt, err)
		}
		if string(magic) != StreamMagic {
			return Record{}, fmt.Errorf("%w: bad stream magic %q", ErrStreamCorrupt, magic)
		}
		sr.started = true
	}
	if _, err := io.ReadFull(sr.br, sr.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF // clean record boundary
		}
		return Record{}, fmt.Errorf("%w: torn header: %v", ErrStreamCorrupt, err)
	}
	plen := int(binary.LittleEndian.Uint32(sr.hdr[0:]))
	wantCRC := binary.LittleEndian.Uint32(sr.hdr[4:])
	if plen < payloadFixed || plen > payloadFixed+4*maxDim {
		return Record{}, fmt.Errorf("%w: implausible payload length %d", ErrStreamCorrupt, plen)
	}
	if cap(sr.payload) < plen {
		sr.payload = make([]byte, plen)
	}
	sr.payload = sr.payload[:plen]
	if _, err := io.ReadFull(sr.br, sr.payload); err != nil {
		return Record{}, fmt.Errorf("%w: torn payload: %v", ErrStreamCorrupt, err)
	}
	if crc32.ChecksumIEEE(sr.payload) != wantCRC {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrStreamCorrupt)
	}
	rec, ok := decodePayload(sr.payload)
	if !ok {
		return Record{}, fmt.Errorf("%w: malformed record at lsn %d", ErrStreamCorrupt, rec.LSN)
	}
	if rec.LSN <= sr.last {
		return Record{}, fmt.Errorf("%w: non-monotone lsn %d after %d", ErrStreamCorrupt, rec.LSN, sr.last)
	}
	sr.last = rec.LSN
	return rec, nil
}

// decodePayload decodes one CRC-verified record payload. It returns
// ok=false for a structurally invalid record (length/dim mismatch,
// unknown op) — corruption the CRC cannot catch only if the sender
// itself is broken.
func decodePayload(payload []byte) (Record, bool) {
	rec := Record{
		LSN:   binary.LittleEndian.Uint64(payload[0:]),
		Op:    Op(payload[8]),
		Shard: int(binary.LittleEndian.Uint32(payload[9:])),
	}
	id := int64(binary.LittleEndian.Uint64(payload[13:]))
	dim := int(binary.LittleEndian.Uint32(payload[21:]))
	if len(payload) != payloadFixed+4*dim {
		return rec, false
	}
	switch rec.Op {
	case OpUpsert:
		rec.ID = int(id)
		rec.Vec = make([]float32, dim)
		for i := range rec.Vec {
			rec.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[payloadFixed+4*i:]))
		}
	case OpDelete:
		rec.ID = int(id)
	case OpCheckpoint:
		rec.Durable = uint64(id)
	default:
		return rec, false
	}
	return rec, true
}
