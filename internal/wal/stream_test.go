package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// pipeRecords encodes recs onto a stream and decodes them back.
func pipeRecords(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	for _, r := range recs {
		if err := sw.Write(r); err != nil {
			t.Fatalf("stream write: %v", err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("stream flush: %v", err)
	}
	sr := NewStreamReader(&buf)
	var out []Record
	for {
		r, err := sr.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		out = append(out, r)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	in := []Record{
		{LSN: 5, Op: OpUpsert, Shard: 2, ID: 41, Vec: []float32{1.5, -2.25}},
		{LSN: 6, Op: OpDelete, Shard: 0, ID: 41},
		{LSN: 7, Op: OpCheckpoint, Durable: 6},
		{LSN: 8, Op: OpUpsert, Shard: 1, ID: 42, Vec: nil},
	}
	out := pipeRecords(t, in)
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].LSN != in[i].LSN || out[i].Op != in[i].Op || out[i].Shard != in[i].Shard ||
			out[i].ID != in[i].ID || out[i].Durable != in[i].Durable || len(out[i].Vec) != len(in[i].Vec) {
			t.Fatalf("rec %d: got %+v, want %+v", i, out[i], in[i])
		}
		for j := range in[i].Vec {
			if out[i].Vec[j] != in[i].Vec[j] {
				t.Fatalf("rec %d vec[%d] = %v, want %v", i, j, out[i].Vec[j], in[i].Vec[j])
			}
		}
	}
}

func TestStreamTornMidRecordIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.Write(Record{LSN: 1, Op: OpUpsert, ID: 1, Vec: []float32{1, 2, 3}})
	sw.Write(Record{LSN: 2, Op: OpUpsert, ID: 2, Vec: []float32{4, 5, 6}})
	sw.Flush()
	torn := buf.Bytes()[:buf.Len()-3] // tear into the final record
	sr := NewStreamReader(bytes.NewReader(torn))
	if _, err := sr.Next(); err != nil {
		t.Fatalf("first record should survive: %v", err)
	}
	if _, err := sr.Next(); !errors.Is(err, ErrStreamCorrupt) {
		t.Fatalf("torn stream: err = %v, want ErrStreamCorrupt", err)
	}
}

func TestStreamChecksumMismatchIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.Write(Record{LSN: 1, Op: OpUpsert, ID: 1, Vec: []float32{1}})
	sw.Flush()
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff
	sr := NewStreamReader(bytes.NewReader(raw))
	if _, err := sr.Next(); !errors.Is(err, ErrStreamCorrupt) {
		t.Fatalf("bit-flipped stream: err = %v, want ErrStreamCorrupt", err)
	}
}

func TestStreamBadMagicIsCorrupt(t *testing.T) {
	sr := NewStreamReader(bytes.NewReader([]byte("NOTAWAL1xxxx")))
	if _, err := sr.Next(); !errors.Is(err, ErrStreamCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrStreamCorrupt", err)
	}
}

func TestStreamNonMonotoneLSNIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.Write(Record{LSN: 5, Op: OpDelete, ID: 1})
	sw.Write(Record{LSN: 5, Op: OpDelete, ID: 2}) // duplicate LSN
	sw.Flush()
	sr := NewStreamReader(&buf)
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); !errors.Is(err, ErrStreamCorrupt) {
		t.Fatalf("non-monotone stream: err = %v, want ErrStreamCorrupt", err)
	}
}

func TestStreamEmptyIsCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.Flush()
	sr := NewStreamReader(&buf)
	if _, err := sr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestReplayFromMidSegmentCursor is the catch-up entry point: a
// follower's cursor lands in the middle of a segment and replay must
// deliver exactly the records past it.
func TestReplayFromMidSegmentCursor(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := l.AppendUpsert(0, i, []float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	defer l.Close()
	// All ten records live in one segment; resume from LSN 6.
	if n := l.SegmentCount(); n != 1 {
		t.Fatalf("segments = %d, want 1", n)
	}
	recs, st := collect(t, l, 6)
	if len(recs) != 4 || st.Skipped != 6 {
		t.Fatalf("cursor resume: %d records (skipped %d), want 4 (skipped 6)", len(recs), st.Skipped)
	}
	for i, r := range recs {
		if want := uint64(7 + i); r.LSN != want {
			t.Fatalf("resumed rec %d has lsn %d, want %d", i, r.LSN, want)
		}
	}
}

// TestReplayCursorAtTornResumeBoundary tears the final record — exactly
// the record past the resume cursor — and replays from the cursor: the
// torn tail is dropped, nothing is delivered, and the stats say so.
func TestReplayCursorAtTornResumeBoundary(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := l.AppendUpsert(0, i, []float32{float32(i), 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	tornTail(t, dir, 7) // tear into record 5

	l2, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Cursor at 4: the only newer record is the torn one.
	recs, st := collect(t, l2, 4)
	if len(recs) != 0 {
		t.Fatalf("torn resume boundary delivered %d records, want 0: %+v", len(recs), recs)
	}
	if st.Torn != 1 || st.LastLSN != 4 {
		t.Fatalf("stats = %+v, want torn=1 lastLSN=4", st)
	}
	// The reopened log reissues the torn LSN; a follower that resumes
	// after the reissued append sees the new record 5, not the torn one.
	if lsn, err := l2.AppendDelete(0, 1); err != nil || lsn != 5 {
		t.Fatalf("reissued lsn = %d (%v), want 5", lsn, err)
	}
	recs, _ = collect(t, l2, 4)
	if len(recs) != 1 || recs[0].Op != OpDelete {
		t.Fatalf("resume after reissue: %+v, want the one reissued delete", recs)
	}
}

// TestReplayLSNCollisionRejoin models a rejoin where the crashed
// process's final segment was created but never acknowledged a record:
// its name (the first LSN it would have held) collides with the segment
// the restarted process opens. Replay from the follower's cursor must
// deliver the surviving records once, in order, with no duplicate LSNs.
func TestReplayLSNCollisionRejoin(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.AppendUpsert(0, i, []float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Rotate so a fresh segment named wal-…04 starts, then tear it back
	// to its magic: a crash right after segment creation.
	if err := l.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Checkpoint opened a segment holding only the checkpoint record
	// (LSN 4); tear that record off so the segment is empty — the name
	// wal-…04 now collides with the next append's LSN.
	tornTail(t, dir, 1)

	// Reopen with the snapshot floor, exactly as RecoverMutable does: the
	// fully-torn wal-…04 segment is dropped so its name can be reissued,
	// and the next append takes the collided LSN.
	l2, err := Open(dir, SyncNone(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextLSN(); got != 4 {
		t.Fatalf("NextLSN after collision rejoin = %d, want 4 (torn slot reissued)", got)
	}
	if lsn, err := l2.AppendUpsert(0, 9, []float32{9}); err != nil || lsn != 4 {
		t.Fatalf("reissued append: lsn=%d err=%v, want 4", lsn, err)
	}
	recs, _ := collect(t, l2, 0)
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.LSN] {
			t.Fatalf("duplicate lsn %d after collision rejoin", r.LSN)
		}
		seen[r.LSN] = true
	}
	if len(recs) != 1 || recs[0].LSN != 4 || recs[0].ID != 9 {
		t.Fatalf("collision rejoin replay: %+v", recs)
	}
	// A follower cursor past the snapshot (3) sees only the reissued
	// record.
	recs, _ = collect(t, l2, 3)
	if len(recs) != 1 || recs[0].ID != 9 {
		t.Fatalf("cursor past snapshot: %+v, want the reissued upsert only", recs)
	}
}
