// Package wal provides the write-ahead log behind crash-durable
// streaming ingestion: an append-only stream of length-prefixed,
// CRC32-checksummed mutation records (upsert / delete / compaction
// checkpoint) written to segment files in a directory. The owning index
// appends a record BEFORE applying the mutation it describes, so after
// an unclean shutdown the full mutation history since the last durable
// snapshot can be replayed onto a reloaded (or deterministically
// rebuilt) index.
//
// Durability is tunable per log: SyncAlways fsyncs every record before
// the append returns (an acknowledged mutation survives machine
// failure), SyncInterval(d) fsyncs from a background flusher (bounded
// loss on power failure, none on process crash — records are written
// through to the OS on every append), and SyncNone leaves syncing to
// the OS entirely.
//
// Segments rotate at compaction checkpoints: Checkpoint(durable) closes
// the active segment, starts a new one with a checkpoint record, and
// deletes every older segment whose records are all covered by the
// durable snapshot — so replay cost stays bounded by the churn since
// the last checkpoint. Recovery tolerates a torn final record in any
// segment (the expected artifact of a crash mid-write): the tail is
// dropped, not fatal. A torn record was never acknowledged under
// SyncAlways, so no acknowledged mutation is ever lost.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"resinfer/internal/fault"
)

// Op identifies a record's mutation type.
type Op uint8

const (
	// OpUpsert records a vector written under a resolved global ID.
	OpUpsert Op = 1
	// OpDelete records the removal of a live global ID.
	OpDelete Op = 2
	// OpCheckpoint marks that a durable snapshot covering every record
	// with LSN ≤ Durable was written; replay treats it as a no-op.
	OpCheckpoint Op = 3
)

// Record is one decoded WAL entry.
type Record struct {
	// LSN is the record's log sequence number: strictly increasing,
	// dense within a process lifetime.
	LSN uint64
	// Op is the mutation type.
	Op Op
	// Shard is the shard the mutation routed to (diagnostic; replay
	// re-derives routing from the index state).
	Shard int
	// ID is the global row ID (OpUpsert, OpDelete).
	ID int
	// Vec is the caller-space vector (OpUpsert only).
	Vec []float32
	// Durable is the snapshot-covered LSN (OpCheckpoint only).
	Durable uint64
}

// SyncPolicy selects the fsync discipline of a Log. The zero value is
// SyncAlways — durability-first by default.
type SyncPolicy struct {
	mode     syncMode
	interval time.Duration
}

type syncMode uint8

const (
	syncAlways syncMode = iota
	syncNone
	syncInterval
)

// SyncAlways fsyncs every record before the append returns.
func SyncAlways() SyncPolicy { return SyncPolicy{mode: syncAlways} }

// SyncNone never fsyncs explicitly; records are still written through
// to the OS per append, so they survive a process crash but not
// necessarily a machine failure.
func SyncNone() SyncPolicy { return SyncPolicy{mode: syncNone} }

// SyncInterval fsyncs from a background flusher every d (floor 1ms).
func SyncInterval(d time.Duration) SyncPolicy {
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return SyncPolicy{mode: syncInterval, interval: d}
}

// String renders the policy in the form ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch p.mode {
	case syncNone:
		return "none"
	case syncInterval:
		return fmt.Sprintf("interval=%s", p.interval)
	default:
		return "always"
	}
}

// ParseSyncPolicy parses "always", "none", "interval" (100ms default)
// or "interval=<duration>" — the -wal-sync flag syntax.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch {
	case s == "" || s == "always":
		return SyncAlways(), nil
	case s == "none":
		return SyncNone(), nil
	case s == "interval":
		return SyncInterval(100 * time.Millisecond), nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil {
			return SyncPolicy{}, fmt.Errorf("wal: bad sync interval %q: %w", s, err)
		}
		return SyncInterval(d), nil
	default:
		return SyncPolicy{}, fmt.Errorf("wal: unknown sync policy %q (want always | none | interval[=dur])", s)
	}
}

const (
	// segMagic starts every segment file.
	segMagic = "RESWAL01"
	// recHeaderLen is the fixed per-record prefix: u32 payload length +
	// u32 CRC32 of the payload.
	recHeaderLen = 8
	// payloadFixed is the payload size before the vector components:
	// u64 lsn + u8 op + u32 shard + i64 id + u32 dim.
	payloadFixed = 8 + 1 + 4 + 8 + 4
	// maxDim bounds decoded vector lengths as a corruption guard.
	maxDim = 1 << 22
)

// ErrClosed reports an append on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// segment is one on-disk log file; the first LSN is encoded in its name.
type segment struct {
	path  string
	first uint64
}

// Log is an append-only write-ahead log over segment files in one
// directory. All methods are safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	dir    string
	policy SyncPolicy

	f           *os.File // active segment, nil until the first append after Open/rotate
	off         int64    // bytes acknowledged into the active segment (rollback point)
	segs        []segment
	nextLSN     uint64
	dirty       bool  // unsynced bytes pending (interval policy)
	failed      error // first write/sync failure: the log is fail-stop after it
	closed      bool
	appendBuf   []byte
	obs         Observer // optional per-append instrumentation hook
	flusherStop chan struct{}
	flusherWG   sync.WaitGroup
}

// Observer receives per-append instrumentation: the total time spent
// in the append (serialize + write + any inline fsync) and the fsync
// portion alone (0 under SyncNone/SyncInterval, whose syncs happen off
// the append path). It is called with the log's mutex held — keep it
// to a few atomic operations.
type Observer func(appendDur, syncDur time.Duration)

// SetObserver installs (or, with nil, removes) the append observer.
func (l *Log) SetObserver(fn Observer) {
	l.mu.Lock()
	l.obs = fn
	l.mu.Unlock()
}

// Open opens (creating if needed) the log directory. Existing segments
// are scanned so new appends continue the LSN sequence past the last
// valid record; minLSN additionally floors the sequence (pass the LSN a
// loaded snapshot was taken at, so appends stay above it even when the
// directory is fresh). Appends go to a new segment — a possibly-torn
// tail from a previous crash is never appended to.
func Open(dir string, policy SyncPolicy, minLSN uint64) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := minLSN + 1
	for len(segs) > 0 {
		tail := segs[len(segs)-1]
		last, _, err := scanSegment(tail.path, 0, nil)
		if err != nil {
			return nil, err
		}
		if last == 0 {
			// A segment with no intact record holds nothing acknowledged
			// (a crash tore it before its first record survived); drop it
			// so its name can be reissued to the next segment.
			if err := os.Remove(tail.path); err != nil {
				return nil, err
			}
			segs = segs[:len(segs)-1]
			continue
		}
		if last+1 > next {
			next = last + 1
		}
		if tail.first > next {
			next = tail.first
		}
		break
	}
	if next < 1 {
		next = 1
	}
	l := &Log{dir: dir, policy: policy, segs: segs, nextLSN: next}
	if policy.mode == syncInterval {
		l.flusherStop = make(chan struct{})
		l.flusherWG.Add(1)
		go l.flusher()
	}
	return l, nil
}

// flusher periodically fsyncs the active segment under the interval
// policy.
func (l *Log) flusher() {
	defer l.flusherWG.Done()
	t := time.NewTicker(l.policy.interval)
	defer t.Stop()
	for {
		select {
		case <-l.flusherStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && l.f != nil {
				_ = l.f.Sync()
				l.dirty = false
			}
			l.mu.Unlock()
		}
	}
}

// listSegments returns the directory's segment files sorted by first
// LSN.
func listSegments(dir string) ([]segment, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	segs := make([]segment, 0, len(names))
	for _, p := range names {
		var first uint64
		base := filepath.Base(p)
		if _, err := fmt.Sscanf(base, "wal-%016x.log", &first); err != nil {
			return nil, fmt.Errorf("wal: unrecognized segment name %q", base)
		}
		segs = append(segs, segment{path: p, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// AppendUpsert logs an upsert of (id, v) routed to shard and returns
// its LSN. The record is durable per the sync policy when this returns.
func (l *Log) AppendUpsert(shard, id int, v []float32) (uint64, error) {
	return l.append(OpUpsert, shard, int64(id), v)
}

// AppendDelete logs the delete of id on shard and returns its LSN.
func (l *Log) AppendDelete(shard, id int) (uint64, error) {
	return l.append(OpDelete, shard, int64(id), nil)
}

// append serializes and writes one record (one write syscall), then
// syncs per policy.
func (l *Log) append(op Op, shard int, id int64, v []float32) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(op, shard, id, v)
}

func (l *Log) appendLocked(op Op, shard int, id int64, v []float32) (uint64, error) {
	var t0 time.Time
	if l.obs != nil {
		t0 = time.Now()
	}
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		// Fail-stop: a failed write may have left a partial record in the
		// active segment. Appending past it would put acknowledged records
		// behind garbage that recovery treats as the torn tail — silently
		// dropping them. Refuse every later append instead; the owner
		// surfaces the error and mutations fail loudly until restart.
		return 0, fmt.Errorf("wal: log failed earlier: %w", l.failed)
	}
	if fault.Active() {
		// An injected append error models a transient write failure with
		// nothing on disk: retryable, no fail-stop.
		if err := fault.Check(fault.SiteWALAppend); err != nil {
			return 0, err
		}
	}
	if l.f == nil {
		if err := l.openSegmentLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	plen := payloadFixed + 4*len(v)
	need := recHeaderLen + plen
	if cap(l.appendBuf) < need {
		l.appendBuf = make([]byte, need)
	}
	buf := l.appendBuf[:need]
	p := buf[recHeaderLen:]
	binary.LittleEndian.PutUint64(p[0:], lsn)
	p[8] = byte(op)
	binary.LittleEndian.PutUint32(p[9:], uint32(shard))
	binary.LittleEndian.PutUint64(p[13:], uint64(id))
	binary.LittleEndian.PutUint32(p[21:], uint32(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint32(p[payloadFixed+4*i:], math.Float32bits(x))
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(p))
	if _, err := l.f.Write(buf); err != nil {
		// A failed write may have left part of the record on disk. Try to
		// truncate the segment back to the last acknowledged boundary: if
		// that succeeds the log is exactly as it was before this append —
		// the error is transient and the caller may retry. Only when the
		// rollback itself fails does the log fail-stop (appending past an
		// unremovable partial record would bury acknowledged records
		// behind what recovery treats as the torn tail).
		if terr := l.rollbackLocked(); terr != nil {
			l.failed = err
			return 0, fmt.Errorf("wal: write failed (%v) and rollback failed: %w", err, terr)
		}
		return 0, err
	}
	l.off += int64(len(buf))
	l.nextLSN++
	var syncDur time.Duration
	switch l.policy.mode {
	case syncAlways:
		var s0 time.Time
		if l.obs != nil {
			s0 = time.Now()
		}
		var err error
		if fault.Active() {
			// An injected fsync fault models a sync failure or a slow disk
			// on the durability path; an error here is fail-stop, exactly
			// like a real one.
			err = fault.Check(fault.SiteWALFsync)
		}
		if err == nil {
			err = l.f.Sync()
		}
		if err != nil {
			// The record is written but not durable, and the mutation will
			// be rejected; recovery may still replay it (the caller was
			// told the outcome is unknown). Fail-stop so nothing is
			// acknowledged on top of an unsyncable segment.
			l.failed = err
			return 0, err
		}
		if l.obs != nil {
			syncDur = time.Since(s0)
		}
	case syncInterval:
		l.dirty = true
	}
	if l.obs != nil {
		l.obs(time.Since(t0), syncDur)
	}
	return lsn, nil
}

// openSegmentLocked creates the next segment file, named after the
// first LSN it will hold, and writes the segment magic.
func (l *Log) openSegmentLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%016x.log", l.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.off = int64(len(segMagic))
	l.segs = append(l.segs, segment{path: path, first: l.nextLSN})
	return nil
}

// rollbackLocked restores the active segment to the last acknowledged
// record boundary after a failed write: truncate off any partial record
// and reposition the write cursor.
func (l *Log) rollbackLocked() error {
	if err := l.f.Truncate(l.off); err != nil {
		return err
	}
	_, err := l.f.Seek(l.off, io.SeekStart)
	return err
}

// Failed returns the write/sync error the log fail-stopped on, or nil
// while the log is healthy.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Recover clears the fail-stop state after a persistent failure: the
// poisoned active segment is abandoned (closed best-effort; its intact
// prefix still replays — recovery drops only the torn tail) and the next
// append opens a fresh segment. It is the operator's escape hatch behind
// POST /admin/degraded/clear — call it once the underlying disk fault is
// fixed. A no-op on a healthy log.
func (l *Log) Recover() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed == nil {
		return nil
	}
	if l.f != nil {
		// The handle may be poisoned (a failed fsync leaves its durability
		// unknowable); closing it can fail and that is fine — the segment
		// is abandoned either way.
		_ = l.f.Close()
		l.f = nil
		l.dirty = false
	}
	// If the abandoned segment never acknowledged a record, its name (the
	// first LSN it would have held) collides with the segment the next
	// append creates; drop it so the name can be reissued.
	if n := len(l.segs); n > 0 && l.segs[n-1].first == l.nextLSN {
		if err := os.Remove(l.segs[n-1].path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		l.segs = l.segs[:n-1]
	}
	l.failed = nil
	return nil
}

// Checkpoint records that a durable snapshot covers every record with
// LSN ≤ durable: the active segment is rotated out, a checkpoint record
// opens the new one, and every older segment made obsolete by the
// snapshot is deleted — bounding future replay to the churn since this
// point.
func (l *Log) Checkpoint(durable uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log failed earlier: %w", l.failed)
	}
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.failed = err
			return err
		}
		if err := l.f.Close(); err != nil {
			l.failed = err
			return err
		}
		l.f = nil
		l.dirty = false
	}
	if _, err := l.appendLocked(OpCheckpoint, 0, int64(durable), nil); err != nil {
		return err
	}
	// The checkpoint record marks a recovery boundary regardless of the
	// sync policy; one extra fsync per checkpoint is noise.
	if err := l.f.Sync(); err != nil {
		l.failed = err
		return err
	}
	l.dirty = false
	// A non-active segment is obsolete when every record in it has LSN ≤
	// durable; with dense LSNs its last record is the next segment's
	// first minus one.
	kept := l.segs[:0]
	for i, s := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].first-1 <= durable {
			if err := os.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		return nil
	}
	l.dirty = false
	return l.f.Sync()
}

// Close syncs and closes the active segment and stops the background
// flusher. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.flusherStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		l.flusherWG.Wait()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		_ = l.f.Sync()
		err := l.f.Close()
		l.f = nil
		return err
	}
	return nil
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// LastLSN returns the LSN of the most recent append (0 if none yet).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// SegmentCount returns how many segment files the log currently spans.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	// Upserts / Deletes / Checkpoints count the records delivered to the
	// callback (after the LSN filter).
	Upserts, Deletes, Checkpoints int
	// Skipped counts records at or below the replay floor.
	Skipped int
	// Torn counts segments that ended in a truncated or checksum-failing
	// tail (dropped, not fatal).
	Torn int
	// FirstLSN / LastLSN bound the records seen (0 when the log is
	// empty).
	FirstLSN, LastLSN uint64
}

// Replay decodes every segment in order and calls fn for each record
// with LSN > after. A torn final record in a segment is dropped; real
// mid-stream corruption (bad magic, non-monotone LSNs) is an error, as
// is any error returned by fn.
func (l *Log) Replay(after uint64, fn func(Record) error) (ReplayStats, error) {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	var st ReplayStats
	var lastSeen uint64
	for _, s := range segs {
		last, torn, err := scanSegment(s.path, lastSeen, func(r Record) error {
			if st.FirstLSN == 0 {
				st.FirstLSN = r.LSN
			}
			st.LastLSN = r.LSN
			if r.LSN <= after {
				st.Skipped++
				return nil
			}
			switch r.Op {
			case OpUpsert:
				st.Upserts++
			case OpDelete:
				st.Deletes++
			case OpCheckpoint:
				st.Checkpoints++
			}
			if fn != nil {
				return fn(r)
			}
			return nil
		})
		if err != nil {
			return st, fmt.Errorf("wal: replaying %s: %w", filepath.Base(s.path), err)
		}
		if torn {
			st.Torn++
		}
		if last > lastSeen {
			lastSeen = last
		}
	}
	return st, nil
}

// scanSegment decodes one segment file, calling fn per record. It
// returns the last valid LSN seen (0 if none), whether the segment
// ended in a torn tail, and a fatal error for real corruption or a
// callback failure. LSNs must be strictly increasing and above floor.
func scanSegment(path string, floor uint64, fn func(Record) error) (last uint64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		// A crash can tear even the magic of a just-created segment.
		return 0, true, nil
	}
	if string(magic) != segMagic {
		return 0, false, fmt.Errorf("wal: bad segment magic %q", magic)
	}
	hdr := make([]byte, recHeaderLen)
	var payload []byte
	last = floor
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return last, false, nil // clean end
			}
			return last, true, nil // torn header
		}
		plen := int(binary.LittleEndian.Uint32(hdr[0:]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if plen < payloadFixed || plen > payloadFixed+4*maxDim {
			return last, true, nil // implausible length: torn/garbage tail
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return last, true, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return last, true, nil // torn or bit-rotted record
		}
		rec := Record{
			LSN:   binary.LittleEndian.Uint64(payload[0:]),
			Op:    Op(payload[8]),
			Shard: int(binary.LittleEndian.Uint32(payload[9:])),
		}
		id := int64(binary.LittleEndian.Uint64(payload[13:]))
		dim := int(binary.LittleEndian.Uint32(payload[21:]))
		if plen != payloadFixed+4*dim {
			return last, true, nil
		}
		switch rec.Op {
		case OpUpsert:
			rec.ID = int(id)
			rec.Vec = make([]float32, dim)
			for i := range rec.Vec {
				rec.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[payloadFixed+4*i:]))
			}
		case OpDelete:
			rec.ID = int(id)
		case OpCheckpoint:
			rec.Durable = uint64(id)
		default:
			return last, false, fmt.Errorf("wal: unknown op %d at lsn %d", rec.Op, rec.LSN)
		}
		if rec.LSN <= last {
			return last, false, fmt.Errorf("wal: non-monotone lsn %d after %d", rec.LSN, last)
		}
		last = rec.LSN
		if fn != nil {
			if err := fn(rec); err != nil {
				return last, false, err
			}
		}
	}
}
