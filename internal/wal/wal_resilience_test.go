package wal

import (
	"errors"
	"testing"
	"time"

	"resinfer/internal/fault"
)

// TestAppendFaultTransient: an injected append error is transient —
// nothing is written, the next append succeeds, and replay sees exactly
// the acknowledged records.
func TestAppendFaultTransient(t *testing.T) {
	defer fault.Reset()
	l, err := Open(t.TempDir(), SyncAlways(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	disarm := fault.Inject(fault.Injection{Site: fault.SiteWALAppend, Err: errors.New("boom"), Limit: 1})
	defer disarm()
	if _, err := l.AppendUpsert(0, 1, []float32{1}); err == nil {
		t.Fatal("want injected append error")
	}
	if l.Failed() != nil {
		t.Fatalf("transient append error must not fail-stop the log: %v", l.Failed())
	}
	lsn, err := l.AppendUpsert(0, 1, []float32{1})
	if err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	if lsn != 1 {
		t.Fatalf("failed append must not consume an LSN: got %d, want 1", lsn)
	}
	st, err := l.Replay(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Upserts != 1 {
		t.Fatalf("replayed %d upserts, want 1", st.Upserts)
	}
}

// TestFsyncFailureFailStopAndRecover: an injected fsync error fail-stops
// the log — every later append is refused — until Recover abandons the
// poisoned segment; appends then continue on a fresh segment and replay
// stays monotone across both.
func TestFsyncFailureFailStopAndRecover(t *testing.T) {
	defer fault.Reset()
	l, err := Open(t.TempDir(), SyncAlways(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if _, err := l.AppendUpsert(0, 1, []float32{1}); err != nil {
		t.Fatal(err)
	}
	disarm := fault.Inject(fault.Injection{Site: fault.SiteWALFsync, Err: errors.New("io lost"), Limit: 1})
	if _, err := l.AppendUpsert(0, 2, []float32{2}); err == nil {
		t.Fatal("want injected fsync error")
	}
	disarm()
	if l.Failed() == nil {
		t.Fatal("fsync failure must fail-stop the log")
	}
	if _, err := l.AppendUpsert(0, 3, []float32{3}); err == nil {
		t.Fatal("append on a failed log must be refused")
	}
	if err := l.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if l.Failed() != nil {
		t.Fatalf("recover must clear the fail-stop state: %v", l.Failed())
	}
	if _, err := l.AppendUpsert(0, 3, []float32{3}); err != nil {
		t.Fatalf("append after recover: %v", err)
	}
	// The unsynced record (id 2) was written before its fsync failed; its
	// durability is unknown, and replay may legitimately surface it. What
	// must hold: no error, monotone LSNs, and both acknowledged records
	// present.
	ids := map[int]bool{}
	st, err := l.Replay(0, func(r Record) error {
		ids[r.ID] = true
		return nil
	})
	if err != nil {
		t.Fatalf("replay after recover: %v", err)
	}
	if !ids[1] || !ids[3] {
		t.Fatalf("acknowledged records lost: replayed IDs %v", ids)
	}
	if st.Upserts < 2 {
		t.Fatalf("replayed %d upserts, want >= 2", st.Upserts)
	}
}

// TestRecoverOnHealthyLogIsNoOp: Recover on a log that never failed
// does nothing and keeps the active segment appendable.
func TestRecoverOnHealthyLogIsNoOp(t *testing.T) {
	l, err := Open(t.TempDir(), SyncAlways(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendUpsert(0, 1, []float32{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendUpsert(0, 2, []float32{2}); err != nil {
		t.Fatal(err)
	}
	if got := l.SegmentCount(); got != 1 {
		t.Fatalf("no-op recover must not rotate: %d segments", got)
	}
}

// TestFsyncDelayInjection: an injected fsync delay slows appends without
// failing them — the knob the chaos harness uses to model a slow disk.
func TestFsyncDelayInjection(t *testing.T) {
	defer fault.Reset()
	l, err := Open(t.TempDir(), SyncAlways(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	disarm := fault.Inject(fault.Injection{Site: fault.SiteWALFsync, Delay: time.Millisecond})
	defer disarm()
	t0 := time.Now()
	if _, err := l.AppendUpsert(0, 1, []float32{1}); err != nil {
		t.Fatalf("delayed append must still succeed: %v", err)
	}
	if d := time.Since(t0); d < time.Millisecond {
		t.Fatalf("append took %v, want >= 1ms of injected latency", d)
	}
	if fault.Hits(fault.SiteWALFsync) == 0 {
		t.Fatal("fsync site never fired")
	}
}
