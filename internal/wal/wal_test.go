package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays the whole log into a slice.
func collect(t *testing.T, l *Log, after uint64) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	st, err := l.Replay(after, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, st
}

func TestCodecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	v1 := []float32{1.5, -2.25, 3.125}
	if lsn, err := l.AppendUpsert(2, 7, v1); err != nil || lsn != 1 {
		t.Fatalf("upsert: lsn=%d err=%v", lsn, err)
	}
	if lsn, err := l.AppendDelete(0, 7); err != nil || lsn != 2 {
		t.Fatalf("delete: lsn=%d err=%v", lsn, err)
	}
	// durable=1 does not cover record 2, so the first segment survives
	// the rotation and the full stream round-trips.
	if err := l.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.AppendUpsert(1, 9, nil); err != nil || lsn != 4 {
		t.Fatalf("post-checkpoint upsert: lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, st := collect(t, l2, 0)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4: %+v", len(recs), recs)
	}
	if recs[0].Op != OpUpsert || recs[0].ID != 7 || recs[0].Shard != 2 || recs[0].LSN != 1 {
		t.Fatalf("rec0: %+v", recs[0])
	}
	for i, want := range v1 {
		if recs[0].Vec[i] != want {
			t.Fatalf("rec0 vec[%d] = %v, want %v", i, recs[0].Vec[i], want)
		}
	}
	if recs[1].Op != OpDelete || recs[1].ID != 7 {
		t.Fatalf("rec1: %+v", recs[1])
	}
	if recs[2].Op != OpCheckpoint || recs[2].Durable != 1 {
		t.Fatalf("rec2: %+v", recs[2])
	}
	if recs[3].Op != OpUpsert || len(recs[3].Vec) != 0 {
		t.Fatalf("rec3: %+v", recs[3])
	}
	if st.Upserts != 2 || st.Deletes != 1 || st.Checkpoints != 1 || st.Torn != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.FirstLSN != 1 || st.LastLSN != 4 {
		t.Fatalf("lsn bounds: %+v", st)
	}
	// Replay floor skips covered records.
	recs, st = collect(t, l2, 2)
	if len(recs) != 2 || st.Skipped != 2 {
		t.Fatalf("filtered replay: %d records, skipped %d", len(recs), st.Skipped)
	}
}

func TestOpenContinuesLSNAndMinFloor(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.AppendUpsert(0, i, []float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.NextLSN(); got != 6 {
		t.Fatalf("NextLSN after reopen = %d, want 6", got)
	}
	if lsn, _ := l2.AppendDelete(0, 3); lsn != 6 {
		t.Fatalf("continued lsn = %d, want 6", lsn)
	}
	l2.Close()

	// A fresh directory with a snapshot floor starts above it.
	l3, err := Open(t.TempDir(), SyncNone(), 500)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if lsn, _ := l3.AppendDelete(0, 1); lsn != 501 {
		t.Fatalf("floored lsn = %d, want 501", lsn)
	}
}

// tornTail simulates a crash mid-write by truncating the newest segment.
func tornTail(t *testing.T, dir string, cut int64) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	path := segs[len(segs)-1]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}
}

func TestTornFinalRecordDropped(t *testing.T) {
	for _, cut := range []int64{1, 5, 20} {
		dir := t.TempDir()
		l, err := Open(dir, SyncNone(), 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := l.AppendUpsert(0, i, []float32{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		tornTail(t, dir, cut) // tear into the final record

		l2, err := Open(dir, SyncNone(), 0)
		if err != nil {
			t.Fatalf("cut %d: open after tear: %v", cut, err)
		}
		recs, st := collect(t, l2, 0)
		if len(recs) != 2 {
			t.Fatalf("cut %d: %d records survive, want 2", cut, len(recs))
		}
		if st.Torn != 1 {
			t.Fatalf("cut %d: torn=%d, want 1", cut, st.Torn)
		}
		// The reissued LSN reuses the torn (never-acknowledged) slot.
		if lsn, _ := l2.AppendDelete(0, 0); lsn != 3 {
			t.Fatalf("cut %d: next lsn %d, want 3", cut, lsn)
		}
		l2.Close()
	}
}

func TestCorruptPayloadDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	l.AppendUpsert(0, 1, []float32{1})
	l.AppendUpsert(0, 2, []float32{2})
	l.Close()
	// Flip a byte in the last record's payload: the CRC catches it.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, st := collect(t, l2, 0)
	if len(recs) != 1 || recs[0].ID != 1 || st.Torn != 1 {
		t.Fatalf("corrupt tail not dropped: %d recs, torn=%d", len(recs), st.Torn)
	}
}

func TestCheckpointRotatesAndTrims(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.AppendUpsert(0, i, []float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.SegmentCount(); n != 1 {
		t.Fatalf("segments before checkpoint: %d", n)
	}
	// Snapshot covers everything appended so far: the old segment is
	// obsolete and the new one holds only the checkpoint record.
	if err := l.Checkpoint(10); err != nil {
		t.Fatal(err)
	}
	if n := l.SegmentCount(); n != 1 {
		t.Fatalf("segments after covering checkpoint: %d, want 1", n)
	}
	recs, _ := collect(t, l, 0)
	if len(recs) != 1 || recs[0].Op != OpCheckpoint || recs[0].Durable != 10 {
		t.Fatalf("post-trim contents: %+v", recs)
	}

	// A checkpoint that does NOT cover the tail keeps the segment. The
	// four upserts land at LSNs 12–15; durable=12 leaves 13–15 live.
	for i := 10; i < 14; i++ {
		l.AppendUpsert(0, i, nil)
	}
	if err := l.Checkpoint(12); err != nil {
		t.Fatal(err)
	}
	if n := l.SegmentCount(); n != 2 {
		t.Fatalf("segments after partial checkpoint: %d, want 2", n)
	}
	recs, st := collect(t, l, 12)
	if st.Upserts != 3 || st.Checkpoints != 1 {
		t.Fatalf("records above durable: %+v (recs %+v)", st, recs)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), SyncAlways(), 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.AppendDelete(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	// All three policies produce identical on-disk record streams.
	for _, p := range []SyncPolicy{SyncAlways(), SyncNone(), SyncInterval(5 * time.Millisecond)} {
		dir := t.TempDir()
		l, err := Open(dir, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := l.AppendUpsert(i%3, i, []float32{float32(i), -float32(i)}); err != nil {
				t.Fatalf("%s: %v", p, err)
			}
		}
		// Do NOT close: simulate abandoning the process. Records were
		// written through per append, so a reopen still sees them all.
		l2, err := Open(dir, SyncNone(), 0)
		if err != nil {
			t.Fatal(err)
		}
		recs, _ := collect(t, l2, 0)
		if len(recs) != 20 {
			t.Fatalf("%s: %d records survive abandonment, want 20", p, len(recs))
		}
		l2.Close()
		l.Close()
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]string{
		"":              "always",
		"always":        "always",
		"none":          "none",
		"interval":      "interval=100ms",
		"interval=50ms": "interval=50ms",
	}
	for in, want := range cases {
		p, err := ParseSyncPolicy(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if p.String() != want {
			t.Fatalf("%q → %q, want %q", in, p.String(), want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := ParseSyncPolicy("interval=xyz"); err == nil {
		t.Fatal("bad interval accepted")
	}
}

func TestZeroValuePolicyIsAlways(t *testing.T) {
	var p SyncPolicy
	if p.String() != "always" {
		t.Fatalf("zero policy = %q, want always", p.String())
	}
}
