package resinfer

import (
	"errors"
	"fmt"

	"resinfer/internal/metric"
)

// MetricKind selects the similarity measure exposed by the index. All
// internal computation is squared Euclidean; cosine and inner product are
// reduced to it with the standard transformations (§II-A of the paper).
type MetricKind string

// Available metrics.
const (
	// L2 ranks by squared Euclidean distance (the default).
	L2 MetricKind = "l2"
	// Cosine ranks by descending cosine similarity. Data and queries are
	// unit-normalized internally; zero vectors are rejected.
	Cosine MetricKind = "cosine"
	// InnerProduct ranks by descending inner product. Data rows are
	// augmented with one coordinate internally.
	InnerProduct MetricKind = "ip"
)

// metricState carries the query-side transformation of a non-L2 index.
type metricState struct {
	kind MetricKind
	ip   *metric.IPTransform
}

// prepareData applies the metric reduction to the raw data rows before
// index construction. Returns the (possibly transformed) rows.
func prepareData(data [][]float32, kind MetricKind) ([][]float32, *metricState, error) {
	switch kind {
	case "", L2:
		return data, &metricState{kind: L2}, nil
	case Cosine:
		norm, err := metric.NormalizeForCosine(data)
		if err != nil {
			return nil, nil, err
		}
		return norm, &metricState{kind: Cosine}, nil
	case InnerProduct:
		tr, aug, err := metric.NewIPTransform(data)
		if err != nil {
			return nil, nil, err
		}
		return aug, &metricState{kind: InnerProduct, ip: tr}, nil
	}
	return nil, nil, fmt.Errorf("resinfer: unknown metric %q", kind)
}

// transformQuery maps a caller query into the index's internal space.
func (ms *metricState) transformQuery(q []float32) ([]float32, error) {
	switch ms.kind {
	case L2:
		return q, nil
	case Cosine:
		norm, err := metric.NormalizeForCosine([][]float32{q})
		if err != nil {
			return nil, err
		}
		return norm[0], nil
	case InnerProduct:
		return ms.ip.Query(q)
	}
	return nil, errors.New("resinfer: metric state corrupt")
}

// transformInto is transformQuery writing into dst (internal
// dimensionality), the allocation-free path for pooled searches. For L2
// the query needs no transformation and is returned as-is.
func (ms *metricState) transformInto(dst, q []float32) ([]float32, error) {
	switch ms.kind {
	case L2:
		return q, nil
	case Cosine:
		return metric.NormalizeForCosineInto(dst, q)
	case InnerProduct:
		return ms.ip.QueryInto(dst, q)
	}
	return nil, errors.New("resinfer: metric state corrupt")
}

// Score converts a Neighbor's internal squared distance into the metric's
// native score: squared distance for L2, cosine similarity for Cosine, and
// inner product for InnerProduct (which needs the original query).
func (ix *Index) Score(n Neighbor, q []float32) float32 {
	switch ix.metric.kind {
	case Cosine:
		return metric.CosineFromSqDist(n.Distance)
	case InnerProduct:
		return ix.metric.ip.IPFromSqDist(n.Distance, q)
	default:
		return n.Distance
	}
}

// Metric returns the index's similarity measure.
func (ix *Index) Metric() MetricKind { return ix.metric.kind }
