package resinfer

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"resinfer/internal/vec"
)

func randData(seed int64, n, d int) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(r.NormFloat64())
		}
		data[i] = row
	}
	return data
}

func TestCosineIndexMatchesBruteForce(t *testing.T) {
	data := randData(1, 800, 24)
	ix, err := New(data, HNSW, &Options{Seed: 2, Metric: Cosine, HNSWEfConstruction: 80})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Metric() != Cosine {
		t.Fatal("metric")
	}
	q := randData(99, 1, 24)[0]
	hits, err := ix.Search(q, 5, Exact, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force cosine ranking.
	type pair struct {
		id  int
		cos float64
	}
	qn := vec.Norm(q)
	ps := make([]pair, len(data))
	for i, row := range data {
		ps[i] = pair{i, vec.Dot64(q, row) / float64(qn) / float64(vec.Norm(row))}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].cos > ps[b].cos })
	want := map[int]bool{}
	for _, p := range ps[:5] {
		want[p.id] = true
	}
	match := 0
	for _, h := range hits {
		if want[h.ID] {
			match++
		}
		// Score converts back to cosine similarity.
		got := float64(ix.Score(h, q))
		exact := vec.Dot64(q, data[h.ID]) / float64(qn) / float64(vec.Norm(data[h.ID]))
		if math.Abs(got-exact) > 1e-3 {
			t.Fatalf("Score %v, brute cosine %v", got, exact)
		}
	}
	if match < 4 {
		t.Fatalf("cosine top-5 overlap %d/5", match)
	}
}

func TestInnerProductIndexMatchesBruteForce(t *testing.T) {
	data := randData(3, 800, 16)
	ix, err := New(data, HNSW, &Options{Seed: 4, Metric: InnerProduct, HNSWEfConstruction: 80})
	if err != nil {
		t.Fatal(err)
	}
	q := randData(55, 1, 16)[0]
	hits, err := ix.Search(q, 5, Exact, 80)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		id int
		ip float64
	}
	ps := make([]pair, len(data))
	for i, row := range data {
		ps[i] = pair{i, vec.Dot64(q, row)}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].ip > ps[b].ip })
	want := map[int]bool{}
	for _, p := range ps[:5] {
		want[p.id] = true
	}
	match := 0
	for _, h := range hits {
		if want[h.ID] {
			match++
		}
		got := float64(ix.Score(h, q))
		if math.Abs(got-vec.Dot64(q, data[h.ID])) > 1e-2 {
			t.Fatalf("Score %v, brute IP %v", got, vec.Dot64(q, data[h.ID]))
		}
	}
	if match < 4 {
		t.Fatalf("IP top-5 overlap %d/5", match)
	}
}

func TestMetricWithDDCRes(t *testing.T) {
	data := randData(5, 1000, 32)
	ix, err := New(data, HNSW, &Options{Seed: 6, Metric: Cosine, HNSWEfConstruction: 80})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	q := randData(77, 1, 32)[0]
	exact, err := ix.Search(q, 10, Exact, 60)
	if err != nil {
		t.Fatal(err)
	}
	ddc, err := ix.Search(q, 10, DDCRes, 60)
	if err != nil {
		t.Fatal(err)
	}
	// DDCres on the normalized data must agree with exact almost always.
	same := 0
	ex := map[int]bool{}
	for _, h := range exact {
		ex[h.ID] = true
	}
	for _, h := range ddc {
		if ex[h.ID] {
			same++
		}
	}
	if same < 9 {
		t.Fatalf("cosine DDCres overlap %d/10", same)
	}
}

func TestMetricSaveLoad(t *testing.T) {
	data := randData(7, 500, 12)
	ix, err := New(data, HNSW, &Options{Seed: 8, Metric: InnerProduct, HNSWEfConstruction: 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Metric() != InnerProduct {
		t.Fatal("metric lost in round trip")
	}
	q := randData(11, 1, 12)[0]
	a, err := ix.Search(q, 5, Exact, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search(q, 5, Exact, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("results differ after metric round trip")
		}
	}
}

func TestUnknownMetric(t *testing.T) {
	if _, err := New(randData(9, 10, 4), HNSW, &Options{Metric: MetricKind("hamming")}); err == nil {
		t.Fatal("expected unknown-metric error")
	}
}

func TestCosineRejectsZeroVector(t *testing.T) {
	data := randData(10, 10, 4)
	data[3] = []float32{0, 0, 0, 0}
	if _, err := New(data, HNSW, &Options{Metric: Cosine}); err == nil {
		t.Fatal("expected zero-vector error")
	}
}

func TestSearchBatch(t *testing.T) {
	ds, gt := apiFixtures(t)
	ix, err := New(ds.Data, HNSW, &Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.SearchBatch(ds.Queries, 10, Exact, 80, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ds.Queries) {
		t.Fatal("batch length")
	}
	results := make([][]int, len(res))
	for i, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		for _, n := range r.Neighbors {
			results[i] = append(results[i], n.ID)
		}
	}
	// Batch must match serial search exactly.
	for i, q := range ds.Queries[:3] {
		serial, err := ix.Search(q, 10, Exact, 80)
		if err != nil {
			t.Fatal(err)
		}
		for j := range serial {
			if serial[j].ID != res[i].Neighbors[j].ID {
				t.Fatal("batch result differs from serial")
			}
		}
	}
	_ = gt
	if _, err := ix.SearchBatch(nil, 10, Exact, 80, 0); err == nil {
		t.Fatal("expected empty-batch error")
	}
}

func TestSearchBatchMalformedFailsFast(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data[:200], HNSW, &Options{Seed: 23, HNSWEfConstruction: 40})
	if err != nil {
		t.Fatal(err)
	}
	// A dimension mismatch anywhere in the batch is detected up front and
	// fails the whole call with one error, before any search runs.
	bad := [][]float32{ds.Queries[0], ds.Queries[1][:5]}
	if _, err := ix.SearchBatch(bad, 5, Exact, 20, 2); err == nil {
		t.Fatal("expected up-front dim-mismatch error")
	}
	// Errors that are not statically detectable are still reported per
	// query rather than aborting the batch.
	res, err := ix.SearchBatch(ds.Queries[:2], 5, DDCRes, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err == nil {
			t.Fatal("mode not enabled must surface per query")
		}
	}
}
