package resinfer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"resinfer/internal/obs"
	"resinfer/internal/persist"
	"resinfer/internal/stream"
	"resinfer/internal/wal"
)

// Default streaming-ingestion knobs, materialized by
// MutableOptions.withDefaults.
const (
	// DefaultCompactThreshold is the per-shard memtable depth that
	// triggers a background compaction.
	DefaultCompactThreshold = 1024
)

// streamMagic marks the segment-aware mutable container: a header (ID
// allocator, compaction knobs, WAL position, recorded comparator
// trainings), the embedded RESSHARD2 sharded payload, and one memtable +
// tombstone section per shard — so an index saved mid-compaction, with a
// non-empty memtable and pending tombstones, round-trips losslessly.
// Version 2 added the applied-WAL-LSN header field, the durability
// anchor recovery replays the log against; v1 files (no WAL position)
// still load.
const (
	streamMagic   = "RESSTRM2"
	streamMagicV1 = "RESSTRM1"
)

// MutableOptions tunes a streaming (mutable) sharded index. The zero
// value gives round-robin sharding, a 1024-row compaction threshold, and
// background auto-compaction.
type MutableOptions struct {
	// Strategy assigns the initial data rows to shards (default
	// RoundRobin). Fresh inserts always round-robin regardless.
	Strategy ShardStrategy
	// SearchWorkers bounds how many shards one Search queries
	// concurrently (default GOMAXPROCS).
	SearchWorkers int
	// Index configures each sub-index (see Options); it is also the
	// configuration compaction rebuilds shards with.
	Index *Options
	// CompactThreshold is the per-shard memtable depth that triggers a
	// background compaction (default 1024).
	CompactThreshold int
	// TombstoneThreshold is the per-shard pending-delete count that
	// triggers a background compaction (default CompactThreshold).
	TombstoneThreshold int
	// DisableAutoCompact turns the background compactor off; segments
	// then only fold back into the base via explicit Compact calls.
	DisableAutoCompact bool
	// WALDir, when non-empty, makes mutations crash-durable: every
	// Add/Upsert/Delete is appended to a write-ahead log in this
	// directory before it is applied, records found there are replayed
	// at construction, and each completed compaction checkpoints the
	// full state into the directory and trims the log. WAL settings are
	// deployment-local: they are never persisted by Save and always come
	// from the options at hand.
	WALDir string
	// WALSync is the log's fsync policy (default WALSyncAlways); see
	// WALSyncAlways, WALSyncInterval, WALSyncNone.
	WALSync WALSync
}

func (o *MutableOptions) withDefaults() MutableOptions {
	var out MutableOptions
	if o != nil {
		out = *o
	}
	if out.CompactThreshold <= 0 {
		out.CompactThreshold = DefaultCompactThreshold
	}
	if out.TombstoneThreshold <= 0 {
		out.TombstoneThreshold = out.CompactThreshold
	}
	return out
}

// MutationStats is the streaming-ingestion counter set surfaced by
// MutableIndex.MutationStats (and, through internal/server, at /stats).
type MutationStats struct {
	// Inserts counts Add and Upsert calls accepted.
	Inserts int64 `json:"inserts"`
	// Deletes counts Delete calls that removed a live row.
	Deletes int64 `json:"deletes"`
	// Compactions counts completed shard compactions (hot swaps).
	Compactions int64 `json:"compactions"`
	// CompactErrors counts failed compaction attempts.
	CompactErrors int64 `json:"compact_errors"`
	// MemtableRows is the current total memtable depth across shards.
	MemtableRows int `json:"memtable_rows"`
	// Tombstones is the current total pending-delete count across shards.
	Tombstones int `json:"tombstones"`
	// LastSwapMicros is the write-lock hold time of the most recent hot
	// swap — the only moment a compaction can delay searches.
	LastSwapMicros int64 `json:"last_swap_micros"`
	// MaxSwapMicros is the worst hot-swap hold time observed.
	MaxSwapMicros int64 `json:"max_swap_micros"`
	// LastBuildMillis is the off-path rebuild+retrain time of the most
	// recent compaction.
	LastBuildMillis int64 `json:"last_build_millis"`
	// WALEnabled reports whether mutations go through a write-ahead log.
	WALEnabled bool `json:"wal_enabled,omitempty"`
	// WALLastLSN is the sequence number of the newest logged record.
	WALLastLSN uint64 `json:"wal_last_lsn,omitempty"`
	// WALSegments is how many log segment files exist (bounded by
	// checkpoint trimming).
	WALSegments int `json:"wal_segments,omitempty"`
	// WALCheckpoints counts checkpoint snapshots written after
	// compactions.
	WALCheckpoints int64 `json:"wal_checkpoints,omitempty"`
	// WALCheckpointErrors counts failed checkpoint attempts (the index
	// stays correct; the log just keeps more history than necessary).
	WALCheckpointErrors int64 `json:"wal_checkpoint_errors,omitempty"`
}

// MutableIndex is a sharded AKNN index whose corpus can change while it
// serves: Add/Upsert append to per-shard memtable segments (scanned
// exactly, so recall on fresh vectors is perfect), Delete tombstones
// rows out of sight immediately, and a background compactor folds both
// back into rebuilt base indexes — retraining their distance comparators
// — then hot-swaps them in with zero search downtime.
//
// Concurrency: any number of goroutines may search concurrently with
// mutations and compactions. Mutations serialize internally. Global IDs
// are stable for the life of a row: Add assigns them, searches report
// them, and compaction preserves them.
type MutableIndex struct {
	sx  *ShardedIndex
	cfg MutableOptions

	inserts        atomic.Int64
	deletes        atomic.Int64
	compactions    atomic.Int64
	compactErrors  atomic.Int64
	lastSwapMicros atomic.Int64
	maxSwapMicros  atomic.Int64
	lastBuildMs    atomic.Int64
	walCkpts       atomic.Int64
	walCkptErrs    atomic.Int64

	walRec WALRecovery // what construction replayed (zero without WAL)

	// compactObs, when set, receives one CompactionInfo per completed
	// shard compaction. Atomic because the background compactor may
	// already be running when the observer is installed.
	compactObs atomic.Pointer[func(CompactionInfo)]

	kick     chan struct{}
	done     chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

// NewMutable builds a mutable sharded index of the given kind over the
// initial data (row index = global ID, exactly as with NewSharded) and
// starts its background compactor. With WALDir set, mutation records
// already in the directory are replayed onto the fresh index before it
// is returned — the recovery path for deterministically rebuilt corpora
// that crashed before their first compaction checkpoint. A directory
// that does hold a checkpoint snapshot is refused: rebuilding over it
// would silently ignore durable state; use RecoverMutable.
func NewMutable(data [][]float32, kind IndexKind, nShards int, opts *MutableOptions) (*MutableIndex, error) {
	o := opts.withDefaults()
	sx, err := NewSharded(data, kind, nShards, &ShardOptions{
		Strategy:      o.Strategy,
		SearchWorkers: o.SearchWorkers,
		Index:         o.Index,
	})
	if err != nil {
		return nil, err
	}
	sx.enableMutation(o.Index)
	var rec WALRecovery
	if o.WALDir != "" {
		if _, err := os.Stat(walCheckpointPath(o.WALDir)); err == nil {
			return nil, fmt.Errorf(
				"resinfer: %s holds a checkpoint snapshot; use RecoverMutable instead of rebuilding over it",
				o.WALDir)
		}
		rec, err = attachWAL(sx, o, 0)
		if err != nil {
			return nil, err
		}
	}
	mx := newMutableAround(sx, o)
	mx.walRec = rec
	return mx, nil
}

// newMutableAround wraps an already mutation-enabled ShardedIndex and
// starts the compactor (shared by NewMutable and LoadMutable).
func newMutableAround(sx *ShardedIndex, o MutableOptions) *MutableIndex {
	mx := &MutableIndex{
		sx:   sx,
		cfg:  o,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if !o.DisableAutoCompact {
		mx.wg.Add(1)
		go mx.compactorLoop()
	}
	return mx
}

// Close stops the background compactor and closes the write-ahead log
// if one is attached. Pending memtable rows and tombstones stay in
// place (and persist through Save); searches keep working. Without a
// WAL, mutations and explicit Compact calls keep working too; with one,
// further mutations fail — the durability guarantee would otherwise be
// silently void.
func (mx *MutableIndex) Close() {
	mx.closeOne.Do(func() { close(mx.done) })
	mx.wg.Wait()
	if w := mx.sx.mut.wal; w != nil {
		_ = w.Close()
	}
}

// Add ingests a fresh vector and returns its assigned global ID.
func (mx *MutableIndex) Add(v []float32) (int, error) {
	id, err := mx.sx.mutUpsert(-1, v)
	if err != nil {
		return 0, err
	}
	mx.inserts.Add(1)
	mx.maybeKick()
	return id, nil
}

// Upsert writes a vector under an explicit global ID (replacing the live
// row if one exists); a negative ID asks for auto-assignment. It returns
// the row's final ID.
func (mx *MutableIndex) Upsert(id int, v []float32) (int, error) {
	gid, err := mx.sx.mutUpsert(id, v)
	if err != nil {
		return 0, err
	}
	mx.inserts.Add(1)
	mx.maybeKick()
	return gid, nil
}

// Delete removes the row with the given global ID, reporting whether it
// was live.
func (mx *MutableIndex) Delete(id int) (bool, error) {
	ok, err := mx.sx.Delete(id)
	if err != nil {
		return false, err
	}
	if ok {
		mx.deletes.Add(1)
		mx.maybeKick()
	}
	return ok, nil
}

// Compact synchronously compacts every shard with pending segments,
// regardless of thresholds, and returns how many shards were rebuilt.
// Searches keep running throughout. With a WAL attached, one checkpoint
// covering the whole pass is written at the end.
func (mx *MutableIndex) Compact() (int, error) {
	var compacted int
	var firstErr error
	for s := 0; s < mx.sx.NumShards(); s++ {
		did, err := mx.runCompact(s)
		if did {
			compacted++
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if compacted > 0 {
		if err := mx.maybeWALCheckpoint(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return compacted, firstErr
}

// maybeKick wakes the background compactor; wake-ups coalesce through
// the 1-buffered channel.
func (mx *MutableIndex) maybeKick() {
	if mx.cfg.DisableAutoCompact {
		return
	}
	select {
	case mx.kick <- struct{}{}:
	default:
	}
}

// compactorLoop waits for mutation kicks and compacts every shard whose
// memtable or tombstone set crossed its threshold. Compactions run one
// at a time so at most one shard rebuild competes with serving for CPU.
func (mx *MutableIndex) compactorLoop() {
	defer mx.wg.Done()
	for {
		select {
		case <-mx.done:
			return
		case <-mx.kick:
		}
		var compacted bool
		for s := 0; s < mx.sx.NumShards(); s++ {
			select {
			case <-mx.done:
				return
			default:
			}
			mem, dead := mx.sx.segDepth(s)
			if mem >= mx.cfg.CompactThreshold || dead >= mx.cfg.TombstoneThreshold {
				if did, _ := mx.runCompact(s); did {
					compacted = true
				}
			}
		}
		// One checkpoint covers the whole sweep — a wave that rebuilds
		// every shard serializes the full state once, not once per shard.
		if compacted {
			mx.maybeWALCheckpoint()
		}
	}
}

// runCompact compacts one shard and records the outcome counters.
func (mx *MutableIndex) runCompact(s int) (bool, error) {
	did, info, err := mx.sx.compactShard(s)
	if err != nil {
		mx.compactErrors.Add(1)
		return false, err
	}
	if !did {
		return false, nil
	}
	mx.compactions.Add(1)
	mx.lastBuildMs.Store(info.buildDur.Milliseconds())
	swap := info.swapDur.Microseconds()
	mx.lastSwapMicros.Store(swap)
	for {
		cur := mx.maxSwapMicros.Load()
		if swap <= cur || mx.maxSwapMicros.CompareAndSwap(cur, swap) {
			break
		}
	}
	if fn := mx.compactObs.Load(); fn != nil {
		(*fn)(CompactionInfo{
			Shard:         info.shard,
			Rows:          info.rows,
			MemtableRows:  info.memRows,
			Tombstones:    info.dead,
			BuildDuration: info.buildDur,
			SwapDuration:  info.swapDur,
		})
	}
	return true, nil
}

// CompactionInfo describes one completed shard compaction, delivered to
// the observer installed with SetCompactionObserver.
type CompactionInfo struct {
	// Shard is the compacted shard.
	Shard int
	// Rows is the row count of the rebuilt base segment.
	Rows int
	// MemtableRows is how many memtable rows were folded in.
	MemtableRows int
	// Tombstones is how many pending deletes were retired.
	Tombstones int
	// BuildDuration is the off-path rebuild + retrain time.
	BuildDuration time.Duration
	// SwapDuration is the write-lock hold time of the hot swap.
	SwapDuration time.Duration
}

// SetCompactionObserver installs fn to be called after every completed
// shard compaction (from the compacting goroutine — background
// compactor or an explicit Compact caller). Safe to install at any
// time; fn must be safe for concurrent use with itself.
func (mx *MutableIndex) SetCompactionObserver(fn func(CompactionInfo)) {
	if fn == nil {
		mx.compactObs.Store(nil)
		return
	}
	mx.compactObs.Store(&fn)
}

// SetShardObserver forwards to ShardedIndex.SetShardObserver: fn
// receives every shard probe's duration and work counters. Install it
// before searches begin.
func (mx *MutableIndex) SetShardObserver(fn func(shard int, d time.Duration, st SearchStats)) {
	mx.sx.SetShardObserver(fn)
}

// SetWALObserver installs fn on the attached write-ahead log to
// receive per-append instrumentation (total append latency and the
// fsync portion). It reports whether a WAL is attached; without one it
// is a no-op returning false.
func (mx *MutableIndex) SetWALObserver(fn func(appendDur, syncDur time.Duration)) bool {
	w := mx.sx.mut.wal
	if w == nil {
		return false
	}
	w.SetObserver(fn)
	return true
}

// SearchWithStatsTraced is SearchWithStats recording per-stage and
// per-shard timings into tr (nil tr is exactly SearchWithStats).
func (mx *MutableIndex) SearchWithStatsTraced(q []float32, k int, mode Mode, budget int, tr *obs.Trace) ([]Neighbor, SearchStats, error) {
	return mx.sx.SearchWithStatsTraced(q, k, mode, budget, tr)
}

// SearchBatchTraced is SearchBatch with optional per-query tracing;
// see ShardedIndex.SearchBatchTraced.
func (mx *MutableIndex) SearchBatchTraced(queries [][]float32, k int, mode Mode, budget, workers int, traces []*obs.Trace) ([]BatchResult, error) {
	return mx.sx.SearchBatchTraced(queries, k, mode, budget, workers, traces)
}

// maybeWALCheckpoint makes the current state the WAL's durability point
// after a compaction pass (no-op without a WAL). A failed checkpoint
// leaves the index correct — the log merely keeps more replay history —
// so callers surface the error but continue serving.
func (mx *MutableIndex) maybeWALCheckpoint() error {
	if mx.sx.mut.wal == nil {
		return nil
	}
	if err := mx.walCheckpoint(); err != nil {
		mx.walCkptErrs.Add(1)
		return fmt.Errorf("resinfer: wal checkpoint after compaction: %w", err)
	}
	return nil
}

// Degraded returns the error that flipped the index read-only after a
// persistent WAL failure, or nil while writes are healthy. Searches
// keep serving in either state; internal/server feeds this into
// GET /readyz.
func (mx *MutableIndex) Degraded() error {
	return mx.sx.mut.degradedErr()
}

// ClearDegraded re-arms writes after degradation: the WAL's fail-stop
// state is recovered (the poisoned segment is abandoned; the next append
// opens a fresh one) and the degraded flag clears. It fails — and the
// index stays degraded — if the log cannot be recovered. A no-op on a
// healthy index. Call it only once the underlying fault (a full or
// failing disk, usually) is actually fixed; an immediately recurring
// append failure just degrades the index again.
func (mx *MutableIndex) ClearDegraded() error {
	m := mx.sx.mut
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.degraded.Load() == nil {
		return nil
	}
	if m.wal != nil {
		if err := m.wal.Recover(); err != nil {
			return fmt.Errorf("resinfer: clearing degraded state: %w", err)
		}
	}
	m.degraded.Store(nil)
	return nil
}

// SyncWAL forces an fsync of the attached write-ahead log (a no-op
// without one); the graceful-shutdown drain calls it so every
// acknowledged mutation is on disk before the process exits.
func (mx *MutableIndex) SyncWAL() error {
	w := mx.sx.mut.wal
	if w == nil {
		return nil
	}
	return w.Sync()
}

// Checkpoint writes a checkpoint snapshot covering the current state
// and trims the log behind it (a no-op without a WAL) — the same
// operation a completed compaction pass performs. The graceful-shutdown
// drain calls it so a clean stop leaves nothing to replay.
func (mx *MutableIndex) Checkpoint() error {
	return mx.maybeWALCheckpoint()
}

// AppliedLSN returns the LSN of the last WAL record applied to this
// index: what a snapshot taken now would cover. It is 0 when no WAL is
// attached and no WAL-backed snapshot was loaded. The replication
// primary reports it so followers can tell when they have caught up.
func (mx *MutableIndex) AppliedLSN() uint64 {
	return mx.sx.mut.appliedLSN.Load()
}

// WALReplay replays every record of the attached log with LSN > after
// into fn — the tail-serving half of replication catch-up: the primary
// streams the records a follower's cursor is missing. It returns
// ErrNoWAL when the index has no log attached.
func (mx *MutableIndex) WALReplay(after uint64, fn func(wal.Record) error) (wal.ReplayStats, error) {
	w := mx.sx.mut.wal
	if w == nil {
		return wal.ReplayStats{}, ErrNoWAL
	}
	return w.Replay(after, fn)
}

// ErrNoWAL reports a WAL-dependent operation on an index running
// without a write-ahead log.
var ErrNoWAL = errors.New("resinfer: no write-ahead log attached")

// MutationStats snapshots the streaming counters.
func (mx *MutableIndex) MutationStats() MutationStats {
	st := MutationStats{
		Inserts:         mx.inserts.Load(),
		Deletes:         mx.deletes.Load(),
		Compactions:     mx.compactions.Load(),
		CompactErrors:   mx.compactErrors.Load(),
		LastSwapMicros:  mx.lastSwapMicros.Load(),
		MaxSwapMicros:   mx.maxSwapMicros.Load(),
		LastBuildMillis: mx.lastBuildMs.Load(),
	}
	for s := 0; s < mx.sx.NumShards(); s++ {
		mem, dead := mx.sx.segDepth(s)
		st.MemtableRows += mem
		st.Tombstones += dead
	}
	if w := mx.sx.mut.wal; w != nil {
		st.WALEnabled = true
		st.WALLastLSN = w.LastLSN()
		st.WALSegments = w.SegmentCount()
		st.WALCheckpoints = mx.walCkpts.Load()
		st.WALCheckpointErrors = mx.walCkptErrs.Load()
	}
	return st
}

// Sharded returns the underlying sharded index (shared state — callers
// must not mutate it except through this wrapper).
func (mx *MutableIndex) Sharded() *ShardedIndex { return mx.sx }

// Search, SearchWithStats, SearchInto and SearchBatch mirror
// ShardedIndex; results reflect every mutation that completed before the
// call and never include deleted rows.
func (mx *MutableIndex) Search(q []float32, k int, mode Mode, budget int) ([]Neighbor, error) {
	return mx.sx.Search(q, k, mode, budget)
}

// SearchWithStats is Search plus the aggregated work counters.
func (mx *MutableIndex) SearchWithStats(q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	return mx.sx.SearchWithStats(q, k, mode, budget)
}

// SearchInto is SearchWithStats appending the hits to dst.
func (mx *MutableIndex) SearchInto(dst []Neighbor, q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	return mx.sx.SearchInto(dst, q, k, mode, budget)
}

// SearchBatch runs Search for every query concurrently.
func (mx *MutableIndex) SearchBatch(queries [][]float32, k int, mode Mode, budget, workers int) ([]BatchResult, error) {
	return mx.sx.SearchBatch(queries, k, mode, budget, workers)
}

// SearchWithStatsCtx is SearchWithStats under a deadline, with
// partial-result merging and hedged fan-out armed; see
// ShardedIndex.SearchWithStatsCtx.
func (mx *MutableIndex) SearchWithStatsCtx(ctx context.Context, q []float32, k int, mode Mode, budget int, tr *obs.Trace) ([]Neighbor, SearchStats, error) {
	return mx.sx.SearchWithStatsCtx(ctx, q, k, mode, budget, tr)
}

// SearchBatchCtx is SearchBatch under a deadline; see
// ShardedIndex.SearchBatchCtx.
func (mx *MutableIndex) SearchBatchCtx(ctx context.Context, queries [][]float32, k int, mode Mode, budget, workers int, traces []*obs.Trace) ([]BatchResult, error) {
	return mx.sx.SearchBatchCtx(ctx, queries, k, mode, budget, workers, traces)
}

// Enable trains and installs a self-calibrating comparator on every
// shard; compactions retrain it on rebuilt shards automatically.
func (mx *MutableIndex) Enable(mode Mode, opts *Options) error {
	return mx.sx.Enable(mode, opts)
}

// EnableWithTraining trains and installs any comparator on every shard;
// the training queries are retained so compactions can retrain rebuilt
// shards.
func (mx *MutableIndex) EnableWithTraining(mode Mode, trainQueries [][]float32, opts *Options) error {
	return mx.sx.EnableWithTraining(mode, trainQueries, opts)
}

// Enabled reports whether the mode's comparator is ready on every shard.
func (mx *MutableIndex) Enabled(mode Mode) bool { return mx.sx.Enabled(mode) }

// Len returns the live row count (inserts minus deletes).
func (mx *MutableIndex) Len() int { return mx.sx.Len() }

// Dim returns the internal vector dimensionality.
func (mx *MutableIndex) Dim() int { return mx.sx.Dim() }

// QueryDim returns the dimensionality callers must present vectors in.
func (mx *MutableIndex) QueryDim() int { return mx.sx.QueryDim() }

// NumShards returns the shard count.
func (mx *MutableIndex) NumShards() int { return mx.sx.NumShards() }

// Kind returns the shards' index structure.
func (mx *MutableIndex) Kind() IndexKind { return mx.sx.Kind() }

// Metric returns the index's similarity measure.
func (mx *MutableIndex) Metric() MetricKind { return mx.sx.Metric() }

// Modes lists the comparators enabled on every shard.
func (mx *MutableIndex) Modes() []Mode { return mx.sx.Modes() }

// Score converts a returned Neighbor into the metric's native score.
func (mx *MutableIndex) Score(n Neighbor, q []float32) float32 { return mx.sx.Score(n, q) }

// GroundTruthSearch runs an exact, mutation-aware brute-force top-k
// scan; see ShardedIndex.GroundTruthSearch.
func (mx *MutableIndex) GroundTruthSearch(dst []Neighbor, shards []int, q []float32, k int) ([]Neighbor, []int, int, error) {
	return mx.sx.GroundTruthSearch(dst, shards, q, k)
}

// WALSyncPolicy describes the attached WAL's fsync policy ("none" when
// the index runs without a WAL) — a build/deploy property surfaced by
// the server's build-info metric.
func (mx *MutableIndex) WALSyncPolicy() string {
	if mx.sx.mut == nil || mx.sx.mut.wal == nil {
		return "none"
	}
	return mx.cfg.WALSync.String()
}

// Save serializes the mutable index — the sharded payload plus every
// shard's memtable and tombstone segments and the ID allocator — so a
// mid-compaction state (memtable non-empty, tombstones pending)
// round-trips losslessly. Mutations and hot swaps pause for the duration
// of the write; searches do not.
func (mx *MutableIndex) Save(w io.Writer) error {
	_, err := mx.save(w)
	return err
}

// save is Save returning the applied-WAL-LSN the snapshot covers — the
// durability point walCheckpoint hands to the log's trimmer.
func (mx *MutableIndex) save(w io.Writer) (uint64, error) {
	m := mx.sx.mut
	m.mu.Lock()
	defer m.mu.Unlock()
	// Stable under m.mu: mutations advance it only while holding the
	// same lock.
	walLSN := m.appliedLSN.Load()
	pw := persist.NewWriter(w)
	pw.Magic(streamMagic)
	pw.Int(m.nextID)
	pw.Int(m.rr)
	pw.I64(m.liveN.Load())
	pw.Int(mx.cfg.CompactThreshold)
	pw.Int(mx.cfg.TombstoneThreshold)
	pw.Bool(mx.cfg.DisableAutoCompact)
	pw.U64(walLSN)
	encodeOptions(pw, m.indexOpts)
	pw.Int(len(m.enables))
	for _, e := range m.enables {
		pw.String(string(e.mode))
		pw.Bool(e.withTraining)
		encodeOptions(pw, e.opts)
		pw.F32Mat(e.trainQueries)
	}
	if err := mx.sx.encodeSharded(pw); err != nil {
		return 0, err
	}
	for _, seg := range m.segs {
		seg.mu.RLock()
		seg.mem.Encode(pw)
		seg.dead.Encode(pw)
		seg.mu.RUnlock()
	}
	return walLSN, pw.Flush()
}

// LoadMutable deserializes a mutable index written by Save and starts
// its background compactor. opts may be nil; when given, its
// deployment-local knobs overlay the persisted configuration: WALDir
// and WALSync always (they are never persisted), the compaction
// thresholds when explicitly non-zero. With a WALDir, every log record
// newer than the persisted state (its applied-WAL-LSN header field) is
// replayed onto the loaded index before it is returned, and subsequent
// mutations append to the log.
func LoadMutable(r io.Reader, opts *MutableOptions) (*MutableIndex, error) {
	// Two header layouts share the stream structure: v2 carries the
	// applied-WAL-LSN, v1 (pre-WAL) does not. Sniff the magic by hand so
	// both load.
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("resinfer: reading mutable-index magic: %w", err)
	}
	var withLSN bool
	switch string(magic[:]) {
	case streamMagic:
		withLSN = true
	case streamMagicV1:
		withLSN = false
	default:
		return nil, fmt.Errorf("resinfer: bad mutable-index magic %q (want %s or %s)",
			magic, streamMagic, streamMagicV1)
	}
	pr := persist.NewReader(r)
	nextID := pr.Int()
	rr := pr.Int()
	liveN := pr.I64()
	cfg := MutableOptions{
		CompactThreshold:   pr.Int(),
		TombstoneThreshold: pr.Int(),
		DisableAutoCompact: pr.Bool(),
	}
	var walLSN uint64
	if withLSN {
		walLSN = pr.U64()
	}
	if opts != nil {
		cfg.WALDir = opts.WALDir
		cfg.WALSync = opts.WALSync
		if opts.CompactThreshold > 0 {
			cfg.CompactThreshold = opts.CompactThreshold
		}
		if opts.TombstoneThreshold > 0 {
			cfg.TombstoneThreshold = opts.TombstoneThreshold
		}
		if opts.DisableAutoCompact {
			cfg.DisableAutoCompact = true
		}
	}
	indexOpts := decodeOptions(pr)
	nEnables := pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if nEnables < 0 || nEnables > 64 {
		return nil, errors.New("resinfer: corrupt recorded-enable count")
	}
	if rr < 0 || nextID < 0 || liveN < 0 {
		return nil, fmt.Errorf("resinfer: corrupt stream header (nextID=%d rr=%d liveN=%d)", nextID, rr, liveN)
	}
	enables := make([]recordedEnable, 0, nEnables)
	for i := 0; i < nEnables; i++ {
		e := recordedEnable{
			mode:         Mode(pr.String()),
			withTraining: pr.Bool(),
			opts:         decodeOptions(pr),
			trainQueries: pr.F32Mat(),
		}
		if err := pr.Err(); err != nil {
			return nil, err
		}
		if len(e.trainQueries) == 0 {
			e.trainQueries = nil
		}
		enables = append(enables, e)
	}
	sx, err := decodeSharded(pr)
	if err != nil {
		return nil, err
	}
	sx.enableMutation(indexOpts)
	m := sx.mut
	m.enables = enables
	m.rr = rr
	for s := range m.segs {
		mem, err := stream.DecodeMemtable(pr)
		if err != nil {
			return nil, fmt.Errorf("resinfer: decoding shard %d memtable: %w", s, err)
		}
		if mem.Dim() != sx.userDim {
			return nil, fmt.Errorf("resinfer: shard %d memtable dim %d, index expects %d",
				s, mem.Dim(), sx.userDim)
		}
		dead, err := stream.DecodeTombstones(pr)
		if err != nil {
			return nil, fmt.Errorf("resinfer: decoding shard %d tombstones: %w", s, err)
		}
		m.segs[s].mem = mem
		m.segs[s].dead = dead
		// Recount the hidden base rows (enableMutation saw empty segments).
		seg := m.segs[s]
		seg.hidden = 0
		for _, gid := range dead.IDs() {
			if _, ok := seg.baseHas[gid]; ok {
				seg.hidden++
			}
		}
		for i := 0; i < mem.Len(); i++ {
			gid := mem.ID(i)
			if _, ok := seg.baseHas[gid]; !ok {
				continue
			}
			if !dead.Has(gid) {
				seg.hidden++
			}
		}
	}
	// Rebuild the ownership map against the decoded segments: base rows
	// that are tombstoned or shadowed are not live, memtable rows are.
	clear(m.owner)
	maxID := -1
	for s := range m.segs {
		for _, gid := range sx.globalID[s] {
			if gid > maxID {
				maxID = gid
			}
			if m.segs[s].dead.Has(gid) || m.segs[s].mem.Has(gid) {
				continue
			}
			m.owner[gid] = s
		}
	}
	for s := range m.segs {
		mem := m.segs[s].mem
		for i := 0; i < mem.Len(); i++ {
			id := mem.ID(i)
			if id > maxID {
				maxID = id
			}
			m.owner[id] = s
		}
	}
	if nextID <= maxID {
		nextID = maxID + 1
	}
	m.nextID = nextID
	m.liveN.Store(int64(len(m.owner)))
	if got := int64(len(m.owner)); got != liveN {
		return nil, fmt.Errorf("resinfer: stream records %d live rows, segments yield %d", liveN, got)
	}
	m.appliedLSN.Store(walLSN)
	var rec WALRecovery
	if cfg.WALDir != "" {
		rec, err = attachWAL(sx, cfg, walLSN)
		if err != nil {
			return nil, err
		}
	}
	mx := newMutableAround(sx, cfg)
	mx.walRec = rec
	return mx, nil
}

// SaveFile writes the mutable index to a file.
func (mx *MutableIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := mx.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadMutableFile reads a mutable index from a file written by SaveFile;
// opts behaves exactly as in LoadMutable.
func LoadMutableFile(path string, opts *MutableOptions) (*MutableIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadMutable(f, opts)
}

// encodeOptions writes an optional Options block field by field (the
// struct is small and flat; an explicit field list keeps the stream
// stable if the struct grows).
func encodeOptions(pw *persist.Writer, o *Options) {
	pw.Bool(o != nil)
	if o == nil {
		return
	}
	pw.Int(o.HNSWM)
	pw.Int(o.HNSWEfConstruction)
	pw.Int(o.IVFNList)
	pw.F64(o.ADSEpsilon0)
	pw.F64(o.ResMultiplier)
	pw.Int(o.DeltaD)
	pw.F64(o.TargetRecall)
	pw.Int(o.OPQSubspaces)
	pw.String(string(o.Metric))
	pw.I64(o.Seed)
}

// decodeOptions reads a block written by encodeOptions.
func decodeOptions(pr *persist.Reader) *Options {
	if !pr.Bool() {
		return nil
	}
	o := &Options{}
	o.HNSWM = pr.Int()
	o.HNSWEfConstruction = pr.Int()
	o.IVFNList = pr.Int()
	o.ADSEpsilon0 = pr.F64()
	o.ResMultiplier = pr.F64()
	o.DeltaD = pr.Int()
	o.TargetRecall = pr.F64()
	o.OPQSubspaces = pr.Int()
	o.Metric = MetricKind(pr.String())
	o.Seed = pr.I64()
	return o
}
