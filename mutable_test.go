package resinfer

// Streaming-ingestion pin-downs: mutable searches must equal an exact
// brute-force scan over the live row set (base segments minus tombstones
// and shadowed rows, plus memtables), IDs must be stable across
// compaction, a mid-compaction state must persist losslessly, and — under
// `go test -race` — searches must stay exact with zero failures while
// compaction hot-swaps shard bases underneath them.

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"resinfer/internal/vec"
)

// liveModel is the reference corpus: the id → vector map a correct
// mutable index must behave as.
type liveModel map[int][]float32

func (lm liveModel) clone() liveModel {
	out := make(liveModel, len(lm))
	for id, v := range lm {
		out[id] = v
	}
	return out
}

// exactTopK brute-force ranks the model by the same merge key the index
// uses (squared L2 for L2, negated dot for InnerProduct) with the same
// kernels, so distances compare bit-for-bit.
func (lm liveModel) exactTopK(q []float32, k int, metric MetricKind) []Neighbor {
	out := make([]Neighbor, 0, len(lm))
	for id, v := range lm {
		var key float32
		if metric == InnerProduct {
			key = -vec.Dot(q, v)
		} else {
			key = vec.L2Sq(q, v)
		}
		out = append(out, Neighbor{ID: id, Distance: key})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func randRows(rng *rand.Rand, n, dim int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, dim)
		for j := range rows[i] {
			rows[i][j] = rng.Float32()
		}
	}
	return rows
}

// assertExact compares a mutable search against the model scan. Ties in
// distance can order arbitrarily between index and model, so equality is
// checked on the distance sequence and on the ID sets per distance.
func assertExact(t testing.TB, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d hits, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Distance != want[i].Distance {
			t.Fatalf("hit %d: distance %v, want %v\n got: %v\nwant: %v",
				i, got[i].Distance, want[i].Distance, got, want)
		}
	}
	gotIDs := map[int]bool{}
	wantIDs := map[int]bool{}
	for i := range got {
		gotIDs[got[i].ID] = true
		wantIDs[want[i].ID] = true
	}
	for id := range wantIDs {
		if !gotIDs[id] {
			t.Fatalf("missing id %d\n got: %v\nwant: %v", id, got, want)
		}
	}
}

const mutDim = 24

func buildMutable(t testing.TB, n, shards int, opts *MutableOptions) (*MutableIndex, liveModel, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	data := randRows(rng, n, mutDim)
	mx, err := NewMutable(data, Flat, shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	model := liveModel{}
	for i, v := range data {
		model[i] = v
	}
	return mx, model, rng
}

func TestMutableAddDeleteUpsertExact(t *testing.T) {
	mx, model, rng := buildMutable(t, 300, 4, &MutableOptions{DisableAutoCompact: true})
	defer mx.Close()

	// Fresh inserts.
	for i := 0; i < 60; i++ {
		v := randRows(rng, 1, mutDim)[0]
		id, err := mx.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, clash := model[id]; clash {
			t.Fatalf("assigned id %d already live", id)
		}
		model[id] = v
	}
	// Deletes of base rows and of fresh memtable rows.
	for _, id := range []int{0, 7, 13, 301, 305, 280} {
		ok, err := mx.Delete(id)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("delete(%d) reported not live", id)
		}
		delete(model, id)
	}
	if ok, _ := mx.Delete(0); ok {
		t.Fatal("double delete must report false")
	}
	// Upserts replacing base rows (duplicate ID across base + memtable).
	for _, id := range []int{5, 9, 100} {
		v := randRows(rng, 1, mutDim)[0]
		if _, err := mx.Upsert(id, v); err != nil {
			t.Fatal(err)
		}
		model[id] = v
	}
	// Upsert resurrecting a deleted ID.
	{
		v := randRows(rng, 1, mutDim)[0]
		if _, err := mx.Upsert(7, v); err != nil {
			t.Fatal(err)
		}
		model[7] = v
	}
	if mx.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", mx.Len(), len(model))
	}

	queries := randRows(rng, 20, mutDim)
	for _, q := range queries {
		got, err := mx.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, got, model.exactTopK(q, 10, L2))
	}
}

// TestMutableMergeDupTombstoneGolden pins the k-way merge behavior the
// issue calls out: duplicate global IDs across memtable and base
// segments (upserts) and tombstoned IDs in both segments must merge to
// exactly the filtered exact scan, bit-identical distances included.
func TestMutableMergeDupTombstoneGolden(t *testing.T) {
	mx, model, rng := buildMutable(t, 200, 3, &MutableOptions{DisableAutoCompact: true})
	defer mx.Close()

	// Every base row of shard-0's round-robin residue gets upserted (dup
	// IDs in base + memtable of the same shard), a slice of rows gets
	// tombstoned, and a few memtable-only rows get deleted again.
	for id := 0; id < 60; id += 3 {
		v := randRows(rng, 1, mutDim)[0]
		if _, err := mx.Upsert(id, v); err != nil {
			t.Fatal(err)
		}
		model[id] = v
	}
	for id := 90; id < 120; id++ {
		if _, err := mx.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(model, id)
	}
	for i := 0; i < 10; i++ {
		v := randRows(rng, 1, mutDim)[0]
		id, err := mx.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		model[id] = v
		if i%2 == 0 {
			if _, err := mx.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(model, id)
		}
	}

	queries := randRows(rng, 25, mutDim)
	for _, q := range queries {
		got, err := mx.Search(q, 12, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := model.exactTopK(q, 12, L2)
		assertExact(t, got, want)
		seen := map[int]bool{}
		for _, n := range got {
			if seen[n.ID] {
				t.Fatalf("duplicate id %d in merged results %v", n.ID, got)
			}
			seen[n.ID] = true
			if _, live := model[n.ID]; !live {
				t.Fatalf("tombstoned id %d surfaced in %v", n.ID, got)
			}
		}
	}
}

func TestMutableCompactionPreservesResults(t *testing.T) {
	mx, model, rng := buildMutable(t, 400, 4, &MutableOptions{DisableAutoCompact: true})
	defer mx.Close()

	for i := 0; i < 80; i++ {
		v := randRows(rng, 1, mutDim)[0]
		id, err := mx.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		model[id] = v
	}
	for id := 20; id < 50; id++ {
		if _, err := mx.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(model, id)
	}
	for id := 60; id < 70; id++ {
		v := randRows(rng, 1, mutDim)[0]
		if _, err := mx.Upsert(id, v); err != nil {
			t.Fatal(err)
		}
		model[id] = v
	}

	queries := randRows(rng, 15, mutDim)
	before := make([][]Neighbor, len(queries))
	for i, q := range queries {
		ns, err := mx.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = ns
	}

	compacted, err := mx.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if compacted != 4 {
		t.Fatalf("compacted %d shards, want 4", compacted)
	}
	st := mx.MutationStats()
	if st.MemtableRows != 0 || st.Tombstones != 0 {
		t.Fatalf("segments not drained: mem=%d dead=%d", st.MemtableRows, st.Tombstones)
	}
	if st.Compactions != 4 {
		t.Fatalf("compactions counter = %d", st.Compactions)
	}
	if mx.Len() != len(model) {
		t.Fatalf("Len changed across compaction: %d vs %d", mx.Len(), len(model))
	}

	for i, q := range queries {
		after, err := mx.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, after, before[i])
		assertExact(t, after, model.exactTopK(q, 10, L2))
	}

	// A second compaction with clean segments is a no-op.
	compacted, err = mx.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if compacted != 0 {
		t.Fatalf("no-op compaction rebuilt %d shards", compacted)
	}
}

func TestMutableCompactionRetrainsModes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := randRows(rng, 600, 32)
	mx, err := NewMutable(data, HNSW, 2, &MutableOptions{
		DisableAutoCompact: true,
		Index:              &Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()
	if err := mx.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := mx.Add(randRows(rng, 1, 32)[0]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mx.Compact(); err != nil {
		t.Fatal(err)
	}
	if !mx.Enabled(DDCRes) {
		t.Fatal("DDCRes lost across compaction")
	}
	q := randRows(rng, 1, 32)[0]
	if _, err := mx.Search(q, 5, DDCRes, 80); err != nil {
		t.Fatalf("DDCRes search on compacted index: %v", err)
	}

	// Re-enabling a mode replaces its record instead of appending, so
	// compactions retrain each mode once.
	if err := mx.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(mx.sx.mut.enables); got != 1 {
		t.Fatalf("re-enable left %d recorded enables, want 1", got)
	}
	// A mode enabled after prior compactions lands on rebuilt shards too.
	if err := mx.Enable(ADSampling, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := mx.Add(randRows(rng, 1, 32)[0]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mx.Compact(); err != nil {
		t.Fatal(err)
	}
	if !mx.Enabled(ADSampling) || !mx.Enabled(DDCRes) {
		t.Fatalf("modes lost across second compaction: ads=%v res=%v",
			mx.Enabled(ADSampling), mx.Enabled(DDCRes))
	}
	if _, err := mx.Search(q, 5, ADSampling, 80); err != nil {
		t.Fatalf("ADSampling search after compaction: %v", err)
	}
}

// TestMutableHotSwapExactUnderRace is the acceptance pin-down: with a
// frozen live set, concurrent searches must return exact
// (filtered-scan-equivalent) results with zero failures while
// compactions hot-swap every shard's base underneath them; interleaved
// churn rounds then mutate, and the next frozen round must be exact
// again.
func TestMutableHotSwapExactUnderRace(t *testing.T) {
	mx, model, rng := buildMutable(t, 500, 4, &MutableOptions{DisableAutoCompact: true})
	defer mx.Close()

	queries := randRows(rng, 12, mutDim)
	const rounds = 4
	nextID := 500
	for round := 0; round < rounds; round++ {
		// Churn: mutate the index and model in lockstep (single writer).
		for i := 0; i < 120; i++ {
			switch rng.Intn(3) {
			case 0:
				v := randRows(rng, 1, mutDim)[0]
				id, err := mx.Add(v)
				if err != nil {
					t.Fatal(err)
				}
				if id < nextID {
					t.Fatalf("id %d reused (allocator low-water %d)", id, nextID)
				}
				nextID = id + 1
				model[id] = v
			case 1:
				// Delete a random live id.
				for id := range model {
					if _, err := mx.Delete(id); err != nil {
						t.Fatal(err)
					}
					delete(model, id)
					break
				}
			case 2:
				for id := range model {
					v := randRows(rng, 1, mutDim)[0]
					if _, err := mx.Upsert(id, v); err != nil {
						t.Fatal(err)
					}
					model[id] = v
					break
				}
			}
		}

		// Frozen phase: the live set no longer changes, so every search
		// must be exact at every instant — including while Compact swaps
		// all four shard bases.
		frozen := model.clone()
		want := make([][]Neighbor, len(queries))
		for i, q := range queries {
			want[i] = frozen.exactTopK(q, 10, L2)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		errCh := make(chan error, 8)
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var dst []Neighbor
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					qi := (w + i) % len(queries)
					var err error
					dst, _, err = mx.SearchInto(dst[:0], queries[qi], 10, Exact, 0)
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
					if len(dst) != len(want[qi]) {
						t.Errorf("round %d: %d hits, want %d", round, len(dst), len(want[qi]))
						return
					}
					for j := range dst {
						if dst[j].Distance != want[qi][j].Distance {
							t.Errorf("round %d query %d hit %d: dist %v want %v",
								round, qi, j, dst[j].Distance, want[qi][j].Distance)
							return
						}
					}
				}
			}(w)
		}
		// Two full compaction passes while the searchers hammer.
		for pass := 0; pass < 2; pass++ {
			if _, err := mx.Compact(); err != nil {
				t.Fatal(err)
			}
			// Re-dirty the segments so the second pass actually swaps: an
			// upsert of an existing row leaves the live set unchanged.
			if pass == 0 {
				for id, v := range frozen {
					if _, err := mx.Upsert(id, v); err != nil {
						t.Fatal(err)
					}
					model[id] = v
					break
				}
			}
		}
		close(stop)
		wg.Wait()
		select {
		case err := <-errCh:
			t.Fatalf("round %d: search failed during hot swap: %v", round, err)
		default:
		}
	}
}

func TestMutableAutoCompaction(t *testing.T) {
	mx, model, rng := buildMutable(t, 200, 2, &MutableOptions{CompactThreshold: 32})
	defer mx.Close()
	for i := 0; i < 400; i++ {
		v := randRows(rng, 1, mutDim)[0]
		id, err := mx.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		model[id] = v
	}
	// The compactor runs asynchronously; force the tail and verify the
	// final state is exact.
	if _, err := mx.Compact(); err != nil {
		t.Fatal(err)
	}
	st := mx.MutationStats()
	if st.Compactions == 0 {
		t.Fatal("no compactions ran despite 400 inserts at threshold 32")
	}
	if st.MemtableRows != 0 {
		t.Fatalf("memtable rows left: %d", st.MemtableRows)
	}
	q := randRows(rng, 1, mutDim)[0]
	got, err := mx.Search(q, 10, Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertExact(t, got, model.exactTopK(q, 10, L2))
}

func TestMutableSaveLoadMidCompaction(t *testing.T) {
	mx, model, rng := buildMutable(t, 300, 3, &MutableOptions{DisableAutoCompact: true})
	defer mx.Close()

	// Leave the index mid-stream: memtable rows pending, tombstones
	// pending, an upsert shadowing a base row.
	for i := 0; i < 40; i++ {
		v := randRows(rng, 1, mutDim)[0]
		id, err := mx.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		model[id] = v
	}
	for id := 10; id < 25; id++ {
		if _, err := mx.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(model, id)
	}
	v := randRows(rng, 1, mutDim)[0]
	if _, err := mx.Upsert(30, v); err != nil {
		t.Fatal(err)
	}
	model[30] = v

	stBefore := mx.MutationStats()
	if stBefore.MemtableRows == 0 || stBefore.Tombstones == 0 {
		t.Fatalf("precondition: want pending segments, got mem=%d dead=%d",
			stBefore.MemtableRows, stBefore.Tombstones)
	}

	var buf bytes.Buffer
	if err := mx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMutable(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	stAfter := loaded.MutationStats()
	if stAfter.MemtableRows != stBefore.MemtableRows || stAfter.Tombstones != stBefore.Tombstones {
		t.Fatalf("segments not preserved: mem %d→%d dead %d→%d",
			stBefore.MemtableRows, stAfter.MemtableRows, stBefore.Tombstones, stAfter.Tombstones)
	}
	if loaded.Len() != mx.Len() {
		t.Fatalf("Len %d → %d across round trip", mx.Len(), loaded.Len())
	}

	queries := randRows(rng, 15, mutDim)
	for _, q := range queries {
		a, err := mx.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, b, a)
		assertExact(t, b, model.exactTopK(q, 10, L2))
	}

	// The loaded index keeps mutating and compacting correctly: IDs are
	// stable, the allocator does not reuse live IDs.
	id, err := loaded.Add(randRows(rng, 1, mutDim)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := model[id]; clash {
		t.Fatalf("loaded allocator reused live id %d", id)
	}
	if _, err := loaded.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:5] {
		b, err := loaded.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, b, model.exactTopK(q, 10, L2))
	}
}

func TestMutableCosineAndIP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, metric := range []MetricKind{Cosine, InnerProduct} {
		data := randRows(rng, 150, 16)
		mx, err := NewMutable(data, Flat, 2, &MutableOptions{
			DisableAutoCompact: true,
			Index:              &Options{Metric: metric},
		})
		if err != nil {
			t.Fatal(err)
		}
		model := liveModel{}
		for i, v := range data {
			model[i] = v
		}
		for i := 0; i < 30; i++ {
			v := randRows(rng, 1, 16)[0]
			id, err := mx.Add(v)
			if err != nil {
				t.Fatal(err)
			}
			model[id] = v
		}
		for id := 0; id < 10; id++ {
			if _, err := mx.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(model, id)
		}
		// Model ranking: cosine ranks by cosine similarity, IP by dot.
		rank := func(q []float32, k int) []int {
			type scored struct {
				id int
				s  float64
			}
			var all []scored
			for id, v := range model {
				var s float64
				switch metric {
				case Cosine:
					s = float64(vec.Dot(q, v)) / (float64(vec.Norm(q)) * float64(vec.Norm(v)))
				case InnerProduct:
					s = float64(vec.Dot(q, v))
				}
				all = append(all, scored{id, s})
			}
			sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
			ids := make([]int, 0, k)
			for i := 0; i < k && i < len(all); i++ {
				ids = append(ids, all[i].id)
			}
			return ids
		}
		for qi := 0; qi < 10; qi++ {
			q := randRows(rng, 1, 16)[0]
			got, err := mx.Search(q, 8, Exact, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := rank(q, 8)
			// Float rounding across different formulas can flip near-ties;
			// require ≥7/8 overlap and the top hit to match.
			overlap := 0
			gotSet := map[int]bool{}
			for _, n := range got {
				gotSet[n.ID] = true
			}
			for _, id := range want {
				if gotSet[id] {
					overlap++
				}
			}
			if overlap < 7 {
				t.Fatalf("%s: overlap %d/8\n got %v\nwant %v", metric, overlap, got, want)
			}
			if got[0].ID != want[0] {
				t.Fatalf("%s: top hit %d, want %d", metric, got[0].ID, want[0])
			}
		}
		// Compact and re-check the top hit still agrees.
		if _, err := mx.Compact(); err != nil {
			t.Fatal(err)
		}
		q := randRows(rng, 1, 16)[0]
		got, err := mx.Search(q, 5, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].ID != rank(q, 1)[0] {
			t.Fatalf("%s after compaction: top hit %d, want %d", metric, got[0].ID, rank(q, 1)[0])
		}
		mx.Close()
	}
}

func TestImmutableShardedRejectsMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randRows(rng, 50, 8)
	sx, err := NewSharded(data, Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sx.Add(data[0]); err == nil {
		t.Fatal("Add on an immutable sharded index must error")
	}
	if _, err := sx.Delete(0); err == nil {
		t.Fatal("Delete on an immutable sharded index must error")
	}
	if err := sx.Upsert(0, data[0]); err == nil {
		t.Fatal("Upsert on an immutable sharded index must error")
	}
}

func TestShardedEmptyGuards(t *testing.T) {
	// A corrupt/zero-value ShardedIndex must not panic in metadata
	// accessors (downstream servers call them on loaded indexes).
	sx := &ShardedIndex{}
	if d := sx.Dim(); d != 0 {
		t.Fatalf("Dim on empty = %d", d)
	}
	if m := sx.Modes(); len(m) != 0 {
		t.Fatalf("Modes on empty = %v", m)
	}
	n := Neighbor{ID: 1, Distance: 2}
	if s := sx.Score(n, []float32{1}); s != 2 {
		t.Fatalf("Score on empty = %v", s)
	}
}

func TestMutableSaveRejectedOnPlainSharded(t *testing.T) {
	mx, _, _ := buildMutable(t, 60, 2, &MutableOptions{DisableAutoCompact: true})
	defer mx.Close()
	var buf bytes.Buffer
	if err := mx.Sharded().Save(&buf); err == nil {
		t.Fatal("plain Save on a mutable index must refuse (would drop segments)")
	}
	if err := mx.Save(&buf); err != nil {
		t.Fatal(err)
	}
}
