package resinfer

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"resinfer/internal/fault"
	"resinfer/internal/heap"
	"resinfer/internal/retry"
	"resinfer/internal/stream"
	"resinfer/internal/wal"
)

// Sentinel errors of the mutation API. Callers (notably internal/server)
// branch HTTP status codes on errors.Is: an ErrInvalidVector is the
// caller's fault (400), an ErrDegraded means writes are temporarily
// refused (503 — the searches still work), anything else — a failed
// shard rebuild, a WAL append failure — is internal (500).
var (
	// ErrImmutable reports a mutation on an index that was not built
	// with NewMutable.
	ErrImmutable = errors.New("resinfer: index is immutable; build it with NewMutable")
	// ErrInvalidVector reports a vector rejected at the mutation
	// boundary: wrong dimensionality, or a NaN/±Inf component (which
	// would poison exact memtable scans and corrupt comparator
	// retraining on compaction).
	ErrInvalidVector = errors.New("resinfer: invalid vector")
	// ErrDegraded reports a mutation on an index that degraded itself to
	// read-only after a persistent WAL failure: the durability contract
	// ("an acknowledged mutation is recoverable") cannot be honored, so
	// writes fail loudly instead of silently losing durability. Searches
	// are unaffected. MutableIndex.ClearDegraded re-arms writes once the
	// underlying fault is fixed.
	ErrDegraded = errors.New("resinfer: index degraded to read-only after persistent WAL failure")
)

// walAppendPolicy bounds the in-line retry of a transient WAL append
// failure before the index declares itself degraded: three attempts on
// a constant 5ms gap (Factor 1 — the append path wants a predictable,
// short stall, not an exponential one).
var walAppendPolicy = retry.Policy{Attempts: 3, Base: 5 * time.Millisecond, Factor: 1}

// This file is the streaming-ingestion substrate of ShardedIndex: each
// shard pairs its immutable base index with an append-only memtable
// segment (exact brute-force scan, so recall on fresh vectors is
// perfect) and a tombstone set for deletes; a compaction rebuilds a
// shard's base from the live rows off the serving path and hot-swaps it
// under the shard's RWMutex with zero search downtime. The public
// lifecycle wrapper — background compaction, counters, persistence —
// lives in MutableIndex (mutable.go).

// recordedEnable remembers one Enable/EnableWithTraining call so a
// compacted shard's rebuilt base index is retrained with the exact same
// comparators and configuration.
type recordedEnable struct {
	mode         Mode
	trainQueries [][]float32
	opts         *Options
	withTraining bool
}

// shardSeg is the mutable extension of one shard. Its RWMutex guards the
// shard's entire serving state — sx.shards[s], sx.globalID[s], mem and
// dead — against searches: searches hold the read lock for the duration
// of one shard probe; mutations and the compaction hot swap take the
// write lock briefly.
type shardSeg struct {
	mu         sync.RWMutex
	mem        *stream.Memtable
	dead       *stream.Tombstones
	baseHas    map[int]struct{} // global IDs present in the current base segment
	hidden     int              // base rows invisible (tombstoned or shadowed by a memtable row)
	compacting bool             // claimed by a running compaction (guarded by mutState.mu)
}

// mutState is the index-wide streaming state. Its mutex serializes
// mutations (Add/Upsert/Delete), compaction swaps, Enable calls, and
// Save on a mutable index; searches never take it.
type mutState struct {
	mu        sync.Mutex
	segs      []*shardSeg
	owner     map[int]int // live global ID → owning shard
	nextID    int         // next auto-assigned global ID
	rr        int         // round-robin cursor for fresh inserts
	liveN     atomic.Int64
	enables   []recordedEnable
	indexOpts *Options // per-shard build options, replayed on compaction

	// wal, when non-nil, is appended to — under mu, so log order equals
	// apply order — before any mutation is applied; appliedLSN tracks
	// the last record applied to this index (what a snapshot covers).
	wal        *wal.Log
	appliedLSN atomic.Uint64

	// degraded holds the error that flipped the index read-only after a
	// persistent WAL failure (nil while healthy). Atomic so /readyz can
	// probe it without contending with mutations.
	degraded atomic.Pointer[error]
}

// degradedErr returns the sticky degraded error, nil while healthy.
func (m *mutState) degradedErr() error {
	if p := m.degraded.Load(); p != nil {
		return *p
	}
	return nil
}

// walAppend runs one WAL append under walAppendPolicy: a transient
// failure (e.g. a rolled-back write error) is retried; when every
// attempt fails the index flips itself degraded — fail-stop read-only —
// and the mutation (and every later one) reports ErrDegraded. Called
// under m.mu.
func (m *mutState) walAppend(do func() (uint64, error)) (uint64, error) {
	var lsn uint64
	var closed bool
	err := walAppendPolicy.Do(nil, func() error {
		var aerr error
		lsn, aerr = do()
		if errors.Is(aerr, wal.ErrClosed) {
			// The log was closed deliberately (index shutdown), not lost:
			// not a degradation, and retrying cannot help.
			closed = true
			return retry.Permanent(aerr)
		}
		return aerr
	})
	if err == nil {
		return lsn, nil
	}
	if closed {
		return 0, fmt.Errorf("resinfer: wal append: %w", err)
	}
	derr := fmt.Errorf("%w (cause: %v)", ErrDegraded, err)
	m.degraded.Store(&derr)
	return 0, derr
}

// Mutable reports whether the index accepts Add/Upsert/Delete.
func (sx *ShardedIndex) Mutable() bool { return sx.mut != nil }

// enableMutation installs the streaming segments on a freshly built or
// loaded sharded index. indexOpts is retained for compaction rebuilds.
func (sx *ShardedIndex) enableMutation(indexOpts *Options) {
	m := &mutState{
		segs:      make([]*shardSeg, len(sx.shards)),
		owner:     make(map[int]int, sx.n),
		indexOpts: indexOpts,
		rr:        0,
	}
	maxID := -1
	for s := range sx.shards {
		m.segs[s] = &shardSeg{
			mem:     stream.NewMemtable(sx.userDim),
			dead:    stream.NewTombstones(),
			baseHas: make(map[int]struct{}, len(sx.globalID[s])),
		}
		for _, gid := range sx.globalID[s] {
			m.owner[gid] = s
			m.segs[s].baseHas[gid] = struct{}{}
			if gid > maxID {
				maxID = gid
			}
		}
	}
	m.nextID = maxID + 1
	m.liveN.Store(int64(len(m.owner)))
	sx.mut = m
}

// scanRow maps a caller vector into the scan space the memtable stores:
// the raw vector for L2 and InnerProduct, the unit-normalized vector for
// Cosine. In that space the memtable's exact keys (squared L2, or
// negated dot product for InnerProduct) are directly comparable with the
// merge keys of base-segment hits.
func (sx *ShardedIndex) scanRow(v []float32) ([]float32, error) {
	if len(v) != sx.userDim {
		return nil, fmt.Errorf("%w: dim %d, index expects %d", ErrInvalidVector, len(v), sx.userDim)
	}
	for i, x := range v {
		if f := float64(x); math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("%w: component %d is %v", ErrInvalidVector, i, x)
		}
	}
	row := make([]float32, len(v))
	copy(row, v)
	if sx.metric == Cosine {
		norm, _, err := prepareData([][]float32{row}, Cosine)
		if err != nil {
			return nil, err
		}
		row = norm[0]
	}
	return row, nil
}

// scanQuery maps a caller query into the same scan space, reusing the
// fan scratch buffer for the Cosine normalization.
//
//resinfer:noalloc
func (sx *ShardedIndex) scanQuery(fs *fanScratch, q []float32) ([]float32, error) {
	if sx.metric != Cosine {
		return q, nil
	}
	if len(fs.qbuf) != sx.userDim {
		fs.qbuf = make([]float32, sx.userDim) //resinfer:alloc-ok lazy one-time scratch growth
	}
	st := metricState{kind: Cosine}
	return st.transformInto(fs.qbuf, q)
}

// Add ingests a fresh vector and returns its newly assigned global ID.
// Assignment is round-robin across shards, so sustained ingestion grows
// every shard evenly. The ID is stable for the life of the row: searches
// report it, Delete accepts it, and compaction preserves it.
func (sx *ShardedIndex) Add(v []float32) (int, error) {
	return sx.mutUpsert(-1, v)
}

// Upsert writes a vector under an explicit global ID: a new row if the
// ID is unknown, an in-place replacement (old version hidden immediately)
// if it is live. IDs must be non-negative.
func (sx *ShardedIndex) Upsert(id int, v []float32) error {
	if id < 0 {
		return fmt.Errorf("resinfer: upsert id must be non-negative, got %d", id)
	}
	_, err := sx.mutUpsert(id, v)
	return err
}

// mutUpsert is the shared insert path; id < 0 assigns a fresh ID. The
// resolved (id, shard) is logged to the WAL — if one is attached —
// before any state changes, so a failed append leaves the index
// untouched and an applied mutation is always recoverable.
func (sx *ShardedIndex) mutUpsert(id int, v []float32) (int, error) {
	m := sx.mut
	if m == nil {
		return 0, ErrImmutable
	}
	row, err := sx.scanRow(v)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if derr := m.degradedErr(); derr != nil {
		return 0, derr
	}
	var s int
	fresh := false
	if id < 0 {
		id = m.nextID
		s = m.rr % len(m.segs)
		fresh = true
	} else if prev, live := m.owner[id]; live {
		s = prev // replacement routes to the owning shard so the old row is shadowed there
	} else {
		s = m.rr % len(m.segs)
		fresh = true
	}
	if m.wal != nil {
		// Log the caller-space vector: replay re-executes this exact
		// path (same validation, same Cosine normalization), so a
		// recovered index is bit-identical to one that never crashed.
		lsn, err := m.walAppend(func() (uint64, error) { return m.wal.AppendUpsert(s, id, v) })
		if err != nil {
			return 0, err
		}
		m.appliedLSN.Store(lsn)
	}
	if fresh {
		if id >= m.nextID {
			m.nextID = id + 1
		}
		m.rr++
		m.owner[id] = s
		m.liveN.Add(1)
	}
	seg := m.segs[s]
	seg.mu.Lock()
	appended := seg.mem.Add(id, row)
	if appended {
		// A first memtable write for an ID that sits visible in the base
		// segment shadows that base row; the hidden count feeds the base
		// over-fetch so filtering can never starve a search below k.
		if _, inBase := seg.baseHas[id]; inBase && !seg.dead.Has(id) {
			seg.hidden++
		}
	}
	seg.mu.Unlock()
	return id, nil
}

// Delete removes the row with the given global ID, reporting whether it
// was live. The row disappears from searches immediately (memtable rows
// are dropped in place; base rows are tombstoned) and its storage is
// reclaimed by the next compaction of the owning shard.
func (sx *ShardedIndex) Delete(id int) (bool, error) {
	m := sx.mut
	if m == nil {
		return false, ErrImmutable
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if derr := m.degradedErr(); derr != nil {
		return false, derr
	}
	s, live := m.owner[id]
	if !live {
		return false, nil
	}
	if m.wal != nil {
		lsn, err := m.walAppend(func() (uint64, error) { return m.wal.AppendDelete(s, id) })
		if err != nil {
			return false, err
		}
		m.appliedLSN.Store(lsn)
	}
	seg := m.segs[s]
	seg.mu.Lock()
	hadMem := seg.mem.Remove(id)
	if _, inBase := seg.baseHas[id]; inBase && !hadMem && !seg.dead.Has(id) {
		// A visible base row becomes hidden; one that was already shadowed
		// by a memtable row (hadMem) or tombstoned was counted before.
		seg.hidden++
	}
	// Tombstone unconditionally: the ID may sit in the base segment, or be
	// mid-flight into a rebuilt base an in-progress compaction is about to
	// swap in. A tombstone for an ID no base holds filters nothing and is
	// retired by the next compaction.
	seg.dead.Add(id)
	seg.mu.Unlock()
	delete(m.owner, id)
	m.liveN.Add(-1)
	return true, nil
}

// searchShardMut probes one shard of a mutable index: the base index is
// over-fetched by the shard's hidden-row bound (tombstones plus memtable
// rows, so filtering can never starve the result below k), tombstoned
// and shadowed base hits are dropped, hits are translated to global IDs
// and merge keys, and the memtable is scanned exactly into the same
// bounded queue. The shard read lock is held for the whole probe so a
// concurrent hot swap can never tear the (base, globalID, segments)
// triple.
//
//resinfer:noalloc
func (sx *ShardedIndex) searchShardMut(s int, out *shardOut, q, qScan []float32, k int, mode Mode, budget int) {
	seg := sx.mut.segs[s]
	seg.mu.RLock()
	defer seg.mu.RUnlock()
	base := sx.shards[s]
	gids := sx.globalID[s]
	// Over-fetch by exactly the number of invisible base rows: filtering
	// them can then never starve the shard's contribution below k, and a
	// pure-ingest workload (nothing hidden) pays no over-fetch at all.
	kEff := k + seg.hidden
	out.ns, out.st, out.err = base.SearchInto(out.ns[:0], q, kEff, mode, budget)
	if out.err != nil {
		return
	}
	if out.rq == nil {
		out.rq = heap.NewResultQueue(k)
	}
	rq := out.rq
	rq.Reset(k)
	ip := sx.metric == InnerProduct
	for _, n := range out.ns {
		gid := gids[n.ID]
		if seg.dead.Has(gid) || seg.mem.Has(gid) {
			continue
		}
		key := n.Distance
		if ip {
			key = -base.Score(n, q)
		}
		if key < rq.Threshold() {
			rq.Push(gid, key)
		}
	}
	memComp := seg.mem.Scan(qScan, ip, rq)
	if memComp > 0 {
		tot := out.st.Comparisons + int64(memComp)
		out.st.ScanRate = (out.st.ScanRate*float64(out.st.Comparisons) + float64(memComp)) / float64(tot)
		out.st.Comparisons = tot
		if tot > 0 {
			out.st.PrunedRate = float64(out.st.Pruned) / float64(tot)
		}
	}
	out.ns = out.ns[:0]
	nres := rq.Len()
	for i := 0; i < nres; i++ {
		out.ns = append(out.ns, Neighbor{})
	}
	for i := nres - 1; i >= 0; i-- {
		it, _ := rq.PopMax()
		out.ns[i] = Neighbor{ID: it.ID, Distance: it.Dist}
	}
}

// baseUserRows extracts the caller-space vectors of one base index — the
// rows a compaction feeds back into New. For L2 the internal rows are the
// caller's; for Cosine they are the normalized rows (re-normalizing is
// the identity); for InnerProduct the augmentation coordinate is
// truncated off.
func (sx *ShardedIndex) baseUserRows(base *Index) [][]float32 {
	rows := make([][]float32, base.Len())
	for i := range rows {
		r := base.data.Row(i)
		if sx.metric == InnerProduct {
			r = r[:sx.userDim:sx.userDim]
		}
		rows[i] = r
	}
	return rows
}

// compactInfo describes one finished shard compaction.
type compactInfo struct {
	shard    int
	rows     int           // rows in the rebuilt base
	memRows  int           // memtable rows folded in
	dead     int           // tombstones retired
	buildDur time.Duration // off-path rebuild + retrain time
	swapDur  time.Duration // write-lock hold time of the hot swap
}

// compactShard rebuilds shard s from its live rows — base minus
// tombstones and shadowed rows, plus the memtable — retrains every
// recorded comparator on the rebuilt base, and hot-swaps it in under the
// shard's write lock. Searches keep running against the old base for the
// whole build; the swap itself is a few pointer stores. It returns false
// when there was nothing to do (no pending segments, a concurrent
// compaction already claimed the shard, or every row is deleted).
func (sx *ShardedIndex) compactShard(s int) (bool, compactInfo, error) {
	m := sx.mut
	if m == nil {
		return false, compactInfo{}, ErrImmutable
	}
	if s < 0 || s >= len(m.segs) {
		return false, compactInfo{}, fmt.Errorf("resinfer: shard %d out of range", s)
	}
	m.mu.Lock()
	seg := m.segs[s]
	if seg.compacting {
		m.mu.Unlock()
		return false, compactInfo{}, nil
	}
	seg.compacting = true
	enables := append([]recordedEnable(nil), m.enables...)
	opts := m.indexOpts
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		seg.compacting = false
		m.mu.Unlock()
	}()

	// Snapshot the shard under the read lock: base and globalID are
	// immutable objects (swaps replace, never mutate), the memtable and
	// tombstones are copied.
	seg.mu.RLock()
	base := sx.shards[s]
	baseIDs := sx.globalID[s]
	memIDs, memRows, seqSnap := seg.mem.Snapshot()
	deadSnap := seg.dead.Clone()
	seg.mu.RUnlock()

	if len(memIDs) == 0 && deadSnap.Len() == 0 {
		return false, compactInfo{}, nil
	}

	memSet := make(map[int]struct{}, len(memIDs))
	for _, id := range memIDs {
		memSet[id] = struct{}{}
	}
	userRows := sx.baseUserRows(base)
	rows := make([][]float32, 0, len(baseIDs)+len(memIDs))
	ids := make([]int, 0, len(baseIDs)+len(memIDs))
	for local, gid := range baseIDs {
		if deadSnap.Has(gid) {
			continue
		}
		if _, shadowed := memSet[gid]; shadowed {
			continue
		}
		rows = append(rows, userRows[local])
		ids = append(ids, gid)
	}
	rows = append(rows, memRows...)
	ids = append(ids, memIDs...)
	if len(rows) == 0 {
		// Every row of the shard is deleted; there is nothing to build an
		// index over. Leave the segments in place — searches already filter
		// everything out — and let a future insert trigger the rebuild.
		return false, compactInfo{}, nil
	}

	if fault.Active() {
		if ferr := fault.CheckArg(fault.SiteCompactBuild, s); ferr != nil {
			return false, compactInfo{}, fmt.Errorf("resinfer: compacting shard %d: %w", s, ferr)
		}
	}
	buildStart := time.Now()
	newIdx, err := New(rows, sx.kind, opts)
	if err != nil {
		return false, compactInfo{}, fmt.Errorf("resinfer: compacting shard %d: %w", s, err)
	}
	for _, e := range enables {
		if e.withTraining {
			err = newIdx.EnableWithTraining(e.mode, e.trainQueries, e.opts)
		} else {
			err = newIdx.Enable(e.mode, e.opts)
		}
		if err != nil {
			return false, compactInfo{}, fmt.Errorf("resinfer: retraining %s on compacted shard %d: %w", e.mode, s, err)
		}
	}
	buildDur := time.Since(buildStart)

	newBaseHas := make(map[int]struct{}, len(ids))
	for _, gid := range ids {
		newBaseHas[gid] = struct{}{}
	}

	if fault.Active() {
		if ferr := fault.CheckArg(fault.SiteCompactSwap, s); ferr != nil {
			return false, compactInfo{}, fmt.Errorf("resinfer: swapping compacted shard %d: %w", s, ferr)
		}
	}
	// Hot swap: everything after the snapshot point survives in the
	// segments — memtable rows written during the build stay (and shadow
	// their compacted versions), tombstones added during the build stay
	// (and filter the rebuilt base), consumed tombstones retire. The
	// surviving segments are small (bounded by build-time churn), so the
	// hidden-row recount under the lock is cheap.
	m.mu.Lock()
	// A mode enabled while the build was running trained against the old
	// base; replay it on the rebuilt index before installing, or searches
	// in that mode would fail on this shard after the swap. Training here
	// holds mut.mu exactly as enableAll does — searches are unaffected,
	// mutations wait.
	for _, e := range m.enables {
		if newIdx.Enabled(e.mode) {
			continue
		}
		var rerr error
		if e.withTraining {
			rerr = newIdx.EnableWithTraining(e.mode, e.trainQueries, e.opts)
		} else {
			rerr = newIdx.Enable(e.mode, e.opts)
		}
		if rerr != nil {
			m.mu.Unlock()
			return false, compactInfo{}, fmt.Errorf("resinfer: retraining %s on compacted shard %d: %w", e.mode, s, rerr)
		}
	}
	seg.mu.Lock()
	swapStart := time.Now()
	sx.shards[s] = newIdx
	sx.globalID[s] = ids
	seg.mem = seg.mem.CompactAfter(seqSnap)
	seg.dead.Subtract(deadSnap)
	seg.baseHas = newBaseHas
	seg.hidden = 0
	for _, gid := range seg.dead.IDs() {
		if _, ok := newBaseHas[gid]; ok {
			seg.hidden++
		}
	}
	for i := 0; i < seg.mem.Len(); i++ {
		gid := seg.mem.ID(i)
		if _, ok := newBaseHas[gid]; !ok {
			continue
		}
		if !seg.dead.Has(gid) {
			seg.hidden++
		}
	}
	swapDur := time.Since(swapStart)
	seg.mu.Unlock()
	m.mu.Unlock()

	return true, compactInfo{
		shard:    s,
		rows:     len(rows),
		memRows:  len(memIDs),
		dead:     deadSnap.Len(),
		buildDur: buildDur,
		swapDur:  swapDur,
	}, nil
}

// segDepth returns one shard's pending segment sizes.
func (sx *ShardedIndex) segDepth(s int) (mem, dead int) {
	seg := sx.mut.segs[s]
	seg.mu.RLock()
	defer seg.mu.RUnlock()
	return seg.mem.Len(), seg.dead.Len()
}
