package resinfer_test

// Steady-state serving benchmarks for the pooled, contiguous-storage
// search path. The acceptance bar for the zero-alloc work is
// BenchmarkSearchIntoSteadyState* reporting 0 allocs/op: after Enable,
// a search that reuses its destination slice draws every piece of
// per-query state (evaluator, rotated-query and suffix scratch, traversal
// queues, visited marks) from pools.
//
// Run with: go test -bench=SearchInto -benchmem .

import (
	"math/rand"
	"sync"
	"testing"

	"resinfer"
)

var (
	benchOnce sync.Once
	benchErr  error
	benchIdx  map[resinfer.IndexKind]*resinfer.Index
	benchQs   [][]float32
)

const (
	benchN   = 6000
	benchDim = 64
	benchK   = 10
)

func benchSetup(b *testing.B) {
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		data := make([][]float32, benchN)
		for i := range data {
			row := make([]float32, benchDim)
			for j := range row {
				row[j] = float32(rng.NormFloat64())
			}
			data[i] = row
		}
		benchQs = make([][]float32, 32)
		for i := range benchQs {
			q := make([]float32, benchDim)
			for j := range q {
				q[j] = float32(rng.NormFloat64())
			}
			benchQs[i] = q
		}
		benchIdx = map[resinfer.IndexKind]*resinfer.Index{}
		for _, kind := range []resinfer.IndexKind{resinfer.Flat, resinfer.HNSW, resinfer.IVF} {
			ix, err := resinfer.New(data, kind, &resinfer.Options{Seed: 1})
			if err != nil {
				benchErr = err
				return
			}
			if err := ix.Enable(resinfer.DDCRes, nil); err != nil {
				benchErr = err
				return
			}
			benchIdx[kind] = ix
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

func benchSearchInto(b *testing.B, kind resinfer.IndexKind, mode resinfer.Mode) {
	benchSetup(b)
	ix := benchIdx[kind]
	var dst []resinfer.Neighbor
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _, err = ix.SearchInto(dst[:0], benchQs[i%len(benchQs)], benchK, mode, 80)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchIntoSteadyStateFlatExact must report 0 allocs/op: the
// flat-scan serving path with a reused destination slice.
func BenchmarkSearchIntoSteadyStateFlatExact(b *testing.B) {
	benchSearchInto(b, resinfer.Flat, resinfer.Exact)
}

// BenchmarkSearchIntoSteadyStateFlatDDCRes must report 0 allocs/op: the
// pooled DDCres evaluator (rotated query, σ suffix table) is reused.
func BenchmarkSearchIntoSteadyStateFlatDDCRes(b *testing.B) {
	benchSearchInto(b, resinfer.Flat, resinfer.DDCRes)
}

// BenchmarkSearchIntoSteadyStateHNSWDDCRes must report 0 allocs/op: graph
// traversal scratch (visited epochs, candidate and result queues) is
// pooled alongside the evaluator.
func BenchmarkSearchIntoSteadyStateHNSWDDCRes(b *testing.B) {
	benchSearchInto(b, resinfer.HNSW, resinfer.DDCRes)
}

// BenchmarkSearchIntoSteadyStateIVFDDCRes must report 0 allocs/op: probe
// selection scratch is pooled alongside the evaluator.
func BenchmarkSearchIntoSteadyStateIVFDDCRes(b *testing.B) {
	benchSearchInto(b, resinfer.IVF, resinfer.DDCRes)
}

// BenchmarkSearchAllocating is the same HNSW+DDCRes query through the
// plain Search API, which allocates only the caller-visible result slice.
func BenchmarkSearchAllocating(b *testing.B) {
	benchSetup(b)
	ix := benchIdx[resinfer.HNSW]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(benchQs[i%len(benchQs)], benchK, resinfer.DDCRes, 80); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchBatchPooled exercises the one-evaluator-per-worker batch
// path end to end.
func BenchmarkSearchBatchPooled(b *testing.B) {
	benchSetup(b)
	ix := benchIdx[resinfer.HNSW]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ix.SearchBatch(benchQs, benchK, resinfer.DDCRes, 80, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range out {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
